#include "scenarios/report.h"

#include <cstdarg>
#include <cstdio>

#include "common/csv.h"

namespace fglb {

namespace {

void Append(std::string& out, const char* format, ...) {
  char buf[320];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  out += buf;
}

}  // namespace

std::string FormatSamplesTable(
    const std::vector<SelectiveRetuner::IntervalSample>& samples) {
  std::string out;
  Append(out, "%8s  %4s  %8s  %10s  %10s  %9s  %4s  %7s\n", "time_s", "app",
         "queries", "avg_lat_s", "p95_lat_s", "tput_qps", "sla", "servers");
  for (const auto& sample : samples) {
    for (const auto& app : sample.apps) {
      Append(out, "%8.0f  %4u  %8llu  %10.3f  %10.3f  %9.1f  %4s  %7d\n",
             sample.time, app.app,
             static_cast<unsigned long long>(app.queries), app.avg_latency,
             app.p95_latency, app.throughput, app.sla_met ? "ok" : "VIO",
             app.servers_used);
    }
  }
  return out;
}

std::string SamplesCsv(
    const std::vector<SelectiveRetuner::IntervalSample>& samples) {
  std::string out =
      "time_s,app,queries,avg_latency_s,p95_latency_s,throughput_qps,"
      "sla_met,servers_used\n";
  for (const auto& sample : samples) {
    for (const auto& app : sample.apps) {
      Append(out, "%.1f,%u,%llu,%.6f,%.6f,%.3f,%d,%d\n", sample.time,
             app.app, static_cast<unsigned long long>(app.queries),
             app.avg_latency, app.p95_latency, app.throughput,
             app.sla_met ? 1 : 0, app.servers_used);
    }
  }
  return out;
}

std::string ServerUtilizationCsv(
    const std::vector<SelectiveRetuner::IntervalSample>& samples) {
  std::string out = "time_s,server,cpu_utilization,io_utilization\n";
  for (const auto& sample : samples) {
    for (const auto& server : sample.servers) {
      Append(out, "%.1f,%d,%.4f,%.4f\n", sample.time, server.server_id,
             server.cpu_utilization, server.io_utilization);
    }
  }
  return out;
}

std::string FormatActions(
    const std::vector<SelectiveRetuner::Action>& actions) {
  std::string out;
  for (const auto& action : actions) {
    Append(out, "t=%7.0f  [%s]  %s\n", action.time,
           SelectiveRetuner::ActionKindName(action.kind),
           action.description.c_str());
  }
  return out;
}

std::string ActionsCsv(
    const std::vector<SelectiveRetuner::Action>& actions) {
  std::string out = "time_s,kind,app,description\n";
  for (const auto& action : actions) {
    Append(out, "%.1f,%s,%u,", action.time,
           SelectiveRetuner::ActionKindName(action.kind), action.app);
    out += CsvQuote(action.description);
    out += '\n';
  }
  return out;
}

std::string FormatDiagnoses(
    const std::vector<SelectiveRetuner::DiagnosisRecord>& diagnoses) {
  std::string out;
  for (const auto& d : diagnoses) {
    Append(out,
           "t=%7.0f  app=%u replica=%d  outliers=%zu new=%zu suspects=%zu "
           "cleared=%zu\n",
           d.time, d.app, d.replica_id, d.outliers.outliers.size(),
           d.outliers.new_classes.size(), d.memory.suspects.size(),
           d.memory.cleared.size());
  }
  return out;
}

}  // namespace fglb
