#include "scenarios/cli_options.h"

#include <cstdlib>

namespace fglb {

namespace {

bool ParseScenario(const std::string& value, CliOptions::Scenario* out) {
  if (value == "steady") *out = CliOptions::Scenario::kSteady;
  else if (value == "burst") *out = CliOptions::Scenario::kBurst;
  else if (value == "consolidation")
    *out = CliOptions::Scenario::kConsolidation;
  else if (value == "io") *out = CliOptions::Scenario::kIoContention;
  else if (value == "chaos-replica")
    *out = CliOptions::Scenario::kChaosReplica;
  else if (value == "chaos-disk") *out = CliOptions::Scenario::kChaosDisk;
  else if (value == "chaos-net") *out = CliOptions::Scenario::kChaosNet;
  else if (value == "chaos-ctl") *out = CliOptions::Scenario::kChaosCtl;
  else if (value == "overload") *out = CliOptions::Scenario::kOverload;
  else if (value == "tier-thrash") *out = CliOptions::Scenario::kTierThrash;
  else if (value == "tier-fail") *out = CliOptions::Scenario::kTierFail;
  else if (value == "cold-start") *out = CliOptions::Scenario::kColdStart;
  else return false;
  return true;
}

bool ParseOutput(const std::string& value, CliOptions::Output* out) {
  if (value == "table") *out = CliOptions::Output::kTable;
  else if (value == "samples-csv") *out = CliOptions::Output::kSamplesCsv;
  else if (value == "actions-csv") *out = CliOptions::Output::kActionsCsv;
  else if (value == "servers-csv") *out = CliOptions::Output::kServersCsv;
  else return false;
  return true;
}

bool ParseDouble(const std::string& value, double* out) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == nullptr || *end != '\0' || value.empty()) return false;
  *out = parsed;
  return true;
}

bool ParseInt(const std::string& value, int* out) {
  double d = 0;
  if (!ParseDouble(value, &d) || d != static_cast<int>(d)) return false;
  *out = static_cast<int>(d);
  return true;
}

bool ParseUint64(const std::string& value, uint64_t* out) {
  // strtoull silently wraps negative input ("-5" parses fine), so
  // reject anything that is not a plain digit string up front.
  if (value.empty() || value.find_first_not_of("0123456789") !=
                           std::string::npos) {
    return false;
  }
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = parsed;
  return true;
}

}  // namespace

std::string CliUsage() {
  return R"(fglb_sim -- scenario runner for the fglb cluster simulator

usage: fglb_sim [options]

  --scenario=NAME   steady | burst | consolidation | io |
                    chaos-replica | chaos-disk | chaos-net |
                    chaos-ctl | overload |
                    tier-thrash | tier-fail | cold-start    (default steady)
  --output=FORMAT   table | samples-csv | actions-csv | servers-csv
  --servers=N       machines in the shared pool             (default 4)
  --duration=SEC    simulated seconds                       (default 900)
  --tpcw-clients=N  TPC-W closed-loop clients               (default 120)
  --rubis-clients=N RUBiS closed-loop clients               (default 45)
  --clients-scale=X multiply every scenario's client counts by X
                    (million-client runs: e.g. overload at
                    --clients-scale=100)                    (default 1)
  --cohorts=MODE    client emulation: auto | on | off; batched
                    cohorts replace per-client think events
                    (auto = on from 10k clients per app)    (default auto)
  --seed=N          RNG seed (runs are deterministic)       (default 1)
  --tier2-pages=N   second-tier (SSD) cache pages per engine; 0 = no
                    tier (tier-* scenarios default to 16384) (default 0)
  --tier2-read-us=X service time of one tier-2 hit in usec  (default 100)
  --tier2-demote=M  on | off: demote DRAM evictions into the tier
                                                            (default on)
  --replacement=P   DRAM partition replacement: lru | clock | arc
                                                            (default lru)
  --mrc-threads=N   diagnosis worker threads; 0 = all cores (default 0)
  --mrc-sample-rate=R  Mattson replay sampling rate in (0,1];
                    1 = exact, 0.125 ~ 8x cheaper           (default 1)
  --mrc-mode=MODE   recompute | streaming: replay the access window
                    at diagnosis time, or read the per-class
                    incremental estimators            (default recompute)
  --mrc-opt-regret  attach the LRU-vs-Belady miss-ratio gap to every
                    diagnosed class (phase=mrc "regret_vs_opt")
  --trace-out=FILE  write the controller's JSONL decision trace
                    (one event per diagnosis phase per interval)
  --capture-out=FILE  record the full workload stream (arrivals,
                    page accesses, topology, actions) for fglb_replay
  --metrics-out=FILE  write a final metrics-registry JSON snapshot
  --metrics-interval=SEC  engine-stats sampling period;
                    0 = the retuner interval                 (default 0)
  --spans-out=FILE  write sampled per-query span timelines as Chrome
                    trace_event JSON (load in ui.perfetto.dev)
  --span-sample=N   trace 1 in N queries, deterministically by submit
                    sequence; implies span tracing even without
                    --spans-out                      (default 64)
  --fault-spec=SPEC fault schedule, e.g.
                    "crash@120:replica=1,restart=60;disk@300:server=0,factor=8,duration=120"
                    (chaos-* scenarios provide one if omitted)
  --fault-seed=N    fault-injector seed (schedule + decisions) (default 1)
  --stats-net=MODE  stats transport: direct | channel | auto; the
                    channel delivers interval reports through the DES
                    so `net` fault windows can drop/dup/corrupt/delay
                    them (auto = channel for chaos-net/chaos-ctl)
                                                            (default auto)
  --stats-guard=M   on | off: decay controller confidence while stats
                    reports are missing (fences widen, per-class
                    actions pause); off is the flapping ablation arm
                                                            (default on)
  --ckpt-interval=SEC  FGLBCKPT1 controller-checkpoint cadence;
                    0 = off, -1 = auto (chaos-ctl checkpoints every
                    retuner interval)                       (default -1)
  --admission=MODE  overload protection: on | off | auto
                    (auto = on for the overload scenario)    (default auto)
  --admission-target=R     CoDel target delay as a fraction of the SLA
  --admission-interval=SEC CoDel shed-decision window
  --admission-max-queue=N  per-replica in-flight cap before queue_full
  --admission-retry-ratio=R  retry tokens accrued per admitted query
  --admission-breaker-threshold=N  consecutive timeouts tripping a breaker
  --admission-breaker-open=SEC  breaker open time before half-open probes
  --log-level=L     quiet | info | debug                    (default info)
  --help            this text
)";
}

bool ParseCliOptions(const std::vector<std::string>& args,
                     CliOptions* options, std::string* error) {
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      options->help = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      *error = "unexpected positional argument: " + arg;
      return false;
    }
    std::string key = arg.substr(2);
    std::string value;
    const size_t eq = key.find('=');
    if (eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
    } else if (key == "mrc-opt-regret") {
      value = "on";  // bare boolean flag: --mrc-opt-regret
    } else {
      if (i + 1 >= args.size()) {
        *error = "missing value for --" + key;
        return false;
      }
      value = args[++i];
    }

    bool ok = true;
    if (key == "scenario") {
      ok = ParseScenario(value, &options->scenario);
    } else if (key == "output") {
      ok = ParseOutput(value, &options->output);
    } else if (key == "servers") {
      ok = ParseInt(value, &options->servers) && options->servers > 0;
    } else if (key == "duration") {
      ok = ParseDouble(value, &options->duration_seconds) &&
           options->duration_seconds > 0;
    } else if (key == "tpcw-clients") {
      ok = ParseDouble(value, &options->tpcw_clients) &&
           options->tpcw_clients >= 0;
    } else if (key == "rubis-clients") {
      ok = ParseDouble(value, &options->rubis_clients) &&
           options->rubis_clients >= 0;
    } else if (key == "clients-scale") {
      ok = ParseDouble(value, &options->clients_scale) &&
           options->clients_scale > 0;
    } else if (key == "cohorts") {
      ok = value == "auto" || value == "on" || value == "off";
      options->cohorts = value;
    } else if (key == "seed") {
      ok = ParseUint64(value, &options->seed);
    } else if (key == "tier2-pages") {
      ok = ParseUint64(value, &options->tier2_pages);
    } else if (key == "tier2-read-us") {
      ok = ParseDouble(value, &options->tier2_read_us) &&
           options->tier2_read_us > 0;
    } else if (key == "tier2-demote") {
      ok = value == "on" || value == "off" || value == "1" || value == "0";
      options->tier2_demote = value == "on" || value == "1";
    } else if (key == "replacement") {
      ok = value == "lru" || value == "clock" || value == "arc";
      options->replacement = value;
    } else if (key == "mrc-threads") {
      ok = ParseInt(value, &options->mrc_threads) &&
           options->mrc_threads >= 0;
    } else if (key == "mrc-sample-rate") {
      ok = ParseDouble(value, &options->mrc_sample_rate) &&
           options->mrc_sample_rate > 0 && options->mrc_sample_rate <= 1;
    } else if (key == "mrc-mode") {
      ok = value == "recompute" || value == "streaming";
      options->mrc_mode = value;
    } else if (key == "mrc-opt-regret") {
      ok = value == "on" || value == "off" || value == "1" || value == "0";
      options->mrc_opt_regret = value == "on" || value == "1";
    } else if (key == "trace-out") {
      ok = !value.empty();
      options->trace_out = value;
    } else if (key == "capture-out") {
      ok = !value.empty();
      options->capture_out = value;
    } else if (key == "metrics-out") {
      ok = !value.empty();
      options->metrics_out = value;
    } else if (key == "metrics-interval") {
      ok = ParseDouble(value, &options->metrics_interval_seconds) &&
           options->metrics_interval_seconds >= 0;
    } else if (key == "spans-out") {
      ok = !value.empty();
      options->spans_out = value;
    } else if (key == "span-sample") {
      ok = ParseUint64(value, &options->span_sample) &&
           options->span_sample > 0;
    } else if (key == "fault-spec") {
      ok = !value.empty();
      options->fault_spec = value;
    } else if (key == "fault-seed") {
      ok = ParseUint64(value, &options->fault_seed);
    } else if (key == "stats-net") {
      ok = value == "direct" || value == "channel" || value == "auto";
      options->stats_net = value;
    } else if (key == "stats-guard") {
      ok = value == "on" || value == "off" || value == "1" || value == "0";
      options->stats_guard = (value == "on" || value == "1") ? "on" : "off";
    } else if (key == "ckpt-interval") {
      ok = ParseDouble(value, &options->ckpt_interval) &&
           options->ckpt_interval >= -1;
    } else if (key == "admission") {
      ok = value == "on" || value == "off" || value == "auto";
      options->admission = value;
    } else if (key == "admission-target") {
      ok = ParseDouble(value, &options->admission_target) &&
           options->admission_target > 0;
    } else if (key == "admission-interval") {
      ok = ParseDouble(value, &options->admission_interval) &&
           options->admission_interval > 0;
    } else if (key == "admission-max-queue") {
      ok = ParseInt(value, &options->admission_max_queue) &&
           options->admission_max_queue > 0;
    } else if (key == "admission-retry-ratio") {
      ok = ParseDouble(value, &options->admission_retry_ratio) &&
           options->admission_retry_ratio >= 0;
    } else if (key == "admission-breaker-threshold") {
      ok = ParseInt(value, &options->admission_breaker_threshold) &&
           options->admission_breaker_threshold > 0;
    } else if (key == "admission-breaker-open") {
      ok = ParseDouble(value, &options->admission_breaker_open) &&
           options->admission_breaker_open > 0;
    } else if (key == "log-level") {
      ok = value == "quiet" || value == "info" || value == "debug";
      options->log_level = value;
    } else {
      *error = "unknown option --" + key;
      return false;
    }
    if (!ok) {
      *error = "invalid value for --" + key + ": " + value;
      return false;
    }
  }
  return true;
}

}  // namespace fglb
