#ifndef FGLB_SCENARIOS_CLI_OPTIONS_H_
#define FGLB_SCENARIOS_CLI_OPTIONS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace fglb {

// Options of the fglb_sim command-line scenario runner. Parsed from
// --key=value / --key value / --flag arguments; unknown keys fail with
// a message so typos do not silently run the default scenario.
struct CliOptions {
  enum class Scenario {
    kSteady,         // constant TPC-W load
    kBurst,          // step burst (Fig. 3-style provisioning)
    kConsolidation,  // TPC-W + RUBiS in one engine (Table 2)
    kIoContention,   // two RUBiS domains on one machine (Table 3)
    kChaosReplica,   // consolidation + replica crash/restart faults
    kChaosDisk,      // consolidation + disk-latency spike faults
    kChaosNet,       // consolidation + lossy stats-report transport
    kChaosCtl,       // consolidation + controller crash/restart
    kOverload,       // 3x TPC-W load on one replica (admission control)
    kTierThrash,     // consolidation squeezed into small DRAM + tier-2
    kTierFail,       // tier-thrash + the SSD tier failing mid-run
    kColdStart,      // tiered steady state from empty caches
  };
  enum class Output {
    kTable,       // human-readable series + actions
    kSamplesCsv,  // interval series as CSV
    kActionsCsv,  // action log as CSV
    kServersCsv,  // per-server utilization as CSV
  };

  Scenario scenario = Scenario::kSteady;
  Output output = Output::kTable;
  int servers = 4;
  double duration_seconds = 900;
  double tpcw_clients = 120;
  double rubis_clients = 45;
  // Multiplies every scenario's client counts (tpcw/rubis, including
  // scenario-specific defaults like overload's 7.5x), so e.g.
  // --clients-scale=100 drives the overload scenario at 100x without
  // recomputing per-app numbers by hand.
  double clients_scale = 1;
  // Client emulation: "auto" uses batched cohorts when the scaled
  // client count is large enough to need them (>= 10k per app), "on" /
  // "off" force the choice. See ClientEmulator::Options::cohort.
  std::string cohorts = "auto";
  uint64_t seed = 1;
  // Second-tier block cache under every engine's DRAM pool: total
  // pages (0 = tierless; the tier-* scenarios default it on), the
  // per-hit SSD read service time, and whether DRAM evictions are
  // demoted into the tier. Persisted in captures as the canonical
  // TierConfig spec so replays rebuild the identical hierarchy.
  uint64_t tier2_pages = 0;
  double tier2_read_us = 100.0;
  bool tier2_demote = true;
  // Replacement policy of every DRAM buffer-pool partition.
  std::string replacement = "lru";
  // MRC analysis pipeline: worker threads for the diagnosis fan-out
  // (0 = hardware concurrency, 1 = serial) and the Mattson replay
  // hash-sampling rate (1.0 = exact; e.g. 0.125 replays ~1/8 of the
  // pages and scales counts back up).
  int mrc_threads = 0;
  double mrc_sample_rate = 1.0;
  // How the diagnosis phase obtains curves: "recompute" replays the
  // access window on demand (the paper's behaviour, the differential
  // reference); "streaming" reads per-class incremental estimators.
  std::string mrc_mode = "recompute";
  // Attach the LRU-vs-Belady regret to every diagnosed class profile
  // (phase=mrc trace events gain "regret_vs_opt"). Costs an OPT
  // simulation over the access window per diagnosed class.
  bool mrc_opt_regret = false;
  // Observability outputs: a JSONL decision trace of the controller's
  // diagnosis cascade, a final metrics-registry snapshot, and the
  // engine-stats sampling period (0 = the retuner interval).
  std::string trace_out;
  // Workload capture output for the replay subsystem (fglb_replay):
  // empty disables capture.
  std::string capture_out;
  std::string metrics_out;
  double metrics_interval_seconds = 0;
  // Sampled per-query span tracing: Chrome trace_event / Perfetto JSON
  // timeline output (empty = no file) and the 1-in-N sampling rate
  // (0 = leave tracing off unless --spans-out is given, then 1-in-64).
  std::string spans_out;
  uint64_t span_sample = 0;
  // Fault injection: an explicit schedule (see the FaultSpec grammar in
  // sim/fault_injector.h / README) and the seed for the injector's own
  // decisions (migration failures) and for seed-generated schedules.
  // The chaos-* scenarios supply a default spec when this is empty.
  std::string fault_spec;
  uint64_t fault_seed = 1;
  // Stats transport: "direct" keeps the pre-channel engine handoff,
  // "channel" routes interval reports through the DES-delivered
  // StatsChannel (required for `net` faults to bite; chaos-net and
  // chaos-ctl default to it). "auto" picks per scenario.
  std::string stats_net = "auto";
  // Stale-telemetry guard: "on" decays confidence while reports are
  // missing (fence widening + action suppression); "off" is the
  // ablation arm that trusts last-known-good stats at full confidence.
  std::string stats_guard = "on";
  // Controller checkpoint cadence in seconds: -1 = auto (chaos-ctl
  // checkpoints every retuner interval, other scenarios don't),
  // 0 = explicitly off, > 0 = that cadence.
  double ckpt_interval = -1;
  // Overload protection: "on" | "off" | "auto" (auto = on for the
  // overload scenario, off elsewhere), plus the knobs forwarded into
  // AdmissionConfig (negative = keep that config's default).
  std::string admission = "auto";
  double admission_target = -1;             // CoDel target delay (xSLA)
  double admission_interval = -1;           // CoDel window seconds
  int admission_max_queue = -1;             // per-replica queue cap
  double admission_retry_ratio = -1;        // retry tokens per admit
  int admission_breaker_threshold = -1;     // consecutive failures
  double admission_breaker_open = -1;       // breaker open seconds
  // Stderr verbosity: quiet | info | debug.
  std::string log_level = "info";
  bool help = false;
};

// Parses argv (excluding argv[0]). On success returns true; on failure
// returns false with a one-line message in *error.
bool ParseCliOptions(const std::vector<std::string>& args,
                     CliOptions* options, std::string* error);

// The --help text.
std::string CliUsage();

}  // namespace fglb

#endif  // FGLB_SCENARIOS_CLI_OPTIONS_H_
