#ifndef FGLB_SCENARIOS_REPORT_H_
#define FGLB_SCENARIOS_REPORT_H_

#include <string>
#include <vector>

#include "core/selective_retuner.h"

namespace fglb {

// Text/CSV rendering of what the controller recorded: the interval
// time series (one row per app per interval, the data behind Fig. 3's
// three panels), the action log, and diagnosis summaries. Examples,
// benchmarks and the CLI all print through these, so output formats
// stay consistent.

// Fixed-width human-readable table of the per-app interval series.
std::string FormatSamplesTable(
    const std::vector<SelectiveRetuner::IntervalSample>& samples);

// CSV with header:
//   time_s,app,queries,avg_latency_s,p95_latency_s,throughput_qps,
//   sla_met,servers_used
std::string SamplesCsv(
    const std::vector<SelectiveRetuner::IntervalSample>& samples);

// CSV with header: time_s,server,cpu_utilization,io_utilization
std::string ServerUtilizationCsv(
    const std::vector<SelectiveRetuner::IntervalSample>& samples);

// Human-readable action log, one line per action.
std::string FormatActions(
    const std::vector<SelectiveRetuner::Action>& actions);

// CSV with header: time_s,kind,app,description (description quoted).
std::string ActionsCsv(
    const std::vector<SelectiveRetuner::Action>& actions);

// One-line-per-diagnosis summary (outlier/new/suspect/cleared counts).
std::string FormatDiagnoses(
    const std::vector<SelectiveRetuner::DiagnosisRecord>& diagnoses);

}  // namespace fglb

#endif  // FGLB_SCENARIOS_REPORT_H_
