#include "scenarios/harness.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <utility>
#include <vector>

#include "core/controller_checkpoint.h"

namespace fglb {

namespace {

// Applies fault events to the live cluster. Crash = detach from every
// scheduler + destroy (in-flight queries complete first, bounded by the
// resource manager's drain deadline); restart = re-provision capacity
// for the applications the dead replica served.
class HarnessFaultBackend : public FaultBackend {
 public:
  explicit HarnessFaultBackend(ClusterHarness* harness) : harness_(harness) {}

  bool CrashReplica(int replica_id) override {
    Replica* replica = harness_->resources().FindReplica(replica_id);
    if (replica == nullptr) return false;
    CrashRecord record;
    record.pool_pages = replica->engine().pool().capacity();
    for (const auto& scheduler : harness_->schedulers()) {
      const auto& set = scheduler->replicas();
      if (std::find(set.begin(), set.end(), replica) != set.end()) {
        record.apps.push_back(scheduler.get());
        scheduler->RemoveReplica(replica);
      }
    }
    crashes_[replica_id] = std::move(record);
    harness_->resources().DestroyReplica(replica);
    return true;
  }

  bool RestartReplica(int crashed_replica_id) override {
    auto it = crashes_.find(crashed_replica_id);
    if (it == crashes_.end()) return false;
    bool provisioned = false;
    for (Scheduler* scheduler : it->second.apps) {
      if (harness_->resources().ProvisionReplica(
              scheduler, it->second.pool_pages) != nullptr) {
        provisioned = true;
      }
    }
    crashes_.erase(it);
    return provisioned;
  }

  bool SetDiskLatencyFactor(int server_id, double factor) override {
    const auto& servers = harness_->resources().servers();
    if (server_id < 0 || server_id >= static_cast<int>(servers.size())) {
      return false;
    }
    servers[static_cast<size_t>(server_id)]->set_disk_latency_multiplier(
        factor);
    return true;
  }

  bool SetReplicaSlowdown(int replica_id, double factor) override {
    Replica* replica = harness_->resources().FindReplica(replica_id);
    if (replica == nullptr) return false;
    replica->set_slowdown(factor);
    return true;
  }

  bool SetStatsDropout(int replica_id, int mode) override {
    Replica* replica = harness_->resources().FindReplica(replica_id);
    if (replica == nullptr) return false;
    replica->engine().set_stats_dropout(static_cast<StatsDropout>(mode));
    return true;
  }

  bool SetTierFault(int replica_id, int mode, double factor) override {
    Replica* replica = harness_->resources().FindReplica(replica_id);
    if (replica == nullptr || replica->engine().tier2() == nullptr) {
      return false;
    }
    if (mode == kTierFail) {
      replica->engine().SetTierFailed(true);
    } else if (mode == kTierDegrade) {
      replica->engine().SetTierLatencyFactor(factor);
    } else {
      replica->engine().SetTierFailed(false);
      replica->engine().SetTierLatencyFactor(1.0);
    }
    return true;
  }

  bool CrashController() override { return harness_->CrashController(); }
  bool RestartController() override { return harness_->RestartController(); }

 private:
  struct CrashRecord {
    uint64_t pool_pages = 0;
    std::vector<Scheduler*> apps;  // schedulers the replica served
  };

  ClusterHarness* harness_;
  std::map<int, CrashRecord> crashes_;
};

}  // namespace

ClusterHarness::ClusterHarness(SelectiveRetuner::Config config,
                               bool observability,
                               Simulator::QueueKind queue_kind)
    : observability_(observability),
      sim_(queue_kind),
      resources_(&sim_),
      retuner_(&sim_, &resources_, WithObservability(std::move(config))) {
  if (observability_) {
    resources_.set_metrics(&metrics_);
    resources_.set_trace(&trace_);
    sim_.BindMetrics(&metrics_);
  }
}

SelectiveRetuner::Config ClusterHarness::WithObservability(
    SelectiveRetuner::Config config) {
  if (!observability_) return config;
  if (config.metrics == nullptr) config.metrics = &metrics_;
  if (config.trace == nullptr) config.trace = &trace_;
  return config;
}

void ClusterHarness::StartMetricsSampler(double period_seconds) {
  if (sampler_started_ || !observability_) return;
  sampler_started_ = true;
  const double period = period_seconds > 0
                            ? period_seconds
                            : retuner_.config().interval_seconds;
  struct Sampler {
    static void Arm(ClusterHarness* self, double period) {
      self->sim_.ScheduleAfter(period, [self, period] {
        self->resources_.PublishMetrics();
        Arm(self, period);
      });
    }
  };
  Sampler::Arm(this, period);
}

void ClusterHarness::AddServers(int count,
                                const PhysicalServer::Options& options) {
  for (int i = 0; i < count; ++i) resources_.AddServer(options);
}

Scheduler* ClusterHarness::AddApplication(ApplicationSpec spec) {
  specs_.push_back(std::make_unique<ApplicationSpec>(std::move(spec)));
  schedulers_.push_back(
      std::make_unique<Scheduler>(&sim_, specs_.back().get()));
  retuner_.RegisterApplication(schedulers_.back().get());
  if (arrival_recorder_ != nullptr) {
    schedulers_.back()->SetArrivalRecorder(arrival_recorder_);
  }
  if (span_tracer_ != nullptr) {
    schedulers_.back()->SetSpanTracer(span_tracer_.get());
  }
  if (admission_ != nullptr) {
    admission_->RegisterApp(specs_.back()->id,
                            specs_.back()->sla_latency_seconds);
    schedulers_.back()->SetAdmission(admission_.get());
    const double timeout = admission_->config().timeout_factor *
                           specs_.back()->sla_latency_seconds;
    if (timeout > resources_.execution_timeout_seconds()) {
      resources_.set_execution_timeout_seconds(timeout);
    }
  }
  return schedulers_.back().get();
}

AdmissionController* ClusterHarness::EnableAdmission(
    const AdmissionConfig& config) {
  if (admission_ != nullptr) return admission_.get();
  admission_ = std::make_unique<AdmissionController>(&sim_, config);
  if (observability_) {
    admission_->BindObservability(&metrics_, &trace_);
  }
  double max_sla = 0;
  for (const auto& spec : specs_) {
    admission_->RegisterApp(spec->id, spec->sla_latency_seconds);
    max_sla = std::max(max_sla, spec->sla_latency_seconds);
  }
  for (auto& scheduler : schedulers_) {
    scheduler->SetAdmission(admission_.get());
  }
  retuner_.set_admission(admission_.get());
  // Engine-side timeout accounting mirrors the breaker's failure
  // definition for the slowest-SLA application.
  if (max_sla > 0) {
    resources_.set_execution_timeout_seconds(config.timeout_factor * max_sla);
  }
  return admission_.get();
}

SpanTracer* ClusterHarness::EnableSpanTracing(const SpanConfig& config) {
  if (span_tracer_ != nullptr) return span_tracer_.get();
  span_tracer_ = std::make_unique<SpanTracer>(config);
  if (observability_) span_tracer_->BindMetrics(&metrics_);
  for (auto& scheduler : schedulers_) {
    scheduler->SetSpanTracer(span_tracer_.get());
  }
  retuner_.set_span_tracer(span_tracer_.get());
  return span_tracer_.get();
}

void ClusterHarness::AttachRecorders(ArrivalRecorder* arrivals,
                                     ExecutionRecorder* executions) {
  arrival_recorder_ = arrivals;
  for (auto& scheduler : schedulers_) {
    scheduler->SetArrivalRecorder(arrivals);
  }
  if (executions != nullptr) {
    resources_.set_replica_observer([executions](Replica* replica) {
      replica->engine().SetExecutionRecorder(executions, replica->id());
    });
  } else {
    resources_.set_replica_observer({});
  }
}

ClientEmulator* ClusterHarness::AddClients(Scheduler* scheduler,
                                           std::unique_ptr<LoadFunction> load,
                                           uint64_t seed,
                                           ClientEmulator::Options options) {
  assert(scheduler != nullptr);
  loads_.push_back(std::move(load));
  emulators_.push_back(std::make_unique<ClientEmulator>(
      &sim_, &scheduler->app(), scheduler, loads_.back().get(), seed,
      options));
  if (started_) emulators_.back()->Start();
  return emulators_.back().get();
}

ClientEmulator* ClusterHarness::AddConstantClients(
    Scheduler* scheduler, double clients, uint64_t seed,
    ClientEmulator::Options options) {
  return AddClients(scheduler, std::make_unique<ConstantLoad>(clients), seed,
                    options);
}

ApplicationSpec* ClusterHarness::mutable_app(Scheduler* scheduler) {
  for (auto& spec : specs_) {
    if (spec.get() == &scheduler->app()) return spec.get();
  }
  return nullptr;
}

FaultInjector* ClusterHarness::InjectFaults(FaultSpec spec, uint64_t seed) {
  if (fault_injector_ != nullptr) return fault_injector_.get();
  fault_backend_ = std::make_unique<HarnessFaultBackend>(this);
  fault_injector_ = std::make_unique<FaultInjector>(
      &sim_, fault_backend_.get(), std::move(spec), seed);
  if (observability_) {
    fault_injector_->BindObservability(&metrics_, &trace_);
  }
  retuner_.set_migration_interceptor(
      [injector = fault_injector_.get()](ClassKey key, int attempt) {
        const FaultInjector::MigrationDecision d =
            injector->OnMigrationAttempt(key, attempt);
        return MigrationOutcome{d.fail, d.delay_seconds};
      });
  if (stats_channel_ != nullptr) {
    // The channel was created first: hook it up now.
    stats_channel_->set_net_hook(
        [injector = fault_injector_.get()](int replica_id, uint64_t seq) {
          return injector->OnStatsReport(replica_id, seq);
        });
  }
  if (started_) fault_injector_->Arm();
  return fault_injector_.get();
}

StatsChannel* ClusterHarness::EnableStatsChannel(
    const StatsChannelConfig& config) {
  if (stats_channel_ != nullptr) return stats_channel_.get();
  stats_channel_ = std::make_unique<StatsChannel>(&sim_, config);
  if (observability_) stats_channel_->BindObservability(&metrics_, &trace_);
  retuner_.set_stats_channel(stats_channel_.get());
  if (fault_injector_ != nullptr) {
    stats_channel_->set_net_hook(
        [injector = fault_injector_.get()](int replica_id, uint64_t seq) {
          return injector->OnStatsReport(replica_id, seq);
        });
  }
  return stats_channel_.get();
}

void ClusterHarness::EnableCheckpointing(double interval_seconds) {
  if (checkpointing_) return;
  checkpointing_ = true;
  checkpoint_interval_ = interval_seconds > 0
                             ? interval_seconds
                             : retuner_.config().interval_seconds;
  struct Ckpt {
    static void Arm(ClusterHarness* self) {
      self->sim_.ScheduleAfter(self->checkpoint_interval_, [self] {
        // A crashed controller cannot checkpoint; the last blob taken
        // while it was healthy stays the restore point.
        if (!self->controller_down_) {
          ControllerCheckpoint::Build(self->sim_.Now(), self->retuner_,
                                      self->stats_channel_.get(),
                                      self->admission_.get(),
                                      &self->checkpoint_blob_);
        }
        Arm(self);
      });
    }
  };
  Ckpt::Arm(this);
}

bool ClusterHarness::CrashController() {
  if (controller_down_) return false;
  controller_down_ = true;
  retuner_.Stop();
  return true;
}

bool ClusterHarness::RestartController() {
  if (!controller_down_) return false;
  controller_down_ = false;
  // The crash lost the in-memory control plane. Either the checkpoint
  // brings it back, or the controller cold-starts and relearns.
  const char* why = "no_ckpt";
  double ckpt_t = 0;
  if (!checkpoint_blob_.empty()) {
    const ControllerCheckpoint::RestoreResult result =
        ControllerCheckpoint::Restore(checkpoint_blob_, &retuner_,
                                      stats_channel_.get(), admission_.get());
    // A rejected blob leaves everything reset — exactly the cold start.
    why = result.ok ? "restored" : "bad_ckpt";
    ckpt_t = result.taken_at;
  } else {
    retuner_.ResetControlState();
    if (stats_channel_ != nullptr) stats_channel_->ResetReceiverState();
    if (admission_ != nullptr) admission_->ResetState();
  }
  if (observability_) {
    metrics_.counter(std::string("controller.recovery.") + why)->Increment();
    if (trace_.enabled()) {
      TraceEvent event("recovery");
      event.Num("t", sim_.Now()).Str("why", why);
      if (ckpt_t > 0) event.Num("ckpt_t", ckpt_t);
      trace_.Emit(event);
    }
  }
  retuner_.Restart();
  return true;
}

void ClusterHarness::Start() {
  if (started_) return;
  started_ = true;
  for (auto& emulator : emulators_) emulator->Start();
  retuner_.Start();
  if (fault_injector_ != nullptr) fault_injector_->Arm();
  StartMetricsSampler();
}

void ClusterHarness::RunFor(double seconds) {
  sim_.RunUntil(sim_.Now() + seconds);
}

ClusterHarness::WindowSummary ClusterHarness::Summarize(AppId app,
                                                        SimTime from,
                                                        SimTime to) const {
  WindowSummary summary;
  double latency_weighted = 0;
  for (const auto& sample : retuner_.samples()) {
    if (sample.time < from || sample.time >= to) continue;
    for (const auto& as : sample.apps) {
      if (as.app != app) continue;
      ++summary.intervals;
      summary.queries += as.queries;
      latency_weighted += as.avg_latency * static_cast<double>(as.queries);
      summary.avg_throughput += as.throughput;
      if (!as.sla_met) ++summary.sla_violations;
    }
  }
  if (summary.queries > 0) {
    summary.avg_latency = latency_weighted / summary.queries;
  }
  if (summary.intervals > 0) {
    summary.avg_throughput /= summary.intervals;
  }
  return summary;
}

}  // namespace fglb
