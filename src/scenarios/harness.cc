#include "scenarios/harness.h"

#include <cassert>
#include <utility>

namespace fglb {

ClusterHarness::ClusterHarness(SelectiveRetuner::Config config,
                               bool observability)
    : observability_(observability),
      resources_(&sim_),
      retuner_(&sim_, &resources_, WithObservability(std::move(config))) {
  if (observability_) {
    resources_.set_metrics(&metrics_);
    sim_.BindMetrics(&metrics_);
  }
}

SelectiveRetuner::Config ClusterHarness::WithObservability(
    SelectiveRetuner::Config config) {
  if (!observability_) return config;
  if (config.metrics == nullptr) config.metrics = &metrics_;
  if (config.trace == nullptr) config.trace = &trace_;
  return config;
}

void ClusterHarness::StartMetricsSampler(double period_seconds) {
  if (sampler_started_ || !observability_) return;
  sampler_started_ = true;
  const double period = period_seconds > 0
                            ? period_seconds
                            : retuner_.config().interval_seconds;
  struct Sampler {
    static void Arm(ClusterHarness* self, double period) {
      self->sim_.ScheduleAfter(period, [self, period] {
        self->resources_.PublishMetrics();
        Arm(self, period);
      });
    }
  };
  Sampler::Arm(this, period);
}

void ClusterHarness::AddServers(int count,
                                const PhysicalServer::Options& options) {
  for (int i = 0; i < count; ++i) resources_.AddServer(options);
}

Scheduler* ClusterHarness::AddApplication(ApplicationSpec spec) {
  specs_.push_back(std::make_unique<ApplicationSpec>(std::move(spec)));
  schedulers_.push_back(
      std::make_unique<Scheduler>(&sim_, specs_.back().get()));
  retuner_.RegisterApplication(schedulers_.back().get());
  return schedulers_.back().get();
}

ClientEmulator* ClusterHarness::AddClients(Scheduler* scheduler,
                                           std::unique_ptr<LoadFunction> load,
                                           uint64_t seed,
                                           ClientEmulator::Options options) {
  assert(scheduler != nullptr);
  loads_.push_back(std::move(load));
  emulators_.push_back(std::make_unique<ClientEmulator>(
      &sim_, &scheduler->app(), scheduler, loads_.back().get(), seed,
      options));
  if (started_) emulators_.back()->Start();
  return emulators_.back().get();
}

ClientEmulator* ClusterHarness::AddConstantClients(Scheduler* scheduler,
                                                   double clients,
                                                   uint64_t seed) {
  return AddClients(scheduler, std::make_unique<ConstantLoad>(clients), seed);
}

ApplicationSpec* ClusterHarness::mutable_app(Scheduler* scheduler) {
  for (auto& spec : specs_) {
    if (spec.get() == &scheduler->app()) return spec.get();
  }
  return nullptr;
}

void ClusterHarness::Start() {
  if (started_) return;
  started_ = true;
  for (auto& emulator : emulators_) emulator->Start();
  retuner_.Start();
  StartMetricsSampler();
}

void ClusterHarness::RunFor(double seconds) {
  sim_.RunUntil(sim_.Now() + seconds);
}

ClusterHarness::WindowSummary ClusterHarness::Summarize(AppId app,
                                                        SimTime from,
                                                        SimTime to) const {
  WindowSummary summary;
  double latency_weighted = 0;
  for (const auto& sample : retuner_.samples()) {
    if (sample.time < from || sample.time >= to) continue;
    for (const auto& as : sample.apps) {
      if (as.app != app) continue;
      ++summary.intervals;
      summary.queries += as.queries;
      latency_weighted += as.avg_latency * static_cast<double>(as.queries);
      summary.avg_throughput += as.throughput;
      if (!as.sla_met) ++summary.sla_violations;
    }
  }
  if (summary.queries > 0) {
    summary.avg_latency = latency_weighted / summary.queries;
  }
  if (summary.intervals > 0) {
    summary.avg_throughput /= summary.intervals;
  }
  return summary;
}

}  // namespace fglb
