#ifndef FGLB_SCENARIOS_HARNESS_H_
#define FGLB_SCENARIOS_HARNESS_H_

#include <memory>
#include <vector>

#include "cluster/admission.h"
#include "cluster/resource_manager.h"
#include "cluster/scheduler.h"
#include "cluster/stats_channel.h"
#include "common/metrics_registry.h"
#include "common/span_tracer.h"
#include "common/trace_log.h"
#include "core/selective_retuner.h"
#include "sim/fault_injector.h"
#include "sim/simulator.h"
#include "workload/application.h"
#include "workload/client_emulator.h"
#include "workload/load_function.h"

namespace fglb {

// Convenience bundle wiring a whole experiment together: simulator,
// server pool, per-application schedulers/clients, and the retuning
// controller. Owns everything; tests, examples and benchmarks build
// their scenarios through it.
class ClusterHarness {
 public:
  // `observability` false skips all metrics/trace wiring: no registry
  // bindings anywhere, so instrumented hot paths take their null-check
  // branch (bench_overhead measures the difference). When true,
  // config.metrics/config.trace default to the harness-owned instances
  // unless the caller already supplied its own. `queue_kind` selects
  // the simulator's event-queue discipline (bench_des_kernel runs the
  // same scenario under both to isolate the queue's contribution).
  explicit ClusterHarness(
      SelectiveRetuner::Config config = {}, bool observability = true,
      Simulator::QueueKind queue_kind = Simulator::QueueKind::kCalendar);
  ClusterHarness(const ClusterHarness&) = delete;
  ClusterHarness& operator=(const ClusterHarness&) = delete;

  // Adds `count` identical servers to the pool.
  void AddServers(int count, const PhysicalServer::Options& options = {});

  // Registers an application: creates its scheduler and registers it
  // with the retuner. The spec is copied and kept alive by the harness.
  Scheduler* AddApplication(ApplicationSpec spec);

  // Attaches a closed-loop client population to an application.
  // The load function is kept alive by the harness.
  ClientEmulator* AddClients(Scheduler* scheduler,
                             std::unique_ptr<LoadFunction> load,
                             uint64_t seed,
                             ClientEmulator::Options options = {});

  // Shorthand: constant client population.
  ClientEmulator* AddConstantClients(Scheduler* scheduler, double clients,
                                     uint64_t seed,
                                     ClientEmulator::Options options = {});

  // Turns on overload protection cluster-wide: creates the admission
  // controller, installs it on every scheduler (existing and future),
  // registers every application's SLA, couples it into the retuner
  // (overload escalation, breaker-aware placement), and arms engine
  // execution-timeout accounting at timeout_factor x the largest SLA.
  // Idempotent — later calls return the existing controller, ignoring
  // `config`.
  AdmissionController* EnableAdmission(const AdmissionConfig& config = {});
  AdmissionController* admission() { return admission_.get(); }

  // Installs a fault injector driving this cluster: crash/restart maps
  // to scheduler detach + replica destruction / re-provisioning, disk
  // and slowdown faults mutate the live server/replica models, stats
  // faults degrade the engine's collector, and migration-fault windows
  // intercept the controller's re-placements. Deterministic per (spec,
  // seed). Call before Start() (Start arms the schedule); one injector
  // per harness, later calls return the first.
  FaultInjector* InjectFaults(FaultSpec spec, uint64_t seed);
  FaultInjector* fault_injector() { return fault_injector_.get(); }

  // Turns on sampled per-query span tracing: creates the tracer,
  // installs it on every scheduler (existing and future) and couples
  // it into the retuner (phase marks + wait profiles on phase=impact
  // events). Call before Start() so the sampling sequence covers the
  // whole run. Idempotent — later calls return the existing tracer,
  // ignoring `config`.
  SpanTracer* EnableSpanTracing(const SpanConfig& config = {});
  SpanTracer* span_tracer() { return span_tracer_.get(); }

  // Routes interval stats reports through an explicit DES-delivered
  // channel (publish -> deliver -> collect) instead of the retuner's
  // direct engine handoff; injected `net` fault windows then make
  // delivery lossy and the controller falls back to last-known-good
  // stats with confidence decay. Works in either creation order with
  // InjectFaults. Idempotent — later calls return the existing
  // channel, ignoring `config`.
  StatsChannel* EnableStatsChannel(const StatsChannelConfig& config = {});
  StatsChannel* stats_channel() { return stats_channel_.get(); }

  // Arms a recurring FGLBCKPT1 snapshot of the controller's control
  // plane every `interval_seconds` (<= 0 uses the retuner interval).
  // A `ctl` restart then restores from the latest blob instead of
  // cold-starting. Idempotent.
  void EnableCheckpointing(double interval_seconds = 0);
  const std::string& latest_checkpoint() const { return checkpoint_blob_; }

  // The `ctl` fault surface (also exposed for tests): CrashController
  // halts the interval ticker and strands the controller's in-flight
  // callbacks; RestartController wipes the control plane, restores it
  // from the latest checkpoint (phase=recovery why=restored) or
  // cold-starts (why=no_ckpt / why=bad_ckpt), and re-arms the ticker
  // so the next diagnosis lands one interval later.
  bool CrashController();
  bool RestartController();
  bool controller_down() const { return controller_down_; }

  // Wires workload-capture hooks into the whole cluster: `arrivals`
  // observes every scheduler Submit (existing schedulers and ones
  // added later), `executions` observes every engine's page-access
  // strings (existing replicas and ones created mid-run, via the
  // resource manager's replica observer). Either may be null; both
  // recorders must outlive the harness. Call before Start() so the
  // capture covers the whole run.
  void AttachRecorders(ArrivalRecorder* arrivals,
                       ExecutionRecorder* executions);

  // Starts every emulator plus the retuner's interval ticks.
  void Start();

  // Advances simulated time by `seconds`.
  void RunFor(double seconds);

  // Mutable access to a registered application's spec, for scenarios
  // that change the workload mid-run (e.g. dropping an index swaps a
  // template's access components in place).
  ApplicationSpec* mutable_app(Scheduler* scheduler);

  // Starts a recurring sim event that publishes cumulative engine /
  // buffer-pool stats into the registry every `period_seconds` (<= 0
  // uses the retuner interval). Start() arms the default sampler
  // automatically when observability is on; call earlier to customize.
  void StartMetricsSampler(double period_seconds = 0);

  Simulator& sim() { return sim_; }
  ResourceManager& resources() { return resources_; }
  SelectiveRetuner& retuner() { return retuner_; }
  MetricsRegistry& metrics() { return metrics_; }
  TraceLog& trace() { return trace_; }
  const std::vector<std::unique_ptr<Scheduler>>& schedulers() const {
    return schedulers_;
  }

  // Averages app metrics over the retuner samples within [from, to).
  struct WindowSummary {
    double avg_latency = 0;
    double avg_throughput = 0;
    uint64_t queries = 0;
    int intervals = 0;
    int sla_violations = 0;
  };
  WindowSummary Summarize(AppId app, SimTime from, SimTime to) const;

 private:
  // Fills in config.metrics/config.trace with the harness-owned
  // instances (ctor-init helper; members below are declared first so
  // their addresses are valid here).
  SelectiveRetuner::Config WithObservability(SelectiveRetuner::Config config);

  MetricsRegistry metrics_;
  TraceLog trace_;
  bool observability_;
  Simulator sim_;
  ResourceManager resources_;
  SelectiveRetuner retuner_;
  std::vector<std::unique_ptr<ApplicationSpec>> specs_;
  std::vector<std::unique_ptr<Scheduler>> schedulers_;
  std::vector<std::unique_ptr<LoadFunction>> loads_;
  std::vector<std::unique_ptr<ClientEmulator>> emulators_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<SpanTracer> span_tracer_;
  std::unique_ptr<FaultBackend> fault_backend_;
  std::unique_ptr<FaultInjector> fault_injector_;
  std::unique_ptr<StatsChannel> stats_channel_;
  ArrivalRecorder* arrival_recorder_ = nullptr;
  bool started_ = false;
  bool sampler_started_ = false;
  // ctl-fault state: the latest FGLBCKPT1 blob (empty until the first
  // cadence fires) and whether the controller is currently crashed.
  std::string checkpoint_blob_;
  double checkpoint_interval_ = 0;
  bool checkpointing_ = false;
  bool controller_down_ = false;
};

}  // namespace fglb

#endif  // FGLB_SCENARIOS_HARNESS_H_
