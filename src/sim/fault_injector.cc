#include "sim/fault_injector.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace fglb {

namespace {

// %g keeps the canonical serialization short and round-trippable for
// the magnitudes the grammar deals in (seconds, factors, rates).
std::string Num(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

bool ParseDouble(const std::string& value, double* out) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (value.empty() || end == nullptr || *end != '\0') return false;
  *out = parsed;
  return true;
}

bool ParseIntField(const std::string& value, int* out) {
  double d = 0;
  if (!ParseDouble(value, &d) || d != static_cast<int>(d)) return false;
  *out = static_cast<int>(d);
  return true;
}

bool ParseKind(const std::string& name, FaultKind* out) {
  if (name == "crash") *out = FaultKind::kCrash;
  else if (name == "disk") *out = FaultKind::kDisk;
  else if (name == "slow") *out = FaultKind::kSlow;
  else if (name == "stats") *out = FaultKind::kStats;
  else if (name == "migration") *out = FaultKind::kMigration;
  else if (name == "tier") *out = FaultKind::kTier;
  else if (name == "net") *out = FaultKind::kNet;
  else if (name == "ctl") *out = FaultKind::kCtl;
  else return false;
  return true;
}

std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t end = text.find(sep, start);
    if (end == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

std::string Trim(const std::string& text) {
  size_t begin = text.find_first_not_of(" \t\n");
  if (begin == std::string::npos) return "";
  size_t end = text.find_last_not_of(" \t\n");
  return text.substr(begin, end - begin + 1);
}

std::vector<const FaultEvent*> SortedByTime(
    const std::vector<FaultEvent>& events) {
  std::vector<const FaultEvent*> sorted;
  sorted.reserve(events.size());
  for (const FaultEvent& e : events) sorted.push_back(&e);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const FaultEvent* a, const FaultEvent* b) {
                     return a->time < b->time;
                   });
  return sorted;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kDisk:
      return "disk";
    case FaultKind::kSlow:
      return "slow";
    case FaultKind::kStats:
      return "stats";
    case FaultKind::kMigration:
      return "migration";
    case FaultKind::kTier:
      return "tier";
    case FaultKind::kNet:
      return "net";
    case FaultKind::kCtl:
      return "ctl";
  }
  return "unknown";
}

std::string FaultSpec::ToString() const {
  std::string out;
  for (const FaultEvent* e : SortedByTime(events)) {
    if (!out.empty()) out += ';';
    out += FaultKindName(e->kind);
    out += '@' + Num(e->time) + ':';
    switch (e->kind) {
      case FaultKind::kCrash:
        out += "replica=" + std::to_string(e->replica);
        if (e->restart_after >= 0) out += ",restart=" + Num(e->restart_after);
        break;
      case FaultKind::kDisk:
        out += "server=" + std::to_string(e->server) +
               ",factor=" + Num(e->factor);
        if (e->duration > 0) out += ",duration=" + Num(e->duration);
        break;
      case FaultKind::kSlow:
        out += "replica=" + std::to_string(e->replica) +
               ",factor=" + Num(e->factor);
        if (e->duration > 0) out += ",duration=" + Num(e->duration);
        break;
      case FaultKind::kStats:
        out += "replica=" + std::to_string(e->replica) + ",mode=" +
               (e->stats_mode == kStatsPartial ? "partial" : "drop");
        if (e->duration > 0) out += ",duration=" + Num(e->duration);
        break;
      case FaultKind::kMigration:
        out += "delay=" + Num(e->delay_seconds) + ",fail=" + Num(e->fail_rate);
        if (e->duration > 0) out += ",duration=" + Num(e->duration);
        break;
      case FaultKind::kTier:
        out += "replica=" + std::to_string(e->replica) + ",mode=" +
               (e->tier_mode == kTierDegrade ? "degrade" : "fail");
        if (e->tier_mode == kTierDegrade) out += ",factor=" + Num(e->factor);
        if (e->duration > 0) out += ",duration=" + Num(e->duration);
        break;
      case FaultKind::kNet: {
        // Zero-valued effects are omitted; the canonical form carries
        // only what the window actually does.
        std::string fields;
        auto add = [&fields](const char* key, double v) {
          if (v <= 0) return;
          if (!fields.empty()) fields += ',';
          fields += std::string(key) + "=" + Num(v);
        };
        add("drop", e->drop_rate);
        add("dup", e->dup_rate);
        add("corrupt", e->corrupt_rate);
        add("reorder", e->reorder_rate);
        add("delay", e->delay_seconds);
        add("duration", e->duration);
        out += fields;
        break;
      }
      case FaultKind::kCtl:
        if (e->restart_after >= 0) out += "restart=" + Num(e->restart_after);
        break;
    }
  }
  return out;
}

bool FaultSpec::Parse(const std::string& text, FaultSpec* out,
                      std::string* error) {
  FaultSpec spec;
  for (const std::string& raw_entry : Split(text, ';')) {
    const std::string entry = Trim(raw_entry);
    if (entry.empty()) continue;
    const size_t at = entry.find('@');
    const size_t colon = entry.find(':', at == std::string::npos ? 0 : at);
    if (at == std::string::npos || colon == std::string::npos) {
      *error = "fault entry needs kind@time:params, got: " + entry;
      return false;
    }
    FaultEvent event;
    // The grammar requires an explicit factor where one matters (the
    // struct default 1.0 would make a forgotten factor a silent no-op).
    event.factor = 0;
    if (!ParseKind(entry.substr(0, at), &event.kind)) {
      *error = "unknown fault kind: " + entry.substr(0, at);
      return false;
    }
    if (!ParseDouble(entry.substr(at + 1, colon - at - 1), &event.time) ||
        event.time < 0) {
      *error = "bad fault time in: " + entry;
      return false;
    }
    // An empty param list is zero pairs ("ctl@400:"), not one empty
    // pair; inside a non-empty list an empty pair names either a
    // trailing comma or a doubled one.
    const std::string params = entry.substr(colon + 1);
    const std::vector<std::string> pairs =
        params.empty() ? std::vector<std::string>() : Split(params, ',');
    std::vector<std::string> seen_keys;
    for (size_t pi = 0; pi < pairs.size(); ++pi) {
      const std::string pair = Trim(pairs[pi]);
      if (pair.empty()) {
        *error = pi + 1 == pairs.size()
                     ? "trailing comma in fault entry: " + entry
                     : "empty fault param in entry: " + entry;
        return false;
      }
      const size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        *error = "fault param needs key=value, got: " + pair;
        return false;
      }
      const std::string key = Trim(pair.substr(0, eq));
      const std::string value = Trim(pair.substr(eq + 1));
      if (key.empty()) {
        *error = "empty key in fault param: " + pair;
        return false;
      }
      if (value.empty()) {
        *error = "empty value for fault param " + key + " in: " + entry;
        return false;
      }
      if (std::find(seen_keys.begin(), seen_keys.end(), key) !=
          seen_keys.end()) {
        *error = "duplicate fault param key " + key + " in: " + entry;
        return false;
      }
      seen_keys.push_back(key);
      bool ok = true;
      if (key == "replica") ok = ParseIntField(value, &event.replica);
      else if (key == "server") ok = ParseIntField(value, &event.server);
      else if (key == "factor") ok = ParseDouble(value, &event.factor);
      else if (key == "duration") ok = ParseDouble(value, &event.duration);
      else if (key == "restart") ok = ParseDouble(value, &event.restart_after);
      else if (key == "delay") ok = ParseDouble(value, &event.delay_seconds);
      else if (key == "fail") ok = ParseDouble(value, &event.fail_rate);
      else if (key == "drop") ok = ParseDouble(value, &event.drop_rate);
      else if (key == "dup") ok = ParseDouble(value, &event.dup_rate);
      else if (key == "corrupt") ok = ParseDouble(value, &event.corrupt_rate);
      else if (key == "reorder") ok = ParseDouble(value, &event.reorder_rate);
      else if (key == "mode") {
        if (value == "drop") event.stats_mode = kStatsDropAll;
        else if (value == "partial") event.stats_mode = kStatsPartial;
        else if (value == "fail") event.tier_mode = kTierFail;
        else if (value == "degrade") event.tier_mode = kTierDegrade;
        else ok = false;
      } else {
        *error = "unknown fault param: " + key;
        return false;
      }
      if (!ok) {
        *error = "bad value for fault param " + key + ": " + value;
        return false;
      }
    }
    // Kind-specific required fields.
    const char* missing = nullptr;
    switch (event.kind) {
      case FaultKind::kCrash:
        if (event.replica < 0) missing = "replica";
        break;
      case FaultKind::kDisk:
        if (event.server < 0) missing = "server";
        else if (event.factor <= 0) missing = "factor";
        break;
      case FaultKind::kSlow:
        if (event.replica < 0) missing = "replica";
        else if (event.factor <= 0) missing = "factor";
        break;
      case FaultKind::kStats:
        if (event.replica < 0) missing = "replica";
        break;
      case FaultKind::kMigration:
        if (event.fail_rate < 0 || event.fail_rate > 1) missing = "fail";
        break;
      case FaultKind::kTier:
        if (event.replica < 0) missing = "replica";
        else if (event.tier_mode == 0) missing = "mode";
        else if (event.tier_mode == kTierDegrade && event.factor <= 0)
          missing = "factor";
        break;
      case FaultKind::kNet:
        if (event.drop_rate < 0 || event.drop_rate > 1) missing = "drop";
        else if (event.dup_rate < 0 || event.dup_rate > 1) missing = "dup";
        else if (event.corrupt_rate < 0 || event.corrupt_rate > 1)
          missing = "corrupt";
        else if (event.reorder_rate < 0 || event.reorder_rate > 1)
          missing = "reorder";
        else if (event.delay_seconds < 0) missing = "delay";
        else if (event.drop_rate + event.dup_rate + event.corrupt_rate +
                     event.reorder_rate + event.delay_seconds <=
                 0)
          missing = "drop";  // a window must do *something*
        break;
      case FaultKind::kCtl:
        break;  // restart is optional; absent = controller stays down
    }
    if (missing != nullptr) {
      *error = std::string("fault entry missing/invalid ") + missing + ": " +
               entry;
      return false;
    }
    spec.events.push_back(event);
  }
  *out = std::move(spec);
  return true;
}

FaultSpec MakeRandomFaultSpec(uint64_t seed, double duration,
                              const RandomFaultProfile& profile) {
  assert(duration > 0);
  Rng rng(seed);
  FaultSpec spec;
  auto when = [&rng, &profile, duration] {
    return rng.UniformDouble(profile.min_time_fraction * duration,
                             profile.max_time_fraction * duration);
  };
  auto pick = [&rng](int n) {
    return n > 0 ? static_cast<int>(rng.NextUint64(
                       static_cast<uint64_t>(n)))
                 : 0;
  };
  for (int i = 0; i < profile.crashes; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kCrash;
    e.time = when();
    e.replica = pick(profile.replicas);
    e.restart_after = rng.UniformDouble(20, 60);
    spec.events.push_back(e);
  }
  for (int i = 0; i < profile.disk_spikes; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kDisk;
    e.time = when();
    e.server = pick(profile.servers);
    e.factor = rng.UniformDouble(2, 10);
    e.duration = rng.UniformDouble(30, 120);
    spec.events.push_back(e);
  }
  for (int i = 0; i < profile.slowdowns; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kSlow;
    e.time = when();
    e.replica = pick(profile.replicas);
    e.factor = rng.UniformDouble(1.5, 4);
    e.duration = rng.UniformDouble(30, 120);
    spec.events.push_back(e);
  }
  for (int i = 0; i < profile.stats_dropouts; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kStats;
    e.time = when();
    e.replica = pick(profile.replicas);
    e.stats_mode = rng.Bernoulli(0.5) ? kStatsDropAll : kStatsPartial;
    e.duration = rng.UniformDouble(20, 80);
    spec.events.push_back(e);
  }
  for (int i = 0; i < profile.migration_windows; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kMigration;
    e.time = when();
    e.delay_seconds = rng.UniformDouble(1, 8);
    e.fail_rate = rng.UniformDouble(0, 0.6);
    e.duration = rng.UniformDouble(60, 240);
    spec.events.push_back(e);
  }
  // Drawn last so existing seeds (tier_faults defaults to 0) keep
  // expanding to their historical schedules byte-for-byte.
  for (int i = 0; i < profile.tier_faults; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kTier;
    e.time = when();
    e.replica = pick(profile.replicas);
    e.tier_mode = rng.Bernoulli(0.5) ? kTierFail : kTierDegrade;
    e.factor =
        e.tier_mode == kTierDegrade ? rng.UniformDouble(2, 10) : 0;
    e.duration = rng.UniformDouble(30, 120);
    spec.events.push_back(e);
  }
  // And net/ctl after tier, for the same seed-stability reason.
  for (int i = 0; i < profile.net_windows; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kNet;
    e.time = when();
    e.drop_rate = rng.UniformDouble(0.05, 0.3);
    e.dup_rate = rng.UniformDouble(0, 0.15);
    e.corrupt_rate = rng.UniformDouble(0, 0.1);
    e.reorder_rate = rng.UniformDouble(0, 0.2);
    e.delay_seconds = rng.UniformDouble(0, 4);
    e.duration = rng.UniformDouble(60, 240);
    spec.events.push_back(e);
  }
  for (int i = 0; i < profile.ctl_crashes; ++i) {
    FaultEvent e;
    e.kind = FaultKind::kCtl;
    e.time = when();
    e.restart_after = rng.UniformDouble(10, 40);
    spec.events.push_back(e);
  }
  return spec;
}

FaultInjector::FaultInjector(Simulator* sim, FaultBackend* backend,
                             FaultSpec spec, uint64_t seed)
    : sim_(sim),
      backend_(backend),
      spec_(std::move(spec)),
      // Decorrelate decision draws from any schedule generated with the
      // same seed.
      rng_(seed ^ 0xFA17BEEFULL) {
  assert(sim_ != nullptr && backend_ != nullptr);
}

void FaultInjector::BindObservability(MetricsRegistry* metrics,
                                      TraceLog* trace) {
  metrics_ = metrics;
  trace_ = trace;
}

void FaultInjector::Arm() {
  if (armed_) return;
  armed_ = true;
  const SimTime now = sim_->Now();
  for (const FaultEvent& event : spec_.events) {
    const FaultEvent copy = event;
    sim_->ScheduleAt(std::max(now, event.time), [this, copy] { Fire(copy); });
  }
}

void FaultInjector::Note(const char* kind, int target, double factor,
                         bool applied, bool revert) {
  if (applied) {
    ++injected_;
  } else {
    ++noops_;
  }
  if (metrics_ != nullptr) {
    metrics_
        ->counter(applied ? std::string("fault.") + kind
                          : std::string("fault.noop"))
        ->Increment();
  }
  if (trace_ != nullptr && trace_->enabled()) {
    TraceEvent event("fault");
    event.Num("t", sim_->Now())
        .Str("kind", kind)
        .Int("target", target)
        .Num("factor", factor)
        .Bool("applied", applied)
        .Bool("revert", revert);
    trace_->Emit(event);
  }
}

void FaultInjector::Fire(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kCrash: {
      const bool ok = backend_->CrashReplica(event.replica);
      Note("crash", event.replica, 0, ok, false);
      if (ok && event.restart_after >= 0) {
        const int replica = event.replica;
        sim_->ScheduleAfter(event.restart_after, [this, replica] {
          const bool restarted = backend_->RestartReplica(replica);
          Note("restart", replica, 0, restarted, false);
        });
      }
      break;
    }
    case FaultKind::kDisk: {
      const bool ok = backend_->SetDiskLatencyFactor(event.server,
                                                     event.factor);
      Note("disk", event.server, event.factor, ok, false);
      if (ok && event.duration > 0) {
        const FaultEvent copy = event;
        sim_->ScheduleAfter(event.duration, [this, copy] { Revert(copy); });
      }
      break;
    }
    case FaultKind::kSlow: {
      const bool ok = backend_->SetReplicaSlowdown(event.replica,
                                                   event.factor);
      Note("slow", event.replica, event.factor, ok, false);
      if (ok && event.duration > 0) {
        const FaultEvent copy = event;
        sim_->ScheduleAfter(event.duration, [this, copy] { Revert(copy); });
      }
      break;
    }
    case FaultKind::kStats: {
      const bool ok = backend_->SetStatsDropout(event.replica,
                                                event.stats_mode);
      Note("stats", event.replica, event.stats_mode, ok, false);
      if (ok && event.duration > 0) {
        const FaultEvent copy = event;
        sim_->ScheduleAfter(event.duration, [this, copy] { Revert(copy); });
      }
      break;
    }
    case FaultKind::kMigration: {
      ++migration_windows_;
      migration_delay_ = event.delay_seconds;
      migration_fail_rate_ = event.fail_rate;
      Note("migration_window", -1, event.fail_rate, true, false);
      if (event.duration > 0) {
        const FaultEvent copy = event;
        sim_->ScheduleAfter(event.duration, [this, copy] { Revert(copy); });
      }
      break;
    }
    case FaultKind::kTier: {
      const bool ok = backend_->SetTierFault(event.replica, event.tier_mode,
                                             event.factor);
      Note("tier", event.replica,
           event.tier_mode == kTierDegrade ? event.factor : 0, ok, false);
      if (ok && event.duration > 0) {
        const FaultEvent copy = event;
        sim_->ScheduleAfter(event.duration, [this, copy] { Revert(copy); });
      }
      break;
    }
    case FaultKind::kNet: {
      ++net_windows_;
      net_drop_rate_ = event.drop_rate;
      net_dup_rate_ = event.dup_rate;
      net_corrupt_rate_ = event.corrupt_rate;
      net_reorder_rate_ = event.reorder_rate;
      net_delay_ = event.delay_seconds;
      Note("net_window", -1, event.drop_rate, true, false);
      if (event.duration > 0) {
        const FaultEvent copy = event;
        sim_->ScheduleAfter(event.duration, [this, copy] { Revert(copy); });
      }
      break;
    }
    case FaultKind::kCtl: {
      const bool ok = backend_->CrashController();
      Note("ctl_crash", -1, 0, ok, false);
      if (ok && event.restart_after >= 0) {
        sim_->ScheduleAfter(event.restart_after, [this] {
          const bool restarted = backend_->RestartController();
          Note("ctl_restart", -1, 0, restarted, false);
        });
      }
      break;
    }
  }
}

void FaultInjector::Revert(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kCrash:
      break;  // crashes do not revert (restart is a separate sub-event)
    case FaultKind::kDisk:
      Note("disk", event.server, 1.0,
           backend_->SetDiskLatencyFactor(event.server, 1.0), true);
      break;
    case FaultKind::kSlow:
      Note("slow", event.replica, 1.0,
           backend_->SetReplicaSlowdown(event.replica, 1.0), true);
      break;
    case FaultKind::kStats:
      Note("stats", event.replica, 0,
           backend_->SetStatsDropout(event.replica, 0), true);
      break;
    case FaultKind::kMigration:
      migration_windows_ = std::max(0, migration_windows_ - 1);
      Note("migration_window", -1, 0, true, true);
      break;
    case FaultKind::kTier:
      Note("tier", event.replica, 1.0,
           backend_->SetTierFault(event.replica, 0, 1.0), true);
      break;
    case FaultKind::kNet:
      net_windows_ = std::max(0, net_windows_ - 1);
      Note("net_window", -1, 0, true, true);
      break;
    case FaultKind::kCtl:
      break;  // restarts are separate sub-events, like replica crashes
  }
}

FaultInjector::MigrationDecision FaultInjector::OnMigrationAttempt(
    uint64_t /*class_key*/, int /*attempt*/) {
  if (migration_windows_ <= 0) return {};
  MigrationDecision decision;
  decision.fail =
      migration_fail_rate_ > 0 && rng_.Bernoulli(migration_fail_rate_);
  decision.delay_seconds = decision.fail ? 0 : migration_delay_;
  if (metrics_ != nullptr) {
    if (decision.fail) {
      metrics_->counter("fault.migration.failed")->Increment();
    } else if (decision.delay_seconds > 0) {
      metrics_->counter("fault.migration.delayed")->Increment();
    }
  }
  return decision;
}

FaultInjector::NetDecision FaultInjector::OnStatsReport(int /*replica_id*/,
                                                        uint64_t /*seq*/) {
  if (net_windows_ <= 0) return {};
  NetDecision decision;
  if (net_drop_rate_ > 0 && rng_.Bernoulli(net_drop_rate_)) {
    decision.drop = true;
    if (metrics_ != nullptr) {
      metrics_->counter("fault.net.dropped")->Increment();
    }
    return decision;
  }
  decision.delay_seconds = net_delay_;
  if (net_dup_rate_ > 0 && rng_.Bernoulli(net_dup_rate_)) {
    decision.duplicate = true;
    if (metrics_ != nullptr) {
      metrics_->counter("fault.net.duplicated")->Increment();
    }
  }
  if (net_corrupt_rate_ > 0 && rng_.Bernoulli(net_corrupt_rate_)) {
    decision.corrupt = true;
    if (metrics_ != nullptr) {
      metrics_->counter("fault.net.corrupted")->Increment();
    }
  }
  if (net_reorder_rate_ > 0 && rng_.Bernoulli(net_reorder_rate_)) {
    decision.reorder = true;
    if (metrics_ != nullptr) {
      metrics_->counter("fault.net.reordered")->Increment();
    }
  }
  return decision;
}

}  // namespace fglb
