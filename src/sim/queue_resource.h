#ifndef FGLB_SIM_QUEUE_RESOURCE_H_
#define FGLB_SIM_QUEUE_RESOURCE_H_

#include <cstdint>
#include <deque>
#include <string>

#include "sim/inline_callback.h"
#include "sim/simulator.h"

namespace fglb {

// A FIFO queueing station with `servers` identical parallel servers.
// Models both a multi-core CPU (servers = cores) and a disk channel
// (servers = 1). Jobs carry a service demand in seconds; completion
// callbacks fire when the job finishes service. Utilization is the
// time-integral of busy servers divided by capacity.
class QueueResource {
 public:
  // Completion callbacks receive the job's sojourn (queued + service)
  // time. Move-only, small-buffer backed: the scheduler/replica chains
  // that flow through here would otherwise pay a std::function heap
  // allocation per stage per query.
  using CompletionFn = InlineCallback<void(double sojourn)>;

  QueueResource(Simulator* sim, int servers, std::string name);
  QueueResource(const QueueResource&) = delete;
  QueueResource& operator=(const QueueResource&) = delete;

  // Enqueues a job. `on_complete` runs (via the simulator) when service
  // finishes; it receives the time the job spent queued + in service.
  void Submit(double service_time, CompletionFn on_complete);

  int servers() const { return servers_; }
  const std::string& name() const { return name_; }
  size_t queue_length() const { return waiting_.size(); }
  int busy_servers() const { return busy_; }

  // Utilization since the last ResetAccounting(): fraction of
  // server-seconds busy over the accounting window ending now.
  double UtilizationSinceReset() const;

  // Total busy server-seconds since construction.
  double busy_time() const;

  uint64_t completed_jobs() const { return completed_; }

  // Starts a new utilization accounting window at the current time.
  // In-flight jobs are unaffected.
  void ResetAccounting();

 private:
  struct Job {
    double service_time;
    SimTime arrival;
    CompletionFn on_complete;
  };

  void StartService(Job job);
  void AccumulateBusy();

  Simulator* sim_;
  int servers_;
  std::string name_;
  int busy_ = 0;
  std::deque<Job> waiting_;
  uint64_t completed_ = 0;

  // Busy-time integral bookkeeping.
  double busy_integral_ = 0;
  SimTime last_change_ = 0;
  SimTime accounting_start_ = 0;
  double accounting_baseline_ = 0;
};

}  // namespace fglb

#endif  // FGLB_SIM_QUEUE_RESOURCE_H_
