#ifndef FGLB_SIM_FAULT_INJECTOR_H_
#define FGLB_SIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics_registry.h"
#include "common/random.h"
#include "common/trace_log.h"
#include "sim/simulator.h"

namespace fglb {

// Deterministic, schedule-driven fault injection for the cluster
// simulation. The injector itself knows nothing about replicas or
// servers — it owns the schedule (parsed from a spec string or
// generated from a seed), fires each fault at its simulated time, and
// calls into a FaultBackend that applies the fault to the cluster.
// Everything is deterministic per (spec, seed): the schedule, the
// firing order (simulator tie-breaking) and every migration-fault
// decision (seeded Rng). Applied faults are recorded in the
// observability layer as "fault" trace events and fault.* counters.

enum class FaultKind {
  kCrash,      // replica crash (optionally restarted later)
  kDisk,       // disk-latency spike on one server's I/O channel
  kSlow,       // slow-replica degradation (CPU demand multiplier)
  kStats,      // stats-collector dropout (missing/partial metrics)
  kMigration,  // window in which class migrations are delayed/failed
  kTier,       // second-tier cache failure (cold) or degradation (slow)
  kNet,        // window of lossy stats transport (drop/dup/corrupt/...)
  kCtl,        // controller crash (optionally restarted later)
};

const char* FaultKindName(FaultKind kind);

// Stats dropout severities carried by kStats events (mirrors
// StatsDropout in engine/stats_collector.h; kept as int here so the
// sim library stays free of engine dependencies).
inline constexpr int kStatsDropAll = 1;
inline constexpr int kStatsPartial = 2;

// Tier fault modes carried by kTier events: fail drops the tier's
// contents and serves nothing until reverted (recovery is cold);
// degrade multiplies every tier-2 hit's service time by `factor`.
inline constexpr int kTierFail = 1;
inline constexpr int kTierDegrade = 2;

// One scheduled fault. Which fields matter depends on `kind`:
//   kCrash:     replica, restart_after (< 0 = never restarted)
//   kDisk:      server, factor, duration (<= 0 = permanent)
//   kSlow:      replica, factor, duration
//   kStats:     replica, stats_mode, duration
//   kMigration: delay_seconds, fail_rate, duration
//   kTier:      replica, tier_mode, factor (degrade only), duration
//   kNet:       drop/dup/corrupt/reorder rates, delay_seconds, duration
//   kCtl:       restart_after (< 0 = controller stays down)
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  SimTime time = 0;
  int replica = -1;
  int server = -1;
  double factor = 1.0;
  double duration = 0;
  double restart_after = -1;
  int stats_mode = kStatsDropAll;
  int tier_mode = 0;  // required for kTier: kTierFail or kTierDegrade
  double delay_seconds = 0;
  double fail_rate = 0;
  // kNet per-report Bernoulli rates (each in [0, 1]).
  double drop_rate = 0;
  double dup_rate = 0;
  double corrupt_rate = 0;
  double reorder_rate = 0;
};

// A full fault schedule. The textual grammar (see README):
//
//   spec   := entry (';' entry)*
//   entry  := kind '@' seconds ':' key '=' value (',' key '=' value)*
//
//   crash@120:replica=1,restart=60
//   disk@300:server=0,factor=8,duration=120
//   slow@200:replica=0,factor=3,duration=100
//   stats@250:replica=0,mode=drop,duration=50
//   migration@100:delay=5,fail=0.5,duration=300
//   tier@150:replica=0,mode=fail,duration=60
//   tier@150:replica=0,mode=degrade,factor=10,duration=60
//   net@200:drop=0.1,dup=0.05,corrupt=0.02,reorder=0.1,delay=2,duration=120
//   ctl@400:restart=30
struct FaultSpec {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  // Canonical serialization: events sorted by (time, insertion order),
  // fields in a fixed order. Two specs describing the same schedule
  // serialize byte-identically — the determinism tests compare these.
  std::string ToString() const;

  // Parses the grammar above. Duplicate keys, empty keys/values and
  // trailing commas inside an entry are rejected with a message naming
  // the offending token. On failure returns false with a one-line
  // message in *error; *out is left untouched.
  static bool Parse(const std::string& text, FaultSpec* out,
                    std::string* error);
};

// Knobs for seed-generated random schedules (chaos soak testing).
// Event times land in [min_time_fraction, max_time_fraction] of
// `duration`; targets are drawn uniformly from the id ranges.
struct RandomFaultProfile {
  int replicas = 2;  // replica ids drawn from [0, replicas)
  int servers = 2;   // server ids drawn from [0, servers)
  int crashes = 1;
  int disk_spikes = 1;
  int slowdowns = 1;
  int stats_dropouts = 1;
  int migration_windows = 1;
  // Off by default: pre-tier seeds must keep expanding to the
  // byte-identical schedules they always did.
  int tier_faults = 0;
  // Likewise off by default; drawn after tier faults for the same
  // seed-stability reason.
  int net_windows = 0;
  int ctl_crashes = 0;
  double min_time_fraction = 0.2;
  double max_time_fraction = 0.8;
};

// Deterministically expands (seed, duration, profile) into a schedule:
// the same seed always yields the byte-identical spec.
FaultSpec MakeRandomFaultSpec(uint64_t seed, double duration,
                              const RandomFaultProfile& profile = {});

// The cluster-side effector the injector drives. Implemented by
// ClusterHarness (scenarios layer); each hook returns false when the
// target no longer exists (e.g. a random schedule names a replica that
// already crashed) — the injector counts these as no-ops.
class FaultBackend {
 public:
  virtual ~FaultBackend() = default;
  virtual bool CrashReplica(int replica_id) = 0;
  // Re-provisions capacity for the applications `crashed_replica_id`
  // served when it crashed.
  virtual bool RestartReplica(int crashed_replica_id) = 0;
  virtual bool SetDiskLatencyFactor(int server_id, double factor) = 0;
  virtual bool SetReplicaSlowdown(int replica_id, double factor) = 0;
  // mode: 0 = none (restore), kStatsDropAll, kStatsPartial.
  virtual bool SetStatsDropout(int replica_id, int mode) = 0;
  // mode: 0 = restore, kTierFail, kTierDegrade (`factor` scales tier-2
  // hit latency). Defaulted — not pure — so backends predating the
  // tier keep compiling; the default reports "target does not exist".
  virtual bool SetTierFault(int /*replica_id*/, int /*mode*/,
                            double /*factor*/) {
    return false;
  }
  // kCtl hooks: halt the controller's diagnosis loop mid-run, then
  // bring it back (restoring from a checkpoint when one exists).
  // Defaulted like SetTierFault so pre-existing backends keep
  // compiling; the defaults report "no controller to crash".
  virtual bool CrashController() { return false; }
  virtual bool RestartController() { return false; }
};

class FaultInjector {
 public:
  // What a migration attempt should experience right now (consulted by
  // the controller's migration interceptor).
  struct MigrationDecision {
    bool fail = false;
    double delay_seconds = 0;
  };

  // What one published interval report should experience in transit
  // (consulted by the StatsChannel). Outside any net window every
  // field stays at its default and the report is delivered untouched.
  struct NetDecision {
    bool drop = false;
    bool duplicate = false;
    bool corrupt = false;
    bool reorder = false;
    double delay_seconds = 0;
  };

  FaultInjector(Simulator* sim, FaultBackend* backend, FaultSpec spec,
                uint64_t seed);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Optional: record applied faults as fault.* counters and "fault"
  // trace events. Call before Arm().
  void BindObservability(MetricsRegistry* metrics, TraceLog* trace);

  // Schedules every event (at max(now, event time)). Idempotent.
  void Arm();

  // Decides the fate of one migration attempt. Outside any active
  // migration-fault window this returns {false, 0}; inside, failure is
  // a seeded Bernoulli draw and the delay is the window's. The draw
  // sequence is deterministic per seed and per attempt order.
  MigrationDecision OnMigrationAttempt(uint64_t class_key, int attempt);

  // Decides the fate of one stats report in transit. Outside any net
  // window this returns the all-default (deliver untouched) decision;
  // inside, each effect is a seeded Bernoulli draw on the window's
  // rate. A dropped report draws nothing further, so the decision
  // stream stays deterministic per seed and publish order.
  NetDecision OnStatsReport(int replica_id, uint64_t seq);

  bool migration_window_active() const { return migration_windows_ > 0; }
  bool net_window_active() const { return net_windows_ > 0; }
  const FaultSpec& spec() const { return spec_; }
  uint64_t faults_injected() const { return injected_; }
  // Events whose target no longer existed when they fired.
  uint64_t noop_faults() const { return noops_; }

 private:
  void Fire(const FaultEvent& event);
  void Revert(const FaultEvent& event);
  // Counts + traces one applied/noop (sub-)fault.
  void Note(const char* kind, int target, double factor, bool applied,
            bool revert);

  Simulator* sim_;
  FaultBackend* backend_;
  FaultSpec spec_;
  Rng rng_;
  bool armed_ = false;
  uint64_t injected_ = 0;
  uint64_t noops_ = 0;
  // Active migration-fault window state (last-armed window wins when
  // windows overlap).
  int migration_windows_ = 0;
  double migration_delay_ = 0;
  double migration_fail_rate_ = 0;
  // Active net-fault window state (same last-armed-wins rule).
  int net_windows_ = 0;
  double net_drop_rate_ = 0;
  double net_dup_rate_ = 0;
  double net_corrupt_rate_ = 0;
  double net_reorder_rate_ = 0;
  double net_delay_ = 0;
  MetricsRegistry* metrics_ = nullptr;
  TraceLog* trace_ = nullptr;
};

}  // namespace fglb

#endif  // FGLB_SIM_FAULT_INJECTOR_H_
