#include "sim/simulator.h"

#include <cassert>
#include <utility>

namespace fglb {

void Simulator::ScheduleAt(SimTime when, std::function<void()> fn) {
  assert(when >= now_);
  queue_.push(Event{when, next_sequence_++, std::move(fn)});
}

void Simulator::ScheduleAfter(SimTime delay, std::function<void()> fn) {
  assert(delay >= 0);
  ScheduleAt(now_ + delay, std::move(fn));
}

void Simulator::BindMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    events_executed_ = nullptr;
    queue_depth_ = nullptr;
    return;
  }
  events_executed_ = registry->counter("sim.events_executed");
  queue_depth_ = registry->gauge("sim.queue_depth");
}

void Simulator::RunUntil(SimTime until) {
  while (!queue_.empty() && queue_.top().when <= until) {
    // Copy out before pop: the callback may schedule new events.
    Event event = queue_.top();
    queue_.pop();
    now_ = event.when;
    NoteExecuted();
    event.fn();
  }
  if (now_ < until && queue_.empty()) {
    // Nothing left before `until`; advance the clock so callers can
    // keep stepping in fixed intervals.
    now_ = until;
  } else if (now_ < until) {
    now_ = until;
  }
}

void Simulator::RunToCompletion() {
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    now_ = event.when;
    NoteExecuted();
    event.fn();
  }
}

}  // namespace fglb
