#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace fglb {
namespace {

constexpr size_t kChunkNodes = 1024;   // pool growth granularity
constexpr size_t kMinBuckets = 32;     // calendar never shrinks below this
// Largest double we trust to convert to uint64_t without overflow.
constexpr double kMaxVirtualBucket = 9.0e18;

}  // namespace

// Reverse of EventLess: std::push_heap builds a max-heap, so ordering
// by "later" puts the earliest (when, seq) at the front.
struct Simulator::HeapLater {
  bool operator()(const EventNode* a, const EventNode* b) const {
    return EventLess(b, a);
  }
};

Simulator::Simulator(QueueKind kind) : kind_(kind) {
  calendar_.heads.assign(kMinBuckets, nullptr);
  calendar_.tails.assign(kMinBuckets, nullptr);
  calendar_.mask = kMinBuckets - 1;
}

Simulator::~Simulator() {
  for (EventNode* node : heap_) node->destroy(node);
  for (EventNode* head : calendar_.heads) {
    for (EventNode* node = head; node != nullptr; node = node->next) {
      node->destroy(node);
    }
  }
}

Simulator::EventNode* Simulator::PrepareNode(SimTime when) {
  EventNode* node = free_list_;
  if (node != nullptr) {
    free_list_ = node->next;
  } else {
    chunks_.push_back(std::make_unique<EventNode[]>(kChunkNodes));
    EventNode* chunk = chunks_.back().get();
    for (size_t i = kChunkNodes - 1; i > 0; --i) {
      chunk[i].next = free_list_;
      free_list_ = &chunk[i];
    }
    node = &chunk[0];
  }
  node->when = when;
  node->seq = next_sequence_++;
  node->next = nullptr;
  return node;
}

void Simulator::ReleaseNode(EventNode* node) {
  node->next = free_list_;
  free_list_ = node;
}

void Simulator::CommitNode(EventNode* node) {
  ++pending_;
  if (queue_depth_max_ != nullptr) {
    queue_depth_max_->Update(static_cast<double>(pending_));
  }
  if (kind_ == QueueKind::kLegacyHeap) {
    heap_.push_back(node);
    std::push_heap(heap_.begin(), heap_.end(), HeapLater{});
    return;
  }
  CalendarInsert(node);
}

uint64_t Simulator::VirtualBucketOf(SimTime when) const {
  double quotient = when / calendar_.width;
  if (quotient >= kMaxVirtualBucket) {
    return static_cast<uint64_t>(kMaxVirtualBucket);
  }
  if (quotient < 0) return 0;
  return static_cast<uint64_t>(quotient);
}

void Simulator::CalendarInsert(EventNode* node) {
  Calendar& c = calendar_;
  node->vbucket = VirtualBucketOf(node->when);
  // An empty calendar leaves the cursor wherever the last drain ended;
  // snap it to the incoming event so the next dequeue starts on target.
  // The `<` arm is defensive: ScheduleAt's `when >= now_` contract
  // already keeps new events at or ahead of the cursor's bucket.
  if (c.count == 0 || node->vbucket < c.cursor) c.cursor = node->vbucket;
  const size_t index = node->vbucket & c.mask;
  EventNode*& head = c.heads[index];
  EventNode*& tail = c.tails[index];
  if (head == nullptr) {
    node->next = nullptr;
    head = tail = node;
  } else if (EventLess(tail, node)) {
    // Common case: keys arrive mostly in (when, seq) order — batch
    // floods of same-timestamp events append in O(1) instead of
    // walking the whole bucket list.
    node->next = nullptr;
    tail->next = node;
    tail = node;
  } else if (EventLess(node, head)) {
    node->next = head;
    head = node;
  } else {
    EventNode* prev = head;
    while (prev->next != nullptr && EventLess(prev->next, node)) {
      prev = prev->next;
    }
    node->next = prev->next;
    prev->next = node;
  }
  ++c.count;
  if (c.count > 2 * c.heads.size()) CalendarResize(2 * c.heads.size());
}

Simulator::EventNode* Simulator::CalendarFindMin() {
  Calendar& c = calendar_;
  if (c.count == 0) return nullptr;
  const size_t nbuckets = c.heads.size();
  // Scan one full year of virtual buckets from the cursor. A bucket's
  // list is (when, seq)-sorted, which also sorts it by year, so the
  // head's cached vbucket tells us whether this bucket has an event in
  // the cursor's year.
  for (size_t scanned = 0; scanned < nbuckets; ++scanned) {
    EventNode* head = c.heads[c.cursor & c.mask];
    if (head != nullptr && head->vbucket == c.cursor) return head;
    ++c.cursor;
  }
  // Sparse tail: nothing within a whole year of the cursor. Direct
  // search across bucket heads (each is its bucket's minimum) and jump
  // the cursor to the winner.
  EventNode* best = nullptr;
  for (EventNode* head : c.heads) {
    if (head != nullptr && (best == nullptr || EventLess(head, best))) {
      best = head;
    }
  }
  assert(best != nullptr);
  c.cursor = best->vbucket;
  return best;
}

void Simulator::CalendarResize(size_t new_buckets) {
  Calendar& c = calendar_;
  EventNode* all = nullptr;
  double min_when = std::numeric_limits<double>::infinity();
  double max_when = -std::numeric_limits<double>::infinity();
  for (EventNode*& head : c.heads) {
    while (head != nullptr) {
      EventNode* node = head;
      head = node->next;
      node->next = all;
      all = node;
      min_when = std::min(min_when, node->when);
      max_when = std::max(max_when, node->when);
    }
  }
  const size_t count = c.count;
  c.heads.assign(new_buckets, nullptr);
  c.tails.assign(new_buckets, nullptr);
  c.mask = new_buckets - 1;
  // Brown's rule of thumb: bucket width near the mean inter-event gap
  // keeps ~1 event per bucket per year. Degenerate spans (all events at
  // one instant) keep the previous width; same-key events chain in one
  // bucket where the tail fast path keeps inserts O(1).
  const double span = max_when - min_when;
  if (count > 1 && span > 0) {
    c.width = std::max(span / static_cast<double>(count), 1e-9);
  }
  c.count = 0;
  c.cursor = count > 0 ? VirtualBucketOf(min_when) : 0;
  while (all != nullptr) {
    EventNode* node = all;
    all = all->next;
    CalendarInsert(node);
  }
}

Simulator::EventNode* Simulator::PeekMin() {
  if (kind_ == QueueKind::kLegacyHeap) {
    return heap_.empty() ? nullptr : heap_.front();
  }
  return CalendarFindMin();
}

void Simulator::PopMin(EventNode* node) {
  --pending_;
  if (kind_ == QueueKind::kLegacyHeap) {
    assert(!heap_.empty() && heap_.front() == node);
    std::pop_heap(heap_.begin(), heap_.end(), HeapLater{});
    heap_.pop_back();
    return;
  }
  Calendar& c = calendar_;
  const size_t index = node->vbucket & c.mask;
  assert(c.heads[index] == node);
  c.heads[index] = node->next;
  if (c.heads[index] == nullptr) c.tails[index] = nullptr;
  --c.count;
  const size_t nbuckets = c.heads.size();
  if (nbuckets > kMinBuckets && c.count < nbuckets / 2) {
    CalendarResize(nbuckets / 2);
  }
}

void Simulator::BindMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    events_executed_ = nullptr;
    queue_depth_ = nullptr;
    queue_depth_max_ = nullptr;
    return;
  }
  events_executed_ = registry->counter("sim.events_executed");
  queue_depth_ = registry->gauge("sim.queue_depth");
  queue_depth_max_ = registry->max_gauge("sim.queue_depth_max");
}

void Simulator::RunUntil(SimTime until) {
  while (true) {
    EventNode* node = PeekMin();
    if (node == nullptr || node->when > until) break;
    PopMin(node);
    now_ = node->when;
    NoteExecuted();
    node->run(this, node);
  }
  if (now_ < until) {
    // Nothing left before `until`; advance the clock so callers can
    // keep stepping in fixed intervals.
    now_ = until;
  }
}

void Simulator::RunToCompletion() {
  while (EventNode* node = PeekMin()) {
    PopMin(node);
    now_ = node->when;
    NoteExecuted();
    node->run(this, node);
  }
}

}  // namespace fglb
