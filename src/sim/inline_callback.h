#ifndef FGLB_SIM_INLINE_CALLBACK_H_
#define FGLB_SIM_INLINE_CALLBACK_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace fglb {

// Move-only callable wrapper with small-buffer storage: callables up to
// `InlineBytes` live inside the wrapper (no allocation); larger ones
// fall back to the heap. The DES hot path schedules millions of events
// per second, each carrying a closure — with std::function every
// oversized capture is a malloc/free pair per event, which dominates
// dispatch cost. Completion callbacks throughout the cluster are sized
// to fit inline (see the static_asserts at their binding sites).
//
// Invoking a default-constructed (or moved-from) callback is undefined;
// callers test with operator bool first, mirroring std::function use.
template <typename Signature, size_t InlineBytes = 48>
class InlineCallback;

template <typename R, typename... Args, size_t InlineBytes>
class InlineCallback<R(Args...), InlineBytes> {
 public:
  InlineCallback() = default;

  // Implicit by design: call sites keep passing plain lambdas, exactly
  // as they did when these parameters were std::function.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineCallback(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= InlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      invoke_ = &InvokeInline<Fn>;
      relocate_ = &RelocateInline<Fn>;
      destroy_ = &DestroyInline<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(fn)));
      invoke_ = &InvokeHeap<Fn>;
      relocate_ = &RelocateHeap;
      destroy_ = &DestroyHeap<Fn>;
    }
  }

  // nullptr mimics the std::function idiom `Submit(..., nullptr)`.
  InlineCallback(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  InlineCallback(InlineCallback&& other) noexcept { MoveFrom(other); }
  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;
  ~InlineCallback() { Reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  R operator()(Args... args) {
    return invoke_(storage_, std::forward<Args>(args)...);
  }

  void Reset() {
    if (destroy_ != nullptr) destroy_(storage_);
    invoke_ = nullptr;
    relocate_ = nullptr;
    destroy_ = nullptr;
  }

 private:
  void MoveFrom(InlineCallback& other) noexcept {
    if (other.relocate_ != nullptr) other.relocate_(storage_, other.storage_);
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    destroy_ = other.destroy_;
    other.invoke_ = nullptr;
    other.relocate_ = nullptr;
    other.destroy_ = nullptr;
  }

  template <typename Fn>
  static R InvokeInline(void* storage, Args... args) {
    return (*std::launder(reinterpret_cast<Fn*>(storage)))(
        std::forward<Args>(args)...);
  }
  template <typename Fn>
  static void RelocateInline(void* to, void* from) noexcept {
    Fn* src = std::launder(reinterpret_cast<Fn*>(from));
    ::new (to) Fn(std::move(*src));
    src->~Fn();
  }
  template <typename Fn>
  static void DestroyInline(void* storage) noexcept {
    std::launder(reinterpret_cast<Fn*>(storage))->~Fn();
  }

  template <typename Fn>
  static R InvokeHeap(void* storage, Args... args) {
    return (**std::launder(reinterpret_cast<Fn**>(storage)))(
        std::forward<Args>(args)...);
  }
  static void RelocateHeap(void* to, void* from) noexcept {
    ::new (to) void*(*std::launder(reinterpret_cast<void**>(from)));
  }
  template <typename Fn>
  static void DestroyHeap(void* storage) noexcept {
    delete *std::launder(reinterpret_cast<Fn**>(storage));
  }

  using InvokeFn = R (*)(void*, Args...);
  using RelocateFn = void (*)(void*, void*) noexcept;
  using DestroyFn = void (*)(void*) noexcept;

  alignas(std::max_align_t) unsigned char storage_[InlineBytes];
  InvokeFn invoke_ = nullptr;
  RelocateFn relocate_ = nullptr;
  DestroyFn destroy_ = nullptr;
};

}  // namespace fglb

#endif  // FGLB_SIM_INLINE_CALLBACK_H_
