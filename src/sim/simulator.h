#ifndef FGLB_SIM_SIMULATOR_H_
#define FGLB_SIM_SIMULATOR_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/metrics_registry.h"

namespace fglb {

// Simulated time, in seconds.
using SimTime = double;

// Discrete-event simulation kernel. Events are closures ordered by
// firing time; ties break by scheduling order so runs are fully
// deterministic. The whole cluster model (clients, schedulers, CPU and
// disk queues, the retuning controller) is driven off one Simulator.
//
// Hot-path design (the million-client scale work): events are
// pool-allocated intrusively-linked nodes whose callback lives in a
// small inline buffer (heap fallback only for oversized captures), and
// the pending set is a calendar queue (Brown '88) — O(1) amortized
// insert/dequeue against the O(log n) binary heap, with no per-event
// malloc/free and no std::function type-erasure overhead. The previous
// binary-heap discipline is kept behind QueueKind::kLegacyHeap, over
// the same pooled nodes, for differential determinism tests and for
// the old-vs-new comparison in bench_des_kernel.
class Simulator {
 public:
  enum class QueueKind {
    kCalendar,    // calendar queue (default)
    kLegacyHeap,  // binary heap, the pre-calendar discipline
  };

  explicit Simulator(QueueKind kind = QueueKind::kCalendar);
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  SimTime Now() const { return now_; }
  QueueKind queue_kind() const { return kind_; }

  // Schedules `fn` to run at absolute time `when` (>= Now()). Any
  // callable, including move-only ones; callables up to
  // kInlineCallbackBytes are stored inside the pooled event node.
  template <typename F>
  void ScheduleAt(SimTime when, F&& fn) {
    assert(when >= now_);
    EventNode* node = PrepareNode(when);
    BindCallback(node, std::forward<F>(fn));
    CommitNode(node);
  }

  // Schedules `fn` to run `delay` (>= 0) seconds from now.
  template <typename F>
  void ScheduleAfter(SimTime delay, F&& fn) {
    assert(delay >= 0);
    ScheduleAt(now_ + delay, std::forward<F>(fn));
  }

  // Runs events in time order until the queue drains or the next event
  // would fire after `until`. The clock is left at max(Now(), until);
  // events beyond `until` stay queued.
  void RunUntil(SimTime until);

  // Runs until the event queue is empty.
  void RunToCompletion();

  size_t pending_events() const { return pending_; }
  uint64_t executed_events() const { return executed_; }

  // Registers "sim.queue_depth", "sim.queue_depth_max" and
  // "sim.events_executed" in `registry` and updates them as the event
  // loop runs. The executed counter is exact (one relaxed add per
  // dispatched event); the queue-depth gauge is sampled every
  // kQueueDepthSampleEvery events — storing it per event is measurable
  // overhead at calendar-queue event rates. The sampled gauge misses
  // bursts between samples, so the max gauge tracks the true high-water
  // mark from every insert and resets on snapshot read. A null registry
  // unbinds and costs one branch.
  void BindMetrics(MetricsRegistry* registry);

  // Callables at most this big (and at most max_align_t-aligned) are
  // stored inline in the pooled event node; bigger ones cost one heap
  // allocation per event. Sized for the cluster's fattest hot-path
  // closure (a scheduler completion chain holding a CompletionCallback).
  static constexpr size_t kInlineCallbackBytes = 104;
  static constexpr uint64_t kQueueDepthSampleEvery = 64;

 private:
  struct EventNode {
    SimTime when;
    uint64_t seq;
    // Virtual (un-wrapped) calendar bucket index; cached at insert so
    // the dequeue scan never re-derives bucket membership from floats.
    uint64_t vbucket;
    EventNode* next;
    // Moves the callback out, destroys it, releases the node back to
    // the pool, then invokes — so the callback itself may schedule new
    // events straight into the freed node.
    void (*run)(Simulator*, EventNode*);
    // Destroys the callback without invoking (simulator teardown).
    void (*destroy)(EventNode*);
    alignas(std::max_align_t) unsigned char storage[kInlineCallbackBytes];
  };

  struct HeapLater;  // kLegacyHeap comparator (simulator.cc)
  static bool EventLess(const EventNode* a, const EventNode* b) {
    if (a->when != b->when) return a->when < b->when;
    return a->seq < b->seq;
  }

  // Calendar queue state (Brown '88): power-of-two bucket array of
  // (when, seq)-sorted intrusive lists, a cursor walking virtual
  // buckets, and width/occupancy-driven resizing.
  struct Calendar {
    std::vector<EventNode*> heads;
    std::vector<EventNode*> tails;
    uint64_t mask = 0;  // heads.size() - 1
    double width = 1e-3;
    uint64_t cursor = 0;  // virtual bucket the next dequeue scans from
    size_t count = 0;
  };

  template <typename F>
  void BindCallback(EventNode* node, F&& fn) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineCallbackBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(node->storage)) Fn(std::forward<F>(fn));
      node->run = &RunInline<Fn>;
      node->destroy = &DestroyInline<Fn>;
    } else {
      ::new (static_cast<void*>(node->storage))
          Fn*(new Fn(std::forward<F>(fn)));
      node->run = &RunHeap<Fn>;
      node->destroy = &DestroyHeap<Fn>;
    }
  }

  template <typename Fn>
  static void RunInline(Simulator* sim, EventNode* node) {
    Fn* stored = std::launder(reinterpret_cast<Fn*>(node->storage));
    Fn fn = std::move(*stored);
    stored->~Fn();
    sim->ReleaseNode(node);
    fn();
  }
  template <typename Fn>
  static void DestroyInline(EventNode* node) {
    std::launder(reinterpret_cast<Fn*>(node->storage))->~Fn();
  }
  template <typename Fn>
  static void RunHeap(Simulator* sim, EventNode* node) {
    Fn* fn = *std::launder(reinterpret_cast<Fn**>(node->storage));
    sim->ReleaseNode(node);
    (*fn)();
    delete fn;
  }
  template <typename Fn>
  static void DestroyHeap(EventNode* node) {
    delete *std::launder(reinterpret_cast<Fn**>(node->storage));
  }

  // Pool + queue plumbing (simulator.cc).
  EventNode* PrepareNode(SimTime when);
  void CommitNode(EventNode* node);
  void ReleaseNode(EventNode* node);
  // Next event in (when, seq) order, or null; stays queued.
  EventNode* PeekMin();
  // Unlinks `node`, which must be the node PeekMin just returned.
  void PopMin(EventNode* node);

  uint64_t VirtualBucketOf(SimTime when) const;
  void CalendarInsert(EventNode* node);
  EventNode* CalendarFindMin();
  void CalendarResize(size_t new_buckets);

  void NoteExecuted() {
    ++executed_;
    if (events_executed_ != nullptr) {
      events_executed_->Increment();
      if ((executed_ & (kQueueDepthSampleEvery - 1)) == 0) {
        queue_depth_->Set(static_cast<double>(pending_));
      }
    }
  }

  QueueKind kind_;
  SimTime now_ = 0;
  uint64_t next_sequence_ = 0;
  uint64_t executed_ = 0;
  size_t pending_ = 0;

  // Node pool: chunked storage plus an intrusive free list.
  std::vector<std::unique_ptr<EventNode[]>> chunks_;
  EventNode* free_list_ = nullptr;

  Calendar calendar_;
  // kLegacyHeap: binary heap over the same pooled nodes.
  std::vector<EventNode*> heap_;

  // Bound together: events_executed_ != nullptr implies queue_depth_
  // and queue_depth_max_.
  Counter* events_executed_ = nullptr;
  Gauge* queue_depth_ = nullptr;
  MaxGauge* queue_depth_max_ = nullptr;
};

}  // namespace fglb

#endif  // FGLB_SIM_SIMULATOR_H_
