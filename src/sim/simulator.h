#ifndef FGLB_SIM_SIMULATOR_H_
#define FGLB_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/metrics_registry.h"

namespace fglb {

// Simulated time, in seconds.
using SimTime = double;

// Discrete-event simulation kernel. Events are closures ordered by
// firing time; ties break by scheduling order so runs are fully
// deterministic. The whole cluster model (clients, schedulers, CPU and
// disk queues, the retuning controller) is driven off one Simulator.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run at absolute time `when` (>= Now()).
  void ScheduleAt(SimTime when, std::function<void()> fn);

  // Schedules `fn` to run `delay` (>= 0) seconds from now.
  void ScheduleAfter(SimTime delay, std::function<void()> fn);

  // Runs events in time order until the queue drains or the next event
  // would fire after `until`. The clock is left at min(until, time of
  // last executed event); events beyond `until` stay queued.
  void RunUntil(SimTime until);

  // Runs until the event queue is empty.
  void RunToCompletion();

  size_t pending_events() const { return queue_.size(); }
  uint64_t executed_events() const { return executed_; }

  // Registers "sim.queue_depth" / "sim.events_executed" in `registry`
  // and updates them as the event loop runs (one relaxed store and add
  // per dispatched event; a null registry unbinds and costs one branch).
  void BindMetrics(MetricsRegistry* registry);

 private:
  void NoteExecuted() {
    ++executed_;
    if (events_executed_ != nullptr) {
      events_executed_->Increment();
      queue_depth_->Set(static_cast<double>(queue_.size()));
    }
  }

  struct Event {
    SimTime when;
    uint64_t sequence;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  uint64_t next_sequence_ = 0;
  uint64_t executed_ = 0;
  // Bound together: events_executed_ != nullptr implies queue_depth_.
  Counter* events_executed_ = nullptr;
  Gauge* queue_depth_ = nullptr;
};

}  // namespace fglb

#endif  // FGLB_SIM_SIMULATOR_H_
