#include "sim/queue_resource.h"

#include <cassert>
#include <utility>

namespace fglb {

QueueResource::QueueResource(Simulator* sim, int servers, std::string name)
    : sim_(sim), servers_(servers), name_(std::move(name)) {
  assert(sim != nullptr);
  assert(servers > 0);
  last_change_ = sim_->Now();
  accounting_start_ = sim_->Now();
}

void QueueResource::AccumulateBusy() {
  const SimTime now = sim_->Now();
  busy_integral_ += static_cast<double>(busy_) * (now - last_change_);
  last_change_ = now;
}

void QueueResource::Submit(double service_time, CompletionFn on_complete) {
  assert(service_time >= 0);
  Job job{service_time, sim_->Now(), std::move(on_complete)};
  if (busy_ < servers_) {
    StartService(std::move(job));
  } else {
    waiting_.push_back(std::move(job));
  }
}

void QueueResource::StartService(Job job) {
  AccumulateBusy();
  ++busy_;
  const SimTime arrival = job.arrival;
  // Move the callback into the completion event.
  auto on_complete = std::move(job.on_complete);
  sim_->ScheduleAfter(
      job.service_time,
      [this, arrival, on_complete = std::move(on_complete)]() mutable {
        AccumulateBusy();
        --busy_;
        ++completed_;
        if (!waiting_.empty()) {
          Job next = std::move(waiting_.front());
          waiting_.pop_front();
          StartService(std::move(next));
        }
        if (on_complete) on_complete(sim_->Now() - arrival);
      });
}

double QueueResource::UtilizationSinceReset() const {
  const SimTime now = sim_->Now();
  const double window = now - accounting_start_;
  if (window <= 0) return 0.0;
  const double busy_in_window = (busy_integral_ - accounting_baseline_) +
                                static_cast<double>(busy_) *
                                    (now - last_change_);
  return busy_in_window / (window * servers_);
}

double QueueResource::busy_time() const {
  return busy_integral_ +
         static_cast<double>(busy_) * (sim_->Now() - last_change_);
}

void QueueResource::ResetAccounting() {
  accounting_start_ = sim_->Now();
  accounting_baseline_ = busy_time();
}

}  // namespace fglb
