#ifndef FGLB_CLUSTER_STATS_CHANNEL_H_
#define FGLB_CLUSTER_STATS_CHANNEL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/metrics_registry.h"
#include "common/trace_log.h"
#include "engine/metrics.h"
#include "sim/fault_injector.h"
#include "sim/simulator.h"
#include "workload/query_class.h"

namespace fglb {

// Controller-side handling of a degraded statistics feed. The knobs
// ride FGLBCAP1 captures as `stats_spec`; the all-defaults config
// encodes as "" so captures taken before the channel existed decode
// unchanged.
struct StatsChannelConfig {
  // When false the receiver silently substitutes last-known-good stats
  // for missing reports at full confidence — the ablation arm that
  // flaps. When true, confidence decays while reports are missing,
  // IQR fences widen by 1/confidence, and migrate/demote/quota actions
  // are suppressed below act_threshold (shed never is).
  bool guard = true;
  // Confidence is multiplied by `decay` per missed interval and raised
  // by `recover` per fresh report (clamped to 1). The asymmetric
  // recovery is the flap damping: alternating lost/fresh intervals
  // oscillate confidence in [decay, decay + recover] — strictly below
  // act_threshold — so a flapping link can never ping-pong actions.
  double decay = 0.5;
  double recover = 0.25;
  double act_threshold = 0.9;

  std::string ToString() const;
  static bool Parse(const std::string& text, StatsChannelConfig* config,
                    std::string* error);
};

// The transport between StatsCollector::EndInterval and the
// controller: per-replica sequenced, CRC-guarded interval reports
// delivered through the DES. Every report is serialized and decoded
// even on the healthy path (bit-exact: doubles travel as IEEE-754
// bits), so the codec is exercised constantly and a fault-free run is
// byte-identical to the pre-channel direct handoff. An injected `net`
// fault window makes delivery lossy: reports can be dropped,
// duplicated, corrupted (rejected by CRC at the receiver), delayed or
// reordered behind the next report.
//
// The publisher side (sequence numbers) is data-plane state and
// survives a controller crash; the receiver side (last-known-good
// snapshots, staleness, confidence) is control-plane state that is
// wiped by a `ctl` crash and restored from the FGLBCKPT1 checkpoint.
class StatsChannel {
 public:
  using Snapshot = std::map<ClassKey, MetricVector>;
  // Consults the fault injector for one in-flight report's fate.
  using NetHook =
      std::function<FaultInjector::NetDecision(int replica_id, uint64_t seq)>;

  StatsChannel(Simulator* sim, StatsChannelConfig config);
  StatsChannel(const StatsChannel&) = delete;
  StatsChannel& operator=(const StatsChannel&) = delete;

  void BindObservability(MetricsRegistry* metrics, TraceLog* trace);
  void set_net_hook(NetHook hook) { net_hook_ = std::move(hook); }

  // Publisher side: serializes one replica's interval report, assigns
  // the next sequence number, and sends it. Without an active net
  // fault the report arrives before Publish returns (same tick);
  // `interval_seconds` sizes the reorder penalty (1.5 intervals, so a
  // reordered report lands behind its successor).
  void Publish(int replica_id, const Snapshot& snapshot,
               double interval_seconds);

  // The controller's view of one replica at collection time.
  struct Feed {
    const Snapshot* snapshot = nullptr;  // fresh or last-known-good
    bool fresh = false;
    uint64_t stale_intervals = 0;
    double confidence = 1.0;
    uint64_t last_seq = 0;
  };

  // Receiver side: consumes the freshest pending report (if any
  // arrived since the last Collect) or falls back to last-known-good,
  // updating staleness and confidence. Call once per replica per
  // diagnosis interval, after Publish.
  Feed Collect(int replica_id);

  // True when `confidence` clears the action threshold (always true
  // with the guard off — the unguarded arm acts on anything).
  bool ConfidentToAct(double confidence) const {
    return !config_.guard || confidence >= config_.act_threshold;
  }

  // IQR fence multiplier for a replica at `confidence`: 1 at full
  // confidence, wider as confidence decays (capped so a long outage
  // cannot produce infinite fences).
  double FenceScale(double confidence) const;

  // Drops receiver state for replicas that no longer exist.
  void Retain(const std::vector<int>& live_replica_ids);

  // Control-plane state management for checkpoint/restore and ctl
  // crashes. Serialize/Restore cover only the receiver side; publisher
  // sequence numbers are data-plane state and survive both paths.
  void SerializeReceiverState(std::string* out) const;
  bool RestoreReceiverState(const uint8_t* p, const uint8_t* limit);
  void ResetReceiverState() { receivers_.clear(); }

  const StatsChannelConfig& config() const { return config_; }

 private:
  struct Receiver {
    uint64_t last_seq = 0;
    uint64_t stale_intervals = 0;
    double confidence = 1.0;
    Snapshot last_known_good;
    Snapshot pending;
    uint64_t pending_seq = 0;
    bool has_pending = false;
  };

  void Deliver(const std::string& bytes);
  void EmitRecovery(const char* why, int replica_id, uint64_t seq,
                    uint64_t stale_intervals, double confidence);

  Simulator* sim_;
  StatsChannelConfig config_;
  NetHook net_hook_;
  std::map<int, uint64_t> publish_seq_;
  std::map<int, Receiver> receivers_;
  MetricsRegistry* metrics_ = nullptr;
  TraceLog* trace_ = nullptr;
  Counter* published_ = nullptr;
  Counter* delivered_ = nullptr;
  Counter* dropped_ = nullptr;
  Counter* corrupt_rejected_ = nullptr;
  Counter* late_rejected_ = nullptr;
  Counter* duplicate_ignored_ = nullptr;
  Counter* stale_collects_ = nullptr;
  Counter* resyncs_ = nullptr;
};

}  // namespace fglb

#endif  // FGLB_CLUSTER_STATS_CHANNEL_H_
