#ifndef FGLB_CLUSTER_REPLICA_H_
#define FGLB_CLUSTER_REPLICA_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "cluster/lock_manager.h"
#include "cluster/physical_server.h"
#include "engine/database_engine.h"
#include "sim/inline_callback.h"
#include "sim/simulator.h"
#include "workload/query_class.h"

namespace fglb {

// A database engine instance placed on a physical server — the unit a
// scheduler routes queries to. In Xen terms, one replica models one
// domain hosting one MySQL instance: it has its own engine (buffer
// pool, statistics) but shares the server's CPU cores and dom0 I/O
// channel with every other replica on the same machine. One engine may
// serve several applications (shared-DBMS consolidation).
class Replica {
 public:
  Replica(int id, Simulator* sim, PhysicalServer* server,
          std::unique_ptr<DatabaseEngine> engine);
  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  // Sized to hold the scheduler's fattest completion closure (the write
  // primary's, which carries a CompletionCallback) inline.
  using CompletionFn =
      InlineCallback<void(double latency_seconds,
                          const ExecutionCounters& counters),
                     104>;

  // Runs one query end to end: expands it against the engine (buffer
  // pool effects), queues its I/O demand on the server's channel, its
  // CPU demand on the server's cores, and — for updates — takes the
  // commit's exclusive stripe locks for the commit-hold duration.
  // `done` fires at completion with the total sojourn time.
  void Run(const QueryInstance& query, CompletionFn done);

  LockManager& locks() { return locks_; }

  int id() const { return id_; }
  const std::string& name() const { return name_; }
  PhysicalServer& server() { return *server_; }
  const PhysicalServer& server() const { return *server_; }
  DatabaseEngine& engine() { return *engine_; }
  const DatabaseEngine& engine() const { return *engine_; }

  // Queries admitted but not yet completed (load-balancing signal).
  uint64_t inflight() const { return inflight_; }
  uint64_t completed() const { return completed_; }

  // Fault-injection knob: scales the CPU demand of every subsequently
  // admitted query (a degraded-but-alive replica). 1.0 = healthy.
  void set_slowdown(double factor) { slowdown_ = factor; }
  double slowdown() const { return slowdown_; }

  // Replication bookkeeping: highest write sequence number applied for
  // an application (0 if none).
  uint64_t AppliedSeq(AppId app) const;
  void SetAppliedSeq(AppId app, uint64_t seq);

 private:
  // Per-query control block: one allocation per Run() replacing the
  // old shared counters + per-stage std::function closures. Stage
  // lambdas capture only {this, shared_ptr<RunState>} so they ride in
  // the queueing stations' and simulator's inline callback storage.
  struct RunState {
    ClassKey key;
    SimTime start;
    ExecutionCounters counters;
    CompletionFn done;
    uint64_t ticket = 0;
    // Sampled-tracing recorder (null for unsampled queries); stages
    // stamp wait/service segments into it and Finish() closes it.
    QuerySpan* span = nullptr;
  };

  void CpuStage(const std::shared_ptr<RunState>& run);
  void CommitStage(const std::shared_ptr<RunState>& run);
  void Finish(const std::shared_ptr<RunState>& run);

  int id_;
  std::string name_;
  Simulator* sim_;
  PhysicalServer* server_;
  std::unique_ptr<DatabaseEngine> engine_;
  LockManager locks_;
  uint64_t inflight_ = 0;
  uint64_t completed_ = 0;
  double slowdown_ = 1.0;
  std::map<AppId, uint64_t> applied_seq_;
};

}  // namespace fglb

#endif  // FGLB_CLUSTER_REPLICA_H_
