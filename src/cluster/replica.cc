#include "cluster/replica.h"

#include <cassert>
#include <memory>
#include <utility>

#include "common/span_tracer.h"

namespace fglb {

Replica::Replica(int id, Simulator* sim, PhysicalServer* server,
                 std::unique_ptr<DatabaseEngine> engine)
    : id_(id),
      name_("replica-" + std::to_string(id)),
      sim_(sim),
      server_(server),
      engine_(std::move(engine)),
      locks_(sim) {
  assert(sim_ && server_ && engine_);
}

void Replica::Run(const QueryInstance& query, CompletionFn done) {
  ++inflight_;
  // Buffer-pool effects and demand derivation happen at admission; the
  // time those demands take is then served by the queueing stations.
  auto run = std::make_shared<RunState>();
  run->key = query.class_key();
  run->start = sim_->Now();
  run->counters = engine_->Execute(query);
  run->counters.cpu_seconds *= slowdown_;
  run->done = std::move(done);
  run->span = query.span;
  if (run->span != nullptr) {
    // Execute() consumed zero sim time, so Now() - submit is the whole
    // pre-replica segment (admission decision + scheduler pick).
    run->span->NoteExecution(sim_->Now(), id_, run->counters.page_accesses,
                             run->counters.buffer_misses,
                             run->counters.io_requests);
  }

  // Stage 1: I/O service (if any). Stage 2: CPU service. Stage 3
  // (updates only): commit under exclusive stripe locks. Each station
  // reports its sojourn; sojourn minus the submitted service demand is
  // the queueing wait, so span segments cost no extra events.
  if (run->counters.io_seconds > 0) {
    server_->io().Submit(run->counters.io_seconds, [this, run](double sojourn) {
      if (run->span != nullptr) {
        run->span->AddSojourn(SpanSegment::kIoWait, SpanSegment::kIoService,
                              sojourn, run->counters.io_seconds);
      }
      CpuStage(run);
    });
  } else {
    CpuStage(run);
  }
}

void Replica::CpuStage(const std::shared_ptr<RunState>& run) {
  server_->cpu().Submit(run->counters.cpu_seconds, [this, run](double sojourn) {
    if (run->span != nullptr) {
      run->span->AddSojourn(SpanSegment::kCpuWait, SpanSegment::kCpuService,
                            sojourn, run->counters.cpu_seconds);
    }
    CommitStage(run);
  });
}

void Replica::CommitStage(const std::shared_ptr<RunState>& run) {
  if (run->counters.write_stripes.empty()) {
    Finish(run);
    return;
  }
  // Take the commit's exclusive stripe locks, hold them for the commit
  // work, release, finish.
  run->ticket = locks_.AcquireAll(
      run->counters.write_stripes, [this, run](double wait_seconds) {
        run->counters.lock_wait_seconds = wait_seconds;
        if (run->span != nullptr) {
          run->span->Add(SpanSegment::kLockWait, wait_seconds);
          run->span->Add(SpanSegment::kCommitHold,
                         run->counters.commit_seconds);
        }
        sim_->ScheduleAfter(run->counters.commit_seconds, [this, run] {
          locks_.Release(run->ticket);
          Finish(run);
        });
      });
}

void Replica::Finish(const std::shared_ptr<RunState>& run) {
  const double latency = sim_->Now() - run->start;
  --inflight_;
  ++completed_;
  engine_->RecordCompletion(run->key, latency, run->counters);
  if (run->span != nullptr) {
    run->span->owner->EndSpan(run->span, sim_->Now());
    run->span = nullptr;
  }
  if (run->done) run->done(latency, run->counters);
}

uint64_t Replica::AppliedSeq(AppId app) const {
  auto it = applied_seq_.find(app);
  return it != applied_seq_.end() ? it->second : 0;
}

void Replica::SetAppliedSeq(AppId app, uint64_t seq) {
  applied_seq_[app] = std::max(applied_seq_[app], seq);
}

}  // namespace fglb
