#include "cluster/replica.h"

#include <cassert>
#include <memory>
#include <utility>

namespace fglb {

Replica::Replica(int id, Simulator* sim, PhysicalServer* server,
                 std::unique_ptr<DatabaseEngine> engine)
    : id_(id),
      name_("replica-" + std::to_string(id)),
      sim_(sim),
      server_(server),
      engine_(std::move(engine)),
      locks_(sim) {
  assert(sim_ && server_ && engine_);
}

void Replica::Run(const QueryInstance& query, CompletionFn done) {
  ++inflight_;
  // Buffer-pool effects and demand derivation happen at admission; the
  // time those demands take is then served by the queueing stations.
  auto run = std::make_shared<RunState>();
  run->key = query.class_key();
  run->start = sim_->Now();
  run->counters = engine_->Execute(query);
  run->counters.cpu_seconds *= slowdown_;
  run->done = std::move(done);

  // Stage 1: I/O service (if any). Stage 2: CPU service. Stage 3
  // (updates only): commit under exclusive stripe locks.
  if (run->counters.io_seconds > 0) {
    server_->io().Submit(run->counters.io_seconds,
                         [this, run](double) { CpuStage(run); });
  } else {
    CpuStage(run);
  }
}

void Replica::CpuStage(const std::shared_ptr<RunState>& run) {
  server_->cpu().Submit(run->counters.cpu_seconds,
                        [this, run](double) { CommitStage(run); });
}

void Replica::CommitStage(const std::shared_ptr<RunState>& run) {
  if (run->counters.write_stripes.empty()) {
    Finish(run);
    return;
  }
  // Take the commit's exclusive stripe locks, hold them for the commit
  // work, release, finish.
  run->ticket = locks_.AcquireAll(
      run->counters.write_stripes, [this, run](double wait_seconds) {
        run->counters.lock_wait_seconds = wait_seconds;
        sim_->ScheduleAfter(run->counters.commit_seconds, [this, run] {
          locks_.Release(run->ticket);
          Finish(run);
        });
      });
}

void Replica::Finish(const std::shared_ptr<RunState>& run) {
  const double latency = sim_->Now() - run->start;
  --inflight_;
  ++completed_;
  engine_->RecordCompletion(run->key, latency, run->counters);
  if (run->done) run->done(latency, run->counters);
}

uint64_t Replica::AppliedSeq(AppId app) const {
  auto it = applied_seq_.find(app);
  return it != applied_seq_.end() ? it->second : 0;
}

void Replica::SetAppliedSeq(AppId app, uint64_t seq) {
  applied_seq_[app] = std::max(applied_seq_[app], seq);
}

}  // namespace fglb
