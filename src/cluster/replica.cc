#include "cluster/replica.h"

#include <cassert>
#include <memory>
#include <utility>

namespace fglb {

Replica::Replica(int id, Simulator* sim, PhysicalServer* server,
                 std::unique_ptr<DatabaseEngine> engine)
    : id_(id),
      name_("replica-" + std::to_string(id)),
      sim_(sim),
      server_(server),
      engine_(std::move(engine)),
      locks_(sim) {
  assert(sim_ && server_ && engine_);
}

void Replica::Run(const QueryInstance& query, CompletionFn done) {
  ++inflight_;
  const SimTime start = sim_->Now();
  const ClassKey key = query.class_key();
  // Buffer-pool effects and demand derivation happen at admission; the
  // time those demands take is then served by the queueing stations.
  auto counters =
      std::make_shared<ExecutionCounters>(engine_->Execute(query));
  counters->cpu_seconds *= slowdown_;

  auto finish = [this, key, counters, start, done = std::move(done)]() {
    const double latency = sim_->Now() - start;
    --inflight_;
    ++completed_;
    engine_->RecordCompletion(key, latency, *counters);
    if (done) done(latency, *counters);
  };

  // Stage 3 (updates only): take the commit's exclusive stripe locks,
  // hold them for the commit work, release, finish.
  auto commit_stage = [this, counters, finish = std::move(finish)]() {
    if (counters->write_stripes.empty()) {
      finish();
      return;
    }
    auto ticket = std::make_shared<uint64_t>(0);
    *ticket = locks_.AcquireAll(
        counters->write_stripes,
        [this, counters, ticket, finish](double wait_seconds) {
          counters->lock_wait_seconds = wait_seconds;
          sim_->ScheduleAfter(counters->commit_seconds,
                              [this, ticket, finish] {
                                locks_.Release(*ticket);
                                finish();
                              });
        });
  };

  // Stage 2: CPU service. Stage 1: I/O service (if any).
  auto cpu_stage = [this, counters,
                    commit_stage = std::move(commit_stage)](double) {
    server_->cpu().Submit(counters->cpu_seconds,
                          [commit_stage](double) { commit_stage(); });
  };
  if (counters->io_seconds > 0) {
    server_->io().Submit(counters->io_seconds, std::move(cpu_stage));
  } else {
    cpu_stage(0);
  }
}

uint64_t Replica::AppliedSeq(AppId app) const {
  auto it = applied_seq_.find(app);
  return it != applied_seq_.end() ? it->second : 0;
}

void Replica::SetAppliedSeq(AppId app, uint64_t seq) {
  applied_seq_[app] = std::max(applied_seq_[app], seq);
}

}  // namespace fglb
