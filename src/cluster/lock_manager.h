#ifndef FGLB_CLUSTER_LOCK_MANAGER_H_
#define FGLB_CLUSTER_LOCK_MANAGER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "sim/inline_callback.h"
#include "sim/simulator.h"
#include "storage/page.h"

namespace fglb {

// Exclusive stripe-lock manager for one database engine's commit
// critical sections. Consistent reads never lock (MVCC); writers take
// exclusive locks on the stripes they modify, in globally sorted stripe
// order, which makes deadlock impossible. Waiters queue FIFO per
// stripe.
//
// This substrate exists for the paper's §7 future-work scenario: lock
// contention anomalies surfacing through the same outlier-detection
// pipeline as memory anomalies (via the lock-wait metric).
class LockManager {
 public:
  explicit LockManager(Simulator* sim);
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  using GrantFn = InlineCallback<void(double wait_seconds)>;

  // Acquires every stripe in `stripes` (must be sorted ascending,
  // duplicates removed) exclusively. `granted` runs — via the simulator
  // — once all are held; it receives the total wait time. Returns a
  // ticket to pass to Release.
  uint64_t AcquireAll(const std::vector<PageId>& stripes, GrantFn granted);

  // Releases every stripe held (or queued) under `ticket`. Must only be
  // called after the grant callback ran.
  void Release(uint64_t ticket);

  // Observability.
  uint64_t held_stripes() const { return holders_.size(); }
  uint64_t granted_total() const { return granted_total_; }
  double total_wait_seconds() const { return total_wait_seconds_; }

 private:
  struct Request {
    uint64_t ticket;
    std::vector<PageId> stripes;  // sorted
    size_t next_index;            // stripes[0..next_index) are held
    SimTime start;
    GrantFn granted;
  };

  // Tries to advance a request through its remaining stripes; fires the
  // grant callback when done.
  void TryAdvance(uint64_t ticket);

  Simulator* sim_;
  uint64_t next_ticket_ = 1;
  // stripe -> ticket currently holding it.
  std::map<PageId, uint64_t> holders_;
  // stripe -> tickets waiting, FIFO.
  std::map<PageId, std::deque<uint64_t>> waiters_;
  std::map<uint64_t, Request> requests_;
  uint64_t granted_total_ = 0;
  double total_wait_seconds_ = 0;
};

}  // namespace fglb

#endif  // FGLB_CLUSTER_LOCK_MANAGER_H_
