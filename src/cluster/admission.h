#ifndef FGLB_CLUSTER_ADMISSION_H_
#define FGLB_CLUSTER_ADMISSION_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "common/metrics_registry.h"
#include "common/trace_log.h"
#include "sim/simulator.h"
#include "workload/query_class.h"

namespace fglb {

// Tuning knobs of the overload-protection subsystem. The canonical
// string form (ToString/Parse, same k=v grammar family as FaultSpec)
// travels inside workload captures so a replayed run rebuilds the
// exact same admission behaviour.
struct AdmissionConfig {
  // CoDel-style shedding: per-replica windows of
  // `codel_interval_seconds`; when even the *minimum* SLA-normalized
  // read latency (latency / the app's SLA) observed across a whole
  // window stays above `target_delay`, queueing delay is standing —
  // the replica is overloaded — and one more query class is shed.
  // Windows back under the target restore one class at a time.
  double target_delay = 0.5;
  double codel_interval_seconds = 5.0;

  // Hard per-replica concurrency cap: a read arriving while the
  // replica already holds this many in-flight queries is shed
  // outright ("queue_full"), whatever the latency controller thinks.
  uint64_t max_queue_depth = 96;

  // Retry budget: every admitted query accrues `retry_budget_ratio`
  // tokens (capped at `retry_burst`) toward the app's bucket; a shed
  // read may retry on another replica only by spending a whole token,
  // so retries stay a bounded fraction of admitted traffic.
  double retry_budget_ratio = 0.1;
  double retry_burst = 8;

  // Circuit breaker per (class, replica): `breaker_failure_threshold`
  // consecutive timed-out completions (latency > timeout_factor x SLA)
  // trip it open; after `breaker_open_seconds` it half-opens and lets
  // `breaker_half_open_probes` probe queries through — that many
  // consecutive successes close it, one failure re-opens it.
  int breaker_failure_threshold = 8;
  double breaker_open_seconds = 10;
  int breaker_half_open_probes = 3;
  double timeout_factor = 8.0;

  // Smoothing for the per-class normalized-latency estimate that ranks
  // classes by SLA headroom (shedding order).
  double ewma_alpha = 0.2;

  // Canonical "target=0.5,interval=5,..." form; Parse accepts the
  // keys ToString emits, in any order, and rejects unknown keys.
  std::string ToString() const;
  static bool Parse(const std::string& text, AdmissionConfig* config,
                    std::string* error);
};

// Per-replica admission control, load shedding and circuit breaking
// for the read path (writes are never shed: read-one/write-all keeps
// every replica consistent only if every replica applies every write).
//
// One controller serves the whole cluster; state is keyed by replica
// id and (class, replica). All decisions derive from simulated time
// and the deterministic completion stream, so admission behaviour is
// bit-reproducible under capture/replay.
//
// Shedding priority ("SLA headroom"): classes are ranked by their
// smoothed SLA-normalized latency; the classes furthest from meeting
// their SLA are shed first, triage-style, so the capacity freed lets
// the best-off classes keep meeting theirs instead of every class
// failing together.
class AdmissionController {
 public:
  enum class Decision { kAdmit, kProbe, kShed };

  struct Verdict {
    Decision decision = Decision::kAdmit;
    const char* reason = "";  // "codel" | "queue_full" for kShed
  };

  AdmissionController(Simulator* sim, const AdmissionConfig& config);
  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  // Registers admission.* instruments and the phase="admission" trace
  // stream (transition events only: shed-level changes, breaker trips/
  // probes/closes, retry-budget exhaustion). Either may be null.
  void BindObservability(MetricsRegistry* metrics, TraceLog* trace);

  // SLA registration; queries of unregistered apps normalize against
  // a 1-second SLA.
  void RegisterApp(AppId app, double sla_latency_seconds);

  // Routing filter for Scheduler::PickReplica: false while the
  // (class, replica) breaker is open or its half-open probe quota is
  // spent. Lazily moves open breakers to half-open once their open
  // window has elapsed.
  bool RouteAllowed(ClassKey key, int replica_id);

  // The admission decision for one read about to run on `replica_id`
  // with `queue_depth` queries already in flight there. kProbe is an
  // admit that doubles as a half-open breaker probe.
  Verdict Admit(ClassKey key, int replica_id, uint64_t queue_depth);

  // Feeds one read completion back: updates the class's headroom
  // estimate, the replica's CoDel window, and the breaker.
  void OnComplete(ClassKey key, int replica_id, double latency_seconds);

  // Spends one retry token of `app`'s bucket; false (and a
  // retry_exhausted trace event on the transition) when the budget is
  // dry.
  bool TryRetry(AppId app);

  // True while any class breaker on `replica_id` is open (not yet
  // half-open); the retuner suppresses migrations into such replicas.
  bool BreakerOpen(int replica_id) const;

  // Called by the scheduler when breaker filtering excluded every
  // candidate and it fell back to least-loaded routing.
  void NoteNoReplicaAvailable();

  const AdmissionConfig& config() const { return config_; }

  // --- introspection (tests, benchmarks) ---
  // Classes currently kept on `replica_id` (min(keep, classes seen));
  // negative id or unknown replica reports all classes kept.
  int KeepCount(int replica_id) const;
  bool IsShed(ClassKey key, int replica_id) const;
  uint64_t admitted() const { return admitted_total_; }
  uint64_t shed() const { return shed_total_; }
  double RetryTokens(AppId app) const;

  // --- checkpoint support (FGLBCKPT1) ---
  // Serializes/restores the control state a controller crash loses:
  // per-app retry buckets, per-class headroom estimates, per-replica
  // CoDel windows, shed levels and breakers. Registered SLAs and the
  // admitted/shed lifetime totals are preserved across a reset (they
  // are observability history, not control state).
  void SerializeState(std::string* out) const;
  bool RestoreState(const uint8_t* p, const uint8_t* limit);
  void ResetState();

 private:
  enum class BreakerState { kClosed, kOpen, kHalfOpen };

  struct Breaker {
    BreakerState state = BreakerState::kClosed;
    int consecutive_failures = 0;
    SimTime opened_at = 0;
    int probes_issued = 0;
    int probe_successes = 0;
  };

  struct ReplicaState {
    SimTime window_end = 0;  // 0 = window not started yet
    double window_min = 0;
    uint64_t window_count = 0;
    int keep_count = 1 << 20;  // clamped to the class count in use
    std::set<ClassKey> shed_classes;
    std::map<ClassKey, Breaker> breakers;
  };

  struct ClassState {
    bool has_estimate = false;
    double ewma_normalized = 0;  // smoothed latency / SLA
  };

  struct AppState {
    double sla_latency_seconds = 1.0;
    double retry_tokens = 0;
    bool exhaustion_noted = false;
  };

  double SlaOf(AppId app) const;
  AppState& AppOfKey(ClassKey key);
  ReplicaState& StateOf(int replica_id);

  // Closes every CoDel window that has elapsed on `rs`, walking the
  // keep-count down (standing delay) or up (recovered / idle) and
  // recomputing the shed set on changes.
  void RollWindows(int replica_id, ReplicaState& rs);
  void SetKeepCount(int replica_id, ReplicaState& rs, int keep,
                    const char* reason);
  void RecomputeShedSet(ReplicaState& rs);
  int EffectiveKeep(const ReplicaState& rs) const;

  // Breaker transitions (each emits its trace event + counter).
  void TripBreaker(ClassKey key, int replica_id, Breaker& b, bool reopen);
  void HalfOpenBreaker(ClassKey key, int replica_id, Breaker& b);
  void CloseBreaker(ClassKey key, int replica_id, Breaker& b);

  bool Tracing() const { return trace_ != nullptr && trace_->enabled(); }
  void EmitBreakerEvent(const char* kind, ClassKey key, int replica_id,
                        const Breaker& b);

  Simulator* sim_;
  AdmissionConfig config_;
  std::map<AppId, AppState> apps_;
  std::map<ClassKey, ClassState> classes_;
  std::map<int, ReplicaState> replicas_;

  uint64_t admitted_total_ = 0;
  uint64_t shed_total_ = 0;

  MetricsRegistry* metrics_ = nullptr;
  TraceLog* trace_ = nullptr;
  Counter* admitted_counter_ = nullptr;
  Counter* shed_codel_counter_ = nullptr;
  Counter* shed_queue_counter_ = nullptr;
  Counter* probes_counter_ = nullptr;
  Counter* trips_counter_ = nullptr;
  Counter* half_opens_counter_ = nullptr;
  Counter* closes_counter_ = nullptr;
  Counter* reopens_counter_ = nullptr;
  Counter* retry_granted_counter_ = nullptr;
  Counter* retry_denied_counter_ = nullptr;
  Counter* no_replica_counter_ = nullptr;
  LatencyHistogram* completion_us_ = nullptr;
};

}  // namespace fglb

#endif  // FGLB_CLUSTER_ADMISSION_H_
