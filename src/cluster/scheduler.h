#ifndef FGLB_CLUSTER_SCHEDULER_H_
#define FGLB_CLUSTER_SCHEDULER_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "cluster/admission.h"
#include "cluster/replica.h"
#include "common/histogram.h"
#include "sim/simulator.h"
#include "workload/application.h"
#include "workload/capture_hooks.h"
#include "workload/query_class.h"
#include "workload/query_sink.h"

namespace fglb {

class SpanTracer;

// Per-application scheduler (the paper's scheduling tier): maintains
// the application's replica set, keeps replicas consistent with a
// read-one/write-all scheme, load balances read-only query classes
// across the subset of replicas each class is placed on, and tracks
// SLA compliance per measurement interval.
class Scheduler final : public QuerySink {
 public:
  Scheduler(Simulator* sim, const ApplicationSpec* app);
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  const ApplicationSpec& app() const { return *app_; }

  // --- Replica set management ---

  // Adds a replica. If `in_default_set`, classes without a dedicated
  // placement load balance across it.
  void AddReplica(Replica* replica, bool in_default_set = true);

  // Removes a replica from the set (both default set and any dedicated
  // placements referencing it). In-flight queries complete normally.
  void RemoveReplica(Replica* replica);

  // Pins a query class to exactly `replica` and removes that replica
  // from the default set — the paper's "schedule the problem query
  // class on a different replica" isolation action.
  void DedicateReplica(QueryClassId cls, Replica* replica);

  // Clears a class's dedicated placement; it reverts to the default
  // set. The replica returns to the default set only via AddReplica.
  void ClearDedication(QueryClassId cls);

  // Replicas a class's reads currently balance across.
  std::vector<Replica*> PlacementOf(QueryClassId cls) const;
  const std::vector<Replica*>& replicas() const { return replicas_; }
  std::vector<Replica*> DefaultSet() const;
  bool IsDedicatedTarget(const Replica* replica) const;

  // --- Query routing ---

  void Submit(const QueryInstance& query,
              CompletionCallback on_complete) override;

  // Read routing: the class's placement set, narrowed by the admission
  // controller's breaker filter when one is installed, then freshness-
  // first / least-loaded. When the breaker filter excludes *every*
  // candidate the scheduler falls back to the unfiltered set (and
  // records admission.no_replica_available) — degraded routing beats
  // no routing. Returns nullptr only with no replicas at all.
  Replica* PickReplica(const QueryInstance& query);

  // Installs the overload-protection controller on the read path
  // (breaker-aware routing in PickReplica, shed/retry in Submit).
  // Null detaches; writes are never gated.
  void SetAdmission(AdmissionController* admission) {
    admission_ = admission;
  }

  // Observes every Submit() in admission order (workload capture);
  // null detaches. The recorder must outlive the scheduler or be
  // detached first.
  void SetArrivalRecorder(ArrivalRecorder* recorder) {
    arrival_recorder_ = recorder;
  }

  // Installs sampled per-query span tracing: every Submit() bumps the
  // tracer's global sequence and the 1-in-N sampled queries carry a
  // QuerySpan through the replica pipeline. Null detaches; the tracer
  // must outlive the scheduler or be detached first.
  void SetSpanTracer(SpanTracer* spans) { spans_ = spans; }

  // --- SLA / application-level metrics (tracked "through the
  // scheduler" per the paper) ---

  struct IntervalReport {
    uint64_t queries = 0;
    double avg_latency = 0;
    double p95_latency = 0;  // 95th percentile (approximate)
    double p99_latency = 0;  // 99th percentile (approximate)
    double throughput = 0;   // queries per second
    bool sla_met = true;     // avg latency within the application's SLA
    // Reads fast-failed by admission control this interval; they are
    // not part of `queries` or the latency stats (the retuner reads
    // the shed share as its overload signal).
    uint64_t shed = 0;
  };

  // Closes the current measurement interval and returns its report.
  IntervalReport EndInterval(double interval_seconds);

  // Cumulative per-class completion stats (goodput accounting).
  struct ClassStats {
    uint64_t completed = 0;
    uint64_t sla_ok = 0;  // completions within the app's SLA latency
    double latency_sum = 0;
  };
  const std::map<QueryClassId, ClassStats>& class_stats() const {
    return class_stats_;
  }

  uint64_t total_completed() const { return total_completed_; }
  // Cumulative completions within the app's SLA latency (goodput).
  uint64_t total_sla_ok() const { return total_sla_ok_; }
  uint64_t total_shed() const { return total_shed_; }

 private:
  // Least-loaded admission-allowed replica other than `exclude`, for
  // the bounded retry after a shed; nullptr when no alternative exists.
  Replica* RetryTarget(const QueryInstance& query, const Replica* exclude);
  void RunRead(Replica* replica, const QueryInstance& query,
               CompletionCallback on_complete);
  void Account(QueryClassId cls, double latency);

  Simulator* sim_;
  const ApplicationSpec* app_;
  ArrivalRecorder* arrival_recorder_ = nullptr;
  AdmissionController* admission_ = nullptr;
  SpanTracer* spans_ = nullptr;
  std::vector<Replica*> replicas_;
  std::set<const Replica*> dedicated_targets_;
  std::map<QueryClassId, Replica*> dedicated_placement_;

  uint64_t next_write_seq_ = 0;
  uint64_t round_robin_ = 0;

  // Interval accumulators.
  uint64_t interval_queries_ = 0;
  uint64_t interval_shed_ = 0;
  double interval_latency_sum_ = 0;
  Histogram interval_latencies_;
  uint64_t total_completed_ = 0;
  uint64_t total_sla_ok_ = 0;
  uint64_t total_shed_ = 0;
  std::map<QueryClassId, ClassStats> class_stats_;
};

}  // namespace fglb

#endif  // FGLB_CLUSTER_SCHEDULER_H_
