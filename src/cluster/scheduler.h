#ifndef FGLB_CLUSTER_SCHEDULER_H_
#define FGLB_CLUSTER_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "cluster/replica.h"
#include "common/histogram.h"
#include "sim/simulator.h"
#include "workload/application.h"
#include "workload/capture_hooks.h"
#include "workload/query_class.h"
#include "workload/query_sink.h"

namespace fglb {

// Per-application scheduler (the paper's scheduling tier): maintains
// the application's replica set, keeps replicas consistent with a
// read-one/write-all scheme, load balances read-only query classes
// across the subset of replicas each class is placed on, and tracks
// SLA compliance per measurement interval.
class Scheduler final : public QuerySink {
 public:
  Scheduler(Simulator* sim, const ApplicationSpec* app);
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  const ApplicationSpec& app() const { return *app_; }

  // --- Replica set management ---

  // Adds a replica. If `in_default_set`, classes without a dedicated
  // placement load balance across it.
  void AddReplica(Replica* replica, bool in_default_set = true);

  // Removes a replica from the set (both default set and any dedicated
  // placements referencing it). In-flight queries complete normally.
  void RemoveReplica(Replica* replica);

  // Pins a query class to exactly `replica` and removes that replica
  // from the default set — the paper's "schedule the problem query
  // class on a different replica" isolation action.
  void DedicateReplica(QueryClassId cls, Replica* replica);

  // Clears a class's dedicated placement; it reverts to the default
  // set. The replica returns to the default set only via AddReplica.
  void ClearDedication(QueryClassId cls);

  // Replicas a class's reads currently balance across.
  std::vector<Replica*> PlacementOf(QueryClassId cls) const;
  const std::vector<Replica*>& replicas() const { return replicas_; }
  std::vector<Replica*> DefaultSet() const;
  bool IsDedicatedTarget(const Replica* replica) const;

  // --- Query routing ---

  void Submit(const QueryInstance& query,
              std::function<void(double)> on_complete) override;

  // Observes every Submit() in admission order (workload capture);
  // null detaches. The recorder must outlive the scheduler or be
  // detached first.
  void SetArrivalRecorder(ArrivalRecorder* recorder) {
    arrival_recorder_ = recorder;
  }

  // --- SLA / application-level metrics (tracked "through the
  // scheduler" per the paper) ---

  struct IntervalReport {
    uint64_t queries = 0;
    double avg_latency = 0;
    double p95_latency = 0;  // 95th percentile (approximate)
    double p99_latency = 0;  // 99th percentile (approximate)
    double throughput = 0;   // queries per second
    bool sla_met = true;     // avg latency within the application's SLA
  };

  // Closes the current measurement interval and returns its report.
  IntervalReport EndInterval(double interval_seconds);

  uint64_t total_completed() const { return total_completed_; }

 private:
  Replica* ChooseReadReplica(const QueryInstance& query);

  Simulator* sim_;
  const ApplicationSpec* app_;
  ArrivalRecorder* arrival_recorder_ = nullptr;
  std::vector<Replica*> replicas_;
  std::set<const Replica*> dedicated_targets_;
  std::map<QueryClassId, Replica*> dedicated_placement_;

  uint64_t next_write_seq_ = 0;
  uint64_t round_robin_ = 0;

  // Interval accumulators.
  uint64_t interval_queries_ = 0;
  double interval_latency_sum_ = 0;
  Histogram interval_latencies_;
  uint64_t total_completed_ = 0;
};

}  // namespace fglb

#endif  // FGLB_CLUSTER_SCHEDULER_H_
