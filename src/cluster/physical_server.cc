#include "cluster/physical_server.h"

namespace fglb {

PhysicalServer::PhysicalServer(Simulator* sim, int id, const Options& options)
    : id_(id),
      name_("server-" + std::to_string(id)),
      options_(options),
      cpu_(sim, options.cores, name_ + "/cpu"),
      io_(sim, 1, name_ + "/io") {}

void PhysicalServer::ResetUtilizationWindow() {
  cpu_.ResetAccounting();
  io_.ResetAccounting();
}

}  // namespace fglb
