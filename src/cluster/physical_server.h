#ifndef FGLB_CLUSTER_PHYSICAL_SERVER_H_
#define FGLB_CLUSTER_PHYSICAL_SERVER_H_

#include <cstdint>
#include <string>

#include "sim/queue_resource.h"
#include "sim/simulator.h"
#include "storage/disk_model.h"

namespace fglb {

// One physical machine in the database tier: a multi-core CPU and a
// single shared I/O channel. When several database engines (or Xen
// domains) are co-located on the machine, they all queue on the same
// two resources — which is exactly how the paper's dom0 I/O
// interference arises: Xen isolates faults, not I/O performance.
class PhysicalServer {
 public:
  struct Options {
    int cores = 4;
    // Physical RAM, in 16 KiB pages (16384 = 256 MB).
    uint64_t memory_pages = 16384;
    DiskModel disk;
  };

  PhysicalServer(Simulator* sim, int id, const Options& options);
  PhysicalServer(const PhysicalServer&) = delete;
  PhysicalServer& operator=(const PhysicalServer&) = delete;

  int id() const { return id_; }
  const std::string& name() const { return name_; }
  uint64_t memory_pages() const { return options_.memory_pages; }
  const DiskModel& disk_model() const { return options_.disk; }
  const Options& options() const { return options_; }

  // Fault-injection knob: scales every subsequent disk service demand
  // (engines reference this server's DiskModel by pointer). 1.0 restores
  // healthy latency.
  void set_disk_latency_multiplier(double factor) {
    options_.disk.latency_multiplier = factor;
  }
  double disk_latency_multiplier() const {
    return options_.disk.latency_multiplier;
  }

  QueueResource& cpu() { return cpu_; }
  QueueResource& io() { return io_; }

  // vmstat-style utilization over the current accounting window.
  double CpuUtilization() const { return cpu_.UtilizationSinceReset(); }
  double IoUtilization() const { return io_.UtilizationSinceReset(); }
  void ResetUtilizationWindow();

 private:
  int id_;
  std::string name_;
  Options options_;
  QueueResource cpu_;
  QueueResource io_;
};

}  // namespace fglb

#endif  // FGLB_CLUSTER_PHYSICAL_SERVER_H_
