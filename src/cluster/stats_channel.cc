#include "cluster/stats_channel.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <utility>

#include "common/varint.h"

namespace fglb {

namespace {

std::string Num(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

bool ParseDoubleField(const std::string& value, double* out) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (value.empty() || end == nullptr || *end != '\0') return false;
  *out = parsed;
  return true;
}

// Even a fully dark feed keeps a sliver of confidence so FenceScale
// stays finite and a resync can climb back.
constexpr double kMinConfidence = 1.0 / 1024;
constexpr double kMaxFenceScale = 8.0;

}  // namespace

std::string StatsChannelConfig::ToString() const {
  const StatsChannelConfig defaults;
  std::string out;
  auto add = [&out](const std::string& field) {
    if (!out.empty()) out += ',';
    out += field;
  };
  if (guard != defaults.guard) add(std::string("guard=") + (guard ? "on" : "off"));
  if (decay != defaults.decay) add("decay=" + Num(decay));
  if (recover != defaults.recover) add("recover=" + Num(recover));
  if (act_threshold != defaults.act_threshold) {
    add("threshold=" + Num(act_threshold));
  }
  return out;
}

bool StatsChannelConfig::Parse(const std::string& text,
                               StatsChannelConfig* config,
                               std::string* error) {
  auto fail = [error](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  StatsChannelConfig parsed;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find(',', start);
    if (end == std::string::npos) end = text.size();
    const std::string field = text.substr(start, end - start);
    start = end + 1;
    if (field.empty()) continue;
    const size_t eq = field.find('=');
    if (eq == std::string::npos) {
      return fail("stats spec field without '=': " + field);
    }
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    bool ok = true;
    if (key == "guard") {
      ok = value == "on" || value == "off" || value == "1" || value == "0";
      parsed.guard = value == "on" || value == "1";
    } else if (key == "decay") {
      ok = ParseDoubleField(value, &parsed.decay) && parsed.decay > 0 &&
           parsed.decay < 1;
    } else if (key == "recover") {
      ok = ParseDoubleField(value, &parsed.recover) && parsed.recover > 0 &&
           parsed.recover <= 1;
    } else if (key == "threshold") {
      ok = ParseDoubleField(value, &parsed.act_threshold) &&
           parsed.act_threshold > 0 && parsed.act_threshold <= 1;
    } else {
      return fail("unknown stats spec key: " + key);
    }
    if (!ok) return fail("bad stats spec value: " + field);
  }
  *config = parsed;
  return true;
}

StatsChannel::StatsChannel(Simulator* sim, StatsChannelConfig config)
    : sim_(sim), config_(config) {
  assert(sim_ != nullptr);
}

void StatsChannel::BindObservability(MetricsRegistry* metrics,
                                     TraceLog* trace) {
  metrics_ = metrics;
  trace_ = trace;
  if (metrics_ == nullptr) {
    published_ = delivered_ = dropped_ = corrupt_rejected_ = nullptr;
    late_rejected_ = duplicate_ignored_ = stale_collects_ = resyncs_ = nullptr;
    return;
  }
  published_ = metrics_->counter("stats_channel.published");
  delivered_ = metrics_->counter("stats_channel.delivered");
  dropped_ = metrics_->counter("stats_channel.dropped");
  corrupt_rejected_ = metrics_->counter("stats_channel.corrupt_rejected");
  late_rejected_ = metrics_->counter("stats_channel.late_rejected");
  duplicate_ignored_ = metrics_->counter("stats_channel.duplicate_ignored");
  stale_collects_ = metrics_->counter("stats_channel.stale_collects");
  resyncs_ = metrics_->counter("stats_channel.resyncs");
}

double StatsChannel::FenceScale(double confidence) const {
  if (!config_.guard) return 1.0;
  const double conf = std::max(confidence, kMinConfidence);
  return std::min(1.0 / conf, kMaxFenceScale);
}

void StatsChannel::Publish(int replica_id, const Snapshot& snapshot,
                           double interval_seconds) {
  const uint64_t seq = ++publish_seq_[replica_id];
  if (published_ != nullptr) published_->Increment();

  // Wire format: seq, replica, class count, then per class the key and
  // the metric vector as IEEE-754 bits (bit-exact round trip), with a
  // CRC-32 of everything before it at the tail.
  std::string bytes;
  PutVarint64(&bytes, seq);
  PutVarint64(&bytes, static_cast<uint64_t>(replica_id));
  PutVarint64(&bytes, snapshot.size());
  for (const auto& [key, vec] : snapshot) {
    PutVarint64(&bytes, key);
    for (double v : vec) PutFixed64(&bytes, DoubleToBits(v));
  }
  PutFixed32(&bytes, Crc32(bytes.data(), bytes.size()));

  FaultInjector::NetDecision decision;
  if (net_hook_) decision = net_hook_(replica_id, seq);
  if (decision.drop) {
    if (dropped_ != nullptr) dropped_->Increment();
    return;
  }
  if (decision.corrupt && bytes.size() > 4) {
    bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x5A);
  }
  // A reordered report is pushed behind its successor: 1.5 intervals
  // guarantees it arrives after the next on-time publish.
  double delay = decision.delay_seconds;
  if (decision.reorder) delay += 1.5 * interval_seconds;
  const int copies = decision.duplicate ? 2 : 1;
  for (int i = 0; i < copies; ++i) {
    if (delay > 0) {
      const std::string copy = bytes;
      sim_->ScheduleAfter(delay, [this, copy] { Deliver(copy); });
    } else {
      Deliver(bytes);
    }
  }
}

void StatsChannel::Deliver(const std::string& bytes) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(bytes.data());
  const uint8_t* limit = p + bytes.size();
  if (bytes.size() < 4) {
    if (corrupt_rejected_ != nullptr) corrupt_rejected_->Increment();
    return;
  }
  uint32_t crc = 0;
  if (!GetFixed32(limit - 4, limit, &crc) ||
      crc != Crc32(bytes.data(), bytes.size() - 4)) {
    if (corrupt_rejected_ != nullptr) corrupt_rejected_->Increment();
    return;
  }
  limit -= 4;
  uint64_t seq = 0, replica = 0, classes = 0;
  size_t n = GetVarint64(p, limit, &seq);
  if (n == 0) return;
  p += n;
  n = GetVarint64(p, limit, &replica);
  if (n == 0) return;
  p += n;
  n = GetVarint64(p, limit, &classes);
  if (n == 0) return;
  p += n;
  Snapshot snapshot;
  for (uint64_t i = 0; i < classes; ++i) {
    uint64_t key = 0;
    n = GetVarint64(p, limit, &key);
    if (n == 0) return;
    p += n;
    MetricVector vec{};
    for (double& v : vec) {
      uint64_t bits = 0;
      if (!GetFixed64(p, limit, &bits)) return;
      p += 8;
      v = BitsToDouble(bits);
    }
    snapshot.emplace(key, vec);
  }

  Receiver& rs = receivers_[static_cast<int>(replica)];
  // A duplicate carries an already-consumed seq; a reordered straggler
  // carries a seq behind a newer pending/consumed report. Both are
  // discarded — freshest-seq-wins keeps the feed monotone.
  if (seq <= rs.last_seq) {
    if (seq == rs.last_seq) {
      if (duplicate_ignored_ != nullptr) duplicate_ignored_->Increment();
    } else {
      if (late_rejected_ != nullptr) late_rejected_->Increment();
    }
    return;
  }
  if (rs.has_pending && seq <= rs.pending_seq) {
    if (seq == rs.pending_seq) {
      if (duplicate_ignored_ != nullptr) duplicate_ignored_->Increment();
    } else {
      if (late_rejected_ != nullptr) late_rejected_->Increment();
    }
    return;
  }
  if (delivered_ != nullptr) delivered_->Increment();
  rs.pending = std::move(snapshot);
  rs.has_pending = true;
  rs.pending_seq = seq;
}

StatsChannel::Feed StatsChannel::Collect(int replica_id) {
  Receiver& rs = receivers_[replica_id];
  Feed feed;
  if (rs.has_pending) {
    const uint64_t was_stale = rs.stale_intervals;
    rs.last_seq = rs.pending_seq;
    rs.last_known_good = std::move(rs.pending);
    rs.pending.clear();
    rs.has_pending = false;
    rs.stale_intervals = 0;
    rs.confidence = config_.guard
                        ? std::min(1.0, rs.confidence + config_.recover)
                        : 1.0;
    if (was_stale > 0) {
      if (resyncs_ != nullptr) resyncs_->Increment();
      EmitRecovery("stats_resync", replica_id, rs.last_seq, was_stale,
                   rs.confidence);
    }
    feed.fresh = true;
  } else {
    ++rs.stale_intervals;
    rs.confidence = config_.guard
                        ? std::max(rs.confidence * config_.decay,
                                   kMinConfidence)
                        : 1.0;
    if (stale_collects_ != nullptr) stale_collects_->Increment();
    EmitRecovery("report_lost", replica_id, rs.last_seq, rs.stale_intervals,
                 rs.confidence);
    feed.fresh = false;
  }
  feed.snapshot = &rs.last_known_good;
  feed.stale_intervals = rs.stale_intervals;
  feed.confidence = rs.confidence;
  feed.last_seq = rs.last_seq;
  return feed;
}

void StatsChannel::Retain(const std::vector<int>& live_replica_ids) {
  const std::set<int> live(live_replica_ids.begin(), live_replica_ids.end());
  for (auto it = receivers_.begin(); it != receivers_.end();) {
    if (live.contains(it->first)) {
      ++it;
    } else {
      it = receivers_.erase(it);
    }
  }
}

void StatsChannel::EmitRecovery(const char* why, int replica_id, uint64_t seq,
                                uint64_t stale_intervals, double confidence) {
  if (trace_ == nullptr || !trace_->enabled()) return;
  TraceEvent event("recovery");
  event.Num("t", sim_->Now())
      .Str("why", why)
      .Int("replica", replica_id)
      .Uint("seq", seq)
      .Uint("stale_intervals", stale_intervals)
      .Num("conf", confidence);
  trace_->Emit(event);
}

void StatsChannel::SerializeReceiverState(std::string* out) const {
  PutVarint64(out, receivers_.size());
  for (const auto& [replica, rs] : receivers_) {
    PutVarint64(out, ZigZagEncode(replica));
    PutVarint64(out, rs.last_seq);
    PutVarint64(out, rs.stale_intervals);
    PutFixed64(out, DoubleToBits(rs.confidence));
    PutVarint64(out, rs.last_known_good.size());
    for (const auto& [key, vec] : rs.last_known_good) {
      PutVarint64(out, key);
      for (double v : vec) PutFixed64(out, DoubleToBits(v));
    }
  }
}

bool StatsChannel::RestoreReceiverState(const uint8_t* p,
                                        const uint8_t* limit) {
  std::map<int, Receiver> restored;
  uint64_t count = 0;
  size_t n = GetVarint64(p, limit, &count);
  if (n == 0) return false;
  p += n;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t replica_zz = 0, classes = 0, bits = 0;
    Receiver rs;
    if ((n = GetVarint64(p, limit, &replica_zz)) == 0) return false;
    p += n;
    if ((n = GetVarint64(p, limit, &rs.last_seq)) == 0) return false;
    p += n;
    if ((n = GetVarint64(p, limit, &rs.stale_intervals)) == 0) return false;
    p += n;
    if (!GetFixed64(p, limit, &bits)) return false;
    p += 8;
    rs.confidence = BitsToDouble(bits);
    if ((n = GetVarint64(p, limit, &classes)) == 0) return false;
    p += n;
    for (uint64_t c = 0; c < classes; ++c) {
      uint64_t key = 0;
      if ((n = GetVarint64(p, limit, &key)) == 0) return false;
      p += n;
      MetricVector vec{};
      for (double& v : vec) {
        if (!GetFixed64(p, limit, &bits)) return false;
        p += 8;
        v = BitsToDouble(bits);
      }
      rs.last_known_good.emplace(key, vec);
    }
    restored.emplace(static_cast<int>(ZigZagDecode(replica_zz)),
                     std::move(rs));
  }
  receivers_ = std::move(restored);
  return true;
}

}  // namespace fglb
