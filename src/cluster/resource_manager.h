#ifndef FGLB_CLUSTER_RESOURCE_MANAGER_H_
#define FGLB_CLUSTER_RESOURCE_MANAGER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "cluster/physical_server.h"
#include "cluster/replica.h"
#include "cluster/scheduler.h"
#include "common/metrics_registry.h"
#include "common/trace_log.h"
#include "sim/simulator.h"

namespace fglb {

// Global replica-allocation authority (the paper's resource manager in
// the scheduler tier): owns the shared pool of physical servers and
// every replica created on them, and makes cross-application
// allocation decisions. Schedulers hold borrowed Replica pointers.
class ResourceManager {
 public:
  explicit ResourceManager(Simulator* sim);
  ResourceManager(const ResourceManager&) = delete;
  ResourceManager& operator=(const ResourceManager&) = delete;

  // Adds a machine to the shared pool.
  PhysicalServer* AddServer(const PhysicalServer::Options& options);

  // Creates a database engine + replica on `server`. The engine's pool
  // holds `buffer_pool_pages` (must fit in the server's free memory).
  // Returns nullptr if memory does not fit.
  Replica* CreateReplica(PhysicalServer* server, uint64_t buffer_pool_pages,
                         uint64_t engine_seed = 1);

  // Provisions one more replica for `scheduler`'s application from the
  // pool: prefers an empty server, then the least-loaded server with
  // memory to spare that does not already host this application.
  // Returns nullptr if the pool is exhausted. The replica is added to
  // the scheduler's default set.
  Replica* ProvisionReplica(Scheduler* scheduler, uint64_t buffer_pool_pages);

  // Detaches `replica` from `scheduler` and destroys it, returning its
  // memory to the server. In-flight queries on it complete first in
  // simulated time, but no new queries are routed to it. If the replica
  // has not drained within `drain_timeout_seconds()` it is parked as a
  // zombie: its memory is released for placement purposes, destruction
  // waits for ResourceManager teardown (in-flight completion callbacks
  // reference the replica, so freeing it earlier would be unsound), and
  // the bounded poll keeps a stuck query from pinning the event queue —
  // and thus RunToCompletion — forever.
  void Decommission(Scheduler* scheduler, Replica* replica);

  // Destroys a replica that is no longer routed to (same drain rules as
  // Decommission, without touching any scheduler). Used by the fault
  // injector's crash path after it has detached the replica itself.
  void DestroyReplica(Replica* replica);

  // Live (non-zombie) replica by id, or nullptr.
  Replica* FindReplica(int id) const;

  double drain_timeout_seconds() const { return drain_timeout_seconds_; }
  void set_drain_timeout_seconds(double seconds) {
    drain_timeout_seconds_ = seconds;
  }
  // Replicas whose drain timed out and that now await teardown.
  size_t zombie_count() const { return zombies_.size(); }

  const std::vector<std::unique_ptr<PhysicalServer>>& servers() const {
    return servers_;
  }
  std::vector<Replica*> ReplicasOn(const PhysicalServer* server) const;
  std::vector<Replica*> AllReplicas() const;
  uint64_t FreeMemoryPages(const PhysicalServer* server) const;

  // Number of distinct servers hosting replicas of `scheduler`'s app.
  int ServersUsedBy(const Scheduler& scheduler) const;

  // Registry new replicas' engines bind their metrics to. Existing
  // replicas are bound retroactively; null stops binding new ones.
  void set_metrics(MetricsRegistry* registry);

  // Decision trace a drain-deadline event (phase="fault",
  // kind="drain_timeout") is emitted into when a replica fails to
  // drain; null disables.
  void set_trace(TraceLog* trace) { trace_ = trace; }

  // Execution timeout applied to every engine this manager owns —
  // existing replicas immediately, future ones at creation. 0 disables.
  void set_execution_timeout_seconds(double seconds);
  double execution_timeout_seconds() const {
    return execution_timeout_seconds_;
  }

  // Turns on streaming MRC estimation in every engine this manager
  // owns — existing replicas immediately, future ones (controller
  // provisioning, fault restarts) at creation.
  void set_streaming_mrc(StreamingMrcEstimator::Options options);
  bool streaming_mrc_enabled() const { return streaming_mrc_.has_value(); }

  // Buffer-hierarchy defaults baked into every engine created from now
  // on (controller provisioning and fault restarts included): the
  // replacement policy the DRAM partitions run and the second-tier
  // cache config. Unlike the settings above these cannot be applied
  // retroactively — an engine's pools are built in its constructor —
  // so scenarios set them before the first replica exists.
  void set_engine_defaults(ReplacementPolicy replacement,
                           const TierConfig& tier) {
    engine_replacement_ = replacement;
    engine_tier_ = tier;
  }
  ReplacementPolicy engine_replacement() const { return engine_replacement_; }
  const TierConfig& engine_tier() const { return engine_tier_; }

  // Observer invoked for every replica this manager creates — existing
  // ones immediately, future ones (controller provisioning, fault
  // restarts) at creation. The capture/replay subsystem uses it to wire
  // engine recorder/source hooks onto replicas born mid-run. Empty
  // clears it.
  void set_replica_observer(std::function<void(Replica*)> observer);

  // Publishes every engine's buffer-pool stats into the bound registry.
  void PublishMetrics() const;

 private:
  Simulator* sim_;
  MetricsRegistry* metrics_ = nullptr;
  TraceLog* trace_ = nullptr;
  double execution_timeout_seconds_ = 0;
  std::optional<StreamingMrcEstimator::Options> streaming_mrc_;
  ReplacementPolicy engine_replacement_ = ReplacementPolicy::kLru;
  TierConfig engine_tier_;
  std::function<void(Replica*)> replica_observer_;
  std::vector<std::unique_ptr<PhysicalServer>> servers_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<std::unique_ptr<Replica>> zombies_;
  int next_replica_id_ = 0;
  double drain_timeout_seconds_ = 60;
};

}  // namespace fglb

#endif  // FGLB_CLUSTER_RESOURCE_MANAGER_H_
