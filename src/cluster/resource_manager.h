#ifndef FGLB_CLUSTER_RESOURCE_MANAGER_H_
#define FGLB_CLUSTER_RESOURCE_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "cluster/physical_server.h"
#include "cluster/replica.h"
#include "cluster/scheduler.h"
#include "common/metrics_registry.h"
#include "sim/simulator.h"

namespace fglb {

// Global replica-allocation authority (the paper's resource manager in
// the scheduler tier): owns the shared pool of physical servers and
// every replica created on them, and makes cross-application
// allocation decisions. Schedulers hold borrowed Replica pointers.
class ResourceManager {
 public:
  explicit ResourceManager(Simulator* sim);
  ResourceManager(const ResourceManager&) = delete;
  ResourceManager& operator=(const ResourceManager&) = delete;

  // Adds a machine to the shared pool.
  PhysicalServer* AddServer(const PhysicalServer::Options& options);

  // Creates a database engine + replica on `server`. The engine's pool
  // holds `buffer_pool_pages` (must fit in the server's free memory).
  // Returns nullptr if memory does not fit.
  Replica* CreateReplica(PhysicalServer* server, uint64_t buffer_pool_pages,
                         uint64_t engine_seed = 1);

  // Provisions one more replica for `scheduler`'s application from the
  // pool: prefers an empty server, then the least-loaded server with
  // memory to spare that does not already host this application.
  // Returns nullptr if the pool is exhausted. The replica is added to
  // the scheduler's default set.
  Replica* ProvisionReplica(Scheduler* scheduler, uint64_t buffer_pool_pages);

  // Detaches `replica` from `scheduler` and destroys it, returning its
  // memory to the server. In-flight queries on it complete first in
  // simulated time, but no new queries are routed to it.
  void Decommission(Scheduler* scheduler, Replica* replica);

  const std::vector<std::unique_ptr<PhysicalServer>>& servers() const {
    return servers_;
  }
  std::vector<Replica*> ReplicasOn(const PhysicalServer* server) const;
  std::vector<Replica*> AllReplicas() const;
  uint64_t FreeMemoryPages(const PhysicalServer* server) const;

  // Number of distinct servers hosting replicas of `scheduler`'s app.
  int ServersUsedBy(const Scheduler& scheduler) const;

  // Registry new replicas' engines bind their metrics to. Existing
  // replicas are bound retroactively; null stops binding new ones.
  void set_metrics(MetricsRegistry* registry);

  // Publishes every engine's buffer-pool stats into the bound registry.
  void PublishMetrics() const;

 private:
  Simulator* sim_;
  MetricsRegistry* metrics_ = nullptr;
  std::vector<std::unique_ptr<PhysicalServer>> servers_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  int next_replica_id_ = 0;
};

}  // namespace fglb

#endif  // FGLB_CLUSTER_RESOURCE_MANAGER_H_
