#include "cluster/admission.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <vector>

#include "common/varint.h"

namespace fglb {

namespace {

std::string Num(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

bool ParseDoubleField(const std::string& value, double* out) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (value.empty() || end == nullptr || *end != '\0') return false;
  *out = parsed;
  return true;
}

bool ParseIntField(const std::string& value, int* out) {
  double d = 0;
  if (!ParseDoubleField(value, &d) || d != static_cast<int>(d)) return false;
  *out = static_cast<int>(d);
  return true;
}

}  // namespace

std::string AdmissionConfig::ToString() const {
  std::string out;
  out += "target=" + Num(target_delay);
  out += ",interval=" + Num(codel_interval_seconds);
  out += ",queue=" + std::to_string(max_queue_depth);
  out += ",retry_ratio=" + Num(retry_budget_ratio);
  out += ",retry_burst=" + Num(retry_burst);
  out += ",breaker_threshold=" + std::to_string(breaker_failure_threshold);
  out += ",breaker_open=" + Num(breaker_open_seconds);
  out += ",probes=" + std::to_string(breaker_half_open_probes);
  out += ",timeout_factor=" + Num(timeout_factor);
  out += ",alpha=" + Num(ewma_alpha);
  return out;
}

bool AdmissionConfig::Parse(const std::string& text, AdmissionConfig* config,
                            std::string* error) {
  auto fail = [error](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  AdmissionConfig parsed;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find(',', start);
    if (end == std::string::npos) end = text.size();
    const std::string field = text.substr(start, end - start);
    start = end + 1;
    if (field.empty()) continue;
    const size_t eq = field.find('=');
    if (eq == std::string::npos) {
      return fail("admission spec field without '=': " + field);
    }
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    bool ok = true;
    if (key == "target") {
      ok = ParseDoubleField(value, &parsed.target_delay) &&
           parsed.target_delay > 0;
    } else if (key == "interval") {
      ok = ParseDoubleField(value, &parsed.codel_interval_seconds) &&
           parsed.codel_interval_seconds > 0;
    } else if (key == "queue") {
      double d = 0;
      ok = ParseDoubleField(value, &d) && d >= 1 &&
           d == static_cast<uint64_t>(d);
      parsed.max_queue_depth = static_cast<uint64_t>(d);
    } else if (key == "retry_ratio") {
      ok = ParseDoubleField(value, &parsed.retry_budget_ratio) &&
           parsed.retry_budget_ratio >= 0;
    } else if (key == "retry_burst") {
      ok = ParseDoubleField(value, &parsed.retry_burst) &&
           parsed.retry_burst >= 0;
    } else if (key == "breaker_threshold") {
      ok = ParseIntField(value, &parsed.breaker_failure_threshold) &&
           parsed.breaker_failure_threshold >= 1;
    } else if (key == "breaker_open") {
      ok = ParseDoubleField(value, &parsed.breaker_open_seconds) &&
           parsed.breaker_open_seconds > 0;
    } else if (key == "probes") {
      ok = ParseIntField(value, &parsed.breaker_half_open_probes) &&
           parsed.breaker_half_open_probes >= 1;
    } else if (key == "timeout_factor") {
      ok = ParseDoubleField(value, &parsed.timeout_factor) &&
           parsed.timeout_factor > 0;
    } else if (key == "alpha") {
      ok = ParseDoubleField(value, &parsed.ewma_alpha) &&
           parsed.ewma_alpha > 0 && parsed.ewma_alpha <= 1;
    } else {
      return fail("unknown admission spec key: " + key);
    }
    if (!ok) return fail("bad admission spec value: " + field);
  }
  *config = parsed;
  return true;
}

AdmissionController::AdmissionController(Simulator* sim,
                                         const AdmissionConfig& config)
    : sim_(sim), config_(config) {
  assert(sim_ != nullptr);
}

void AdmissionController::BindObservability(MetricsRegistry* metrics,
                                            TraceLog* trace) {
  metrics_ = metrics;
  trace_ = trace;
  if (metrics_ == nullptr) {
    admitted_counter_ = shed_codel_counter_ = shed_queue_counter_ = nullptr;
    probes_counter_ = trips_counter_ = half_opens_counter_ = nullptr;
    closes_counter_ = reopens_counter_ = nullptr;
    retry_granted_counter_ = retry_denied_counter_ = nullptr;
    no_replica_counter_ = nullptr;
    completion_us_ = nullptr;
    return;
  }
  admitted_counter_ = metrics_->counter("admission.admitted");
  shed_codel_counter_ = metrics_->counter("admission.shed.codel");
  shed_queue_counter_ = metrics_->counter("admission.shed.queue_full");
  probes_counter_ = metrics_->counter("admission.probes");
  trips_counter_ = metrics_->counter("admission.breaker.trips");
  half_opens_counter_ = metrics_->counter("admission.breaker.half_opens");
  closes_counter_ = metrics_->counter("admission.breaker.closes");
  reopens_counter_ = metrics_->counter("admission.breaker.reopens");
  retry_granted_counter_ = metrics_->counter("admission.retry.granted");
  retry_denied_counter_ = metrics_->counter("admission.retry.denied");
  no_replica_counter_ = metrics_->counter("admission.no_replica_available");
  completion_us_ = metrics_->histogram("admission.completion_us");
}

void AdmissionController::RegisterApp(AppId app, double sla_latency_seconds) {
  AppState& state = apps_[app];
  state.sla_latency_seconds =
      sla_latency_seconds > 0 ? sla_latency_seconds : 1.0;
}

double AdmissionController::SlaOf(AppId app) const {
  auto it = apps_.find(app);
  return it != apps_.end() ? it->second.sla_latency_seconds : 1.0;
}

AdmissionController::AppState& AdmissionController::AppOfKey(ClassKey key) {
  return apps_[AppOf(key)];
}

AdmissionController::ReplicaState& AdmissionController::StateOf(
    int replica_id) {
  return replicas_[replica_id];
}

int AdmissionController::EffectiveKeep(const ReplicaState& rs) const {
  const int total = static_cast<int>(classes_.size());
  return std::min(rs.keep_count, std::max(total, 1));
}

void AdmissionController::RecomputeShedSet(ReplicaState& rs) {
  rs.shed_classes.clear();
  const int total = static_cast<int>(classes_.size());
  const int keep = EffectiveKeep(rs);
  if (keep >= total) return;
  // Rank by smoothed normalized latency, worst first; classes with no
  // estimate yet rank best (they have claimed no capacity to triage
  // away). Ties break on the key for determinism.
  std::vector<std::pair<double, ClassKey>> ranked;
  ranked.reserve(classes_.size());
  for (const auto& [key, cs] : classes_) {
    ranked.emplace_back(cs.has_estimate ? cs.ewma_normalized : 0.0, key);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (int i = 0; i < total - keep; ++i) {
    rs.shed_classes.insert(ranked[static_cast<size_t>(i)].second);
  }
}

void AdmissionController::SetKeepCount(int replica_id, ReplicaState& rs,
                                       int keep, const char* reason) {
  const int before = EffectiveKeep(rs);
  rs.keep_count = keep;
  const int after = EffectiveKeep(rs);
  RecomputeShedSet(rs);
  if (after == before) return;
  if (Tracing()) {
    TraceEvent event("admission");
    event.Num("t", sim_->Now())
        .Str("kind", "shed_level")
        .Int("replica", replica_id)
        .Int("keep", after)
        .Int("classes", static_cast<int64_t>(classes_.size()))
        .Num("window_min", rs.window_count > 0 ? rs.window_min : 0)
        .Str("why", reason);
    trace_->Emit(event);
  }
}

void AdmissionController::RollWindows(int replica_id, ReplicaState& rs) {
  const SimTime now = sim_->Now();
  if (rs.window_end == 0) {
    rs.window_end = now + config_.codel_interval_seconds;
    rs.window_min = std::numeric_limits<double>::infinity();
    rs.window_count = 0;
    return;
  }
  while (now >= rs.window_end) {
    if (rs.window_count > 0 && rs.window_min > config_.target_delay) {
      // Standing delay: even the best completion of the window sat
      // above the target. Shed one more class.
      SetKeepCount(replica_id, rs, std::max(1, EffectiveKeep(rs) - 1),
                   "overload");
    } else if (EffectiveKeep(rs) < static_cast<int>(classes_.size())) {
      // Back under target (or idle): restore one class.
      SetKeepCount(replica_id, rs, EffectiveKeep(rs) + 1, "recovery");
    }
    rs.window_min = std::numeric_limits<double>::infinity();
    rs.window_count = 0;
    rs.window_end += config_.codel_interval_seconds;
  }
}

bool AdmissionController::RouteAllowed(ClassKey key, int replica_id) {
  ReplicaState& rs = StateOf(replica_id);
  auto it = rs.breakers.find(key);
  if (it == rs.breakers.end()) return true;
  Breaker& b = it->second;
  switch (b.state) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (sim_->Now() - b.opened_at < config_.breaker_open_seconds) {
        return false;
      }
      HalfOpenBreaker(key, replica_id, b);
      return true;
    case BreakerState::kHalfOpen:
      return b.probes_issued < config_.breaker_half_open_probes;
  }
  return true;
}

AdmissionController::Verdict AdmissionController::Admit(ClassKey key,
                                                        int replica_id,
                                                        uint64_t queue_depth) {
  classes_.try_emplace(key);  // ranked from first sight
  ReplicaState& rs = StateOf(replica_id);
  RollWindows(replica_id, rs);

  bool probe = false;
  auto breaker_it = rs.breakers.find(key);
  if (breaker_it != rs.breakers.end()) {
    Breaker& b = breaker_it->second;
    if (b.state == BreakerState::kOpen &&
        sim_->Now() - b.opened_at >= config_.breaker_open_seconds) {
      HalfOpenBreaker(key, replica_id, b);
    }
    if (b.state == BreakerState::kHalfOpen &&
        b.probes_issued < config_.breaker_half_open_probes) {
      ++b.probes_issued;
      probe = true;
      if (probes_counter_ != nullptr) probes_counter_->Increment();
      EmitBreakerEvent("probe", key, replica_id, b);
    }
  }

  Verdict verdict;
  if (!probe && queue_depth >= config_.max_queue_depth) {
    verdict.decision = Decision::kShed;
    verdict.reason = "queue_full";
    ++shed_total_;
    if (shed_queue_counter_ != nullptr) shed_queue_counter_->Increment();
    return verdict;
  }
  if (!probe && rs.shed_classes.contains(key)) {
    verdict.decision = Decision::kShed;
    verdict.reason = "codel";
    ++shed_total_;
    if (shed_codel_counter_ != nullptr) shed_codel_counter_->Increment();
    return verdict;
  }

  ++admitted_total_;
  if (admitted_counter_ != nullptr) admitted_counter_->Increment();
  AppState& app = AppOfKey(key);
  app.retry_tokens = std::min(config_.retry_burst,
                              app.retry_tokens + config_.retry_budget_ratio);
  if (app.exhaustion_noted && app.retry_tokens >= 1) {
    app.exhaustion_noted = false;
  }
  verdict.decision = probe ? Decision::kProbe : Decision::kAdmit;
  return verdict;
}

void AdmissionController::OnComplete(ClassKey key, int replica_id,
                                     double latency_seconds) {
  const double sla = SlaOf(AppOf(key));
  const double normalized = latency_seconds / sla;

  ClassState& cs = classes_[key];
  if (!cs.has_estimate) {
    cs.has_estimate = true;
    cs.ewma_normalized = normalized;
  } else {
    cs.ewma_normalized = config_.ewma_alpha * normalized +
                         (1 - config_.ewma_alpha) * cs.ewma_normalized;
  }

  ReplicaState& rs = StateOf(replica_id);
  RollWindows(replica_id, rs);
  rs.window_min = std::min(rs.window_min, normalized);
  ++rs.window_count;
  if (completion_us_ != nullptr) {
    completion_us_->Record(latency_seconds * 1e6);
  }

  const bool failure = latency_seconds > config_.timeout_factor * sla;
  Breaker& b = rs.breakers[key];
  switch (b.state) {
    case BreakerState::kClosed:
      if (failure) {
        if (++b.consecutive_failures >= config_.breaker_failure_threshold) {
          TripBreaker(key, replica_id, b, /*reopen=*/false);
        }
      } else {
        b.consecutive_failures = 0;
      }
      break;
    case BreakerState::kHalfOpen:
      if (failure) {
        TripBreaker(key, replica_id, b, /*reopen=*/true);
      } else if (++b.probe_successes >= config_.breaker_half_open_probes) {
        CloseBreaker(key, replica_id, b);
      }
      break;
    case BreakerState::kOpen:
      // A straggler admitted before the trip; the open window already
      // judged this (class, replica).
      break;
  }
}

bool AdmissionController::TryRetry(AppId app) {
  AppState& state = apps_[app];
  if (state.retry_tokens >= 1) {
    state.retry_tokens -= 1;
    if (retry_granted_counter_ != nullptr) retry_granted_counter_->Increment();
    return true;
  }
  if (retry_denied_counter_ != nullptr) retry_denied_counter_->Increment();
  if (!state.exhaustion_noted) {
    state.exhaustion_noted = true;
    if (Tracing()) {
      TraceEvent event("admission");
      event.Num("t", sim_->Now())
          .Str("kind", "retry_exhausted")
          .Uint("app", app)
          .Num("tokens", state.retry_tokens);
      trace_->Emit(event);
    }
  }
  return false;
}

bool AdmissionController::BreakerOpen(int replica_id) const {
  auto it = replicas_.find(replica_id);
  if (it == replicas_.end()) return false;
  const SimTime now = sim_->Now();
  for (const auto& [key, b] : it->second.breakers) {
    if (b.state == BreakerState::kOpen &&
        now - b.opened_at < config_.breaker_open_seconds) {
      return true;
    }
  }
  return false;
}

void AdmissionController::NoteNoReplicaAvailable() {
  if (no_replica_counter_ != nullptr) no_replica_counter_->Increment();
}

int AdmissionController::KeepCount(int replica_id) const {
  auto it = replicas_.find(replica_id);
  const int total = std::max(static_cast<int>(classes_.size()), 1);
  if (it == replicas_.end()) return total;
  return std::min(it->second.keep_count, total);
}

bool AdmissionController::IsShed(ClassKey key, int replica_id) const {
  auto it = replicas_.find(replica_id);
  return it != replicas_.end() && it->second.shed_classes.contains(key);
}

double AdmissionController::RetryTokens(AppId app) const {
  auto it = apps_.find(app);
  return it != apps_.end() ? it->second.retry_tokens : 0;
}

void AdmissionController::TripBreaker(ClassKey key, int replica_id,
                                      Breaker& b, bool reopen) {
  b.state = BreakerState::kOpen;
  b.opened_at = sim_->Now();
  b.probes_issued = 0;
  b.probe_successes = 0;
  if (reopen) {
    if (reopens_counter_ != nullptr) reopens_counter_->Increment();
    EmitBreakerEvent("reopen", key, replica_id, b);
  } else {
    if (trips_counter_ != nullptr) trips_counter_->Increment();
    EmitBreakerEvent("trip", key, replica_id, b);
  }
}

void AdmissionController::HalfOpenBreaker(ClassKey key, int replica_id,
                                          Breaker& b) {
  b.state = BreakerState::kHalfOpen;
  b.probes_issued = 0;
  b.probe_successes = 0;
  if (half_opens_counter_ != nullptr) half_opens_counter_->Increment();
  EmitBreakerEvent("half_open", key, replica_id, b);
}

void AdmissionController::CloseBreaker(ClassKey key, int replica_id,
                                       Breaker& b) {
  b.state = BreakerState::kClosed;
  b.consecutive_failures = 0;
  b.probes_issued = 0;
  b.probe_successes = 0;
  if (closes_counter_ != nullptr) closes_counter_->Increment();
  EmitBreakerEvent("close", key, replica_id, b);
}

void AdmissionController::SerializeState(std::string* out) const {
  PutVarint64(out, apps_.size());
  for (const auto& [app, state] : apps_) {
    PutVarint64(out, app);
    PutFixed64(out, DoubleToBits(state.retry_tokens));
    PutVarint64(out, state.exhaustion_noted ? 1 : 0);
  }
  PutVarint64(out, classes_.size());
  for (const auto& [key, cs] : classes_) {
    PutVarint64(out, key);
    PutVarint64(out, cs.has_estimate ? 1 : 0);
    PutFixed64(out, DoubleToBits(cs.ewma_normalized));
  }
  PutVarint64(out, replicas_.size());
  for (const auto& [replica, rs] : replicas_) {
    PutVarint64(out, ZigZagEncode(replica));
    PutFixed64(out, DoubleToBits(rs.window_end));
    PutFixed64(out, DoubleToBits(rs.window_min));
    PutVarint64(out, rs.window_count);
    PutVarint64(out, ZigZagEncode(rs.keep_count));
    PutVarint64(out, rs.shed_classes.size());
    for (ClassKey key : rs.shed_classes) PutVarint64(out, key);
    PutVarint64(out, rs.breakers.size());
    for (const auto& [key, b] : rs.breakers) {
      PutVarint64(out, key);
      PutVarint64(out, static_cast<uint64_t>(b.state));
      PutVarint64(out, ZigZagEncode(b.consecutive_failures));
      PutFixed64(out, DoubleToBits(b.opened_at));
      PutVarint64(out, ZigZagEncode(b.probes_issued));
      PutVarint64(out, ZigZagEncode(b.probe_successes));
    }
  }
}

bool AdmissionController::RestoreState(const uint8_t* p,
                                       const uint8_t* limit) {
  auto get_u64 = [&p, limit](uint64_t* v) {
    const size_t n = GetVarint64(p, limit, v);
    if (n == 0) return false;
    p += n;
    return true;
  };
  auto get_f64 = [&p, limit](double* v) {
    uint64_t bits = 0;
    if (!GetFixed64(p, limit, &bits)) return false;
    p += 8;
    *v = BitsToDouble(bits);
    return true;
  };
  std::map<AppId, AppState> apps;
  std::map<ClassKey, ClassState> classes;
  std::map<int, ReplicaState> replicas;
  uint64_t count = 0;
  if (!get_u64(&count)) return false;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t app = 0, noted = 0;
    AppState state;
    if (!get_u64(&app) || !get_f64(&state.retry_tokens) || !get_u64(&noted)) {
      return false;
    }
    state.exhaustion_noted = noted != 0;
    apps.emplace(static_cast<AppId>(app), state);
  }
  if (!get_u64(&count)) return false;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t key = 0, has = 0;
    ClassState cs;
    if (!get_u64(&key) || !get_u64(&has) || !get_f64(&cs.ewma_normalized)) {
      return false;
    }
    cs.has_estimate = has != 0;
    classes.emplace(key, cs);
  }
  if (!get_u64(&count)) return false;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t replica_zz = 0, keep_zz = 0, n_shed = 0, n_breakers = 0;
    ReplicaState rs;
    if (!get_u64(&replica_zz) || !get_f64(&rs.window_end) ||
        !get_f64(&rs.window_min) || !get_u64(&rs.window_count) ||
        !get_u64(&keep_zz) || !get_u64(&n_shed)) {
      return false;
    }
    rs.keep_count = static_cast<int>(ZigZagDecode(keep_zz));
    for (uint64_t s = 0; s < n_shed; ++s) {
      uint64_t key = 0;
      if (!get_u64(&key)) return false;
      rs.shed_classes.insert(key);
    }
    if (!get_u64(&n_breakers)) return false;
    for (uint64_t bi = 0; bi < n_breakers; ++bi) {
      uint64_t key = 0, state = 0, failures_zz = 0, probes_zz = 0,
               successes_zz = 0;
      Breaker b;
      if (!get_u64(&key) || !get_u64(&state) || !get_u64(&failures_zz) ||
          !get_f64(&b.opened_at) || !get_u64(&probes_zz) ||
          !get_u64(&successes_zz) || state > 2) {
        return false;
      }
      b.state = static_cast<BreakerState>(state);
      b.consecutive_failures = static_cast<int>(ZigZagDecode(failures_zz));
      b.probes_issued = static_cast<int>(ZigZagDecode(probes_zz));
      b.probe_successes = static_cast<int>(ZigZagDecode(successes_zz));
      rs.breakers.emplace(key, b);
    }
    replicas.emplace(static_cast<int>(ZigZagDecode(replica_zz)),
                     std::move(rs));
  }
  // Retry buckets land on the registered SLAs (registration is setup
  // state and survives the crash); unknown apps in the blob register
  // with the default SLA.
  for (auto& [app, state] : apps_) {
    auto it = apps.find(app);
    if (it != apps.end()) {
      it->second.sla_latency_seconds = state.sla_latency_seconds;
    } else {
      AppState keep = state;
      keep.retry_tokens = 0;
      keep.exhaustion_noted = false;
      apps.emplace(app, keep);
    }
  }
  apps_ = std::move(apps);
  classes_ = std::move(classes);
  replicas_ = std::move(replicas);
  return true;
}

void AdmissionController::ResetState() {
  for (auto& [app, state] : apps_) {
    state.retry_tokens = 0;
    state.exhaustion_noted = false;
  }
  classes_.clear();
  replicas_.clear();
}

void AdmissionController::EmitBreakerEvent(const char* kind, ClassKey key,
                                           int replica_id, const Breaker& b) {
  if (!Tracing()) return;
  TraceEvent event("admission");
  event.Num("t", sim_->Now())
      .Str("kind", kind)
      .Uint("app", AppOf(key))
      .Uint("cls", ClassOf(key))
      .Int("replica", replica_id)
      .Int("failures", b.consecutive_failures)
      .Int("probes", b.probes_issued)
      .Int("probe_successes", b.probe_successes);
  trace_->Emit(event);
}

}  // namespace fglb
