#include "cluster/lock_manager.h"

#include <cassert>
#include <utility>

namespace fglb {

LockManager::LockManager(Simulator* sim) : sim_(sim) {
  assert(sim_ != nullptr);
}

uint64_t LockManager::AcquireAll(const std::vector<PageId>& stripes,
                                 GrantFn granted) {
  const uint64_t ticket = next_ticket_++;
  Request request;
  request.ticket = ticket;
  request.stripes = stripes;
  request.next_index = 0;
  request.start = sim_->Now();
  request.granted = std::move(granted);
  requests_.emplace(ticket, std::move(request));
  TryAdvance(ticket);
  return ticket;
}

void LockManager::TryAdvance(uint64_t ticket) {
  auto it = requests_.find(ticket);
  assert(it != requests_.end());
  Request& request = it->second;
  while (request.next_index < request.stripes.size()) {
    const PageId stripe = request.stripes[request.next_index];
    auto holder = holders_.find(stripe);
    if (holder == holders_.end()) {
      holders_.emplace(stripe, ticket);
      ++request.next_index;
      continue;
    }
    // Blocked: enqueue (once) and stop; Release will resume us.
    waiters_[stripe].push_back(ticket);
    return;
  }
  // All stripes held: grant via the simulator (never synchronously
  // re-entering caller code with our maps mid-update).
  const double wait = sim_->Now() - request.start;
  total_wait_seconds_ += wait;
  ++granted_total_;
  auto callback = std::move(request.granted);
  request.granted.Reset();
  sim_->ScheduleAfter(0, [callback = std::move(callback), wait]() mutable {
    if (callback) callback(wait);
  });
}

void LockManager::Release(uint64_t ticket) {
  auto it = requests_.find(ticket);
  assert(it != requests_.end());
  Request& request = it->second;
  assert(!request.granted && "released before grant");
  // Free held stripes, waking the head waiter of each.
  std::vector<uint64_t> to_advance;
  for (size_t i = 0; i < request.next_index; ++i) {
    const PageId stripe = request.stripes[i];
    assert(holders_.at(stripe) == ticket);
    holders_.erase(stripe);
    auto wait_it = waiters_.find(stripe);
    if (wait_it != waiters_.end() && !wait_it->second.empty()) {
      const uint64_t next = wait_it->second.front();
      wait_it->second.pop_front();
      if (wait_it->second.empty()) waiters_.erase(wait_it);
      // Hand the stripe straight to the waiter (FIFO fairness).
      holders_.emplace(stripe, next);
      Request& next_request = requests_.at(next);
      assert(next_request.stripes[next_request.next_index] == stripe);
      ++next_request.next_index;
      to_advance.push_back(next);
    }
  }
  requests_.erase(it);
  for (uint64_t next : to_advance) TryAdvance(next);
}

}  // namespace fglb
