#include "cluster/scheduler.h"

#include <algorithm>
#include <cassert>

namespace fglb {

Scheduler::Scheduler(Simulator* sim, const ApplicationSpec* app)
    : sim_(sim), app_(app) {
  assert(sim_ && app_);
}

void Scheduler::AddReplica(Replica* replica, bool in_default_set) {
  assert(replica != nullptr);
  if (std::find(replicas_.begin(), replicas_.end(), replica) ==
      replicas_.end()) {
    replicas_.push_back(replica);
  }
  if (in_default_set) {
    dedicated_targets_.erase(replica);
  } else {
    dedicated_targets_.insert(replica);
  }
}

void Scheduler::RemoveReplica(Replica* replica) {
  replicas_.erase(std::remove(replicas_.begin(), replicas_.end(), replica),
                  replicas_.end());
  dedicated_targets_.erase(replica);
  for (auto it = dedicated_placement_.begin();
       it != dedicated_placement_.end();) {
    if (it->second == replica) {
      it = dedicated_placement_.erase(it);
    } else {
      ++it;
    }
  }
}

void Scheduler::DedicateReplica(QueryClassId cls, Replica* replica) {
  assert(replica != nullptr);
  AddReplica(replica, /*in_default_set=*/false);
  dedicated_placement_[cls] = replica;
  dedicated_targets_.insert(replica);
}

void Scheduler::ClearDedication(QueryClassId cls) {
  dedicated_placement_.erase(cls);
}

std::vector<Replica*> Scheduler::DefaultSet() const {
  std::vector<Replica*> result;
  for (Replica* r : replicas_) {
    if (!dedicated_targets_.contains(r)) result.push_back(r);
  }
  return result;
}

bool Scheduler::IsDedicatedTarget(const Replica* replica) const {
  return dedicated_targets_.contains(replica);
}

std::vector<Replica*> Scheduler::PlacementOf(QueryClassId cls) const {
  auto it = dedicated_placement_.find(cls);
  if (it != dedicated_placement_.end()) return {it->second};
  return DefaultSet();
}

Replica* Scheduler::ChooseReadReplica(const QueryInstance& query) {
  std::vector<Replica*> candidates = PlacementOf(query.tmpl->id);
  if (candidates.empty()) candidates = replicas_;
  if (candidates.empty()) return nullptr;
  // Freshness first (read-one/write-all: a replica must have applied
  // all committed writes before serving reads), then least loaded.
  const uint64_t need = next_write_seq_;
  Replica* best = nullptr;
  bool best_fresh = false;
  for (size_t i = 0; i < candidates.size(); ++i) {
    Replica* r = candidates[(round_robin_ + i) % candidates.size()];
    const bool fresh = r->AppliedSeq(app_->id) >= need;
    if (best == nullptr || (fresh && !best_fresh) ||
        (fresh == best_fresh && r->inflight() < best->inflight())) {
      best = r;
      best_fresh = fresh;
    }
  }
  ++round_robin_;
  return best;
}

void Scheduler::Submit(const QueryInstance& query,
                       std::function<void(double)> on_complete) {
  assert(query.tmpl != nullptr);
  if (arrival_recorder_ != nullptr) arrival_recorder_->OnArrival(query);
  if (replicas_.empty()) {
    // No capacity at all: fail the query with a large penalty latency
    // so the SLA check trips and provisioning reacts.
    const double penalty = app_->sla_latency_seconds * 10;
    sim_->ScheduleAfter(penalty, [this, penalty,
                                  on_complete = std::move(on_complete)] {
      ++interval_queries_;
      ++total_completed_;
      interval_latency_sum_ += penalty;
      interval_latencies_.Add(penalty);
      if (on_complete) on_complete(penalty);
    });
    return;
  }

  auto account = [this](double latency) {
    ++interval_queries_;
    ++total_completed_;
    interval_latency_sum_ += latency;
    interval_latencies_.Add(latency);
  };

  if (query.tmpl->is_update) {
    // Write-all: every replica applies the write; the client sees the
    // latency of the (least loaded) replica chosen to answer it, the
    // rest apply asynchronously.
    const uint64_t seq = ++next_write_seq_;
    Replica* primary = nullptr;
    for (Replica* r : replicas_) {
      if (primary == nullptr || r->inflight() < primary->inflight()) {
        primary = r;
      }
    }
    for (Replica* r : replicas_) {
      const bool is_primary = (r == primary);
      AppId app_id = app_->id;
      auto done = [r, seq, app_id, is_primary, account,
                   on_complete](double latency,
                                const ExecutionCounters&) mutable {
        r->SetAppliedSeq(app_id, seq);
        if (is_primary) {
          account(latency);
          if (on_complete) on_complete(latency);
        }
      };
      r->Run(query, std::move(done));
    }
    return;
  }

  Replica* replica = ChooseReadReplica(query);
  assert(replica != nullptr);
  replica->Run(query, [account, on_complete = std::move(on_complete)](
                          double latency, const ExecutionCounters&) mutable {
    account(latency);
    if (on_complete) on_complete(latency);
  });
}

Scheduler::IntervalReport Scheduler::EndInterval(double interval_seconds) {
  assert(interval_seconds > 0);
  IntervalReport report;
  report.queries = interval_queries_;
  report.avg_latency = interval_queries_ > 0
                           ? interval_latency_sum_ / interval_queries_
                           : 0.0;
  report.p95_latency = interval_latencies_.Percentile(95);
  report.p99_latency = interval_latencies_.Percentile(99);
  report.throughput = static_cast<double>(interval_queries_) /
                      interval_seconds;
  report.sla_met = interval_queries_ == 0 ||
                   report.avg_latency <= app_->sla_latency_seconds;
  interval_queries_ = 0;
  interval_latency_sum_ = 0;
  interval_latencies_.Reset();
  return report;
}

}  // namespace fglb
