#include "cluster/scheduler.h"

#include <algorithm>
#include <cassert>

#include "common/span_tracer.h"

namespace fglb {

namespace {

// Client-observed latency of a fast-failed (shed) read: the error
// round-trip, not a service time. Small and fixed so shed queries
// cost the cluster nothing while closed-loop clients still cycle.
constexpr double kShedLatencySeconds = 0.005;

}  // namespace

Scheduler::Scheduler(Simulator* sim, const ApplicationSpec* app)
    : sim_(sim), app_(app) {
  assert(sim_ && app_);
}

void Scheduler::AddReplica(Replica* replica, bool in_default_set) {
  assert(replica != nullptr);
  if (std::find(replicas_.begin(), replicas_.end(), replica) ==
      replicas_.end()) {
    replicas_.push_back(replica);
  }
  if (in_default_set) {
    dedicated_targets_.erase(replica);
  } else {
    dedicated_targets_.insert(replica);
  }
}

void Scheduler::RemoveReplica(Replica* replica) {
  replicas_.erase(std::remove(replicas_.begin(), replicas_.end(), replica),
                  replicas_.end());
  dedicated_targets_.erase(replica);
  for (auto it = dedicated_placement_.begin();
       it != dedicated_placement_.end();) {
    if (it->second == replica) {
      it = dedicated_placement_.erase(it);
    } else {
      ++it;
    }
  }
}

void Scheduler::DedicateReplica(QueryClassId cls, Replica* replica) {
  assert(replica != nullptr);
  AddReplica(replica, /*in_default_set=*/false);
  dedicated_placement_[cls] = replica;
  dedicated_targets_.insert(replica);
}

void Scheduler::ClearDedication(QueryClassId cls) {
  dedicated_placement_.erase(cls);
}

std::vector<Replica*> Scheduler::DefaultSet() const {
  std::vector<Replica*> result;
  for (Replica* r : replicas_) {
    if (!dedicated_targets_.contains(r)) result.push_back(r);
  }
  return result;
}

bool Scheduler::IsDedicatedTarget(const Replica* replica) const {
  return dedicated_targets_.contains(replica);
}

std::vector<Replica*> Scheduler::PlacementOf(QueryClassId cls) const {
  auto it = dedicated_placement_.find(cls);
  if (it != dedicated_placement_.end()) return {it->second};
  return DefaultSet();
}

Replica* Scheduler::PickReplica(const QueryInstance& query) {
  std::vector<Replica*> candidates = PlacementOf(query.tmpl->id);
  if (candidates.empty()) candidates = replicas_;
  if (candidates.empty()) return nullptr;
  if (admission_ != nullptr) {
    std::vector<Replica*> allowed;
    allowed.reserve(candidates.size());
    const ClassKey key = query.class_key();
    for (Replica* r : candidates) {
      if (admission_->RouteAllowed(key, r->id())) allowed.push_back(r);
    }
    if (allowed.empty()) {
      // Every candidate's breaker is open: route least-loaded anyway
      // rather than failing the class outright.
      admission_->NoteNoReplicaAvailable();
    } else {
      candidates = std::move(allowed);
    }
  }
  // Freshness first (read-one/write-all: a replica must have applied
  // all committed writes before serving reads), then least loaded.
  const uint64_t need = next_write_seq_;
  Replica* best = nullptr;
  bool best_fresh = false;
  for (size_t i = 0; i < candidates.size(); ++i) {
    Replica* r = candidates[(round_robin_ + i) % candidates.size()];
    const bool fresh = r->AppliedSeq(app_->id) >= need;
    if (best == nullptr || (fresh && !best_fresh) ||
        (fresh == best_fresh && r->inflight() < best->inflight())) {
      best = r;
      best_fresh = fresh;
    }
  }
  ++round_robin_;
  return best;
}

Replica* Scheduler::RetryTarget(const QueryInstance& query,
                                const Replica* exclude) {
  const ClassKey key = query.class_key();
  std::vector<Replica*> candidates = PlacementOf(query.tmpl->id);
  if (candidates.empty()) candidates = replicas_;
  Replica* best = nullptr;
  for (Replica* r : candidates) {
    if (r == exclude) continue;
    if (admission_ != nullptr && !admission_->RouteAllowed(key, r->id())) {
      continue;
    }
    if (best == nullptr || r->inflight() < best->inflight()) best = r;
  }
  return best;
}

void Scheduler::Account(QueryClassId cls, double latency) {
  ++interval_queries_;
  ++total_completed_;
  interval_latency_sum_ += latency;
  interval_latencies_.Add(latency);
  ClassStats& stats = class_stats_[cls];
  ++stats.completed;
  stats.latency_sum += latency;
  if (latency <= app_->sla_latency_seconds) {
    ++stats.sla_ok;
    ++total_sla_ok_;
  }
}

void Scheduler::RunRead(Replica* replica, const QueryInstance& query,
                        CompletionCallback on_complete) {
  const ClassKey key = query.class_key();
  const QueryClassId cls = query.tmpl->id;
  const int replica_id = replica->id();
  replica->Run(query, [this, key, cls, replica_id,
                       on_complete = std::move(on_complete)](
                          double latency, const ExecutionCounters&) mutable {
    if (admission_ != nullptr) {
      admission_->OnComplete(key, replica_id, latency);
    }
    Account(cls, latency);
    if (on_complete) on_complete(latency);
  });
}

void Scheduler::Submit(const QueryInstance& query,
                       CompletionCallback on_complete) {
  assert(query.tmpl != nullptr);
  if (arrival_recorder_ != nullptr) arrival_recorder_->OnArrival(query);
  // Every submit bumps the tracer's sequence (sampling is a pure
  // function of arrival order, so a replayed capture samples the same
  // queries); the sampled 1-in-N get a span threaded to the replica.
  const QueryInstance* routed = &query;
  QueryInstance sampled;
  if (spans_ != nullptr) {
    QuerySpan* span = spans_->Begin(query.app, query.tmpl->id, sim_->Now());
    if (span != nullptr) {
      sampled = query;
      sampled.span = span;
      routed = &sampled;
    }
  }
  if (replicas_.empty()) {
    // No capacity at all: fail the query with a large penalty latency
    // so the SLA check trips and provisioning reacts.
    const double penalty = app_->sla_latency_seconds * 10;
    if (routed->span != nullptr) {
      spans_->EndImmediate(routed->span, SpanSegment::kPenalty, penalty);
    }
    sim_->ScheduleAfter(penalty, [this, penalty, cls = query.tmpl->id,
                                  on_complete = std::move(on_complete)]() mutable {
      Account(cls, penalty);
      if (on_complete) on_complete(penalty);
    });
    return;
  }

  if (query.tmpl->is_update) {
    // Write-all: every replica applies the write; the client sees the
    // latency of the (least loaded) replica chosen to answer it, the
    // rest apply asynchronously. Writes bypass admission control —
    // shedding one would silently fork replica state.
    const uint64_t seq = ++next_write_seq_;
    Replica* primary = nullptr;
    for (Replica* r : replicas_) {
      if (primary == nullptr || r->inflight() < primary->inflight()) {
        primary = r;
      }
    }
    // Replicas run in set order (event ordering is part of the
    // deterministic-replay contract); only the primary's completion
    // carries the client callback, which is move-only.
    const AppId app_id = app_->id;
    for (Replica* r : replicas_) {
      if (r == primary) {
        // Only the primary's run carries the span: the client-observed
        // latency is the primary's, the async applies are background.
        r->Run(*routed, [this, r, seq, app_id, cls = query.tmpl->id,
                       on_complete = std::move(on_complete)](
                          double latency, const ExecutionCounters&) mutable {
          r->SetAppliedSeq(app_id, seq);
          Account(cls, latency);
          if (on_complete) on_complete(latency);
        });
      } else {
        r->Run(query, [r, seq, app_id](double, const ExecutionCounters&) {
          r->SetAppliedSeq(app_id, seq);
        });
      }
    }
    return;
  }

  Replica* replica = PickReplica(*routed);
  assert(replica != nullptr);
  if (admission_ != nullptr) {
    const ClassKey key = query.class_key();
    AdmissionController::Verdict verdict =
        admission_->Admit(key, replica->id(), replica->inflight());
    if (verdict.decision == AdmissionController::Decision::kShed) {
      // One bounded retry on another replica, if the app's token
      // bucket still holds a whole token and an alternative admits.
      Replica* alternative = nullptr;
      if (replicas_.size() > 1 && admission_->TryRetry(app_->id)) {
        alternative = RetryTarget(query, replica);
        if (alternative != nullptr) {
          const AdmissionController::Verdict retried = admission_->Admit(
              key, alternative->id(), alternative->inflight());
          if (retried.decision == AdmissionController::Decision::kShed) {
            alternative = nullptr;
          }
        }
      }
      if (alternative == nullptr) {
        // Fast-fail: the client gets an error round-trip, not a slot
        // in a collapsed queue. Not counted in the latency stats —
        // the shed share travels separately in the interval report.
        ++interval_shed_;
        ++total_shed_;
        if (routed->span != nullptr) {
          spans_->EndImmediate(routed->span, SpanSegment::kShed,
                               kShedLatencySeconds);
        }
        sim_->ScheduleAfter(kShedLatencySeconds,
                            [on_complete = std::move(on_complete)]() mutable {
                              if (on_complete) on_complete(kShedLatencySeconds);
                            });
        return;
      }
      replica = alternative;
    }
  }
  RunRead(replica, *routed, std::move(on_complete));
}

Scheduler::IntervalReport Scheduler::EndInterval(double interval_seconds) {
  assert(interval_seconds > 0);
  IntervalReport report;
  report.queries = interval_queries_;
  report.avg_latency = interval_queries_ > 0
                           ? interval_latency_sum_ / interval_queries_
                           : 0.0;
  report.p95_latency = interval_latencies_.Percentile(95);
  report.p99_latency = interval_latencies_.Percentile(99);
  report.throughput = static_cast<double>(interval_queries_) /
                      interval_seconds;
  report.sla_met = interval_queries_ == 0 ||
                   report.avg_latency <= app_->sla_latency_seconds;
  report.shed = interval_shed_;
  interval_queries_ = 0;
  interval_shed_ = 0;
  interval_latency_sum_ = 0;
  interval_latencies_.Reset();
  return report;
}

}  // namespace fglb
