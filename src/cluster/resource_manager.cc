#include "cluster/resource_manager.h"

#include <algorithm>
#include <cassert>

namespace fglb {

ResourceManager::ResourceManager(Simulator* sim) : sim_(sim) {
  assert(sim_ != nullptr);
}

PhysicalServer* ResourceManager::AddServer(
    const PhysicalServer::Options& options) {
  const int id = static_cast<int>(servers_.size());
  servers_.push_back(std::make_unique<PhysicalServer>(sim_, id, options));
  return servers_.back().get();
}

std::vector<Replica*> ResourceManager::ReplicasOn(
    const PhysicalServer* server) const {
  std::vector<Replica*> result;
  for (const auto& replica : replicas_) {
    if (&replica->server() == server) result.push_back(replica.get());
  }
  return result;
}

std::vector<Replica*> ResourceManager::AllReplicas() const {
  std::vector<Replica*> result;
  result.reserve(replicas_.size());
  for (const auto& replica : replicas_) result.push_back(replica.get());
  return result;
}

uint64_t ResourceManager::FreeMemoryPages(const PhysicalServer* server) const {
  uint64_t used = 0;
  for (const auto& replica : replicas_) {
    if (&replica->server() == server) {
      used += replica->engine().pool().capacity();
    }
  }
  return used >= server->memory_pages() ? 0 : server->memory_pages() - used;
}

Replica* ResourceManager::CreateReplica(PhysicalServer* server,
                                        uint64_t buffer_pool_pages,
                                        uint64_t engine_seed) {
  assert(server != nullptr);
  if (FreeMemoryPages(server) < buffer_pool_pages) return nullptr;
  DatabaseEngine::Options options;
  options.buffer_pool_pages = buffer_pool_pages;
  options.seed = engine_seed;
  options.replacement = engine_replacement_;
  options.tier = engine_tier_;
  const int id = next_replica_id_++;
  auto engine = std::make_unique<DatabaseEngine>(
      "engine-" + std::to_string(id), options, &server->disk_model());
  if (metrics_ != nullptr) engine->BindMetrics(metrics_);
  engine->set_execution_timeout_seconds(execution_timeout_seconds_);
  if (streaming_mrc_.has_value()) engine->EnableStreamingMrc(*streaming_mrc_);
  replicas_.push_back(
      std::make_unique<Replica>(id, sim_, server, std::move(engine)));
  if (replica_observer_) replica_observer_(replicas_.back().get());
  return replicas_.back().get();
}

void ResourceManager::set_replica_observer(
    std::function<void(Replica*)> observer) {
  replica_observer_ = std::move(observer);
  if (!replica_observer_) return;
  for (const auto& replica : replicas_) replica_observer_(replica.get());
}

void ResourceManager::set_execution_timeout_seconds(double seconds) {
  execution_timeout_seconds_ = seconds;
  for (const auto& replica : replicas_) {
    replica->engine().set_execution_timeout_seconds(seconds);
  }
}

void ResourceManager::set_streaming_mrc(
    StreamingMrcEstimator::Options options) {
  streaming_mrc_ = options;
  for (const auto& replica : replicas_) {
    replica->engine().EnableStreamingMrc(options);
  }
}

void ResourceManager::set_metrics(MetricsRegistry* registry) {
  metrics_ = registry;
  for (const auto& replica : replicas_) {
    replica->engine().BindMetrics(registry);
  }
}

void ResourceManager::PublishMetrics() const {
  if (metrics_ == nullptr) return;
  for (const auto& replica : replicas_) {
    replica->engine().PublishMetrics();
  }
}

Replica* ResourceManager::ProvisionReplica(Scheduler* scheduler,
                                           uint64_t buffer_pool_pages) {
  assert(scheduler != nullptr);
  // Servers already hosting this application are not candidates: a new
  // replica there would share the very resources that are saturated.
  std::set<const PhysicalServer*> hosting;
  for (const Replica* r : scheduler->replicas()) hosting.insert(&r->server());

  PhysicalServer* best = nullptr;
  size_t best_load = 0;
  for (const auto& server : servers_) {
    if (hosting.contains(server.get())) continue;
    if (FreeMemoryPages(server.get()) < buffer_pool_pages) continue;
    const size_t load = ReplicasOn(server.get()).size();
    if (best == nullptr || load < best_load) {
      best = server.get();
      best_load = load;
    }
  }
  if (best == nullptr) return nullptr;
  Replica* replica = CreateReplica(best, buffer_pool_pages,
                                   /*engine_seed=*/0x1000 +
                                       static_cast<uint64_t>(
                                           next_replica_id_));
  if (replica == nullptr) return nullptr;
  scheduler->AddReplica(replica);
  return replica;
}

void ResourceManager::Decommission(Scheduler* scheduler, Replica* replica) {
  assert(scheduler != nullptr && replica != nullptr);
  scheduler->RemoveReplica(replica);
  DestroyReplica(replica);
}

void ResourceManager::DestroyReplica(Replica* replica) {
  assert(replica != nullptr);
  // Destroy only once drained; with the discrete-event model, queries
  // already admitted hold no pointer back into the replica after their
  // completion callbacks run, but those callbacks do reference it, so
  // defer destruction until the replica is idle.
  auto it = std::find_if(
      replicas_.begin(), replicas_.end(),
      [replica](const std::unique_ptr<Replica>& r) { return r.get() == replica; });
  if (it == replicas_.end()) return;
  if (replica->inflight() == 0) {
    replicas_.erase(it);
    return;
  }
  // Poll for drain, but only until the deadline: a query wedged on a
  // never-released lock must not keep the event queue — and with it
  // RunToCompletion — alive forever. Past the deadline the replica is
  // parked as a zombie owned by this manager, freed at teardown.
  std::unique_ptr<Replica> owned = std::move(*it);
  replicas_.erase(it);
  auto held = std::make_shared<std::unique_ptr<Replica>>(std::move(owned));
  const SimTime deadline = sim_->Now() + drain_timeout_seconds_;
  struct Drainer {
    static void Wait(ResourceManager* rm,
                     std::shared_ptr<std::unique_ptr<Replica>> held,
                     SimTime deadline) {
      if ((*held)->inflight() == 0) return;  // destroyed when held dies
      if (rm->sim_->Now() >= deadline) {
        if (rm->metrics_ != nullptr) {
          rm->metrics_->counter("cluster.drain_timeouts")->Increment();
        }
        Replica* r = held->get();
        rm->zombies_.push_back(std::move(*held));
        if (rm->trace_ != nullptr && rm->trace_->enabled()) {
          rm->trace_->Emit(TraceEvent("fault")
                               .Str("kind", "drain_timeout")
                               .Num("t", rm->sim_->Now())
                               .Int("replica", r->id())
                               .Uint("inflight", r->inflight())
                               .Uint("zombies", rm->zombies_.size()));
        }
        return;
      }
      rm->sim_->ScheduleAfter(1.0, [rm, held, deadline] {
        Wait(rm, held, deadline);
      });
    }
  };
  Drainer::Wait(this, held, deadline);
}

Replica* ResourceManager::FindReplica(int id) const {
  for (const auto& replica : replicas_) {
    if (replica->id() == id) return replica.get();
  }
  return nullptr;
}

int ResourceManager::ServersUsedBy(const Scheduler& scheduler) const {
  std::set<const PhysicalServer*> hosting;
  for (const Replica* r : scheduler.replicas()) hosting.insert(&r->server());
  return static_cast<int>(hosting.size());
}

}  // namespace fglb
