#include "common/trace_check.h"

#include <cstdint>
#include <cstdio>
#include <map>

namespace fglb {

namespace {

std::string LineError(size_t line_number, const std::string& message) {
  return "line " + std::to_string(line_number) + ": " + message;
}

bool KnownRecoveryWhy(const std::string& why) {
  return why == "restored" || why == "bad_ckpt" || why == "no_ckpt" ||
         why == "stats_resync" || why == "report_lost";
}

}  // namespace

bool CheckTraceLines(const std::vector<std::string>& lines,
                     std::string* error) {
  int64_t last_seq = -1;
  // Per-replica stats-channel state threaded through phase=recovery
  // events: the report sequence number must never regress, and
  // stale_intervals must count up by one per lost report within a
  // staleness episode (a stats_resync ends the episode).
  std::map<int64_t, int64_t> last_report_seq;
  std::map<int64_t, int64_t> last_stale;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.empty()) continue;
    JsonValue event;
    std::string parse_error;
    if (!JsonValue::Parse(line, &event, &parse_error)) {
      *error = LineError(i + 1, parse_error);
      return false;
    }
    const char* missing = nullptr;
    if (!event.is_object()) missing = "(not an object)";
    else if (event.NumberOr("v", 0) != 1) missing = "v";
    else if (event.Find("seq") == nullptr) missing = "seq";
    else if (event.Find("mono_us") == nullptr) missing = "mono_us";
    else if (event.StringOr("phase", "").empty()) missing = "phase";
    if (missing != nullptr) {
      *error = LineError(i + 1, std::string("missing/invalid field ") +
                                    missing);
      return false;
    }
    const int64_t seq = static_cast<int64_t>(event.NumberOr("seq", -1));
    if (seq != last_seq + 1) {
      *error = LineError(i + 1, "sequence gap (" + std::to_string(seq) +
                                    " after " + std::to_string(last_seq) +
                                    ")");
      return false;
    }
    last_seq = seq;
    if (event.StringOr("phase", "") == "recovery") {
      const std::string why = event.StringOr("why", "");
      if (!KnownRecoveryWhy(why)) {
        *error = LineError(i + 1, "unknown recovery why: " +
                                      (why.empty() ? "(missing)" : why));
        return false;
      }
      const JsonValue* replica = event.Find("replica");
      if (replica == nullptr) {
        // A controller-level restore/cold-start replaces the receiver
        // state wholesale; per-replica continuity restarts from there.
        if (why == "stats_resync" || why == "report_lost") {
          *error = LineError(i + 1, "channel recovery event without replica");
          return false;
        }
        last_report_seq.clear();
        last_stale.clear();
      } else {
        if (why != "stats_resync" && why != "report_lost") {
          *error = LineError(i + 1, "controller recovery event with replica");
          return false;
        }
        const int64_t id = static_cast<int64_t>(replica->number);
        const int64_t report_seq =
            static_cast<int64_t>(event.NumberOr("seq", -1));
        const int64_t stale =
            static_cast<int64_t>(event.NumberOr("stale_intervals", -1));
        if (report_seq < 0) {
          *error = LineError(i + 1, "recovery event missing report seq");
          return false;
        }
        auto seq_it = last_report_seq.find(id);
        if (seq_it != last_report_seq.end() && report_seq < seq_it->second) {
          *error = LineError(
              i + 1, "replica " + std::to_string(id) +
                         " report seq regressed (" +
                         std::to_string(report_seq) + " after " +
                         std::to_string(seq_it->second) + ")");
          return false;
        }
        last_report_seq[id] = report_seq;
        auto stale_it = last_stale.find(id);
        if (why == "report_lost") {
          // Within an episode the counter steps by exactly one; after a
          // restore (maps cleared) any starting point is legal.
          if (stale < 1 ||
              (stale_it != last_stale.end() &&
               stale != stale_it->second + 1)) {
            *error = LineError(
                i + 1, "replica " + std::to_string(id) +
                           " stale_intervals not monotone (" +
                           std::to_string(stale) + ")");
            return false;
          }
          last_stale[id] = stale;
        } else {  // stats_resync reports the episode length it ended
          if (stale < 1 ||
              (stale_it != last_stale.end() && stale_it->second != 0 &&
               stale != stale_it->second)) {
            *error = LineError(
                i + 1, "replica " + std::to_string(id) +
                           " resync with inconsistent stale_intervals (" +
                           std::to_string(stale) + ")");
            return false;
          }
          last_stale[id] = 0;
        }
      }
    }
    // phase=mrc events from tiered engines carry the tier fields as a
    // unit: a partial or nonsensical set means the producer is broken,
    // not merely tierless (tierless events omit all three).
    if (event.StringOr("phase", "") == "mrc") {
      const JsonValue* pages = event.Find("tier2_pages");
      const JsonValue* resident = event.Find("tier2_resident");
      const JsonValue* read_us = event.Find("tier2_read_us");
      if (pages != nullptr || resident != nullptr || read_us != nullptr) {
        const char* bad = nullptr;
        if (pages == nullptr || pages->kind != JsonValue::Kind::kNumber ||
            pages->number <= 0) {
          bad = "tier2_pages";
        } else if (resident == nullptr ||
                   resident->kind != JsonValue::Kind::kNumber ||
                   resident->number < 0 ||
                   resident->number > pages->number) {
          bad = "tier2_resident";
        } else if (read_us == nullptr ||
                   read_us->kind != JsonValue::Kind::kNumber ||
                   read_us->number <= 0) {
          bad = "tier2_read_us";
        }
        if (bad != nullptr) {
          *error = LineError(i + 1, std::string("malformed tier spec: ") +
                                        bad);
          return false;
        }
      }
    }
  }
  return true;
}

std::string FormatActionEventLine(const JsonValue& event) {
  if (event.StringOr("kind", "") == "none") return "";
  char buf[320];
  std::snprintf(buf, sizeof(buf), "t=%7.0f  [%s]  %s\n",
                event.NumberOr("t", 0),
                event.StringOr("kind", "?").c_str(),
                event.StringOr("desc", "").c_str());
  return buf;
}

bool ActionLines(const std::vector<std::string>& lines,
                 std::vector<std::string>* out, std::string* error) {
  out->clear();
  for (size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    JsonValue event;
    std::string parse_error;
    if (!JsonValue::Parse(lines[i], &event, &parse_error)) {
      *error = LineError(i + 1, parse_error);
      return false;
    }
    if (event.StringOr("phase", "") != "action") continue;
    std::string rendered = FormatActionEventLine(event);
    if (!rendered.empty()) out->push_back(std::move(rendered));
  }
  return true;
}

}  // namespace fglb
