#include "common/trace_check.h"

#include <cstdint>
#include <cstdio>

namespace fglb {

namespace {

std::string LineError(size_t line_number, const std::string& message) {
  return "line " + std::to_string(line_number) + ": " + message;
}

}  // namespace

bool CheckTraceLines(const std::vector<std::string>& lines,
                     std::string* error) {
  int64_t last_seq = -1;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.empty()) continue;
    JsonValue event;
    std::string parse_error;
    if (!JsonValue::Parse(line, &event, &parse_error)) {
      *error = LineError(i + 1, parse_error);
      return false;
    }
    const char* missing = nullptr;
    if (!event.is_object()) missing = "(not an object)";
    else if (event.NumberOr("v", 0) != 1) missing = "v";
    else if (event.Find("seq") == nullptr) missing = "seq";
    else if (event.Find("mono_us") == nullptr) missing = "mono_us";
    else if (event.StringOr("phase", "").empty()) missing = "phase";
    if (missing != nullptr) {
      *error = LineError(i + 1, std::string("missing/invalid field ") +
                                    missing);
      return false;
    }
    const int64_t seq = static_cast<int64_t>(event.NumberOr("seq", -1));
    if (seq != last_seq + 1) {
      *error = LineError(i + 1, "sequence gap (" + std::to_string(seq) +
                                    " after " + std::to_string(last_seq) +
                                    ")");
      return false;
    }
    last_seq = seq;
    // phase=mrc events from tiered engines carry the tier fields as a
    // unit: a partial or nonsensical set means the producer is broken,
    // not merely tierless (tierless events omit all three).
    if (event.StringOr("phase", "") == "mrc") {
      const JsonValue* pages = event.Find("tier2_pages");
      const JsonValue* resident = event.Find("tier2_resident");
      const JsonValue* read_us = event.Find("tier2_read_us");
      if (pages != nullptr || resident != nullptr || read_us != nullptr) {
        const char* bad = nullptr;
        if (pages == nullptr || pages->kind != JsonValue::Kind::kNumber ||
            pages->number <= 0) {
          bad = "tier2_pages";
        } else if (resident == nullptr ||
                   resident->kind != JsonValue::Kind::kNumber ||
                   resident->number < 0 ||
                   resident->number > pages->number) {
          bad = "tier2_resident";
        } else if (read_us == nullptr ||
                   read_us->kind != JsonValue::Kind::kNumber ||
                   read_us->number <= 0) {
          bad = "tier2_read_us";
        }
        if (bad != nullptr) {
          *error = LineError(i + 1, std::string("malformed tier spec: ") +
                                        bad);
          return false;
        }
      }
    }
  }
  return true;
}

std::string FormatActionEventLine(const JsonValue& event) {
  if (event.StringOr("kind", "") == "none") return "";
  char buf[320];
  std::snprintf(buf, sizeof(buf), "t=%7.0f  [%s]  %s\n",
                event.NumberOr("t", 0),
                event.StringOr("kind", "?").c_str(),
                event.StringOr("desc", "").c_str());
  return buf;
}

bool ActionLines(const std::vector<std::string>& lines,
                 std::vector<std::string>* out, std::string* error) {
  out->clear();
  for (size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    JsonValue event;
    std::string parse_error;
    if (!JsonValue::Parse(lines[i], &event, &parse_error)) {
      *error = LineError(i + 1, parse_error);
      return false;
    }
    if (event.StringOr("phase", "") != "action") continue;
    std::string rendered = FormatActionEventLine(event);
    if (!rendered.empty()) out->push_back(std::move(rendered));
  }
  return true;
}

}  // namespace fglb
