#include "common/trace_check.h"

#include <cstdint>
#include <cstdio>

namespace fglb {

namespace {

std::string LineError(size_t line_number, const std::string& message) {
  return "line " + std::to_string(line_number) + ": " + message;
}

}  // namespace

bool CheckTraceLines(const std::vector<std::string>& lines,
                     std::string* error) {
  int64_t last_seq = -1;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.empty()) continue;
    JsonValue event;
    std::string parse_error;
    if (!JsonValue::Parse(line, &event, &parse_error)) {
      *error = LineError(i + 1, parse_error);
      return false;
    }
    const char* missing = nullptr;
    if (!event.is_object()) missing = "(not an object)";
    else if (event.NumberOr("v", 0) != 1) missing = "v";
    else if (event.Find("seq") == nullptr) missing = "seq";
    else if (event.Find("mono_us") == nullptr) missing = "mono_us";
    else if (event.StringOr("phase", "").empty()) missing = "phase";
    if (missing != nullptr) {
      *error = LineError(i + 1, std::string("missing/invalid field ") +
                                    missing);
      return false;
    }
    const int64_t seq = static_cast<int64_t>(event.NumberOr("seq", -1));
    if (seq != last_seq + 1) {
      *error = LineError(i + 1, "sequence gap (" + std::to_string(seq) +
                                    " after " + std::to_string(last_seq) +
                                    ")");
      return false;
    }
    last_seq = seq;
  }
  return true;
}

std::string FormatActionEventLine(const JsonValue& event) {
  if (event.StringOr("kind", "") == "none") return "";
  char buf[320];
  std::snprintf(buf, sizeof(buf), "t=%7.0f  [%s]  %s\n",
                event.NumberOr("t", 0),
                event.StringOr("kind", "?").c_str(),
                event.StringOr("desc", "").c_str());
  return buf;
}

bool ActionLines(const std::vector<std::string>& lines,
                 std::vector<std::string>* out, std::string* error) {
  out->clear();
  for (size_t i = 0; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    JsonValue event;
    std::string parse_error;
    if (!JsonValue::Parse(lines[i], &event, &parse_error)) {
      *error = LineError(i + 1, parse_error);
      return false;
    }
    if (event.StringOr("phase", "") != "action") continue;
    std::string rendered = FormatActionEventLine(event);
    if (!rendered.empty()) out->push_back(std::move(rendered));
  }
  return true;
}

}  // namespace fglb
