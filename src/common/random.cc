#include "common/random.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace fglb {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// Stafford variant 13 of the 64-bit finalizer; bijective on uint64_t.
uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t n) {
  assert(n > 0);
  // Rejection to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextUint64(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::Exponential(double mean) {
  assert(mean > 0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  double u1 = NextDouble();
  if (u1 <= 0) u1 = 0x1.0p-53;
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

uint64_t Rng::Binomial(uint64_t n, double p) {
  if (n == 0 || p <= 0) return 0;
  if (p >= 1) return n;
  // Walk the trial sequence by Geometric(p) gaps: each gap lands on
  // the next success. Expected iterations: n*p + 1.
  const double log_q = std::log1p(-p);  // < 0
  uint64_t count = 0;
  double position = 0;
  while (true) {
    double u = NextDouble();
    if (u <= 0) u = 0x1.0p-53;
    position += std::floor(std::log(u) / log_q) + 1;
    if (position > static_cast<double>(n)) break;
    ++count;
  }
  return count;
}

size_t Rng::Discrete(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0;
  for (double w : weights) total += w;
  assert(total > 0);
  double x = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0) return i;
  }
  return weights.size() - 1;
}

// --- ZipfGenerator (Hormann rejection-inversion) ---
//
// Follows W. Hormann and G. Derflinger, "Rejection-inversion to generate
// variates from monotone discrete distributions" (1996), as popularized
// by the Apache Commons RejectionInversionZipfSampler. Samples ranks in
// [1, n] with P(k) proportional to 1/k^theta, returned zero-based.

namespace {

// Computes (exp(x) - 1) / x with stable behaviour near x = 0.
double Helper1(double x) {
  if (std::fabs(x) > 1e-8) return std::expm1(x) / x;
  return 1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + x * 0.25));
}

// Computes log(1 + x) / x with stable behaviour near x = 0.
double Helper2(double x) {
  if (std::fabs(x) > 1e-8) return std::log1p(x) / x;
  return 1.0 - x * (0.5 - x * (1.0 / 3.0 - x * 0.25));
}

}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  assert(n > 0);
  assert(theta >= 0);
  // H is the integral of the density h(x) = 1/x^theta.
  h_integral_x1_ = H(1.5) - 1.0;
  h_integral_num_elements_ = H(static_cast<double>(n) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -theta));
}

double ZipfGenerator::H(double x) const {
  // Integral of x^-theta: ((x^(1-theta)) - 1) / (1-theta), expressed
  // as helper1((1-theta) ln x) * ln x for stability near theta = 1.
  const double log_x = std::log(x);
  return Helper1((1.0 - theta_) * log_x) * log_x;
}

double ZipfGenerator::HInverse(double x) const {
  const double t = x * (1.0 - theta_);
  // Clamp to keep log1p's argument above -1 in the face of rounding.
  const double tt = t < -1.0 ? -1.0 : t;
  return std::exp(Helper2(tt) * x);
}

uint64_t ZipfGenerator::Sample(Rng& rng) const {
  if (n_ == 1) return 0;
  for (;;) {
    const double u = h_integral_num_elements_ +
                     rng.NextDouble() *
                         (h_integral_x1_ - h_integral_num_elements_);
    const double x = HInverse(u);
    double k = x + 0.5;
    if (k < 1.0) k = 1.0;
    if (k > static_cast<double>(n_)) k = static_cast<double>(n_);
    const uint64_t ki = static_cast<uint64_t>(k);
    const double kd = static_cast<double>(ki);
    if (kd - x <= s_ ||
        u >= H(kd + 0.5) - std::exp(-theta_ * std::log(kd))) {
      return ki - 1;
    }
  }
}

namespace {

// Balanced Feistel permutation on [0, 2^(2*half_bits)). Always a
// bijection regardless of the round function, so cycle-walking over it
// terminates (iterating a permutation from a point < n must return to
// that point, visiting another element < n on the way or ending there).
uint64_t Feistel(uint64_t v, int half_bits) {
  const uint64_t half_mask = (half_bits >= 64) ? ~0ULL
                                               : ((1ULL << half_bits) - 1);
  uint64_t left = (v >> half_bits) & half_mask;
  uint64_t right = v & half_mask;
  for (int round = 0; round < 4; ++round) {
    const uint64_t f =
        Mix64(right + 0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(round)) &
        half_mask;
    const uint64_t new_left = right;
    right = left ^ f;
    left = new_left;
  }
  return (left << half_bits) | right;
}

}  // namespace

uint64_t ScrambleToDomain(uint64_t value, uint64_t n) {
  assert(n > 0);
  if (n == 1) return 0;
  int bits = 2;  // even number of bits covering n
  while (bits < 64 && (1ULL << bits) < n) bits += 2;
  const int half_bits = bits / 2;
  uint64_t v = value % n;
  do {
    v = Feistel(v, half_bits);
  } while (v >= n);
  return v;
}

}  // namespace fglb
