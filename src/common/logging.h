#ifndef FGLB_COMMON_LOGGING_H_
#define FGLB_COMMON_LOGGING_H_

#include <string>

namespace fglb {

// One leveled stderr logger for every tool/binary in the tree, so
// verbosity is controlled in one place (fglb_sim --log-level=...).
// kQuiet suppresses info and debug; errors always print. Diagnostic
// output goes to stderr so CSV/table payloads on stdout stay clean.
enum class LogLevel { kQuiet = 0, kInfo = 1, kDebug = 2 };

void SetGlobalLogLevel(LogLevel level);
LogLevel GlobalLogLevel();

// "quiet" | "info" | "debug" -> level; false on anything else.
bool ParseLogLevel(const std::string& text, LogLevel* out);
const char* LogLevelName(LogLevel level);

// printf-style; LogInfo/LogDebug are dropped below the corresponding
// global level, LogError always prints.
void LogError(const char* format, ...) __attribute__((format(printf, 1, 2)));
void LogInfo(const char* format, ...) __attribute__((format(printf, 1, 2)));
void LogDebug(const char* format, ...) __attribute__((format(printf, 1, 2)));

}  // namespace fglb

#endif  // FGLB_COMMON_LOGGING_H_
