#ifndef FGLB_COMMON_HISTOGRAM_H_
#define FGLB_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace fglb {

// Log-bucketed histogram for latency-style values (non-negative, heavy
// right tail). Buckets grow geometrically from `min_value` by `growth`
// per bucket. Values below the first bucket go to bucket 0, values
// above the last to the overflow bucket.
class Histogram {
 public:
  Histogram(double min_value = 1e-4, double growth = 1.3,
            int num_buckets = 96);

  void Add(double value);
  void Merge(const Histogram& other);
  void Reset();

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? sum_ / count_ : 0.0; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

  // Approximate quantile via linear interpolation within the bucket.
  double Percentile(double p) const;

  // Multi-line human-readable dump (bucket ranges + counts).
  std::string ToString() const;

 private:
  double BucketLowerBound(size_t index) const;
  size_t BucketFor(double value) const;

  double min_value_;
  double growth_;
  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace fglb

#endif  // FGLB_COMMON_HISTOGRAM_H_
