#ifndef FGLB_COMMON_VARINT_H_
#define FGLB_COMMON_VARINT_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace fglb {

// LEB128 varints, zigzag mapping and fixed-width little-endian scalars
// over std::string buffers, plus CRC-32 — the byte-level codec shared
// by the legacy per-class trace (format v2) and the capture/replay
// subsystem. All readers are bounds-checked: they never read past
// `limit` and report malformed input by returning 0 / false, so a
// truncated or corrupted file can not crash a decoder.

// Appends `v` as a base-128 varint (1..10 bytes).
void PutVarint64(std::string* dst, uint64_t v);

// Decodes a varint starting at `p` (strictly before `limit`). Returns
// the number of bytes consumed, or 0 if the encoding is truncated or
// longer than 10 bytes.
size_t GetVarint64(const uint8_t* p, const uint8_t* limit, uint64_t* v);

// Maps signed deltas onto small unsigned varints. Works for the full
// int64 domain (including the wrap-around deltas of uint64 sequences).
constexpr uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}
constexpr int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

// Fixed-width little-endian scalars (bit-exact doubles travel as their
// IEEE-754 bit pattern via PutFixed64).
void PutFixed32(std::string* dst, uint32_t v);
void PutFixed64(std::string* dst, uint64_t v);
bool GetFixed32(const uint8_t* p, const uint8_t* limit, uint32_t* v);
bool GetFixed64(const uint8_t* p, const uint8_t* limit, uint64_t* v);

uint64_t DoubleToBits(double d);
double BitsToDouble(uint64_t bits);

// CRC-32 (IEEE 802.3 polynomial, the zlib crc32). `seed` chains
// incremental updates: Crc32(b, n2, Crc32(a, n1)) == Crc32(a+b).
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

}  // namespace fglb

#endif  // FGLB_COMMON_VARINT_H_
