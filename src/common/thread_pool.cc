#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace fglb {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads - 1);
  for (size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::BindMetrics(MetricsRegistry* registry,
                             const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  if (registry == nullptr) {
    queue_depth_ = nullptr;
    tasks_executed_ = nullptr;
    return;
  }
  queue_depth_ = registry->gauge(prefix + "queue_depth");
  tasks_executed_ = registry->counter(prefix + "tasks_executed");
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    if (queue_depth_ != nullptr) {
      queue_depth_->Set(static_cast<double>(queue_.size()));
    }
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    Counter* executed = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      if (queue_depth_ != nullptr) {
        queue_depth_->Set(static_cast<double>(queue_.size()));
      }
      executed = tasks_executed_;
    }
    task();
    if (executed != nullptr) executed->Increment();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  struct ForState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> helpers_running{0};
    std::mutex mu;
    std::condition_variable done;
  };
  auto state = std::make_shared<ForState>();
  // Blocking until every helper exits keeps the &fn capture safe.
  const size_t helpers = std::min(workers_.size(), n - 1);
  state->helpers_running.store(helpers, std::memory_order_relaxed);
  for (size_t h = 0; h < helpers; ++h) {
    Enqueue([state, &fn, n] {
      size_t i;
      while ((i = state->next.fetch_add(1, std::memory_order_relaxed)) < n) {
        fn(i);
      }
      if (state->helpers_running.fetch_sub(1, std::memory_order_acq_rel) ==
          1) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->done.notify_one();
      }
    });
  }
  size_t i;
  while ((i = state->next.fetch_add(1, std::memory_order_relaxed)) < n) {
    fn(i);
  }
  std::unique_lock<std::mutex> lock(state->mu);
  state->done.wait(lock, [&state] {
    return state->helpers_running.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace fglb
