#include "common/csv.h"

namespace fglb {

std::string CsvQuote(std::string_view field) {
  const bool needs_quoting =
      field.find_first_of(",\"\r\n") != std::string_view::npos;
  if (!needs_quoting) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace fglb
