#ifndef FGLB_COMMON_TRACE_CHECK_H_
#define FGLB_COMMON_TRACE_CHECK_H_

#include <string>
#include <vector>

#include "common/json.h"

namespace fglb {

// Shared validation/rendering over JSONL decision traces: fglb_tracecat
// implements --check and --phase=action with these, and the
// deterministic-replay tests call them in-process on TraceLog's
// buffered lines, so tool and tests cannot drift apart.

// Validates every line against the TraceLog schema: well-formed JSON
// object, "v" == 1, "seq" gapless from 0, "mono_us" present, non-empty
// "phase". Empty lines are skipped. On failure returns false with a
// one-line "line N: ..." message in *error.
bool CheckTraceLines(const std::vector<std::string>& lines,
                     std::string* error);

// Renders one parsed "action" event exactly as the simulator's action
// log does ("t=... [kind] desc\n"); empty for the kind:"none"
// placeholder events.
std::string FormatActionEventLine(const JsonValue& event);

// The action-format lines of a raw trace, in order. This is the
// run-to-run comparable projection of a trace: the header's mono_us is
// wall-clock and differs across runs, but t/kind/desc must not.
// Returns false with a message in *error on any unparsable line.
bool ActionLines(const std::vector<std::string>& lines,
                 std::vector<std::string>* out, std::string* error);

}  // namespace fglb

#endif  // FGLB_COMMON_TRACE_CHECK_H_
