#ifndef FGLB_COMMON_METRICS_REGISTRY_H_
#define FGLB_COMMON_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace fglb {

// Process-wide-cheap instrumentation primitives with hierarchical
// dotted names ("engine.bufferpool.misses", "controller.diagnose.mrc_us",
// "threadpool.queue_depth"). Every instrument is registered once
// (find-or-create under a lock, returning a stable pointer) and then
// updated lock-free with relaxed atomics; instrumented components hold
// the raw pointer, so the steady-state cost of a disabled subsystem is
// one null check and of an enabled one a single relaxed atomic op.
//
// The registry snapshot (`ToJson`/`WriteJson`) is the --metrics-out
// payload: one object with counters, gauges and histogram summaries.

// Monotonically increasing event count. `Set` exists for components
// that already maintain cumulative counters internally and publish them
// into the registry once per sampling interval (e.g. buffer-pool
// stats).
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void Set(uint64_t value) { value_.store(value, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-written instantaneous value (queue depth, utilization, ...).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

// High-water mark since the last snapshot. A sampled gauge misses
// bursts between samples; a MaxGauge is updated from the hot path
// (CAS-max, lock-free) and reset to 0 by the snapshot that reads it,
// so each --metrics-out interval reports its true peak.
class MaxGauge {
 public:
  void Update(double value) {
    double seen = value_.load(std::memory_order_relaxed);
    while (value > seen &&
           !value_.compare_exchange_weak(seen, value,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  // Returns the peak and resets it (snapshot semantics).
  double Take() { return value_.exchange(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

// Fixed-bucket latency histogram over microseconds. Bucket 0 holds
// [0,1) us; bucket i >= 1 holds [2^(i-1), 2^i) us, so 40 buckets cover
// up to ~2^39 us (~6.4 simulated days) with the final bucket absorbing
// overflow. Updates are one relaxed fetch_add per bucket plus count/sum
// accumulation; `Percentile` interpolates linearly inside a bucket.
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 40;

  void Record(double microseconds);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum_us() const { return sum_us_.load(std::memory_order_relaxed); }
  double mean_us() const {
    const uint64_t n = count();
    return n > 0 ? sum_us() / static_cast<double>(n) : 0.0;
  }
  double max_us() const { return max_us_.load(std::memory_order_relaxed); }
  uint64_t bucket_count(size_t index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }

  // Lower bound (inclusive) / upper bound (exclusive) of a bucket, us.
  static double BucketLowerBoundUs(size_t index);
  static double BucketUpperBoundUs(size_t index);

  // p in [0, 1]; approximate quantile over the recorded distribution.
  double Percentile(double p) const;

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_us_{0};
  std::atomic<double> max_us_{0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create; the returned pointer is stable for the registry's
  // lifetime. A name must keep one instrument kind (registering
  // "x" as both counter and gauge is two distinct instruments in two
  // namespaces, not an error).
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  MaxGauge* max_gauge(const std::string& name);
  LatencyHistogram* histogram(const std::string& name);

  size_t counter_count() const;
  size_t gauge_count() const;
  size_t max_gauge_count() const;
  size_t histogram_count() const;

  // {"v":1,"counters":{...},"gauges":{...},"histograms":{name:
  //  {"count":..,"sum_us":..,"mean_us":..,"p50_us":..,"p95_us":..,
  //   "p99_us":..,"max_us":..,"buckets":[[lo_us,count],...]}}}
  // Max gauges are reported in "gauges" (their snapshot-and-reset
  // semantics make them gauges from the reader's point of view).
  std::string ToJson() const;
  bool WriteJson(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<MaxGauge>> max_gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace fglb

#endif  // FGLB_COMMON_METRICS_REGISTRY_H_
