#include "common/metrics_registry.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "common/json.h"

namespace fglb {

namespace {

size_t BucketFor(double microseconds) {
  if (!(microseconds > 0)) return 0;  // negatives and NaN land in bucket 0
  const uint64_t us = static_cast<uint64_t>(microseconds);
  const size_t width = static_cast<size_t>(std::bit_width(us));
  return std::min(width, LatencyHistogram::kNumBuckets - 1);
}

}  // namespace

void LatencyHistogram::Record(double microseconds) {
  if (!std::isfinite(microseconds) || microseconds < 0) microseconds = 0;
  buckets_[BucketFor(microseconds)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(microseconds, std::memory_order_relaxed);
  double seen = max_us_.load(std::memory_order_relaxed);
  while (microseconds > seen &&
         !max_us_.compare_exchange_weak(seen, microseconds,
                                        std::memory_order_relaxed)) {
  }
}

double LatencyHistogram::BucketLowerBoundUs(size_t index) {
  return index == 0 ? 0.0
                    : static_cast<double>(uint64_t{1} << (index - 1));
}

double LatencyHistogram::BucketUpperBoundUs(size_t index) {
  return index == 0 ? 1.0 : static_cast<double>(uint64_t{1} << index);
}

double LatencyHistogram::Percentile(double p) const {
  p = std::clamp(p, 0.0, 1.0);
  uint64_t snapshot[kNumBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snapshot[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snapshot[i];
  }
  if (total == 0) return 0;
  const double target = p * static_cast<double>(total);
  double cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (snapshot[i] == 0) continue;
    const double next = cumulative + static_cast<double>(snapshot[i]);
    if (next >= target) {
      const double lo = BucketLowerBoundUs(i);
      const double hi = std::min(BucketUpperBoundUs(i), max_us());
      const double fraction =
          (target - cumulative) / static_cast<double>(snapshot[i]);
      return lo + std::max(0.0, hi - lo) * std::clamp(fraction, 0.0, 1.0);
    }
    cumulative = next;
  }
  return max_us();
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

MaxGauge* MetricsRegistry::max_gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = max_gauges_.find(name);
  if (it == max_gauges_.end()) {
    it = max_gauges_.emplace(name, std::make_unique<MaxGauge>()).first;
  }
  return it->second.get();
}

LatencyHistogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<LatencyHistogram>()).first;
  }
  return it->second.get();
}

size_t MetricsRegistry::counter_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size();
}

size_t MetricsRegistry::gauge_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_.size();
}

size_t MetricsRegistry::max_gauge_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_gauges_.size();
}

size_t MetricsRegistry::histogram_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return histograms_.size();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"v\":1,\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ',';
    first = false;
    out += "\"" + JsonEscape(name) +
           "\":" + std::to_string(counter->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + JsonNumber(gauge->value());
  }
  for (const auto& [name, gauge] : max_gauges_) {
    if (!first) out += ',';
    first = false;
    // Reading a max gauge resets it: each snapshot reports the peak
    // since the previous one.
    out += "\"" + JsonEscape(name) + "\":" + JsonNumber(gauge->Take());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += "\"" + JsonEscape(name) + "\":{\"count\":" +
           std::to_string(hist->count()) +
           ",\"sum_us\":" + JsonNumber(hist->sum_us()) +
           ",\"mean_us\":" + JsonNumber(hist->mean_us()) +
           ",\"p50_us\":" + JsonNumber(hist->Percentile(0.50)) +
           ",\"p95_us\":" + JsonNumber(hist->Percentile(0.95)) +
           ",\"p99_us\":" + JsonNumber(hist->Percentile(0.99)) +
           ",\"max_us\":" + JsonNumber(hist->max_us()) + ",\"buckets\":[";
    bool first_bucket = true;
    for (size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
      const uint64_t n = hist->bucket_count(i);
      if (n == 0) continue;
      if (!first_bucket) out += ',';
      first_bucket = false;
      out += "[" + JsonNumber(LatencyHistogram::BucketLowerBoundUs(i)) + "," +
             std::to_string(n) + "]";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

bool MetricsRegistry::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = ToJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size() &&
                  std::fputc('\n', f) != EOF;
  std::fclose(f);
  return ok;
}

}  // namespace fglb
