#include "common/span_tracer.h"

#include <cstdlib>

#include "common/json.h"

namespace fglb {
namespace {

constexpr size_t kSpanChunk = 256;

// Pipeline order used both for slice tiling in the export and for the
// wait-profile segment listing.
constexpr SpanSegment kPipelineOrder[] = {
    SpanSegment::kAdmission, SpanSegment::kIoWait,
    SpanSegment::kIoService, SpanSegment::kCpuWait,
    SpanSegment::kCpuService, SpanSegment::kLockWait,
    SpanSegment::kCommitHold, SpanSegment::kShed,
    SpanSegment::kPenalty,
};
static_assert(sizeof(kPipelineOrder) / sizeof(kPipelineOrder[0]) ==
                  kSpanSegmentCount,
              "pipeline order must cover every segment");

// Trace pids: 0 is the controller (phase instants), 1 the scheduler
// (shed / penalty fast-fails that never reached a replica), 2+i is
// replica i.
constexpr int kControllerPid = 0;
constexpr int kSchedulerPid = 1;
constexpr int kReplicaPidBase = 2;

uint32_t AppOf(uint64_t key) { return static_cast<uint32_t>(key >> 32); }
uint32_t ClassOf(uint64_t key) {
  return static_cast<uint32_t>(key & 0xffffffffu);
}

std::string HistogramSummaryJson(const LatencyHistogram& h) {
  std::string out = "{\"count\":" + std::to_string(h.count());
  out += ",\"sum_us\":" + JsonNumber(h.sum_us());
  out += ",\"mean_us\":" + JsonNumber(h.mean_us());
  out += ",\"p50_us\":" + JsonNumber(h.Percentile(0.50));
  out += ",\"p95_us\":" + JsonNumber(h.Percentile(0.95));
  out += ",\"p99_us\":" + JsonNumber(h.Percentile(0.99));
  out += ",\"max_us\":" + JsonNumber(h.max_us());
  out += "}";
  return out;
}

}  // namespace

const char* SpanSegmentName(SpanSegment segment) {
  switch (segment) {
    case SpanSegment::kAdmission:
      return "admission";
    case SpanSegment::kIoWait:
      return "io_wait";
    case SpanSegment::kIoService:
      return "io_service";
    case SpanSegment::kCpuWait:
      return "cpu_wait";
    case SpanSegment::kCpuService:
      return "cpu_service";
    case SpanSegment::kLockWait:
      return "lock_wait";
    case SpanSegment::kCommitHold:
      return "commit_hold";
    case SpanSegment::kShed:
      return "shed";
    case SpanSegment::kPenalty:
      return "penalty";
    case SpanSegment::kCount:
      break;
  }
  return "unknown";
}

std::string SpanConfig::ToString() const {
  return "sample=" + std::to_string(sample_every);
}

bool SpanConfig::Parse(const std::string& text, SpanConfig* config,
                       std::string* error) {
  SpanConfig parsed;
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = "span spec: " + message;
    return false;
  };
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find(',', pos);
    if (end == std::string::npos) end = text.size();
    const std::string item = text.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string::npos) return fail("expected key=value in '" + item + "'");
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "sample") {
      char* tail = nullptr;
      const unsigned long long n = std::strtoull(value.c_str(), &tail, 10);
      if (tail == value.c_str() || *tail != '\0' || n == 0) {
        return fail("sample must be a positive integer, got '" + value + "'");
      }
      parsed.sample_every = n;
    } else {
      return fail("unknown key '" + key + "'");
    }
  }
  *config = parsed;
  return true;
}

SpanTracer::SpanTracer(const SpanConfig& config) : config_(config) {
  if (config_.sample_every == 0) config_.sample_every = 1;
}

SpanTracer::~SpanTracer() { Close(); }

bool SpanTracer::OpenFile(const std::string& path, std::string* error) {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    if (error != nullptr) *error = "cannot open spans file: " + path;
    return false;
  }
  return true;
}

void SpanTracer::EnableBuffering() { buffering_ = true; }

void SpanTracer::Close() {
  if (closed_) {
    if (file_ != nullptr) {
      std::fclose(file_);
      file_ = nullptr;
    }
    return;
  }
  closed_ = true;
  const char* tail = any_event_ ? "\n]\n" : "[\n]\n";
  if (file_ != nullptr) {
    std::fputs(tail, file_);
    std::fclose(file_);
    file_ = nullptr;
  }
  if (buffering_) buffer_ += tail;
}

std::string SpanTracer::BufferedJson() const {
  std::string doc = buffer_;
  if (!closed_) doc += any_event_ ? "\n]\n" : "[\n]\n";
  return doc;
}

QuerySpan* SpanTracer::AllocateSpan() {
  if (free_list_ == nullptr) {
    chunks_.emplace_back(new QuerySpan[kSpanChunk]);
    QuerySpan* chunk = chunks_.back().get();
    for (size_t i = 0; i < kSpanChunk; ++i) {
      chunk[i].next_free = free_list_;
      free_list_ = &chunk[i];
    }
  }
  QuerySpan* span = free_list_;
  free_list_ = span->next_free;
  *span = QuerySpan{};
  return span;
}

void SpanTracer::ReleaseSpan(QuerySpan* span) {
  span->next_free = free_list_;
  free_list_ = span;
}

QuerySpan* SpanTracer::Begin(uint32_t app, uint32_t cls, double now) {
  const uint64_t seq = sequence_++;
  if (seq % config_.sample_every != 0) return nullptr;
  QuerySpan* span = AllocateSpan();
  span->owner = this;
  span->id = sampled_++;
  span->seq = seq;
  span->key = (static_cast<uint64_t>(app) << 32) | cls;
  span->start = now;
  return span;
}

SpanTracer::ClassAggregate& SpanTracer::AggregateFor(uint64_t key) {
  auto it = aggregates_.find(key);
  if (it != aggregates_.end()) return it->second;
  ClassAggregate& agg = aggregates_[key];
  const std::string prefix = "span.a" + std::to_string(AppOf(key)) + ".c" +
                             std::to_string(ClassOf(key)) + ".";
  const auto make = [&](const std::string& name) -> LatencyHistogram* {
    if (metrics_ != nullptr) return metrics_->histogram(prefix + name);
    agg.owned.emplace_back(new LatencyHistogram());
    return agg.owned.back().get();
  };
  agg.end_to_end = make("total");
  for (size_t i = 0; i < kSpanSegmentCount; ++i) {
    agg.segments[i] = make(SpanSegmentName(static_cast<SpanSegment>(i)));
  }
  return agg;
}

void SpanTracer::Aggregate(const QuerySpan& span, double end_to_end) {
  ClassAggregate& agg = AggregateFor(span.key);
  ++agg.sampled;
  agg.end_to_end->Record(end_to_end * 1e6);
  for (size_t i = 0; i < kSpanSegmentCount; ++i) {
    if (span.seconds[i] > 0) agg.segments[i]->Record(span.seconds[i] * 1e6);
  }
}

void SpanTracer::EndSpan(QuerySpan* span, double now) {
  const double end_to_end = now - span->start;
  Aggregate(*span, end_to_end);
  if (exporting() && !closed_) ExportSpan(*span, end_to_end);
  ++finished_;
  if (observer_) observer_(*span, end_to_end);
  ReleaseSpan(span);
}

void SpanTracer::EndImmediate(QuerySpan* span, SpanSegment segment,
                              double duration) {
  span->Add(segment, duration);
  EndSpan(span, span->start + duration);
}

void SpanTracer::EmitEvent(const std::string& json) {
  if (closed_) return;
  std::string out = any_event_ ? ",\n" : "[\n";
  any_event_ = true;
  out += json;
  if (file_ != nullptr) std::fwrite(out.data(), 1, out.size(), file_);
  if (buffering_) buffer_ += out;
}

void SpanTracer::EnsureProcessTrack(int pid, const std::string& name) {
  if (track_named_[pid]) return;
  track_named_[pid] = true;
  EmitEvent(
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
      std::to_string(pid) +
      ",\"tid\":0,\"args\":{\"name\":\"" + JsonEscape(name) + "\"}}");
}

int SpanTracer::LaneFor(int pid, double start, double end) {
  std::vector<double>& lanes = lanes_[pid];
  for (size_t i = 0; i < lanes.size(); ++i) {
    if (lanes[i] <= start + 1e-12) {
      lanes[i] = end;
      return static_cast<int>(i);
    }
  }
  lanes.push_back(end);
  return static_cast<int>(lanes.size() - 1);
}

void SpanTracer::ExportSpan(const QuerySpan& span, double end_to_end) {
  int pid = kSchedulerPid;
  std::string track = "scheduler";
  if (span.replica_id >= 0) {
    pid = kReplicaPidBase + span.replica_id;
    track = "replica-" + std::to_string(span.replica_id);
  }
  EnsureProcessTrack(pid, track);

  const double start = span.start;
  const double end = start + end_to_end;
  const int tid = LaneFor(pid, start, end) + 1;
  const std::string pid_tid =
      ",\"pid\":" + std::to_string(pid) + ",\"tid\":" + std::to_string(tid);

  const double residual_us = (end_to_end - span.SegmentSum()) * 1e6;
  std::string query =
      "{\"name\":\"a" + std::to_string(AppOf(span.key)) + ".c" +
      std::to_string(ClassOf(span.key)) +
      "\",\"cat\":\"query\",\"ph\":\"X\",\"ts\":" + JsonNumber(start * 1e6) +
      ",\"dur\":" + JsonNumber(end_to_end * 1e6) + pid_tid +
      ",\"args\":{\"seq\":" + std::to_string(span.seq) +
      ",\"id\":" + std::to_string(span.id) +
      ",\"replica\":" + std::to_string(span.replica_id) +
      ",\"residual_us\":" + JsonNumber(residual_us) +
      ",\"page_accesses\":" + std::to_string(span.page_accesses) +
      ",\"buffer_misses\":" + std::to_string(span.buffer_misses) +
      ",\"io_requests\":" + std::to_string(span.io_requests) + "}}";
  EmitEvent(query);

  // Segments tile the query slice in pipeline order, so they render as
  // nested children of the query slice on the same lane.
  double cursor = start;
  for (SpanSegment seg : kPipelineOrder) {
    const double seconds = span.seconds[static_cast<size_t>(seg)];
    if (seconds <= 0) continue;
    EmitEvent("{\"name\":\"" + std::string(SpanSegmentName(seg)) +
              "\",\"cat\":\"segment\",\"ph\":\"X\",\"ts\":" +
              JsonNumber(cursor * 1e6) + ",\"dur\":" +
              JsonNumber(seconds * 1e6) + pid_tid + "}");
    cursor += seconds;
  }
}

void SpanTracer::RecordPhase(const char* phase, uint32_t app, double now) {
  if (!exporting() || closed_) return;
  EnsureProcessTrack(kControllerPid, "controller");
  auto it = phase_tids_.find(phase);
  if (it == phase_tids_.end()) {
    const int tid = static_cast<int>(phase_tids_.size()) + 1;
    it = phase_tids_.emplace(phase, tid).first;
    EmitEvent("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
              std::to_string(kControllerPid) +
              ",\"tid\":" + std::to_string(tid) +
              ",\"args\":{\"name\":\"phase-" + JsonEscape(phase) + "\"}}");
  }
  EmitEvent("{\"name\":\"" + JsonEscape(phase) +
            "\",\"cat\":\"phase\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" +
            JsonNumber(now * 1e6) + ",\"pid\":" +
            std::to_string(kControllerPid) +
            ",\"tid\":" + std::to_string(it->second) +
            ",\"args\":{\"app\":" + std::to_string(app) + "}}");
}

std::string SpanTracer::WaitProfileJson(uint32_t app) const {
  std::string out = "[";
  bool first_class = true;
  for (const auto& [key, agg] : aggregates_) {
    if (AppOf(key) != app) continue;
    if (!first_class) out += ",";
    first_class = false;
    out += "{\"app\":" + std::to_string(AppOf(key)) +
           ",\"cls\":" + std::to_string(ClassOf(key)) +
           ",\"sampled\":" + std::to_string(agg.sampled) +
           ",\"end_to_end\":" + HistogramSummaryJson(*agg.end_to_end) +
           ",\"segments\":[";
    bool first_seg = true;
    for (SpanSegment seg : kPipelineOrder) {
      const LatencyHistogram& h = *agg.segments[static_cast<size_t>(seg)];
      if (h.count() == 0) continue;
      if (!first_seg) out += ",";
      first_seg = false;
      out += "{\"seg\":\"" + std::string(SpanSegmentName(seg)) +
             "\"," + HistogramSummaryJson(h).substr(1);
    }
    out += "]}";
  }
  out += "]";
  return out;
}

}  // namespace fglb
