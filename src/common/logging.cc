#include "common/logging.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>

namespace fglb {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

void VLog(const char* prefix, const char* format, va_list args) {
  std::fprintf(stderr, "[fglb %s] ", prefix);
  std::vfprintf(stderr, format, args);
  std::fputc('\n', stderr);
}

}  // namespace

void SetGlobalLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel GlobalLogLevel() { return g_level.load(std::memory_order_relaxed); }

bool ParseLogLevel(const std::string& text, LogLevel* out) {
  if (text == "quiet") *out = LogLevel::kQuiet;
  else if (text == "info") *out = LogLevel::kInfo;
  else if (text == "debug") *out = LogLevel::kDebug;
  else return false;
  return true;
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kQuiet: return "quiet";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
  }
  return "info";
}

void LogError(const char* format, ...) {
  va_list args;
  va_start(args, format);
  VLog("error", format, args);
  va_end(args);
}

void LogInfo(const char* format, ...) {
  if (GlobalLogLevel() < LogLevel::kInfo) return;
  va_list args;
  va_start(args, format);
  VLog("info", format, args);
  va_end(args);
}

void LogDebug(const char* format, ...) {
  if (GlobalLogLevel() < LogLevel::kDebug) return;
  va_list args;
  va_start(args, format);
  VLog("debug", format, args);
  va_end(args);
}

}  // namespace fglb
