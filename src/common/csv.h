#ifndef FGLB_COMMON_CSV_H_
#define FGLB_COMMON_CSV_H_

#include <string>
#include <string_view>

namespace fglb {

// RFC 4180 field quoting, shared by every CSV writer in the tree:
// fields containing a comma, double quote, CR or LF are wrapped in
// double quotes with embedded quotes doubled; anything else passes
// through unchanged. Newlines are preserved inside the quotes (a
// compliant reader reassembles them), never silently rewritten.
std::string CsvQuote(std::string_view field);

}  // namespace fglb

#endif  // FGLB_COMMON_CSV_H_
