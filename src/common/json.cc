#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace fglb {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

double JsonValue::NumberOr(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->kind == Kind::kNumber) ? v->number : fallback;
}

std::string JsonValue::StringOr(const std::string& key,
                                const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->kind == Kind::kString) ? v->string : fallback;
}

bool JsonValue::BoolOr(const std::string& key, bool fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->kind == Kind::kBool) ? v->boolean : fallback;
}

std::string JsonValue::Dump() const {
  switch (kind) {
    case Kind::kNull: return "null";
    case Kind::kBool: return boolean ? "true" : "false";
    case Kind::kNumber: return JsonNumber(number);
    case Kind::kString: return "\"" + JsonEscape(string) + "\"";
    case Kind::kArray: {
      std::string out = "[";
      for (size_t i = 0; i < array.size(); ++i) {
        if (i > 0) out += ',';
        out += array[i].Dump();
      }
      return out + "]";
    }
    case Kind::kObject: {
      std::string out = "{";
      bool first = true;
      for (const auto& [key, value] : object) {
        if (!first) out += ',';
        first = false;
        out += "\"" + JsonEscape(key) + "\":" + value.Dump();
      }
      return out + "}";
    }
  }
  return "null";
}

namespace {

// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipSpace();
    if (!ParseValue(out)) return false;
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  bool Fail(const std::string& what) {
    if (error_ != nullptr) {
      *error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    if (Literal("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return true;
    }
    if (Literal("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return true;
    }
    if (Literal("null")) {
      out->kind = JsonValue::Kind::kNull;
      return true;
    }
    return ParseNumber(out);
  }

  bool ParseNumber(JsonValue* out) {
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin) return Fail("invalid value");
    pos_ += static_cast<size_t>(end - begin);
    out->kind = JsonValue::Kind::kNumber;
    out->number = value;
    return true;
  }

  void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool ParseString(std::string* out) {
    out->clear();
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return Fail("bad escape");
        const char esc = text_[pos_ + 1];
        pos_ += 2;
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
            uint32_t cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<size_t>(i)];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<uint32_t>(h - '0');
              else if (h >= 'a' && h <= 'f')
                cp |= static_cast<uint32_t>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                cp |= static_cast<uint32_t>(h - 'A' + 10);
              else
                return Fail("bad \\u escape");
            }
            pos_ += 4;
            AppendUtf8(cp, out);
            break;
          }
          default: return Fail("bad escape");
        }
        continue;
      }
      out->push_back(c);
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue element;
      SkipSpace();
      if (!ParseValue(&element)) return false;
      out->array.push_back(std::move(element));
      SkipSpace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      ++pos_;
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace(std::move(key), std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string* error_;
};

}  // namespace

bool JsonValue::Parse(std::string_view text, JsonValue* out,
                      std::string* error) {
  *out = JsonValue();
  Parser parser(text, error);
  return parser.Parse(out);
}

}  // namespace fglb
