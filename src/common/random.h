#ifndef FGLB_COMMON_RANDOM_H_
#define FGLB_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fglb {

// Deterministic, seedable pseudo-random number generator
// (xoshiro256** by Blackman & Vigna). All stochastic behaviour in the
// simulator flows through instances of this class so that every
// experiment is reproducible from its seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  // Raw 64 random bits.
  uint64_t Next();

  // Uniform integer in [0, n). Requires n > 0.
  uint64_t NextUint64(uint64_t n);

  // Uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  // Exponentially distributed double with the given mean (> 0).
  double Exponential(double mean);

  // Normally distributed double (Box-Muller).
  double Normal(double mean, double stddev);

  // Bernoulli trial: true with probability p.
  bool Bernoulli(double p);

  // Binomial(n, p): number of successes in n trials. O(n*p + 1) via
  // geometric gaps between successes, so drawing "how many of a
  // million thinking clients wake this batch" does not cost a million
  // Bernoulli draws.
  uint64_t Binomial(uint64_t n, double p);

  // Samples an index in [0, weights.size()) proportionally to weights.
  // Requires a non-empty vector with a positive total weight.
  size_t Discrete(const std::vector<double>& weights);

 private:
  uint64_t s_[4];
};

// Zipf(theta) sampler over the domain [0, n). Uses Hormann's
// rejection-inversion method so sampling is O(1) regardless of n,
// which matters for multi-gigabyte table footprints (millions of
// pages). theta = 0 degenerates to uniform; theta around 0.8-1.2
// models typical hot/cold database page popularity.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double theta_;
  double h_integral_x1_;
  double h_integral_num_elements_;
  double s_;
};

// Scrambles a Zipf rank into a page id within [0, n) so that hot pages
// are spread across the table instead of clustered at its start.
// Bijective for any n (cycle-walking on a mixed 64-bit permutation).
uint64_t ScrambleToDomain(uint64_t value, uint64_t n);

}  // namespace fglb

#endif  // FGLB_COMMON_RANDOM_H_
