#ifndef FGLB_COMMON_JSON_H_
#define FGLB_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace fglb {

// Minimal JSON support for the observability subsystem: the trace log
// and metrics registry *emit* JSON, and the tracecat inspector plus the
// round-trip tests *parse* it back. No external dependency, no DOM
// beyond what those consumers need.

// Escapes `text` for embedding inside a JSON string literal (quotes not
// included).
std::string JsonEscape(std::string_view text);

// Formats a double as a JSON number ("%.17g" would be lossless but
// noisy; %.12g round-trips every value we emit). Non-finite values have
// no JSON representation and render as 0.
std::string JsonNumber(double value);

// A parsed JSON value. Numbers are kept as doubles (every quantity we
// trace fits a double exactly or is itself a double).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  // Object field access; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  // Convenience getters with defaults (wrong-kind access = default).
  double NumberOr(const std::string& key, double fallback) const;
  std::string StringOr(const std::string& key,
                       const std::string& fallback) const;
  bool BoolOr(const std::string& key, bool fallback) const;

  // Re-serializes the value (keys in map order; used by the inspector's
  // pretty printer, not guaranteed byte-identical to the input).
  std::string Dump() const;

  // Parses exactly one JSON document from `text` (trailing whitespace
  // allowed, trailing garbage is an error). Returns false with a
  // position-annotated message in *error.
  static bool Parse(std::string_view text, JsonValue* out,
                    std::string* error);
};

}  // namespace fglb

#endif  // FGLB_COMMON_JSON_H_
