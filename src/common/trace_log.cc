#include "common/trace_log.h"

#include "common/json.h"

namespace fglb {

TraceEvent::TraceEvent(std::string_view phase) {
  fields_.reserve(160);
  Str("phase", phase);
}

TraceEvent& TraceEvent::Str(std::string_view key, std::string_view value) {
  fields_ += ",\"";
  fields_ += JsonEscape(key);
  fields_ += "\":\"";
  fields_ += JsonEscape(value);
  fields_ += '"';
  return *this;
}

TraceEvent& TraceEvent::Num(std::string_view key, double value) {
  fields_ += ",\"";
  fields_ += JsonEscape(key);
  fields_ += "\":";
  fields_ += JsonNumber(value);
  return *this;
}

TraceEvent& TraceEvent::Int(std::string_view key, int64_t value) {
  fields_ += ",\"";
  fields_ += JsonEscape(key);
  fields_ += "\":";
  fields_ += std::to_string(value);
  return *this;
}

TraceEvent& TraceEvent::Uint(std::string_view key, uint64_t value) {
  fields_ += ",\"";
  fields_ += JsonEscape(key);
  fields_ += "\":";
  fields_ += std::to_string(value);
  return *this;
}

TraceEvent& TraceEvent::Bool(std::string_view key, bool value) {
  fields_ += ",\"";
  fields_ += JsonEscape(key);
  fields_ += "\":";
  fields_ += value ? "true" : "false";
  return *this;
}

TraceEvent& TraceEvent::Raw(std::string_view key, std::string_view json) {
  fields_ += ",\"";
  fields_ += JsonEscape(key);
  fields_ += "\":";
  fields_ += json;
  return *this;
}

TraceLog::~TraceLog() { Close(); }

bool TraceLog::OpenFile(const std::string& path, std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    if (error != nullptr) *error = "cannot open trace file " + path;
    enabled_ = buffering_;
    return false;
  }
  enabled_ = true;
  opened_at_ = std::chrono::steady_clock::now();
  return true;
}

void TraceLog::EnableBuffering() {
  std::lock_guard<std::mutex> lock(mu_);
  buffering_ = true;
  enabled_ = true;
  opened_at_ = std::chrono::steady_clock::now();
}

void TraceLog::Emit(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return;
  const uint64_t mono_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - opened_at_)
          .count());
  std::string line = "{\"v\":" + std::to_string(kSchemaVersion) +
                     ",\"seq\":" + std::to_string(next_seq_++) +
                     ",\"mono_us\":" + std::to_string(mono_us) +
                     event.fields_ + "}";
  if (buffering_) buffer_.push_back(line);
  if (file_ != nullptr) {
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), file_);
  }
}

void TraceLog::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fflush(file_);
}

void TraceLog::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  if (!buffering_) enabled_ = false;
}

uint64_t TraceLog::events_emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

std::vector<std::string> TraceLog::BufferedLines() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buffer_;
}

}  // namespace fglb
