#include "common/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>

namespace fglb {

Histogram::Histogram(double min_value, double growth, int num_buckets)
    : min_value_(min_value),
      growth_(growth),
      buckets_(static_cast<size_t>(num_buckets) + 1, 0) {
  assert(min_value > 0);
  assert(growth > 1.0);
  assert(num_buckets > 0);
}

double Histogram::BucketLowerBound(size_t index) const {
  if (index == 0) return 0.0;
  return min_value_ * std::pow(growth_, static_cast<double>(index - 1));
}

size_t Histogram::BucketFor(double value) const {
  if (value < min_value_) return 0;
  const size_t index =
      1 + static_cast<size_t>(std::log(value / min_value_) /
                              std::log(growth_));
  return std::min(index, buckets_.size() - 1);
}

void Histogram::Add(double value) {
  value = std::max(value, 0.0);
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[BucketFor(value)];
}

void Histogram::Merge(const Histogram& other) {
  assert(buckets_.size() == other.buckets_.size());
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

double Histogram::Percentile(double p) const {
  assert(p >= 0.0 && p <= 100.0);
  if (count_ == 0) return 0.0;
  const double target = p / 100.0 * static_cast<double>(count_);
  int64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (static_cast<double>(cumulative) >= target) {
      const double lo = std::max(BucketLowerBound(i), min_);
      const double hi =
          i + 1 < buckets_.size() ? std::min(BucketLowerBound(i + 1), max_)
                                  : max_;
      if (buckets_[i] == 0) return lo;
      const double within =
          (target - static_cast<double>(cumulative - buckets_[i])) /
          static_cast<double>(buckets_[i]);
      return lo + std::clamp(within, 0.0, 1.0) * (hi - lo);
    }
  }
  return max_;
}

std::string Histogram::ToString() const {
  std::string out;
  char line[128];
  std::snprintf(line, sizeof(line), "count=%lld mean=%.6g min=%.6g max=%.6g\n",
                static_cast<long long>(count_), mean(), min(), max());
  out += line;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    std::snprintf(line, sizeof(line), "[%10.4g, %10.4g) %lld\n",
                  BucketLowerBound(i),
                  i + 1 < buckets_.size()
                      ? BucketLowerBound(i + 1)
                      : std::numeric_limits<double>::infinity(),
                  static_cast<long long>(buckets_[i]));
    out += line;
  }
  return out;
}

}  // namespace fglb
