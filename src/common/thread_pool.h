#ifndef FGLB_COMMON_THREAD_POOL_H_
#define FGLB_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/metrics_registry.h"

namespace fglb {

// Small fixed-size worker pool for fan-out/join work on the analysis
// path (parallel per-class MRC recomputation). The calling thread
// always participates in ParallelFor, so a pool sized 1 spawns no
// workers at all and executes everything inline — serial
// configurations pay nothing for the abstraction.
class ThreadPool {
 public:
  // `threads` is the total concurrency including the calling thread;
  // 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Threads able to make progress concurrently (workers + caller).
  size_t thread_count() const { return workers_.size() + 1; }

  // Registers "<prefix>queue_depth" / "<prefix>tasks_executed" in
  // `registry` and keeps them current. Call before submitting work; a
  // null registry unbinds.
  void BindMetrics(MetricsRegistry* registry, const std::string& prefix);

  // Schedules `fn` on a worker and returns a future for its result.
  // With no workers the task runs inline before Submit returns.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    if (workers_.empty()) {
      (*task)();
      if (tasks_executed_ != nullptr) tasks_executed_->Increment();
    } else {
      Enqueue([task] { (*task)(); });
    }
    return result;
  }

  // Runs fn(0) .. fn(n-1), returning only when every call finished.
  // Indices are claimed dynamically by the caller and up to n-1
  // workers; fn must not throw. Each index is executed exactly once,
  // so writes keyed by index make the result independent of the
  // execution interleaving.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
  // Written under mu_ (depth) or with relaxed atomics (executed).
  Gauge* queue_depth_ = nullptr;
  Counter* tasks_executed_ = nullptr;
};

}  // namespace fglb

#endif  // FGLB_COMMON_THREAD_POOL_H_
