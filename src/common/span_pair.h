#ifndef FGLB_COMMON_SPAN_PAIR_H_
#define FGLB_COMMON_SPAN_PAIR_H_

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace fglb {

// A logically contiguous, physically two-piece read-only view: the
// natural zero-copy snapshot of a wrapped ring buffer. Consumers that
// only iterate (e.g. a Mattson stack replay) read the pieces back to
// back and never pay the per-call copy that materializing a vector
// would cost. Views borrow the underlying storage: they stay valid
// only until the owner mutates it.
template <typename T>
struct SpanPair {
  std::span<const T> first;
  std::span<const T> second;

  SpanPair() = default;
  SpanPair(std::span<const T> f, std::span<const T> s = {})
      : first(f), second(s) {}

  size_t size() const { return first.size() + second.size(); }
  bool empty() const { return first.empty() && second.empty(); }

  // Element i in logical order (0 = oldest).
  const T& operator[](size_t i) const {
    assert(i < size());
    return i < first.size() ? first[i] : second[i - first.size()];
  }

  // The last `n` elements (the whole view when n >= size()).
  SpanPair Suffix(size_t n) const {
    if (n >= size()) return *this;
    const size_t drop = size() - n;
    if (drop >= first.size()) {
      return SpanPair(second.subspan(drop - first.size()));
    }
    return SpanPair(first.subspan(drop), second);
  }

  // Visits every element in logical order.
  template <typename F>
  void ForEach(F&& f) const {
    for (const T& v : first) f(v);
    for (const T& v : second) f(v);
  }

  // Materializes a contiguous copy (for callers that need one).
  std::vector<T> ToVector() const {
    std::vector<T> out;
    out.reserve(size());
    out.insert(out.end(), first.begin(), first.end());
    out.insert(out.end(), second.begin(), second.end());
    return out;
  }
};

}  // namespace fglb

#endif  // FGLB_COMMON_SPAN_PAIR_H_
