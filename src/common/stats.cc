#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fglb {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Reset() { *this = RunningStat(); }

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const int64_t total = count_ + other.count_;
  m2_ += other.m2_ + delta * delta *
                         (static_cast<double>(count_) * other.count_ / total);
  mean_ += delta * other.count_ / static_cast<double>(total);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = total;
}

double RunningStat::variance() const {
  return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double Quantile(std::vector<double> values, double q) {
  assert(!values.empty());
  assert(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

QuartileSummary Quartiles(const std::vector<double>& values) {
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  auto at = [&sorted](double q) {
    if (sorted.size() == 1) return sorted[0];
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  };
  QuartileSummary s;
  s.q1 = at(0.25);
  s.median = at(0.5);
  s.q3 = at(0.75);
  s.iqr = s.q3 - s.q1;
  return s;
}

}  // namespace fglb
