#ifndef FGLB_COMMON_RING_WINDOW_H_
#define FGLB_COMMON_RING_WINDOW_H_

#include <cassert>
#include <cstddef>
#include <vector>

namespace fglb {

// Fixed-capacity sliding window over the most recent values pushed.
// The paper keeps "a window of the most recent page accesses issued by
// the DBMS on behalf of the queries belonging to each specific query
// class"; this is that window. Oldest entries are overwritten once the
// window is full.
template <typename T>
class RingWindow {
 public:
  explicit RingWindow(size_t capacity) : buffer_(capacity) {
    assert(capacity > 0);
  }

  void Push(const T& value) {
    buffer_[head_] = value;
    head_ = (head_ + 1) % buffer_.size();
    if (size_ < buffer_.size()) ++size_;
  }

  size_t size() const { return size_; }
  size_t capacity() const { return buffer_.size(); }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == buffer_.size(); }

  // Element i of the window in arrival order: 0 is the oldest retained
  // value, size() - 1 the newest.
  const T& operator[](size_t i) const {
    assert(i < size_);
    const size_t start = (head_ + buffer_.size() - size_) % buffer_.size();
    return buffer_[(start + i) % buffer_.size()];
  }

  // Copies the window contents (oldest first) into a vector.
  std::vector<T> ToVector() const {
    std::vector<T> out;
    out.reserve(size_);
    for (size_t i = 0; i < size_; ++i) out.push_back((*this)[i]);
    return out;
  }

  void Clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> buffer_;
  size_t head_ = 0;
  size_t size_ = 0;
};

}  // namespace fglb

#endif  // FGLB_COMMON_RING_WINDOW_H_
