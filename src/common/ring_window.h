#ifndef FGLB_COMMON_RING_WINDOW_H_
#define FGLB_COMMON_RING_WINDOW_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

#include "common/span_pair.h"

namespace fglb {

// Fixed-capacity sliding window over the most recent values pushed.
// The paper keeps "a window of the most recent page accesses issued by
// the DBMS on behalf of the queries belonging to each specific query
// class"; this is that window. Oldest entries are overwritten once the
// window is full.
template <typename T>
class RingWindow {
 public:
  explicit RingWindow(size_t capacity) : buffer_(capacity) {
    assert(capacity > 0);
  }

  void Push(const T& value) {
    buffer_[head_] = value;
    head_ = (head_ + 1) % buffer_.size();
    if (size_ < buffer_.size()) ++size_;
  }

  size_t size() const { return size_; }
  size_t capacity() const { return buffer_.size(); }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == buffer_.size(); }

  // Element i of the window in arrival order: 0 is the oldest retained
  // value, size() - 1 the newest.
  const T& operator[](size_t i) const {
    assert(i < size_);
    const size_t start = (head_ + buffer_.size() - size_) % buffer_.size();
    return buffer_[(start + i) % buffer_.size()];
  }

  // Zero-copy wrap-aware snapshot of the window contents, oldest
  // first: one span when the live region is contiguous, two when it
  // wraps past the end of the buffer. Valid until the next Push or
  // Clear.
  SpanPair<T> AsSpans() const {
    if (size_ == 0) return {};
    const size_t start = (head_ + buffer_.size() - size_) % buffer_.size();
    const size_t first_len = std::min(size_, buffer_.size() - start);
    return SpanPair<T>(
        std::span<const T>(buffer_.data() + start, first_len),
        std::span<const T>(buffer_.data(), size_ - first_len));
  }

  // Copies the window contents (oldest first) into a vector.
  std::vector<T> ToVector() const { return AsSpans().ToVector(); }

  void Clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> buffer_;
  size_t head_ = 0;
  size_t size_ = 0;
};

}  // namespace fglb

#endif  // FGLB_COMMON_RING_WINDOW_H_
