#ifndef FGLB_COMMON_SPAN_TRACER_H_
#define FGLB_COMMON_SPAN_TRACER_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics_registry.h"

namespace fglb {

// Sampled per-query span tracing: where did each query's latency go?
//
// The cluster's diagnosis pipeline infers *which resource* made a class
// an outlier from interval-aggregated statistics; the span tracer
// measures it directly. Every 1-in-N query (deterministic, by submit
// sequence) gets a pooled QuerySpan that the scheduler and replica
// stamp with sim-time segments as the query moves through its
// lifecycle: admission/pick, disk-channel wait + service, CPU run-queue
// wait + service, commit lock wait, commit hold — or the shed /
// no-capacity fast-fail paths. Segment boundaries fall out of the
// queueing stations' existing completion callbacks (the sojourn minus
// the known service time is the wait), so tracing schedules no events
// of its own and every segment is a pure function of simulated time —
// a replayed capture reproduces span output byte for byte.
//
// Finished spans aggregate into per-(app, class) wait profiles
// (power-of-two latency histograms per segment kind, living in the
// bound MetricsRegistry) that the controller attaches to phase=impact
// trace events, and optionally stream to a Chrome trace_event /
// Perfetto-compatible JSON file (--spans-out): one process track per
// replica, one thread track per controller phase, nested slices per
// segment — loadable as-is in ui.perfetto.dev.
//
// When no tracer is installed the whole layer is a null-check per
// submit/stage; bench_overhead's enabled/disabled gate (< 1.02) covers
// the compiled-in-but-disabled configuration.

class SpanTracer;

// Lifecycle segments of one query, in pipeline order. kShed/kPenalty
// are terminal fast-fail pseudo-segments (a span carries either the
// replica pipeline or one of those, never both).
enum class SpanSegment : uint8_t {
  kAdmission = 0,  // submit -> replica pickup (admission + scheduler pick)
  kIoWait,         // disk-channel queueing ahead of this query's I/O
  kIoService,      // buffer-pool-miss disk I/O service time
  kCpuWait,        // run-queue wait on the server's cores
  kCpuService,     // CPU service time
  kLockWait,       // commit stripe-lock wait
  kCommitHold,     // commit critical section under the locks
  kShed,           // admission fast-fail error round-trip
  kPenalty,        // no-capacity penalty latency
  kCount
};

constexpr size_t kSpanSegmentCount = static_cast<size_t>(SpanSegment::kCount);

const char* SpanSegmentName(SpanSegment segment);

// Sampling knobs; the canonical string form (same k=v grammar family
// as AdmissionConfig/FaultSpec) travels in the FGLBCAP1 info block so
// a replayed capture samples the identical queries.
struct SpanConfig {
  // Deterministic 1-in-N sampling by global submit sequence; 1 = every
  // query.
  uint64_t sample_every = 64;

  std::string ToString() const;  // "sample=64"
  static bool Parse(const std::string& text, SpanConfig* config,
                    std::string* error);
};

// One sampled query's recorder. Pool-allocated by the tracer; the
// scheduler threads the pointer through QueryInstance into the
// replica's per-query control block. All mutators are inline adds —
// the hot path never reaches back into the tracer until the span ends.
struct QuerySpan {
  SpanTracer* owner = nullptr;
  uint64_t id = 0;        // dense sample ordinal
  uint64_t seq = 0;       // global submit sequence that sampled it
  uint64_t key = 0;       // ClassKey: (app << 32) | class
  double start = 0;       // submit sim-time, seconds
  int replica_id = -1;    // -1 until a replica picks it up
  double seconds[kSpanSegmentCount] = {};
  // Engine-side attribution for the exported slice args.
  uint64_t page_accesses = 0;
  uint64_t buffer_misses = 0;
  uint64_t io_requests = 0;
  QuerySpan* next_free = nullptr;

  void Add(SpanSegment segment, double s) {
    seconds[static_cast<size_t>(segment)] += s;
  }
  // Splits a queueing station's sojourn into wait + service using the
  // service demand the caller submitted.
  void AddSojourn(SpanSegment wait, SpanSegment service, double sojourn,
                  double service_seconds) {
    const double queued = sojourn - service_seconds;
    Add(wait, queued > 0 ? queued : 0.0);
    Add(service, service_seconds);
  }
  // Replica pickup: stamps the admission/pick segment and the replica
  // track, plus the engine's per-access counters for the export args.
  void NoteExecution(double now, int replica, uint64_t accesses,
                     uint64_t misses, uint64_t ios) {
    replica_id = replica;
    Add(SpanSegment::kAdmission, now - start);
    page_accesses = accesses;
    buffer_misses = misses;
    io_requests = ios;
  }
  double SegmentSum() const {
    double total = 0;
    for (double s : seconds) total += s;
    return total;
  }
};

class SpanTracer {
 public:
  explicit SpanTracer(const SpanConfig& config = {});
  SpanTracer(const SpanTracer&) = delete;
  SpanTracer& operator=(const SpanTracer&) = delete;
  ~SpanTracer();

  const SpanConfig& config() const { return config_; }

  // Aggregate wait-profile histograms into `registry` under
  // "span.a<app>.c<class>.<segment>" (else into tracer-owned
  // histograms, so WaitProfileJson works either way). Call before the
  // first Begin.
  void BindMetrics(MetricsRegistry* registry) { metrics_ = registry; }

  // Streams Chrome trace_event JSON to `path` (truncates). Returns
  // false with a message in *error on open failure.
  bool OpenFile(const std::string& path, std::string* error);
  // Collects the export in memory instead (tests; BufferedJson()).
  void EnableBuffering();
  bool exporting() const { return file_ != nullptr || buffering_; }

  // Finalizes the JSON document (file mode: writes "]" and closes).
  void Close();
  // The complete buffered document, including the closing bracket.
  std::string BufferedJson() const;

  // Counts one submitted query; returns a pooled span for the 1-in-N
  // sampled ones, null otherwise.
  QuerySpan* Begin(uint32_t app, uint32_t cls, double now);

  // Ends a span that ran the replica pipeline: aggregates its wait
  // profile, exports its slices, recycles it. `now` is completion time.
  void EndSpan(QuerySpan* span, double now);

  // Ends a fast-fail span (shed / no-capacity penalty) whose whole
  // latency is the single `segment` of known `duration` seconds.
  void EndImmediate(QuerySpan* span, SpanSegment segment, double duration);

  // Marks one controller phase occurrence (sla/impact/iqr/mrc/action)
  // on the controller track — an instant event at sim-time `now`.
  void RecordPhase(const char* phase, uint32_t app, double now);

  // Per-class measured latency breakdown for `app`, as a JSON array
  // (attached to phase=impact trace events):
  //   [{"app":2,"cls":5,"sampled":12,"end_to_end":{...},
  //     "segments":[{"seg":"cpu_service","count":..,"mean_us":..,
  //                  "p95_us":..},...]},...]
  // Deterministic: every value derives from simulated time.
  std::string WaitProfileJson(uint32_t app) const;

  uint64_t sequence() const { return sequence_; }
  uint64_t sampled() const { return sampled_; }
  uint64_t finished() const { return finished_; }

  // Test hook: observes every finished span (after segments are final)
  // with its measured end-to-end latency in seconds.
  void SetFinishObserver(
      std::function<void(const QuerySpan&, double end_to_end)> observer) {
    observer_ = std::move(observer);
  }

 private:
  struct ClassAggregate {
    uint64_t sampled = 0;
    LatencyHistogram* end_to_end = nullptr;
    LatencyHistogram* segments[kSpanSegmentCount] = {};
    // Backing storage when no MetricsRegistry is bound.
    std::vector<std::unique_ptr<LatencyHistogram>> owned;
  };

  QuerySpan* AllocateSpan();
  void ReleaseSpan(QuerySpan* span);
  ClassAggregate& AggregateFor(uint64_t key);
  void Aggregate(const QuerySpan& span, double end_to_end);
  void ExportSpan(const QuerySpan& span, double end_to_end);
  void EmitEvent(const std::string& json);
  // First lane of `pid` free at `start`; lanes render stacked slices
  // in Perfetto, so overlapping spans of one replica get distinct tids.
  int LaneFor(int pid, double start, double end);
  void EnsureProcessTrack(int pid, const std::string& name);

  SpanConfig config_;
  MetricsRegistry* metrics_ = nullptr;

  uint64_t sequence_ = 0;
  uint64_t sampled_ = 0;
  uint64_t finished_ = 0;

  // Span pool: chunked storage + intrusive free list.
  std::vector<std::unique_ptr<QuerySpan[]>> chunks_;
  QuerySpan* free_list_ = nullptr;

  std::map<uint64_t, ClassAggregate> aggregates_;

  // Export state.
  std::FILE* file_ = nullptr;
  bool buffering_ = false;
  bool closed_ = false;
  bool any_event_ = false;
  std::string buffer_;
  std::map<int, std::vector<double>> lanes_;  // pid -> lane busy-until
  std::map<int, bool> track_named_;
  std::map<std::string, int> phase_tids_;

  std::function<void(const QuerySpan&, double)> observer_;
};

}  // namespace fglb

#endif  // FGLB_COMMON_SPAN_TRACER_H_
