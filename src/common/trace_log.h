#ifndef FGLB_COMMON_TRACE_LOG_H_
#define FGLB_COMMON_TRACE_LOG_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace fglb {

// One structured decision-trace event under construction: an ordered
// list of JSON fields appended behind the common header the TraceLog
// writes ("v", "seq", "mono_us"). Build one only behind a
// `trace->enabled()` check — the disabled path must not pay for field
// formatting.
class TraceEvent {
 public:
  explicit TraceEvent(std::string_view phase);

  TraceEvent& Str(std::string_view key, std::string_view value);
  TraceEvent& Num(std::string_view key, double value);
  TraceEvent& Int(std::string_view key, int64_t value);
  TraceEvent& Uint(std::string_view key, uint64_t value);
  TraceEvent& Bool(std::string_view key, bool value);
  // Pre-encoded JSON (arrays / nested objects); the caller guarantees
  // validity.
  TraceEvent& Raw(std::string_view key, std::string_view json);

 private:
  friend class TraceLog;
  std::string fields_;  // ,"key":value,"key":value...
};

// Append-only JSONL decision trace: one self-contained JSON object per
// line, schema version tagged ("v":1), sequence-numbered, stamped with
// a monotonic wall-clock offset since the trace opened. Disabled by
// default; `enabled()` is a plain bool so un-traced runs pay a single
// branch per would-be event. Emission is mutex-serialized, so events
// from worker threads interleave whole-line.
class TraceLog {
 public:
  static constexpr int kSchemaVersion = 1;

  TraceLog() = default;
  ~TraceLog();
  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  // Starts writing events to `path` (truncates). Returns false with a
  // message in *error on failure.
  bool OpenFile(const std::string& path, std::string* error);

  // Collects emitted lines in memory instead of a file (tests and the
  // in-process inspectors).
  void EnableBuffering();

  bool enabled() const { return enabled_; }

  // Appends the event as one line. No-op when disabled.
  void Emit(const TraceEvent& event);

  void Flush();
  void Close();  // flushes and disables

  uint64_t events_emitted() const;

  // Buffered lines (EnableBuffering mode); empty in file mode.
  std::vector<std::string> BufferedLines() const;

 private:
  mutable std::mutex mu_;
  bool enabled_ = false;
  std::FILE* file_ = nullptr;
  bool buffering_ = false;
  std::vector<std::string> buffer_;
  uint64_t next_seq_ = 0;
  std::chrono::steady_clock::time_point opened_at_;
};

}  // namespace fglb

#endif  // FGLB_COMMON_TRACE_LOG_H_
