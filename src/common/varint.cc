#include "common/varint.h"

#include <cstring>

namespace fglb {

void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>(0x80 | (v & 0x7F)));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

size_t GetVarint64(const uint8_t* p, const uint8_t* limit, uint64_t* v) {
  uint64_t result = 0;
  for (size_t shift = 0, i = 0; shift <= 63 && p + i < limit; ++i,
              shift += 7) {
    const uint8_t byte = p[i];
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return i + 1;
    }
  }
  return 0;  // truncated or over-long
}

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  dst->append(buf, sizeof(buf));
}

void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  dst->append(buf, sizeof(buf));
}

bool GetFixed32(const uint8_t* p, const uint8_t* limit, uint32_t* v) {
  if (limit - p < 4) return false;
  uint32_t result = 0;
  for (int i = 0; i < 4; ++i) result |= static_cast<uint32_t>(p[i]) << (8 * i);
  *v = result;
  return true;
}

bool GetFixed64(const uint8_t* p, const uint8_t* limit, uint64_t* v) {
  if (limit - p < 8) return false;
  uint64_t result = 0;
  for (int i = 0; i < 8; ++i) result |= static_cast<uint64_t>(p[i]) << (8 * i);
  *v = result;
  return true;
}

uint64_t DoubleToBits(double d) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

namespace {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  static const Crc32Table table;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table.entries[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace fglb
