#ifndef FGLB_COMMON_STATS_H_
#define FGLB_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fglb {

// Online mean/variance accumulator (Welford). Used for per-interval
// metric averages feeding stable-state signatures.
class RunningStat {
 public:
  void Add(double x);
  void Reset();
  // Merges another accumulator into this one (parallel Welford).
  void Merge(const RunningStat& other);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double sum() const { return count_ > 0 ? mean_ * count_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

 private:
  int64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// Quartile summary of a sample, the input to IQR outlier fencing.
struct QuartileSummary {
  double q1 = 0;      // first quartile
  double median = 0;  // second quartile
  double q3 = 0;      // third quartile
  double iqr = 0;     // q3 - q1
};

// Linear-interpolation quantile (type 7, the R/NumPy default) of an
// unsorted sample. q must be in [0, 1]; the sample must be non-empty.
double Quantile(std::vector<double> values, double q);

// Computes Q1/median/Q3/IQR of a non-empty sample.
QuartileSummary Quartiles(const std::vector<double>& values);

}  // namespace fglb

#endif  // FGLB_COMMON_STATS_H_
