#ifndef FGLB_STORAGE_PAGE_H_
#define FGLB_STORAGE_PAGE_H_

#include <cstdint>

namespace fglb {

// Global page identifier. The high 16 bits name the table, the low 48
// bits the page offset within it, so page ids from different tables
// (and different applications' tables) never collide inside a shared
// buffer pool.
using PageId = uint64_t;

using TableId = uint16_t;

inline constexpr uint64_t kPageOffsetBits = 48;
inline constexpr uint64_t kPageOffsetMask = (1ULL << kPageOffsetBits) - 1;

constexpr PageId MakePageId(TableId table, uint64_t offset) {
  return (static_cast<uint64_t>(table) << kPageOffsetBits) |
         (offset & kPageOffsetMask);
}

constexpr TableId TableOf(PageId page) {
  return static_cast<TableId>(page >> kPageOffsetBits);
}

constexpr uint64_t OffsetOf(PageId page) { return page & kPageOffsetMask; }

// InnoDB-style page and extent geometry. 16 KiB pages; read-ahead
// operates on 64-page extents (1 MiB).
inline constexpr uint64_t kPageSizeBytes = 16 * 1024;
inline constexpr uint64_t kExtentPages = 64;

// Write-lock striping: exclusive commit locks are taken per 512-page
// stripe of a table, approximating row/page lock contention without
// tracking individual rows.
inline constexpr uint64_t kLockStripePages = 512;

constexpr PageId StripeOf(PageId page) {
  return MakePageId(TableOf(page), OffsetOf(page) / kLockStripePages);
}

constexpr uint64_t PagesForBytes(uint64_t bytes) {
  return (bytes + kPageSizeBytes - 1) / kPageSizeBytes;
}

// How a query touches a page. Sequential accesses are eligible for
// read-ahead; random accesses pay a full random I/O on a miss.
enum class AccessKind : uint8_t {
  kRandom = 0,
  kSequential = 1,
};

// One page reference in a query's access trace.
struct PageAccess {
  PageId page = 0;
  AccessKind kind = AccessKind::kRandom;
  bool is_write = false;
};

}  // namespace fglb

#endif  // FGLB_STORAGE_PAGE_H_
