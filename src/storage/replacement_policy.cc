#include "storage/replacement_policy.h"

namespace fglb {

const char* ReplacementPolicyName(ReplacementPolicy policy) {
  switch (policy) {
    case ReplacementPolicy::kLru:
      return "lru";
    case ReplacementPolicy::kClock:
      return "clock";
    case ReplacementPolicy::kArc:
      return "arc";
  }
  return "lru";
}

bool ParseReplacementPolicy(const std::string& text, ReplacementPolicy* out) {
  if (text == "lru") {
    *out = ReplacementPolicy::kLru;
  } else if (text == "clock") {
    *out = ReplacementPolicy::kClock;
  } else if (text == "arc") {
    *out = ReplacementPolicy::kArc;
  } else {
    return false;
  }
  return true;
}

}  // namespace fglb
