#ifndef FGLB_STORAGE_BUFFER_POOL_H_
#define FGLB_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "storage/page.h"

namespace fglb {

// Cumulative counters for one buffer pool (or pool partition).
struct BufferPoolStats {
  uint64_t accesses = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t prefetch_inserts = 0;

  double hit_ratio() const {
    return accesses > 0 ? static_cast<double>(hits) / accesses : 0.0;
  }
  double miss_ratio() const {
    return accesses > 0 ? static_cast<double>(misses) / accesses : 0.0;
  }
};

// LRU page cache modeling one InnoDB buffer pool (or one partition of
// it). Purely a containment simulator: it answers hit/miss and tracks
// counters; I/O timing for misses is the disk model's job.
class BufferPool {
 public:
  explicit BufferPool(uint64_t capacity_pages);

  // References `page`, promoting it to most-recently-used. Returns true
  // on a hit. On a miss the page is brought in, evicting the LRU page
  // if the pool is full.
  bool Access(PageId page);

  // Inserts a page without counting an access (read-ahead landing).
  // Returns true if the page was actually brought in; no-op returning
  // false if already resident (residency is refreshed to MRU by real
  // accesses only, matching InnoDB's treatment of prefetched pages).
  // A zero-capacity pool also returns false.
  bool Insert(PageId page);

  bool Contains(PageId page) const;

  // Shrinks or grows the pool, evicting LRU pages as needed. A zero
  // capacity pool misses every access and caches nothing.
  void Resize(uint64_t capacity_pages);

  // Drops all resident pages (counters are retained).
  void Clear();

  uint64_t capacity() const { return capacity_; }
  uint64_t resident_pages() const { return map_.size(); }
  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferPoolStats(); }

 private:
  void EvictIfNeeded();

  uint64_t capacity_;
  // Front = most recently used.
  std::list<PageId> lru_;
  std::unordered_map<PageId, std::list<PageId>::iterator> map_;
  BufferPoolStats stats_;
};

}  // namespace fglb

#endif  // FGLB_STORAGE_BUFFER_POOL_H_
