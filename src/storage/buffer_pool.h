#ifndef FGLB_STORAGE_BUFFER_POOL_H_
#define FGLB_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "storage/page.h"
#include "storage/page_cache.h"

namespace fglb {

// LRU page cache modeling one InnoDB buffer pool (or one partition of
// it). Purely a containment simulator: it answers hit/miss and tracks
// counters; I/O timing for misses is the disk model's job.
class BufferPool : public PageCache {
 public:
  explicit BufferPool(uint64_t capacity_pages);

  // References `page`, promoting it to most-recently-used. Returns true
  // on a hit. On a miss the page is brought in, evicting the LRU page
  // if the pool is full.
  bool Access(PageId page) override;

  // Inserts a page without counting an access (read-ahead landing).
  // Returns true if the page was actually brought in; no-op returning
  // false if already resident (residency is refreshed to MRU by real
  // accesses only, matching InnoDB's treatment of prefetched pages).
  // A zero-capacity pool also returns false.
  bool Insert(PageId page) override;

  bool Contains(PageId page) const override;

  bool Erase(PageId page) override;

  // Shrinks or grows the pool, evicting LRU pages as needed. A zero
  // capacity pool misses every access and caches nothing.
  void Resize(uint64_t capacity_pages) override;

  // Drops all resident pages (counters are retained).
  void Clear() override;

  uint64_t resident_pages() const override { return map_.size(); }

 private:
  void EvictIfNeeded();

  // Front = most recently used.
  std::list<PageId> lru_;
  std::unordered_map<PageId, std::list<PageId>::iterator> map_;
};

}  // namespace fglb

#endif  // FGLB_STORAGE_BUFFER_POOL_H_
