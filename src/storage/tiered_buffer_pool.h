#ifndef FGLB_STORAGE_TIERED_BUFFER_POOL_H_
#define FGLB_STORAGE_TIERED_BUFFER_POOL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/metrics_registry.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/partitioned_buffer_pool.h"

namespace fglb {

// Configuration of the SSD/NVM second-tier block cache that sits
// between the DRAM buffer pool and disk. The canonical string form
// (ToString/Parse, same k=v grammar family as AdmissionConfig and
// FaultSpec) travels inside the FGLBCAP1 info block so a replayed run
// rebuilds the exact same tier. An empty spec / zero pages means the
// tier is absent — the pre-tier behaviour.
struct TierConfig {
  // Total tier-2 capacity in pages; 0 disables the tier entirely.
  uint64_t pages = 0;
  // Service time of one tier-2 hit in microseconds (SSD random read).
  // Compare DiskModel's 2000us disk random read: a tier-2 hit is meant
  // to be an order of magnitude or two cheaper than a miss to disk.
  double read_us = 100.0;
  // Whether pages evicted from DRAM are demoted into the tier (the
  // write path that fills it). Off = the tier only drains; useful for
  // isolating the demote rung's effect in benchmarks.
  bool demote = true;

  bool enabled() const { return pages > 0; }

  // Canonical "pages=16384,read_us=100,demote=1" form ("" when the
  // tier is disabled); Parse accepts the keys ToString emits, in any
  // order, and rejects unknown keys.
  std::string ToString() const;
  static bool Parse(const std::string& text, TierConfig* config,
                    std::string* error);
};

// The second-tier block cache itself: per-class partitions with the
// same shared-region + dedicated-quota layout as the DRAM
// PartitionedBufferPool, filled by demote-on-DRAM-evict and drained by
// promote-on-tier-2-hit. Purely a containment simulator like the DRAM
// pools — the engine turns PromoteHit into SSD service time via
// HitServiceSeconds() instead of charging the disk model.
//
// Fault hooks model an SSD device failing (SetFailed: the tier serves
// nothing and comes back cold) or degrading (SetLatencyFactor: hits
// still land but cost more), driven by the injector's `tier` fault.
class TieredBufferPool {
 public:
  explicit TieredBufferPool(const TierConfig& config);
  TieredBufferPool(const TieredBufferPool&) = delete;
  TieredBufferPool& operator=(const TieredBufferPool&) = delete;

  // Creates (or resizes) the dedicated tier-2 partition for `key`.
  // Returns false if the combined quotas would exceed the tier size.
  bool SetQuota(PartitionKey key, uint64_t quota_pages);
  void DropQuota(PartitionKey key);
  uint64_t QuotaOf(PartitionKey key) const;  // 0 if no dedicated quota

  // Demote landing for a page evicted from `key`'s DRAM partition.
  // Lands in the key's dedicated tier-2 partition when one exists,
  // else the shared region; dropped outright while the tier is failed
  // or when demotion is configured off.
  void Demote(PartitionKey key, PageId page);

  // Tier-2 lookup on a DRAM miss. On a hit the page is *removed* from
  // the tier (it is being promoted back into DRAM by the caller) and
  // true is returned; the caller charges HitServiceSeconds() instead
  // of a disk read. Checks the dedicated partition first, then the
  // shared region (a page demoted before the class had a quota still
  // counts). Always a miss while the tier is failed.
  bool PromoteHit(PartitionKey key, PageId page);

  bool Contains(PartitionKey key, PageId page) const;

  // --- fault hooks ---
  // Failing the tier drops every resident page (recovery is cold).
  void SetFailed(bool failed);
  bool failed() const { return failed_; }
  void SetLatencyFactor(double factor) { latency_factor_ = factor; }
  double latency_factor() const { return latency_factor_; }

  // Cost of one tier-2 hit under the current degradation factor.
  double HitServiceSeconds() const {
    return config_.read_us * 1e-6 * latency_factor_;
  }

  const TierConfig& config() const { return config_; }
  uint64_t capacity() const { return config_.pages; }
  uint64_t dedicated_total() const { return dedicated_total_; }
  uint64_t resident_pages() const;
  uint64_t demotions() const { return demotions_; }
  uint64_t dropped_demotions() const { return dropped_demotions_; }
  uint64_t promotions() const { return promotions_; }
  uint64_t tier_misses() const { return tier_misses_; }

  // Publishes tier.* counters and gauges under `prefix` (cumulative;
  // per sampling interval, never per access).
  void PublishMetrics(MetricsRegistry* registry,
                      const std::string& prefix) const;

 private:
  BufferPool* PoolFor(PartitionKey key);
  const BufferPool* PoolFor(PartitionKey key) const;

  TierConfig config_;
  bool failed_ = false;
  double latency_factor_ = 1.0;
  uint64_t dedicated_total_ = 0;
  uint64_t demotions_ = 0;
  uint64_t dropped_demotions_ = 0;
  uint64_t promotions_ = 0;
  uint64_t tier_misses_ = 0;
  // Tier-2 partitions are always LRU: the tier is an admission queue
  // of DRAM cast-offs, not a policy under study.
  BufferPool shared_;
  std::map<PartitionKey, std::unique_ptr<BufferPool>> dedicated_;
};

}  // namespace fglb

#endif  // FGLB_STORAGE_TIERED_BUFFER_POOL_H_
