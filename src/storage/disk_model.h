#ifndef FGLB_STORAGE_DISK_MODEL_H_
#define FGLB_STORAGE_DISK_MODEL_H_

#include <cstdint>

namespace fglb {

// Timing model for one disk (or one Xen dom0 I/O channel). The queueing
// itself lives in a sim::QueueResource; this struct converts a query's
// miss/read-ahead counts into a service demand in seconds.
struct DiskModel {
  // One random 16 KiB page read (seek + rotation + transfer, amortized
  // over the controller cache / command queueing of a server-class
  // array).
  double random_read_seconds = 0.002;
  // One 64-page (1 MiB) sequential extent fetch issued by read-ahead.
  double extent_read_seconds = 0.006;
  // One page write (log + data, amortized by group commit).
  double page_write_seconds = 0.001;

  // Uniform slowdown applied to every demand — the fault injector's
  // disk-latency-spike knob (1.0 = healthy). Engines hold a pointer to
  // their server's DiskModel, so mutating this takes effect on the next
  // query admitted.
  double latency_multiplier = 1.0;

  // Service demand for a query that took `random_misses` random-read
  // misses, issued `readahead_requests` extent fetches and wrote
  // `page_writes` pages.
  double ServiceDemand(uint64_t random_misses, uint64_t readahead_requests,
                       uint64_t page_writes) const {
    return (static_cast<double>(random_misses) * random_read_seconds +
            static_cast<double>(readahead_requests) * extent_read_seconds +
            static_cast<double>(page_writes) * page_write_seconds) *
           latency_multiplier;
  }
};

}  // namespace fglb

#endif  // FGLB_STORAGE_DISK_MODEL_H_
