#include "storage/tiered_buffer_pool.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace fglb {

namespace {

void Append(std::string* out, const char* format, ...) {
  char buffer[128];
  va_list args;
  va_start(args, format);
  vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  *out += buffer;
}

bool ParseNumber(const std::string& value, double* out) {
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (value.empty() || end == nullptr || *end != '\0') return false;
  *out = parsed;
  return true;
}

}  // namespace

std::string TierConfig::ToString() const {
  if (!enabled()) return "";
  std::string out;
  Append(&out, "pages=%llu", static_cast<unsigned long long>(pages));
  Append(&out, ",read_us=%g", read_us);
  Append(&out, ",demote=%d", demote ? 1 : 0);
  return out;
}

bool TierConfig::Parse(const std::string& text, TierConfig* config,
                       std::string* error) {
  TierConfig parsed;
  if (text.empty()) {
    *config = parsed;  // tier absent
    return true;
  }
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t comma = text.find(',', pos);
    const std::string field =
        text.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? text.size() + 1 : comma + 1;
    const size_t eq = field.find('=');
    if (eq == std::string::npos) {
      if (error != nullptr) *error = "tier spec field without '=': " + field;
      return false;
    }
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    double num = 0;
    if (!ParseNumber(value, &num)) {
      if (error != nullptr) {
        *error = "tier spec value for " + key + " is not a number: " + value;
      }
      return false;
    }
    if (key == "pages") {
      if (num < 0 || num != static_cast<uint64_t>(num)) {
        if (error != nullptr) *error = "tier spec pages must be a non-negative integer";
        return false;
      }
      parsed.pages = static_cast<uint64_t>(num);
    } else if (key == "read_us") {
      if (num <= 0) {
        if (error != nullptr) *error = "tier spec read_us must be positive";
        return false;
      }
      parsed.read_us = num;
    } else if (key == "demote") {
      if (num != 0 && num != 1) {
        if (error != nullptr) *error = "tier spec demote must be 0 or 1";
        return false;
      }
      parsed.demote = num != 0;
    } else {
      if (error != nullptr) *error = "unknown tier spec key: " + key;
      return false;
    }
  }
  *config = parsed;
  return true;
}

TieredBufferPool::TieredBufferPool(const TierConfig& config)
    : config_(config), shared_(config.pages) {}

BufferPool* TieredBufferPool::PoolFor(PartitionKey key) {
  auto it = dedicated_.find(key);
  return it != dedicated_.end() ? it->second.get() : &shared_;
}

const BufferPool* TieredBufferPool::PoolFor(PartitionKey key) const {
  auto it = dedicated_.find(key);
  return it != dedicated_.end() ? it->second.get() : &shared_;
}

bool TieredBufferPool::SetQuota(PartitionKey key, uint64_t quota_pages) {
  if (key == kSharedPartition) return false;
  auto it = dedicated_.find(key);
  const uint64_t current = it != dedicated_.end() ? it->second->capacity() : 0;
  const uint64_t new_total = dedicated_total_ - current + quota_pages;
  if (new_total > config_.pages) return false;
  if (it != dedicated_.end()) {
    it->second->Resize(quota_pages);
  } else {
    dedicated_.emplace(key, std::make_unique<BufferPool>(quota_pages));
  }
  dedicated_total_ = new_total;
  shared_.Resize(config_.pages - dedicated_total_);
  return true;
}

void TieredBufferPool::DropQuota(PartitionKey key) {
  auto it = dedicated_.find(key);
  if (it == dedicated_.end()) return;
  dedicated_total_ -= it->second->capacity();
  dedicated_.erase(it);
  shared_.Resize(config_.pages - dedicated_total_);
}

uint64_t TieredBufferPool::QuotaOf(PartitionKey key) const {
  auto it = dedicated_.find(key);
  return it != dedicated_.end() ? it->second->capacity() : 0;
}

void TieredBufferPool::Demote(PartitionKey key, PageId page) {
  if (failed_ || !config_.demote) {
    ++dropped_demotions_;
    return;
  }
  if (PoolFor(key)->Insert(page)) ++demotions_;
}

bool TieredBufferPool::PromoteHit(PartitionKey key, PageId page) {
  if (failed_) {
    ++tier_misses_;
    return false;
  }
  auto it = dedicated_.find(key);
  if (it != dedicated_.end() && it->second->Erase(page)) {
    ++promotions_;
    return true;
  }
  if (shared_.Erase(page)) {
    ++promotions_;
    return true;
  }
  ++tier_misses_;
  return false;
}

bool TieredBufferPool::Contains(PartitionKey key, PageId page) const {
  if (failed_) return false;
  auto it = dedicated_.find(key);
  if (it != dedicated_.end() && it->second->Contains(page)) return true;
  return shared_.Contains(page);
}

void TieredBufferPool::SetFailed(bool failed) {
  if (failed && !failed_) {
    // Device loss: residency is gone, recovery starts cold.
    shared_.Clear();
    for (auto& [key, pool] : dedicated_) pool->Clear();
  }
  failed_ = failed;
}

uint64_t TieredBufferPool::resident_pages() const {
  uint64_t total = shared_.resident_pages();
  for (const auto& [key, pool] : dedicated_) total += pool->resident_pages();
  return total;
}

void TieredBufferPool::PublishMetrics(MetricsRegistry* registry,
                                      const std::string& prefix) const {
  if (registry == nullptr) return;
  registry->counter(prefix + "demotions")->Set(demotions_);
  registry->counter(prefix + "dropped_demotions")->Set(dropped_demotions_);
  registry->counter(prefix + "promotions")->Set(promotions_);
  registry->counter(prefix + "misses")->Set(tier_misses_);
  registry->gauge(prefix + "capacity_pages")
      ->Set(static_cast<double>(config_.pages));
  registry->gauge(prefix + "resident_pages")
      ->Set(static_cast<double>(resident_pages()));
  registry->gauge(prefix + "dedicated_pages")
      ->Set(static_cast<double>(dedicated_total_));
  registry->gauge(prefix + "partitions")
      ->Set(static_cast<double>(dedicated_.size()));
  registry->gauge(prefix + "latency_factor")->Set(latency_factor_);
  registry->gauge(prefix + "failed")->Set(failed_ ? 1.0 : 0.0);
  for (const auto& [key, pool] : dedicated_) {
    const std::string part =
        prefix + "class_" + std::to_string(key >> 32) + "_" +
        std::to_string(key & 0xFFFFFFFFULL) + ".";
    registry->gauge(part + "quota_pages")
        ->Set(static_cast<double>(pool->capacity()));
    registry->gauge(part + "resident_pages")
        ->Set(static_cast<double>(pool->resident_pages()));
  }
}

}  // namespace fglb
