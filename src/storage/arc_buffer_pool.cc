#include "storage/arc_buffer_pool.h"

#include <algorithm>
#include <cassert>

namespace fglb {

ArcBufferPool::ArcBufferPool(uint64_t capacity_pages)
    : PageCache(capacity_pages) {}

std::list<PageId>& ArcBufferPool::ListOf(List which) {
  switch (which) {
    case List::kT1:
      return t1_;
    case List::kT2:
      return t2_;
    case List::kB1:
      return b1_;
    case List::kB2:
      return b2_;
  }
  return t1_;
}

void ArcBufferPool::MoveTo(PageId page, Slot& slot, List to) {
  std::list<PageId>& dest = ListOf(to);
  dest.splice(dest.begin(), ListOf(slot.where), slot.it);
  slot.where = to;
  slot.it = dest.begin();
}

void ArcBufferPool::DropLru(List which) {
  std::list<PageId>& list = ListOf(which);
  assert(!list.empty());
  map_.erase(list.back());
  list.pop_back();
}

void ArcBufferPool::Replace(bool ghost_hit_in_b2) {
  assert(!t1_.empty() || !t2_.empty());
  const bool from_t1 =
      !t1_.empty() &&
      (t1_.size() > p_ || (ghost_hit_in_b2 && t1_.size() == p_) ||
       t2_.empty());
  const PageId victim = from_t1 ? t1_.back() : t2_.back();
  MoveTo(victim, map_.at(victim), from_t1 ? List::kB1 : List::kB2);
  ++stats_.evictions;
  NotifyEvicted(victim);
}

bool ArcBufferPool::Access(PageId page) {
  ++stats_.accesses;
  if (capacity_ == 0) {
    ++stats_.misses;
    return false;
  }
  const uint64_t c = capacity_;
  auto it = map_.find(page);
  if (it != map_.end() &&
      (it->second.where == List::kT1 || it->second.where == List::kT2)) {
    // Case I: resident hit — promote to the frequency list.
    MoveTo(page, it->second, List::kT2);
    ++stats_.hits;
    return true;
  }
  ++stats_.misses;
  if (it != map_.end() && it->second.where == List::kB1) {
    // Case II: ghost hit in B1 — recency is paying off, grow p.
    const uint64_t delta =
        std::max<uint64_t>(1, b2_.size() / std::max<size_t>(1, b1_.size()));
    p_ = std::min(c, p_ + delta);
    Replace(false);
    MoveTo(page, it->second, List::kT2);
    return false;
  }
  if (it != map_.end() && it->second.where == List::kB2) {
    // Case III: ghost hit in B2 — frequency is paying off, shrink p.
    const uint64_t delta =
        std::max<uint64_t>(1, b1_.size() / std::max<size_t>(1, b2_.size()));
    p_ = p_ > delta ? p_ - delta : 0;
    Replace(true);
    MoveTo(page, it->second, List::kT2);
    return false;
  }
  // Case IV: cold miss.
  if (t1_.size() + b1_.size() == c) {
    if (t1_.size() < c) {
      DropLru(List::kB1);
      Replace(false);
    } else {
      // B1 empty and T1 full: the LRU of T1 leaves without a ghost.
      const PageId victim = t1_.back();
      DropLru(List::kT1);
      ++stats_.evictions;
      NotifyEvicted(victim);
    }
  } else if (t1_.size() + b1_.size() < c &&
             t1_.size() + t2_.size() + b1_.size() + b2_.size() >= c) {
    if (t1_.size() + t2_.size() + b1_.size() + b2_.size() >= 2 * c) {
      DropLru(List::kB2);
    }
    if (t1_.size() + t2_.size() >= c) Replace(false);
  }
  t1_.push_front(page);
  map_[page] = Slot{List::kT1, t1_.begin()};
  return false;
}

bool ArcBufferPool::Insert(PageId page) {
  if (capacity_ == 0) return false;
  auto it = map_.find(page);
  if (it != map_.end() &&
      (it->second.where == List::kT1 || it->second.where == List::kT2)) {
    return false;
  }
  // Forget a ghost entry rather than letting the prefetch adapt p.
  if (it != map_.end()) {
    ListOf(it->second.where).erase(it->second.it);
    map_.erase(it);
  }
  if (t1_.size() + t2_.size() >= capacity_) Replace(false);
  // Keep the |T1| + |B1| <= c directory invariant.
  while (t1_.size() + b1_.size() >= capacity_ && !b1_.empty()) {
    DropLru(List::kB1);
  }
  if (t1_.size() + b1_.size() >= capacity_) return false;
  t1_.push_back(page);
  map_[page] = Slot{List::kT1, std::prev(t1_.end())};
  ++stats_.prefetch_inserts;
  return true;
}

bool ArcBufferPool::Erase(PageId page) {
  auto it = map_.find(page);
  if (it == map_.end() ||
      (it->second.where != List::kT1 && it->second.where != List::kT2)) {
    return false;
  }
  ListOf(it->second.where).erase(it->second.it);
  map_.erase(it);
  return true;
}

void ArcBufferPool::Resize(uint64_t capacity_pages) {
  capacity_ = capacity_pages;
  if (capacity_ == 0) {
    for (PageId page : t1_) {
      ++stats_.evictions;
      NotifyEvicted(page);
    }
    for (PageId page : t2_) {
      ++stats_.evictions;
      NotifyEvicted(page);
    }
    t1_.clear();
    t2_.clear();
    b1_.clear();
    b2_.clear();
    map_.clear();
    p_ = 0;
    return;
  }
  p_ = std::min(p_, capacity_);
  while (t1_.size() + t2_.size() > capacity_) Replace(false);
  while (t1_.size() + b1_.size() > capacity_ && !b1_.empty()) {
    DropLru(List::kB1);
  }
  while (map_.size() > 2 * capacity_ && !b2_.empty()) DropLru(List::kB2);
  while (map_.size() > 2 * capacity_ && !b1_.empty()) DropLru(List::kB1);
}

void ArcBufferPool::Clear() {
  t1_.clear();
  t2_.clear();
  b1_.clear();
  b2_.clear();
  map_.clear();
  p_ = 0;
}

}  // namespace fglb
