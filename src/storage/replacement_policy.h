#ifndef FGLB_STORAGE_REPLACEMENT_POLICY_H_
#define FGLB_STORAGE_REPLACEMENT_POLICY_H_

#include <string>

namespace fglb {

// The replacement policies the storage layer can model. kLru is the
// policy the paper's Mattson-based MRC machinery assumes; kClock and
// kArc exist so the quota planner's predictions can be evaluated
// against engines that do not satisfy the LRU inclusion property
// (bench_ablation_replacement replays the same traces against all
// three).
enum class ReplacementPolicy { kLru, kClock, kArc };

// "lru" | "clock" | "arc" — stable config-string round trip.
const char* ReplacementPolicyName(ReplacementPolicy policy);
bool ParseReplacementPolicy(const std::string& text, ReplacementPolicy* out);

}  // namespace fglb

#endif  // FGLB_STORAGE_REPLACEMENT_POLICY_H_
