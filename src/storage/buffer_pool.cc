#include "storage/buffer_pool.h"

namespace fglb {

BufferPool::BufferPool(uint64_t capacity_pages) : PageCache(capacity_pages) {}

bool BufferPool::Access(PageId page) {
  ++stats_.accesses;
  auto it = map_.find(page);
  if (it != map_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
  }
  ++stats_.misses;
  if (capacity_ == 0) return false;
  lru_.push_front(page);
  map_[page] = lru_.begin();
  EvictIfNeeded();
  return false;
}

bool BufferPool::Insert(PageId page) {
  if (capacity_ == 0) return false;
  if (map_.contains(page)) return false;
  ++stats_.prefetch_inserts;
  lru_.push_front(page);
  map_[page] = lru_.begin();
  EvictIfNeeded();
  return true;
}

bool BufferPool::Contains(PageId page) const { return map_.contains(page); }

bool BufferPool::Erase(PageId page) {
  auto it = map_.find(page);
  if (it == map_.end()) return false;
  lru_.erase(it->second);
  map_.erase(it);
  return true;
}

void BufferPool::Resize(uint64_t capacity_pages) {
  capacity_ = capacity_pages;
  EvictIfNeeded();
}

void BufferPool::Clear() {
  lru_.clear();
  map_.clear();
}

void BufferPool::EvictIfNeeded() {
  while (map_.size() > capacity_) {
    const PageId victim = lru_.back();
    map_.erase(victim);
    lru_.pop_back();
    ++stats_.evictions;
    NotifyEvicted(victim);
  }
}

}  // namespace fglb
