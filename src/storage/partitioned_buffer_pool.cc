#include "storage/partitioned_buffer_pool.h"

#include <cassert>

#include "storage/arc_buffer_pool.h"
#include "storage/buffer_pool.h"
#include "storage/clock_buffer_pool.h"

namespace fglb {

PartitionedBufferPool::PartitionedBufferPool(uint64_t capacity_pages,
                                             ReplacementPolicy policy)
    : capacity_(capacity_pages),
      policy_(policy),
      shared_(MakePool(kSharedPartition, capacity_pages)) {}

std::unique_ptr<PageCache> PartitionedBufferPool::MakePool(
    PartitionKey key, uint64_t capacity_pages) const {
  std::unique_ptr<PageCache> pool;
  switch (policy_) {
    case ReplacementPolicy::kLru:
      pool = std::make_unique<BufferPool>(capacity_pages);
      break;
    case ReplacementPolicy::kClock:
      pool = std::make_unique<ClockBufferPool>(capacity_pages);
      break;
    case ReplacementPolicy::kArc:
      pool = std::make_unique<ArcBufferPool>(capacity_pages);
      break;
  }
  BindSink(key, pool.get());
  return pool;
}

void PartitionedBufferPool::BindSink(PartitionKey key, PageCache* pool) const {
  if (listener_) {
    pool->set_eviction_sink(
        [listener = listener_, key](PageId page) { listener(key, page); });
  } else {
    pool->set_eviction_sink(nullptr);
  }
}

void PartitionedBufferPool::SetEvictionListener(EvictionListener listener) {
  listener_ = std::move(listener);
  BindSink(kSharedPartition, shared_.get());
  for (auto& [key, pool] : dedicated_) BindSink(key, pool.get());
}

bool PartitionedBufferPool::SetQuota(PartitionKey key, uint64_t quota_pages) {
  assert(key != kSharedPartition);
  auto it = dedicated_.find(key);
  const uint64_t current = it != dedicated_.end() ? it->second->capacity() : 0;
  const uint64_t new_total = dedicated_total_ - current + quota_pages;
  if (new_total > capacity_) return false;
  if (it != dedicated_.end()) {
    it->second->Resize(quota_pages);
  } else {
    dedicated_.emplace(key, MakePool(key, quota_pages));
  }
  dedicated_total_ = new_total;
  shared_->Resize(capacity_ - dedicated_total_);
  return true;
}

void PartitionedBufferPool::DropQuota(PartitionKey key) {
  auto it = dedicated_.find(key);
  if (it == dedicated_.end()) return;
  dedicated_total_ -= it->second->capacity();
  dedicated_.erase(it);
  shared_->Resize(capacity_ - dedicated_total_);
}

bool PartitionedBufferPool::HasQuota(PartitionKey key) const {
  return dedicated_.contains(key);
}

uint64_t PartitionedBufferPool::QuotaOf(PartitionKey key) const {
  auto it = dedicated_.find(key);
  return it != dedicated_.end() ? it->second->capacity() : 0;
}

PageCache* PartitionedBufferPool::PoolFor(PartitionKey key) {
  auto it = dedicated_.find(key);
  return it != dedicated_.end() ? it->second.get() : shared_.get();
}

const PageCache* PartitionedBufferPool::PoolFor(PartitionKey key) const {
  auto it = dedicated_.find(key);
  return it != dedicated_.end() ? it->second.get() : shared_.get();
}

bool PartitionedBufferPool::Access(PartitionKey key, PageId page) {
  return PoolFor(key)->Access(page);
}

bool PartitionedBufferPool::Insert(PartitionKey key, PageId page) {
  return PoolFor(key)->Insert(page);
}

bool PartitionedBufferPool::Contains(PartitionKey key, PageId page) const {
  return PoolFor(key)->Contains(page);
}

const BufferPoolStats& PartitionedBufferPool::StatsOf(PartitionKey key) const {
  return PoolFor(key)->stats();
}

std::vector<PartitionKey> PartitionedBufferPool::DedicatedKeys() const {
  std::vector<PartitionKey> keys;
  keys.reserve(dedicated_.size());
  for (const auto& [key, pool] : dedicated_) keys.push_back(key);
  return keys;
}

void PartitionedBufferPool::ResetStats() {
  shared_->ResetStats();
  for (auto& [key, pool] : dedicated_) pool->ResetStats();
}

namespace {

void PublishPool(MetricsRegistry* registry, const std::string& prefix,
                 const PageCache& pool) {
  const BufferPoolStats& stats = pool.stats();
  registry->counter(prefix + "accesses")->Set(stats.accesses);
  registry->counter(prefix + "hits")->Set(stats.hits);
  registry->counter(prefix + "misses")->Set(stats.misses);
  registry->counter(prefix + "evictions")->Set(stats.evictions);
  registry->counter(prefix + "read_ahead_inserts")
      ->Set(stats.prefetch_inserts);
  registry->gauge(prefix + "resident_pages")
      ->Set(static_cast<double>(pool.resident_pages()));
  registry->gauge(prefix + "capacity_pages")
      ->Set(static_cast<double>(pool.capacity()));
}

}  // namespace

void PartitionedBufferPool::PublishMetrics(MetricsRegistry* registry,
                                           const std::string& prefix) const {
  if (registry == nullptr) return;
  PublishPool(registry, prefix + "shared.", *shared_);
  registry->gauge(prefix + "partitions")
      ->Set(static_cast<double>(dedicated_.size()));
  registry->gauge(prefix + "dedicated_pages")
      ->Set(static_cast<double>(dedicated_total_));
  for (const auto& [key, pool] : dedicated_) {
    // PartitionKey is a ClassKey: (app << 32) | class.
    const std::string part =
        prefix + "class_" + std::to_string(key >> 32) + "_" +
        std::to_string(key & 0xFFFFFFFFULL) + ".";
    PublishPool(registry, part, *pool);
  }
}

}  // namespace fglb
