#ifndef FGLB_STORAGE_PAGE_CACHE_H_
#define FGLB_STORAGE_PAGE_CACHE_H_

#include <cstdint>
#include <functional>
#include <utility>

#include "storage/page.h"

namespace fglb {

// Cumulative counters for one page cache (or cache partition).
struct BufferPoolStats {
  uint64_t accesses = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t prefetch_inserts = 0;

  double hit_ratio() const {
    return accesses > 0 ? static_cast<double>(hits) / accesses : 0.0;
  }
  double miss_ratio() const {
    return accesses > 0 ? static_cast<double>(misses) / accesses : 0.0;
  }
};

// Polymorphic page-cache surface shared by the LRU, CLOCK and ARC
// pools, so PartitionedBufferPool can run any replacement policy behind
// one partition type and the tiered pool can observe evictions from all
// of them uniformly.
class PageCache {
 public:
  // Called with every page that leaves residency under capacity
  // pressure (replacement or a shrinking Resize) — the tiered pool's
  // demote-on-DRAM-evict hook. Not called by Clear() (a drop, not an
  // eviction) or Erase() (a promotion, the page moves up, not down).
  using EvictionSink = std::function<void(PageId)>;

  virtual ~PageCache() = default;

  // References `page`, promoting it per the policy. Returns true on a
  // hit; on a miss the page is brought in (unless capacity is zero),
  // evicting a victim if the cache is full.
  virtual bool Access(PageId page) = 0;

  // Inserts a page without counting an access (read-ahead landing).
  // Returns true if the page was actually brought in; false if already
  // resident or capacity is zero.
  virtual bool Insert(PageId page) = 0;

  virtual bool Contains(PageId page) const = 0;

  // Removes `page` from residency without counting an eviction — the
  // caller is promoting it to a faster tier, not discarding it.
  // Returns true if it was resident.
  virtual bool Erase(PageId page) = 0;

  // Shrinks or grows the cache, evicting as needed. A zero-capacity
  // cache misses every access and caches nothing.
  virtual void Resize(uint64_t capacity_pages) = 0;

  // Drops all resident pages (counters are retained).
  virtual void Clear() = 0;

  virtual uint64_t resident_pages() const = 0;

  uint64_t capacity() const { return capacity_; }
  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferPoolStats(); }

  void set_eviction_sink(EvictionSink sink) { sink_ = std::move(sink); }

 protected:
  explicit PageCache(uint64_t capacity_pages) : capacity_(capacity_pages) {}

  void NotifyEvicted(PageId page) {
    if (sink_) sink_(page);
  }

  uint64_t capacity_;
  BufferPoolStats stats_;

 private:
  EvictionSink sink_;
};

}  // namespace fglb

#endif  // FGLB_STORAGE_PAGE_CACHE_H_
