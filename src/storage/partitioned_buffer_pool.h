#ifndef FGLB_STORAGE_PARTITIONED_BUFFER_POOL_H_
#define FGLB_STORAGE_PARTITIONED_BUFFER_POOL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics_registry.h"
#include "storage/page.h"
#include "storage/page_cache.h"
#include "storage/replacement_policy.h"

namespace fglb {

// Key selecting which partition an access is charged to. The engine
// maps query classes to partition keys; kSharedPartition is the default
// partition holding every class without a dedicated quota.
using PartitionKey = uint64_t;
inline constexpr PartitionKey kSharedPartition = 0;

// A buffer pool divided into a shared region plus zero or more
// dedicated per-query-class partitions with fixed page quotas — the
// paper's memory-quota enforcement mechanism (§3.3.2, Table 1). The
// shared region always owns whatever capacity the dedicated quotas do
// not take. Every partition runs the same replacement policy, chosen
// at construction (LRU by default; CLOCK and ARC let scenarios probe
// the planner's sensitivity to the LRU inclusion assumption).
class PartitionedBufferPool {
 public:
  // Observes every page evicted under capacity pressure, tagged with
  // the partition it left — the tiered pool's demote feed.
  using EvictionListener = std::function<void(PartitionKey, PageId)>;

  explicit PartitionedBufferPool(
      uint64_t capacity_pages,
      ReplacementPolicy policy = ReplacementPolicy::kLru);
  PartitionedBufferPool(const PartitionedBufferPool&) = delete;
  PartitionedBufferPool& operator=(const PartitionedBufferPool&) = delete;

  // Creates (or resizes) the dedicated partition for `key` with
  // `quota_pages`. Returns false (and changes nothing) if the combined
  // quotas would exceed total capacity. `key` must not be
  // kSharedPartition.
  bool SetQuota(PartitionKey key, uint64_t quota_pages);

  // Removes a dedicated partition; its pages are dropped and its quota
  // returns to the shared region. No-op if absent.
  void DropQuota(PartitionKey key);

  bool HasQuota(PartitionKey key) const;
  uint64_t QuotaOf(PartitionKey key) const;  // 0 if no dedicated quota

  // References a page on behalf of `key`, hitting that key's partition
  // (dedicated if present, shared otherwise). Returns true on a hit.
  bool Access(PartitionKey key, PageId page);

  // Read-ahead landing for `key`'s partition. Returns true if the page
  // was actually brought in (false if already resident).
  bool Insert(PartitionKey key, PageId page);

  // Whether `page` is resident in the partition `key` maps to.
  bool Contains(PartitionKey key, PageId page) const;

  // Resolves the partition `key`'s accesses land in (dedicated when one
  // exists, shared otherwise). Valid until the next SetQuota/DropQuota.
  // The engine resolves once per query and walks the access string
  // against the pool directly, instead of paying the partition lookup
  // on every page access.
  PageCache& PartitionOf(PartitionKey key) { return *PoolFor(key); }

  // Installs (or replaces) the eviction listener on the shared region
  // and every dedicated partition, current and future.
  void SetEvictionListener(EvictionListener listener);

  ReplacementPolicy policy() const { return policy_; }
  uint64_t capacity() const { return capacity_; }
  uint64_t shared_capacity() const { return shared_->capacity(); }
  uint64_t dedicated_total() const { return dedicated_total_; }

  // Stats for a key's partition: the dedicated partition if one exists,
  // otherwise the shared region's aggregate stats.
  const BufferPoolStats& StatsOf(PartitionKey key) const;
  const BufferPoolStats& shared_stats() const { return shared_->stats(); }

  // Keys of all dedicated partitions, in key order.
  std::vector<PartitionKey> DedicatedKeys() const;

  void ResetStats();

  // Publishes cumulative stats into `registry` under `prefix`
  // ("<prefix>shared.misses", "<prefix>class_<app>_<cls>.hits", ...,
  // plus "<prefix>partitions" / "<prefix>dedicated_pages" gauges).
  // Called once per sampling interval, not per access, so the hot
  // access path stays untouched.
  void PublishMetrics(MetricsRegistry* registry,
                      const std::string& prefix) const;

 private:
  PageCache* PoolFor(PartitionKey key);
  const PageCache* PoolFor(PartitionKey key) const;
  // Builds a partition of the configured policy, with the current
  // eviction listener bound to `key`.
  std::unique_ptr<PageCache> MakePool(PartitionKey key,
                                      uint64_t capacity_pages) const;
  void BindSink(PartitionKey key, PageCache* pool) const;

  uint64_t capacity_;
  ReplacementPolicy policy_;
  uint64_t dedicated_total_ = 0;
  EvictionListener listener_;
  std::unique_ptr<PageCache> shared_;
  std::map<PartitionKey, std::unique_ptr<PageCache>> dedicated_;
};

}  // namespace fglb

#endif  // FGLB_STORAGE_PARTITIONED_BUFFER_POOL_H_
