#include "storage/clock_buffer_pool.h"

#include <cassert>

namespace fglb {

ClockBufferPool::ClockBufferPool(uint64_t capacity_pages)
    : capacity_(capacity_pages), frames_(capacity_pages) {}

size_t ClockBufferPool::FindVictim() {
  assert(capacity_ > 0);
  for (;;) {
    Frame& frame = frames_[hand_];
    if (!frame.occupied) {
      const size_t index = hand_;
      hand_ = (hand_ + 1) % frames_.size();
      return index;
    }
    if (!frame.referenced) {
      const size_t index = hand_;
      hand_ = (hand_ + 1) % frames_.size();
      return index;
    }
    frame.referenced = false;  // second chance
    hand_ = (hand_ + 1) % frames_.size();
  }
}

void ClockBufferPool::InstallAt(size_t index, PageId page, bool referenced) {
  Frame& frame = frames_[index];
  if (frame.occupied) {
    map_.erase(frame.page);
    ++stats_.evictions;
  }
  frame.page = page;
  frame.occupied = true;
  frame.referenced = referenced;
  map_[page] = index;
}

bool ClockBufferPool::Access(PageId page) {
  ++stats_.accesses;
  auto it = map_.find(page);
  if (it != map_.end()) {
    ++stats_.hits;
    frames_[it->second].referenced = true;
    return true;
  }
  ++stats_.misses;
  if (capacity_ == 0) return false;
  InstallAt(FindVictim(), page, /*referenced=*/true);
  return false;
}

bool ClockBufferPool::Insert(PageId page) {
  if (capacity_ == 0) return false;
  if (map_.contains(page)) return false;
  ++stats_.prefetch_inserts;
  InstallAt(FindVictim(), page, /*referenced=*/false);
  return true;
}

}  // namespace fglb
