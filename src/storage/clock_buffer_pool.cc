#include "storage/clock_buffer_pool.h"

#include <algorithm>
#include <cassert>

namespace fglb {

ClockBufferPool::ClockBufferPool(uint64_t capacity_pages)
    : PageCache(capacity_pages), frames_(capacity_pages) {}

size_t ClockBufferPool::FindVictim() {
  assert(capacity_ > 0);
  for (;;) {
    Frame& frame = frames_[hand_];
    if (!frame.occupied) {
      const size_t index = hand_;
      hand_ = (hand_ + 1) % frames_.size();
      return index;
    }
    if (!frame.referenced) {
      const size_t index = hand_;
      hand_ = (hand_ + 1) % frames_.size();
      return index;
    }
    frame.referenced = false;  // second chance
    hand_ = (hand_ + 1) % frames_.size();
  }
}

void ClockBufferPool::InstallAt(size_t index, PageId page, bool referenced) {
  Frame& frame = frames_[index];
  if (frame.occupied) {
    const PageId victim = frame.page;
    map_.erase(victim);
    ++stats_.evictions;
    NotifyEvicted(victim);
  }
  frame.page = page;
  frame.occupied = true;
  frame.referenced = referenced;
  map_[page] = index;
}

bool ClockBufferPool::Access(PageId page) {
  ++stats_.accesses;
  auto it = map_.find(page);
  if (it != map_.end()) {
    ++stats_.hits;
    frames_[it->second].referenced = true;
    return true;
  }
  ++stats_.misses;
  if (capacity_ == 0) return false;
  InstallAt(FindVictim(), page, /*referenced=*/true);
  return false;
}

bool ClockBufferPool::Insert(PageId page) {
  if (capacity_ == 0) return false;
  if (map_.contains(page)) return false;
  ++stats_.prefetch_inserts;
  InstallAt(FindVictim(), page, /*referenced=*/false);
  return true;
}

bool ClockBufferPool::Erase(PageId page) {
  auto it = map_.find(page);
  if (it == map_.end()) return false;
  frames_[it->second] = Frame{};
  map_.erase(it);
  return true;
}

void ClockBufferPool::Resize(uint64_t capacity_pages) {
  // Collect residents hand-first: the frames the hand reaches soonest
  // are the next eviction candidates, so when shrinking those are the
  // ones to let go.
  std::vector<Frame> resident;
  resident.reserve(map_.size());
  if (!frames_.empty()) {
    for (size_t i = 0; i < frames_.size(); ++i) {
      const Frame& frame = frames_[(hand_ + i) % frames_.size()];
      if (frame.occupied) resident.push_back(frame);
    }
  }
  capacity_ = capacity_pages;
  const size_t keep_from = resident.size() > capacity_pages
                               ? resident.size() - capacity_pages
                               : 0;
  for (size_t i = 0; i < keep_from; ++i) {
    ++stats_.evictions;
    NotifyEvicted(resident[i].page);
  }
  frames_.assign(capacity_pages, Frame{});
  map_.clear();
  hand_ = 0;
  for (size_t i = keep_from; i < resident.size(); ++i) {
    const size_t index = i - keep_from;
    frames_[index] = resident[i];
    map_[resident[i].page] = index;
  }
}

void ClockBufferPool::Clear() {
  std::fill(frames_.begin(), frames_.end(), Frame{});
  map_.clear();
  hand_ = 0;
}

}  // namespace fglb
