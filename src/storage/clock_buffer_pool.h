#ifndef FGLB_STORAGE_CLOCK_BUFFER_POOL_H_
#define FGLB_STORAGE_CLOCK_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "storage/page.h"
#include "storage/page_cache.h"

namespace fglb {

// CLOCK (second-chance) page cache with the same interface surface as
// BufferPool. Real engines often approximate LRU with CLOCK because it
// avoids list maintenance on every hit; but CLOCK does *not* satisfy
// the inclusion property Mattson's stack algorithm depends on, so MRC
// predictions are only approximate for it. The
// bench_ablation_replacement binary quantifies that gap — the
// sensitivity of the paper's whole memory-diagnosis pipeline to its
// LRU assumption.
class ClockBufferPool : public PageCache {
 public:
  explicit ClockBufferPool(uint64_t capacity_pages);

  // References `page`, setting its reference bit. Returns true on hit.
  bool Access(PageId page) override;

  // Read-ahead landing: installs the page with a clear reference bit
  // (first in line for eviction unless actually used). Returns true if
  // the page was brought in.
  bool Insert(PageId page) override;

  bool Contains(PageId page) const override { return map_.contains(page); }

  bool Erase(PageId page) override;

  // Rebuilds the frame table at the new capacity, keeping the pages
  // furthest from the hand (the ones CLOCK would have evicted last)
  // when shrinking. The hand restarts at frame 0.
  void Resize(uint64_t capacity_pages) override;

  void Clear() override;

  uint64_t resident_pages() const override { return map_.size(); }

 private:
  struct Frame {
    PageId page = 0;
    bool occupied = false;
    bool referenced = false;
  };

  // Finds a victim frame index, advancing the hand and clearing
  // reference bits (second chance). Requires capacity > 0.
  size_t FindVictim();
  void InstallAt(size_t index, PageId page, bool referenced);

  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> map_;
  size_t hand_ = 0;
};

}  // namespace fglb

#endif  // FGLB_STORAGE_CLOCK_BUFFER_POOL_H_
