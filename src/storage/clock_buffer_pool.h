#ifndef FGLB_STORAGE_CLOCK_BUFFER_POOL_H_
#define FGLB_STORAGE_CLOCK_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace fglb {

// CLOCK (second-chance) page cache with the same interface surface as
// BufferPool. Real engines often approximate LRU with CLOCK because it
// avoids list maintenance on every hit; but CLOCK does *not* satisfy
// the inclusion property Mattson's stack algorithm depends on, so MRC
// predictions are only approximate for it. The
// bench_ablation_replacement binary quantifies that gap — the
// sensitivity of the paper's whole memory-diagnosis pipeline to its
// LRU assumption.
class ClockBufferPool {
 public:
  explicit ClockBufferPool(uint64_t capacity_pages);

  // References `page`, setting its reference bit. Returns true on hit.
  bool Access(PageId page);

  // Read-ahead landing: installs the page with a clear reference bit
  // (first in line for eviction unless actually used). Returns true if
  // the page was brought in.
  bool Insert(PageId page);

  bool Contains(PageId page) const { return map_.contains(page); }

  uint64_t capacity() const { return capacity_; }
  uint64_t resident_pages() const { return map_.size(); }
  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferPoolStats(); }

 private:
  struct Frame {
    PageId page = 0;
    bool occupied = false;
    bool referenced = false;
  };

  // Finds a victim frame index, advancing the hand and clearing
  // reference bits (second chance). Requires capacity > 0.
  size_t FindVictim();
  void InstallAt(size_t index, PageId page, bool referenced);

  uint64_t capacity_;
  std::vector<Frame> frames_;
  std::unordered_map<PageId, size_t> map_;
  size_t hand_ = 0;
  BufferPoolStats stats_;
};

}  // namespace fglb

#endif  // FGLB_STORAGE_CLOCK_BUFFER_POOL_H_
