#ifndef FGLB_STORAGE_ARC_BUFFER_POOL_H_
#define FGLB_STORAGE_ARC_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

#include "storage/page.h"
#include "storage/page_cache.h"

namespace fglb {

// ARC (Adaptive Replacement Cache, Megiddo & Modha, FAST'03) page
// cache with the same interface surface as BufferPool/ClockBufferPool.
// ARC splits residency into a recency list T1 (pages seen once) and a
// frequency list T2 (pages seen at least twice), shadowed by ghost
// lists B1/B2 of recently evicted page ids, and adapts the target size
// `p` of T1 from ghost hits. A one-shot scan marches through T1
// without ever touching T2, so the hot set survives — the
// scan-resistance a pure LRU/CLOCK pool lacks. Like CLOCK, ARC does
// *not* satisfy the inclusion property, so the paper's Mattson-based
// MRC predictions are approximate for it; bench_ablation_replacement
// quantifies that gap for the quota planner.
class ArcBufferPool : public PageCache {
 public:
  explicit ArcBufferPool(uint64_t capacity_pages);

  // References `page`. Returns true on hit (page was in T1 or T2).
  // On a miss the page is brought in (unless capacity is zero),
  // adapting `p` when the page id is remembered in a ghost list.
  bool Access(PageId page) override;

  // Read-ahead landing: installs the page at the cold (LRU) end of T1
  // without counting an access, touching the ghost lists or adapting —
  // the prefetched page is first in line for eviction unless actually
  // used, mirroring the CLOCK pool's clear-reference-bit landing.
  // Returns true if the page was brought in.
  bool Insert(PageId page) override;

  bool Contains(PageId page) const override {
    auto it = map_.find(page);
    return it != map_.end() &&
           (it->second.where == List::kT1 || it->second.where == List::kT2);
  }

  bool Erase(PageId page) override;

  // Shrinks or grows the cache. Shrinking replays ARC's own REPLACE
  // until residency fits, then trims the ghost directory back under
  // its |T1|+|B1| <= c and total <= 2c invariants.
  void Resize(uint64_t capacity_pages) override;

  void Clear() override;

  uint64_t resident_pages() const override {
    return t1_.size() + t2_.size();
  }

  // Current adaptation target for |T1| (observable for tests).
  uint64_t target_t1() const { return p_; }

 private:
  enum class List : uint8_t { kT1, kT2, kB1, kB2 };
  struct Slot {
    List where;
    std::list<PageId>::iterator it;
  };

  std::list<PageId>& ListOf(List which);
  // Moves `page` (present in `slot`) to the MRU end of `to`.
  void MoveTo(PageId page, Slot& slot, List to);
  // Drops the LRU entry of `which` from the list and the map.
  void DropLru(List which);
  // ARC's REPLACE: evicts the LRU page of T1 or T2 into its ghost
  // list, steered by the target p. `ghost_hit_in_b2` biases toward
  // evicting from T1 on the |T1| == p boundary, per the paper.
  void Replace(bool ghost_hit_in_b2);

  uint64_t p_ = 0;  // adaptation target for |T1|
  std::list<PageId> t1_, t2_, b1_, b2_;  // front = MRU
  std::unordered_map<PageId, Slot> map_;
};

}  // namespace fglb

#endif  // FGLB_STORAGE_ARC_BUFFER_POOL_H_
