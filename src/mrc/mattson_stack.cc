#include "mrc/mattson_stack.h"

#include <algorithm>
#include <cassert>

namespace fglb {

namespace {

void RecordHit(std::vector<uint64_t>& hits, uint64_t depth) {
  assert(depth >= 1);
  if (hits.size() < depth) hits.resize(depth, 0);
  ++hits[depth - 1];
}

}  // namespace

// --- ListMattsonStack ---

uint64_t ListMattsonStack::Access(PageId page) {
  ++total_;
  auto it = index_.find(page);
  if (it == index_.end()) {
    ++cold_misses_;
    stack_.push_front(page);
    index_[page] = stack_.begin();
    return 0;
  }
  uint64_t depth = 1;
  for (auto pos = stack_.begin(); pos != it->second; ++pos) ++depth;
  RecordHit(hits_, depth);
  stack_.splice(stack_.begin(), stack_, it->second);
  return depth;
}

void ListMattsonStack::Reset() {
  stack_.clear();
  index_.clear();
  hits_.clear();
  cold_misses_ = 0;
  total_ = 0;
}

// --- FenwickMattsonStack ---

namespace {

size_t FenwickSizeFor(size_t expected_accesses) {
  size_t size = 1025;
  while (expected_accesses + 2 > size) size *= 2;
  return size;
}

}  // namespace

FenwickMattsonStack::FenwickMattsonStack(size_t expected_accesses)
    : tree_(FenwickSizeFor(expected_accesses), 0) {}

void FenwickMattsonStack::EnsureCapacity(size_t slot) {
  if (slot + 2 <= tree_.size()) return;
  size_t new_size = tree_.size();
  while (slot + 2 > new_size) new_size *= 2;
  tree_.assign(new_size, 0);
  // Fenwick trees cannot simply be resized: rebuild from the marks
  // (last_slot_ holds exactly the marked slots). Writing each mark's
  // point value and folding children into parents in one sweep is
  // O(new_size), versus O(marks * log) for re-inserting mark by mark.
  for (const auto& [page, s] : last_slot_) tree_[s + 1] = 1;
  for (size_t i = 1; i < tree_.size(); ++i) {
    const size_t parent = i + (i & (~i + 1));
    if (parent < tree_.size()) tree_[parent] += tree_[i];
  }
  ++capacity_rebuilds_;
}

void FenwickMattsonStack::Reset() {
  std::fill(tree_.begin(), tree_.end(), 0);
  last_slot_.clear();
  next_slot_ = 0;
  marked_ = 0;
  hits_.clear();
  cold_misses_ = 0;
  total_ = 0;
  capacity_rebuilds_ = 0;
}

void FenwickMattsonStack::FenwickAdd(size_t slot, int64_t delta) {
  for (size_t i = slot + 1; i < tree_.size(); i += i & (~i + 1)) {
    tree_[i] += delta;
  }
}

uint64_t FenwickMattsonStack::FenwickPrefixSum(size_t slot) const {
  int64_t sum = 0;
  for (size_t i = slot + 1; i > 0; i -= i & (~i + 1)) sum += tree_[i];
  assert(sum >= 0);
  return static_cast<uint64_t>(sum);
}

void FenwickMattsonStack::CompactIfSparse() {
  if (next_slot_ < 4096 || next_slot_ < 4 * last_slot_.size()) return;
  // Reassign slots densely, preserving recency order.
  std::vector<std::pair<size_t, PageId>> by_slot;
  by_slot.reserve(last_slot_.size());
  for (const auto& [page, slot] : last_slot_) by_slot.emplace_back(slot, page);
  std::sort(by_slot.begin(), by_slot.end());
  std::fill(tree_.begin(), tree_.end(), 0);
  next_slot_ = 0;
  for (const auto& [old_slot, page] : by_slot) {
    last_slot_[page] = next_slot_;
    FenwickAdd(next_slot_, +1);
    ++next_slot_;
  }
}

uint64_t FenwickMattsonStack::Access(PageId page) {
  ++total_;
  auto it = last_slot_.find(page);
  uint64_t depth = 0;
  if (it != last_slot_.end()) {
    const size_t old_slot = it->second;
    // Pages referenced after this one's last reference sit above it.
    const uint64_t newer = marked_ - FenwickPrefixSum(old_slot);
    depth = newer + 1;
    RecordHit(hits_, depth);
    FenwickAdd(old_slot, -1);
    --marked_;
    // Drop the stale mapping so a tree rebuild inside EnsureCapacity
    // sees last_slot_ == the set of marked slots.
    last_slot_.erase(it);
  } else {
    ++cold_misses_;
  }
  const size_t slot = next_slot_++;
  EnsureCapacity(slot);
  last_slot_.emplace(page, slot);
  FenwickAdd(slot, +1);
  ++marked_;
  CompactIfSparse();
  return depth;
}

std::unique_ptr<MattsonStack> MakeMattsonStack(MattsonImpl impl,
                                               size_t expected_accesses) {
  switch (impl) {
    case MattsonImpl::kList:
      return std::make_unique<ListMattsonStack>();
    case MattsonImpl::kFenwick:
      return std::make_unique<FenwickMattsonStack>(expected_accesses);
  }
  return nullptr;
}

}  // namespace fglb
