#include "mrc/miss_ratio_curve.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "mrc/sampled_mattson_stack.h"

namespace fglb {

std::string MrcParameters::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "total=%llu pages (mr=%.4f), acceptable=%llu pages (mr=%.4f)",
                static_cast<unsigned long long>(total_memory_pages),
                ideal_miss_ratio,
                static_cast<unsigned long long>(acceptable_memory_pages),
                acceptable_miss_ratio);
  return buf;
}

const char* MrcModeName(MrcMode mode) {
  switch (mode) {
    case MrcMode::kRecompute:
      return "recompute";
    case MrcMode::kStreaming:
      return "streaming";
  }
  return "unknown";
}

bool ParseMrcMode(const std::string& text, MrcMode* out) {
  if (text == "recompute") *out = MrcMode::kRecompute;
  else if (text == "streaming") *out = MrcMode::kStreaming;
  else return false;
  return true;
}

std::string MrcSpecString(const MrcConfig& config) {
  if (config.mode == MrcMode::kRecompute && !config.opt_regret) return "";
  std::string spec = std::string("mode=") + MrcModeName(config.mode);
  spec += ",opt_regret=";
  spec += config.opt_regret ? '1' : '0';
  return spec;
}

bool ParseMrcSpec(const std::string& text, MrcConfig* config,
                  std::string* error) {
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find(',', pos);
    if (end == std::string::npos) end = text.size();
    const std::string item = text.substr(pos, end - pos);
    pos = end + 1;
    const size_t eq = item.find('=');
    if (eq == std::string::npos) {
      if (error != nullptr) *error = "mrc spec item lacks '=': " + item;
      return false;
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "mode") {
      if (!ParseMrcMode(value, &config->mode)) {
        if (error != nullptr) *error = "unknown mrc mode: " + value;
        return false;
      }
    } else if (key == "opt_regret") {
      if (value != "0" && value != "1") {
        if (error != nullptr) *error = "opt_regret must be 0 or 1: " + value;
        return false;
      }
      config->opt_regret = value == "1";
    } else {
      if (error != nullptr) *error = "unknown mrc spec key: " + key;
      return false;
    }
  }
  return true;
}

MissRatioCurve MissRatioCurve::FromStack(const MattsonStack& stack) {
  // Normalization is by the stack's own mass (hits + cold misses)
  // rather than total_accesses(): for exact stacks the two are equal;
  // for a hash-sampled stack the sampled pages' reference share
  // fluctuates around the nominal rate (badly so on skewed traces,
  // where one head page in or out of the sample moves the share by
  // whole percents), and dividing by the sample's own scaled mass —
  // the SHARDS "adjusted" estimator — cancels that fluctuation instead
  // of folding it into every point of the curve.
  return FromHistogram(stack.hit_counts(), stack.cold_misses(),
                       stack.total_accesses());
}

MissRatioCurve MissRatioCurve::FromHistogram(std::span<const uint64_t> hits,
                                             uint64_t cold_misses,
                                             uint64_t total_accesses) {
  MissRatioCurve curve;
  curve.total_accesses_ = total_accesses;
  if (total_accesses == 0) return curve;
  curve.miss_ratio_.resize(hits.size() + 1);
  curve.miss_ratio_[0] = 1.0;
  uint64_t mass = cold_misses;
  for (uint64_t h : hits) mass += h;
  // A non-empty window whose sample caught nothing yields the
  // pessimistic constant-1 curve rather than dividing by zero.
  if (mass == 0) {
    curve.miss_ratio_.assign(1, 1.0);
    return curve;
  }
  const double total = static_cast<double>(mass);
  uint64_t cumulative_hits = 0;
  for (size_t depth = 1; depth <= hits.size(); ++depth) {
    cumulative_hits += hits[depth - 1];
    curve.miss_ratio_[depth] =
        std::max(0.0, 1.0 - static_cast<double>(cumulative_hits) / total);
  }
  return curve;
}

MissRatioCurve MissRatioCurve::FromTrace(std::span<const PageId> trace,
                                         MattsonImpl impl) {
  auto stack = MakeMattsonStack(impl, trace.size());
  for (PageId page : trace) stack->Access(page);
  return FromStack(*stack);
}

MissRatioCurve MissRatioCurve::FromTrace(SpanPair<PageId> trace,
                                         const MrcConfig& config) {
  auto stack = MakeReplayStack(config, trace.size());
  return Replay(trace, *stack);
}

MissRatioCurve MissRatioCurve::Replay(SpanPair<PageId> trace,
                                      MattsonStack& stack) {
  stack.Reset();
  trace.ForEach([&stack](PageId page) { stack.Access(page); });
  return FromStack(stack);
}

std::unique_ptr<MattsonStack> MissRatioCurve::MakeReplayStack(
    const MrcConfig& config, size_t expected_accesses) {
  if (config.sample_rate < 1.0) {
    return std::make_unique<SampledMattsonStack>(config.sample_rate,
                                                 expected_accesses);
  }
  return MakeMattsonStack(config.impl, expected_accesses);
}

double MissRatioCurve::MissRatioAt(uint64_t pages) const {
  if (miss_ratio_.empty()) return 1.0;
  if (pages >= miss_ratio_.size()) return miss_ratio_.back();
  return miss_ratio_[pages];
}

MrcParameters MissRatioCurve::ComputeParameters(const MrcConfig& config) const {
  MrcParameters params;
  const uint64_t cap = config.max_server_pages;
  const double floor = MissRatioAt(cap);
  // Total memory needed: smallest size (<= cap) already at the floor.
  uint64_t total = cap;
  for (uint64_t m = 0; m <= std::min<uint64_t>(cap, max_pages()); ++m) {
    if (MissRatioAt(m) <= floor + config.flatten_epsilon) {
      total = m;
      break;
    }
  }
  params.total_memory_pages = total;
  params.ideal_miss_ratio = MissRatioAt(total);
  // Acceptable memory: smallest size within threshold of ideal.
  const double acceptable_bound =
      params.ideal_miss_ratio + config.acceptable_threshold;
  uint64_t acceptable = total;
  for (uint64_t m = 0; m <= total; ++m) {
    if (MissRatioAt(m) <= acceptable_bound) {
      acceptable = m;
      break;
    }
  }
  params.acceptable_memory_pages = acceptable;
  params.acceptable_miss_ratio = MissRatioAt(acceptable);
  return params;
}

bool MissRatioCurve::SignificantChange(const MrcParameters& stable,
                                       const MrcParameters& current,
                                       const MrcConfig& config) {
  auto changed = [&config](uint64_t before, uint64_t now) {
    const uint64_t abs_delta = now > before ? now - before : before - now;
    // Small working sets jitter by large *relative* amounts while being
    // irrelevant in absolute terms; require a change that also matters
    // against pool sizes (half a typical minimum quota times 4).
    if (abs_delta < 512) return false;
    if (before == 0) return true;
    return static_cast<double>(abs_delta) / static_cast<double>(before) >
           config.significant_change_fraction;
  };
  return changed(stable.total_memory_pages, current.total_memory_pages) ||
         changed(stable.acceptable_memory_pages,
                 current.acceptable_memory_pages);
}

}  // namespace fglb
