#include "mrc/miss_ratio_curve.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "mrc/sampled_mattson_stack.h"

namespace fglb {

std::string MrcParameters::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "total=%llu pages (mr=%.4f), acceptable=%llu pages (mr=%.4f)",
                static_cast<unsigned long long>(total_memory_pages),
                ideal_miss_ratio,
                static_cast<unsigned long long>(acceptable_memory_pages),
                acceptable_miss_ratio);
  return buf;
}

MissRatioCurve MissRatioCurve::FromStack(const MattsonStack& stack) {
  MissRatioCurve curve;
  curve.total_accesses_ = stack.total_accesses();
  if (curve.total_accesses_ == 0) return curve;
  const auto& hits = stack.hit_counts();
  curve.miss_ratio_.resize(hits.size() + 1);
  curve.miss_ratio_[0] = 1.0;
  // Normalize by the stack's own mass (hits + cold misses) rather than
  // total_accesses(). For exact stacks the two are equal; for a
  // hash-sampled stack the sampled pages' reference share fluctuates
  // around the nominal rate (badly so on skewed traces, where one head
  // page in or out of the sample moves the share by whole percents),
  // and dividing by the sample's own scaled mass — the SHARDS "adjusted"
  // estimator — cancels that fluctuation instead of folding it into
  // every point of the curve.
  uint64_t mass = stack.cold_misses();
  for (uint64_t h : hits) mass += h;
  const double total = static_cast<double>(mass);
  uint64_t cumulative_hits = 0;
  for (size_t depth = 1; depth <= hits.size(); ++depth) {
    cumulative_hits += hits[depth - 1];
    curve.miss_ratio_[depth] =
        std::max(0.0, 1.0 - static_cast<double>(cumulative_hits) / total);
  }
  return curve;
}

MissRatioCurve MissRatioCurve::FromTrace(std::span<const PageId> trace,
                                         MattsonImpl impl) {
  auto stack = MakeMattsonStack(impl, trace.size());
  for (PageId page : trace) stack->Access(page);
  return FromStack(*stack);
}

MissRatioCurve MissRatioCurve::FromTrace(SpanPair<PageId> trace,
                                         const MrcConfig& config) {
  auto stack = MakeReplayStack(config, trace.size());
  return Replay(trace, *stack);
}

MissRatioCurve MissRatioCurve::Replay(SpanPair<PageId> trace,
                                      MattsonStack& stack) {
  stack.Reset();
  trace.ForEach([&stack](PageId page) { stack.Access(page); });
  return FromStack(stack);
}

std::unique_ptr<MattsonStack> MissRatioCurve::MakeReplayStack(
    const MrcConfig& config, size_t expected_accesses) {
  if (config.sample_rate < 1.0) {
    return std::make_unique<SampledMattsonStack>(config.sample_rate,
                                                 expected_accesses);
  }
  return MakeMattsonStack(config.impl, expected_accesses);
}

double MissRatioCurve::MissRatioAt(uint64_t pages) const {
  if (miss_ratio_.empty()) return 1.0;
  if (pages >= miss_ratio_.size()) return miss_ratio_.back();
  return miss_ratio_[pages];
}

MrcParameters MissRatioCurve::ComputeParameters(const MrcConfig& config) const {
  MrcParameters params;
  const uint64_t cap = config.max_server_pages;
  const double floor = MissRatioAt(cap);
  // Total memory needed: smallest size (<= cap) already at the floor.
  uint64_t total = cap;
  for (uint64_t m = 0; m <= std::min<uint64_t>(cap, max_pages()); ++m) {
    if (MissRatioAt(m) <= floor + config.flatten_epsilon) {
      total = m;
      break;
    }
  }
  params.total_memory_pages = total;
  params.ideal_miss_ratio = MissRatioAt(total);
  // Acceptable memory: smallest size within threshold of ideal.
  const double acceptable_bound =
      params.ideal_miss_ratio + config.acceptable_threshold;
  uint64_t acceptable = total;
  for (uint64_t m = 0; m <= total; ++m) {
    if (MissRatioAt(m) <= acceptable_bound) {
      acceptable = m;
      break;
    }
  }
  params.acceptable_memory_pages = acceptable;
  params.acceptable_miss_ratio = MissRatioAt(acceptable);
  return params;
}

bool MissRatioCurve::SignificantChange(const MrcParameters& stable,
                                       const MrcParameters& current,
                                       const MrcConfig& config) {
  auto changed = [&config](uint64_t before, uint64_t now) {
    const uint64_t abs_delta = now > before ? now - before : before - now;
    // Small working sets jitter by large *relative* amounts while being
    // irrelevant in absolute terms; require a change that also matters
    // against pool sizes (half a typical minimum quota times 4).
    if (abs_delta < 512) return false;
    if (before == 0) return true;
    return static_cast<double>(abs_delta) / static_cast<double>(before) >
           config.significant_change_fraction;
  };
  return changed(stable.total_memory_pages, current.total_memory_pages) ||
         changed(stable.acceptable_memory_pages,
                 current.acceptable_memory_pages);
}

}  // namespace fglb
