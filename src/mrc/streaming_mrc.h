#ifndef FGLB_MRC_STREAMING_MRC_H_
#define FGLB_MRC_STREAMING_MRC_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "mrc/miss_ratio_curve.h"
#include "storage/page.h"

namespace fglb {

// Incremental SHARDS-style miss-ratio-curve estimator over a sliding
// window of the most recent accesses. Instead of replaying the access
// window through a Mattson stack when a violation fires (O(window) on
// the controller's critical path), the estimator is fed every access
// as it happens and keeps a reuse-distance histogram of the window
// continuously up to date, so a curve snapshot is O(histogram) — the
// always-fresh MRC that ROADMAP item 2 calls for.
//
// Mechanics:
//  - Spatially-hashed sampling (same SplitMix64 hash and 1/k rounding
//    as SampledMattsonStack): unsampled references only advance the
//    access clock, so the amortized per-access cost is O(1) with an
//    O(log s) Fenwick update on the ~1/k sampled share (s = sampled
//    references resident in the window).
//  - Sliding-window Mattson: each sampled reference occupies a slot in
//    a Fenwick tree; a page's reuse depth is the number of pages whose
//    newest sampled reference is more recent than its own. When the
//    window slides past a sampled reference it is expired: its
//    histogram contribution is removed, and if it is still its page's
//    newest reference the page leaves the stack. Because that page's
//    slot is by construction the oldest marked slot, removing it
//    shifts no other page's depth — expiry is depth-stable.
//  - The histogram keeps *raw* (sampled-domain) counts; Curve()
//    materializes the scaled view and applies the SHARDS adjusted-mass
//    correction from the snapshot's own totals, exactly like
//    SampledMattsonStack does.
//
// Error model (vs. recomputing the same window from scratch): sampled
// curves carry the usual SHARDS sampling error; in addition, a
// reference early in the window whose previous use lies just *before*
// the window start was scored as a hit when it was recorded (its
// predecessor was still inside the sliding window then) but a
// from-scratch replay scores it cold. At most one such reference
// exists per distinct page, so the divergence is bounded by
// (distinct pages)/(window length) at any curve point — small whenever
// reuse distances are short relative to the window, and measured
// explicitly by the differential tests and bench_streaming_mrc.
//
// Deterministic: no RNG anywhere, so the same access sequence always
// produces a byte-identical curve (live vs. capture replay included).
// Single-threaded like the engine that feeds it.
class StreamingMrcEstimator {
 public:
  struct Options {
    // Hash-sampling rate, rounded to 1/k as in SampledMattsonStack.
    double sample_rate = 1.0 / 8;
    // Sliding window length in (total, not sampled) references;
    // matches the stats collector's ring window by default.
    size_t window_accesses = 30000;
  };

  explicit StreamingMrcEstimator(const Options& options);

  // Feeds one page reference. O(1) for unsampled references.
  void Record(PageId page);

  // Snapshot of the current window's curve: scaled + mass-adjusted
  // histogram through MissRatioCurve::FromHistogram. O(histogram).
  MissRatioCurve Curve() const;

  void Reset();

  uint64_t total_accesses() const { return total_; }
  // References currently covered by the window (= min(total, window)).
  uint64_t in_window_accesses() const {
    return total_ < window_ ? total_ : window_;
  }
  uint64_t window_accesses() const { return window_; }
  uint64_t scale() const { return scale_; }
  // Sampled references resident in the window right now.
  uint64_t sampled_live() const { return entries_.size(); }
  // Fenwick renumber passes (observable so the bench can show the
  // amortized maintenance cost stays bounded).
  uint64_t compactions() const { return compactions_; }

 private:
  // One sampled reference resident in the window.
  struct Entry {
    PageId page = 0;
    uint64_t index = 0;   // global 1-based access number
    uint32_t depth = 0;   // raw reuse depth scored at record time; 0 = cold
  };
  // Stack state of a page with a live sampled reference.
  struct PageState {
    size_t slot = 0;      // newest reference's Fenwick slot
    uint64_t index = 0;   // newest reference's access number
  };

  void FenwickAdd(size_t slot, int64_t delta);
  uint64_t FenwickPrefixSum(size_t slot) const;
  void EnsureCapacity(size_t slot);
  void CompactIfSparse();
  void Expire(const Entry& entry);

  uint64_t scale_;
  uint64_t window_;
  uint64_t total_ = 0;
  std::deque<Entry> entries_;  // window-resident sampled refs, oldest first
  std::unordered_map<PageId, PageState> pages_;
  std::vector<int64_t> tree_;  // 1-based Fenwick tree over slots
  size_t next_slot_ = 0;
  uint64_t marked_ = 0;        // live (marked) slots == pages_.size()
  std::vector<uint64_t> raw_hits_;  // raw depth d+1 -> in-window hits
  uint64_t raw_cold_ = 0;           // in-window cold-scored sampled refs
  uint64_t compactions_ = 0;
};

}  // namespace fglb

#endif  // FGLB_MRC_STREAMING_MRC_H_
