#ifndef FGLB_MRC_OPT_ORACLE_H_
#define FGLB_MRC_OPT_ORACLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "mrc/miss_ratio_curve.h"
#include "storage/page.h"

namespace fglb {

// Belady/OPT oracle over a captured access window. OPT (evict the
// page whose next use is farthest away) is the offline optimum among
// demand-paging policies, so LRU_miss_ratio - OPT_miss_ratio at the
// class's acceptable memory size is the class's *regret*: how much of
// its miss traffic is the replacement policy's fault rather than an
// inherent property of the access pattern. The diagnosis phase
// surfaces this as `regret_vs_opt` in phase=mrc trace events — a class
// with high regret is mistuned (scan thrash, loop just over quota),
// not memory-starved, and more memory is the wrong fix for it.

// Sentinel distance for a reference whose page is never used again.
inline constexpr uint64_t kNoNextUse = ~0ULL;

// Forward (OPT) reuse distances: result[i] is the number of distinct
// pages referenced strictly between position i and the next occurrence
// of trace[i], or kNoNextUse if there is none. Computed with a Fenwick
// tree over first-occurrence marks in O(n log n); the property test
// checks it against an O(n^2) brute-force reference.
std::vector<uint64_t> OptForwardDistances(std::span<const PageId> trace);

// Exact Belady miss ratio of a cache of `cache_pages` pages replaying
// `trace` from cold, via full simulation with a lazy-deletion next-use
// heap: O(n log c). Farthest-next-use eviction is provably optimal, so
// the result is a true lower bound on any demand policy's miss ratio
// over the same trace (the OPT <= LRU property test).
double OptMissRatioAt(std::span<const PageId> trace, uint64_t cache_pages);

// The regret of an LRU(-estimated) curve against OPT at `cache_pages`,
// clamped at zero (a sampled LRU curve can dip below the exact OPT by
// estimation noise; negative regret is meaningless).
double RegretVsOpt(std::span<const PageId> trace,
                   const MissRatioCurve& lru_curve, uint64_t cache_pages);

}  // namespace fglb

#endif  // FGLB_MRC_OPT_ORACLE_H_
