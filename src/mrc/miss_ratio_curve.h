#ifndef FGLB_MRC_MISS_RATIO_CURVE_H_
#define FGLB_MRC_MISS_RATIO_CURVE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/span_pair.h"
#include "mrc/mattson_stack.h"
#include "storage/page.h"

namespace fglb {

// The two MRC parameters the paper attaches to each query-class context
// (§3.3), plus the miss ratios at those sizes.
struct MrcParameters {
  // Smallest of (a) the physical server's memory and (b) the memory at
  // which the curve flattens out ("miss ratio estimated to be 0" in the
  // paper; cold misses put a floor above 0 in any finite trace).
  uint64_t total_memory_pages = 0;
  double ideal_miss_ratio = 0;
  // Smallest memory whose miss ratio is within a fixed threshold of the
  // ideal miss ratio.
  uint64_t acceptable_memory_pages = 0;
  double acceptable_miss_ratio = 0;

  std::string ToString() const;
};

// How the diagnosis phase obtains a class's current curve.
//  - kRecompute: replay the recent access window through a Mattson
//    stack on demand (the paper's behaviour; O(window) at violation
//    time). Kept as the reference implementation for differential
//    testing.
//  - kStreaming: read the per-class StreamingMrcEstimator that is
//    maintained incrementally on every sampled access, so the curve is
//    already fresh when a violation fires.
enum class MrcMode { kRecompute, kStreaming };

const char* MrcModeName(MrcMode mode);
bool ParseMrcMode(const std::string& text, MrcMode* out);

// Policy knobs for curve computation and stable-state comparison.
struct MrcConfig {
  // Physical memory cap used for "total memory needed".
  uint64_t max_server_pages = 8192;
  // "Acceptable" = within this absolute miss-ratio distance of ideal.
  double acceptable_threshold = 0.02;
  // Curve is considered flat once within this of its final value.
  double flatten_epsilon = 1e-4;
  // Relative change (either direction) in total/acceptable memory that
  // counts as a "significant change" during diagnosis (§5.3 flags the
  // no-index BestSeller whose acceptable memory *shrank*).
  double significant_change_fraction = 0.5;
  MattsonImpl impl = MattsonImpl::kFenwick;
  // Hash-sampling rate for Mattson replay (rounded to 1/k): 1.0
  // replays every reference exactly; smaller rates replay only the
  // hash-sampled pages and scale counts back up (SHARDS-style),
  // cutting recomputation cost ~rate-fold. Parameters derived from a
  // sampled curve carry a small relative error (see the accuracy
  // tests), which is why significant_change_fraction is much larger
  // than any sensible rate's error.
  double sample_rate = 1.0;
  // Concurrency of the diagnosis fan-out in LogAnalyzer: total
  // threads including the caller; 1 = fully serial, 0 = use hardware
  // concurrency.
  int analysis_threads = 0;
  // Where DiagnoseMemory gets each class's current curve from (see
  // MrcMode). Streaming mode falls back to recomputation for classes
  // without a warm estimator.
  MrcMode mode = MrcMode::kRecompute;
  // When true, the diagnosis also computes each candidate's Belady/OPT
  // miss ratio over the window and surfaces the LRU-vs-OPT regret at
  // the acceptable memory size in phase=mrc trace events.
  bool opt_regret = false;
};

// Round-trips the capture-relevant MRC knobs (mode, opt_regret)
// through a compact "k=v,k=v" spec string. The all-defaults config
// encodes as "" so captures taken before these knobs existed decode
// unchanged.
std::string MrcSpecString(const MrcConfig& config);
bool ParseMrcSpec(const std::string& text, MrcConfig* config,
                  std::string* error);

// An LRU miss-ratio curve: miss ratio as a function of cache size in
// pages, derived from Mattson stack hit counts. MR(0) = 1 by
// definition; values beyond the largest observed reuse depth stay at
// the cold-miss floor.
class MissRatioCurve {
 public:
  MissRatioCurve() = default;

  static MissRatioCurve FromStack(const MattsonStack& stack);
  static MissRatioCurve FromTrace(std::span<const PageId> trace,
                                  MattsonImpl impl = MattsonImpl::kFenwick);

  // Builds a curve from externally maintained Mattson-style counts:
  // hits[d] = (scaled) hits at stack depth d+1. Like FromStack the
  // curve is normalized by the histogram's own mass (hits + cold);
  // `total_accesses` is the exact reference count the histogram stands
  // for and becomes total_accesses(). The streaming estimator's
  // snapshot path.
  static MissRatioCurve FromHistogram(std::span<const uint64_t> hits,
                                      uint64_t cold_misses,
                                      uint64_t total_accesses);

  // Copy-free variants consuming a (possibly wrapped) ring-window
  // snapshot directly.
  static MissRatioCurve FromTrace(SpanPair<PageId> trace,
                                  const MrcConfig& config);
  // Resets `stack` and replays `trace` through it — the
  // allocation-light path for callers holding a reusable scratch
  // stack.
  static MissRatioCurve Replay(SpanPair<PageId> trace, MattsonStack& stack);

  // The stack a recomputation replays a window through under
  // `config`: sampled when config.sample_rate < 1, else the exact
  // configured implementation, presized for `expected_accesses`.
  static std::unique_ptr<MattsonStack> MakeReplayStack(
      const MrcConfig& config, size_t expected_accesses);

  // Miss ratio of an LRU cache holding `pages` pages.
  double MissRatioAt(uint64_t pages) const;

  // Second read-out of the same reuse-distance histogram for a
  // two-tier hierarchy: the fraction of accesses that miss a
  // `dram_pages` DRAM tier but hit an exclusive `tier2_pages` second
  // tier stacked under it — hits at reuse depths in
  // (dram_pages, dram_pages + tier2_pages]. The blended latency of a
  // (d1, d2) placement is then
  //   (1 - MissRatioAt(d1))·t_mem + Tier2HitRatioAt(d1, d2)·t_ssd +
  //   MissRatioAt(d1 + d2)·t_disk.
  double Tier2HitRatioAt(uint64_t dram_pages, uint64_t tier2_pages) const {
    const double ratio = MissRatioAt(dram_pages) -
                         MissRatioAt(dram_pages + tier2_pages);
    return ratio > 0 ? ratio : 0.0;
  }

  // Largest cache size at which the curve still changes. MissRatioAt is
  // constant beyond this.
  uint64_t max_pages() const {
    return miss_ratio_.empty() ? 0 : miss_ratio_.size() - 1;
  }

  uint64_t total_accesses() const { return total_accesses_; }
  bool empty() const { return total_accesses_ == 0; }

  // Checkpoint support: the raw samples out, and a bit-exact
  // reconstruction in (FGLBCKPT1 stores stable curves this way).
  const std::vector<double>& raw_miss_ratios() const { return miss_ratio_; }
  static MissRatioCurve FromRaw(std::vector<double> miss_ratio,
                                uint64_t total_accesses) {
    MissRatioCurve curve;
    curve.miss_ratio_ = std::move(miss_ratio);
    curve.total_accesses_ = total_accesses;
    return curve;
  }

  // Derives the paper's per-context parameters from this curve.
  MrcParameters ComputeParameters(const MrcConfig& config) const;

  // True when `current` shows a significant change in memory need
  // versus `stable` under `config` (the paper's trigger for keeping a
  // query class a memory-interference suspect). Both directions count:
  // a grown working set signals interference pressure, a collapsed one
  // signals a plan/access-pattern change at the root of the problem.
  static bool SignificantChange(const MrcParameters& stable,
                                const MrcParameters& current,
                                const MrcConfig& config);

 private:
  // miss_ratio_[m] = miss ratio with m pages of cache; index 0 is 1.0.
  std::vector<double> miss_ratio_;
  uint64_t total_accesses_ = 0;
};

}  // namespace fglb

#endif  // FGLB_MRC_MISS_RATIO_CURVE_H_
