#include "mrc/sampled_mattson_stack.h"

#include <algorithm>
#include <cmath>

namespace fglb {

namespace {

// SplitMix64 finalizer: decorrelates the sample set from any structure
// in page-id assignment (sequential scans, per-table offsets).
uint64_t MixPage(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t ScaleFor(double rate) {
  if (!(rate > 0)) return 4096;
  const double k = std::round(1.0 / rate);
  return static_cast<uint64_t>(std::clamp(k, 1.0, 4096.0));
}

}  // namespace

SampledMattsonStack::SampledMattsonStack(double rate, size_t expected_accesses)
    : scale_(ScaleFor(rate)),
      inner_(expected_accesses / scale_ + (expected_accesses ? 1 : 0)) {}

bool SampledMattsonStack::InSample(PageId page) const {
  return MixPage(page) % scale_ == 0;
}

uint64_t SampledMattsonStack::Access(PageId page) {
  ++total_;
  scaled_stale_ = true;
  if (scale_ > 1 && !InSample(page)) return 0;
  const uint64_t depth = inner_.Access(page);
  if (depth == 0) {
    ++raw_cold_;
    return 0;
  }
  // A sampled reuse pair saw ~1/k of the distinct pages between its
  // endpoints, so the true stack depth is ~k times the observed one;
  // the hit it represents stands for ~k hits of the full trace.
  if (raw_hits_.size() < depth) raw_hits_.resize(depth, 0);
  ++raw_hits_[depth - 1];
  return depth * scale_;
}

const std::vector<uint64_t>& SampledMattsonStack::hit_counts() const {
  if (!scaled_stale_) return scaled_hits_;
  scaled_stale_ = false;
  scaled_hits_.assign(raw_hits_.size() * scale_, 0);
  uint64_t raw_mass = raw_cold_;
  for (size_t d = 0; d < raw_hits_.size(); ++d) {
    raw_mass += raw_hits_[d];
    if (raw_hits_[d] != 0) {
      scaled_hits_[(d + 1) * scale_ - 1] = raw_hits_[d] * scale_;
    }
  }
  // Adjusted-mass correction, recomputed from the snapshot's own
  // totals: fold the residual between the exact reference count and
  // the sample's scaled mass into the smallest-distance bucket
  // (SHARDS-adj). A deficit adds phantom near-hits for the mass the
  // sample missed; an excess is taken back out of the same bucket,
  // clamped at zero.
  const int64_t residual = static_cast<int64_t>(total_) -
                           static_cast<int64_t>(raw_mass * scale_);
  if (residual > 0) {
    if (scaled_hits_.empty()) scaled_hits_.resize(1, 0);
    scaled_hits_[0] += static_cast<uint64_t>(residual);
  } else if (residual < 0 && !scaled_hits_.empty()) {
    const uint64_t excess = static_cast<uint64_t>(-residual);
    scaled_hits_[0] -= std::min(scaled_hits_[0], excess);
  }
  return scaled_hits_;
}

void SampledMattsonStack::Reset() {
  inner_.Reset();
  raw_hits_.clear();
  raw_cold_ = 0;
  total_ = 0;
  scaled_hits_.clear();
  scaled_stale_ = true;
}

}  // namespace fglb
