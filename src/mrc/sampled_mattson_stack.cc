#include "mrc/sampled_mattson_stack.h"

#include <algorithm>
#include <cmath>

namespace fglb {

namespace {

// SplitMix64 finalizer: decorrelates the sample set from any structure
// in page-id assignment (sequential scans, per-table offsets).
uint64_t MixPage(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t ScaleFor(double rate) {
  if (!(rate > 0)) return 4096;
  const double k = std::round(1.0 / rate);
  return static_cast<uint64_t>(std::clamp(k, 1.0, 4096.0));
}

}  // namespace

SampledMattsonStack::SampledMattsonStack(double rate, size_t expected_accesses)
    : scale_(ScaleFor(rate)),
      inner_(expected_accesses / scale_ + (expected_accesses ? 1 : 0)) {}

bool SampledMattsonStack::InSample(PageId page) const {
  return MixPage(page) % scale_ == 0;
}

uint64_t SampledMattsonStack::Access(PageId page) {
  ++total_;
  if (scale_ > 1 && !InSample(page)) return 0;
  const uint64_t depth = inner_.Access(page);
  if (depth == 0) {
    cold_misses_ += scale_;
    return 0;
  }
  // A sampled reuse pair saw ~1/k of the distinct pages between its
  // endpoints, so the true stack depth is ~k times the observed one;
  // the hit it represents stands for ~k hits of the full trace.
  const uint64_t scaled_depth = depth * scale_;
  if (hits_.size() < scaled_depth) hits_.resize(scaled_depth, 0);
  hits_[scaled_depth - 1] += scale_;
  return scaled_depth;
}

void SampledMattsonStack::Reset() {
  inner_.Reset();
  hits_.clear();
  cold_misses_ = 0;
  total_ = 0;
}

}  // namespace fglb
