#ifndef FGLB_MRC_SAMPLED_MATTSON_STACK_H_
#define FGLB_MRC_SAMPLED_MATTSON_STACK_H_

#include <cstdint>
#include <vector>

#include "mrc/mattson_stack.h"
#include "storage/page.h"

namespace fglb {

// Spatially hash-sampled Mattson stack in the spirit of SHARDS
// (Waldspurger et al., FAST'15) and the workload-compression line of
// work in PAPERS.md: only pages whose hash lands in the sample are
// replayed through an exact Fenwick stack, and the observed reuse
// depths and hit counts are scaled back up by the sampling factor.
// Sampling by page identity (not by position) preserves reuse
// structure: either every reference to a page is replayed or none is,
// so a sampled reuse pair has ~rate times the true number of distinct
// pages between its endpoints. Replay cost drops ~rate-fold while the
// derived MRC parameters stay within a few percent on realistic
// traces (the accuracy-bound tests pin this down).
//
// Approximations a caller must accept:
//  - Access() returns 0 for unsampled references, indistinguishable
//    from cold misses; per-reference depths are only meaningful for
//    sampled pages (scaled estimates).
//  - hit_counts()/cold_misses()/distinct_pages() are scaled estimates;
//    total_accesses() remains exact (every reference is counted).
//
// The scaled histogram carries the SHARDS "adjusted mass" correction:
// the sample's scaled mass k*(sampled hits + sampled cold) fluctuates
// around the exact reference count, and the residual is folded into
// the smallest-distance bucket so the histogram's mass always equals
// total_accesses(). The correction is recomputed from the *current*
// totals on every snapshot rather than accumulated per access: a class
// whose sampled-page reference share shifts mid-window (a hot-set
// move, a rate step) would otherwise bake a stale correction into the
// counts and the mass would drift from the exact total (the
// RateStep regression test pins this down).
class SampledMattsonStack final : public MattsonStack {
 public:
  // `rate` in (0, 1] is rounded to 1/k for an integer k (clamped to
  // [1, 4096]); k = 1 degenerates to the exact Fenwick stack.
  // `expected_accesses` presizes the inner stack for the *sampled*
  // share of that many references.
  explicit SampledMattsonStack(double rate, size_t expected_accesses = 0);

  uint64_t Access(PageId page) override;
  void Reset() override;
  const std::vector<uint64_t>& hit_counts() const override;
  uint64_t cold_misses() const override { return raw_cold_ * scale_; }
  uint64_t total_accesses() const override { return total_; }
  uint64_t distinct_pages() const override {
    return inner_.distinct_pages() * scale_;
  }

  // The rounded scaling factor k (references kept ~ 1/k).
  uint64_t scale() const { return scale_; }
  // References actually replayed through the inner exact stack.
  uint64_t sampled_accesses() const { return inner_.total_accesses(); }
  // Whether a page belongs to the (deterministic) sample.
  bool InSample(PageId page) const;

 private:
  uint64_t scale_;
  FenwickMattsonStack inner_;
  // Unscaled per-depth hit counts at *raw* (sampled) depths; the
  // scaled, mass-adjusted view is materialized lazily per snapshot.
  std::vector<uint64_t> raw_hits_;
  uint64_t raw_cold_ = 0;
  uint64_t total_ = 0;
  mutable std::vector<uint64_t> scaled_hits_;
  mutable bool scaled_stale_ = true;
};

}  // namespace fglb

#endif  // FGLB_MRC_SAMPLED_MATTSON_STACK_H_
