#ifndef FGLB_MRC_MATTSON_STACK_H_
#define FGLB_MRC_MATTSON_STACK_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "storage/page.h"

namespace fglb {

// Mattson's stack algorithm (Mattson et al., IBM Systems Journal 1970)
// for LRU. Replaying a page-reference trace through it yields, in one
// pass, the hit count an LRU cache of *every* size would have achieved,
// thanks to LRU's inclusion property. hit_counts()[d] is the number of
// references that hit at stack depth d+1, i.e. that a cache of at least
// d+1 pages would have satisfied; cold_misses() counts first-ever
// references (the paper's Hit[infinity]).
class MattsonStack {
 public:
  virtual ~MattsonStack() = default;

  // Replays one reference. Returns the 1-based stack depth of the page,
  // or 0 if this is the first reference to it.
  virtual uint64_t Access(PageId page) = 0;

  // Returns the stack to its freshly-constructed state while keeping
  // allocated capacity, so one instance can be reused as a scratch
  // structure across recomputations instead of reallocating.
  virtual void Reset() = 0;

  virtual const std::vector<uint64_t>& hit_counts() const = 0;
  virtual uint64_t cold_misses() const = 0;
  virtual uint64_t total_accesses() const = 0;
  virtual uint64_t distinct_pages() const = 0;
};

// Reference implementation: explicit LRU list, linear depth search.
// O(depth) per access — simple and obviously correct, used as the
// oracle in tests and for short traces.
class ListMattsonStack final : public MattsonStack {
 public:
  uint64_t Access(PageId page) override;
  void Reset() override;
  const std::vector<uint64_t>& hit_counts() const override { return hits_; }
  uint64_t cold_misses() const override { return cold_misses_; }
  uint64_t total_accesses() const override { return total_; }
  uint64_t distinct_pages() const override { return index_.size(); }

 private:
  std::list<PageId> stack_;  // front = most recently used
  std::unordered_map<PageId, std::list<PageId>::iterator> index_;
  std::vector<uint64_t> hits_;
  uint64_t cold_misses_ = 0;
  uint64_t total_ = 0;
};

// Production implementation: O(log n) per access using a Fenwick tree
// over reference timestamps. Each page's most recent reference owns a
// marked slot; the stack depth of a page equals the number of marked
// slots after its own (= pages referenced more recently). This is what
// makes per-query-class on-line MRC tracking cheap enough to run inside
// the engine.
class FenwickMattsonStack final : public MattsonStack {
 public:
  // `expected_accesses` presizes the tree so a replay of that many
  // references never triggers a capacity rebuild; 0 starts small and
  // grows geometrically on demand.
  explicit FenwickMattsonStack(size_t expected_accesses = 0);

  uint64_t Access(PageId page) override;
  void Reset() override;
  const std::vector<uint64_t>& hit_counts() const override { return hits_; }
  uint64_t cold_misses() const override { return cold_misses_; }
  uint64_t total_accesses() const override { return total_; }
  uint64_t distinct_pages() const override { return last_slot_.size(); }

  // Times the tree had to grow and be rebuilt (0 when presized
  // adequately) — observable so benchmarks can assert the presized
  // path stays rebuild-free.
  uint64_t capacity_rebuilds() const { return capacity_rebuilds_; }

 private:
  void FenwickAdd(size_t slot, int64_t delta);
  uint64_t FenwickPrefixSum(size_t slot) const;  // sum of slots [0, slot]
  void EnsureCapacity(size_t slot);
  void CompactIfSparse();

  std::vector<int64_t> tree_;                    // 1-based Fenwick tree
  std::unordered_map<PageId, size_t> last_slot_;  // page -> newest slot
  size_t next_slot_ = 0;
  uint64_t marked_ = 0;  // number of live (marked) slots
  std::vector<uint64_t> hits_;
  uint64_t cold_misses_ = 0;
  uint64_t total_ = 0;
  uint64_t capacity_rebuilds_ = 0;
};

// Factory used where the implementation choice is a tuning knob.
// `expected_accesses` is a capacity hint (used by the Fenwick
// implementation; ignored by the list oracle).
enum class MattsonImpl { kList, kFenwick };
std::unique_ptr<MattsonStack> MakeMattsonStack(MattsonImpl impl,
                                               size_t expected_accesses = 0);

}  // namespace fglb

#endif  // FGLB_MRC_MATTSON_STACK_H_
