#include "mrc/streaming_mrc.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fglb {

namespace {

// Same SplitMix64 finalizer as SampledMattsonStack, so a page is in
// the streaming sample iff it is in the recompute path's sample — the
// differential tests compare like with like.
uint64_t MixPage(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t ScaleFor(double rate) {
  if (!(rate > 0)) return 4096;
  const double k = std::round(1.0 / rate);
  return static_cast<uint64_t>(std::clamp(k, 1.0, 4096.0));
}

}  // namespace

StreamingMrcEstimator::StreamingMrcEstimator(const Options& options)
    : scale_(ScaleFor(options.sample_rate)),
      window_(options.window_accesses > 0 ? options.window_accesses : 30000),
      tree_(1025, 0) {}

void StreamingMrcEstimator::FenwickAdd(size_t slot, int64_t delta) {
  for (size_t i = slot + 1; i < tree_.size(); i += i & (~i + 1)) {
    tree_[i] += delta;
  }
}

uint64_t StreamingMrcEstimator::FenwickPrefixSum(size_t slot) const {
  int64_t sum = 0;
  for (size_t i = slot + 1; i > 0; i -= i & (~i + 1)) sum += tree_[i];
  assert(sum >= 0);
  return static_cast<uint64_t>(sum);
}

void StreamingMrcEstimator::EnsureCapacity(size_t slot) {
  if (slot + 2 <= tree_.size()) return;
  size_t new_size = tree_.size();
  while (slot + 2 > new_size) new_size *= 2;
  tree_.assign(new_size, 0);
  // Rebuild from the marks (pages_ holds exactly the marked slots).
  for (const auto& [page, state] : pages_) tree_[state.slot + 1] = 1;
  for (size_t i = 1; i < tree_.size(); ++i) {
    const size_t parent = i + (i & (~i + 1));
    if (parent < tree_.size()) tree_[parent] += tree_[i];
  }
}

void StreamingMrcEstimator::CompactIfSparse() {
  // Slots advance forever with the stream, so unlike a replay stack
  // compaction is load-bearing here: without it the tree would grow
  // with the total access count instead of the window population.
  if (next_slot_ < 4096 || next_slot_ < 4 * pages_.size()) return;
  std::vector<std::pair<size_t, PageId>> by_slot;
  by_slot.reserve(pages_.size());
  for (const auto& [page, state] : pages_) {
    by_slot.emplace_back(state.slot, page);
  }
  std::sort(by_slot.begin(), by_slot.end());
  std::fill(tree_.begin(), tree_.end(), 0);
  next_slot_ = 0;
  for (const auto& [old_slot, page] : by_slot) {
    pages_[page].slot = next_slot_;
    FenwickAdd(next_slot_, +1);
    ++next_slot_;
  }
  ++compactions_;
}

void StreamingMrcEstimator::Expire(const Entry& entry) {
  if (entry.depth > 0) {
    assert(raw_hits_.size() >= entry.depth && raw_hits_[entry.depth - 1] > 0);
    --raw_hits_[entry.depth - 1];
  } else {
    assert(raw_cold_ > 0);
    --raw_cold_;
  }
  auto it = pages_.find(entry.page);
  if (it != pages_.end() && it->second.index == entry.index) {
    // Still the page's newest sampled reference: the page falls off
    // the bottom of the stack. Its slot is the oldest marked slot
    // (every other marked slot belongs to a newer reference), so no
    // other page's depth changes.
    FenwickAdd(it->second.slot, -1);
    --marked_;
    pages_.erase(it);
  }
}

void StreamingMrcEstimator::Record(PageId page) {
  ++total_;
  while (!entries_.empty() && entries_.front().index + window_ <= total_) {
    Expire(entries_.front());
    entries_.pop_front();
  }
  if (scale_ > 1 && MixPage(page) % scale_ != 0) return;

  // Grow the tree before touching any marks: EnsureCapacity rebuilds
  // from pages_, which is only consistent with the tree between
  // transitions.
  const size_t slot = next_slot_++;
  EnsureCapacity(slot);
  uint32_t depth = 0;
  auto it = pages_.find(page);
  if (it != pages_.end()) {
    const size_t old_slot = it->second.slot;
    depth = static_cast<uint32_t>(marked_ - FenwickPrefixSum(old_slot) + 1);
    FenwickAdd(old_slot, -1);
    --marked_;
  }
  FenwickAdd(slot, +1);
  ++marked_;
  if (it != pages_.end()) {
    it->second.slot = slot;
    it->second.index = total_;
  } else {
    pages_.emplace(page, PageState{slot, total_});
  }
  if (depth > 0) {
    if (raw_hits_.size() < depth) raw_hits_.resize(depth, 0);
    ++raw_hits_[depth - 1];
  } else {
    ++raw_cold_;
  }
  entries_.push_back(Entry{page, total_, depth});
  CompactIfSparse();
}

MissRatioCurve StreamingMrcEstimator::Curve() const {
  size_t max_depth = raw_hits_.size();
  while (max_depth > 0 && raw_hits_[max_depth - 1] == 0) --max_depth;
  std::vector<uint64_t> scaled(max_depth * scale_, 0);
  uint64_t raw_mass = raw_cold_;
  for (size_t d = 0; d < max_depth; ++d) {
    raw_mass += raw_hits_[d];
    if (raw_hits_[d] != 0) {
      scaled[(d + 1) * scale_ - 1] = raw_hits_[d] * scale_;
    }
  }
  // Per-snapshot adjusted-mass correction against the exact in-window
  // reference count, same policy as SampledMattsonStack::hit_counts().
  const uint64_t in_window = in_window_accesses();
  const int64_t residual = static_cast<int64_t>(in_window) -
                           static_cast<int64_t>(raw_mass * scale_);
  if (residual > 0) {
    if (scaled.empty() && in_window > 0) scaled.resize(1, 0);
    if (!scaled.empty()) scaled[0] += static_cast<uint64_t>(residual);
  } else if (residual < 0 && !scaled.empty()) {
    const uint64_t excess = static_cast<uint64_t>(-residual);
    scaled[0] -= std::min(scaled[0], excess);
  }
  return MissRatioCurve::FromHistogram(scaled, raw_cold_ * scale_, in_window);
}

void StreamingMrcEstimator::Reset() {
  total_ = 0;
  entries_.clear();
  pages_.clear();
  std::fill(tree_.begin(), tree_.end(), 0);
  next_slot_ = 0;
  marked_ = 0;
  raw_hits_.clear();
  raw_cold_ = 0;
  compactions_ = 0;
}

}  // namespace fglb
