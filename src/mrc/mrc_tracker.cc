#include "mrc/mrc_tracker.h"

namespace fglb {

MattsonStack& MrcTracker::ScratchStack(size_t expected_accesses) const {
  if (!scratch_) {
    scratch_ = MissRatioCurve::MakeReplayStack(config_, expected_accesses);
  }
  return *scratch_;
}

void MrcTracker::SetStableFromTrace(SpanPair<PageId> trace) {
  stable_curve_ = MissRatioCurve::Replay(trace, ScratchStack(trace.size()));
  stable_ = stable_curve_.ComputeParameters(config_);
  stable_trace_length_ = trace.size();
}

MrcTracker::Recomputation MrcTracker::Recompute(
    SpanPair<PageId> trace) const {
  if (stable_.has_value() && stable_trace_length_ > 0 &&
      trace.size() > stable_trace_length_) {
    trace = trace.Suffix(stable_trace_length_);
  }
  Recomputation result;
  result.curve = MissRatioCurve::Replay(trace, ScratchStack(trace.size()));
  result.params = result.curve.ComputeParameters(config_);
  result.suspect =
      !stable_.has_value() ||
      MissRatioCurve::SignificantChange(*stable_, result.params, config_);
  return result;
}

MrcTracker::Recomputation MrcTracker::Diagnose(
    const MissRatioCurve& curve) const {
  Recomputation result;
  result.curve = curve;
  result.params = result.curve.ComputeParameters(config_);
  result.suspect =
      !stable_.has_value() ||
      MissRatioCurve::SignificantChange(*stable_, result.params, config_);
  return result;
}

void MrcTracker::SetStableFromCurve(const MissRatioCurve& curve) {
  stable_curve_ = curve;
  stable_ = stable_curve_.ComputeParameters(config_);
  stable_trace_length_ = curve.total_accesses();
}

void MrcTracker::AdoptAsStable(const Recomputation& recomputation) {
  stable_curve_ = recomputation.curve;
  stable_ = recomputation.params;
  if (stable_trace_length_ == 0) {
    stable_trace_length_ = recomputation.curve.total_accesses();
  }
}

}  // namespace fglb
