#include "mrc/opt_oracle.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <utility>

namespace fglb {

namespace {

// Minimal 1-based Fenwick over trace positions.
class PositionFenwick {
 public:
  explicit PositionFenwick(size_t n) : tree_(n + 1, 0) {}

  void Add(size_t pos, int64_t delta) {
    for (size_t i = pos + 1; i < tree_.size(); i += i & (~i + 1)) {
      tree_[i] += delta;
    }
  }

  // Sum over positions [0, pos].
  int64_t PrefixSum(size_t pos) const {
    int64_t sum = 0;
    for (size_t i = pos + 1; i > 0; i -= i & (~i + 1)) sum += tree_[i];
    return sum;
  }

 private:
  std::vector<int64_t> tree_;
};

// next[i] = index of the next occurrence of trace[i], or n if none.
std::vector<size_t> NextOccurrences(std::span<const PageId> trace) {
  const size_t n = trace.size();
  std::vector<size_t> next(n, n);
  std::unordered_map<PageId, size_t> seen;
  seen.reserve(n);
  for (size_t i = n; i-- > 0;) {
    auto it = seen.find(trace[i]);
    if (it != seen.end()) {
      next[i] = it->second;
      it->second = i;
    } else {
      seen.emplace(trace[i], i);
    }
  }
  return next;
}

}  // namespace

std::vector<uint64_t> OptForwardDistances(std::span<const PageId> trace) {
  const size_t n = trace.size();
  std::vector<uint64_t> result(n, kNoNextUse);
  if (n == 0) return result;
  const std::vector<size_t> next = NextOccurrences(trace);
  // Sweep right to left keeping one mark per distinct page in the
  // suffix (i, n-1], at that page's first occurrence there. When
  // position i+1 joins the suffix it becomes its page's first
  // occurrence, displacing the mark at next[i+1] if one exists. The
  // distance for i is then the number of marks strictly between i and
  // next[i] — snippet-style forward stack distance.
  PositionFenwick marks(n);
  for (size_t i = n; i-- > 0;) {
    if (i + 1 < n) {
      marks.Add(i + 1, +1);
      if (next[i + 1] < n) marks.Add(next[i + 1], -1);
    }
    const size_t m = next[i];
    if (m < n) {
      result[i] = static_cast<uint64_t>(marks.PrefixSum(m) -
                                        marks.PrefixSum(i) - 1);
    }
  }
  return result;
}

double OptMissRatioAt(std::span<const PageId> trace, uint64_t cache_pages) {
  const size_t n = trace.size();
  if (n == 0) return 1.0;
  if (cache_pages == 0) return 1.0;
  const std::vector<size_t> next = NextOccurrences(trace);
  // resident: page -> its current next-use position (n = never again).
  // The heap orders candidates by farthest next use with lazy deletion
  // of entries that no longer match the resident map.
  std::unordered_map<PageId, size_t> resident;
  resident.reserve(std::min<size_t>(n, cache_pages));
  std::priority_queue<std::pair<size_t, PageId>> heap;
  uint64_t misses = 0;
  for (size_t i = 0; i < n; ++i) {
    const PageId page = trace[i];
    auto it = resident.find(page);
    if (it != resident.end()) {
      it->second = next[i];
      heap.emplace(next[i], page);
      continue;
    }
    ++misses;
    if (resident.size() >= cache_pages) {
      for (;;) {
        const auto [use, victim] = heap.top();
        heap.pop();
        auto vit = resident.find(victim);
        if (vit != resident.end() && vit->second == use) {
          resident.erase(vit);
          break;
        }
      }
    }
    resident.emplace(page, next[i]);
    heap.emplace(next[i], page);
  }
  return static_cast<double>(misses) / static_cast<double>(n);
}

double RegretVsOpt(std::span<const PageId> trace,
                   const MissRatioCurve& lru_curve, uint64_t cache_pages) {
  const double lru = lru_curve.MissRatioAt(cache_pages);
  const double opt = OptMissRatioAt(trace, cache_pages);
  return std::max(0.0, lru - opt);
}

}  // namespace fglb
