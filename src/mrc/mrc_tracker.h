#ifndef FGLB_MRC_MRC_TRACKER_H_
#define FGLB_MRC_MRC_TRACKER_H_

#include <memory>
#include <optional>
#include <span>

#include "common/span_pair.h"
#include "mrc/miss_ratio_curve.h"
#include "storage/page.h"

namespace fglb {

// Per-query-class MRC state. The paper computes a class's MRC when the
// class is first scheduled, stores its parameters in the stable-state
// record, and recomputes from the recent page-access window only when
// the class shows outliers in memory counters. This class holds that
// lifecycle: a stable baseline plus on-demand recomputation and
// comparison.
//
// Recomputations replay through a per-tracker scratch Mattson stack
// (created once, Reset() between uses), so the hot diagnosis path
// allocates no fresh stack per call; with config.sample_rate < 1 the
// scratch is a hash-sampled stack and replay cost drops ~rate-fold.
// The scratch makes concurrent Recompute calls on the *same* tracker
// unsafe; distinct trackers are independent, which is exactly the
// shape of the parallel per-class diagnosis fan-out.
class MrcTracker {
 public:
  explicit MrcTracker(MrcConfig config) : config_(config) {}

  // Computes the curve from `trace` and installs it as the stable
  // baseline (first scheduling, or after a stable interval re-anchors).
  void SetStableFromTrace(SpanPair<PageId> trace);
  void SetStableFromTrace(std::span<const PageId> trace) {
    SetStableFromTrace(SpanPair<PageId>(trace));
  }

  bool has_stable() const { return stable_.has_value(); }
  const MrcParameters& stable_params() const { return *stable_; }
  const MissRatioCurve& stable_curve() const { return stable_curve_; }

  struct Recomputation {
    MissRatioCurve curve;
    MrcParameters params;
    // True when the class had no baseline (newly scheduled) or the new
    // parameters show a significantly higher memory need — the paper's
    // criterion for keeping the class a memory-interference suspect.
    bool suspect = false;
  };

  // Recomputes from the recent window and diagnoses against the
  // baseline. Does not replace the baseline. To keep the comparison
  // fair, when the input is longer than the baseline trace it is
  // trimmed to the baseline's length (most recent accesses): MRC
  // parameters of weakly-skewed patterns grow with trace length, and
  // comparing a long window against a short baseline would flag
  // phantom growth.
  Recomputation Recompute(SpanPair<PageId> trace) const;
  Recomputation Recompute(std::span<const PageId> trace) const {
    return Recompute(SpanPair<PageId>(trace));
  }

  // Streaming-mode counterpart of Recompute: diagnoses an
  // already-computed curve (from a StreamingMrcEstimator snapshot)
  // against the baseline without any replay. The curve is taken as-is;
  // the estimator's own window bounds the trace length, so no
  // baseline-length trimming applies.
  Recomputation Diagnose(const MissRatioCurve& curve) const;

  // Installs an externally computed curve as the stable baseline
  // (streaming-mode analogue of SetStableFromTrace).
  void SetStableFromCurve(const MissRatioCurve& curve);

  size_t stable_trace_length() const { return stable_trace_length_; }

  // Checkpoint support: reinstalls a serialized stable baseline
  // without disturbing the trace-length bookkeeping the way
  // SetStableFromCurve would (parameters are re-derived from the curve
  // deterministically, so the restored tracker diagnoses identically).
  void RestoreStable(const MissRatioCurve& curve, size_t trace_length) {
    stable_curve_ = curve;
    stable_ = stable_curve_.ComputeParameters(config_);
    stable_trace_length_ = trace_length;
  }

  // Adopts a recomputation as the new stable baseline (after the
  // environment change is accepted, e.g. an index is gone for good).
  void AdoptAsStable(const Recomputation& recomputation);

  const MrcConfig& config() const { return config_; }

 private:
  // The reusable replay stack, created on first use and Reset() after.
  MattsonStack& ScratchStack(size_t expected_accesses) const;

  MrcConfig config_;
  std::optional<MrcParameters> stable_;
  MissRatioCurve stable_curve_;
  size_t stable_trace_length_ = 0;
  mutable std::unique_ptr<MattsonStack> scratch_;
};

}  // namespace fglb

#endif  // FGLB_MRC_MRC_TRACKER_H_
