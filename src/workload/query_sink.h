#ifndef FGLB_WORKLOAD_QUERY_SINK_H_
#define FGLB_WORKLOAD_QUERY_SINK_H_

#include <functional>

#include "workload/query_class.h"

namespace fglb {

// Where clients hand queries off to. The cluster's per-application
// Scheduler implements this; tests can plug in fakes.
class QuerySink {
 public:
  virtual ~QuerySink() = default;

  // Submits one query. `on_complete` fires (through the simulator) when
  // the query finishes, carrying its end-to-end latency in seconds.
  virtual void Submit(const QueryInstance& query,
                      std::function<void(double latency_seconds)>
                          on_complete) = 0;
};

}  // namespace fglb

#endif  // FGLB_WORKLOAD_QUERY_SINK_H_
