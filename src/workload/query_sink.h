#ifndef FGLB_WORKLOAD_QUERY_SINK_H_
#define FGLB_WORKLOAD_QUERY_SINK_H_

#include "sim/inline_callback.h"
#include "workload/query_class.h"

namespace fglb {

// Completion callback for one submitted query, carrying its end-to-end
// latency in seconds. Move-only with small-buffer storage: at
// million-client event rates a std::function here costs one heap
// round-trip per query hop (client → scheduler → replica and back).
using CompletionCallback = InlineCallback<void(double latency_seconds)>;

// Where clients hand queries off to. The cluster's per-application
// Scheduler implements this; tests can plug in fakes.
class QuerySink {
 public:
  virtual ~QuerySink() = default;

  // Submits one query. `on_complete` fires (through the simulator) when
  // the query finishes, carrying its end-to-end latency in seconds.
  virtual void Submit(const QueryInstance& query,
                      CompletionCallback on_complete) = 0;
};

}  // namespace fglb

#endif  // FGLB_WORKLOAD_QUERY_SINK_H_
