#ifndef FGLB_WORKLOAD_RUBIS_H_
#define FGLB_WORKLOAD_RUBIS_H_

#include "workload/application.h"

namespace fglb {

// Synthetic model of the RUBiS auction benchmark (eBay-like) with the
// default bidding mix (~15% writes). SearchItemsByRegion is the
// I/O-heavy class the paper's §5.4/§5.5 scenarios pivot on: a large,
// weakly-skewed working set plus an unclustered scan, contributing the
// large majority of the application's I/O.
struct RubisOptions {
  AppId app_id = 2;
  // Database scale multiplier (1.0 = ~200K pages, ~3 GB).
  double scale = 1.0;
  // First TableId used by this instance; a second RUBiS instance (the
  // paper's Table 3 runs two on separate data) must use a disjoint
  // base.
  TableId table_base = 11;
};

inline constexpr QueryClassId kRubisHome = 1;
inline constexpr QueryClassId kRubisBrowseCategories = 2;
inline constexpr QueryClassId kRubisSearchItemsByCategory = 3;
inline constexpr QueryClassId kRubisSearchItemsByRegion = 4;
inline constexpr QueryClassId kRubisViewItem = 5;
inline constexpr QueryClassId kRubisViewUserInfo = 6;
inline constexpr QueryClassId kRubisViewBidHistory = 7;
inline constexpr QueryClassId kRubisStoreBid = 8;
inline constexpr QueryClassId kRubisStoreComment = 9;
inline constexpr QueryClassId kRubisRegisterItem = 10;
inline constexpr QueryClassId kRubisRegisterUser = 11;
inline constexpr QueryClassId kRubisAboutMe = 12;

ApplicationSpec MakeRubis(const RubisOptions& options = {});

}  // namespace fglb

#endif  // FGLB_WORKLOAD_RUBIS_H_
