#include "workload/oltp.h"

#include <cassert>

namespace fglb {

ApplicationSpec MakeOltp(const OltpOptions& options) {
  ApplicationSpec app;
  app.id = options.app_id;
  app.name = "OLTP";
  app.think_time_seconds = 1.0;
  app.sla_latency_seconds = 1.0;

  const TableId accounts = options.table_base;
  const uint64_t accounts_pages = 20000;

  auto writer = [&](QueryClassId id, const char* name, double weight,
                    uint64_t region_offset) {
    AccessComponent c;
    c.table = accounts;
    c.table_pages = accounts_pages;
    // All writers hit offsets < 512: the same lock stripe (hot rows).
    c.region_offset = region_offset;
    c.region_pages = 200;
    c.kind = AccessComponent::Kind::kPointLookups;
    c.zipf_theta = 1.0;
    c.mean_pages = 6;
    c.write_fraction = 0.6;
    QueryTemplate t;
    t.id = id;
    t.name = name;
    t.components = {c};
    t.fixed_cpu_seconds = 0.010;
    t.is_update = true;
    t.commit_hold_seconds = options.commit_hold_seconds;
    app.templates.push_back(std::move(t));
    app.mix_weights.push_back(weight);
  };
  auto reader = [&](QueryClassId id, const char* name, double weight,
                    uint64_t region_offset) {
    AccessComponent c;
    c.table = accounts;
    c.table_pages = accounts_pages;
    c.region_offset = region_offset;
    c.region_pages = 400;
    c.kind = AccessComponent::Kind::kPointLookups;
    c.zipf_theta = 0.9;
    c.mean_pages = 12;
    QueryTemplate t;
    t.id = id;
    t.name = name;
    t.components = {c};
    t.fixed_cpu_seconds = 0.010;
    app.templates.push_back(std::move(t));
    app.mix_weights.push_back(weight);
  };

  writer(kOltpTransfer, "Transfer", 0.12, 0);
  writer(kOltpDeposit, "Deposit", 0.10, 100);    // same stripe 0
  writer(kOltpWithdraw, "Withdraw", 0.08, 300);  // same stripe 0
  const char* reader_names[kOltpReaderCount] = {
      "Balance", "Statement", "Search",   "Profile", "History",
      "Rates",   "Branches",  "Support",  "Offers"};
  for (int i = 0; i < kOltpReaderCount; ++i) {
    reader(kOltpFirstReader + static_cast<QueryClassId>(i), reader_names[i],
           0.70 / kOltpReaderCount, 1024 + 512 * static_cast<uint64_t>(i));
  }

  assert(app.templates.size() == app.mix_weights.size());
  return app;
}

}  // namespace fglb
