#ifndef FGLB_WORKLOAD_TPCW_H_
#define FGLB_WORKLOAD_TPCW_H_

#include "workload/application.h"

namespace fglb {

// Synthetic model of the TPC-W e-commerce benchmark (on-line book
// store) at the scale the paper uses: 100K items, 2.8M customers,
// ~4 GB database, shopping mix with ~20% writes. Interactions are
// modeled as one query class each; page-access patterns are calibrated
// per class (see DESIGN.md §2 on substitutions).
// The three TPC-W interaction mixes. The paper uses the shopping mix
// ("considered the most representative e-commerce workload by the
// TPC", ~20% writes); browsing (~5%) and ordering (~50%) are provided
// for workload-shift scenarios.
enum class TpcwMix {
  kBrowsing,
  kShopping,
  kOrdering,
};

struct TpcwOptions {
  AppId app_id = 1;
  // Database scale multiplier (1.0 = ~4 GB = ~262K 16 KiB pages).
  double scale = 1.0;
  TpcwMix mix = TpcwMix::kShopping;
  // Whether the O_DATE index exists. Dropping it (the paper's §5.3
  // misconfiguration scenario) turns BestSeller's order_line access
  // from index-assisted lookups into a large unindexed scan.
  bool o_date_index = true;
  // First TableId used by this instance; distinct instances sharing an
  // engine must not overlap.
  TableId table_base = 1;
};

// Query class ids; Fig. 4 of the paper numbers BestSeller #8 and
// NewProducts #9, which we preserve.
inline constexpr QueryClassId kTpcwHome = 1;
inline constexpr QueryClassId kTpcwProductDetail = 2;
inline constexpr QueryClassId kTpcwSearchByAuthor = 3;
inline constexpr QueryClassId kTpcwSearchByTitle = 4;
inline constexpr QueryClassId kTpcwSearchBySubject = 5;
inline constexpr QueryClassId kTpcwShoppingCart = 6;
inline constexpr QueryClassId kTpcwOrderInquiry = 7;
inline constexpr QueryClassId kTpcwBestSeller = 8;
inline constexpr QueryClassId kTpcwNewProducts = 9;
inline constexpr QueryClassId kTpcwOrderDisplay = 10;
inline constexpr QueryClassId kTpcwBuyRequest = 11;
inline constexpr QueryClassId kTpcwBuyConfirm = 12;
inline constexpr QueryClassId kTpcwAdminUpdate = 13;
inline constexpr QueryClassId kTpcwCustomerRegistration = 14;

ApplicationSpec MakeTpcw(const TpcwOptions& options = {});

}  // namespace fglb

#endif  // FGLB_WORKLOAD_TPCW_H_
