#include "workload/client_emulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace fglb {

ClientEmulator::ClientEmulator(Simulator* sim, const ApplicationSpec* app,
                               QuerySink* sink, const LoadFunction* load,
                               uint64_t seed, Options options)
    : sim_(sim),
      app_(app),
      sink_(sink),
      load_(load),
      options_(options),
      rng_(seed) {
  assert(sim && app && sink && load);
}

ClientEmulator::ClientEmulator(Simulator* sim, const ApplicationSpec* app,
                               QuerySink* sink, const LoadFunction* load,
                               uint64_t seed)
    : ClientEmulator(sim, app, sink, load, seed, Options()) {}

void ClientEmulator::Start() {
  if (running_) return;
  running_ = true;
  sim_->ScheduleAfter(0, [this] { ControlTick(); });
  if (options_.cohort) {
    assert(options_.cohort_batch_seconds > 0);
    sim_->ScheduleAfter(options_.cohort_batch_seconds,
                        [this] { BatchTick(); });
  }
}

void ClientEmulator::Stop() { running_ = false; }

void ClientEmulator::ControlTick() {
  if (!running_) {
    retire_pending_ = active_clients_;
    return;
  }
  double target = load_->TargetClients(sim_->Now());
  if (options_.noise_fraction > 0) {
    target *= std::max(0.0, rng_.Normal(1.0, options_.noise_fraction));
  }
  const uint64_t want =
      static_cast<uint64_t>(std::max<long long>(0, std::llround(target)));
  // The live population is active - pending retirements.
  const uint64_t effective = active_clients_ - std::min(active_clients_,
                                                        retire_pending_);
  if (want > effective) {
    for (uint64_t i = effective; i < want; ++i) {
      if (retire_pending_ > 0) {
        // Cancel a pending retirement instead of spawning.
        --retire_pending_;
        continue;
      }
      // Stagger arrivals across the tick to avoid lockstep.
      SpawnClient(rng_.UniformDouble(0, options_.tick_seconds));
    }
  } else if (want < effective) {
    retire_pending_ += effective - want;
  }
  sim_->ScheduleAfter(options_.tick_seconds, [this] { ControlTick(); });
}

void ClientEmulator::SpawnClient(double initial_delay) {
  ++active_clients_;
  const uint64_t id = next_client_id_++;
  const SimTime session_end =
      options_.session_time_seconds > 0
          ? sim_->Now() + rng_.Exponential(options_.session_time_seconds)
          : std::numeric_limits<SimTime>::infinity();
  if (options_.cohort) {
    // First interaction fires directly (like the legacy path, staggered
    // across the tick); completions then feed the idle pool.
    sim_->ScheduleAfter(initial_delay, [this, id, session_end] {
      CohortIssue(id, session_end);
    });
    return;
  }
  sim_->ScheduleAfter(initial_delay, [this, id, session_end] {
    ClientIssue(id, session_end);
  });
}

void ClientEmulator::BatchTick() {
  // Retirements come out of the idle pool first; in-flight clients
  // retire at their completion boundary like the legacy path.
  while (retire_pending_ > 0 && !idle_.empty()) {
    --retire_pending_;
    assert(active_clients_ > 0);
    --active_clients_;
    idle_.pop_back();
  }
  const double delta = options_.cohort_batch_seconds;
  if (!idle_.empty()) {
    // Probability an Exponential(Z') think ends within this batch. The
    // batch discretization adds ~delta/2 of expected extra wait per
    // interaction, so the effective mean compensates by that half-step
    // to keep cohort throughput matching the per-client emulator.
    const double think =
        std::max(app_->think_time_seconds - 0.5 * delta, 0.5 * delta);
    const double p = 1.0 - std::exp(-delta / think);
    const size_t pool = idle_.size();
    const uint64_t waking = rng_.Binomial(pool, p);
    // Move the waking clients to the back (uniform without-replacement
    // selection), then issue them.
    for (uint64_t j = 0; j < waking; ++j) {
      const size_t pick = static_cast<size_t>(rng_.NextUint64(pool - j));
      std::swap(idle_[pick], idle_[pool - 1 - j]);
    }
    for (uint64_t j = 0; j < waking; ++j) {
      const IdleClient client = idle_.back();
      idle_.pop_back();
      CohortIssue(client.id, client.session_end);
    }
  }
  if (!running_ && active_clients_ == 0) return;
  sim_->ScheduleAfter(delta, [this] { BatchTick(); });
}

void ClientEmulator::CohortIssue(uint64_t client_id, SimTime session_end) {
  if (retire_pending_ > 0) {
    --retire_pending_;
    assert(active_clients_ > 0);
    --active_clients_;
    return;
  }
  if (sim_->Now() >= session_end) {
    // Session over: this client leaves; the control loop admits a new
    // one at the next tick to hold the target population.
    assert(active_clients_ > 0);
    --active_clients_;
    return;
  }
  const size_t index = app_->SampleTemplateIndex(rng_);
  QueryInstance query;
  query.app = app_->id;
  query.tmpl = &app_->templates[index];
  query.client_id = client_id;
  query.submit_time = sim_->Now();
  sink_->Submit(query, [this, client_id, session_end](double) {
    ++completed_queries_;
    if (retire_pending_ > 0) {
      --retire_pending_;
      assert(active_clients_ > 0);
      --active_clients_;
      return;
    }
    idle_.push_back(IdleClient{client_id, session_end});
  });
}

void ClientEmulator::ClientThink(uint64_t client_id, SimTime session_end) {
  if (retire_pending_ > 0) {
    --retire_pending_;
    assert(active_clients_ > 0);
    --active_clients_;
    return;
  }
  sim_->ScheduleAfter(rng_.Exponential(app_->think_time_seconds),
                      [this, client_id, session_end] {
                        ClientIssue(client_id, session_end);
                      });
}

void ClientEmulator::ClientIssue(uint64_t client_id, SimTime session_end) {
  if (retire_pending_ > 0) {
    --retire_pending_;
    assert(active_clients_ > 0);
    --active_clients_;
    return;
  }
  if (sim_->Now() >= session_end) {
    // Session over: this client leaves; the control loop admits a new
    // one at the next tick to hold the target population.
    assert(active_clients_ > 0);
    --active_clients_;
    return;
  }
  const size_t index = app_->SampleTemplateIndex(rng_);
  QueryInstance query;
  query.app = app_->id;
  query.tmpl = &app_->templates[index];
  query.client_id = client_id;
  query.submit_time = sim_->Now();
  sink_->Submit(query, [this, client_id, session_end](double) {
    ++completed_queries_;
    ClientThink(client_id, session_end);
  });
}

}  // namespace fglb
