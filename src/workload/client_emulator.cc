#include "workload/client_emulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace fglb {

ClientEmulator::ClientEmulator(Simulator* sim, const ApplicationSpec* app,
                               QuerySink* sink, const LoadFunction* load,
                               uint64_t seed, Options options)
    : sim_(sim),
      app_(app),
      sink_(sink),
      load_(load),
      options_(options),
      rng_(seed) {
  assert(sim && app && sink && load);
}

ClientEmulator::ClientEmulator(Simulator* sim, const ApplicationSpec* app,
                               QuerySink* sink, const LoadFunction* load,
                               uint64_t seed)
    : ClientEmulator(sim, app, sink, load, seed, Options()) {}

void ClientEmulator::Start() {
  if (running_) return;
  running_ = true;
  sim_->ScheduleAfter(0, [this] { ControlTick(); });
}

void ClientEmulator::Stop() { running_ = false; }

void ClientEmulator::ControlTick() {
  if (!running_) {
    retire_pending_ = active_clients_;
    return;
  }
  double target = load_->TargetClients(sim_->Now());
  if (options_.noise_fraction > 0) {
    target *= std::max(0.0, rng_.Normal(1.0, options_.noise_fraction));
  }
  const uint64_t want =
      static_cast<uint64_t>(std::max<long long>(0, std::llround(target)));
  // The live population is active - pending retirements.
  const uint64_t effective = active_clients_ - std::min(active_clients_,
                                                        retire_pending_);
  if (want > effective) {
    for (uint64_t i = effective; i < want; ++i) {
      if (retire_pending_ > 0) {
        // Cancel a pending retirement instead of spawning.
        --retire_pending_;
        continue;
      }
      // Stagger arrivals across the tick to avoid lockstep.
      SpawnClient(rng_.UniformDouble(0, options_.tick_seconds));
    }
  } else if (want < effective) {
    retire_pending_ += effective - want;
  }
  sim_->ScheduleAfter(options_.tick_seconds, [this] { ControlTick(); });
}

void ClientEmulator::SpawnClient(double initial_delay) {
  ++active_clients_;
  const uint64_t id = next_client_id_++;
  const SimTime session_end =
      options_.session_time_seconds > 0
          ? sim_->Now() + rng_.Exponential(options_.session_time_seconds)
          : std::numeric_limits<SimTime>::infinity();
  sim_->ScheduleAfter(initial_delay, [this, id, session_end] {
    ClientIssue(id, session_end);
  });
}

void ClientEmulator::ClientThink(uint64_t client_id, SimTime session_end) {
  if (retire_pending_ > 0) {
    --retire_pending_;
    assert(active_clients_ > 0);
    --active_clients_;
    return;
  }
  sim_->ScheduleAfter(rng_.Exponential(app_->think_time_seconds),
                      [this, client_id, session_end] {
                        ClientIssue(client_id, session_end);
                      });
}

void ClientEmulator::ClientIssue(uint64_t client_id, SimTime session_end) {
  if (retire_pending_ > 0) {
    --retire_pending_;
    assert(active_clients_ > 0);
    --active_clients_;
    return;
  }
  if (sim_->Now() >= session_end) {
    // Session over: this client leaves; the control loop admits a new
    // one at the next tick to hold the target population.
    assert(active_clients_ > 0);
    --active_clients_;
    return;
  }
  const size_t index = app_->SampleTemplateIndex(rng_);
  QueryInstance query;
  query.app = app_->id;
  query.tmpl = &app_->templates[index];
  query.client_id = client_id;
  query.submit_time = sim_->Now();
  sink_->Submit(query, [this, client_id, session_end](double) {
    ++completed_queries_;
    ClientThink(client_id, session_end);
  });
}

}  // namespace fglb
