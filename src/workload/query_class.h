#ifndef FGLB_WORKLOAD_QUERY_CLASS_H_
#define FGLB_WORKLOAD_QUERY_CLASS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "storage/page.h"

namespace fglb {

// Application identifier within the shared cluster.
using AppId = uint32_t;

// Query class identifier within an application. The paper's scheduling
// unit: "all query instances of an application with the same query
// template but different arguments".
using QueryClassId = uint32_t;

// (app, class) packed into one key; used to tag buffer-pool partitions,
// statistics, signatures and placements cluster-wide.
using ClassKey = uint64_t;

constexpr ClassKey MakeClassKey(AppId app, QueryClassId cls) {
  return (static_cast<uint64_t>(app) << 32) | cls;
}
constexpr AppId AppOf(ClassKey key) { return static_cast<AppId>(key >> 32); }
constexpr QueryClassId ClassOf(ClassKey key) {
  return static_cast<QueryClassId>(key & 0xFFFFFFFFULL);
}

// One table-access building block of a query template. A template is a
// list of these; each generates a burst of page references per query
// instance.
struct AccessComponent {
  enum class Kind : uint8_t {
    // Index-assisted point reads: pages drawn Zipf-skewed from the
    // region, spread pseudo-randomly (random I/O on a miss).
    kPointLookups,
    // Unindexed range/full scan: a contiguous sequential run inside the
    // region (read-ahead eligible).
    kSequentialScan,
  };

  TableId table = 0;
  uint64_t table_pages = 0;
  // Sub-region actually touched; region_pages == 0 means whole table.
  uint64_t region_offset = 0;
  uint64_t region_pages = 0;

  Kind kind = Kind::kPointLookups;
  // Zipf skew of page popularity for point lookups (0 = uniform).
  double zipf_theta = 0.9;
  // Expected pages touched by this component per query instance.
  double mean_pages = 8;
  // Fraction of touched pages also written.
  double write_fraction = 0;

  uint64_t EffectiveRegionPages() const {
    return region_pages > 0 ? region_pages : table_pages;
  }
};

// A query template ("query class" once instantiated with arguments).
struct QueryTemplate {
  QueryClassId id = 0;
  std::string name;
  std::vector<AccessComponent> components;
  // CPU demand: fixed parse/plan/network cost plus per-page processing.
  double fixed_cpu_seconds = 0.002;
  double cpu_seconds_per_page = 30e-6;
  // Update templates run on every replica (read-one, write-all).
  bool is_update = false;
  // How long the commit critical section holds this query's write locks
  // (base cost; per-page write work is added on top). A misbehaving
  // transaction that holds locks too long is modeled by inflating this.
  double commit_hold_seconds = 0.0005;

  double MeanPages() const {
    double total = 0;
    for (const auto& c : components) total += c.mean_pages;
    return total;
  }
};

struct QuerySpan;

// One in-flight query instance, created by the client emulator and
// routed by a scheduler to a replica.
struct QueryInstance {
  AppId app = 0;
  const QueryTemplate* tmpl = nullptr;
  uint64_t client_id = 0;
  SimTime submit_time = 0;
  // Sampled-tracing recorder; null for unsampled queries (the common
  // case). Owned by the SpanTracer, threaded scheduler -> replica.
  QuerySpan* span = nullptr;

  ClassKey class_key() const { return MakeClassKey(app, tmpl->id); }
};

}  // namespace fglb

#endif  // FGLB_WORKLOAD_QUERY_CLASS_H_
