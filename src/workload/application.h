#ifndef FGLB_WORKLOAD_APPLICATION_H_
#define FGLB_WORKLOAD_APPLICATION_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "workload/query_class.h"

namespace fglb {

// Everything the cluster needs to know about one hosted database
// application: its query classes, the workload mix over them, client
// behaviour, and its service level agreement.
struct ApplicationSpec {
  AppId id = 0;
  std::string name;
  std::vector<QueryTemplate> templates;
  // Probability weight of each template in the interaction mix;
  // parallel to `templates`.
  std::vector<double> mix_weights;
  // Mean client think time between interactions (exponential).
  double think_time_seconds = 1.0;
  // SLA: average query latency bound per measurement interval (paper
  // §4 uses 1 second for all applications).
  double sla_latency_seconds = 1.0;

  const QueryTemplate* FindTemplate(QueryClassId id) const;
  const QueryTemplate* FindTemplateByName(std::string_view name) const;

  // Samples a template index according to the mix.
  size_t SampleTemplateIndex(Rng& rng) const;

  // Fraction of the mix weight on update templates.
  double WriteFraction() const;
};

}  // namespace fglb

#endif  // FGLB_WORKLOAD_APPLICATION_H_
