#ifndef FGLB_WORKLOAD_TRACE_H_
#define FGLB_WORKLOAD_TRACE_H_

#include <string>
#include <vector>

#include "storage/page.h"
#include "workload/query_class.h"

namespace fglb {

// One record of a per-class page-access trace: which class touched
// which page, and how. The paper's prototype logs these from the
// instrumented engine and analyzes them off-line (its Table 1 is
// produced by a trace-driven buffer-pool simulation); this module is
// that log format.
struct TraceRecord {
  ClassKey class_key = 0;
  PageAccess access;
};

// Serializes records to a file in the v2 compact binary format:
// magic "FGLBTRC2", varint record count, then per record a flags byte
// plus zigzag-varint deltas of class key and page id, all behind a
// trailing CRC-32. Returns false on I/O error.
bool WriteTrace(const std::string& path,
                const std::vector<TraceRecord>& records);

// Reads a trace file written by WriteTrace — either the current v2
// format or the legacy v1 fixed-width format ("FGLBTRC1"). Returns
// false on I/O error or malformed contents: truncated files, trailing
// garbage and (v2) checksum mismatches are all rejected, with *records
// left empty.
bool ReadTrace(const std::string& path, std::vector<TraceRecord>* records);

// Filters a trace to one class's page ids, preserving order — the
// input shape MRC computation expects.
std::vector<PageId> PagesOfClass(const std::vector<TraceRecord>& records,
                                 ClassKey key);

}  // namespace fglb

#endif  // FGLB_WORKLOAD_TRACE_H_
