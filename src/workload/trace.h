#ifndef FGLB_WORKLOAD_TRACE_H_
#define FGLB_WORKLOAD_TRACE_H_

#include <string>
#include <vector>

#include "storage/page.h"
#include "workload/query_class.h"

namespace fglb {

// One record of a per-class page-access trace: which class touched
// which page, and how. The paper's prototype logs these from the
// instrumented engine and analyzes them off-line (its Table 1 is
// produced by a trace-driven buffer-pool simulation); this module is
// that log format.
struct TraceRecord {
  ClassKey class_key = 0;
  PageAccess access;
};

// Serializes records to a file in a compact binary format (magic +
// version header, fixed-width records). Returns false on I/O error.
bool WriteTrace(const std::string& path,
                const std::vector<TraceRecord>& records);

// Reads a trace file written by WriteTrace. Returns false on I/O error
// or malformed contents (in which case *records is left empty).
bool ReadTrace(const std::string& path, std::vector<TraceRecord>* records);

// Filters a trace to one class's page ids, preserving order — the
// input shape MRC computation expects.
std::vector<PageId> PagesOfClass(const std::vector<TraceRecord>& records,
                                 ClassKey key);

}  // namespace fglb

#endif  // FGLB_WORKLOAD_TRACE_H_
