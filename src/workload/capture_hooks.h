#ifndef FGLB_WORKLOAD_CAPTURE_HOOKS_H_
#define FGLB_WORKLOAD_CAPTURE_HOOKS_H_

#include <vector>

#include "storage/page.h"
#include "workload/query_class.h"

namespace fglb {

// Capture/replay hook interfaces. They live in the workload layer so
// the scheduler (cluster) and the database engine can carry optional
// hook pointers without depending on the replay subsystem that
// implements them; src/replay/ provides the concrete recorder (capture
// writer) and source (capture-driven replay).

// Observes every query arrival at a scheduler, in submission order.
class ArrivalRecorder {
 public:
  virtual ~ArrivalRecorder() = default;
  virtual void OnArrival(const QueryInstance& query) = 0;
};

// Observes every query execution on an engine — the concrete
// page-access string one admission produced — in admission order.
class ExecutionRecorder {
 public:
  virtual ~ExecutionRecorder() = default;
  virtual void OnExecution(int replica_id, ClassKey key,
                           const std::vector<PageAccess>& accesses) = 0;
};

// Supplies recorded page-access strings during replay. An engine with
// a source installed asks it first and only falls back to generating
// accesses from the query template when the source returns false (the
// replayer counts those fallbacks as divergence).
class AccessReplaySource {
 public:
  virtual ~AccessReplaySource() = default;
  // Appends the next recorded access string of `key` to *out (not
  // cleared). Returns false when no recorded execution remains.
  virtual bool NextAccesses(ClassKey key, std::vector<PageAccess>* out) = 0;
};

}  // namespace fglb

#endif  // FGLB_WORKLOAD_CAPTURE_HOOKS_H_
