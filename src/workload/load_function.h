#ifndef FGLB_WORKLOAD_LOAD_FUNCTION_H_
#define FGLB_WORKLOAD_LOAD_FUNCTION_H_

#include <memory>
#include <utility>
#include <vector>

#include "sim/simulator.h"

namespace fglb {

// Target number of emulated clients as a function of simulated time.
// The client emulator tracks this (plus noise), modeling load bursts
// and the paper's Fig. 3 sinusoid.
class LoadFunction {
 public:
  virtual ~LoadFunction() = default;
  virtual double TargetClients(SimTime t) const = 0;
};

class ConstantLoad final : public LoadFunction {
 public:
  explicit ConstantLoad(double clients) : clients_(clients) {}
  double TargetClients(SimTime) const override { return clients_; }

 private:
  double clients_;
};

// base + amplitude * sin(2*pi * t / period), floored at zero.
class SineLoad final : public LoadFunction {
 public:
  SineLoad(double base, double amplitude, double period_seconds);
  double TargetClients(SimTime t) const override;

 private:
  double base_;
  double amplitude_;
  double period_;
};

// Piecewise-constant schedule: (start_time, clients) steps, sorted by
// time. Before the first step the load is zero.
class StepLoad final : public LoadFunction {
 public:
  explicit StepLoad(std::vector<std::pair<SimTime, double>> steps)
      : steps_(std::move(steps)) {}
  double TargetClients(SimTime t) const override;

 private:
  std::vector<std::pair<SimTime, double>> steps_;
};

}  // namespace fglb

#endif  // FGLB_WORKLOAD_LOAD_FUNCTION_H_
