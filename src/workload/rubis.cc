#include "workload/rubis.h"

#include <cassert>
#include <cmath>
#include <map>

namespace fglb {

namespace {

uint64_t Scaled(double scale, uint64_t pages) {
  return std::max<uint64_t>(64, static_cast<uint64_t>(pages * scale));
}

// Disjoint per-class hot regions (see tpcw.cc for rationale).
class RegionAllocator {
 public:
  uint64_t Take(TableId table, uint64_t table_pages, uint64_t pages) {
    uint64_t& cursor = cursors_[table];
    assert(cursor + pages <= table_pages);
    (void)table_pages;
    const uint64_t offset = cursor;
    cursor += pages;
    return offset;
  }

 private:
  std::map<TableId, uint64_t> cursors_;
};

}  // namespace

ApplicationSpec MakeRubis(const RubisOptions& options) {
  ApplicationSpec app;
  app.id = options.app_id;
  app.name = "RUBiS";
  app.think_time_seconds = 1.0;
  app.sla_latency_seconds = 1.0;

  const double s = options.scale;
  const TableId items = options.table_base + 0;
  const TableId users = options.table_base + 1;
  const TableId bids = options.table_base + 2;
  const TableId comments = options.table_base + 3;
  const TableId categories = options.table_base + 4;
  const TableId old_items = options.table_base + 5;
  const uint64_t items_pages = Scaled(s, 30000);
  const uint64_t users_pages = Scaled(s, 40000);
  const uint64_t bids_pages = Scaled(s, 50000);
  const uint64_t comments_pages = Scaled(s, 20000);
  const uint64_t categories_pages = Scaled(s, 1000);
  const uint64_t old_items_pages = Scaled(s, 60000);

  RegionAllocator regions;
  auto hot = [&regions, s](TableId table, uint64_t table_pages,
                           uint64_t region_pages, double theta, double mean,
                           double write_fraction = 0) {
    AccessComponent c;
    c.table = table;
    c.table_pages = table_pages;
    c.region_pages = Scaled(s, region_pages);
    c.region_offset = regions.Take(table, table_pages, c.region_pages);
    c.kind = AccessComponent::Kind::kPointLookups;
    c.zipf_theta = theta;
    c.mean_pages = mean;
    c.write_fraction = write_fraction;
    return c;
  };
  auto scan = [&regions, s](TableId table, uint64_t table_pages,
                            uint64_t region_pages, double mean) {
    AccessComponent c;
    c.table = table;
    c.table_pages = table_pages;
    c.region_pages = Scaled(s, region_pages);
    c.region_offset = regions.Take(table, table_pages, c.region_pages);
    c.kind = AccessComponent::Kind::kSequentialScan;
    c.mean_pages = mean;
    return c;
  };

  auto add = [&app](QueryClassId id, const char* name, double weight,
                    bool is_update, double fixed_cpu,
                    std::vector<AccessComponent> components) {
    QueryTemplate t;
    t.id = id;
    t.name = name;
    t.components = std::move(components);
    t.fixed_cpu_seconds = fixed_cpu;
    t.cpu_seconds_per_page = 25e-6;
    t.is_update = is_update;
    app.templates.push_back(std::move(t));
    app.mix_weights.push_back(weight);
  };

  add(kRubisHome, "Home", 0.06, false, 0.008,
      {hot(categories, categories_pages, 64, 1.0, 3)});
  add(kRubisBrowseCategories, "BrowseCategories", 0.08, false, 0.008,
      {hot(categories, categories_pages, 80, 0.9, 5)});
  add(kRubisSearchItemsByCategory, "SearchItemsByCategory", 0.22, false,
      0.014, {hot(items, items_pages, 320, 0.9, 40)});
  // SearchItemsByRegion: the items-by-region secondary index is poorly
  // clustered, so results spray point reads across a large, weakly
  // skewed region, plus a scan over closed auctions. Its working set
  // dominates the application and approaches a full 128 MB pool on its
  // own (the paper measures ~7906 pages acceptable memory), and it
  // contributes the large majority of RUBiS's I/O.
  add(kRubisSearchItemsByRegion, "SearchItemsByRegion", 0.12, false, 0.020,
      {hot(items, items_pages, 9500, 0.3, 140),
       scan(old_items, old_items_pages, 55000, 400)});
  add(kRubisViewItem, "ViewItem", 0.22, false, 0.009,
      {hot(items, items_pages, 200, 1.0, 8)});
  add(kRubisViewUserInfo, "ViewUserInfo", 0.08, false, 0.009,
      {hot(users, users_pages, 160, 0.9, 8)});
  add(kRubisViewBidHistory, "ViewBidHistory", 0.06, false, 0.012,
      {hot(bids, bids_pages, 160, 0.8, 15),
       hot(users, users_pages, 80, 0.9, 4)});
  add(kRubisStoreBid, "StoreBid", 0.09, true, 0.012,
      {hot(bids, bids_pages, 120, 1.1, 5, /*write_fraction=*/0.8),
       hot(items, items_pages, 80, 1.0, 3)});
  add(kRubisStoreComment, "StoreComment", 0.03, true, 0.012,
      {hot(comments, comments_pages, 80, 1.0, 4, /*write_fraction=*/0.8)});
  add(kRubisRegisterItem, "RegisterItem", 0.02, true, 0.012,
      {hot(items, items_pages, 80, 0.8, 5, /*write_fraction=*/0.6)});
  add(kRubisRegisterUser, "RegisterUser", 0.01, true, 0.012,
      {hot(users, users_pages, 80, 0.6, 4, /*write_fraction=*/0.6)});
  add(kRubisAboutMe, "AboutMe", 0.01, false, 0.012,
      {hot(users, users_pages, 80, 0.9, 6),
       hot(bids, bids_pages, 80, 0.8, 12),
       hot(comments, comments_pages, 80, 0.8, 6)});

  assert(app.templates.size() == app.mix_weights.size());
  return app;
}

}  // namespace fglb
