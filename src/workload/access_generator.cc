#include "workload/access_generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fglb {

namespace {

// Draws the number of pages this execution touches: mean +/- 30%,
// at least one page.
uint64_t DrawCount(double mean, Rng& rng) {
  const double x = mean * rng.UniformDouble(0.7, 1.3);
  return std::max<uint64_t>(1, static_cast<uint64_t>(std::llround(x)));
}

}  // namespace

const ZipfGenerator& AccessGenerator::SamplerFor(uint64_t n, double theta) {
  const auto key = std::make_pair(n, theta);
  auto it = samplers_.find(key);
  if (it == samplers_.end()) {
    it = samplers_.emplace(key, ZipfGenerator(n, theta)).first;
  }
  return it->second;
}

void AccessGenerator::GeneratePointLookups(const AccessComponent& component,
                                           Rng& rng,
                                           std::vector<PageAccess>* out) {
  const uint64_t region = component.EffectiveRegionPages();
  assert(region > 0);
  const ZipfGenerator& zipf = SamplerFor(region, component.zipf_theta);
  const uint64_t count = DrawCount(component.mean_pages, rng);
  out->reserve(out->size() + count);
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t rank = zipf.Sample(rng);
    // Scramble so popular pages are spread over the region instead of
    // packed at its start (popularity, not position, is skewed).
    const uint64_t offset =
        component.region_offset + ScrambleToDomain(rank, region);
    PageAccess access;
    access.page = MakePageId(component.table, offset);
    access.kind = AccessKind::kRandom;
    access.is_write = component.write_fraction > 0 &&
                      rng.Bernoulli(component.write_fraction);
    out->push_back(access);
  }
}

void AccessGenerator::GenerateSequentialScan(const AccessComponent& component,
                                             Rng& rng,
                                             std::vector<PageAccess>* out) {
  const uint64_t region = component.EffectiveRegionPages();
  assert(region > 0);
  uint64_t length = DrawCount(component.mean_pages, rng);
  length = std::min(length, region);
  // Extent-aligned start anywhere in the region; the run wraps within
  // the region like a circular scan of a clustered index range.
  uint64_t start = rng.NextUint64(region);
  start -= start % kExtentPages;
  out->reserve(out->size() + length);
  for (uint64_t i = 0; i < length; ++i) {
    const uint64_t offset = component.region_offset + (start + i) % region;
    PageAccess access;
    access.page = MakePageId(component.table, offset);
    access.kind = AccessKind::kSequential;
    access.is_write = component.write_fraction > 0 &&
                      rng.Bernoulli(component.write_fraction);
    out->push_back(access);
  }
}

void AccessGenerator::Generate(const QueryTemplate& tmpl, Rng& rng,
                               std::vector<PageAccess>* out) {
  for (const auto& component : tmpl.components) {
    switch (component.kind) {
      case AccessComponent::Kind::kPointLookups:
        GeneratePointLookups(component, rng, out);
        break;
      case AccessComponent::Kind::kSequentialScan:
        GenerateSequentialScan(component, rng, out);
        break;
    }
  }
}

}  // namespace fglb
