#include "workload/tpcw.h"

#include <cassert>
#include <cmath>
#include <map>

namespace fglb {

namespace {

uint64_t Scaled(double scale, uint64_t pages) {
  return std::max<uint64_t>(64, static_cast<uint64_t>(pages * scale));
}

// Hands out disjoint hot regions within each table. Each query class
// gets its own slice, which keeps per-class MRC parameters additive:
// the quota planner sums acceptable memory across classes, and
// overlapping hot sets would make that sum double-count. (Real classes
// share pages; the slices model each class's *marginal* footprint.)
class RegionAllocator {
 public:
  // Returns the offset of a fresh `pages`-page region in `table`.
  uint64_t Take(TableId table, uint64_t table_pages, uint64_t pages) {
    uint64_t& cursor = cursors_[table];
    assert(cursor + pages <= table_pages);
    (void)table_pages;
    const uint64_t offset = cursor;
    cursor += pages;
    return offset;
  }

 private:
  std::map<TableId, uint64_t> cursors_;
};

}  // namespace

ApplicationSpec MakeTpcw(const TpcwOptions& options) {
  ApplicationSpec app;
  app.id = options.app_id;
  app.name = "TPC-W";
  app.think_time_seconds = 1.0;
  app.sla_latency_seconds = 1.0;

  const double s = options.scale;
  // Tables, sized to total ~262K pages (~4 GB) at scale 1.0.
  const TableId item = options.table_base + 0;
  const TableId customer = options.table_base + 1;
  const TableId orders = options.table_base + 2;
  const TableId order_line = options.table_base + 3;
  const TableId author = options.table_base + 4;
  const TableId address = options.table_base + 5;
  const TableId cc_xacts = options.table_base + 6;
  const uint64_t item_pages = Scaled(s, 20000);
  const uint64_t customer_pages = Scaled(s, 80000);
  const uint64_t orders_pages = Scaled(s, 30000);
  const uint64_t order_line_pages = Scaled(s, 110000);
  const uint64_t author_pages = Scaled(s, 4000);
  const uint64_t address_pages = Scaled(s, 12000);
  const uint64_t cc_xacts_pages = Scaled(s, 8000);

  RegionAllocator regions;
  auto hot = [&regions, s](TableId table, uint64_t table_pages,
                           uint64_t region_pages, double theta, double mean,
                           double write_fraction = 0) {
    AccessComponent c;
    c.table = table;
    c.table_pages = table_pages;
    c.region_pages = Scaled(s, region_pages);
    c.region_offset = regions.Take(table, table_pages, c.region_pages);
    c.kind = AccessComponent::Kind::kPointLookups;
    c.zipf_theta = theta;
    c.mean_pages = mean;
    c.write_fraction = write_fraction;
    return c;
  };
  auto scan = [&regions, s](TableId table, uint64_t table_pages,
                            uint64_t region_pages, double mean) {
    AccessComponent c;
    c.table = table;
    c.table_pages = table_pages;
    c.region_pages = Scaled(s, region_pages);
    c.region_offset = regions.Take(table, table_pages, c.region_pages);
    c.kind = AccessComponent::Kind::kSequentialScan;
    c.mean_pages = mean;
    return c;
  };

  // Mix weights: shopping is the calibrated default; browsing shifts
  // weight from update interactions to browse/search ones, ordering the
  // other way. Weights are renormalized below.
  auto mix_weight = [&options](double shopping_weight, bool is_update) {
    switch (options.mix) {
      case TpcwMix::kShopping:
        return shopping_weight;
      case TpcwMix::kBrowsing:
        return is_update ? shopping_weight * 0.2 : shopping_weight * 1.2;
      case TpcwMix::kOrdering:
        return is_update ? shopping_weight * 2.8 : shopping_weight * 0.6;
    }
    return shopping_weight;
  };
  auto add = [&app, &mix_weight](QueryClassId id, const char* name,
                                 double weight, bool is_update,
                                 double fixed_cpu,
                                 std::vector<AccessComponent> components) {
    QueryTemplate t;
    t.id = id;
    t.name = name;
    t.components = std::move(components);
    t.fixed_cpu_seconds = fixed_cpu;
    t.cpu_seconds_per_page = 25e-6;
    t.is_update = is_update;
    app.templates.push_back(std::move(t));
    app.mix_weights.push_back(mix_weight(weight, is_update));
  };

  add(kTpcwHome, "Home", 0.16, false, 0.010,
      {hot(item, item_pages, 240, 0.9, 10),
       hot(customer, customer_pages, 160, 0.9, 4)});
  add(kTpcwProductDetail, "ProductDetail", 0.23, false, 0.010,
      {hot(item, item_pages, 360, 0.9, 12),
       hot(author, author_pages, 120, 0.9, 3)});
  add(kTpcwSearchByAuthor, "SearchByAuthor", 0.06, false, 0.014,
      {hot(author, author_pages, 200, 0.9, 8),
       hot(item, item_pages, 280, 0.8, 30)});
  add(kTpcwSearchByTitle, "SearchByTitle", 0.08, false, 0.014,
      {hot(item, item_pages, 320, 0.8, 40)});
  add(kTpcwSearchBySubject, "SearchBySubject", 0.06, false, 0.014,
      {hot(item, item_pages, 280, 0.85, 35)});
  add(kTpcwShoppingCart, "ShoppingCart", 0.07, true, 0.012,
      {hot(item, item_pages, 200, 0.9, 10),
       hot(customer, customer_pages, 120, 0.9, 2, /*write_fraction=*/0.5)});
  add(kTpcwOrderInquiry, "OrderInquiry", 0.04, false, 0.010,
      {hot(orders, orders_pages, 120, 0.8, 6),
       hot(customer, customer_pages, 120, 0.9, 3)});

  // BestSeller: "best selling items of the last 3333 orders". With the
  // O_DATE index present it walks recent order_line entries via the
  // index (a large but cacheable working set, the dominant memory need
  // in TPC-W); without it, it scans a huge unindexed chunk of
  // order_line (flat MRC, read-ahead heavy) plus the same item probes.
  if (options.o_date_index) {
    add(kTpcwBestSeller, "BestSeller", 0.05, false, 0.018,
        {hot(order_line, order_line_pages, 2500, 0.55, 90),
         hot(item, item_pages, 240, 0.9, 40)});
  } else {
    add(kTpcwBestSeller, "BestSeller", 0.05, false, 0.018,
        {scan(order_line, order_line_pages, 100000, 12000),
         hot(item, item_pages, 240, 0.9, 40)});
  }

  add(kTpcwNewProducts, "NewProducts", 0.05, false, 0.012,
      {hot(item, item_pages, 320, 0.5, 60)});
  add(kTpcwOrderDisplay, "OrderDisplay", 0.03, false, 0.010,
      {hot(orders, orders_pages, 160, 0.8, 10),
       hot(order_line, order_line_pages, 160, 0.7, 10)});
  add(kTpcwBuyRequest, "BuyRequest", 0.06, true, 0.012,
      {hot(customer, customer_pages, 160, 0.9, 6, /*write_fraction=*/0.3),
       hot(address, address_pages, 120, 0.8, 2)});
  add(kTpcwBuyConfirm, "BuyConfirm", 0.05, true, 0.016,
      {hot(orders, orders_pages, 120, 1.2, 8, /*write_fraction=*/0.8),
       hot(order_line, order_line_pages, 120, 1.2, 10,
           /*write_fraction=*/0.8),
       hot(cc_xacts, cc_xacts_pages, 80, 1.0, 2, /*write_fraction=*/0.9)});
  add(kTpcwAdminUpdate, "AdminUpdate", 0.02, true, 0.012,
      {hot(item, item_pages, 120, 0.9, 6, /*write_fraction=*/0.5)});
  add(kTpcwCustomerRegistration, "CustomerRegistration", 0.04, true, 0.012,
      {hot(customer, customer_pages, 200, 0.6, 4, /*write_fraction=*/0.6)});

  assert(app.templates.size() == app.mix_weights.size());
  // Renormalize the mix (browsing/ordering scaling changes the sum).
  double total = 0;
  for (double w : app.mix_weights) total += w;
  for (double& w : app.mix_weights) w /= total;
  return app;
}

}  // namespace fglb
