#include "workload/load_function.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

namespace fglb {

SineLoad::SineLoad(double base, double amplitude, double period_seconds)
    : base_(base), amplitude_(amplitude), period_(period_seconds) {
  assert(period_seconds > 0);
}

double SineLoad::TargetClients(SimTime t) const {
  const double value =
      base_ + amplitude_ * std::sin(2.0 * std::numbers::pi * t / period_);
  return std::max(0.0, value);
}

double StepLoad::TargetClients(SimTime t) const {
  double current = 0;
  for (const auto& [start, clients] : steps_) {
    if (t >= start) {
      current = clients;
    } else {
      break;
    }
  }
  return current;
}

}  // namespace fglb
