#ifndef FGLB_WORKLOAD_OLTP_H_
#define FGLB_WORKLOAD_OLTP_H_

#include "workload/application.h"

namespace fglb {

// A small banking-style OLTP application: three write-heavy classes
// committing into the same hot table stripes (transfer/deposit/
// withdraw on shared account ranges) plus nine read classes. Not from
// the paper's evaluation — it exists for the §7 lock-contention
// extension, where hot-stripe write contention is the anomaly under
// study, and as a third tenant for consolidation scenarios.
struct OltpOptions {
  AppId app_id = 4;
  TableId table_base = 31;
  // Commit critical-section length of the writers (inflated by the
  // lock-contention scenario to model a long-transaction bug).
  double commit_hold_seconds = 0.0005;
};

inline constexpr QueryClassId kOltpTransfer = 1;
inline constexpr QueryClassId kOltpDeposit = 2;
inline constexpr QueryClassId kOltpWithdraw = 3;
// Read classes occupy ids 4..12.
inline constexpr QueryClassId kOltpFirstReader = 4;
inline constexpr int kOltpReaderCount = 9;

ApplicationSpec MakeOltp(const OltpOptions& options = {});

}  // namespace fglb

#endif  // FGLB_WORKLOAD_OLTP_H_
