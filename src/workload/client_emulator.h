#ifndef FGLB_WORKLOAD_CLIENT_EMULATOR_H_
#define FGLB_WORKLOAD_CLIENT_EMULATOR_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "sim/simulator.h"
#include "workload/application.h"
#include "workload/load_function.h"
#include "workload/query_sink.h"

namespace fglb {

// Closed-loop client emulator for one application: each emulated client
// thinks (exponential think time), issues one interaction drawn from
// the application's mix, waits for completion, and repeats. A control
// tick adjusts the live client population toward the load function's
// target, with multiplicative random noise on top (the paper's emulator
// "adds some random noise on top of the load function").
class ClientEmulator {
 public:
  struct Options {
    // Control-tick spacing.
    double tick_seconds = 1.0;
    // Stddev of the multiplicative noise applied to the target.
    double noise_fraction = 0.05;
    // Mean client session length (exponential). A client whose session
    // expires leaves at its next interaction boundary and the control
    // loop admits a fresh one — the paper's emulator "randomly varying
    // the session time". 0 disables churn (sessions never end).
    double session_time_seconds = 0;
    // Batched-cohort mode: instead of one scheduled think event per
    // client per interaction, thinking clients sit in an idle pool and
    // one batch event per cohort_batch_seconds draws Binomial(idle, p)
    // of them to issue, p matching the exponential think time over the
    // batch window. Statistically equivalent closed-loop load at a
    // per-interaction event cost that no longer scales with the client
    // count; per-client identity (id, session end) materializes only
    // when a client issues. Required for million-client scenarios.
    bool cohort = false;
    double cohort_batch_seconds = 0.1;
  };

  ClientEmulator(Simulator* sim, const ApplicationSpec* app, QuerySink* sink,
                 const LoadFunction* load, uint64_t seed, Options options);
  // Same, with default Options.
  ClientEmulator(Simulator* sim, const ApplicationSpec* app, QuerySink* sink,
                 const LoadFunction* load, uint64_t seed);
  ClientEmulator(const ClientEmulator&) = delete;
  ClientEmulator& operator=(const ClientEmulator&) = delete;

  // Begins the control loop at the current simulation time.
  void Start();

  // Stops spawning work: the population target becomes zero and live
  // clients retire at their next think boundary.
  void Stop();

  uint64_t active_clients() const { return active_clients_; }
  uint64_t completed_queries() const { return completed_queries_; }
  // Distinct clients ever admitted (grows under session churn).
  uint64_t total_clients_spawned() const { return next_client_id_; }
  const ApplicationSpec& app() const { return *app_; }

 private:
  // The lazily-materialized identity of a client between interactions.
  struct IdleClient {
    uint64_t id;
    SimTime session_end;
  };

  void ControlTick();
  void SpawnClient(double initial_delay);
  void ClientThink(uint64_t client_id, SimTime session_end);
  void ClientIssue(uint64_t client_id, SimTime session_end);
  // Cohort mode: per-batch arrival draw / one client's issue path.
  void BatchTick();
  void CohortIssue(uint64_t client_id, SimTime session_end);

  Simulator* sim_;
  const ApplicationSpec* app_;
  QuerySink* sink_;
  const LoadFunction* load_;
  Options options_;
  Rng rng_;

  bool running_ = false;
  uint64_t next_client_id_ = 0;
  uint64_t active_clients_ = 0;
  // Clients asked to retire; each retiring client decrements this at
  // its next think boundary instead of issuing another query.
  uint64_t retire_pending_ = 0;
  uint64_t completed_queries_ = 0;
  // Cohort mode: clients thinking between interactions (unordered;
  // selection swaps with the back for O(1) removal).
  std::vector<IdleClient> idle_;
};

}  // namespace fglb

#endif  // FGLB_WORKLOAD_CLIENT_EMULATOR_H_
