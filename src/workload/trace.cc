#include "workload/trace.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

#include "common/varint.h"

namespace fglb {

namespace {

// v1: fixed-width 24-byte records, no checksum (read-only legacy).
constexpr char kMagicV1[8] = {'F', 'G', 'L', 'B', 'T', 'R', 'C', '1'};
// v2: varint + delta encoded records behind a trailing CRC-32.
constexpr char kMagicV2[8] = {'F', 'G', 'L', 'B', 'T', 'R', 'C', '2'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

// v1 on-disk record: class key, page id, flags (bit 0: sequential,
// bit 1: write). Fixed width, little-endian as written by the host.
struct DiskRecordV1 {
  uint64_t class_key;
  uint64_t page;
  uint8_t flags;
  uint8_t padding[7];
};
static_assert(sizeof(DiskRecordV1) == 24);

uint8_t FlagsOf(const PageAccess& access) {
  uint8_t flags = 0;
  if (access.kind == AccessKind::kSequential) flags |= 1;
  if (access.is_write) flags |= 2;
  return flags;
}

void ApplyFlags(uint8_t flags, PageAccess* access) {
  access->kind = (flags & 1) != 0 ? AccessKind::kSequential
                                  : AccessKind::kRandom;
  access->is_write = (flags & 2) != 0;
}

// Reads everything after the 8-byte magic into *rest. Returns false on
// I/O error.
bool ReadRest(std::FILE* file, std::string* rest) {
  rest->clear();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    rest->append(buf, n);
  }
  return std::ferror(file) == 0;
}

bool DecodeV1(const std::string& body, std::vector<TraceRecord>* records) {
  // A v1 file is exactly header + count + count records; anything
  // shorter is truncated and anything longer carries trailing garbage.
  if (body.size() < sizeof(uint64_t)) return false;
  uint64_t count = 0;
  std::memcpy(&count, body.data(), sizeof(count));
  if (count > (body.size() - sizeof(uint64_t)) / sizeof(DiskRecordV1)) {
    return false;  // truncated
  }
  if (body.size() != sizeof(uint64_t) + count * sizeof(DiskRecordV1)) {
    return false;  // trailing garbage
  }
  records->reserve(count);
  const char* p = body.data() + sizeof(uint64_t);
  for (uint64_t i = 0; i < count; ++i, p += sizeof(DiskRecordV1)) {
    DiskRecordV1 disk;
    std::memcpy(&disk, p, sizeof(disk));
    TraceRecord record;
    record.class_key = disk.class_key;
    record.access.page = disk.page;
    ApplyFlags(disk.flags, &record.access);
    records->push_back(record);
  }
  return true;
}

bool DecodeV2(const std::string& body, std::vector<TraceRecord>* records) {
  // Layout after the magic: payload (varint count + records), then a
  // fixed32 CRC-32 of the payload. Delta chains start at 0.
  if (body.size() < 4) return false;
  const uint8_t* begin = reinterpret_cast<const uint8_t*>(body.data());
  const uint8_t* limit = begin + body.size() - 4;
  uint32_t stored_crc = 0;
  if (!GetFixed32(limit, begin + body.size(), &stored_crc)) return false;
  if (Crc32(begin, static_cast<size_t>(limit - begin)) != stored_crc) {
    return false;
  }
  const uint8_t* p = begin;
  uint64_t count = 0;
  size_t n = GetVarint64(p, limit, &count);
  if (n == 0) return false;
  p += n;
  // Each record is at least 3 bytes (flags + two 1-byte varints), so a
  // count promising more than fits is detectably corrupt before the
  // reserve can over-allocate.
  if (count > static_cast<uint64_t>(limit - p) / 3 + 1) return false;
  records->reserve(count);
  uint64_t prev_key = 0;
  uint64_t prev_page = 0;
  for (uint64_t i = 0; i < count; ++i) {
    if (p >= limit) return false;
    const uint8_t flags = *p++;
    if (flags > 3) return false;
    uint64_t delta = 0;
    if ((n = GetVarint64(p, limit, &delta)) == 0) return false;
    p += n;
    prev_key += static_cast<uint64_t>(ZigZagDecode(delta));
    if ((n = GetVarint64(p, limit, &delta)) == 0) return false;
    p += n;
    prev_page += static_cast<uint64_t>(ZigZagDecode(delta));
    TraceRecord record;
    record.class_key = prev_key;
    record.access.page = prev_page;
    ApplyFlags(flags, &record.access);
    records->push_back(record);
  }
  return p == limit;  // trailing garbage inside the checksummed payload
}

}  // namespace

bool WriteTrace(const std::string& path,
                const std::vector<TraceRecord>& records) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) return false;
  std::string payload;
  payload.reserve(records.size() * 4 + 16);
  PutVarint64(&payload, records.size());
  uint64_t prev_key = 0;
  uint64_t prev_page = 0;
  for (const TraceRecord& record : records) {
    payload.push_back(static_cast<char>(FlagsOf(record.access)));
    PutVarint64(&payload, ZigZagEncode(static_cast<int64_t>(
                              record.class_key - prev_key)));
    PutVarint64(&payload, ZigZagEncode(static_cast<int64_t>(
                              record.access.page - prev_page)));
    prev_key = record.class_key;
    prev_page = record.access.page;
  }
  PutFixed32(&payload, Crc32(payload.data(), payload.size()));
  if (std::fwrite(kMagicV2, sizeof(kMagicV2), 1, file.get()) != 1) {
    return false;
  }
  return payload.empty() ||
         std::fwrite(payload.data(), payload.size(), 1, file.get()) == 1;
}

bool ReadTrace(const std::string& path, std::vector<TraceRecord>* records) {
  records->clear();
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) return false;
  char magic[sizeof(kMagicV1)];
  if (std::fread(magic, sizeof(magic), 1, file.get()) != 1) return false;
  std::string body;
  if (!ReadRest(file.get(), &body)) return false;
  bool ok = false;
  if (std::memcmp(magic, kMagicV2, sizeof(magic)) == 0) {
    ok = DecodeV2(body, records);
  } else if (std::memcmp(magic, kMagicV1, sizeof(magic)) == 0) {
    ok = DecodeV1(body, records);
  }
  if (!ok) records->clear();
  return ok;
}

std::vector<PageId> PagesOfClass(const std::vector<TraceRecord>& records,
                                 ClassKey key) {
  std::vector<PageId> pages;
  for (const TraceRecord& record : records) {
    if (record.class_key == key) pages.push_back(record.access.page);
  }
  return pages;
}

}  // namespace fglb
