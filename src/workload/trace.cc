#include "workload/trace.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

namespace fglb {

namespace {

constexpr char kMagic[8] = {'F', 'G', 'L', 'B', 'T', 'R', 'C', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

// On-disk record: class key, page id, flags (bit 0: sequential,
// bit 1: write). Fixed width, little-endian as written by the host.
struct DiskRecord {
  uint64_t class_key;
  uint64_t page;
  uint8_t flags;
  uint8_t padding[7];
};
static_assert(sizeof(DiskRecord) == 24);

}  // namespace

bool WriteTrace(const std::string& path,
                const std::vector<TraceRecord>& records) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) return false;
  if (std::fwrite(kMagic, sizeof(kMagic), 1, file.get()) != 1) return false;
  const uint64_t count = records.size();
  if (std::fwrite(&count, sizeof(count), 1, file.get()) != 1) return false;
  for (const TraceRecord& record : records) {
    DiskRecord disk{};
    disk.class_key = record.class_key;
    disk.page = record.access.page;
    disk.flags = 0;
    if (record.access.kind == AccessKind::kSequential) disk.flags |= 1;
    if (record.access.is_write) disk.flags |= 2;
    if (std::fwrite(&disk, sizeof(disk), 1, file.get()) != 1) return false;
  }
  return true;
}

bool ReadTrace(const std::string& path, std::vector<TraceRecord>* records) {
  records->clear();
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) return false;
  char magic[sizeof(kMagic)];
  if (std::fread(magic, sizeof(magic), 1, file.get()) != 1) return false;
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return false;
  uint64_t count = 0;
  if (std::fread(&count, sizeof(count), 1, file.get()) != 1) return false;
  records->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    DiskRecord disk;
    if (std::fread(&disk, sizeof(disk), 1, file.get()) != 1) {
      records->clear();
      return false;
    }
    TraceRecord record;
    record.class_key = disk.class_key;
    record.access.page = disk.page;
    record.access.kind = (disk.flags & 1) != 0 ? AccessKind::kSequential
                                               : AccessKind::kRandom;
    record.access.is_write = (disk.flags & 2) != 0;
    records->push_back(record);
  }
  return true;
}

std::vector<PageId> PagesOfClass(const std::vector<TraceRecord>& records,
                                 ClassKey key) {
  std::vector<PageId> pages;
  for (const TraceRecord& record : records) {
    if (record.class_key == key) pages.push_back(record.access.page);
  }
  return pages;
}

}  // namespace fglb
