#include "workload/application.h"

#include <cassert>

namespace fglb {

const QueryTemplate* ApplicationSpec::FindTemplate(QueryClassId id) const {
  for (const auto& t : templates) {
    if (t.id == id) return &t;
  }
  return nullptr;
}

const QueryTemplate* ApplicationSpec::FindTemplateByName(
    std::string_view name) const {
  for (const auto& t : templates) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

size_t ApplicationSpec::SampleTemplateIndex(Rng& rng) const {
  assert(templates.size() == mix_weights.size());
  return rng.Discrete(mix_weights);
}

double ApplicationSpec::WriteFraction() const {
  double total = 0;
  double writes = 0;
  for (size_t i = 0; i < templates.size(); ++i) {
    total += mix_weights[i];
    if (templates[i].is_update) writes += mix_weights[i];
  }
  return total > 0 ? writes / total : 0;
}

}  // namespace fglb
