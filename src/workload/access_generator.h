#ifndef FGLB_WORKLOAD_ACCESS_GENERATOR_H_
#define FGLB_WORKLOAD_ACCESS_GENERATOR_H_

#include <map>
#include <vector>

#include "common/random.h"
#include "storage/page.h"
#include "workload/query_class.h"

namespace fglb {

// Expands a query template into the concrete page-reference string one
// execution of it produces. Zipf samplers are cached per
// (region size, theta) since building one is O(1) but not free and the
// same components recur millions of times.
class AccessGenerator {
 public:
  AccessGenerator() = default;
  AccessGenerator(const AccessGenerator&) = delete;
  AccessGenerator& operator=(const AccessGenerator&) = delete;

  // Appends this execution's page accesses to `out` (not cleared).
  void Generate(const QueryTemplate& tmpl, Rng& rng,
                std::vector<PageAccess>* out);

 private:
  const ZipfGenerator& SamplerFor(uint64_t n, double theta);

  void GeneratePointLookups(const AccessComponent& component, Rng& rng,
                            std::vector<PageAccess>* out);
  void GenerateSequentialScan(const AccessComponent& component, Rng& rng,
                              std::vector<PageAccess>* out);

  std::map<std::pair<uint64_t, double>, ZipfGenerator> samplers_;
};

}  // namespace fglb

#endif  // FGLB_WORKLOAD_ACCESS_GENERATOR_H_
