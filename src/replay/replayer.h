#ifndef FGLB_REPLAY_REPLAYER_H_
#define FGLB_REPLAY_REPLAYER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>

#include "replay/capture.h"
#include "scenarios/harness.h"

namespace fglb {

// Re-drives a captured run deterministically: the cluster is rebuilt
// from the capture's topology block, the fault schedule is re-armed
// from the captured spec + seed, recorded arrivals are re-submitted
// open-loop at their bit-exact times, and every engine consumes the
// recorded per-class page-access strings instead of generating fresh
// ones. Since the simulator itself is deterministic (events ordered by
// time then scheduling sequence), the controller then sees identical
// inputs and produces an identical action trace — the replay tests and
// ci.sh assert byte equality of the ActionLines projection against the
// live run.

struct ReplayBuildOptions {
  // MRC analysis threads for the replayed controller (results are
  // thread-count invariant; this only changes wall-clock speed).
  int mrc_threads = 1;
  // Lenient replay tolerates access-string exhaustion (engines fall
  // back to generation) instead of failing the run. What-if evaluation
  // always runs lenient: changed routing shifts consumption.
  bool lenient = false;
  // Skip recorded executions before this time when seeding the access
  // queues (window replay starts mid-stream).
  double from_time = 0;
};

// Feeds recorded access strings to engines, per-class FIFO. Keyed by
// class (not replica) so a what-if re-placement — which reroutes a
// class to a different replica — still consumes that class's recorded
// stream.
class CaptureAccessSource : public AccessReplaySource {
 public:
  CaptureAccessSource(const Capture* capture, double from_time = 0);

  bool NextAccesses(ClassKey key, std::vector<PageAccess>* out) override;

  uint64_t served() const { return served_; }
  // Requests for a class whose recorded stream was already drained
  // (the engine regenerated instead) — nonzero means divergence.
  uint64_t misses() const { return misses_; }
  // Recorded executions never consumed.
  uint64_t remaining() const { return remaining_; }

 private:
  const Capture* capture_;
  std::map<ClassKey, std::deque<uint64_t>> queues_;  // execution indices
  uint64_t served_ = 0;
  uint64_t misses_ = 0;
  uint64_t remaining_ = 0;
};

// Rebuilds a harness from a capture's info + topology blocks: servers,
// applications, replicas (with their recorded engine seeds), scheduler
// placements, controller config, and — when the capture ran with
// faults — the identical fault schedule. `source`, if non-null, is
// wired into every engine, including replicas the replayed controller
// provisions mid-run. Returns null with *error set when the capture is
// internally inconsistent (e.g. replica ids that cannot be reproduced).
std::unique_ptr<ClusterHarness> BuildClusterFromCapture(
    const Capture& capture, const ReplayBuildOptions& options,
    CaptureAccessSource* source, std::string* error);

class ReplayRunner {
 public:
  explicit ReplayRunner(const Capture* capture,
                        ReplayBuildOptions options = {});

  // Rebuilds the cluster (idempotent). Exposed separately so callers
  // can enable tracing on harness().trace() before Run() starts the
  // controller.
  bool Build(std::string* error);

  // Feeds every recorded arrival and runs to the captured duration.
  // In strict (non-lenient) mode, fails if any engine had to fall back
  // to generated accesses or recorded executions went unconsumed —
  // either means the replay diverged from the live run.
  bool Run(std::string* error);

  ClusterHarness* harness() { return harness_.get(); }
  const CaptureAccessSource* source() const { return source_.get(); }
  uint64_t arrivals_fed() const { return arrivals_fed_; }

 private:
  void FeedFrom(size_t index);

  const Capture* capture_;
  ReplayBuildOptions options_;
  // Engines hold raw pointers into source_; harness_ is declared after
  // it so teardown destroys the engines first.
  std::unique_ptr<CaptureAccessSource> source_;
  std::unique_ptr<ClusterHarness> harness_;
  std::map<AppId, Scheduler*> schedulers_;
  uint64_t arrivals_fed_ = 0;
  bool built_ = false;
  bool ran_ = false;
};

}  // namespace fglb

#endif  // FGLB_REPLAY_REPLAYER_H_
