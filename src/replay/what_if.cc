#include "replay/what_if.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <functional>
#include <set>

#include "replay/replayer.h"
#include "sim/fault_injector.h"

namespace fglb {
namespace {

// Tie margin and action costs for the cheaper-wins rule.
constexpr double kTieEpsilon = 0.05;
int ActionCost(const std::string& name) {
  if (name == "noop") return 0;
  if (name == "quota") return 1;
  return 2;
}

constexpr uint8_t kKindQuotaEnforced = 3;   // ActionKind::kQuotaEnforced
constexpr uint8_t kKindClassRescheduled = 4;  // ActionKind::kClassRescheduled

// Per-interval reports of one candidate replay, keyed (time, app).
struct IntervalPoint {
  double t = 0;
  AppId app = 0;
  Scheduler::IntervalReport report;
};

// One candidate replayed with the controller off: rebuild, re-arm
// faults, feed arrivals, close measurement intervals manually, and
// fire the candidate's apply hook at window_start.
struct CandidateRun {
  std::vector<IntervalPoint> points;
  bool feasible = true;
  std::string detail;
};

bool RunCandidate(const Capture& capture, double window_end,
                  double window_start,
                  const std::function<void(ClusterHarness*, CandidateRun*)>&
                      apply,
                  CandidateRun* out, std::string* error) {
  ReplayBuildOptions build;
  build.lenient = true;  // changed routing shifts stream consumption
  CaptureAccessSource source(&capture, 0);
  std::unique_ptr<ClusterHarness> harness =
      BuildClusterFromCapture(capture, build, &source, error);
  if (harness == nullptr) return false;

  std::map<AppId, Scheduler*> schedulers;
  for (const auto& scheduler : harness->schedulers()) {
    schedulers[scheduler->app().id] = scheduler.get();
  }

  // The live controller stays off (harness->Start() is never called),
  // so the fault schedule — armed by Start() in a live run — must be
  // armed by hand.
  if (harness->fault_injector() != nullptr) {
    harness->fault_injector()->Arm();
  }

  // Open-loop arrival feeder, chained so equal-time arrivals keep
  // their recorded order.
  struct Feeder {
    static void Arm(ClusterHarness* h,
                    const std::map<AppId, Scheduler*>* schedulers,
                    const Capture* c, size_t i) {
      if (i >= c->arrivals.size()) return;
      const CaptureArrival& a = c->arrivals[i];
      h->sim().ScheduleAt(a.t, [h, schedulers, c, i] {
        const CaptureArrival& arrival = c->arrivals[i];
        auto it = schedulers->find(arrival.app);
        if (it != schedulers->end()) {
          const QueryTemplate* tmpl =
              it->second->app().FindTemplate(arrival.cls);
          if (tmpl != nullptr) {
            QueryInstance query;
            query.app = arrival.app;
            query.tmpl = tmpl;
            query.client_id = arrival.client_id;
            query.submit_time = h->sim().Now();
            it->second->Submit(query, nullptr);
          }
        }
        Arm(h, schedulers, c, i + 1);
      });
    }
  };
  Feeder::Arm(harness.get(), &schedulers, &capture, 0);

  // Manual interval closers at the same boundaries the live retuner
  // ticked on.
  const double dt = capture.info.interval_seconds;
  struct Closer {
    static void Arm(ClusterHarness* h,
                    const std::map<AppId, Scheduler*>* schedulers, double dt,
                    double t, double until, CandidateRun* out) {
      if (t > until + 1e-9) return;
      h->sim().ScheduleAt(t, [h, schedulers, dt, t, until, out] {
        for (const auto& [app, scheduler] : *schedulers) {
          out->points.push_back({t, app, scheduler->EndInterval(dt)});
        }
        Arm(h, schedulers, dt, t + dt, until, out);
      });
    }
  };
  Closer::Arm(harness.get(), &schedulers, dt, dt, window_end, out);

  harness->sim().ScheduleAt(window_start, [&harness, apply, out] {
    apply(harness.get(), out);
  });

  harness->sim().RunUntil(window_end);
  return true;
}

// Mean interval latency of `app` over (window_start, window_end].
double MeanLatency(const std::vector<IntervalPoint>& points, AppId app,
                   double from, double to) {
  double sum = 0;
  int n = 0;
  for (const auto& p : points) {
    if (p.app != app || p.t <= from + 1e-9 || p.t > to + 1e-9) continue;
    sum += p.report.avg_latency;
    ++n;
  }
  return n > 0 ? sum / n : 0;
}

int Violations(const std::vector<IntervalPoint>& points, AppId app,
               double from, double to) {
  int v = 0;
  for (const auto& p : points) {
    if (p.app != app || p.t <= from + 1e-9 || p.t > to + 1e-9) continue;
    if (!p.report.sla_met) ++v;
  }
  return v;
}

double Clamp(double v, double lo, double hi) {
  return std::min(hi, std::max(lo, v));
}

}  // namespace

WhatIfRunner::WhatIfRunner(const Capture* capture, WhatIfOptions options)
    : capture_(capture), options_(options) {
  assert(capture_ != nullptr);
}

bool WhatIfRunner::Run(WhatIfResult* result, std::string* error) {
  assert(result != nullptr);
  auto fail = [error](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  const double dt = capture_->info.interval_seconds;

  // --- window + target selection ---
  double window_start = options_.window_start;
  AppId target_app = 0;
  bool found = false;
  for (const CaptureSample& s : capture_->samples) {
    if (window_start >= 0 && s.t <= window_start + 1e-9) continue;
    for (const CaptureAppSample& a : s.apps) {
      if (!a.sla_met) {
        if (window_start < 0) window_start = s.t - dt;
        target_app = a.app;
        found = true;
        break;
      }
    }
    if (found) break;
  }
  if (!found) {
    return fail(window_start < 0
                    ? "no SLA violation in the capture's sample series"
                    : "no SLA violation at or after the requested window");
  }
  const double window_end =
      std::min(window_start + options_.horizon_seconds,
               capture_->info.duration_seconds);
  if (window_end <= window_start) {
    return fail("what-if window is empty (horizon too small?)");
  }

  // --- problem-class diagnosis (offline mirror of the controller's
  // outlier rule): classes executing in the violating interval, new
  // ones first, heaviest distinct-page footprint wins ---
  std::set<ClassKey> before;
  std::map<ClassKey, std::set<PageId>> footprint;
  for (const CaptureExecution& e : capture_->executions) {
    if (e.t < window_start) {
      before.insert(e.key);
      continue;
    }
    if (e.t >= window_start + dt) continue;
    auto& pages = footprint[e.key];
    for (uint32_t i = 0; i < e.access_count; ++i) {
      pages.insert(capture_->accesses[e.access_begin + i].page);
    }
  }
  ClassKey problem = 0;
  size_t best_pages = 0;
  bool best_new = false;
  bool best_foreign = false;
  for (const auto& [key, pages] : footprint) {
    const bool is_new = !before.contains(key);
    const bool is_foreign = AppOf(key) != target_app;
    // Lexicographic preference: new-in-window, then another app's
    // class, then footprint.
    const auto better = [&] {
      if (is_new != best_new) return is_new;
      if (is_foreign != best_foreign) return is_foreign;
      return pages.size() > best_pages;
    };
    if (problem == 0 || better()) {
      problem = key;
      best_pages = pages.size();
      best_new = is_new;
      best_foreign = is_foreign;
    }
  }
  if (problem == 0) {
    return fail("no executions recorded in the violating interval");
  }

  result->window_start = window_start;
  result->window_end = window_end;
  result->target_app = target_app;
  result->problem_class = problem;

  // --- candidate replays ---
  const AppId problem_app = AppOf(problem);
  const QueryClassId problem_cls = ClassOf(problem);
  uint64_t quota_auto = options_.quota_pages;

  auto noop_apply = [](ClusterHarness*, CandidateRun*) {};
  auto quota_apply = [&, problem, problem_app, problem_cls](
                         ClusterHarness* harness, CandidateRun* run) {
    Scheduler* owner = nullptr;
    for (const auto& s : harness->schedulers()) {
      if (s->app().id == problem_app) owner = s.get();
    }
    if (owner == nullptr) {
      run->feasible = false;
      run->detail = "problem app not found";
      return;
    }
    std::vector<Replica*> targets = owner->PlacementOf(problem_cls);
    if (targets.empty()) {
      run->feasible = false;
      run->detail = "problem class has no replicas";
      return;
    }
    bool applied = false;
    char buf[128];
    for (Replica* replica : targets) {
      uint64_t pages = quota_auto;
      if (pages == 0) {
        pages = static_cast<uint64_t>(
            Clamp(static_cast<double>(best_pages) / 2, 64,
                  static_cast<double>(
                      replica->engine().pool().capacity() / 4)));
      }
      if (replica->engine().SetQuota(problem, pages)) {
        applied = true;
        std::snprintf(buf, sizeof(buf), "quota %llu pages on %s",
                      static_cast<unsigned long long>(pages),
                      replica->name().c_str());
        run->detail = buf;
      }
    }
    if (!applied) {
      run->feasible = false;
      run->detail = "quota exceeds pool capacity";
    }
  };
  auto migrate_apply = [problem, problem_app, problem_cls](
                           ClusterHarness* harness, CandidateRun* run) {
    Scheduler* owner = nullptr;
    for (const auto& s : harness->schedulers()) {
      if (s->app().id == problem_app) owner = s.get();
    }
    if (owner == nullptr) {
      run->feasible = false;
      run->detail = "problem app not found";
      return;
    }
    uint64_t pool_pages = 8192;
    if (!owner->replicas().empty()) {
      pool_pages = owner->replicas()[0]->engine().pool().capacity();
    }
    Replica* target =
        harness->resources().ProvisionReplica(owner, pool_pages);
    if (target == nullptr) {
      run->feasible = false;
      run->detail = "no server has capacity for a new replica";
      return;
    }
    owner->DedicateReplica(problem_cls, target);
    run->detail = "class dedicated to fresh " + target->name();
    (void)problem;
  };

  struct Plan {
    const char* name;
    std::function<void(ClusterHarness*, CandidateRun*)> apply;
  };
  const Plan plans[] = {
      {"noop", noop_apply}, {"quota", quota_apply}, {"migrate", migrate_apply}};

  CandidateRun runs[3];
  for (int i = 0; i < 3; ++i) {
    if (!RunCandidate(*capture_, window_end, window_start, plans[i].apply,
                      &runs[i], error)) {
      return false;
    }
  }

  // --- scoring against the noop baseline ---
  const ApplicationSpec* target_spec = capture_->FindApp(target_app);
  const double target_sla =
      target_spec != nullptr ? target_spec->sla_latency_seconds : 1.0;
  const int v_noop =
      Violations(runs[0].points, target_app, window_start, window_end);
  const double l_noop =
      MeanLatency(runs[0].points, target_app, window_start, window_end);

  result->candidates.clear();
  for (int i = 0; i < 3; ++i) {
    WhatIfCandidate c;
    c.name = plans[i].name;
    c.feasible = runs[i].feasible;
    c.detail = runs[i].detail;
    c.violations =
        Violations(runs[i].points, target_app, window_start, window_end);
    c.avg_latency =
        MeanLatency(runs[i].points, target_app, window_start, window_end);
    for (const ApplicationSpec& app : capture_->topology.apps) {
      c.app_latency[app.id] =
          MeanLatency(runs[i].points, app.id, window_start, window_end);
    }
    if (!c.feasible) {
      c.score = -1e18;
    } else if (c.name == "noop") {
      c.score = c.recovery = c.interference = 0;
    } else {
      c.recovery = static_cast<double>(v_noop - c.violations) +
                   Clamp((l_noop - c.avg_latency) / target_sla, -1, 1);
      c.interference = 0;
      for (const ApplicationSpec& app : capture_->topology.apps) {
        if (app.id == target_app) continue;
        const double delta =
            c.app_latency[app.id] -
            MeanLatency(runs[0].points, app.id, window_start, window_end);
        if (delta > 0 && app.sla_latency_seconds > 0) {
          c.interference =
              std::max(c.interference, delta / app.sla_latency_seconds);
        }
      }
      c.score = c.recovery - 0.5 * c.interference;
    }
    result->candidates.push_back(std::move(c));
  }
  std::stable_sort(result->candidates.begin(), result->candidates.end(),
                   [](const WhatIfCandidate& a, const WhatIfCandidate& b) {
                     if (std::abs(a.score - b.score) <= kTieEpsilon) {
                       return ActionCost(a.name) < ActionCost(b.name);
                     }
                     return a.score > b.score;
                   });

  // --- what the live controller did in the window ---
  result->live_choice = "noop";
  for (const CaptureAction& a : capture_->actions) {
    if (a.t <= window_start + 1e-9 || a.t > window_end + 1e-9) continue;
    if (a.kind == kKindClassRescheduled) {
      result->live_choice = "migrate";
      break;  // a re-placement dominates any quota in the same window
    }
    if (a.kind == kKindQuotaEnforced) result->live_choice = "quota";
  }
  result->agrees_with_live =
      !result->candidates.empty() &&
      result->candidates.front().name == result->live_choice;
  return true;
}

std::string WhatIfResult::Format() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "what-if window [%.1f, %.1f) target app=%u problem "
                "app=%u/class=%u\n",
                window_start, window_end, target_app, AppOf(problem_class),
                ClassOf(problem_class));
  out += buf;
  for (const auto& c : candidates) {
    if (!c.feasible) {
      std::snprintf(buf, sizeof(buf), "  %-8s infeasible: %s\n",
                    c.name.c_str(), c.detail.c_str());
      out += buf;
      continue;
    }
    std::snprintf(buf, sizeof(buf),
                  "  %-8s score=%+.3f recovery=%+.3f interference=%.3f "
                  "violations=%d avg=%.3fs%s%s\n",
                  c.name.c_str(), c.score, c.recovery, c.interference,
                  c.violations, c.avg_latency,
                  c.detail.empty() ? "" : "  ",
                  c.detail.c_str());
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "  live controller chose: %s (%s)\n",
                live_choice.c_str(),
                agrees_with_live ? "ranked first here too"
                                 : "ranked differently here");
  out += buf;
  return out;
}

}  // namespace fglb
