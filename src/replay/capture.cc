#include "replay/capture.h"

#include <cassert>
#include <cstring>

#include "common/varint.h"
#include "scenarios/harness.h"
#include "workload/trace.h"

namespace fglb {
namespace {

constexpr char kMagic[8] = {'F', 'G', 'L', 'B', 'C', 'A', 'P', '1'};

// Block types.
constexpr uint8_t kBlockInfo = 1;
constexpr uint8_t kBlockTopology = 2;
constexpr uint8_t kBlockEvents = 3;
constexpr uint8_t kBlockActions = 4;
constexpr uint8_t kBlockSamples = 5;
constexpr uint8_t kBlockEnd = 6;

// Event tags within an events block.
constexpr uint8_t kEventArrival = 1;
constexpr uint8_t kEventExecution = 2;

// Flush an events block once its payload passes this size.
constexpr size_t kEventsFlushBytes = 64 * 1024;

void PutString(std::string* dst, const std::string& s) {
  PutVarint64(dst, s.size());
  dst->append(s);
}

void PutDouble(std::string* dst, double d) {
  PutFixed64(dst, DoubleToBits(d));
}

uint8_t AccessFlags(const PageAccess& a) {
  return static_cast<uint8_t>(
      (a.kind == AccessKind::kSequential ? 1 : 0) | (a.is_write ? 2 : 0));
}

// Bounds-checked payload cursor. Any malformed read flips `ok` and
// every later read returns a zero value, so decoders can sequence
// reads and check once.
struct Reader {
  const uint8_t* p;
  const uint8_t* limit;
  bool ok = true;

  size_t remaining() const { return static_cast<size_t>(limit - p); }

  uint64_t U64() {
    uint64_t v = 0;
    const size_t n = GetVarint64(p, limit, &v);
    if (n == 0) {
      ok = false;
      return 0;
    }
    p += n;
    return v;
  }
  int64_t S64() { return ZigZagDecode(U64()); }
  uint8_t U8() {
    if (!ok || p >= limit) {
      ok = false;
      return 0;
    }
    return *p++;
  }
  double F64() {
    uint64_t bits = 0;
    if (!ok || !GetFixed64(p, limit, &bits)) {
      ok = false;
      return 0;
    }
    p += 8;
    return BitsToDouble(bits);
  }
  std::string Str() {
    const uint64_t n = U64();
    if (!ok || n > remaining()) {
      ok = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(p), n);
    p += n;
    return s;
  }
  bool AtEnd() const { return ok && p == limit; }

  // Sanity bound for a count of elements that each occupy at least
  // `min_bytes` of the remaining payload (blocks a corrupted count
  // from forcing a huge reserve before decoding fails).
  bool PlausibleCount(uint64_t count, size_t min_bytes) {
    if (!ok || count > remaining() / min_bytes + 1) {
      ok = false;
      return false;
    }
    return true;
  }
};

// --- section encoders ---

void EncodeInfo(const CaptureInfo& info, std::string* out) {
  PutVarint64(out, info.seed);
  PutVarint64(out, info.fault_seed);
  PutString(out, info.scenario);
  PutString(out, info.fault_spec);
  PutDouble(out, info.duration_seconds);
  PutDouble(out, info.interval_seconds);
  PutDouble(out, info.mrc_sample_rate);
  PutVarint64(out, static_cast<uint64_t>(info.max_migrations_per_interval));
  PutString(out, info.admission_spec);
  PutString(out, info.span_spec);
  PutString(out, info.mrc_spec);
  PutString(out, info.tier_spec);
  PutString(out, info.replacement_spec);
  PutString(out, info.stats_spec);
  PutString(out, info.ckpt_spec);
}

bool DecodeInfo(Reader& r, CaptureInfo* info) {
  info->seed = r.U64();
  info->fault_seed = r.U64();
  info->scenario = r.Str();
  info->fault_spec = r.Str();
  info->duration_seconds = r.F64();
  info->interval_seconds = r.F64();
  info->mrc_sample_rate = r.F64();
  info->max_migrations_per_interval = static_cast<int>(r.U64());
  // Optional trailing fields; absent in captures from before the
  // corresponding subsystem existed.
  if (r.AtEnd()) return true;
  info->admission_spec = r.Str();
  if (r.AtEnd()) return true;
  info->span_spec = r.Str();
  if (r.AtEnd()) return true;
  info->mrc_spec = r.Str();
  if (r.AtEnd()) return true;
  info->tier_spec = r.Str();
  if (r.AtEnd()) return true;
  info->replacement_spec = r.Str();
  if (r.AtEnd()) return true;
  info->stats_spec = r.Str();
  if (r.AtEnd()) return true;
  info->ckpt_spec = r.Str();
  return r.AtEnd();
}

void EncodeTopology(const CaptureTopology& topo, std::string* out) {
  PutVarint64(out, topo.servers.size());
  for (const auto& s : topo.servers) {
    PutVarint64(out, static_cast<uint64_t>(s.cores));
    PutVarint64(out, s.memory_pages);
    PutDouble(out, s.random_read_seconds);
    PutDouble(out, s.extent_read_seconds);
    PutDouble(out, s.page_write_seconds);
  }
  PutVarint64(out, topo.apps.size());
  for (const auto& app : topo.apps) {
    PutVarint64(out, app.id);
    PutString(out, app.name);
    PutVarint64(out, app.templates.size());
    for (const auto& t : app.templates) {
      PutVarint64(out, t.id);
      PutString(out, t.name);
      PutVarint64(out, t.components.size());
      for (const auto& c : t.components) {
        PutVarint64(out, c.table);
        PutVarint64(out, c.table_pages);
        PutVarint64(out, c.region_offset);
        PutVarint64(out, c.region_pages);
        out->push_back(static_cast<char>(c.kind));
        PutDouble(out, c.zipf_theta);
        PutDouble(out, c.mean_pages);
        PutDouble(out, c.write_fraction);
      }
      PutDouble(out, t.fixed_cpu_seconds);
      PutDouble(out, t.cpu_seconds_per_page);
      out->push_back(t.is_update ? 1 : 0);
      PutDouble(out, t.commit_hold_seconds);
    }
    PutVarint64(out, app.mix_weights.size());
    for (double w : app.mix_weights) PutDouble(out, w);
    PutDouble(out, app.think_time_seconds);
    PutDouble(out, app.sla_latency_seconds);
  }
  PutVarint64(out, topo.replicas.size());
  for (const auto& rep : topo.replicas) {
    PutVarint64(out, static_cast<uint64_t>(rep.id));
    PutVarint64(out, static_cast<uint64_t>(rep.server));
    PutVarint64(out, rep.pool_pages);
    PutVarint64(out, rep.engine_seed);
  }
  PutVarint64(out, topo.placements.size());
  for (const auto& pl : topo.placements) {
    PutVarint64(out, pl.app);
    PutVarint64(out, pl.replica_ids.size());
    for (int id : pl.replica_ids) PutVarint64(out, static_cast<uint64_t>(id));
  }
}

bool DecodeTopology(Reader& r, CaptureTopology* topo) {
  uint64_t n = r.U64();
  if (!r.PlausibleCount(n, 1)) return false;
  topo->servers.resize(n);
  for (auto& s : topo->servers) {
    s.cores = static_cast<int>(r.U64());
    s.memory_pages = r.U64();
    s.random_read_seconds = r.F64();
    s.extent_read_seconds = r.F64();
    s.page_write_seconds = r.F64();
  }
  n = r.U64();
  if (!r.PlausibleCount(n, 1)) return false;
  topo->apps.resize(n);
  for (auto& app : topo->apps) {
    app.id = static_cast<AppId>(r.U64());
    app.name = r.Str();
    uint64_t nt = r.U64();
    if (!r.PlausibleCount(nt, 1)) return false;
    app.templates.resize(nt);
    for (auto& t : app.templates) {
      t.id = static_cast<QueryClassId>(r.U64());
      t.name = r.Str();
      uint64_t nc = r.U64();
      if (!r.PlausibleCount(nc, 1)) return false;
      t.components.resize(nc);
      for (auto& c : t.components) {
        c.table = static_cast<TableId>(r.U64());
        c.table_pages = r.U64();
        c.region_offset = r.U64();
        c.region_pages = r.U64();
        const uint8_t kind = r.U8();
        if (kind > 1) {
          r.ok = false;
          return false;
        }
        c.kind = static_cast<AccessComponent::Kind>(kind);
        c.zipf_theta = r.F64();
        c.mean_pages = r.F64();
        c.write_fraction = r.F64();
      }
      t.fixed_cpu_seconds = r.F64();
      t.cpu_seconds_per_page = r.F64();
      t.is_update = r.U8() != 0;
      t.commit_hold_seconds = r.F64();
    }
    uint64_t nw = r.U64();
    if (!r.PlausibleCount(nw, 8)) return false;
    app.mix_weights.resize(nw);
    for (double& w : app.mix_weights) w = r.F64();
    app.think_time_seconds = r.F64();
    app.sla_latency_seconds = r.F64();
  }
  n = r.U64();
  if (!r.PlausibleCount(n, 1)) return false;
  topo->replicas.resize(n);
  for (auto& rep : topo->replicas) {
    rep.id = static_cast<int>(r.U64());
    rep.server = static_cast<int>(r.U64());
    rep.pool_pages = r.U64();
    rep.engine_seed = r.U64();
  }
  n = r.U64();
  if (!r.PlausibleCount(n, 1)) return false;
  topo->placements.resize(n);
  for (auto& pl : topo->placements) {
    pl.app = static_cast<AppId>(r.U64());
    uint64_t ni = r.U64();
    if (!r.PlausibleCount(ni, 1)) return false;
    pl.replica_ids.resize(ni);
    for (int& id : pl.replica_ids) id = static_cast<int>(r.U64());
  }
  return r.AtEnd();
}

void EncodeActions(const std::vector<CaptureAction>& actions,
                   std::string* out) {
  PutVarint64(out, actions.size());
  for (const auto& a : actions) {
    PutDouble(out, a.t);
    out->push_back(static_cast<char>(a.kind));
    PutVarint64(out, a.app);
    PutString(out, a.description);
  }
}

bool DecodeActions(Reader& r, std::vector<CaptureAction>* actions) {
  const uint64_t n = r.U64();
  if (!r.PlausibleCount(n, 10)) return false;
  actions->resize(n);
  for (auto& a : *actions) {
    a.t = r.F64();
    a.kind = r.U8();
    a.app = static_cast<AppId>(r.U64());
    a.description = r.Str();
  }
  return r.AtEnd();
}

void EncodeSamples(const std::vector<CaptureSample>& samples,
                   std::string* out) {
  PutVarint64(out, samples.size());
  for (const auto& s : samples) {
    PutDouble(out, s.t);
    PutVarint64(out, s.apps.size());
    for (const auto& a : s.apps) {
      PutVarint64(out, a.app);
      PutVarint64(out, a.queries);
      PutDouble(out, a.avg_latency);
      PutDouble(out, a.p95_latency);
      PutDouble(out, a.throughput);
      out->push_back(a.sla_met ? 1 : 0);
      PutVarint64(out, static_cast<uint64_t>(a.servers_used));
    }
    PutVarint64(out, s.servers.size());
    for (const auto& sv : s.servers) {
      PutVarint64(out, static_cast<uint64_t>(sv.server_id));
      PutDouble(out, sv.cpu_utilization);
      PutDouble(out, sv.io_utilization);
    }
  }
}

bool DecodeSamples(Reader& r, std::vector<CaptureSample>* samples) {
  const uint64_t n = r.U64();
  if (!r.PlausibleCount(n, 10)) return false;
  samples->resize(n);
  for (auto& s : *samples) {
    s.t = r.F64();
    uint64_t na = r.U64();
    if (!r.PlausibleCount(na, 10)) return false;
    s.apps.resize(na);
    for (auto& a : s.apps) {
      a.app = static_cast<AppId>(r.U64());
      a.queries = r.U64();
      a.avg_latency = r.F64();
      a.p95_latency = r.F64();
      a.throughput = r.F64();
      a.sla_met = r.U8() != 0;
      a.servers_used = static_cast<int>(r.U64());
    }
    uint64_t ns = r.U64();
    if (!r.PlausibleCount(ns, 10)) return false;
    s.servers.resize(ns);
    for (auto& sv : s.servers) {
      sv.server_id = static_cast<int>(r.U64());
      sv.cpu_utilization = r.F64();
      sv.io_utilization = r.F64();
    }
  }
  return r.AtEnd();
}

// Decodes one events block into the capture (the time-delta chain
// spans blocks, so `prev_time_bits` is carried by the caller).
bool DecodeEvents(Reader& r, uint64_t* prev_time_bits, Capture* out) {
  while (r.ok && r.p < r.limit) {
    const uint8_t tag = r.U8();
    *prev_time_bits += static_cast<uint64_t>(r.S64());
    const double t = BitsToDouble(*prev_time_bits);
    if (tag == kEventArrival) {
      CaptureArrival a;
      a.t = t;
      a.app = static_cast<AppId>(r.U64());
      a.cls = static_cast<QueryClassId>(r.U64());
      a.client_id = r.U64();
      if (!r.ok) return false;
      out->arrivals.push_back(a);
    } else if (tag == kEventExecution) {
      CaptureExecution e;
      e.t = t;
      e.replica = static_cast<int>(r.U64());
      e.key = r.U64();
      const uint64_t count = r.U64();
      // Each access is at least 2 bytes (flags + 1-byte varint).
      if (!r.PlausibleCount(count, 2)) return false;
      e.access_begin = out->accesses.size();
      e.access_count = static_cast<uint32_t>(count);
      uint64_t prev_page = 0;
      for (uint64_t i = 0; i < count; ++i) {
        const uint8_t flags = r.U8();
        if (flags > 3) {
          r.ok = false;
          return false;
        }
        prev_page += static_cast<uint64_t>(r.S64());
        PageAccess access;
        access.page = prev_page;
        access.kind = (flags & 1) ? AccessKind::kSequential
                                  : AccessKind::kRandom;
        access.is_write = (flags & 2) != 0;
        out->accesses.push_back(access);
      }
      if (!r.ok) return false;
      out->executions.push_back(e);
    } else {
      r.ok = false;
      return false;
    }
  }
  return r.ok;
}

}  // namespace

const ApplicationSpec* Capture::FindApp(AppId app) const {
  for (const auto& spec : topology.apps) {
    if (spec.id == app) return &spec;
  }
  return nullptr;
}

// --- CaptureWriter ---

CaptureWriter::CaptureWriter(Simulator* sim) : sim_(sim) {
  assert(sim_ != nullptr);
}

CaptureWriter::~CaptureWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

bool CaptureWriter::WriteBlock(uint8_t type, const std::string& payload) {
  if (file_ == nullptr || failed_) return false;
  std::string header;
  header.push_back(static_cast<char>(type));
  PutFixed32(&header, static_cast<uint32_t>(payload.size()));
  PutFixed32(&header, Crc32(payload.data(), payload.size()));
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size() ||
      std::fwrite(payload.data(), 1, payload.size(), file_) !=
          payload.size()) {
    failed_ = true;
    return false;
  }
  bytes_written_ += header.size() + payload.size();
  return true;
}

bool CaptureWriter::Open(const std::string& path, const CaptureInfo& info,
                         const CaptureTopology& topology, std::string* error) {
  assert(file_ == nullptr);
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  if (std::fwrite(kMagic, 1, sizeof(kMagic), file_) != sizeof(kMagic)) {
    failed_ = true;
  }
  bytes_written_ += sizeof(kMagic);
  std::string payload;
  EncodeInfo(info, &payload);
  WriteBlock(kBlockInfo, payload);
  payload.clear();
  EncodeTopology(topology, &payload);
  WriteBlock(kBlockTopology, payload);
  if (failed_ && error != nullptr) *error = "write error on " + path;
  return !failed_;
}

void CaptureWriter::PutTime(double t) {
  const uint64_t bits = DoubleToBits(t);
  PutVarint64(&events_,
              ZigZagEncode(static_cast<int64_t>(bits - prev_time_bits_)));
  prev_time_bits_ = bits;
}

void CaptureWriter::OnArrival(const QueryInstance& query) {
  if (file_ == nullptr || failed_) return;
  events_.push_back(static_cast<char>(kEventArrival));
  PutTime(sim_->Now());
  PutVarint64(&events_, query.app);
  PutVarint64(&events_, query.tmpl->id);
  PutVarint64(&events_, query.client_id);
  ++arrivals_;
  FlushEvents(false);
}

void CaptureWriter::OnExecution(int replica_id, ClassKey key,
                                const std::vector<PageAccess>& accesses) {
  if (file_ == nullptr || failed_) return;
  events_.push_back(static_cast<char>(kEventExecution));
  PutTime(sim_->Now());
  PutVarint64(&events_, static_cast<uint64_t>(replica_id));
  PutVarint64(&events_, key);
  PutVarint64(&events_, accesses.size());
  uint64_t prev_page = 0;
  for (const PageAccess& a : accesses) {
    events_.push_back(static_cast<char>(AccessFlags(a)));
    PutVarint64(&events_,
                ZigZagEncode(static_cast<int64_t>(a.page - prev_page)));
    prev_page = a.page;
  }
  ++executions_;
  accesses_ += accesses.size();
  FlushEvents(false);
}

bool CaptureWriter::FlushEvents(bool force) {
  if (events_.empty()) return true;
  if (!force && events_.size() < kEventsFlushBytes) return true;
  const bool ok = WriteBlock(kBlockEvents, events_);
  events_.clear();
  return ok;
}

bool CaptureWriter::Finalize(
    const std::vector<SelectiveRetuner::Action>& actions,
    const std::vector<SelectiveRetuner::IntervalSample>& samples) {
  if (file_ == nullptr) return false;
  FlushEvents(true);

  std::vector<CaptureAction> out_actions;
  out_actions.reserve(actions.size());
  for (const auto& a : actions) {
    CaptureAction ca;
    ca.t = a.time;
    ca.kind = static_cast<uint8_t>(a.kind);
    ca.app = a.app;
    ca.description = a.description;
    out_actions.push_back(std::move(ca));
  }
  std::string payload;
  EncodeActions(out_actions, &payload);
  WriteBlock(kBlockActions, payload);

  std::vector<CaptureSample> out_samples;
  out_samples.reserve(samples.size());
  for (const auto& s : samples) {
    CaptureSample cs;
    cs.t = s.time;
    for (const auto& a : s.apps) {
      cs.apps.push_back({a.app, a.queries, a.avg_latency, a.p95_latency,
                         a.throughput, a.sla_met, a.servers_used});
    }
    for (const auto& sv : s.servers) {
      cs.servers.push_back({sv.server_id, sv.cpu_utilization,
                            sv.io_utilization});
    }
    out_samples.push_back(std::move(cs));
  }
  payload.clear();
  EncodeSamples(out_samples, &payload);
  WriteBlock(kBlockSamples, payload);

  WriteBlock(kBlockEnd, std::string());
  const bool ok = !failed_ && std::fflush(file_) == 0;
  std::fclose(file_);
  file_ = nullptr;
  return ok;
}

// --- ReadCapture ---

bool ReadCapture(const std::string& path, Capture* out, std::string* error) {
  assert(out != nullptr);
  auto fail = [error](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return fail("cannot open " + path);
  std::string body;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) body.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return fail("read error on " + path);

  if (body.size() < sizeof(kMagic) ||
      std::memcmp(body.data(), kMagic, sizeof(kMagic)) != 0) {
    return fail(path + ": not a capture file (bad magic)");
  }
  *out = Capture();

  const uint8_t* p = reinterpret_cast<const uint8_t*>(body.data()) +
                     sizeof(kMagic);
  const uint8_t* limit = reinterpret_cast<const uint8_t*>(body.data()) +
                         body.size();
  bool seen_info = false;
  bool seen_topology = false;
  bool seen_actions = false;
  bool seen_samples = false;
  uint64_t prev_time_bits = 0;

  while (true) {
    if (p == limit) return fail(path + ": truncated (no end block)");
    const uint8_t type = *p++;
    uint32_t len = 0;
    uint32_t crc = 0;
    if (!GetFixed32(p, limit, &len)) {
      return fail(path + ": truncated block header");
    }
    p += 4;
    if (!GetFixed32(p, limit, &crc)) {
      return fail(path + ": truncated block header");
    }
    p += 4;
    if (len > static_cast<size_t>(limit - p)) {
      return fail(path + ": truncated block payload");
    }
    if (Crc32(p, len) != crc) {
      return fail(path + ": block checksum mismatch (corrupted)");
    }
    Reader r{p, p + len};
    p += len;

    switch (type) {
      case kBlockInfo:
        if (seen_info || seen_topology) return fail(path + ": stray info block");
        if (!DecodeInfo(r, &out->info)) return fail(path + ": bad info block");
        seen_info = true;
        break;
      case kBlockTopology:
        if (!seen_info || seen_topology) {
          return fail(path + ": misplaced topology block");
        }
        if (!DecodeTopology(r, &out->topology)) {
          return fail(path + ": bad topology block");
        }
        seen_topology = true;
        break;
      case kBlockEvents:
        if (!seen_topology) return fail(path + ": events before topology");
        if (!DecodeEvents(r, &prev_time_bits, out)) {
          return fail(path + ": bad events block");
        }
        break;
      case kBlockActions:
        if (!seen_topology || seen_actions) {
          return fail(path + ": misplaced actions block");
        }
        if (!DecodeActions(r, &out->actions)) {
          return fail(path + ": bad actions block");
        }
        seen_actions = true;
        break;
      case kBlockSamples:
        if (!seen_topology || seen_samples) {
          return fail(path + ": misplaced samples block");
        }
        if (!DecodeSamples(r, &out->samples)) {
          return fail(path + ": bad samples block");
        }
        seen_samples = true;
        break;
      case kBlockEnd:
        if (!seen_topology) return fail(path + ": end before topology");
        if (len != 0) return fail(path + ": bad end block");
        if (p != limit) {
          return fail(path + ": trailing garbage after end block");
        }
        return true;
      default:
        return fail(path + ": unknown block type " + std::to_string(type));
    }
  }
}

// --- SnapshotTopology ---

CaptureTopology SnapshotTopology(ClusterHarness& harness) {
  CaptureTopology topo;
  for (const auto& server : harness.resources().servers()) {
    const PhysicalServer::Options& o = server->options();
    CaptureServerSpec s;
    s.cores = o.cores;
    s.memory_pages = o.memory_pages;
    s.random_read_seconds = o.disk.random_read_seconds;
    s.extent_read_seconds = o.disk.extent_read_seconds;
    s.page_write_seconds = o.disk.page_write_seconds;
    topo.servers.push_back(s);
  }
  for (const auto& scheduler : harness.schedulers()) {
    topo.apps.push_back(scheduler->app());
  }
  for (Replica* replica : harness.resources().AllReplicas()) {
    CaptureReplicaSpec rep;
    rep.id = replica->id();
    rep.server = replica->server().id();
    rep.pool_pages = replica->engine().pool().capacity();
    rep.engine_seed = replica->engine().options().seed;
    topo.replicas.push_back(rep);
  }
  for (const auto& scheduler : harness.schedulers()) {
    CapturePlacement pl;
    pl.app = scheduler->app().id;
    for (const Replica* r : scheduler->replicas()) {
      pl.replica_ids.push_back(r->id());
    }
    topo.placements.push_back(std::move(pl));
  }
  return topo;
}

std::vector<TraceRecord> ToLegacyTrace(const Capture& capture) {
  std::vector<TraceRecord> records;
  records.reserve(capture.accesses.size());
  for (const auto& exec : capture.executions) {
    for (uint32_t i = 0; i < exec.access_count; ++i) {
      TraceRecord rec;
      rec.class_key = exec.key;
      rec.access = capture.accesses[exec.access_begin + i];
      records.push_back(rec);
    }
  }
  return records;
}

}  // namespace fglb
