#include "replay/replayer.h"

#include <cassert>
#include <cstdlib>

#include "sim/fault_injector.h"

namespace fglb {

CaptureAccessSource::CaptureAccessSource(const Capture* capture,
                                         double from_time)
    : capture_(capture) {
  assert(capture_ != nullptr);
  for (uint64_t i = 0; i < capture_->executions.size(); ++i) {
    if (capture_->executions[i].t < from_time) continue;
    queues_[capture_->executions[i].key].push_back(i);
    ++remaining_;
  }
}

bool CaptureAccessSource::NextAccesses(ClassKey key,
                                       std::vector<PageAccess>* out) {
  auto it = queues_.find(key);
  if (it == queues_.end() || it->second.empty()) {
    ++misses_;
    return false;
  }
  const CaptureExecution& exec = capture_->executions[it->second.front()];
  it->second.pop_front();
  out->insert(out->end(),
              capture_->accesses.begin() + exec.access_begin,
              capture_->accesses.begin() + exec.access_begin +
                  exec.access_count);
  ++served_;
  --remaining_;
  return true;
}

std::unique_ptr<ClusterHarness> BuildClusterFromCapture(
    const Capture& capture, const ReplayBuildOptions& options,
    CaptureAccessSource* source, std::string* error) {
  auto fail = [error](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return nullptr;
  };

  SelectiveRetuner::Config config;
  config.interval_seconds = capture.info.interval_seconds;
  config.mrc.sample_rate = capture.info.mrc_sample_rate;
  config.mrc.analysis_threads = options.mrc_threads;
  config.max_migrations_per_interval =
      capture.info.max_migrations_per_interval;
  if (!capture.info.mrc_spec.empty()) {
    // Streaming/regret settings must be restored before the harness is
    // built: the retuner enables per-engine streaming estimators in its
    // constructor.
    std::string mrc_error;
    if (!ParseMrcSpec(capture.info.mrc_spec, &config.mrc, &mrc_error)) {
      return fail("capture carries unparsable mrc spec: " + mrc_error);
    }
  }

  auto harness = std::make_unique<ClusterHarness>(config);

  // The buffer hierarchy is baked into each engine at construction, so
  // the captured tier/replacement specs must be installed before the
  // first replica below (and they then also cover replicas the replayed
  // controller provisions mid-run).
  TierConfig tier_config;
  if (!capture.info.tier_spec.empty()) {
    std::string tier_error;
    if (!TierConfig::Parse(capture.info.tier_spec, &tier_config,
                           &tier_error)) {
      return fail("capture carries unparsable tier spec: " + tier_error);
    }
  }
  ReplacementPolicy replacement = ReplacementPolicy::kLru;
  if (!capture.info.replacement_spec.empty() &&
      !ParseReplacementPolicy(capture.info.replacement_spec, &replacement)) {
    return fail("capture carries unknown replacement policy: " +
                capture.info.replacement_spec);
  }
  harness->resources().set_engine_defaults(replacement, tier_config);

  for (const CaptureServerSpec& s : capture.topology.servers) {
    PhysicalServer::Options server_options;
    server_options.cores = s.cores;
    server_options.memory_pages = s.memory_pages;
    server_options.disk.random_read_seconds = s.random_read_seconds;
    server_options.disk.extent_read_seconds = s.extent_read_seconds;
    server_options.disk.page_write_seconds = s.page_write_seconds;
    harness->resources().AddServer(server_options);
  }

  std::map<AppId, Scheduler*> schedulers;
  for (const ApplicationSpec& app : capture.topology.apps) {
    schedulers[app.id] = harness->AddApplication(app);
  }

  // Replicas must come back with their recorded ids: the controller's
  // replayed decisions and the fault schedule both address them by id,
  // and ResourceManager hands out ids in creation order.
  for (const CaptureReplicaSpec& spec : capture.topology.replicas) {
    if (spec.server < 0 ||
        spec.server >=
            static_cast<int>(harness->resources().servers().size())) {
      return fail("capture replica " + std::to_string(spec.id) +
                  " references unknown server " +
                  std::to_string(spec.server));
    }
    Replica* replica = harness->resources().CreateReplica(
        harness->resources().servers()[spec.server].get(), spec.pool_pages,
        spec.engine_seed);
    if (replica == nullptr) {
      return fail("capture replica " + std::to_string(spec.id) +
                  " does not fit on server " + std::to_string(spec.server));
    }
    if (replica->id() != spec.id) {
      return fail("cannot reproduce replica id " + std::to_string(spec.id) +
                  " (got " + std::to_string(replica->id()) + ")");
    }
  }

  for (const CapturePlacement& placement : capture.topology.placements) {
    auto it = schedulers.find(placement.app);
    if (it == schedulers.end()) {
      return fail("capture placement references unknown app " +
                  std::to_string(placement.app));
    }
    for (int id : placement.replica_ids) {
      Replica* replica = harness->resources().FindReplica(id);
      if (replica == nullptr) {
        return fail("capture placement references unknown replica " +
                    std::to_string(id));
      }
      it->second->AddReplica(replica);
    }
  }

  if (!capture.info.admission_spec.empty()) {
    AdmissionConfig admission_config;
    std::string admission_error;
    if (!AdmissionConfig::Parse(capture.info.admission_spec,
                                &admission_config, &admission_error)) {
      return fail("capture carries unparsable admission spec: " +
                  admission_error);
    }
    harness->EnableAdmission(admission_config);
  }

  if (!capture.info.span_spec.empty()) {
    SpanConfig span_config;
    std::string span_error;
    if (!SpanConfig::Parse(capture.info.span_spec, &span_config,
                           &span_error)) {
      return fail("capture carries unparsable span spec: " + span_error);
    }
    harness->EnableSpanTracing(span_config);
  }

  if (!capture.info.stats_spec.empty()) {
    StatsChannelConfig channel_config;
    std::string channel_error;
    if (!StatsChannelConfig::Parse(capture.info.stats_spec, &channel_config,
                                   &channel_error)) {
      return fail("capture carries unparsable stats spec: " + channel_error);
    }
    harness->EnableStatsChannel(channel_config);
  }

  if (!capture.info.ckpt_spec.empty()) {
    // The only key is "interval=<seconds>".
    const std::string& spec = capture.info.ckpt_spec;
    double ckpt_interval = 0;
    if (spec.rfind("interval=", 0) == 0) {
      char* end = nullptr;
      ckpt_interval = std::strtod(spec.c_str() + 9, &end);
      if (end == nullptr || *end != '\0') ckpt_interval = 0;
    }
    if (ckpt_interval <= 0) {
      return fail("capture carries unparsable checkpoint spec: " + spec);
    }
    harness->EnableCheckpointing(ckpt_interval);
  }

  if (source != nullptr) {
    // Existing replicas immediately; replicas the replayed controller
    // provisions (or fault restarts re-create) at creation.
    harness->resources().set_replica_observer([source](Replica* replica) {
      replica->engine().SetAccessReplaySource(source);
    });
  }

  if (!capture.info.fault_spec.empty()) {
    FaultSpec spec;
    std::string fault_error;
    if (!FaultSpec::Parse(capture.info.fault_spec, &spec, &fault_error)) {
      return fail("capture carries unparsable fault spec: " + fault_error);
    }
    harness->InjectFaults(std::move(spec), capture.info.fault_seed);
  }

  return harness;
}

ReplayRunner::ReplayRunner(const Capture* capture, ReplayBuildOptions options)
    : capture_(capture), options_(options) {
  assert(capture_ != nullptr);
}

bool ReplayRunner::Build(std::string* error) {
  if (built_) return harness_ != nullptr;
  built_ = true;
  source_ = std::make_unique<CaptureAccessSource>(capture_,
                                                  options_.from_time);
  harness_ = BuildClusterFromCapture(*capture_, options_, source_.get(),
                                     error);
  if (harness_ == nullptr) return false;
  for (const auto& scheduler : harness_->schedulers()) {
    schedulers_[scheduler->app().id] = scheduler.get();
  }
  return true;
}

void ReplayRunner::FeedFrom(size_t index) {
  if (index >= capture_->arrivals.size()) return;
  const CaptureArrival& a = capture_->arrivals[index];
  harness_->sim().ScheduleAt(a.t, [this, index] {
    const CaptureArrival& arrival = capture_->arrivals[index];
    auto it = schedulers_.find(arrival.app);
    if (it != schedulers_.end()) {
      const QueryTemplate* tmpl =
          it->second->app().FindTemplate(arrival.cls);
      if (tmpl != nullptr) {
        QueryInstance query;
        query.app = arrival.app;
        query.tmpl = tmpl;
        query.client_id = arrival.client_id;
        query.submit_time = harness_->sim().Now();
        it->second->Submit(query, nullptr);
        ++arrivals_fed_;
      }
    }
    FeedFrom(index + 1);
  });
}

bool ReplayRunner::Run(std::string* error) {
  auto fail = [error](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (ran_) return fail("ReplayRunner::Run called twice");
  ran_ = true;
  if (!Build(error)) return false;

  // Validate every arrival resolves before simulating anything; a
  // missing template would silently drop load and skew the replay.
  for (const CaptureArrival& a : capture_->arrivals) {
    auto it = schedulers_.find(a.app);
    if (it == schedulers_.end()) {
      return fail("arrival references unknown app " + std::to_string(a.app));
    }
    if (it->second->app().FindTemplate(a.cls) == nullptr) {
      return fail("arrival references unknown class " + std::to_string(a.cls) +
                  " of app " + std::to_string(a.app));
    }
  }

  harness_->Start();
  FeedFrom(0);
  harness_->RunFor(capture_->info.duration_seconds);

  if (arrivals_fed_ != capture_->arrivals.size()) {
    return fail("fed " + std::to_string(arrivals_fed_) + " of " +
                std::to_string(capture_->arrivals.size()) +
                " recorded arrivals (duration too short?)");
  }
  if (!options_.lenient) {
    if (source_->misses() > 0) {
      return fail("replay diverged: " + std::to_string(source_->misses()) +
                  " executions fell back to generated accesses");
    }
    if (source_->remaining() > 0) {
      return fail("replay diverged: " + std::to_string(source_->remaining()) +
                  " recorded executions were never consumed");
    }
  }
  return true;
}

}  // namespace fglb
