#ifndef FGLB_REPLAY_CAPTURE_H_
#define FGLB_REPLAY_CAPTURE_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/selective_retuner.h"
#include "sim/simulator.h"
#include "storage/page.h"
#include "workload/application.h"
#include "workload/capture_hooks.h"
#include "workload/query_class.h"
#include "workload/trace.h"

namespace fglb {

class ClusterHarness;

// Workload capture: a versioned, compact binary recording of one full
// cluster run — initial topology, every query arrival, every
// execution's concrete page-access string, plus the controller's
// action log and interval series — from which the replay subsystem can
// re-drive the engine/scheduler/controller deterministically and
// evaluate what-if actions offline.
//
// File layout (magic "FGLBCAP1", then a sequence of blocks):
//
//   block   := type:u8  payload_len:fixed32  crc32:fixed32  payload
//   types      1 info, 2 topology, 3 events (repeats), 4 actions,
//              5 samples, 6 end
//
// Payload scalars are varints; signed deltas are zigzag varints;
// doubles travel as fixed64 IEEE bit patterns, except event timestamps
// which are zigzag-varint deltas of consecutive bit patterns (the
// stream is time-ordered, so consecutive patterns are close and the
// encoding stays bit-exact — replay must re-submit at the *identical*
// double time). Page ids are zigzag-varint deltas within an execution.
// Every block's payload is CRC-32 guarded; a reader rejects truncated
// files (no end block), trailing garbage, unknown block types and any
// checksum mismatch.

// Run-identifying metadata (block type 1). `fault_spec`/`fault_seed`
// let the replayer re-arm the identical deterministic fault schedule;
// the controller knobs are the ones that change decisions.
struct CaptureInfo {
  uint64_t seed = 1;
  uint64_t fault_seed = 1;
  std::string scenario;
  std::string fault_spec;
  double duration_seconds = 0;
  double interval_seconds = 10;
  double mrc_sample_rate = 1.0;
  int max_migrations_per_interval = 0;
  // AdmissionConfig::ToString() of the run's overload protection;
  // empty = admission off. Trails the info block as an optional field,
  // so captures written before it existed still decode.
  std::string admission_spec;
  // SpanConfig::ToString() of the run's sampled span tracing; empty =
  // tracing off. Also a trailing optional field.
  std::string span_spec;
  // MrcSpecString() of the run's MRC diagnosis configuration; empty =
  // all defaults (recompute mode, no OPT regret). Also a trailing
  // optional field.
  std::string mrc_spec;
  // TierConfig::ToString() of the engines' second-tier cache; empty =
  // tierless (the pre-tier behaviour). Also a trailing optional field.
  std::string tier_spec;
  // ReplacementPolicyName() of the engines' DRAM partition policy;
  // empty = lru. Also a trailing optional field.
  std::string replacement_spec;
  // StatsChannelConfig::ToString() of the run's stats-report transport
  // ("guard=on" when enabled with all defaults); empty = the direct
  // engine handoff, no channel. Also a trailing optional field.
  std::string stats_spec;
  // Controller checkpoint cadence ("interval=<seconds>"); empty =
  // checkpointing off. Also a trailing optional field.
  std::string ckpt_spec;
};

// Initial cluster assembly (block type 2), sufficient to rebuild the
// pre-Start() state: replicas created later (provisioning, restarts)
// are reproduced by the replayed controller itself.
struct CaptureServerSpec {
  int cores = 4;
  uint64_t memory_pages = 16384;
  double random_read_seconds = 0.002;
  double extent_read_seconds = 0.006;
  double page_write_seconds = 0.001;
};

struct CaptureReplicaSpec {
  int id = 0;
  int server = 0;
  uint64_t pool_pages = 0;
  uint64_t engine_seed = 1;
};

// Replica ids attached to one application's scheduler, in AddReplica
// order (the order feeds the scheduler's round-robin state).
struct CapturePlacement {
  AppId app = 0;
  std::vector<int> replica_ids;
};

struct CaptureTopology {
  std::vector<CaptureServerSpec> servers;
  std::vector<ApplicationSpec> apps;  // registration order
  std::vector<CaptureReplicaSpec> replicas;
  std::vector<CapturePlacement> placements;
};

// One recorded query arrival at a scheduler.
struct CaptureArrival {
  double t = 0;
  AppId app = 0;
  QueryClassId cls = 0;
  uint64_t client_id = 0;
};

// One recorded execution: `access_count` entries of Capture::accesses
// starting at `access_begin` (flat pool, avoids per-execution
// allocations).
struct CaptureExecution {
  double t = 0;
  int replica = 0;
  ClassKey key = 0;
  uint64_t access_begin = 0;
  uint32_t access_count = 0;
};

struct CaptureAction {
  double t = 0;
  uint8_t kind = 0;  // SelectiveRetuner::ActionKind
  AppId app = 0;
  std::string description;
};

// Mirrors SelectiveRetuner::IntervalSample (stored so summaries and
// what-if window selection need no re-simulation).
struct CaptureAppSample {
  AppId app = 0;
  uint64_t queries = 0;
  double avg_latency = 0;
  double p95_latency = 0;
  double throughput = 0;
  bool sla_met = true;
  int servers_used = 0;
};

struct CaptureServerSample {
  int server_id = 0;
  double cpu_utilization = 0;
  double io_utilization = 0;
};

struct CaptureSample {
  double t = 0;
  std::vector<CaptureAppSample> apps;
  std::vector<CaptureServerSample> servers;
};

// A fully loaded capture.
struct Capture {
  CaptureInfo info;
  CaptureTopology topology;
  std::vector<CaptureArrival> arrivals;
  std::vector<CaptureExecution> executions;
  std::vector<PageAccess> accesses;  // flat pool for executions
  std::vector<CaptureAction> actions;
  std::vector<CaptureSample> samples;

  const ApplicationSpec* FindApp(AppId app) const;
};

// Streaming capture writer. Hook it into a live run via
// ClusterHarness::AttachRecorders(); events are buffered and flushed
// as CRC-guarded blocks once the buffer passes a threshold, so capture
// cost stays O(bytes) with no per-event I/O.
class CaptureWriter : public ArrivalRecorder, public ExecutionRecorder {
 public:
  explicit CaptureWriter(Simulator* sim);
  ~CaptureWriter() override;
  CaptureWriter(const CaptureWriter&) = delete;
  CaptureWriter& operator=(const CaptureWriter&) = delete;

  // Opens `path` and writes the info + topology blocks. Returns false
  // with a message in *error on I/O failure.
  bool Open(const std::string& path, const CaptureInfo& info,
            const CaptureTopology& topology, std::string* error);

  // Recorder hooks (stamped with the simulator's current time).
  void OnArrival(const QueryInstance& query) override;
  void OnExecution(int replica_id, ClassKey key,
                   const std::vector<PageAccess>& accesses) override;

  // Writes the actions/samples/end blocks and closes the file. Returns
  // false on I/O failure. The writer must not be reused afterwards.
  bool Finalize(const std::vector<SelectiveRetuner::Action>& actions,
                const std::vector<SelectiveRetuner::IntervalSample>& samples);

  uint64_t arrivals_recorded() const { return arrivals_; }
  uint64_t executions_recorded() const { return executions_; }
  uint64_t accesses_recorded() const { return accesses_; }
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  void PutTime(double t);
  bool FlushEvents(bool force);
  bool WriteBlock(uint8_t type, const std::string& payload);

  Simulator* sim_;
  std::FILE* file_ = nullptr;
  std::string events_;  // pending events-block payload
  uint64_t prev_time_bits_ = 0;
  uint64_t arrivals_ = 0;
  uint64_t executions_ = 0;
  uint64_t accesses_ = 0;
  uint64_t bytes_written_ = 0;
  bool failed_ = false;
};

// Loads a capture file written by CaptureWriter. Returns false with a
// one-line message in *error on I/O error, version mismatch,
// truncation, checksum mismatch or trailing garbage; *out is left in
// an unspecified state on failure.
bool ReadCapture(const std::string& path, Capture* out, std::string* error);

// Snapshots a fully assembled (pre-Start) harness into the topology
// section the writer needs.
CaptureTopology SnapshotTopology(ClusterHarness& harness);

// Flattens a capture's executions into legacy per-class trace records
// (workload/trace.h), preserving admission order.
std::vector<TraceRecord> ToLegacyTrace(const Capture& capture);

}  // namespace fglb

#endif  // FGLB_REPLAY_CAPTURE_H_
