#ifndef FGLB_REPLAY_WHAT_IF_H_
#define FGLB_REPLAY_WHAT_IF_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "replay/capture.h"

namespace fglb {

// Offline what-if evaluation: replays a captured violation window once
// per candidate action — per-class buffer-pool quota, re-placement on
// a fresh replica, or do-nothing — with the live controller switched
// off, so the only difference between runs is the candidate itself.
// Candidates are scored on SLA recovery for the violating application
// against interference inflicted on the others, which lets an operator
// (or a test) check the controller's live choice against the
// counterfactuals it did not take.
//
// Scoring, per candidate c over the horizon (noop is the baseline and
// scores exactly 0):
//   recovery_c     = (V_noop - V_c)
//                    + clamp((L_noop - L_c) / SLA, -1, 1)
//   interference_c = max over apps a != target of
//                    max(0, L_c,a - L_noop,a) / SLA_a
//   score_c        = recovery_c - 0.5 * interference_c
// where V = violating intervals of the target app in the horizon and
// L = mean interval latency. Ties within 0.05 go to the cheaper action
// (noop < quota < migrate).

struct WhatIfOptions {
  // Start of the violation window; negative = auto-detect from the
  // capture's sample series (start of the first SLA-violating
  // interval).
  double window_start = -1;
  // How long after window_start candidates are evaluated.
  double horizon_seconds = 60;
  // Buffer-pool quota for the quota candidate; 0 = auto (half the
  // problem class's distinct-page footprint in the violating interval,
  // clamped to [64, pool capacity / 4]).
  uint64_t quota_pages = 0;
};

struct WhatIfCandidate {
  std::string name;  // "noop" | "quota" | "migrate"
  bool feasible = true;
  std::string detail;
  double score = 0;
  double recovery = 0;
  double interference = 0;
  // Target-app outcome over the horizon.
  int violations = 0;
  double avg_latency = 0;
  // Mean interval latency per app over the horizon.
  std::map<AppId, double> app_latency;
};

struct WhatIfResult {
  double window_start = 0;
  double window_end = 0;
  AppId target_app = 0;     // the violating application being rescued
  ClassKey problem_class = 0;  // the diagnosed interferer
  std::vector<WhatIfCandidate> candidates;  // ranked, best first
  // What the live controller actually did inside the window
  // ("migrate", "quota" or "noop"), and whether the top-ranked
  // candidate matches it.
  std::string live_choice;
  bool agrees_with_live = false;

  std::string Format() const;  // human-readable report
};

class WhatIfRunner {
 public:
  explicit WhatIfRunner(const Capture* capture, WhatIfOptions options = {});

  // Runs all three candidate replays and ranks them. Returns false
  // with *error set when no violation window can be found (nothing to
  // evaluate) or the capture cannot be rebuilt.
  bool Run(WhatIfResult* result, std::string* error);

 private:
  const Capture* capture_;
  WhatIfOptions options_;
};

}  // namespace fglb

#endif  // FGLB_REPLAY_WHAT_IF_H_
