#include "engine/metrics.h"

#include <cstdio>

namespace fglb {

const char* MetricName(Metric metric) {
  switch (metric) {
    case Metric::kLatency:
      return "latency";
    case Metric::kThroughput:
      return "throughput";
    case Metric::kPageAccesses:
      return "page_accesses";
    case Metric::kBufferMisses:
      return "buffer_misses";
    case Metric::kIoRequests:
      return "io_requests";
    case Metric::kReadAheads:
      return "read_aheads";
    case Metric::kLockWaits:
      return "lock_waits";
  }
  return "unknown";
}

std::string MetricVectorToString(const MetricVector& v) {
  std::string out;
  char buf[64];
  for (Metric m : kAllMetrics) {
    std::snprintf(buf, sizeof(buf), "%s%s=%.4g", out.empty() ? "" : " ",
                  MetricName(m), At(v, m));
    out += buf;
  }
  return out;
}

}  // namespace fglb
