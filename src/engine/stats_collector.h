#ifndef FGLB_ENGINE_STATS_COLLECTOR_H_
#define FGLB_ENGINE_STATS_COLLECTOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/metrics_registry.h"
#include "common/ring_window.h"
#include "common/span_pair.h"
#include "engine/metrics.h"
#include "mrc/streaming_mrc.h"
#include "storage/page.h"
#include "workload/query_class.h"

namespace fglb {

// Raw execution counters produced by running one query instance.
struct ExecutionCounters {
  uint64_t page_accesses = 0;
  // Physical page reads: random-read misses plus pages fetched by
  // read-ahead (InnoDB's "pages read").
  uint64_t buffer_misses = 0;
  // Random-read misses only (subset of buffer_misses). Logical hit
  // ratio of a class is (accesses - random_misses - read_aheads) /
  // accesses: one stall per random miss or extent fetch.
  uint64_t random_misses = 0;
  // I/O block requests issued: random reads + extent fetches + writes
  // (tier-2 hits included: an SSD read is still a block request).
  uint64_t io_requests = 0;
  // Random-read DRAM misses served by the second-tier block cache
  // (subset of buffer_misses, disjoint from random_misses): the page
  // was promoted from tier 2 at SSD latency instead of read from disk.
  // Always 0 without a configured tier.
  uint64_t tier2_hits = 0;
  uint64_t read_aheads = 0;
  uint64_t page_writes = 0;
  // Resource demands derived from the above.
  double cpu_seconds = 0;
  double io_seconds = 0;
  // Write-lock critical section: stripes to lock exclusively at commit
  // and how long the commit work holds them. Empty for read-only
  // queries (consistent reads are non-blocking, as in InnoDB MVCC).
  std::vector<PageId> write_stripes;
  double commit_seconds = 0;
  // Filled in by the replica at completion: time spent queued on locks.
  double lock_wait_seconds = 0;
};

// Fault-injected degradation of the statistics feed (the paper's
// per-thread logging buffers can be disabled or can lose data under
// load). Values match the sim-layer kStatsDropAll/kStatsPartial
// constants so the fault injector can pass modes as plain ints.
enum class StatsDropout {
  kNone = 0,
  kDropAll = 1,  // EndInterval reports nothing (collector offline)
  kPartial = 2,  // EndInterval reports only some classes (lossy buffers)
};

// Lightweight per-query-class statistics collection inside one engine
// (the paper instruments MySQL/InnoDB with per-thread private logging
// buffers; in this single-threaded simulation the collector accumulates
// directly — the data it yields is the same). Counters accumulate per
// measurement interval; a ring window additionally keeps the most
// recent page accesses per class for on-demand MRC recomputation.
class StatsCollector {
 public:
  explicit StatsCollector(size_t access_window_capacity = 30000);

  // Records a page reference into the class's recent-access window.
  void RecordPageAccess(ClassKey key, PageId page);

  // Resolve-once handle for the engine's per-query hot loop: one class
  // lookup per query instead of one map lookup per page access. Valid
  // as long as the collector lives (class states never move).
  class AccessRecorder {
   public:
    void Record(PageId page) {
      window_->Push(page);
      if (stream_ != nullptr) stream_->Record(page);
    }

   private:
    friend class StatsCollector;
    AccessRecorder(RingWindow<PageId>* window, StreamingMrcEstimator* stream)
        : window_(window), stream_(stream) {}
    RingWindow<PageId>* window_;
    StreamingMrcEstimator* stream_;
  };
  AccessRecorder RecorderFor(ClassKey key) {
    PerClass& state = ClassState(key);
    return AccessRecorder(&state.window, state.stream.get());
  }

  // Turns on per-class streaming MRC estimation: every page reference
  // is additionally fed to a per-class StreamingMrcEstimator so the
  // diagnosis path can snapshot an always-fresh curve instead of
  // replaying the access window. `options.window_accesses == 0` means
  // "match the access window capacity", keeping streaming curves and
  // window recomputations over the same horizon. Existing classes get
  // estimators immediately (starting cold); future classes get them on
  // first touch.
  void EnableStreamingMrc(StreamingMrcEstimator::Options options);
  bool streaming_mrc_enabled() const { return streaming_mrc_.has_value(); }

  // The class's streaming estimator, or nullptr if streaming MRC is
  // off or the class is unseen.
  const StreamingMrcEstimator* StreamingFor(ClassKey key) const;

  // Records a completed query with its end-to-end latency and counters.
  void RecordQuery(ClassKey key, double latency_seconds,
                   const ExecutionCounters& counters);

  // Ends the current measurement interval: returns per-class metric
  // vectors (averages/rates over `interval_seconds`) and resets
  // interval accumulators. Access windows persist across intervals.
  std::map<ClassKey, MetricVector> EndInterval(double interval_seconds);

  // Recent page accesses of a class, oldest first. Empty if unseen.
  std::vector<PageId> AccessWindow(ClassKey key) const;

  // Zero-copy wrap-aware snapshot of the same window (at most two
  // spans). Valid until the class's next RecordPageAccess; the MRC
  // recomputation path consumes this directly instead of copying the
  // window per diagnosis.
  SpanPair<PageId> AccessWindowSpans(ClassKey key) const;

  // Classes with any activity since construction.
  std::vector<ClassKey> KnownClasses() const;

  // Points RecordQuery at a queries counter and an end-to-end latency
  // histogram (microseconds). Null pointers unbind; the unbound path
  // costs one branch per completed query.
  void BindMetrics(Counter* queries, LatencyHistogram* latency_us) {
    queries_metric_ = queries;
    latency_us_metric_ = latency_us;
  }

  // Total queries completed since construction.
  uint64_t total_queries() const { return total_queries_; }

  // Degrades (or restores) what EndInterval reports. Accumulators keep
  // running regardless — only the reporting is lossy, so a restored
  // collector needs no warm-up.
  void set_dropout(StatsDropout mode) { dropout_ = mode; }
  StatsDropout dropout() const { return dropout_; }

 private:
  struct PerClass {
    // Interval accumulators.
    uint64_t queries = 0;
    double latency_sum = 0;
    uint64_t page_accesses = 0;
    uint64_t buffer_misses = 0;
    uint64_t io_requests = 0;
    uint64_t read_aheads = 0;
    double lock_wait_seconds = 0;
    // Recent accesses for MRC recomputation.
    RingWindow<PageId> window;
    // Incremental curve over the same window (streaming mode only).
    std::unique_ptr<StreamingMrcEstimator> stream;

    explicit PerClass(size_t window_capacity) : window(window_capacity) {}
  };

  PerClass& ClassState(ClassKey key);

  size_t window_capacity_;
  std::optional<StreamingMrcEstimator::Options> streaming_mrc_;
  std::map<ClassKey, std::unique_ptr<PerClass>> classes_;
  uint64_t total_queries_ = 0;
  Counter* queries_metric_ = nullptr;
  LatencyHistogram* latency_us_metric_ = nullptr;
  StatsDropout dropout_ = StatsDropout::kNone;
};

}  // namespace fglb

#endif  // FGLB_ENGINE_STATS_COLLECTOR_H_
