#ifndef FGLB_ENGINE_METRICS_H_
#define FGLB_ENGINE_METRICS_H_

#include <array>
#include <cstddef>
#include <string>

namespace fglb {

// The per-query-class metrics the paper's statistics collection tracks
// inside each DBMS (§3.3): latency, throughput, buffer pool misses,
// page accesses, I/O block requests and read-ahead (prefetch) requests.
enum class Metric : size_t {
  kLatency = 0,       // average query latency, seconds
  kThroughput = 1,    // queries completed per second
  kPageAccesses = 2,  // logical page references per interval
  kBufferMisses = 3,  // physical page reads per interval
  kIoRequests = 4,    // I/O block requests per interval
  kReadAheads = 5,    // read-ahead (extent prefetch) requests per interval
  // Extension beyond the paper's six (its §7 names lock contention as
  // future work): seconds spent waiting for write locks per interval.
  kLockWaits = 6,
};

inline constexpr size_t kNumMetrics = 7;

using MetricVector = std::array<double, kNumMetrics>;

inline constexpr std::array<Metric, kNumMetrics> kAllMetrics = {
    Metric::kLatency,      Metric::kThroughput, Metric::kPageAccesses,
    Metric::kBufferMisses, Metric::kIoRequests, Metric::kReadAheads,
    Metric::kLockWaits,
};

const char* MetricName(Metric metric);

// Memory-related counters: outliers in these trigger MRC recomputation
// and memory-interference diagnosis (§3.3.2).
constexpr bool IsMemoryMetric(Metric metric) {
  return metric == Metric::kPageAccesses || metric == Metric::kBufferMisses ||
         metric == Metric::kReadAheads;
}

constexpr double& At(MetricVector& v, Metric m) {
  return v[static_cast<size_t>(m)];
}
constexpr double At(const MetricVector& v, Metric m) {
  return v[static_cast<size_t>(m)];
}

std::string MetricVectorToString(const MetricVector& v);

}  // namespace fglb

#endif  // FGLB_ENGINE_METRICS_H_
