#include "engine/database_engine.h"

#include <algorithm>
#include <cassert>

namespace fglb {

DatabaseEngine::DatabaseEngine(std::string name, const Options& options,
                               const DiskModel* disk_model)
    : name_(std::move(name)),
      options_(options),
      pool_(options.buffer_pool_pages, options.replacement),
      stats_(options.access_window_capacity),
      disk_model_(disk_model),
      rng_(options.seed) {
  assert(disk_model != nullptr);
  if (options.tier.enabled()) {
    tier2_ = std::make_unique<TieredBufferPool>(options.tier);
    // Demote-on-DRAM-evict: every page a partition pushes out under
    // capacity pressure lands in the matching tier-2 partition.
    pool_.SetEvictionListener([tier = tier2_.get()](PartitionKey key,
                                                    PageId page) {
      tier->Demote(key, page);
    });
  }
}

ExecutionCounters DatabaseEngine::Execute(const QueryInstance& query) {
  assert(query.tmpl != nullptr);
  const ClassKey key = query.class_key();
  scratch_.clear();
  if (replay_source_ != nullptr && replay_source_->NextAccesses(key,
                                                               &scratch_)) {
    ++replayed_executions_;
  } else {
    if (replay_source_ != nullptr) ++generated_fallbacks_;
    generator_.Generate(*query.tmpl, rng_, &scratch_);
  }
  if (execution_recorder_ != nullptr) {
    execution_recorder_->OnExecution(recorder_replica_id_, key, scratch_);
  }

  ExecutionCounters counters;
  // Resolve the class's stats window and buffer-pool partition once;
  // the access string is then consumed as one contiguous span against
  // them (these lookups used to run once per page access).
  StatsCollector::AccessRecorder recorder = stats_.RecorderFor(key);
  PageCache& partition = pool_.PartitionOf(key);
  counters.page_accesses = scratch_.size();
  for (const PageAccess& access : scratch_) {
    recorder.Record(access.page);
    if (access.is_write) ++counters.page_writes;
    if (access.kind == AccessKind::kSequential) {
      // Sequential run: if the page is not resident, read-ahead fetches
      // its whole 64-page extent in one I/O, so the page (and its
      // neighbours) then hit logically.
      if (!partition.Contains(access.page)) {
        ++counters.read_aheads;
        ++counters.io_requests;
        const uint64_t offset = OffsetOf(access.page);
        const uint64_t extent_start = offset - offset % kExtentPages;
        for (uint64_t i = 0; i < kExtentPages; ++i) {
          if (partition.Insert(MakePageId(TableOf(access.page),
                                          extent_start + i))) {
            ++counters.buffer_misses;  // physically read from disk
          }
        }
      }
      partition.Access(access.page);
    } else {
      if (!partition.Access(access.page)) {
        // DRAM miss: probe the second-tier cache before going to disk.
        // A tier-2 hit promotes the page (Access above already made it
        // DRAM-resident; PromoteHit removed the tier copy) and costs
        // SSD latency; a tier-2 miss is a disk random read.
        if (tier2_ != nullptr && tier2_->PromoteHit(key, access.page)) {
          ++counters.tier2_hits;
          ++counters.buffer_misses;
          ++counters.io_requests;
        } else {
          ++counters.random_misses;
          ++counters.buffer_misses;
          ++counters.io_requests;
        }
      }
    }
  }
  if (counters.page_writes > 0) {
    // Distinct stripes written, sorted: the commit's exclusive lock
    // set (sorted acquisition order prevents deadlock).
    for (const PageAccess& access : scratch_) {
      if (access.is_write) {
        counters.write_stripes.push_back(StripeOf(access.page));
      }
    }
    std::sort(counters.write_stripes.begin(), counters.write_stripes.end());
    counters.write_stripes.erase(
        std::unique(counters.write_stripes.begin(),
                    counters.write_stripes.end()),
        counters.write_stripes.end());
    counters.commit_seconds =
        query.tmpl->commit_hold_seconds +
        200e-6 * static_cast<double>(counters.page_writes);
  }
  counters.io_requests += counters.page_writes;
  counters.cpu_seconds =
      query.tmpl->fixed_cpu_seconds +
      query.tmpl->cpu_seconds_per_page *
          static_cast<double>(counters.page_accesses);
  counters.io_seconds = disk_model_->ServiceDemand(
      counters.random_misses, counters.read_aheads, counters.page_writes);
  if (counters.tier2_hits > 0) {
    counters.io_seconds += static_cast<double>(counters.tier2_hits) *
                           tier2_->HitServiceSeconds();
  }
  return counters;
}

void DatabaseEngine::RecordCompletion(ClassKey key, double latency_seconds,
                                      const ExecutionCounters& counters) {
  if (execution_timeout_seconds_ > 0 &&
      latency_seconds > execution_timeout_seconds_) {
    ++timeouts_;
    if (timeouts_counter_ != nullptr) timeouts_counter_->Increment();
  }
  stats_.RecordQuery(key, latency_seconds, counters);
}

bool DatabaseEngine::SetQuota(ClassKey key, uint64_t pages) {
  return pool_.SetQuota(key, pages);
}

void DatabaseEngine::DropQuota(ClassKey key) { pool_.DropQuota(key); }

bool DatabaseEngine::SetTierQuota(ClassKey key, uint64_t pages) {
  return tier2_ != nullptr && tier2_->SetQuota(key, pages);
}

void DatabaseEngine::DropTierQuota(ClassKey key) {
  if (tier2_ != nullptr) tier2_->DropQuota(key);
}

void DatabaseEngine::BindMetrics(MetricsRegistry* registry) {
  metrics_ = registry;
  if (registry == nullptr) {
    stats_.BindMetrics(nullptr, nullptr);
    timeouts_counter_ = nullptr;
    return;
  }
  const std::string prefix = "engine." + name_ + ".";
  stats_.BindMetrics(registry->counter(prefix + "queries"),
                     registry->histogram(prefix + "latency_us"));
  timeouts_counter_ = registry->counter(prefix + "timeouts");
}

void DatabaseEngine::PublishMetrics() const {
  if (metrics_ == nullptr) return;
  pool_.PublishMetrics(metrics_, "engine." + name_ + ".bufferpool.");
  if (tier2_ != nullptr) {
    tier2_->PublishMetrics(metrics_, "engine." + name_ + ".tier.");
  }
}

}  // namespace fglb
