#ifndef FGLB_ENGINE_DATABASE_ENGINE_H_
#define FGLB_ENGINE_DATABASE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics_registry.h"
#include "common/random.h"
#include "engine/stats_collector.h"
#include "storage/disk_model.h"
#include "storage/page.h"
#include "storage/partitioned_buffer_pool.h"
#include "storage/replacement_policy.h"
#include "storage/tiered_buffer_pool.h"
#include "workload/access_generator.h"
#include "workload/capture_hooks.h"
#include "workload/query_class.h"

namespace fglb {

// A MySQL/InnoDB-like database engine simulator: one buffer pool
// (optionally partitioned by per-class quotas), per-class statistics
// collection, and a trace-driven execution model that converts a query
// instance into page references, buffer-pool activity and CPU/I/O
// demands. One engine may serve several applications (the paper's
// shared-DBMS consolidation scenario); timing/queueing is the hosting
// replica's job.
class DatabaseEngine {
 public:
  struct Options {
    uint64_t buffer_pool_pages = 8192;  // 128 MB of 16 KiB pages
    size_t access_window_capacity = 30000;
    uint64_t seed = 1;
    // Replacement policy every buffer-pool partition runs.
    ReplacementPolicy replacement = ReplacementPolicy::kLru;
    // Second-tier block cache between DRAM and disk; tier.pages == 0
    // (the default) leaves the engine tierless.
    TierConfig tier;
  };

  DatabaseEngine(std::string name, const Options& options,
                 const DiskModel* disk_model);
  DatabaseEngine(const DatabaseEngine&) = delete;
  DatabaseEngine& operator=(const DatabaseEngine&) = delete;

  // Executes one query instance: generates its page-reference string,
  // drives the buffer pool (with extent read-ahead on sequential runs),
  // records per-class access windows, and returns the counters plus
  // CPU/I/O demands. Latency is recorded separately at completion via
  // RecordCompletion().
  ExecutionCounters Execute(const QueryInstance& query);

  // Records a completed query's end-to-end latency with its counters
  // into the per-class statistics.
  void RecordCompletion(ClassKey key, double latency_seconds,
                        const ExecutionCounters& counters);

  // Buffer-pool quota enforcement for a query class (the paper's
  // fine-grained memory allocation action). Returns false if quotas
  // would exceed pool capacity.
  bool SetQuota(ClassKey key, uint64_t pages);
  void DropQuota(ClassKey key);

  // Tier-2 quota enforcement, mirroring the DRAM quotas. No-ops
  // returning false / nothing when the engine has no tier.
  bool SetTierQuota(ClassKey key, uint64_t pages);
  void DropTierQuota(ClassKey key);

  // Hooks this engine's stats into `registry` under "engine.<name>.":
  // a completed-query counter and latency histogram updated inline, and
  // buffer-pool stats published by PublishMetrics(). Null unbinds.
  void BindMetrics(MetricsRegistry* registry);

  // Copies cumulative buffer-pool stats into the bound registry
  // ("engine.<name>.bufferpool.*"). Called once per sampling interval.
  void PublishMetrics() const;

  const std::string& name() const { return name_; }
  PartitionedBufferPool& pool() { return pool_; }
  const PartitionedBufferPool& pool() const { return pool_; }
  StatsCollector& stats() { return stats_; }
  const StatsCollector& stats() const { return stats_; }

  // Fault-injection forwarder: degrades/restores the stats feed.
  void set_stats_dropout(StatsDropout mode) { stats_.set_dropout(mode); }

  // Second-tier cache, null when the engine runs tierless.
  TieredBufferPool* tier2() { return tier2_.get(); }
  const TieredBufferPool* tier2() const { return tier2_.get(); }

  // Fault-injection forwarders for the tier (no-ops without one):
  // fail = the tier serves nothing and recovers cold; the latency
  // factor scales every tier-2 hit's service time (degrade).
  void SetTierFailed(bool failed) {
    if (tier2_ != nullptr) tier2_->SetFailed(failed);
  }
  void SetTierLatencyFactor(double factor) {
    if (tier2_ != nullptr) tier2_->SetLatencyFactor(factor);
  }

  // Turns on per-class streaming MRC estimation in the stats feed
  // (forwarder; see StatsCollector::EnableStreamingMrc).
  void EnableStreamingMrc(StreamingMrcEstimator::Options options) {
    stats_.EnableStreamingMrc(options);
  }

  // Execution-timeout accounting: completions slower than this count
  // as timed out ("engine.<name>.timeouts" when metrics are bound) —
  // the signal the admission layer's circuit breakers key off. 0 (the
  // default) disables the check. Queries still complete; the engine
  // only classifies, it never kills.
  void set_execution_timeout_seconds(double seconds) {
    execution_timeout_seconds_ = seconds;
  }
  double execution_timeout_seconds() const {
    return execution_timeout_seconds_;
  }
  uint64_t timeouts() const { return timeouts_; }
  const DiskModel& disk_model() const { return *disk_model_; }
  const Options& options() const { return options_; }

  // --- capture/replay hooks ---
  // `recorder` observes every execution's generated access string
  // (tagged with the hosting replica's id); null detaches.
  void SetExecutionRecorder(ExecutionRecorder* recorder, int replica_id) {
    execution_recorder_ = recorder;
    recorder_replica_id_ = replica_id;
  }
  // `source` supplies recorded access strings instead of the generator;
  // executions the source cannot serve fall back to generation and are
  // counted in generated_fallbacks(). Null restores pure generation.
  void SetAccessReplaySource(AccessReplaySource* source) {
    replay_source_ = source;
  }
  uint64_t replayed_executions() const { return replayed_executions_; }
  uint64_t generated_fallbacks() const { return generated_fallbacks_; }

 private:
  std::string name_;
  Options options_;
  PartitionedBufferPool pool_;
  std::unique_ptr<TieredBufferPool> tier2_;
  StatsCollector stats_;
  const DiskModel* disk_model_;
  MetricsRegistry* metrics_ = nullptr;
  AccessGenerator generator_;
  Rng rng_;
  std::vector<PageAccess> scratch_;
  ExecutionRecorder* execution_recorder_ = nullptr;
  int recorder_replica_id_ = -1;
  AccessReplaySource* replay_source_ = nullptr;
  uint64_t replayed_executions_ = 0;
  uint64_t generated_fallbacks_ = 0;
  double execution_timeout_seconds_ = 0;
  uint64_t timeouts_ = 0;
  Counter* timeouts_counter_ = nullptr;
};

}  // namespace fglb

#endif  // FGLB_ENGINE_DATABASE_ENGINE_H_
