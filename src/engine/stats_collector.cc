#include "engine/stats_collector.h"

#include <cassert>

namespace fglb {

StatsCollector::StatsCollector(size_t access_window_capacity)
    : window_capacity_(access_window_capacity) {}

StatsCollector::PerClass& StatsCollector::ClassState(ClassKey key) {
  auto it = classes_.find(key);
  if (it == classes_.end()) {
    it = classes_.emplace(key, std::make_unique<PerClass>(window_capacity_))
             .first;
    if (streaming_mrc_.has_value()) {
      it->second->stream =
          std::make_unique<StreamingMrcEstimator>(*streaming_mrc_);
    }
  }
  return *it->second;
}

void StatsCollector::EnableStreamingMrc(
    StreamingMrcEstimator::Options options) {
  if (options.window_accesses == 0) options.window_accesses = window_capacity_;
  streaming_mrc_ = options;
  for (auto& [key, state] : classes_) {
    if (state->stream == nullptr) {
      state->stream = std::make_unique<StreamingMrcEstimator>(options);
    }
  }
}

const StreamingMrcEstimator* StatsCollector::StreamingFor(
    ClassKey key) const {
  auto it = classes_.find(key);
  if (it == classes_.end()) return nullptr;
  return it->second->stream.get();
}

void StatsCollector::RecordPageAccess(ClassKey key, PageId page) {
  PerClass& state = ClassState(key);
  state.window.Push(page);
  if (state.stream != nullptr) state.stream->Record(page);
}

void StatsCollector::RecordQuery(ClassKey key, double latency_seconds,
                                 const ExecutionCounters& counters) {
  PerClass& state = ClassState(key);
  ++state.queries;
  ++total_queries_;
  state.latency_sum += latency_seconds;
  state.page_accesses += counters.page_accesses;
  state.buffer_misses += counters.buffer_misses;
  state.io_requests += counters.io_requests;
  state.read_aheads += counters.read_aheads;
  state.lock_wait_seconds += counters.lock_wait_seconds;
  if (queries_metric_ != nullptr) queries_metric_->Increment();
  if (latency_us_metric_ != nullptr) {
    latency_us_metric_->Record(latency_seconds * 1e6);
  }
}

std::map<ClassKey, MetricVector> StatsCollector::EndInterval(
    double interval_seconds) {
  assert(interval_seconds > 0);
  std::map<ClassKey, MetricVector> result;
  size_t class_index = 0;
  for (auto& [key, state] : classes_) {
    const size_t index = class_index++;
    if (state->queries == 0 && state->page_accesses == 0) continue;
    // Dropped intervals still reset the accumulators below: the data is
    // lost, not deferred — exactly how a dead logging buffer behaves.
    const bool report =
        dropout_ == StatsDropout::kNone ||
        (dropout_ == StatsDropout::kPartial && index % 2 == 0);
    if (!report) {
      state->queries = 0;
      state->latency_sum = 0;
      state->page_accesses = 0;
      state->buffer_misses = 0;
      state->io_requests = 0;
      state->read_aheads = 0;
      state->lock_wait_seconds = 0;
      continue;
    }
    MetricVector v{};
    At(v, Metric::kLatency) =
        state->queries > 0 ? state->latency_sum / state->queries : 0.0;
    At(v, Metric::kThroughput) =
        static_cast<double>(state->queries) / interval_seconds;
    At(v, Metric::kPageAccesses) = static_cast<double>(state->page_accesses);
    At(v, Metric::kBufferMisses) = static_cast<double>(state->buffer_misses);
    At(v, Metric::kIoRequests) = static_cast<double>(state->io_requests);
    At(v, Metric::kReadAheads) = static_cast<double>(state->read_aheads);
    At(v, Metric::kLockWaits) = state->lock_wait_seconds;
    result[key] = v;
    state->queries = 0;
    state->latency_sum = 0;
    state->page_accesses = 0;
    state->buffer_misses = 0;
    state->io_requests = 0;
    state->read_aheads = 0;
    state->lock_wait_seconds = 0;
  }
  return result;
}

std::vector<PageId> StatsCollector::AccessWindow(ClassKey key) const {
  auto it = classes_.find(key);
  if (it == classes_.end()) return {};
  return it->second->window.ToVector();
}

SpanPair<PageId> StatsCollector::AccessWindowSpans(ClassKey key) const {
  auto it = classes_.find(key);
  if (it == classes_.end()) return {};
  return it->second->window.AsSpans();
}

std::vector<ClassKey> StatsCollector::KnownClasses() const {
  std::vector<ClassKey> keys;
  keys.reserve(classes_.size());
  for (const auto& [key, state] : classes_) keys.push_back(key);
  return keys;
}

}  // namespace fglb
