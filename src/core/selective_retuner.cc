#include "core/selective_retuner.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "cluster/stats_channel.h"
#include "common/json.h"
#include "common/span_tracer.h"
#include "common/varint.h"
#include "core/io_interference.h"

namespace fglb {

namespace {

std::string ClassLabel(ClassKey key) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "app=%u/class=%u", AppOf(key), ClassOf(key));
  return buf;
}

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// {"app":1,"cls":3} fragment used by every per-class trace payload.
void AppendClassFields(std::string* out, ClassKey key) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "\"app\":%u,\"cls\":%u", AppOf(key),
                ClassOf(key));
  *out += buf;
}

}  // namespace

SelectiveRetuner::SelectiveRetuner(Simulator* sim, ResourceManager* resources,
                                   Config config)
    : sim_(sim),
      resources_(resources),
      config_(config),
      metrics_(config.metrics),
      trace_(config.trace),
      spans_(config.spans) {
  assert(sim_ && resources_);
  if (metrics_ != nullptr) {
    tick_us_ = metrics_->histogram("controller.tick_us");
    violations_ = metrics_->counter("controller.violations");
    planner_.BindMetrics(metrics_);
  }
  if (config_.mrc.mode == MrcMode::kStreaming) {
    // Every engine maintains per-class streaming estimators at the
    // same hash-sample rate the recompute path would use, windowed to
    // the collector's access-window capacity so both modes see the
    // same horizon.
    StreamingMrcEstimator::Options options;
    options.sample_rate = config_.mrc.sample_rate;
    options.window_accesses = 0;  // match the collector window
    resources_->set_streaming_mrc(options);
  }
}

const char* SelectiveRetuner::ActionKindName(ActionKind kind) {
  switch (kind) {
    case ActionKind::kCpuProvision:
      return "cpu_provision";
    case ActionKind::kIoProvision:
      return "io_provision";
    case ActionKind::kCpuRelease:
      return "cpu_release";
    case ActionKind::kQuotaEnforced:
      return "quota_enforced";
    case ActionKind::kClassRescheduled:
      return "class_rescheduled";
    case ActionKind::kIoEviction:
      return "io_eviction";
    case ActionKind::kCoarseFallback:
      return "coarse_fallback";
    case ActionKind::kDemote:
      return "demote";
  }
  return "unknown";
}

void SelectiveRetuner::RegisterApplication(Scheduler* scheduler) {
  assert(scheduler != nullptr);
  schedulers_.push_back(scheduler);
}

LogAnalyzer& SelectiveRetuner::AnalyzerFor(DatabaseEngine* engine) {
  auto it = analyzers_.find(engine);
  if (it == analyzers_.end()) {
    it = analyzers_
             .emplace(engine,
                      std::make_unique<LogAnalyzer>(engine, config_.outlier,
                                                    config_.mrc, metrics_))
             .first;
  }
  return *it->second;
}

void SelectiveRetuner::Start() {
  if (started_) return;
  started_ = true;
  for (const auto& server : resources_->servers()) {
    server->ResetUtilizationWindow();
  }
  ArmTicker();
}

void SelectiveRetuner::ArmTicker() {
  const uint64_t epoch = epoch_;
  sim_->ScheduleAfter(config_.interval_seconds, [this, epoch] {
    if (epoch != epoch_) return;  // the controller crashed since arming
    Tick();
    ArmTicker();
  });
}

void SelectiveRetuner::Stop() {
  if (!started_) return;
  started_ = false;
  ++epoch_;  // strands the armed tick and every migration callback
}

void SelectiveRetuner::Restart() {
  if (started_) return;
  started_ = true;
  ArmTicker();
}

void SelectiveRetuner::ResetControlState() {
  analyzers_.clear();
  violation_streak_.clear();
  calm_streak_.clear();
  last_topology_change_.clear();
  last_replica_count_.clear();
  last_placement_change_.clear();
  last_coarse_fallback_.clear();
  migrating_.clear();
  feeds_.clear();
  scope_ = ViolationScope{};
  // actions_/samples_/diagnoses_/migration_stats_ survive: they are
  // the run's observability history, not control state. Migrations
  // whose callbacks died with the controller count as neither applied
  // nor abandoned.
}

void SelectiveRetuner::Log(ActionKind kind, AppId app,
                           std::string description) {
  actions_.push_back(Action{sim_->Now(), kind, app, std::move(description)});
  if (spans_ != nullptr) spans_->RecordPhase("action", app, sim_->Now());
  if (metrics_ != nullptr) {
    metrics_
        ->counter(std::string("controller.actions.") + ActionKindName(kind))
        ->Increment();
  }
  // In-scope actions are emitted when the scope closes so the trace
  // keeps its phase order; out-of-scope ones (e.g. a clean interval
  // releasing capacity) go out immediately.
  if (!scope_.active && Tracing()) EmitActionEvent(actions_.back());
}

void SelectiveRetuner::EmitActionEvent(const Action& action) {
  TraceEvent event("action");
  event.Num("t", action.time)
      .Uint("app", action.app)
      .Str("kind", ActionKindName(action.kind))
      .Str("desc", action.description);
  trace_->Emit(event);
}

void SelectiveRetuner::BeginViolationScope(
    Scheduler* scheduler, const Scheduler::IntervalReport& report,
    double end_interval_us) {
  scope_ = ViolationScope{};
  scope_.active = true;
  scope_.app = scheduler->app().id;
  scope_.actions_before = actions_.size();
  if (spans_ != nullptr) spans_->RecordPhase("sla", scope_.app, sim_->Now());
  if (!Tracing()) return;
  TraceEvent event("sla");
  event.Num("t", sim_->Now())
      .Uint("app", scope_.app)
      .Uint("queries", report.queries)
      .Num("avg_latency", report.avg_latency)
      .Num("p95_latency", report.p95_latency)
      .Num("throughput", report.throughput)
      .Bool("sla_met", report.sla_met)
      .Int("streak", violation_streak_[scope_.app])
      .Int("servers_used", resources_->ServersUsedBy(*scheduler))
      .Num("dur_us", end_interval_us);
  if (channel_ != nullptr) {
    // Telemetry health of this app's replica set; absent without a
    // channel so pre-channel traces replay byte-identical.
    double min_conf = 1.0;
    int stale = 0;
    for (Replica* r : scheduler->replicas()) {
      const auto it = feeds_.find(r->id());
      if (it == feeds_.end()) continue;
      min_conf = std::min(min_conf, it->second.confidence);
      if (!it->second.fresh) ++stale;
    }
    event.Num("stats_conf", min_conf).Int("stale_replicas", stale);
  }
  trace_->Emit(event);
}

bool SelectiveRetuner::FeedFresh(int replica_id) const {
  if (channel_ == nullptr) return true;
  const auto it = feeds_.find(replica_id);
  return it == feeds_.end() || it->second.fresh;
}

double SelectiveRetuner::FeedConfidence(int replica_id) const {
  if (channel_ == nullptr) return 1.0;
  const auto it = feeds_.find(replica_id);
  return it == feeds_.end() ? 1.0 : it->second.confidence;
}

void SelectiveRetuner::EndViolationScope(const char* why) {
  if (!scope_.active) return;
  if (Tracing()) {
    // Back-fill the phases the cascade never reached so every violating
    // interval carries the complete sla->impact->iqr->mrc->action chain.
    const char* skipped[3] = {
        scope_.impact_emitted ? nullptr : "impact",
        scope_.iqr_emitted ? nullptr : "iqr",
        scope_.mrc_emitted ? nullptr : "mrc",
    };
    for (const char* phase : skipped) {
      if (phase == nullptr) continue;
      TraceEvent event(phase);
      event.Num("t", sim_->Now())
          .Uint("app", scope_.app)
          .Bool("skipped", true)
          .Str("why", why)
          .Num("dur_us", 0);
      trace_->Emit(event);
    }
    if (actions_.size() == scope_.actions_before) {
      TraceEvent event("action");
      event.Num("t", sim_->Now())
          .Uint("app", scope_.app)
          .Str("kind", "none")
          .Str("why", why);
      trace_->Emit(event);
    } else {
      for (size_t i = scope_.actions_before; i < actions_.size(); ++i) {
        EmitActionEvent(actions_[i]);
      }
    }
  }
  scope_ = ViolationScope{};
}

void SelectiveRetuner::TraceOutlierPhases(AppId app, int replica_id,
                                          const OutlierReport& report) {
  // "impact": the weighted current/stable ratio vectors the fences see.
  // Metric order inside the arrays is kAllMetrics order.
  std::string classes = "[";
  bool first_class = true;
  std::set<ClassKey> keys;
  for (const auto& [metric, per_class] : report.ratios) {
    for (const auto& [key, value] : per_class) keys.insert(key);
  }
  for (ClassKey key : keys) {
    if (!first_class) classes += ',';
    first_class = false;
    classes += '{';
    AppendClassFields(&classes, key);
    classes += ",\"ratio\":[";
    for (size_t m = 0; m < kAllMetrics.size(); ++m) {
      if (m > 0) classes += ',';
      const auto metric_it = report.ratios.find(kAllMetrics[m]);
      const double v = metric_it != report.ratios.end() &&
                               metric_it->second.contains(key)
                           ? metric_it->second.at(key)
                           : 0.0;
      classes += JsonNumber(v);
    }
    classes += "],\"impact\":[";
    for (size_t m = 0; m < kAllMetrics.size(); ++m) {
      if (m > 0) classes += ',';
      const auto metric_it = report.impacts.find(kAllMetrics[m]);
      const double v = metric_it != report.impacts.end() &&
                               metric_it->second.contains(key)
                           ? metric_it->second.at(key)
                           : 0.0;
      classes += JsonNumber(v);
    }
    classes += "]}";
  }
  classes += ']';
  TraceEvent impact("impact");
  impact.Num("t", sim_->Now())
      .Uint("app", app)
      .Int("replica", replica_id)
      .Raw("classes", classes)
      .Num("dur_us", report.impact_us);
  if (spans_ != nullptr) {
    // Measured latency breakdown alongside the inferred ratios: every
    // value derives from simulated time, so replays reproduce it.
    impact.Raw("wait_profile", spans_->WaitProfileJson(app));
  }
  trace_->Emit(impact);
  scope_.impact_emitted = true;

  // "iqr": the fences applied per metric plus the resulting verdicts.
  std::string fences = "[";
  for (size_t i = 0; i < report.fences.size(); ++i) {
    const FenceSummary& f = report.fences[i];
    if (i > 0) fences += ',';
    fences += "{\"metric\":\"";
    fences += MetricName(f.metric);
    fences += "\",\"q1\":" + JsonNumber(f.q1) +
              ",\"q3\":" + JsonNumber(f.q3) + ",\"iqr\":" + JsonNumber(f.iqr) +
              ",\"inner_lo\":" + JsonNumber(f.inner_lo) +
              ",\"inner_hi\":" + JsonNumber(f.inner_hi) +
              ",\"outer_lo\":" + JsonNumber(f.outer_lo) +
              ",\"outer_hi\":" + JsonNumber(f.outer_hi) + "}";
  }
  fences += ']';
  std::string outliers = "[";
  for (size_t i = 0; i < report.outliers.size(); ++i) {
    const MetricOutlier& o = report.outliers[i];
    if (i > 0) outliers += ',';
    outliers += '{';
    AppendClassFields(&outliers, o.key);
    outliers += ",\"metric\":\"";
    outliers += MetricName(o.metric);
    outliers += "\",\"ratio\":" + JsonNumber(o.ratio) +
                ",\"impact\":" + JsonNumber(o.impact) + ",\"degree\":\"" +
                (o.degree == OutlierDegree::kExtreme ? "extreme" : "mild") +
                "\",\"high\":" + (o.high_side ? "true" : "false") + "}";
  }
  outliers += ']';
  std::string fresh = "[";
  for (size_t i = 0; i < report.new_classes.size(); ++i) {
    if (i > 0) fresh += ',';
    fresh += '{';
    AppendClassFields(&fresh, report.new_classes[i]);
    fresh += '}';
  }
  fresh += ']';
  TraceEvent iqr("iqr");
  iqr.Num("t", sim_->Now())
      .Uint("app", app)
      .Int("replica", replica_id)
      .Raw("fences", fences)
      .Raw("outliers", outliers)
      .Raw("new_classes", fresh)
      .Num("dur_us", report.fence_us);
  trace_->Emit(iqr);
  scope_.iqr_emitted = true;
}

void SelectiveRetuner::TraceMrcPhase(
    AppId app, int replica_id, double dur_us, size_t candidates,
    LogAnalyzer& analyzer, const LogAnalyzer::MemoryDiagnosis& diagnosis,
    const TieredBufferPool* tier2) {
  auto profile_array = [&analyzer](
                           const std::vector<ClassMemoryProfile>& profiles) {
    std::string out = "[";
    for (size_t i = 0; i < profiles.size(); ++i) {
      const ClassMemoryProfile& p = profiles[i];
      if (i > 0) out += ',';
      out += '{';
      AppendClassFields(&out, p.key);
      out += ",\"total_pages\":" + std::to_string(p.params.total_memory_pages);
      out += ",\"acceptable_pages\":" +
             std::to_string(p.params.acceptable_memory_pages);
      if (const MrcParameters* stable = analyzer.StableParamsOf(p.key)) {
        out += ",\"stable_total_pages\":" +
               std::to_string(stable->total_memory_pages);
        out += ",\"stable_acceptable_pages\":" +
               std::to_string(stable->acceptable_memory_pages);
      }
      if (p.regret_vs_opt >= 0) {
        out += ",\"regret_vs_opt\":" + JsonNumber(p.regret_vs_opt);
      }
      out += '}';
    }
    out += ']';
    return out;
  };
  std::string insufficient = "[";
  for (size_t i = 0; i < diagnosis.insufficient_data.size(); ++i) {
    if (i > 0) insufficient += ',';
    insufficient += '{';
    AppendClassFields(&insufficient, diagnosis.insufficient_data[i]);
    insufficient += '}';
  }
  insufficient += ']';
  TraceEvent event("mrc");
  event.Num("t", sim_->Now())
      .Uint("app", app)
      .Int("replica", replica_id)
      .Str("mode", MrcModeName(config_.mrc.mode));
  if (tier2 != nullptr) {
    // Second-tier state at diagnosis time; absent on tierless engines
    // so pre-tier traces replay unchanged.
    event.Uint("tier2_pages", tier2->capacity())
        .Uint("tier2_resident", tier2->resident_pages())
        .Num("tier2_read_us", tier2->config().read_us);
  }
  event.Uint("candidates", candidates)
      .Raw("suspects", profile_array(diagnosis.suspects))
      .Raw("cleared", profile_array(diagnosis.cleared))
      .Raw("insufficient", insufficient)
      .Num("dur_us", dur_us);
  trace_->Emit(event);
  scope_.mrc_emitted = true;
}

bool SelectiveRetuner::InWarmup(AppId app) const {
  auto it = last_topology_change_.find(app);
  if (it == last_topology_change_.end()) return false;
  return sim_->Now() - it->second <
         config_.warmup_intervals * config_.interval_seconds;
}

bool SelectiveRetuner::InPlacementCooldown(ClassKey key) const {
  auto it = last_placement_change_.find(key);
  if (it == last_placement_change_.end()) return false;
  return sim_->Now() - it->second <
         config_.placement_cooldown_intervals * config_.interval_seconds;
}

void SelectiveRetuner::NotePlacementChange(ClassKey key) {
  last_placement_change_[key] = sim_->Now();
}

void SelectiveRetuner::NoteTopologyChange(AppId app) {
  last_topology_change_[app] = sim_->Now();
}

void SelectiveRetuner::Tick() {
  const auto tick_start = std::chrono::steady_clock::now();
  const double interval = config_.interval_seconds;
  migrations_this_interval_ = 0;
  PruneDeadAnalyzers();
  IntervalSample sample;
  sample.time = sim_->Now();

  // 1. Close the interval on every engine and server (order: replicas
  // in creation order for determinism). With a stats channel attached
  // every report travels publish -> deliver -> collect, so the
  // controller sees the channel's (possibly stale) view; without one
  // the handoff stays direct.
  const std::vector<Replica*> replicas = resources_->AllReplicas();
  std::map<Replica*, Snapshot> snapshots;
  feeds_.clear();
  if (channel_ != nullptr) {
    std::vector<int> live;
    live.reserve(replicas.size());
    for (Replica* r : replicas) live.push_back(r->id());
    channel_->Retain(live);
    for (Replica* r : replicas) {
      channel_->Publish(r->id(), r->engine().stats().EndInterval(interval),
                        interval);
    }
    for (Replica* r : replicas) {
      const StatsChannel::Feed feed = channel_->Collect(r->id());
      snapshots.emplace(r, *feed.snapshot);
      FeedState fs;
      fs.fresh = feed.fresh;
      fs.stale_intervals = feed.stale_intervals;
      fs.confidence = feed.confidence;
      feeds_[r->id()] = fs;
    }
  } else {
    for (Replica* r : replicas) {
      snapshots.emplace(r, r->engine().stats().EndInterval(interval));
    }
  }
  for (const auto& server : resources_->servers()) {
    ServerSample ss;
    ss.server_id = server->id();
    ss.cpu_utilization = server->CpuUtilization();
    ss.io_utilization = server->IoUtilization();
    sample.servers.push_back(ss);
    if (metrics_ != nullptr) {
      const std::string prefix =
          "server." + std::to_string(ss.server_id) + ".";
      metrics_->gauge(prefix + "cpu_utilization")->Set(ss.cpu_utilization);
      metrics_->gauge(prefix + "io_utilization")->Set(ss.io_utilization);
    }
  }
  if (metrics_ != nullptr) resources_->PublishMetrics();

  // 2. Close the interval on every application.
  std::map<Scheduler*, Scheduler::IntervalReport> reports;
  std::map<Scheduler*, double> end_interval_us;
  for (Scheduler* s : schedulers_) {
    const auto end_start = std::chrono::steady_clock::now();
    const Scheduler::IntervalReport report = s->EndInterval(interval);
    end_interval_us[s] = MicrosSince(end_start);
    reports.emplace(s, report);
    AppSample as;
    as.app = s->app().id;
    as.queries = report.queries;
    as.avg_latency = report.avg_latency;
    as.p95_latency = report.p95_latency;
    as.throughput = report.throughput;
    as.sla_met = report.sla_met;
    as.servers_used = resources_->ServersUsedBy(*s);
    sample.apps.push_back(as);
  }

  // 3. Stable intervals refresh signatures and seed MRC baselines.
  // Only fresh feeds qualify: a last-known-good snapshot re-recorded
  // as "stable" would silently launder stale numbers into the
  // baselines every missed interval.
  for (Scheduler* s : schedulers_) {
    const auto& report = reports.at(s);
    if (report.sla_met && report.queries > 0) {
      for (Replica* r : replicas) {
        if (!FeedFresh(r->id())) continue;
        AnalyzerFor(&r->engine())
            .RecordStableInterval(s->app().id, snapshots.at(r), sim_->Now());
      }
    }
  }

  // 4. Track replica-set changes (warm-up windows start whenever an
  // app's topology moved, including changes made outside this loop).
  for (Scheduler* s : schedulers_) {
    const AppId app = s->app().id;
    const size_t count = s->replicas().size();
    auto it = last_replica_count_.find(app);
    if (it == last_replica_count_.end()) {
      last_replica_count_[app] = count;
      if (count > 0) NoteTopologyChange(app);  // freshly seen, cold pools
    } else if (it->second != count) {
      it->second = count;
      NoteTopologyChange(app);
    }
  }

  // 5. Violations run the diagnosis cascade; clean intervals may
  // release over-provisioned capacity.
  for (Scheduler* s : schedulers_) {
    const auto& report = reports.at(s);
    const AppId app = s->app().id;
    // Sustained shedding outranks the SLA check: admission control
    // fast-fails enough load to keep the *served* latency inside the
    // SLA, so waiting for a latency violation would never provision.
    const uint64_t offered = report.queries + report.shed;
    const double shed_share =
        offered > 0 ? static_cast<double>(report.shed) / offered : 0.0;
    if (admission_ != nullptr && config_.enable_actions &&
        shed_share >= config_.overload_shed_share && !InWarmup(app)) {
      calm_streak_[app] = 0;
      ++violation_streak_[app];
      if (violations_ != nullptr) violations_->Increment();
      BeginViolationScope(s, report, end_interval_us[s]);
      Replica* fresh =
          resources_->ProvisionReplica(s, config_.replica_pool_pages);
      if (fresh != nullptr) {
        NoteTopologyChange(app);
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "overload: %.0f%% of offered load shed; provisioned "
                      "%s on %s (now %d servers)",
                      100 * shed_share, fresh->name().c_str(),
                      fresh->server().name().c_str(),
                      resources_->ServersUsedBy(*s));
        Log(ActionKind::kCpuProvision, app, buf);
      }
      EndViolationScope("overload_shed");
      continue;
    }
    if (report.queries > 0 && !report.sla_met) {
      calm_streak_[app] = 0;
      if (violations_ != nullptr) violations_->Increment();
      if (config_.enable_actions && s->replicas().empty()) {
        // Bootstrap: an application with no capacity at all.
        BeginViolationScope(s, report, end_interval_us[s]);
        TryCpuProvisioning(s);
        EndViolationScope("bootstrap");
        continue;
      }
      if (InWarmup(app)) {
        // Pools still filling; hold fire.
        BeginViolationScope(s, report, end_interval_us[s]);
        EndViolationScope("warmup");
        continue;
      }
      ++violation_streak_[app];
      BeginViolationScope(s, report, end_interval_us[s]);
      EndViolationScope(HandleViolation(s, report, snapshots));
    } else {
      violation_streak_[app] = 0;
      ++calm_streak_[app];
      MaybeRelease(s);
    }
  }

  for (const auto& server : resources_->servers()) {
    server->ResetUtilizationWindow();
  }
  samples_.push_back(std::move(sample));
  if (tick_us_ != nullptr) tick_us_->Record(MicrosSince(tick_start));
}

const char* SelectiveRetuner::HandleViolation(
    Scheduler* scheduler, const Scheduler::IntervalReport& /*report*/,
    const std::map<Replica*, Snapshot>& snapshots) {
  const AppId app = scheduler->app().id;
  low_confidence_suppressed_ = false;
  if (!config_.enable_actions) {
    // Monitoring only: run the diagnosis for the record, change nothing.
    TryMemoryRetuning(scheduler, snapshots, /*act=*/false);
    return "monitoring";
  }
  if (!config_.enable_fine_grained) {
    if (violation_streak_[app] >= config_.coarse_fallback_after) {
      CoarseFallback(scheduler);
    }
    return "coarse_only";
  }
  if (TryCpuProvisioning(scheduler)) return "no_action";
  // Graceful degradation: with no per-class statistics for this app at
  // all (stats-collector dropout, or every serving replica gone), the
  // fine-grained cascade — and the coarse fallback it escalates to —
  // would be reasoning about nothing. Skip with a reason; the next
  // interval with data resumes the cascade.
  bool have_stats = false;
  for (Replica* r : scheduler->replicas()) {
    const auto it = snapshots.find(r);
    if (it == snapshots.end()) continue;
    for (const auto& [key, vec] : it->second) {
      if (AppOf(key) == app) {
        have_stats = true;
        break;
      }
    }
    if (have_stats) break;
  }
  if (!have_stats) {
    if (metrics_ != nullptr) {
      metrics_->counter("controller.skipped.no_stats")->Increment();
    }
    return "no_stats";
  }
  if (TryMemoryRetuning(scheduler, snapshots)) return "no_action";
  if (TryIoRetuning(scheduler, snapshots)) return "no_action";
  if (violation_streak_[app] >= config_.coarse_fallback_after) {
    CoarseFallback(scheduler);
  }
  return low_confidence_suppressed_ ? "low_confidence" : "no_action";
}

bool SelectiveRetuner::TryCpuProvisioning(Scheduler* scheduler) {
  // An application with no replicas at all is trivially saturated.
  bool saturated = scheduler->replicas().empty();
  for (Replica* r : scheduler->replicas()) {
    if (r->server().CpuUtilization() >= config_.cpu_saturation_threshold) {
      saturated = true;
      break;
    }
  }
  if (!saturated) return false;
  Replica* fresh =
      resources_->ProvisionReplica(scheduler, config_.replica_pool_pages);
  if (fresh == nullptr) return false;  // pool exhausted
  NoteTopologyChange(scheduler->app().id);
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "CPU saturation: provisioned %s on %s (now %d servers)",
                fresh->name().c_str(), fresh->server().name().c_str(),
                resources_->ServersUsedBy(*scheduler));
  Log(ActionKind::kCpuProvision, scheduler->app().id, buf);
  return true;
}

bool SelectiveRetuner::TryMemoryRetuning(
    Scheduler* scheduler, const std::map<Replica*, Snapshot>& snapshots,
    bool act) {
  const AppId app = scheduler->app().id;
  bool acted = false;
  // Copy: dedications may mutate the replica list mid-loop.
  const std::vector<Replica*> app_replicas = scheduler->replicas();
  for (Replica* r : app_replicas) {
    auto snap_it = snapshots.find(r);
    if (snap_it == snapshots.end()) continue;
    const Snapshot& snap = snap_it->second;
    LogAnalyzer& analyzer = AnalyzerFor(&r->engine());
    const double confidence = FeedConfidence(r->id());
    const double fence_scale =
        channel_ != nullptr ? channel_->FenceScale(confidence) : 1.0;

    // A replica whose engine never recorded a stable interval for this
    // application is still warming up after being provisioned; there is
    // no baseline to compare against, and flagging its classes as "new"
    // would be noise.
    bool has_history = false;
    for (ClassKey key : analyzer.stable_store().Keys()) {
      if (AppOf(key) == app) {
        has_history = true;
        break;
      }
    }
    if (!has_history) continue;

    // 4a. Outlier contexts over this app's classes on this engine.
    // Decayed confidence widens the fences: a snapshot that may be
    // stale must look a lot more anomalous before it names suspects.
    const OutlierReport outliers =
        analyzer.DetectOutliers(app, snap, fence_scale);
    if (spans_ != nullptr && scope_.active) {
      spans_->RecordPhase("impact", app, sim_->Now());
      spans_->RecordPhase("iqr", app, sim_->Now());
    }
    if (Tracing() && scope_.active) {
      TraceOutlierPhases(app, r->id(), outliers);
    }
    std::set<ClassKey> candidates = outliers.MemoryProblemContexts();
    for (ClassKey key : outliers.new_classes) candidates.insert(key);

    // 4b. No outliers: fall back to the top-k heavyweight classes in
    // memory metrics.
    if (candidates.empty()) {
      std::vector<std::pair<double, ClassKey>> heavy;
      for (const auto& [key, vec] : snap) {
        if (AppOf(key) != app) continue;
        heavy.emplace_back(At(vec, Metric::kBufferMisses), key);
      }
      std::sort(heavy.rbegin(), heavy.rend());
      for (size_t i = 0; i < std::min(config_.top_k_fallback, heavy.size());
           ++i) {
        if (heavy[i].first > 0) candidates.insert(heavy[i].second);
      }
    }

    // 4c. Newly added classes of *other* applications sharing this
    // engine are potential problem classes too (§5.4: the RUBiS classes
    // that just arrived in TPC-W's buffer pool).
    for (const auto& [key, vec] : snap) {
      if (AppOf(key) != app && analyzer.StableParamsOf(key) == nullptr) {
        candidates.insert(key);
      }
    }
    if (candidates.empty()) continue;

    // 4d. MRC recomputation narrows candidates to true suspects.
    const auto mrc_start = std::chrono::steady_clock::now();
    LogAnalyzer::MemoryDiagnosis diagnosis =
        analyzer.DiagnoseMemory(candidates);
    if (spans_ != nullptr && scope_.active) {
      spans_->RecordPhase("mrc", app, sim_->Now());
    }
    if (Tracing() && scope_.active) {
      TraceMrcPhase(app, r->id(), MicrosSince(mrc_start), candidates.size(),
                    analyzer, diagnosis, r->engine().tier2());
    }
    DiagnosisRecord record;
    record.time = sim_->Now();
    record.app = app;
    record.replica_id = r->id();
    record.outliers = outliers;
    record.memory = diagnosis;
    diagnoses_.push_back(std::move(record));
    if (!act) continue;
    if (channel_ != nullptr && !channel_->ConfidentToAct(confidence)) {
      // This replica's numbers are last-known-good, not measured:
      // record the diagnosis, take no quota/demote/migration off it.
      // Shed and CPU provisioning run on app-level latency and are
      // never gated here.
      low_confidence_suppressed_ = true;
      if (metrics_ != nullptr) {
        metrics_->counter("controller.suppressed.low_confidence")
            ->Increment();
      }
      continue;
    }
    if (diagnosis.suspects.empty()) continue;

    std::set<ClassKey> suspect_keys;
    for (const auto& p : diagnosis.suspects) suspect_keys.insert(p.key);
    const std::vector<ClassMemoryProfile> others =
        analyzer.StableProfilesExcept(suspect_keys);

    // 4e. Quota fit test and plan. Engines backed by a second tier
    // plan (dram, tier2) quota pairs against the blended latency model
    // — the demote rung; tierless engines keep the DRAM-only fit test.
    const TieredBufferPool* tier2 = r->engine().tier2();
    QuotaPlan plan;
    if (tier2 != nullptr) {
      TierCostModel cost;
      cost.t_ssd_us = tier2->config().read_us;
      cost.t_disk_us =
          r->engine().disk_model().random_read_seconds * 1e6;
      plan = planner_.PlanTiered(r->engine().pool().capacity(),
                                 tier2->capacity(), diagnosis.suspects,
                                 others, cost);
    } else {
      plan = planner_.Plan(r->engine().pool().capacity(),
                           diagnosis.suspects, others);
    }
    if (plan.placement_fits) {
      // The pool can hold everyone's working set, but a scan-style
      // suspect still pollutes it: prefetched extents evict other
      // classes' pages while contributing nothing to the scan's own
      // reuse (its MRC is flat). Contain such classes with a small
      // fixed quota — the paper's §5.3 action for the unindexed
      // BestSeller.
      for (const auto& suspect : diagnosis.suspects) {
        if (InWarmup(AppOf(suspect.key))) continue;
        auto vec_it = snap.find(suspect.key);
        if (vec_it == snap.end()) continue;
        if (At(vec_it->second, Metric::kReadAheads) < 10) continue;
        const uint64_t quota =
            std::max(suspect.params.acceptable_memory_pages,
                     planner_.min_quota_pages());
        if (r->engine().SetQuota(suspect.key, quota)) {
          analyzer.AdoptRecomputation(suspect.key);
          NoteTopologyChange(AppOf(suspect.key));
          char buf[160];
          std::snprintf(buf, sizeof(buf),
                        "scan pollution: containment quota %llu pages for "
                        "%s on %s",
                        static_cast<unsigned long long>(quota),
                        ClassLabel(suspect.key).c_str(), r->name().c_str());
          Log(ActionKind::kQuotaEnforced, AppOf(suspect.key), buf);
          acted = true;
        }
      }
      continue;
    }
    // Even when the plan is flagged infeasible (this engine cannot
    // satisfy everyone no matter what), its reschedules are still the
    // right first step; the streak-based coarse fallback catches
    // whatever remains.

    // One plan is one coherent decision: snapshot the warmup guard
    // before applying it, so enforcing the first class's quota (which
    // starts the owner app's warmup) cannot block the rest of the same
    // plan — notably a demote paired behind another class's quota.
    std::map<AppId, bool> warm_before;
    for (const auto& [key, pages] : plan.quotas) {
      if (!warm_before.count(AppOf(key))) {
        warm_before[AppOf(key)] = InWarmup(AppOf(key));
      }
    }
    for (const auto& [key, pages] : plan.quotas) {
      // Cross-application actions respect the owner app's cooldown.
      if (warm_before[AppOf(key)]) continue;
      if (!r->engine().SetQuota(key, pages)) continue;
      analyzer.AdoptRecomputation(key);
      NoteTopologyChange(AppOf(key));
      char buf[160];
      // Demote rung: the plan pairs the DRAM cap with a tier-2 quota
      // for the working-set overflow — cheaper than migrating the
      // class off the engine. A tier quota the pool cannot grant
      // degrades to the plain DRAM quota action.
      const auto tier_it = plan.tier2_quotas.find(key);
      if (tier_it != plan.tier2_quotas.end() &&
          r->engine().SetTierQuota(key, tier_it->second)) {
        std::snprintf(buf, sizeof(buf),
                      "memory interference: demoted %s to %llu dram + "
                      "%llu tier2 pages on %s",
                      ClassLabel(key).c_str(),
                      static_cast<unsigned long long>(pages),
                      static_cast<unsigned long long>(tier_it->second),
                      r->name().c_str());
        Log(ActionKind::kDemote, AppOf(key), buf);
      } else {
        std::snprintf(buf, sizeof(buf),
                      "memory interference: quota %llu pages for %s on %s",
                      static_cast<unsigned long long>(pages),
                      ClassLabel(key).c_str(), r->name().c_str());
        Log(ActionKind::kQuotaEnforced, AppOf(key), buf);
      }
      acted = true;
    }
    for (ClassKey key : plan.reschedule) {
      if (InPlacementCooldown(key) || InWarmup(AppOf(key))) continue;
      const auto profile_it =
          std::find_if(diagnosis.suspects.begin(), diagnosis.suspects.end(),
                       [key](const ClassMemoryProfile& p) {
                         return p.key == key;
                       });
      if (profile_it == diagnosis.suspects.end()) continue;
      Scheduler* owner = nullptr;
      for (Scheduler* s : schedulers_) {
        if (s->app().id == AppOf(key)) owner = s;
      }
      if (owner == nullptr) continue;
      Replica* target = FindPlacementTarget(owner, r, *profile_it);
      if (target == nullptr) continue;
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "memory interference: rescheduled %s from %s to %s",
                    ClassLabel(key).c_str(), r->name().c_str(),
                    target->name().c_str());
      if (StartMigration(owner, r, target, key,
                         ActionKind::kClassRescheduled, buf,
                         /*adopt_recomputation=*/true, *profile_it)) {
        acted = true;
      }
    }
  }
  return acted;
}

bool SelectiveRetuner::TryIoRetuning(
    Scheduler* scheduler, const std::map<Replica*, Snapshot>& snapshots) {
  bool acted = false;
  std::set<const PhysicalServer*> visited;
  const std::vector<Replica*> app_replicas = scheduler->replicas();
  for (Replica* r : app_replicas) {
    PhysicalServer* server = &r->server();
    if (!visited.insert(server).second) continue;
    const double io_util = server->IoUtilization();
    if (io_util < config_.io_saturation_threshold) continue;

    // Estimate each class's utilization contribution from its share of
    // I/O block requests on this server (all engines, all apps).
    std::map<ClassKey, double> rates;
    double total_requests = 0;
    for (Replica* rr : resources_->ReplicasOn(server)) {
      auto it = snapshots.find(rr);
      if (it == snapshots.end()) continue;
      for (const auto& [key, vec] : it->second) {
        const double requests = At(vec, Metric::kIoRequests);
        rates[key] += requests;
        total_requests += requests;
      }
    }
    if (total_requests <= 0) continue;
    double top_rate = 0;
    int significant_classes = 0;
    for (auto& [key, value] : rates) {
      value *= io_util / total_requests;
      top_rate = std::max(top_rate, value);
      if (value > 0.10 * io_util) ++significant_classes;
    }

    // Eviction protects the *other* contexts on the server. If only
    // one class matters here (e.g. an already-isolated heavy class
    // saturating its own disk), moving it helps nobody.
    if (significant_classes < 2) continue;

    // Eviction only helps when the I/O is skewed toward a culprit
    // class. A uniformly loaded channel is a capacity shortage: give
    // the application another replica instead.
    if (top_rate / io_util < config_.io_skew_share) {
      Replica* fresh =
          resources_->ProvisionReplica(scheduler, config_.replica_pool_pages);
      if (fresh == nullptr) continue;
      NoteTopologyChange(scheduler->app().id);
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "I/O saturation on %s (unskewed): provisioned %s on %s",
                    server->name().c_str(), fresh->name().c_str(),
                    fresh->server().name().c_str());
      Log(ActionKind::kIoProvision, scheduler->app().id, buf);
      acted = true;
      continue;
    }

    // Skewed: move the heaviest movable class off this server (one per
    // server per interval; the next interval re-evaluates).
    const std::vector<ClassKey> evict =
        PlanIoEviction(rates, io_util, config_.io_target_utilization);
    for (ClassKey key : evict) {
      if (InPlacementCooldown(key) || InWarmup(AppOf(key))) continue;
      Scheduler* owner = nullptr;
      for (Scheduler* s : schedulers_) {
        if (s->app().id == AppOf(key)) owner = s;
      }
      if (owner == nullptr) continue;
      // The replica on this server currently running the class.
      Replica* source = nullptr;
      for (Replica* rr : resources_->ReplicasOn(server)) {
        auto it = snapshots.find(rr);
        if (it != snapshots.end() && it->second.contains(key)) source = rr;
      }
      if (source == nullptr) continue;
      if (channel_ != nullptr &&
          !channel_->ConfidentToAct(FeedConfidence(source->id()))) {
        // Evicting by per-class I/O shares computed from stale stats
        // moves the wrong class; wait for the feed to recover.
        low_confidence_suppressed_ = true;
        if (metrics_ != nullptr) {
          metrics_->counter("controller.suppressed.low_confidence")
              ->Increment();
        }
        continue;
      }
      ClassMemoryProfile incoming;
      incoming.key = key;
      if (const MrcParameters* stable =
              AnalyzerFor(&source->engine()).StableParamsOf(key)) {
        incoming.params = *stable;
      }
      Replica* target = FindPlacementTarget(owner, source, incoming);
      if (target == nullptr || &target->server() == server) continue;
      // Moving the class only helps if the destination channel has
      // headroom; shuffling between two saturated disks is thrash.
      if (target->server().IoUtilization() >=
          config_.io_saturation_threshold) {
        continue;
      }
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "I/O interference on %s: moved %s to %s",
                    server->name().c_str(), ClassLabel(key).c_str(),
                    target->name().c_str());
      if (!StartMigration(owner, source, target, key,
                          ActionKind::kIoEviction, buf,
                          /*adopt_recomputation=*/false, incoming)) {
        continue;
      }
      acted = true;
      break;  // one eviction per server per interval
    }
  }
  return acted;
}

Replica* SelectiveRetuner::FindPlacementTarget(
    Scheduler* scheduler, Replica* avoid, const ClassMemoryProfile& incoming) {
  for (Replica* candidate : scheduler->replicas()) {
    if (candidate == avoid) continue;
    if (avoid != nullptr && &candidate->server() == &avoid->server()) continue;
    if (admission_ != nullptr && admission_->BreakerOpen(candidate->id())) {
      // A replica already tripping circuit breakers is the last place
      // to migrate more load into.
      if (metrics_ != nullptr) {
        metrics_->counter("controller.migration.breaker_suppressed")
            ->Increment();
      }
      continue;
    }
    LogAnalyzer& analyzer = AnalyzerFor(&candidate->engine());
    const std::vector<ClassMemoryProfile> existing =
        analyzer.StableProfilesExcept({});
    if (QuotaPlanner::FitsOn(candidate->engine().pool().capacity(), incoming,
                             existing)) {
      return candidate;
    }
  }
  return resources_->ProvisionReplica(scheduler, config_.replica_pool_pages);
}

bool SelectiveRetuner::StartMigration(Scheduler* owner, Replica* source,
                                      Replica* target, ClassKey key,
                                      ActionKind kind, std::string description,
                                      bool adopt_recomputation,
                                      const ClassMemoryProfile& profile) {
  if (migrating_.contains(key)) return false;  // one in flight per class
  if (config_.max_migrations_per_interval > 0 &&
      migrations_this_interval_ >= config_.max_migrations_per_interval) {
    if (metrics_ != nullptr) {
      metrics_->counter("controller.migration.budget_deferred")->Increment();
    }
    return false;
  }
  ++migrations_this_interval_;
  ++migration_stats_.started;
  migrating_.insert(key);
  PendingMigration m;
  m.key = key;
  m.app = owner->app().id;
  m.source_id = source != nullptr ? source->id() : -1;
  m.target_id = target != nullptr ? target->id() : -1;
  m.kind = kind;
  m.description = std::move(description);
  m.adopt_recomputation = adopt_recomputation;
  m.profile = profile;
  m.started = sim_->Now();
  AttemptMigration(std::move(m));
  return true;
}

void SelectiveRetuner::AttemptMigration(PendingMigration m) {
  ++m.attempt;
  migration_stats_.max_attempts_observed =
      std::max(migration_stats_.max_attempts_observed, m.attempt);
  if (m.attempt > 1 + config_.migration_max_retries) {
    AbandonMigration(m, "retry_budget");
    return;
  }
  if (sim_->Now() - m.started > config_.migration_timeout_seconds) {
    AbandonMigration(m, "timeout");
    return;
  }
  MigrationOutcome outcome;
  if (config_.migration_interceptor) {
    outcome = config_.migration_interceptor(m.key, m.attempt);
  }
  if (outcome.fail) {
    ++migration_stats_.failed_attempts;
    if (metrics_ != nullptr) {
      metrics_->counter("controller.migration.retries")->Increment();
    }
    const double backoff = config_.migration_retry_backoff_seconds *
                           std::ldexp(1.0, m.attempt - 1);
    const uint64_t epoch = epoch_;
    sim_->ScheduleAfter(backoff, [this, epoch, m = std::move(m)] {
      // A retry armed before a controller crash must not fire into the
      // restarted controller: the checkpoint already converted the
      // migration into a placement cooldown.
      if (epoch != epoch_) return;
      AttemptMigration(m);
    });
    return;
  }
  if (outcome.delay_seconds > 0) {
    ++migration_stats_.delayed;
    if (metrics_ != nullptr) {
      metrics_->counter("controller.migration.delayed")->Increment();
    }
    const uint64_t epoch = epoch_;
    sim_->ScheduleAfter(
        outcome.delay_seconds, [this, epoch, m = std::move(m)] {
          if (epoch != epoch_) return;
          if (sim_->Now() - m.started > config_.migration_timeout_seconds) {
            AbandonMigration(m, "timeout");
          } else if (!ApplyMigration(m)) {
            AbandonMigration(m, "target_lost");
          }
        });
    return;
  }
  if (!ApplyMigration(m)) AbandonMigration(m, "target_lost");
}

bool SelectiveRetuner::ApplyMigration(const PendingMigration& m) {
  Scheduler* owner = nullptr;
  for (Scheduler* s : schedulers_) {
    if (s->app().id == m.app) owner = s;
  }
  if (owner == nullptr) return false;
  Replica* source = resources_->FindReplica(m.source_id);
  Replica* target = resources_->FindReplica(m.target_id);
  if (target == nullptr) {
    // The chosen destination died while the migration was in flight;
    // any valid placement still honors the decision.
    target = FindPlacementTarget(owner, source, m.profile);
    if (target == nullptr) return false;
  }
  owner->DedicateReplica(ClassOf(m.key), target);
  if (source != nullptr) {
    source->engine().DropQuota(m.key);
    if (m.adopt_recomputation) {
      AnalyzerFor(&source->engine()).AdoptRecomputation(m.key);
    }
  }
  migrating_.erase(m.key);
  ++migration_stats_.applied;
  NotePlacementChange(m.key);
  NoteTopologyChange(owner->app().id);
  Log(m.kind, AppOf(m.key), m.description);
  return true;
}

void SelectiveRetuner::AbandonMigration(const PendingMigration& m,
                                        const char* why) {
  migrating_.erase(m.key);
  ++migration_stats_.abandoned;
  // Cooldown: the class that just failed to move must not be re-issued
  // by the very next interval — that is exactly re-placement flapping.
  NotePlacementChange(m.key);
  if (metrics_ != nullptr) {
    metrics_->counter("controller.migration.abandoned")->Increment();
  }
  if (Tracing()) {
    TraceEvent event("migration");
    event.Num("t", sim_->Now())
        .Uint("app", m.app)
        .Uint("cls", ClassOf(m.key))
        .Str("outcome", "abandoned")
        .Str("why", why)
        .Int("attempts", m.attempt);
    trace_->Emit(event);
  }
}

void SelectiveRetuner::PruneDeadAnalyzers() {
  std::set<const DatabaseEngine*> live;
  for (Replica* r : resources_->AllReplicas()) live.insert(&r->engine());
  for (auto it = analyzers_.begin(); it != analyzers_.end();) {
    if (live.contains(it->first)) {
      ++it;
    } else {
      it = analyzers_.erase(it);
    }
  }
}

void SelectiveRetuner::CoarseFallback(Scheduler* scheduler) {
  const AppId app = scheduler->app().id;
  // Coarse isolation is expensive; do not repeat it for the same app in
  // quick succession (a chronically unattainable SLA would otherwise
  // trigger it every few intervals).
  const SimTime now = sim_->Now();
  auto last = last_coarse_fallback_.find(app);
  if (last != last_coarse_fallback_.end() &&
      now - last->second <
          3 * config_.coarse_fallback_after * config_.interval_seconds) {
    return;
  }
  Replica* fresh =
      resources_->ProvisionReplica(scheduler, config_.replica_pool_pages);
  if (fresh == nullptr) return;
  // Isolate: drop replicas shared with other applications (either the
  // same engine serves several apps, or the server hosts other apps'
  // replicas).
  const std::vector<Replica*> current = scheduler->replicas();
  for (Replica* r : current) {
    if (r == fresh) continue;
    bool shared = false;
    for (Scheduler* other : schedulers_) {
      if (other == scheduler) continue;
      const auto& others = other->replicas();
      if (std::find(others.begin(), others.end(), r) != others.end()) {
        shared = true;
      }
      for (Replica* rr : resources_->ReplicasOn(&r->server())) {
        if (rr == r) continue;
        if (std::find(others.begin(), others.end(), rr) != others.end()) {
          shared = true;
        }
      }
    }
    if (shared) scheduler->RemoveReplica(r);
  }
  NoteTopologyChange(app);
  last_coarse_fallback_[app] = now;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "coarse fallback: isolated app %u onto %s (%s)", app,
                fresh->name().c_str(), fresh->server().name().c_str());
  Log(ActionKind::kCoarseFallback, app, buf);
  violation_streak_[app] = 0;
}

void SelectiveRetuner::MaybeRelease(Scheduler* scheduler) {
  if (!config_.enable_actions) return;
  const AppId app = scheduler->app().id;
  if (calm_streak_[app] < config_.release_after) return;
  const std::vector<Replica*> default_set = scheduler->DefaultSet();
  if (default_set.size() <= 1) return;

  double util_sum = 0;
  int servers = 0;
  std::set<const PhysicalServer*> seen;
  for (Replica* r : scheduler->replicas()) {
    if (seen.insert(&r->server()).second) {
      util_sum += std::max(r->server().CpuUtilization(),
                           r->server().IoUtilization());
      ++servers;
    }
  }
  if (servers == 0) return;
  if (util_sum / servers >= config_.cpu_release_threshold) return;

  // Release a default-set replica used only by this application.
  Replica* victim = nullptr;
  for (Replica* r : default_set) {
    bool shared = false;
    for (Scheduler* other : schedulers_) {
      if (other == scheduler) continue;
      const auto& others = other->replicas();
      if (std::find(others.begin(), others.end(), r) != others.end()) {
        shared = true;
      }
    }
    if (shared) continue;
    if (victim == nullptr || r->inflight() < victim->inflight()) victim = r;
  }
  if (victim == nullptr) return;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "low load: released %s (now %d servers)",
                victim->name().c_str(),
                resources_->ServersUsedBy(*scheduler) - 1);
  Log(ActionKind::kCpuRelease, app, buf);
  // The engine dies with the replica; drop its analyzer so a future
  // engine reusing the address cannot inherit stale state.
  analyzers_.erase(&victim->engine());
  resources_->Decommission(scheduler, victim);
  calm_streak_[app] = 0;
}

void SelectiveRetuner::SerializeControlState(std::string* out) const {
  auto put_time = [out](SimTime t) { PutFixed64(out, DoubleToBits(t)); };
  PutVarint64(out, violation_streak_.size());
  for (const auto& [app, streak] : violation_streak_) {
    PutVarint64(out, app);
    PutVarint64(out, ZigZagEncode(streak));
  }
  PutVarint64(out, calm_streak_.size());
  for (const auto& [app, streak] : calm_streak_) {
    PutVarint64(out, app);
    PutVarint64(out, ZigZagEncode(streak));
  }
  PutVarint64(out, last_topology_change_.size());
  for (const auto& [app, t] : last_topology_change_) {
    PutVarint64(out, app);
    put_time(t);
  }
  PutVarint64(out, last_replica_count_.size());
  for (const auto& [app, count] : last_replica_count_) {
    PutVarint64(out, app);
    PutVarint64(out, count);
  }
  PutVarint64(out, last_placement_change_.size());
  for (const auto& [key, t] : last_placement_change_) {
    PutVarint64(out, key);
    put_time(t);
  }
  PutVarint64(out, last_coarse_fallback_.size());
  for (const auto& [app, t] : last_coarse_fallback_) {
    PutVarint64(out, app);
    put_time(t);
  }
  PutVarint64(out, migrating_.size());
  for (ClassKey key : migrating_) PutVarint64(out, key);

  // Per-replica analyzer state, keyed by replica id: the engines
  // outlive a controller crash but the analyzer map (keyed by engine
  // pointer) does not, so the blob re-binds by id at restore time.
  std::vector<std::pair<int, const LogAnalyzer*>> by_replica;
  for (Replica* r : resources_->AllReplicas()) {
    const auto it = analyzers_.find(&r->engine());
    if (it != analyzers_.end()) by_replica.emplace_back(r->id(), it->second.get());
  }
  PutVarint64(out, by_replica.size());
  for (const auto& [replica_id, analyzer] : by_replica) {
    PutVarint64(out, ZigZagEncode(replica_id));
    const auto& signatures = analyzer->stable_store().Entries();
    PutVarint64(out, signatures.size());
    for (const auto& [key, sig] : signatures) {
      PutVarint64(out, key);
      for (double v : sig.averages) PutFixed64(out, DoubleToBits(v));
      put_time(sig.recorded_at);
      PutVarint64(out, sig.intervals_observed);
    }
    // Stable MRC baselines travel as their raw sampled curves; the
    // restored tracker re-derives parameters from the curve, so the
    // post-restore diagnosis is bit-identical to the pre-crash one.
    struct StableCurve {
      ClassKey key;
      const MissRatioCurve* curve;
      size_t trace_length;
    };
    std::vector<StableCurve> curves;
    analyzer->ForEachStableTracker(
        [&curves](ClassKey key, const MissRatioCurve& curve,
                  size_t trace_length) {
          curves.push_back({key, &curve, trace_length});
        });
    PutVarint64(out, curves.size());
    for (const StableCurve& sc : curves) {
      PutVarint64(out, sc.key);
      PutVarint64(out, sc.trace_length);
      PutVarint64(out, sc.curve->total_accesses());
      const std::vector<double>& raw = sc.curve->raw_miss_ratios();
      PutVarint64(out, raw.size());
      for (double v : raw) PutFixed64(out, DoubleToBits(v));
    }
  }
}

bool SelectiveRetuner::RestoreControlState(const uint8_t* p,
                                           const uint8_t* limit) {
  auto get_u64 = [&p, limit](uint64_t* v) {
    const size_t n = GetVarint64(p, limit, v);
    if (n == 0) return false;
    p += n;
    return true;
  };
  auto get_i64 = [&get_u64](int64_t* v) {
    uint64_t raw = 0;
    if (!get_u64(&raw)) return false;
    *v = ZigZagDecode(raw);
    return true;
  };
  auto get_f64 = [&p, limit](double* v) {
    uint64_t bits = 0;
    if (!GetFixed64(p, limit, &bits)) return false;
    p += 8;
    *v = BitsToDouble(bits);
    return true;
  };
  // Decode everything into locals first: a truncated blob must not
  // leave the controller half-restored.
  std::map<AppId, int> violation, calm;
  std::map<AppId, SimTime> topology, coarse;
  std::map<AppId, size_t> replica_counts;
  std::map<ClassKey, SimTime> placement;
  std::vector<ClassKey> in_flight;
  uint64_t n = 0;
  if (!get_u64(&n)) return false;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t app = 0;
    int64_t streak = 0;
    if (!get_u64(&app) || !get_i64(&streak)) return false;
    violation[static_cast<AppId>(app)] = static_cast<int>(streak);
  }
  if (!get_u64(&n)) return false;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t app = 0;
    int64_t streak = 0;
    if (!get_u64(&app) || !get_i64(&streak)) return false;
    calm[static_cast<AppId>(app)] = static_cast<int>(streak);
  }
  if (!get_u64(&n)) return false;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t app = 0;
    double t = 0;
    if (!get_u64(&app) || !get_f64(&t)) return false;
    topology[static_cast<AppId>(app)] = t;
  }
  if (!get_u64(&n)) return false;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t app = 0, count = 0;
    if (!get_u64(&app) || !get_u64(&count)) return false;
    replica_counts[static_cast<AppId>(app)] = static_cast<size_t>(count);
  }
  if (!get_u64(&n)) return false;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t key = 0;
    double t = 0;
    if (!get_u64(&key) || !get_f64(&t)) return false;
    placement[key] = t;
  }
  if (!get_u64(&n)) return false;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t app = 0;
    double t = 0;
    if (!get_u64(&app) || !get_f64(&t)) return false;
    coarse[static_cast<AppId>(app)] = t;
  }
  if (!get_u64(&n)) return false;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t key = 0;
    if (!get_u64(&key)) return false;
    in_flight.push_back(key);
  }

  struct RestoredSignature {
    ClassKey key;
    StableStateSignature sig;
  };
  struct RestoredCurve {
    ClassKey key;
    std::vector<double> raw;
    uint64_t total_accesses;
    size_t trace_length;
  };
  struct RestoredAnalyzer {
    int replica_id;
    std::vector<RestoredSignature> signatures;
    std::vector<RestoredCurve> curves;
  };
  std::vector<RestoredAnalyzer> restored;
  uint64_t analyzers = 0;
  if (!get_u64(&analyzers)) return false;
  for (uint64_t a = 0; a < analyzers; ++a) {
    RestoredAnalyzer ra;
    int64_t replica_id = 0;
    if (!get_i64(&replica_id)) return false;
    ra.replica_id = static_cast<int>(replica_id);
    uint64_t sigs = 0;
    if (!get_u64(&sigs)) return false;
    for (uint64_t i = 0; i < sigs; ++i) {
      RestoredSignature rs;
      uint64_t key = 0;
      if (!get_u64(&key)) return false;
      rs.key = key;
      for (double& v : rs.sig.averages) {
        if (!get_f64(&v)) return false;
      }
      uint64_t observed = 0;
      if (!get_f64(&rs.sig.recorded_at) || !get_u64(&observed)) return false;
      rs.sig.intervals_observed = observed;
      ra.signatures.push_back(std::move(rs));
    }
    uint64_t curves = 0;
    if (!get_u64(&curves)) return false;
    for (uint64_t i = 0; i < curves; ++i) {
      RestoredCurve rc;
      uint64_t key = 0, trace_length = 0, total = 0, samples = 0;
      if (!get_u64(&key) || !get_u64(&trace_length) || !get_u64(&total) ||
          !get_u64(&samples)) {
        return false;
      }
      rc.key = key;
      rc.trace_length = static_cast<size_t>(trace_length);
      rc.total_accesses = total;
      rc.raw.resize(static_cast<size_t>(samples));
      for (double& v : rc.raw) {
        if (!get_f64(&v)) return false;
      }
      ra.curves.push_back(std::move(rc));
    }
    restored.push_back(std::move(ra));
  }

  // Commit.
  violation_streak_ = std::move(violation);
  calm_streak_ = std::move(calm);
  last_topology_change_ = std::move(topology);
  last_replica_count_ = std::move(replica_counts);
  last_placement_change_ = std::move(placement);
  last_coarse_fallback_ = std::move(coarse);
  // Migrations in flight at checkpoint time died with the controller's
  // callbacks. Restoring them as placement cooldowns (not as pending
  // migrations) guarantees the restarted controller neither duplicates
  // the move nor re-issues it inside the flap window; the next
  // violating interval re-diagnoses from live data.
  for (ClassKey key : in_flight) {
    last_placement_change_[key] = sim_->Now();
  }
  for (const RestoredAnalyzer& ra : restored) {
    Replica* r = resources_->FindReplica(ra.replica_id);
    if (r == nullptr) continue;  // the replica died while we were down
    LogAnalyzer& analyzer = AnalyzerFor(&r->engine());
    for (const RestoredSignature& rs : ra.signatures) {
      analyzer.stable_store().Restore(rs.key, rs.sig);
    }
    for (const RestoredCurve& rc : ra.curves) {
      analyzer.RestoreStableTracker(
          rc.key, MissRatioCurve::FromRaw(rc.raw, rc.total_accesses),
          rc.trace_length);
    }
  }
  return true;
}

}  // namespace fglb
