#ifndef FGLB_CORE_CONTROLLER_CHECKPOINT_H_
#define FGLB_CORE_CONTROLLER_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "sim/simulator.h"

namespace fglb {

class AdmissionController;
class SelectiveRetuner;
class StatsChannel;

// FGLBCKPT1 — the versioned controller checkpoint a `ctl` crash
// restores from.
//
// Layout:
//
//   "FGLBCKPT1"                      9-byte magic (version in the name)
//   { tag varint, len varint, payload } ...   tagged sections
//   fixed32 CRC-32                   over everything before it
//
// Sections are written in tag order and tags are append-only. A reader
// skips tags it does not know (forward compatibility: a blob written
// by a newer controller restores cleanly on an older one), and rejects
// the whole blob on a magic mismatch, truncation, or CRC failure — the
// caller then cold-starts instead of trusting half a checkpoint.
//
// What the blob covers is exactly the control-plane state a crash
// loses: the retuner's streaks/cooldowns/stable baselines (including
// in-flight migrations, restored as placement cooldowns), the stats
// channel's receiver side, and the admission controller's shed/breaker
// state. Data-plane state (engines, pools, publisher sequence numbers)
// survives the crash in place and is deliberately absent.
struct ControllerCheckpoint {
  // Append-only section tags.
  enum Tag : uint64_t {
    kMeta = 1,         // SimTime the checkpoint was taken
    kRetuner = 2,      // SelectiveRetuner::SerializeControlState
    kStatsChannel = 3, // StatsChannel::SerializeReceiverState
    kAdmission = 4,    // AdmissionController::SerializeState
  };

  static constexpr char kMagic[] = "FGLBCKPT1";

  // Serializes the current control state. `channel` and `admission`
  // may be null; their sections are simply omitted.
  static void Build(SimTime now, const SelectiveRetuner& retuner,
                    const StatsChannel* channel,
                    const AdmissionController* admission, std::string* out);

  struct RestoreResult {
    bool ok = false;
    SimTime taken_at = 0;   // kMeta timestamp when ok
    std::string error;      // why the blob was rejected when !ok
  };

  // Validates the blob (magic + CRC) and, only then, resets and
  // restores the three subsystems. On any rejection the subsystems are
  // left reset (cold), never half-restored. A section whose subsystem
  // pointer is null is skipped.
  static RestoreResult Restore(const std::string& blob,
                               SelectiveRetuner* retuner,
                               StatsChannel* channel,
                               AdmissionController* admission);
};

}  // namespace fglb

#endif  // FGLB_CORE_CONTROLLER_CHECKPOINT_H_
