#include "core/io_interference.h"

#include <algorithm>

namespace fglb {

std::vector<ClassKey> PlanIoEviction(
    const std::map<ClassKey, double>& io_rate_by_class,
    double current_utilization, double target_utilization) {
  std::vector<ClassKey> evicted;
  if (current_utilization <= target_utilization) return evicted;

  std::vector<std::pair<double, ClassKey>> by_rate;
  by_rate.reserve(io_rate_by_class.size());
  for (const auto& [key, rate] : io_rate_by_class) {
    by_rate.emplace_back(rate, key);
  }
  std::sort(by_rate.begin(), by_rate.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  double removed = 0;
  const double excess = current_utilization - target_utilization;
  for (const auto& [rate, key] : by_rate) {
    if (removed >= excess) break;
    if (rate <= 0) break;
    evicted.push_back(key);
    removed += rate;
  }
  return evicted;
}

}  // namespace fglb
