#ifndef FGLB_CORE_SELECTIVE_RETUNER_H_
#define FGLB_CORE_SELECTIVE_RETUNER_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/resource_manager.h"
#include "cluster/scheduler.h"
#include "common/metrics_registry.h"
#include "common/trace_log.h"
#include "core/log_analyzer.h"
#include "core/outlier_detector.h"
#include "core/quota_planner.h"
#include "mrc/miss_ratio_curve.h"
#include "sim/simulator.h"

namespace fglb {

class SpanTracer;
class StatsChannel;

// Fate of one controller migration attempt, as decided by an optional
// interceptor (the fault injector, in chaos runs): the attempt may fail
// outright (the controller retries with backoff) or be applied only
// after a delay (a slow migration).
struct MigrationOutcome {
  bool fail = false;
  double delay_seconds = 0;
};

// The paper's selective retuning control loop (§3.2): every
// measurement interval it checks each application's SLA, refreshes
// stable-state signatures on clean intervals, and on violations runs
// the diagnosis cascade —
//
//   CPU saturation        -> reactive replica provisioning
//   memory interference   -> outlier contexts -> MRC recomputation ->
//                            per-class quota OR re-placement on a
//                            different replica
//   I/O interference      -> evict contexts by decreasing I/O rate
//   still failing         -> coarse-grained fallback: new replicas and
//                            application isolation
//
// Every decision is appended to an action log and every interval to a
// sample series, which the benchmarks print as the paper's figures.
class SelectiveRetuner {
 public:
  struct Config {
    double interval_seconds = 10;

    double cpu_saturation_threshold = 0.85;
    // De-provision a replica when the app meets its SLA with average
    // CPU utilization below this for `release_after` intervals.
    double cpu_release_threshold = 0.30;
    int release_after = 3;

    double io_saturation_threshold = 0.85;
    double io_target_utilization = 0.60;
    // Class-eviction is only the right response when I/O is *skewed*:
    // the heaviest class must contribute at least this share of the
    // channel's utilization. Unskewed saturation is a capacity problem
    // and gets a replica instead.
    double io_skew_share = 0.4;

    // After the replica set of an application changes (bootstrap,
    // provisioning, isolation), give buffer pools this many intervals
    // to warm before diagnosing anything beyond CPU saturation.
    int warmup_intervals = 3;

    // A class placed on a new replica is not moved again for this many
    // intervals (anti-thrash).
    int placement_cooldown_intervals = 9;

    // Consecutive violating intervals before coarse fallback.
    int coarse_fallback_after = 4;

    // Overload escalation: when admission control fast-fails at least
    // this share of an application's offered load over an interval, the
    // cluster is short on capacity no matter what the (shed-protected)
    // latency says — skip the diagnosis cascade and provision a replica
    // directly.
    double overload_shed_share = 0.25;

    uint64_t replica_pool_pages = 8192;

    OutlierConfig outlier;
    MrcConfig mrc;

    // "Similar algorithms on the top-k heavyweight queries" when no
    // outlier contexts are found.
    size_t top_k_fallback = 3;

    // Ablation knob: disable the fine-grained paths entirely (every
    // violation goes straight to coarse provisioning).
    bool enable_fine_grained = true;

    // Monitoring-only mode: collect samples and diagnoses but take no
    // action at all (benchmarks use this to measure the broken state).
    bool enable_actions = true;

    // --- migration hardening (fault tolerance) ---
    // A class migration gets 1 initial attempt plus this many retries
    // before it is abandoned (and its class cools down).
    int migration_max_retries = 2;
    // The first retry waits this long; each further retry doubles it.
    double migration_retry_backoff_seconds = 2;
    // A migration not applied within this window of its start is
    // abandoned, whatever its retry budget still holds.
    double migration_timeout_seconds = 30;
    // Migrations the controller may *start* per interval; 0 = unlimited
    // (the default keeps fault-free behaviour unchanged).
    int max_migrations_per_interval = 0;
    // Consulted once per migration attempt; unset means every attempt
    // applies immediately (the fault-free fast path).
    std::function<MigrationOutcome(ClassKey, int attempt)>
        migration_interceptor;

    // Observability hooks, both optional. `metrics` registers
    // controller.* instruments (tick/phase durations, violation and
    // per-kind action counters, per-server utilization gauges);
    // `trace` receives one structured event per diagnosis phase per
    // violating interval (sla -> impact -> iqr -> mrc -> action).
    MetricsRegistry* metrics = nullptr;
    TraceLog* trace = nullptr;
    // Sampled span tracer: phase=impact events carry its measured
    // per-class wait profile, and controller phase marks land on its
    // exported timeline.
    SpanTracer* spans = nullptr;
  };

  enum class ActionKind {
    kCpuProvision,
    kIoProvision,
    kCpuRelease,
    kQuotaEnforced,
    kClassRescheduled,
    kIoEviction,
    kCoarseFallback,
    // Cheapest memory rung on tiered engines: cap the class's DRAM
    // quota and give its working-set overflow a tier-2 quota instead
    // of migrating it. Appended last — captures persist the kind as a
    // small integer.
    kDemote,
  };

  struct Action {
    SimTime time = 0;
    ActionKind kind = ActionKind::kCpuProvision;
    AppId app = 0;
    std::string description;
  };

  struct AppSample {
    AppId app = 0;
    uint64_t queries = 0;
    double avg_latency = 0;
    double p95_latency = 0;
    double throughput = 0;
    bool sla_met = true;
    int servers_used = 0;
  };

  struct ServerSample {
    int server_id = 0;
    double cpu_utilization = 0;
    double io_utilization = 0;
  };

  struct IntervalSample {
    SimTime time = 0;
    std::vector<AppSample> apps;
    std::vector<ServerSample> servers;
  };

  // One memory-diagnosis pass, recorded for inspection: the outlier
  // report the violating interval produced on one engine, and the MRC
  // verdict per candidate.
  struct DiagnosisRecord {
    SimTime time = 0;
    AppId app = 0;
    int replica_id = -1;
    OutlierReport outliers;
    LogAnalyzer::MemoryDiagnosis memory;
  };

  SelectiveRetuner(Simulator* sim, ResourceManager* resources, Config config);
  SelectiveRetuner(const SelectiveRetuner&) = delete;
  SelectiveRetuner& operator=(const SelectiveRetuner&) = delete;

  // Registers an application's scheduler with the control loop.
  void RegisterApplication(Scheduler* scheduler);

  // Begins interval ticks at Now() + interval.
  void Start();

  // Runs one measurement-interval evaluation immediately (exposed for
  // tests and trace-driven benchmarks; Start() calls it periodically).
  void Tick();

  // The per-engine analyzer, created on first use.
  LogAnalyzer& AnalyzerFor(DatabaseEngine* engine);

  // Installs/replaces the migration interceptor after construction (the
  // harness wires the fault injector in once both exist).
  void set_migration_interceptor(
      std::function<MigrationOutcome(ClassKey, int)> interceptor) {
    config_.migration_interceptor = std::move(interceptor);
  }

  // Overload-protection coupling: sustained shedding escalates straight
  // to replica provisioning, and placement never targets a replica with
  // an open circuit breaker. Null (the default) decouples.
  void set_admission(AdmissionController* admission) {
    admission_ = admission;
  }

  // Late-binds the span tracer (the harness enables tracing after
  // construction). Null detaches.
  void set_span_tracer(SpanTracer* spans) { spans_ = spans; }

  // Telemetry transport: when set, Tick publishes every replica's
  // interval report through the channel and collects the controller's
  // (possibly stale, last-known-good) view back instead of reading the
  // stats collector directly. Stale feeds widen the IQR fences and,
  // below the confidence threshold, suppress per-class quota/demote/
  // migration actions — shed and CPU provisioning run on app-level
  // latency and are never gated. Null (the default) keeps the
  // pre-channel direct handoff.
  void set_stats_channel(StatsChannel* channel) { channel_ = channel; }

  // --- controller crash/restart (ctl faults) ---
  // Stop halts the interval ticker and strands every in-flight
  // callback (the armed tick and pending migration retries/delayed
  // applies die with the epoch). Restart re-arms the ticker so the
  // next tick lands one interval after the restart. ResetControlState
  // is the cold-start path: it drops all diagnostic state (analyzers,
  // streaks, warmup/cooldown clocks, in-flight migration bookkeeping)
  // while keeping the action/sample/diagnosis history — those are
  // observability records of the run, not control state.
  void Stop();
  void Restart();
  void ResetControlState();

  // Checkpoint support (FGLBCKPT1): the retuner section — violation/
  // calm streaks, warmup and cooldown clocks, and per-replica analyzer
  // state (stable signatures + stable MRC baselines, keyed by replica
  // id so the blob survives the engine pointers dying with the
  // controller). In-flight migrations are recorded by class key and
  // restored as placement cooldowns: their callbacks died with the
  // crash, and the cooldown guarantees the restarted controller cannot
  // re-issue the same move inside the flap window.
  void SerializeControlState(std::string* out) const;
  bool RestoreControlState(const uint8_t* p, const uint8_t* limit);

  const std::vector<Action>& actions() const { return actions_; }
  const std::vector<IntervalSample>& samples() const { return samples_; }
  const std::vector<DiagnosisRecord>& diagnoses() const { return diagnoses_; }
  const Config& config() const { return config_; }

  // Lifetime counters over the migration state machine; the chaos tests
  // assert its invariants (attempts bounded, abandoned moves cool down).
  struct MigrationStats {
    uint64_t started = 0;
    uint64_t applied = 0;
    uint64_t delayed = 0;
    uint64_t failed_attempts = 0;
    uint64_t abandoned = 0;
    int max_attempts_observed = 0;
  };
  const MigrationStats& migration_stats() const { return migration_stats_; }

  static const char* ActionKindName(ActionKind kind);

 private:
  using Snapshot = std::map<ClassKey, MetricVector>;

  // Returns the reason the interval acted on nothing ("monitoring",
  // "coarse_only", "no_stats", "no_action"); used as the skip-with-
  // reason `why` when the scope closes without actions.
  const char* HandleViolation(Scheduler* scheduler,
                              const Scheduler::IntervalReport& report,
                              const std::map<Replica*, Snapshot>& snapshots);
  bool TryCpuProvisioning(Scheduler* scheduler);
  // `act` false = diagnose and record only (monitoring mode).
  bool TryMemoryRetuning(Scheduler* scheduler,
                         const std::map<Replica*, Snapshot>& snapshots,
                         bool act = true);
  bool TryIoRetuning(Scheduler* scheduler,
                     const std::map<Replica*, Snapshot>& snapshots);
  void CoarseFallback(Scheduler* scheduler);
  void MaybeRelease(Scheduler* scheduler);

  // Finds (or provisions) a replica of `scheduler`'s app, other than
  // `avoid`, that passes the acceptable-memory fit test for `incoming`.
  Replica* FindPlacementTarget(Scheduler* scheduler, Replica* avoid,
                               const ClassMemoryProfile& incoming);

  // --- migration state machine ---
  // Every class re-placement goes through here. Replicas are carried by
  // id (delayed applies must survive the source/target dying); the
  // fault-free fast path (no interceptor) applies inline, producing the
  // exact same action stream as direct application used to.
  struct PendingMigration {
    ClassKey key = 0;
    AppId app = 0;  // owner application
    int source_id = -1;
    int target_id = -1;
    ActionKind kind = ActionKind::kClassRescheduled;
    std::string description;
    bool adopt_recomputation = false;
    ClassMemoryProfile profile;  // for re-finding a lost target
    SimTime started = 0;
    int attempt = 0;
  };
  // False when the per-interval budget or an in-flight migration of the
  // same class blocks the start.
  bool StartMigration(Scheduler* owner, Replica* source, Replica* target,
                      ClassKey key, ActionKind kind, std::string description,
                      bool adopt_recomputation,
                      const ClassMemoryProfile& profile);
  void AttemptMigration(PendingMigration m);
  bool ApplyMigration(const PendingMigration& m);
  void AbandonMigration(const PendingMigration& m, const char* why);

  // Drops analyzers whose engine no longer exists (decommissioned or
  // crash-destroyed); a new engine reusing the address must not inherit
  // stale state, and the analyzer's engine pointer would dangle.
  void PruneDeadAnalyzers();

  // Arms the periodic ticker for the current epoch; Stop() bumps the
  // epoch, so a stranded callback fires once and does nothing.
  void ArmTicker();

  // The controller's view of one replica's telemetry feed this tick
  // (all-fresh defaults when no channel is attached or the replica is
  // unknown).
  struct FeedState {
    bool fresh = true;
    uint64_t stale_intervals = 0;
    double confidence = 1.0;
  };
  bool FeedFresh(int replica_id) const;
  double FeedConfidence(int replica_id) const;

  void Log(ActionKind kind, AppId app, std::string description);

  // --- decision tracing ---
  // A violating interval opens a scope (emitting the "sla" event); the
  // cascade emits "impact"/"iqr"/"mrc" events as those phases run;
  // closing the scope back-fills skipped:true events for phases that
  // never ran and then emits the interval's "action" events (deferred
  // so phase order in the trace is always sla, impact, iqr, mrc,
  // action) — or a single kind:"none" action carrying `why` when the
  // interval acted on nothing.
  void BeginViolationScope(Scheduler* scheduler,
                           const Scheduler::IntervalReport& report,
                           double end_interval_us);
  void EndViolationScope(const char* why);
  bool Tracing() const { return trace_ != nullptr && trace_->enabled(); }
  void TraceOutlierPhases(AppId app, int replica_id,
                          const OutlierReport& report);
  // `tier2` non-null adds the engine's second-tier state to the event
  // (tier2_pages/tier2_resident/tier2_read_us); tierless traces are
  // byte-identical to before the tier existed.
  void TraceMrcPhase(AppId app, int replica_id, double dur_us,
                     size_t candidates, LogAnalyzer& analyzer,
                     const LogAnalyzer::MemoryDiagnosis& diagnosis,
                     const TieredBufferPool* tier2);
  void EmitActionEvent(const Action& action);

  // Whether the app's pools are still warming after a topology change.
  bool InWarmup(AppId app) const;
  // Whether the class was re-placed too recently to move again.
  bool InPlacementCooldown(ClassKey key) const;
  void NotePlacementChange(ClassKey key);
  void NoteTopologyChange(AppId app);

  Simulator* sim_;
  ResourceManager* resources_;
  Config config_;
  AdmissionController* admission_ = nullptr;
  QuotaPlanner planner_;
  std::vector<Scheduler*> schedulers_;
  std::map<DatabaseEngine*, std::unique_ptr<LogAnalyzer>> analyzers_;
  std::map<AppId, int> violation_streak_;
  std::map<AppId, int> calm_streak_;
  std::map<AppId, SimTime> last_topology_change_;
  std::map<AppId, size_t> last_replica_count_;
  std::map<ClassKey, SimTime> last_placement_change_;
  std::map<AppId, SimTime> last_coarse_fallback_;
  std::vector<Action> actions_;
  std::vector<IntervalSample> samples_;
  std::vector<DiagnosisRecord> diagnoses_;
  bool started_ = false;
  MigrationStats migration_stats_;
  int migrations_this_interval_ = 0;
  std::set<ClassKey> migrating_;  // classes with an in-flight migration

  StatsChannel* channel_ = nullptr;
  std::map<int, FeedState> feeds_;  // rebuilt each tick, keyed by replica id
  // Bumped by Stop(): scheduled callbacks capture the epoch they were
  // armed under and no-op if the controller crashed since.
  uint64_t epoch_ = 0;
  // Set while a violation's actions were withheld for stale telemetry;
  // the scope closes with why="low_confidence" instead of "no_action".
  bool low_confidence_suppressed_ = false;

  MetricsRegistry* metrics_ = nullptr;
  TraceLog* trace_ = nullptr;
  SpanTracer* spans_ = nullptr;
  LatencyHistogram* tick_us_ = nullptr;
  Counter* violations_ = nullptr;
  struct ViolationScope {
    bool active = false;
    AppId app = 0;
    bool impact_emitted = false;
    bool iqr_emitted = false;
    bool mrc_emitted = false;
    size_t actions_before = 0;
  };
  ViolationScope scope_;
};

}  // namespace fglb

#endif  // FGLB_CORE_SELECTIVE_RETUNER_H_
