#ifndef FGLB_CORE_SELECTIVE_RETUNER_H_
#define FGLB_CORE_SELECTIVE_RETUNER_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/resource_manager.h"
#include "cluster/scheduler.h"
#include "common/metrics_registry.h"
#include "common/trace_log.h"
#include "core/log_analyzer.h"
#include "core/outlier_detector.h"
#include "core/quota_planner.h"
#include "mrc/miss_ratio_curve.h"
#include "sim/simulator.h"

namespace fglb {

// The paper's selective retuning control loop (§3.2): every
// measurement interval it checks each application's SLA, refreshes
// stable-state signatures on clean intervals, and on violations runs
// the diagnosis cascade —
//
//   CPU saturation        -> reactive replica provisioning
//   memory interference   -> outlier contexts -> MRC recomputation ->
//                            per-class quota OR re-placement on a
//                            different replica
//   I/O interference      -> evict contexts by decreasing I/O rate
//   still failing         -> coarse-grained fallback: new replicas and
//                            application isolation
//
// Every decision is appended to an action log and every interval to a
// sample series, which the benchmarks print as the paper's figures.
class SelectiveRetuner {
 public:
  struct Config {
    double interval_seconds = 10;

    double cpu_saturation_threshold = 0.85;
    // De-provision a replica when the app meets its SLA with average
    // CPU utilization below this for `release_after` intervals.
    double cpu_release_threshold = 0.30;
    int release_after = 3;

    double io_saturation_threshold = 0.85;
    double io_target_utilization = 0.60;
    // Class-eviction is only the right response when I/O is *skewed*:
    // the heaviest class must contribute at least this share of the
    // channel's utilization. Unskewed saturation is a capacity problem
    // and gets a replica instead.
    double io_skew_share = 0.4;

    // After the replica set of an application changes (bootstrap,
    // provisioning, isolation), give buffer pools this many intervals
    // to warm before diagnosing anything beyond CPU saturation.
    int warmup_intervals = 3;

    // A class placed on a new replica is not moved again for this many
    // intervals (anti-thrash).
    int placement_cooldown_intervals = 9;

    // Consecutive violating intervals before coarse fallback.
    int coarse_fallback_after = 4;

    uint64_t replica_pool_pages = 8192;

    OutlierConfig outlier;
    MrcConfig mrc;

    // "Similar algorithms on the top-k heavyweight queries" when no
    // outlier contexts are found.
    size_t top_k_fallback = 3;

    // Ablation knob: disable the fine-grained paths entirely (every
    // violation goes straight to coarse provisioning).
    bool enable_fine_grained = true;

    // Monitoring-only mode: collect samples and diagnoses but take no
    // action at all (benchmarks use this to measure the broken state).
    bool enable_actions = true;

    // Observability hooks, both optional. `metrics` registers
    // controller.* instruments (tick/phase durations, violation and
    // per-kind action counters, per-server utilization gauges);
    // `trace` receives one structured event per diagnosis phase per
    // violating interval (sla -> impact -> iqr -> mrc -> action).
    MetricsRegistry* metrics = nullptr;
    TraceLog* trace = nullptr;
  };

  enum class ActionKind {
    kCpuProvision,
    kIoProvision,
    kCpuRelease,
    kQuotaEnforced,
    kClassRescheduled,
    kIoEviction,
    kCoarseFallback,
  };

  struct Action {
    SimTime time = 0;
    ActionKind kind = ActionKind::kCpuProvision;
    AppId app = 0;
    std::string description;
  };

  struct AppSample {
    AppId app = 0;
    uint64_t queries = 0;
    double avg_latency = 0;
    double p95_latency = 0;
    double throughput = 0;
    bool sla_met = true;
    int servers_used = 0;
  };

  struct ServerSample {
    int server_id = 0;
    double cpu_utilization = 0;
    double io_utilization = 0;
  };

  struct IntervalSample {
    SimTime time = 0;
    std::vector<AppSample> apps;
    std::vector<ServerSample> servers;
  };

  // One memory-diagnosis pass, recorded for inspection: the outlier
  // report the violating interval produced on one engine, and the MRC
  // verdict per candidate.
  struct DiagnosisRecord {
    SimTime time = 0;
    AppId app = 0;
    int replica_id = -1;
    OutlierReport outliers;
    LogAnalyzer::MemoryDiagnosis memory;
  };

  SelectiveRetuner(Simulator* sim, ResourceManager* resources, Config config);
  SelectiveRetuner(const SelectiveRetuner&) = delete;
  SelectiveRetuner& operator=(const SelectiveRetuner&) = delete;

  // Registers an application's scheduler with the control loop.
  void RegisterApplication(Scheduler* scheduler);

  // Begins interval ticks at Now() + interval.
  void Start();

  // Runs one measurement-interval evaluation immediately (exposed for
  // tests and trace-driven benchmarks; Start() calls it periodically).
  void Tick();

  // The per-engine analyzer, created on first use.
  LogAnalyzer& AnalyzerFor(DatabaseEngine* engine);

  const std::vector<Action>& actions() const { return actions_; }
  const std::vector<IntervalSample>& samples() const { return samples_; }
  const std::vector<DiagnosisRecord>& diagnoses() const { return diagnoses_; }
  const Config& config() const { return config_; }

  static const char* ActionKindName(ActionKind kind);

 private:
  using Snapshot = std::map<ClassKey, MetricVector>;

  void HandleViolation(Scheduler* scheduler,
                       const Scheduler::IntervalReport& report,
                       const std::map<Replica*, Snapshot>& snapshots);
  bool TryCpuProvisioning(Scheduler* scheduler);
  // `act` false = diagnose and record only (monitoring mode).
  bool TryMemoryRetuning(Scheduler* scheduler,
                         const std::map<Replica*, Snapshot>& snapshots,
                         bool act = true);
  bool TryIoRetuning(Scheduler* scheduler,
                     const std::map<Replica*, Snapshot>& snapshots);
  void CoarseFallback(Scheduler* scheduler);
  void MaybeRelease(Scheduler* scheduler);

  // Finds (or provisions) a replica of `scheduler`'s app, other than
  // `avoid`, that passes the acceptable-memory fit test for `incoming`.
  Replica* FindPlacementTarget(Scheduler* scheduler, Replica* avoid,
                               const ClassMemoryProfile& incoming);

  void Log(ActionKind kind, AppId app, std::string description);

  // --- decision tracing ---
  // A violating interval opens a scope (emitting the "sla" event); the
  // cascade emits "impact"/"iqr"/"mrc" events as those phases run;
  // closing the scope back-fills skipped:true events for phases that
  // never ran and then emits the interval's "action" events (deferred
  // so phase order in the trace is always sla, impact, iqr, mrc,
  // action) — or a single kind:"none" action carrying `why` when the
  // interval acted on nothing.
  void BeginViolationScope(Scheduler* scheduler,
                           const Scheduler::IntervalReport& report,
                           double end_interval_us);
  void EndViolationScope(const char* why);
  bool Tracing() const { return trace_ != nullptr && trace_->enabled(); }
  void TraceOutlierPhases(AppId app, int replica_id,
                          const OutlierReport& report);
  void TraceMrcPhase(AppId app, int replica_id, double dur_us,
                     size_t candidates, LogAnalyzer& analyzer,
                     const LogAnalyzer::MemoryDiagnosis& diagnosis);
  void EmitActionEvent(const Action& action);

  // Whether the app's pools are still warming after a topology change.
  bool InWarmup(AppId app) const;
  // Whether the class was re-placed too recently to move again.
  bool InPlacementCooldown(ClassKey key) const;
  void NotePlacementChange(ClassKey key);
  void NoteTopologyChange(AppId app);

  Simulator* sim_;
  ResourceManager* resources_;
  Config config_;
  QuotaPlanner planner_;
  std::vector<Scheduler*> schedulers_;
  std::map<DatabaseEngine*, std::unique_ptr<LogAnalyzer>> analyzers_;
  std::map<AppId, int> violation_streak_;
  std::map<AppId, int> calm_streak_;
  std::map<AppId, SimTime> last_topology_change_;
  std::map<AppId, size_t> last_replica_count_;
  std::map<ClassKey, SimTime> last_placement_change_;
  std::map<AppId, SimTime> last_coarse_fallback_;
  std::vector<Action> actions_;
  std::vector<IntervalSample> samples_;
  std::vector<DiagnosisRecord> diagnoses_;
  bool started_ = false;

  MetricsRegistry* metrics_ = nullptr;
  TraceLog* trace_ = nullptr;
  LatencyHistogram* tick_us_ = nullptr;
  Counter* violations_ = nullptr;
  struct ViolationScope {
    bool active = false;
    AppId app = 0;
    bool impact_emitted = false;
    bool iqr_emitted = false;
    bool mrc_emitted = false;
    size_t actions_before = 0;
  };
  ViolationScope scope_;
};

}  // namespace fglb

#endif  // FGLB_CORE_SELECTIVE_RETUNER_H_
