#include "core/log_analyzer.h"

#include <cassert>
#include <chrono>

#include "mrc/opt_oracle.h"

namespace fglb {

namespace {

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

LogAnalyzer::LogAnalyzer(DatabaseEngine* engine, OutlierConfig outlier_config,
                         MrcConfig mrc_config, MetricsRegistry* metrics)
    : engine_(engine),
      detector_(outlier_config),
      mrc_config_(mrc_config),
      metrics_(metrics) {
  assert(engine_ != nullptr);
  if (metrics_ != nullptr) {
    outlier_us_ = metrics_->histogram("controller.diagnose.outlier_us");
    mrc_us_ = metrics_->histogram("controller.diagnose.mrc_us");
  }
}

MrcTracker& LogAnalyzer::TrackerFor(ClassKey key) {
  auto it = trackers_.find(key);
  if (it == trackers_.end()) {
    it = trackers_.emplace(key, std::make_unique<MrcTracker>(mrc_config_))
             .first;
  }
  return *it->second;
}

void LogAnalyzer::RecordStableInterval(
    AppId app, const std::map<ClassKey, MetricVector>& snapshot,
    SimTime now) {
  for (const auto& [key, vec] : snapshot) {
    if (AppOf(key) != app) continue;
    stable_store_.Update(key, vec, now);
    // First-time MRC baseline, computed "when a query class is first
    // scheduled on the system" — i.e. once enough of its accesses have
    // been observed during stable operation. In streaming mode the
    // baseline is a snapshot of the always-fresh estimator; no replay.
    MrcTracker& tracker = TrackerFor(key);
    if (!tracker.has_stable()) {
      const StreamingMrcEstimator* stream =
          mrc_config_.mode == MrcMode::kStreaming
              ? engine_->stats().StreamingFor(key)
              : nullptr;
      if (stream != nullptr &&
          stream->in_window_accesses() >= kMinWindowForMrc) {
        tracker.SetStableFromCurve(stream->Curve());
      } else if (stream == nullptr) {
        const SpanPair<PageId> window =
            engine_->stats().AccessWindowSpans(key);
        if (window.size() >= kMinWindowForMrc) {
          tracker.SetStableFromTrace(window);
        }
      }
    }
  }
}

OutlierReport LogAnalyzer::DetectOutliers(
    AppId app, const std::map<ClassKey, MetricVector>& snapshot,
    double fence_scale) const {
  const auto start = std::chrono::steady_clock::now();
  std::map<ClassKey, MetricVector> app_only;
  for (const auto& [key, vec] : snapshot) {
    if (AppOf(key) == app) app_only.emplace(key, vec);
  }
  OutlierReport report = detector_.Detect(app_only, stable_store_, fence_scale);
  if (outlier_us_ != nullptr) outlier_us_->Record(MicrosSince(start));
  return report;
}

ThreadPool& LogAnalyzer::AnalysisPool() {
  if (!pool_) {
    const int threads = mrc_config_.analysis_threads;
    pool_ = std::make_unique<ThreadPool>(
        threads <= 0 ? 0 : static_cast<size_t>(threads));
    if (metrics_ != nullptr) {
      pool_->BindMetrics(metrics_, "controller.pool.");
    }
  }
  return *pool_;
}

LogAnalyzer::MemoryDiagnosis LogAnalyzer::DiagnoseMemory(
    const std::set<ClassKey>& candidates) {
  const auto start = std::chrono::steady_clock::now();
  MemoryDiagnosis diagnosis;
  // Phase 1 (serial): snapshot windows/streaming curves and materialize
  // trackers — everything that touches shared maps. In streaming mode a
  // warm estimator replaces the replay with an O(curve) snapshot taken
  // here; a class without a warm estimator (streaming enabled mid-run)
  // falls back to the replay path.
  struct Job {
    ClassKey key;
    SpanPair<PageId> window;
    MrcTracker* tracker;
    bool streaming = false;
    MissRatioCurve curve;  // streaming jobs only
    MrcTracker::Recomputation rec;
  };
  std::vector<Job> jobs;
  jobs.reserve(candidates.size());
  for (ClassKey key : candidates) {
    const StreamingMrcEstimator* stream =
        mrc_config_.mode == MrcMode::kStreaming
            ? engine_->stats().StreamingFor(key)
            : nullptr;
    if (stream != nullptr &&
        stream->in_window_accesses() >= kMinWindowForMrc) {
      Job job{key, {}, &TrackerFor(key), true, stream->Curve(), {}};
      jobs.push_back(std::move(job));
      continue;
    }
    const SpanPair<PageId> window = engine_->stats().AccessWindowSpans(key);
    if (window.size() < kMinWindowForMrc) {
      diagnosis.insufficient_data.push_back(key);
      continue;
    }
    jobs.push_back(Job{key, window, &TrackerFor(key), false, {}, {}});
  }
  // Phase 2 (parallel): each job reads its own window snapshot or
  // pre-taken curve and mutates only its own tracker's scratch stack
  // and its own slot.
  auto run_job = [](Job& job) {
    job.rec = job.streaming ? job.tracker->Diagnose(job.curve)
                            : job.tracker->Recompute(job.window);
  };
  if (jobs.size() > 1) {
    AnalysisPool().ParallelFor(jobs.size(),
                               [&jobs, &run_job](size_t i) { run_job(jobs[i]); });
  } else if (!jobs.empty()) {
    run_job(jobs[0]);
  }
  // Phase 3 (serial): merge in candidate order, so the diagnosis is
  // byte-identical to a serial pass.
  for (Job& job : jobs) {
    ClassMemoryProfile profile;
    profile.key = job.key;
    profile.params = job.rec.params;
    // Carry the curve itself: tiered planning reads the (dram, tier2)
    // split straight off the reuse-distance histogram.
    profile.curve = std::make_shared<MissRatioCurve>(job.rec.curve);
    if (mrc_config_.opt_regret) {
      // LRU-vs-Belady gap at the class's acceptable-memory point: how
      // much of the remaining miss ratio is replacement-policy regret
      // rather than genuine capacity need. O(window log window) — only
      // paid when the oracle is explicitly enabled.
      const std::vector<PageId> trace = engine_->stats().AccessWindow(job.key);
      profile.regret_vs_opt = RegretVsOpt(
          trace, job.rec.curve, job.rec.params.acceptable_memory_pages);
    }
    if (job.rec.suspect) {
      diagnosis.suspects.push_back(profile);
    } else {
      diagnosis.cleared.push_back(profile);
    }
    last_recomputation_[job.key] = std::move(job.rec);
  }
  if (mrc_us_ != nullptr) mrc_us_->Record(MicrosSince(start));
  return diagnosis;
}

void LogAnalyzer::AdoptRecomputation(ClassKey key) {
  auto it = last_recomputation_.find(key);
  if (it == last_recomputation_.end()) return;
  TrackerFor(key).AdoptAsStable(it->second);
}

std::vector<ClassMemoryProfile> LogAnalyzer::StableProfilesExcept(
    const std::set<ClassKey>& excluded) const {
  std::vector<ClassMemoryProfile> profiles;
  for (const auto& [key, tracker] : trackers_) {
    if (excluded.contains(key)) continue;
    if (!tracker->has_stable()) continue;
    ClassMemoryProfile profile;
    profile.key = key;
    profile.params = tracker->stable_params();
    if (!tracker->stable_curve().empty()) {
      profile.curve =
          std::make_shared<MissRatioCurve>(tracker->stable_curve());
    }
    profiles.push_back(profile);
  }
  return profiles;
}

const MrcParameters* LogAnalyzer::StableParamsOf(ClassKey key) const {
  auto it = trackers_.find(key);
  if (it == trackers_.end() || !it->second->has_stable()) return nullptr;
  return &it->second->stable_params();
}

}  // namespace fglb
