#include "core/outlier_detector.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/stats.h"

namespace fglb {

namespace {

constexpr double kEps = 1e-9;

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

std::string MetricOutlier::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "app=%u class=%u metric=%s ratio=%.3g impact=%.3g %s %s",
                AppOf(key), ClassOf(key), MetricName(metric), ratio, impact,
                degree == OutlierDegree::kExtreme ? "extreme" : "mild",
                high_side ? "high" : "low");
  return buf;
}

std::set<ClassKey> OutlierReport::OutlierContexts() const {
  std::set<ClassKey> contexts;
  for (const auto& o : outliers) contexts.insert(o.key);
  return contexts;
}

std::set<ClassKey> OutlierReport::MemoryProblemContexts() const {
  std::set<ClassKey> contexts;
  for (const auto& o : outliers) {
    if (IsMemoryMetric(o.metric) && o.high_side) contexts.insert(o.key);
  }
  return contexts;
}

OutlierReport OutlierDetector::Detect(
    const std::map<ClassKey, MetricVector>& current,
    const StableStateStore& stable, double fence_scale) const {
  OutlierReport report;
  const double mild_fence = config_.mild_fence * std::max(fence_scale, 1.0);
  const double extreme_fence =
      config_.extreme_fence * std::max(fence_scale, 1.0);

  // Partition classes into those with a baseline and new ones.
  std::vector<ClassKey> with_baseline;
  for (const auto& [key, vec] : current) {
    if (stable.Find(key) != nullptr) {
      with_baseline.push_back(key);
    } else {
      report.new_classes.push_back(key);
    }
  }

  for (Metric metric : kAllMetrics) {
    const auto impact_start = std::chrono::steady_clock::now();
    // 1. current/stable ratios.
    double min_positive_current = std::numeric_limits<double>::infinity();
    for (ClassKey key : with_baseline) {
      const double cur = At(current.at(key), metric);
      const double stb = At(stable.Find(key)->averages, metric);
      double ratio;
      if (stb > kEps) {
        ratio = std::min(cur / stb, config_.ratio_cap);
      } else {
        ratio = cur > kEps ? config_.ratio_cap : 1.0;
      }
      report.ratios[metric][key] = ratio;
      if (cur > kEps) min_positive_current = std::min(min_positive_current,
                                                      cur);
    }

    // 2. weighted impacts: the weight is the class's metric value
    // normalized to the least value across classes for this metric, so
    // heavyweight classes surface even with moderate deviations.
    std::vector<double> impacts;
    std::vector<ClassKey> impact_keys;
    for (ClassKey key : with_baseline) {
      const double cur = At(current.at(key), metric);
      double weight = 1.0;
      if (config_.use_weights) {
        weight = (cur > kEps && std::isfinite(min_positive_current))
                     ? cur / min_positive_current
                     : 0.0;
      }
      const double impact = report.ratios[metric][key] * weight;
      report.impacts[metric][key] = impact;
      impacts.push_back(impact);
      impact_keys.push_back(key);
    }

    report.impact_us += MicrosSince(impact_start);

    // 3. IQR fencing across the application's classes.
    if (impacts.size() < config_.min_classes) continue;
    const auto fence_start = std::chrono::steady_clock::now();
    const QuartileSummary q = Quartiles(impacts);
    const double inner_lo = q.q1 - mild_fence * q.iqr;
    const double inner_hi = q.q3 + mild_fence * q.iqr;
    const double outer_lo = q.q1 - extreme_fence * q.iqr;
    const double outer_hi = q.q3 + extreme_fence * q.iqr;
    report.fences.push_back(FenceSummary{metric, q.q1, q.q3, q.iqr, inner_lo,
                                         inner_hi, outer_lo, outer_hi});
    for (size_t i = 0; i < impacts.size(); ++i) {
      const double x = impacts[i];
      OutlierDegree degree = OutlierDegree::kNone;
      bool high_side = false;
      if (x > outer_hi) {
        degree = OutlierDegree::kExtreme;
        high_side = true;
      } else if (x > inner_hi) {
        degree = OutlierDegree::kMild;
        high_side = true;
      } else if (x < outer_lo) {
        degree = OutlierDegree::kExtreme;
      } else if (x < inner_lo) {
        degree = OutlierDegree::kMild;
      }
      if (degree == OutlierDegree::kNone) continue;
      MetricOutlier outlier;
      outlier.key = impact_keys[i];
      outlier.metric = metric;
      outlier.ratio = report.ratios[metric][impact_keys[i]];
      outlier.impact = x;
      outlier.degree = degree;
      outlier.high_side = high_side;
      report.outliers.push_back(outlier);
    }
    report.fence_us += MicrosSince(fence_start);
  }
  return report;
}

}  // namespace fglb
