#ifndef FGLB_CORE_STABLE_STATE_H_
#define FGLB_CORE_STABLE_STATE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "engine/metrics.h"
#include "sim/simulator.h"
#include "workload/query_class.h"

namespace fglb {

// The per-query-class record the paper calls a "stable state
// signature": the average value of every monitored metric over the most
// recent measurement interval in which the class's application met its
// SLA continuously, on this server.
struct StableStateSignature {
  MetricVector averages{};
  SimTime recorded_at = 0;
  uint64_t intervals_observed = 0;
};

// One store per database engine (per server): signatures for every
// query class executing there. Updated whenever the owning
// application's interval was stable; consulted on SLA violations to
// compute current/stable metric ratios.
class StableStateStore {
 public:
  // Installs/overwrites the signature for `key` with this stable
  // interval's averages ("we update the last stable value seen").
  // Averages containing NaN/inf are rejected: the last good signature
  // survives a degraded statistics feed.
  void Update(ClassKey key, const MetricVector& averages, SimTime now);

  // nullptr if the class has never completed a stable interval here.
  const StableStateSignature* Find(ClassKey key) const;

  void Erase(ClassKey key) { signatures_.erase(key); }
  size_t size() const { return signatures_.size(); }
  std::vector<ClassKey> Keys() const;

  // Checkpoint support: full iteration out, verbatim signatures back
  // in (bypasses Update's NaN filtering and timestamping — the
  // signature was already vetted when first recorded).
  const std::map<ClassKey, StableStateSignature>& Entries() const {
    return signatures_;
  }
  void Restore(ClassKey key, const StableStateSignature& signature) {
    signatures_[key] = signature;
  }

 private:
  std::map<ClassKey, StableStateSignature> signatures_;
};

}  // namespace fglb

#endif  // FGLB_CORE_STABLE_STATE_H_
