#ifndef FGLB_CORE_OUTLIER_DETECTOR_H_
#define FGLB_CORE_OUTLIER_DETECTOR_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/stable_state.h"
#include "engine/metrics.h"
#include "workload/query_class.h"

namespace fglb {

// Tunables of the paper's §3.3.1 outlier detection.
struct OutlierConfig {
  // Inner fence multiplier: [Q1 - k*IQR, Q3 + k*IQR] -> mild outlier.
  double mild_fence = 1.5;
  // Outer fence multiplier -> extreme outlier.
  double extreme_fence = 3.0;
  // Weight each current/stable ratio by the class's share of the
  // metric (normalized to the least value across classes). Disabling
  // this is the A1 ablation.
  bool use_weights = true;
  // Minimum classes with signatures needed for meaningful quartiles.
  size_t min_classes = 4;
  // Ratios are capped here when the stable value is ~0 (new behaviour
  // appearing from nothing would otherwise divide by zero).
  double ratio_cap = 100.0;
};

enum class OutlierDegree { kNone = 0, kMild = 1, kExtreme = 2 };

// One outlier metric impact value (§3.3.1): a (class, metric) pair
// whose weighted current/stable ratio fell outside an IQR fence.
struct MetricOutlier {
  ClassKey key = 0;
  Metric metric = Metric::kLatency;
  double ratio = 0;   // current / stable
  double impact = 0;  // ratio * weight
  OutlierDegree degree = OutlierDegree::kNone;
  bool high_side = true;  // above the upper fence (vs below the lower)

  std::string ToString() const;
};

// The IQR fences actually applied for one metric — kept so decision
// traces can show WHY a class was (or was not) classified an outlier.
struct FenceSummary {
  Metric metric = Metric::kLatency;
  double q1 = 0;
  double q3 = 0;
  double iqr = 0;
  double inner_lo = 0;
  double inner_hi = 0;
  double outer_lo = 0;
  double outer_hi = 0;
};

// Result of one detection pass over an application's classes on one
// engine.
struct OutlierReport {
  std::vector<MetricOutlier> outliers;
  // Classes seen this interval that have no stable signature yet
  // (newly scheduled query classes; handled by the MRC step).
  std::vector<ClassKey> new_classes;
  // Raw impact values per metric per class, for inspection/plots.
  std::map<Metric, std::map<ClassKey, double>> impacts;
  // Raw current/stable ratios, the quantity Fig. 4 plots.
  std::map<Metric, std::map<ClassKey, double>> ratios;
  // Fences per metric that had enough classes for quartiles.
  std::vector<FenceSummary> fences;
  // Wall-clock spent computing impacts vs applying fences, for the
  // controller's phase-duration trace.
  double impact_us = 0;
  double fence_us = 0;

  // Distinct classes with at least one outlier metric ("outlier query
  // contexts").
  std::set<ClassKey> OutlierContexts() const;

  // Outlier contexts restricted to memory-related counters and the
  // high side — the §3.3.2 "problem query class" candidates.
  std::set<ClassKey> MemoryProblemContexts() const;

  bool HasOutliers() const { return !outliers.empty(); }
};

// Classic IQR outlier detection over weighted metric-impact values,
// applied per metric across the query classes of one application on
// one server.
class OutlierDetector {
 public:
  explicit OutlierDetector(OutlierConfig config = {}) : config_(config) {}

  // `current` holds this interval's per-class metric vectors for one
  // application's classes on one engine; `stable` the engine's
  // signature store. Classes lacking signatures are reported in
  // `new_classes` and excluded from fencing. `fence_scale` multiplies
  // both IQR fence multipliers (>= 1): the stale-telemetry guard
  // widens fences when the stats feed's confidence has decayed, so a
  // possibly-stale snapshot must deviate harder to count as an
  // outlier.
  OutlierReport Detect(const std::map<ClassKey, MetricVector>& current,
                       const StableStateStore& stable,
                       double fence_scale = 1.0) const;

  const OutlierConfig& config() const { return config_; }

 private:
  OutlierConfig config_;
};

}  // namespace fglb

#endif  // FGLB_CORE_OUTLIER_DETECTOR_H_
