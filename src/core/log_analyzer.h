#ifndef FGLB_CORE_LOG_ANALYZER_H_
#define FGLB_CORE_LOG_ANALYZER_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/metrics_registry.h"
#include "common/thread_pool.h"
#include "core/outlier_detector.h"
#include "core/quota_planner.h"
#include "core/stable_state.h"
#include "engine/database_engine.h"
#include "mrc/mrc_tracker.h"

namespace fglb {

// One log analyzer per database engine (the paper's "one per database
// system running on their server"): owns the engine's stable-state
// signature store and per-class MRC trackers, runs outlier detection
// over interval snapshots, and performs the MRC-recomputation memory
// diagnosis for suspect classes.
class LogAnalyzer {
 public:
  LogAnalyzer(DatabaseEngine* engine, OutlierConfig outlier_config,
              MrcConfig mrc_config, MetricsRegistry* metrics = nullptr);
  LogAnalyzer(const LogAnalyzer&) = delete;
  LogAnalyzer& operator=(const LogAnalyzer&) = delete;

  // Minimum recent accesses before a class's MRC is considered
  // computable.
  static constexpr size_t kMinWindowForMrc = 4000;

  // Called for each application whose interval met its SLA: refreshes
  // the stable signatures of that app's classes (from `snapshot`,
  // which must contain only this engine's per-class vectors) and seeds
  // first-time MRC baselines from the access windows.
  void RecordStableInterval(AppId app,
                            const std::map<ClassKey, MetricVector>& snapshot,
                            SimTime now);

  // Outlier detection for one application's classes in this engine's
  // snapshot (classes of other apps are filtered out). `fence_scale`
  // widens the IQR fences when the snapshot's telemetry confidence has
  // decayed (see StatsChannel).
  OutlierReport DetectOutliers(AppId app,
                               const std::map<ClassKey, MetricVector>&
                                   snapshot,
                               double fence_scale = 1.0) const;

  struct MemoryDiagnosis {
    // Classes whose recomputed MRC shows a significantly higher memory
    // need — or that never had a baseline (newly scheduled): the
    // confirmed memory-interference suspects, with current parameters.
    std::vector<ClassMemoryProfile> suspects;
    // Candidates whose recomputation showed no change: not the cause.
    std::vector<ClassMemoryProfile> cleared;
    // Candidates with too little window data to recompute.
    std::vector<ClassKey> insufficient_data;
  };

  // Recomputes MRCs from the recent access windows for `candidates`.
  // Each class's Mattson replay is independent, so the replays fan out
  // across a worker pool sized by MrcConfig::analysis_threads; windows
  // are consumed as zero-copy ring snapshots. The result is identical
  // to a serial pass (each job writes only its own slot and the merge
  // preserves candidate order).
  MemoryDiagnosis DiagnoseMemory(const std::set<ClassKey>& candidates);

  // Adopts the most recent recomputation of `key` as its new stable MRC
  // baseline (call after acting on the diagnosis so the accepted
  // environment change stops looking anomalous).
  void AdoptRecomputation(ClassKey key);

  // Stable memory profiles of every class known to this engine except
  // `excluded` — the "rest of the application queries scheduled on the
  // same physical server" side of the quota fit test.
  std::vector<ClassMemoryProfile> StableProfilesExcept(
      const std::set<ClassKey>& excluded) const;

  // Stable profile for one class, if its MRC baseline exists.
  const MrcParameters* StableParamsOf(ClassKey key) const;

  DatabaseEngine& engine() { return *engine_; }
  StableStateStore& stable_store() { return stable_store_; }
  const StableStateStore& stable_store() const { return stable_store_; }
  const MrcConfig& mrc_config() const { return mrc_config_; }

  // Checkpoint support (FGLBCKPT1): iterate the classes whose trackers
  // hold a stable MRC baseline, and reinstall one on restore. The
  // restored tracker re-derives its parameters from the curve, so
  // post-restore diagnoses are identical to the pre-crash ones.
  void ForEachStableTracker(
      const std::function<void(ClassKey, const MissRatioCurve&, size_t)>& fn)
      const {
    for (const auto& [key, tracker] : trackers_) {
      if (!tracker->has_stable()) continue;
      fn(key, tracker->stable_curve(), tracker->stable_trace_length());
    }
  }
  void RestoreStableTracker(ClassKey key, const MissRatioCurve& curve,
                            size_t trace_length) {
    TrackerFor(key).RestoreStable(curve, trace_length);
  }

 private:
  MrcTracker& TrackerFor(ClassKey key);
  // The diagnosis worker pool, created on first parallel use.
  ThreadPool& AnalysisPool();

  DatabaseEngine* engine_;
  OutlierDetector detector_;
  MrcConfig mrc_config_;
  MetricsRegistry* metrics_ = nullptr;
  // Phase-duration histograms, bound iff metrics_ is set.
  LatencyHistogram* outlier_us_ = nullptr;
  LatencyHistogram* mrc_us_ = nullptr;
  StableStateStore stable_store_;
  std::map<ClassKey, std::unique_ptr<MrcTracker>> trackers_;
  std::map<ClassKey, MrcTracker::Recomputation> last_recomputation_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace fglb

#endif  // FGLB_CORE_LOG_ANALYZER_H_
