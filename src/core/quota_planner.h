#ifndef FGLB_CORE_QUOTA_PLANNER_H_
#define FGLB_CORE_QUOTA_PLANNER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics_registry.h"
#include "mrc/miss_ratio_curve.h"
#include "workload/query_class.h"

namespace fglb {

// MRC-derived memory profile of one query class on one engine.
struct ClassMemoryProfile {
  ClassKey key = 0;
  MrcParameters params;
  // LRU-vs-Belady miss-ratio gap at the class's current quota
  // (MrcConfig::opt_regret only; negative = not computed). Near zero
  // means more memory genuinely helps; large means the workload is
  // replacement-hostile and a quota bump would be wasted.
  double regret_vs_opt = -1;
  // The full curve the parameters were derived from (shared with the
  // tracker's stable state; may be null for legacy callers). Tiered
  // planning needs it: (dram, tier2) placement is a second read-out of
  // the same reuse-distance histogram, not a second computation.
  std::shared_ptr<const MissRatioCurve> curve;
};

// Per-access service times (microseconds) of the three levels a read
// can land in — the blended latency model two-level planning optimizes:
//   L(d1, d2) = dram_hit·t_mem + tier2_hit·t_ssd + miss·t_disk.
struct TierCostModel {
  double t_mem_us = 1.0;
  double t_ssd_us = 100.0;    // TierConfig::read_us
  double t_disk_us = 2000.0;  // DiskModel::random_read_seconds
};

// The outcome of the paper's §3.3.2 heuristic for one engine.
struct QuotaPlan {
  // The current placement already meets everyone's *total* memory need;
  // nothing to do.
  bool placement_fits = false;
  // Quotas to enforce (problem classes only); empty if placement_fits
  // or the plan is to migrate instead.
  std::map<ClassKey, uint64_t> quotas;
  // Tier-2 quotas chosen by PlanTiered for classes whose working-set
  // overflow is demoted to the second tier instead of rescheduled —
  // always a subset of `quotas` keys; empty for DRAM-only plans.
  std::map<ClassKey, uint64_t> tier2_quotas;
  // Problem classes that cannot be kept under any acceptable quota and
  // should be rescheduled on a different replica.
  std::vector<ClassKey> reschedule;
  // Nothing worked: fall back to coarse-grained allocation.
  bool infeasible = false;

  std::string ToString() const;
};

// Implements the iterative fit test: can each problem class be given a
// fixed buffer-pool quota such that it and the rest of the classes on
// the server are all predicted (by their MRCs) to meet their acceptable
// miss ratios? If not, problem classes are marked for rescheduling,
// largest acceptable need first.
class QuotaPlanner {
 public:
  // Quotas are floored here: a class with a flat MRC (pure scan) has
  // acceptable memory ~0, but it still needs room for read-ahead
  // extents in flight.
  explicit QuotaPlanner(uint64_t min_quota_pages = 256)
      : min_quota_pages_(min_quota_pages) {}

  // `pool_pages`: the engine's buffer-pool capacity.
  // `problem`: memory-interference suspects (§3.3.2), with *current*
  //   (recomputed) MRC parameters.
  // `others`: the remaining classes on the engine, with stable
  //   parameters.
  QuotaPlan Plan(uint64_t pool_pages,
                 const std::vector<ClassMemoryProfile>& problem,
                 const std::vector<ClassMemoryProfile>& others) const;

  // Two-level variant for engines backed by a second-tier cache:
  // allocates each problem class a (dram, tier2) quota pair by greedy
  // marginal *rate* against the blended latency model — each round the
  // budget extension (of any granule multiple) with the largest
  // predicted latency saving per page wins, so a cliff-shaped curve
  // (cyclic scan under LRU: flat until the whole loop fits) is jumped
  // in one step instead of starving the class. A class is kept (demoted, not
  // rescheduled) when its blended latency is no worse than what its
  // acceptable DRAM-only allocation would deliver; classes the two
  // tiers together cannot satisfy still land in `reschedule`. Problem
  // classes without a curve fall back to the DRAM-only acceptable-fit
  // rule against whatever DRAM the greedy pass left.
  QuotaPlan PlanTiered(uint64_t pool_pages, uint64_t tier2_pages,
                       const std::vector<ClassMemoryProfile>& problem,
                       const std::vector<ClassMemoryProfile>& others,
                       const TierCostModel& cost) const;

  // The destination fit test used when rescheduling: does `incoming`
  // fit on an engine with `pool_pages` already hosting `existing`, with
  // everyone at their acceptable memory?
  static bool FitsOn(uint64_t pool_pages, const ClassMemoryProfile& incoming,
                     const std::vector<ClassMemoryProfile>& existing);

  uint64_t min_quota_pages() const { return min_quota_pages_; }

  // Records each Plan() / PlanTiered() call's wall-clock into
  // "controller.plan.quota_us" / "controller.plan.tiered_us". Null
  // unbinds.
  void BindMetrics(MetricsRegistry* registry) {
    plan_us_ = registry != nullptr
                   ? registry->histogram("controller.plan.quota_us")
                   : nullptr;
    tiered_us_ = registry != nullptr
                     ? registry->histogram("controller.plan.tiered_us")
                     : nullptr;
  }

 private:
  uint64_t min_quota_pages_;
  LatencyHistogram* plan_us_ = nullptr;
  LatencyHistogram* tiered_us_ = nullptr;
};

}  // namespace fglb

#endif  // FGLB_CORE_QUOTA_PLANNER_H_
