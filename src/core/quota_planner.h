#ifndef FGLB_CORE_QUOTA_PLANNER_H_
#define FGLB_CORE_QUOTA_PLANNER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/metrics_registry.h"
#include "mrc/miss_ratio_curve.h"
#include "workload/query_class.h"

namespace fglb {

// MRC-derived memory profile of one query class on one engine.
struct ClassMemoryProfile {
  ClassKey key = 0;
  MrcParameters params;
  // LRU-vs-Belady miss-ratio gap at the class's current quota
  // (MrcConfig::opt_regret only; negative = not computed). Near zero
  // means more memory genuinely helps; large means the workload is
  // replacement-hostile and a quota bump would be wasted.
  double regret_vs_opt = -1;
};

// The outcome of the paper's §3.3.2 heuristic for one engine.
struct QuotaPlan {
  // The current placement already meets everyone's *total* memory need;
  // nothing to do.
  bool placement_fits = false;
  // Quotas to enforce (problem classes only); empty if placement_fits
  // or the plan is to migrate instead.
  std::map<ClassKey, uint64_t> quotas;
  // Problem classes that cannot be kept under any acceptable quota and
  // should be rescheduled on a different replica.
  std::vector<ClassKey> reschedule;
  // Nothing worked: fall back to coarse-grained allocation.
  bool infeasible = false;

  std::string ToString() const;
};

// Implements the iterative fit test: can each problem class be given a
// fixed buffer-pool quota such that it and the rest of the classes on
// the server are all predicted (by their MRCs) to meet their acceptable
// miss ratios? If not, problem classes are marked for rescheduling,
// largest acceptable need first.
class QuotaPlanner {
 public:
  // Quotas are floored here: a class with a flat MRC (pure scan) has
  // acceptable memory ~0, but it still needs room for read-ahead
  // extents in flight.
  explicit QuotaPlanner(uint64_t min_quota_pages = 256)
      : min_quota_pages_(min_quota_pages) {}

  // `pool_pages`: the engine's buffer-pool capacity.
  // `problem`: memory-interference suspects (§3.3.2), with *current*
  //   (recomputed) MRC parameters.
  // `others`: the remaining classes on the engine, with stable
  //   parameters.
  QuotaPlan Plan(uint64_t pool_pages,
                 const std::vector<ClassMemoryProfile>& problem,
                 const std::vector<ClassMemoryProfile>& others) const;

  // The destination fit test used when rescheduling: does `incoming`
  // fit on an engine with `pool_pages` already hosting `existing`, with
  // everyone at their acceptable memory?
  static bool FitsOn(uint64_t pool_pages, const ClassMemoryProfile& incoming,
                     const std::vector<ClassMemoryProfile>& existing);

  uint64_t min_quota_pages() const { return min_quota_pages_; }

  // Records each Plan() call's wall-clock into
  // "controller.plan.quota_us". Null unbinds.
  void BindMetrics(MetricsRegistry* registry) {
    plan_us_ = registry != nullptr
                   ? registry->histogram("controller.plan.quota_us")
                   : nullptr;
  }

 private:
  uint64_t min_quota_pages_;
  LatencyHistogram* plan_us_ = nullptr;
};

}  // namespace fglb

#endif  // FGLB_CORE_QUOTA_PLANNER_H_
