#include "core/placement_optimizer.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace fglb {

namespace {

struct ServerFill {
  uint64_t pages = 0;
  double cpu = 0;
  double io = 0;
};

// Largest normalized footprint across the three dimensions.
double DominantFraction(const ClassLoad& load,
                        const PlacementConfig& config) {
  const double mem = config.server_pool_pages > 0
                         ? static_cast<double>(load.acceptable_pages) /
                               static_cast<double>(config.server_pool_pages)
                         : 0.0;
  const double cpu =
      config.cpu_capacity > 0 ? load.cpu_rate / config.cpu_capacity : 0.0;
  const double io =
      config.io_capacity > 0 ? load.io_rate / config.io_capacity : 0.0;
  return std::max(mem, std::max(cpu, io));
}

bool Fits(const ServerFill& fill, const ClassLoad& load,
          const PlacementConfig& config) {
  if (static_cast<double>(fill.pages + load.acceptable_pages) >
      config.memory_fill * static_cast<double>(config.server_pool_pages)) {
    return false;
  }
  const double limit = config.target_fill;
  if (fill.cpu + load.cpu_rate > limit * config.cpu_capacity) return false;
  if (fill.io + load.io_rate > limit * config.io_capacity) return false;
  return true;
}

}  // namespace

int PlacementPlan::ServerOf(ClassKey key) const {
  for (size_t i = 0; i < servers.size(); ++i) {
    for (ClassKey k : servers[i]) {
      if (k == key) return static_cast<int>(i);
    }
  }
  return -1;
}

std::string PlacementPlan::ToString() const {
  std::string out = feasible ? "feasible" : "INFEASIBLE";
  char buf[64];
  for (size_t i = 0; i < servers.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "\n  server %zu:", i);
    out += buf;
    for (ClassKey key : servers[i]) {
      std::snprintf(buf, sizeof(buf), " app%u/c%u", AppOf(key),
                    ClassOf(key));
      out += buf;
    }
  }
  return out;
}

PlacementPlan ComputePlacement(const std::vector<ClassLoad>& classes,
                               const PlacementConfig& config,
                               MetricsRegistry* metrics) {
  const auto start = std::chrono::steady_clock::now();
  PlacementPlan plan;
  plan.feasible = true;

  // First-fit decreasing over the dominant dimension.
  std::vector<ClassLoad> ordered = classes;
  std::sort(ordered.begin(), ordered.end(),
            [&config](const ClassLoad& a, const ClassLoad& b) {
              return DominantFraction(a, config) >
                     DominantFraction(b, config);
            });

  std::vector<ServerFill> fills;
  for (const ClassLoad& load : ordered) {
    // A class that cannot fit even an empty server makes the whole
    // plan infeasible (it would need intra-class partitioning, which
    // query-class granularity cannot express).
    if (!Fits(ServerFill{}, load, config)) {
      plan.feasible = false;
      continue;
    }
    bool placed = false;
    for (size_t i = 0; i < fills.size(); ++i) {
      if (Fits(fills[i], load, config)) {
        fills[i].pages += load.acceptable_pages;
        fills[i].cpu += load.cpu_rate;
        fills[i].io += load.io_rate;
        plan.servers[i].push_back(load.key);
        placed = true;
        break;
      }
    }
    if (!placed) {
      if (static_cast<int>(fills.size()) >= config.max_servers) {
        plan.feasible = false;
        continue;
      }
      ServerFill fill;
      fill.pages = load.acceptable_pages;
      fill.cpu = load.cpu_rate;
      fill.io = load.io_rate;
      fills.push_back(fill);
      plan.servers.push_back({load.key});
    }
  }
  if (metrics != nullptr) {
    metrics->histogram("controller.plan.placement_us")
        ->Record(std::chrono::duration<double, std::micro>(
                     std::chrono::steady_clock::now() - start)
                     .count());
  }
  return plan;
}

}  // namespace fglb
