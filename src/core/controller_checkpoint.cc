#include "core/controller_checkpoint.h"

#include <cstring>

#include "cluster/admission.h"
#include "cluster/stats_channel.h"
#include "common/varint.h"
#include "core/selective_retuner.h"

namespace fglb {

namespace {

constexpr size_t kMagicLen = sizeof(ControllerCheckpoint::kMagic) - 1;

void PutSection(std::string* out, uint64_t tag, const std::string& payload) {
  PutVarint64(out, tag);
  PutVarint64(out, payload.size());
  out->append(payload);
}

}  // namespace

constexpr char ControllerCheckpoint::kMagic[];

void ControllerCheckpoint::Build(SimTime now, const SelectiveRetuner& retuner,
                                 const StatsChannel* channel,
                                 const AdmissionController* admission,
                                 std::string* out) {
  out->clear();
  out->append(kMagic, kMagicLen);
  std::string payload;
  PutFixed64(&payload, DoubleToBits(now));
  PutSection(out, kMeta, payload);
  payload.clear();
  retuner.SerializeControlState(&payload);
  PutSection(out, kRetuner, payload);
  if (channel != nullptr) {
    payload.clear();
    channel->SerializeReceiverState(&payload);
    PutSection(out, kStatsChannel, payload);
  }
  if (admission != nullptr) {
    payload.clear();
    admission->SerializeState(&payload);
    PutSection(out, kAdmission, payload);
  }
  PutFixed32(out, Crc32(out->data(), out->size()));
}

ControllerCheckpoint::RestoreResult ControllerCheckpoint::Restore(
    const std::string& blob, SelectiveRetuner* retuner, StatsChannel* channel,
    AdmissionController* admission) {
  RestoreResult result;
  if (blob.size() < kMagicLen + 4 ||
      std::memcmp(blob.data(), kMagic, kMagicLen) != 0) {
    result.error = "bad magic";
    return result;
  }
  const uint8_t* base = reinterpret_cast<const uint8_t*>(blob.data());
  const uint8_t* crc_at = base + blob.size() - 4;
  uint32_t stored_crc = 0;
  GetFixed32(crc_at, base + blob.size(), &stored_crc);
  if (Crc32(blob.data(), blob.size() - 4) != stored_crc) {
    result.error = "crc mismatch";
    return result;
  }

  // The blob is structurally sound: wipe the control plane, then walk
  // the sections. Any decode failure past this point leaves everything
  // reset (cold start) rather than half-restored.
  auto reset_all = [&] {
    if (retuner != nullptr) retuner->ResetControlState();
    if (channel != nullptr) channel->ResetReceiverState();
    if (admission != nullptr) admission->ResetState();
  };
  reset_all();

  const uint8_t* p = base + kMagicLen;
  bool saw_meta = false;
  while (p < crc_at) {
    uint64_t tag = 0, len = 0;
    size_t n = GetVarint64(p, crc_at, &tag);
    if (n == 0) {
      reset_all();
      result.error = "truncated section tag";
      return result;
    }
    p += n;
    n = GetVarint64(p, crc_at, &len);
    if (n == 0 || len > static_cast<uint64_t>(crc_at - p - n)) {
      reset_all();
      result.error = "truncated section";
      return result;
    }
    p += n;
    const uint8_t* payload = p;
    const uint8_t* payload_end = p + len;
    p = payload_end;
    switch (tag) {
      case kMeta: {
        uint64_t bits = 0;
        if (len != 8 || !GetFixed64(payload, payload_end, &bits)) {
          reset_all();
          result.error = "bad meta section";
          return result;
        }
        result.taken_at = BitsToDouble(bits);
        saw_meta = true;
        break;
      }
      case kRetuner:
        if (retuner != nullptr &&
            !retuner->RestoreControlState(payload, payload_end)) {
          reset_all();
          result.error = "bad retuner section";
          return result;
        }
        break;
      case kStatsChannel:
        if (channel != nullptr &&
            !channel->RestoreReceiverState(payload, payload_end)) {
          reset_all();
          result.error = "bad stats_channel section";
          return result;
        }
        break;
      case kAdmission:
        if (admission != nullptr &&
            !admission->RestoreState(payload, payload_end)) {
          reset_all();
          result.error = "bad admission section";
          return result;
        }
        break;
      default:
        // A tag from a newer controller: skip it. The CRC already
        // vouched for the bytes; nothing here knows how to use them.
        break;
    }
  }
  if (!saw_meta) {
    reset_all();
    result.error = "missing meta section";
    return result;
  }
  result.ok = true;
  return result;
}

}  // namespace fglb
