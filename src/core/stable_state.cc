#include "core/stable_state.h"

namespace fglb {

void StableStateStore::Update(ClassKey key, const MetricVector& averages,
                              SimTime now) {
  StableStateSignature& sig = signatures_[key];
  sig.averages = averages;
  sig.recorded_at = now;
  ++sig.intervals_observed;
}

const StableStateSignature* StableStateStore::Find(ClassKey key) const {
  auto it = signatures_.find(key);
  return it != signatures_.end() ? &it->second : nullptr;
}

std::vector<ClassKey> StableStateStore::Keys() const {
  std::vector<ClassKey> keys;
  keys.reserve(signatures_.size());
  for (const auto& [key, sig] : signatures_) keys.push_back(key);
  return keys;
}

}  // namespace fglb
