#include "core/stable_state.h"

#include <cmath>

namespace fglb {

void StableStateStore::Update(ClassKey key, const MetricVector& averages,
                              SimTime now) {
  // A signature poisoned by NaN/inf (degraded stats feed, division by a
  // zero interval) would make every later current/stable ratio garbage;
  // keep the previous good signature instead.
  for (double v : averages) {
    if (!std::isfinite(v)) return;
  }
  StableStateSignature& sig = signatures_[key];
  sig.averages = averages;
  sig.recorded_at = now;
  ++sig.intervals_observed;
}

const StableStateSignature* StableStateStore::Find(ClassKey key) const {
  auto it = signatures_.find(key);
  return it != signatures_.end() ? &it->second : nullptr;
}

std::vector<ClassKey> StableStateStore::Keys() const {
  std::vector<ClassKey> keys;
  keys.reserve(signatures_.size());
  for (const auto& [key, sig] : signatures_) keys.push_back(key);
  return keys;
}

}  // namespace fglb
