#ifndef FGLB_CORE_PLACEMENT_OPTIMIZER_H_
#define FGLB_CORE_PLACEMENT_OPTIMIZER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/metrics_registry.h"
#include "core/quota_planner.h"
#include "workload/query_class.h"

namespace fglb {

// Global placement computation. The paper's §3.2 deliberately avoids
// "precise analysis of detailed metrics and placement reshuffling of
// many queries for near-optimal resource usage" at runtime, noting that
// "such algorithms would be more appropriate at initial application
// deployment or as periodic system maintenance". This module is that
// algorithm: given every query class's memory profile and resource
// rates, compute from scratch a class-to-server assignment that fits
// everyone within their acceptable miss ratios while using as few
// servers as possible.
//
// The incremental controller (SelectiveRetuner) and this optimizer are
// complementary; bench_ablation_global_vs_incremental compares the
// placements they arrive at.

// One query class's global footprint.
struct ClassLoad {
  ClassKey key = 0;
  // Memory: acceptable working set (pages).
  uint64_t acceptable_pages = 0;
  // Resource rates, in busy-seconds per second of the bottleneck
  // resources (i.e. fractional utilization contributed).
  double cpu_rate = 0;
  double io_rate = 0;
};

struct PlacementConfig {
  // Per-server envelopes.
  uint64_t server_pool_pages = 8192;
  double cpu_capacity = 4.0;  // core-seconds per second
  double io_capacity = 1.0;   // channel-seconds per second
  // Headroom: fill cpu/io only to this fraction.
  double target_fill = 0.7;
  // Memory can be packed tighter than the service-rate dimensions
  // (queueing blows up near full utilization; a nearly-full pool just
  // has a slightly higher miss ratio).
  double memory_fill = 0.95;
  // Upper bound on servers the optimizer may open.
  int max_servers = 64;
};

struct PlacementPlan {
  // server index -> classes placed there.
  std::vector<std::vector<ClassKey>> servers;
  bool feasible = false;
  int servers_used() const { return static_cast<int>(servers.size()); }

  // Which server a class landed on (-1 if the plan is infeasible for
  // that class).
  int ServerOf(ClassKey key) const;

  std::string ToString() const;
};

// First-fit-decreasing over the dominant dimension: classes sorted by
// their largest normalized footprint (memory vs cpu vs io), each placed
// on the first open server with room on every dimension; a new server
// opens when none fits. Replication costs of write-all updates are the
// caller's concern (the paper's scheduler ships writes everywhere
// regardless of placement).
// `metrics` (optional) records the computation's wall-clock into
// "controller.plan.placement_us".
PlacementPlan ComputePlacement(const std::vector<ClassLoad>& classes,
                               const PlacementConfig& config,
                               MetricsRegistry* metrics = nullptr);

}  // namespace fglb

#endif  // FGLB_CORE_PLACEMENT_OPTIMIZER_H_
