#ifndef FGLB_CORE_IO_INTERFERENCE_H_
#define FGLB_CORE_IO_INTERFERENCE_H_

#include <map>
#include <vector>

#include "workload/query_class.h"

namespace fglb {

// The paper's §3.3.3 heuristic for I/O interference on a server:
// "remove query contexts from the physical server where I/O
// interference occurs in decreasing order of their I/O rate until the
// perceived problem on that server is normalized."
//
// `io_rate_by_class`: per-class I/O demand on the server over the last
// interval, in I/O-busy seconds per second (so the values sum to the
// channel utilization contributed by queries).
// `current_utilization`: the channel's measured utilization.
// `target_utilization`: where we want it after evictions.
//
// Returns the classes to reschedule elsewhere, heaviest first. Empty if
// the target is already met.
std::vector<ClassKey> PlanIoEviction(
    const std::map<ClassKey, double>& io_rate_by_class,
    double current_utilization, double target_utilization);

}  // namespace fglb

#endif  // FGLB_CORE_IO_INTERFERENCE_H_
