#include "core/quota_planner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <numeric>

namespace fglb {

namespace {

// Records elapsed wall-clock into a histogram on scope exit (covers the
// early returns in Plan without restructuring them).
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram* hist)
      : hist_(hist), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    if (hist_ == nullptr) return;
    hist_->Record(std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - start_)
                      .count());
  }

 private:
  LatencyHistogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

uint64_t SumTotalNeed(const std::vector<ClassMemoryProfile>& profiles) {
  uint64_t sum = 0;
  for (const auto& p : profiles) sum += p.params.total_memory_pages;
  return sum;
}

uint64_t SumAcceptableNeed(const std::vector<ClassMemoryProfile>& profiles) {
  uint64_t sum = 0;
  for (const auto& p : profiles) sum += p.params.acceptable_memory_pages;
  return sum;
}

}  // namespace

std::string QuotaPlan::ToString() const {
  std::string out;
  if (placement_fits) out += "placement-fits";
  if (infeasible) out += "infeasible";
  char buf[96];
  for (const auto& [key, pages] : quotas) {
    std::snprintf(buf, sizeof(buf), " quota(app=%u,class=%u)=%llu",
                  AppOf(key), ClassOf(key),
                  static_cast<unsigned long long>(pages));
    out += buf;
  }
  for (ClassKey key : reschedule) {
    std::snprintf(buf, sizeof(buf), " reschedule(app=%u,class=%u)",
                  AppOf(key), ClassOf(key));
    out += buf;
  }
  return out;
}

QuotaPlan QuotaPlanner::Plan(
    uint64_t pool_pages, const std::vector<ClassMemoryProfile>& problem,
    const std::vector<ClassMemoryProfile>& others) const {
  const ScopedTimer timer(plan_us_);
  QuotaPlan plan;

  // Step 1: does the current placement meet the *total* memory need of
  // all contexts? Then no action is required here.
  const uint64_t total_need = SumTotalNeed(problem) + SumTotalNeed(others);
  if (total_need <= pool_pages) {
    plan.placement_fits = true;
    return plan;
  }

  // Step 2: try to keep every problem class under a fixed quota equal
  // to its acceptable memory, leaving the rest of the pool to the
  // other classes; everyone must still be predicted to reach their
  // acceptable miss ratio.
  std::vector<ClassMemoryProfile> kept = problem;
  // Reschedule candidates leave largest-need first.
  std::sort(kept.begin(), kept.end(),
            [](const ClassMemoryProfile& a, const ClassMemoryProfile& b) {
              return a.params.acceptable_memory_pages <
                     b.params.acceptable_memory_pages;
            });
  const uint64_t others_acceptable = SumAcceptableNeed(others);
  while (!kept.empty()) {
    const uint64_t kept_acceptable = SumAcceptableNeed(kept);
    if (kept_acceptable + others_acceptable <= pool_pages) break;
    // The largest problem class cannot be accommodated: mark it for
    // rescheduling on another replica and retry with the rest.
    plan.reschedule.push_back(kept.back().key);
    kept.pop_back();
  }
  if (kept.empty() && others_acceptable > pool_pages) {
    // Even with every problem class gone the rest cannot reach their
    // acceptable ratios: fine-grained retuning cannot fix this engine.
    plan.infeasible = true;
    return plan;
  }
  for (const auto& p : kept) {
    plan.quotas[p.key] =
        std::max(p.params.acceptable_memory_pages, min_quota_pages_);
  }
  return plan;
}

bool QuotaPlanner::FitsOn(uint64_t pool_pages,
                          const ClassMemoryProfile& incoming,
                          const std::vector<ClassMemoryProfile>& existing) {
  return SumAcceptableNeed(existing) +
             incoming.params.acceptable_memory_pages <=
         pool_pages;
}

}  // namespace fglb
