#include "core/quota_planner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <numeric>

namespace fglb {

namespace {

// Records elapsed wall-clock into a histogram on scope exit (covers the
// early returns in Plan without restructuring them).
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram* hist)
      : hist_(hist), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    if (hist_ == nullptr) return;
    hist_->Record(std::chrono::duration<double, std::micro>(
                      std::chrono::steady_clock::now() - start_)
                      .count());
  }

 private:
  LatencyHistogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

uint64_t SumTotalNeed(const std::vector<ClassMemoryProfile>& profiles) {
  uint64_t sum = 0;
  for (const auto& p : profiles) sum += p.params.total_memory_pages;
  return sum;
}

uint64_t SumAcceptableNeed(const std::vector<ClassMemoryProfile>& profiles) {
  uint64_t sum = 0;
  for (const auto& p : profiles) sum += p.params.acceptable_memory_pages;
  return sum;
}

}  // namespace

std::string QuotaPlan::ToString() const {
  std::string out;
  if (placement_fits) out += "placement-fits";
  if (infeasible) out += "infeasible";
  char buf[96];
  for (const auto& [key, pages] : quotas) {
    std::snprintf(buf, sizeof(buf), " quota(app=%u,class=%u)=%llu",
                  AppOf(key), ClassOf(key),
                  static_cast<unsigned long long>(pages));
    out += buf;
  }
  for (const auto& [key, pages] : tier2_quotas) {
    std::snprintf(buf, sizeof(buf), " tier2(app=%u,class=%u)=%llu",
                  AppOf(key), ClassOf(key),
                  static_cast<unsigned long long>(pages));
    out += buf;
  }
  for (ClassKey key : reschedule) {
    std::snprintf(buf, sizeof(buf), " reschedule(app=%u,class=%u)",
                  AppOf(key), ClassOf(key));
    out += buf;
  }
  return out;
}

QuotaPlan QuotaPlanner::Plan(
    uint64_t pool_pages, const std::vector<ClassMemoryProfile>& problem,
    const std::vector<ClassMemoryProfile>& others) const {
  const ScopedTimer timer(plan_us_);
  QuotaPlan plan;

  // Step 1: does the current placement meet the *total* memory need of
  // all contexts? Then no action is required here.
  const uint64_t total_need = SumTotalNeed(problem) + SumTotalNeed(others);
  if (total_need <= pool_pages) {
    plan.placement_fits = true;
    return plan;
  }

  // Step 2: try to keep every problem class under a fixed quota equal
  // to its acceptable memory, leaving the rest of the pool to the
  // other classes; everyone must still be predicted to reach their
  // acceptable miss ratio.
  std::vector<ClassMemoryProfile> kept = problem;
  // Reschedule candidates leave largest-need first.
  std::sort(kept.begin(), kept.end(),
            [](const ClassMemoryProfile& a, const ClassMemoryProfile& b) {
              return a.params.acceptable_memory_pages <
                     b.params.acceptable_memory_pages;
            });
  const uint64_t others_acceptable = SumAcceptableNeed(others);
  while (!kept.empty()) {
    const uint64_t kept_acceptable = SumAcceptableNeed(kept);
    if (kept_acceptable + others_acceptable <= pool_pages) break;
    // The largest problem class cannot be accommodated: mark it for
    // rescheduling on another replica and retry with the rest.
    plan.reschedule.push_back(kept.back().key);
    kept.pop_back();
  }
  if (kept.empty() && others_acceptable > pool_pages) {
    // Even with every problem class gone the rest cannot reach their
    // acceptable ratios: fine-grained retuning cannot fix this engine.
    plan.infeasible = true;
    return plan;
  }
  for (const auto& p : kept) {
    plan.quotas[p.key] =
        std::max(p.params.acceptable_memory_pages, min_quota_pages_);
  }
  return plan;
}

namespace {

// Granularity of the greedy two-level allocation. Fine enough that the
// boundary lands near the curve's knees, coarse enough that a plan is
// a few hundred iterations at worst.
constexpr uint64_t kTierGranulePages = 64;

// Expected per-access latency (us) of a class whose curve is split at
// (dram, dram + tier2).
double BlendedLatencyUs(const MissRatioCurve& curve, uint64_t dram,
                        uint64_t tier2, const TierCostModel& cost) {
  const double miss = curve.MissRatioAt(dram + tier2);
  const double t2 = curve.Tier2HitRatioAt(dram, tier2);
  const double mem = 1.0 - miss - t2;
  return mem * cost.t_mem_us + t2 * cost.t_ssd_us + miss * cost.t_disk_us;
}

}  // namespace

QuotaPlan QuotaPlanner::PlanTiered(
    uint64_t pool_pages, uint64_t tier2_pages,
    const std::vector<ClassMemoryProfile>& problem,
    const std::vector<ClassMemoryProfile>& others,
    const TierCostModel& cost) const {
  const ScopedTimer timer(tiered_us_);
  QuotaPlan plan;

  // Step 1, unchanged from Plan: if DRAM alone meets everyone's total
  // need there is nothing to fix.
  const uint64_t total_need = SumTotalNeed(problem) + SumTotalNeed(others);
  if (total_need <= pool_pages) {
    plan.placement_fits = true;
    return plan;
  }

  const uint64_t others_acceptable = SumAcceptableNeed(others);
  uint64_t dram_left =
      pool_pages > others_acceptable ? pool_pages - others_acceptable : 0;
  uint64_t tier2_left = tier2_pages;

  // Split the suspects into curve-backed classes (planned greedily
  // across both tiers) and legacy profiles without a curve (DRAM-only
  // acceptable-fit, as in Plan).
  struct Alloc {
    const ClassMemoryProfile* profile;
    uint64_t dram = 0;
    uint64_t tier2 = 0;
  };
  std::vector<Alloc> allocs;
  std::vector<ClassMemoryProfile> legacy;
  for (const auto& p : problem) {
    if (p.curve != nullptr && !p.curve->empty()) {
      allocs.push_back(Alloc{&p});
    } else {
      legacy.push_back(p);
    }
  }
  std::sort(allocs.begin(), allocs.end(), [](const Alloc& a, const Alloc& b) {
    return a.profile->key < b.profile->key;
  });

  // Seed every curve class with the floor quota; a class the floor
  // cannot even be found for is rescheduled outright.
  for (auto it = allocs.begin(); it != allocs.end();) {
    if (dram_left >= min_quota_pages_) {
      it->dram = min_quota_pages_;
      dram_left -= min_quota_pages_;
      ++it;
    } else {
      plan.reschedule.push_back(it->profile->key);
      it = allocs.erase(it);
    }
  }

  // Greedy by best marginal *rate*: each round every class proposes
  // extending its DRAM or tier-2 allocation by any granule multiple
  // the budgets allow, scored by expected latency saving per page, and
  // the single best proposal wins. Growing DRAM by e upgrades hits in
  // (d1, d1+e] from SSD to memory speed *and* pulls (d1+d2, d1+d2+e]
  // in from disk; growing tier-2 only does the latter. A fixed
  // one-granule step would starve cliff-shaped LRU curves — a cyclic
  // scan's curve is flat until the whole loop fits, so every small
  // step shows zero marginal gain — whereas scanning extensions lets
  // the plan jump a cliff whenever a budget can clear it. On smooth
  // curves the smallest extension has the best (equal) rate, so the
  // strict > keeps the classic granule-at-a-time behaviour there. Ties
  // break toward DRAM, then the lowest class key (the scan order).
  for (;;) {
    double best_rate = 0;
    Alloc* best = nullptr;
    bool best_is_dram = false;
    uint64_t best_pages = 0;
    for (Alloc& a : allocs) {
      const MissRatioCurve& curve = *a.profile->curve;
      const double accesses = static_cast<double>(curve.total_accesses());
      for (uint64_t e = kTierGranulePages; e <= dram_left;
           e += kTierGranulePages) {
        const double upgraded =
            curve.MissRatioAt(a.dram) - curve.MissRatioAt(a.dram + e);
        const double pulled_in =
            curve.MissRatioAt(a.dram + a.tier2) -
            curve.MissRatioAt(a.dram + a.tier2 + e);
        const double gain =
            accesses * (upgraded * (cost.t_ssd_us - cost.t_mem_us) +
                        pulled_in * (cost.t_disk_us - cost.t_ssd_us));
        const double rate = gain / static_cast<double>(e);
        if (rate > best_rate) {
          best_rate = rate;
          best = &a;
          best_is_dram = true;
          best_pages = e;
        }
      }
      for (uint64_t e = kTierGranulePages; e <= tier2_left;
           e += kTierGranulePages) {
        const double pulled_in =
            curve.MissRatioAt(a.dram + a.tier2) -
            curve.MissRatioAt(a.dram + a.tier2 + e);
        const double gain =
            accesses * pulled_in * (cost.t_disk_us - cost.t_ssd_us);
        const double rate = gain / static_cast<double>(e);
        if (rate > best_rate) {
          best_rate = rate;
          best = &a;
          best_is_dram = false;
          best_pages = e;
        }
      }
    }
    if (best == nullptr) break;
    if (best_is_dram) {
      best->dram += best_pages;
      dram_left -= best_pages;
    } else {
      best->tier2 += best_pages;
      tier2_left -= best_pages;
    }
  }

  // Keep a class when the two-tier split serves it at least as well as
  // its acceptable DRAM-only allocation would; otherwise reschedule
  // (its pages return to the budgets for the legacy pass below).
  for (const Alloc& a : allocs) {
    const MissRatioCurve& curve = *a.profile->curve;
    const double acceptable_miss = a.profile->params.acceptable_miss_ratio;
    const double target_us = (1.0 - acceptable_miss) * cost.t_mem_us +
                             acceptable_miss * cost.t_disk_us;
    const double blended_us =
        BlendedLatencyUs(curve, a.dram, a.tier2, cost);
    if (blended_us <= target_us + 1e-9) {
      plan.quotas[a.profile->key] = std::max(a.dram, min_quota_pages_);
      if (a.tier2 > 0) plan.tier2_quotas[a.profile->key] = a.tier2;
    } else {
      plan.reschedule.push_back(a.profile->key);
      dram_left += a.dram;
      tier2_left += a.tier2;
    }
  }

  // Legacy profiles without curves: the DRAM-only acceptable-fit rule
  // against whatever DRAM the greedy pass left over.
  std::sort(legacy.begin(), legacy.end(),
            [](const ClassMemoryProfile& a, const ClassMemoryProfile& b) {
              return a.params.acceptable_memory_pages <
                     b.params.acceptable_memory_pages;
            });
  while (!legacy.empty() && SumAcceptableNeed(legacy) > dram_left) {
    plan.reschedule.push_back(legacy.back().key);
    legacy.pop_back();
  }
  for (const auto& p : legacy) {
    plan.quotas[p.key] =
        std::max(p.params.acceptable_memory_pages, min_quota_pages_);
  }

  if (plan.quotas.empty() && others_acceptable > pool_pages) {
    plan.infeasible = true;
    plan.reschedule.clear();
    plan.tier2_quotas.clear();
  }
  return plan;
}

bool QuotaPlanner::FitsOn(uint64_t pool_pages,
                          const ClassMemoryProfile& incoming,
                          const std::vector<ClassMemoryProfile>& existing) {
  return SumAcceptableNeed(existing) +
             incoming.params.acceptable_memory_pages <=
         pool_pages;
}

}  // namespace fglb
