// Consolidation walk-through: the paper's §5.4 story, narrated.
//
// TPC-W runs alone inside one database engine and meets its SLA. Then
// RUBiS is consolidated into the *same* engine (shared buffer pool).
// TPC-W's latency explodes. The selective retuner diagnoses the
// violation — outlier contexts, MRC recomputation clearing TPC-W's own
// classes, the newly arrived RUBiS classes computed fresh — and
// re-places exactly the one class that cannot be co-located
// (SearchItemsByRegion) on another machine. TPC-W recovers.
//
//   ./build/examples/consolidation

#include <cstdio>

#include "scenarios/harness.h"
#include "workload/rubis.h"
#include "workload/tpcw.h"

namespace {

using namespace fglb;

void PrintWindow(const ClusterHarness& harness, const char* label, AppId app,
                 SimTime from, SimTime to) {
  const auto s = harness.Summarize(app, from, to);
  std::printf("  %-34s latency %6.3f s   throughput %6.1f q/s   "
              "violations %d/%d intervals\n",
              label, s.avg_latency, s.avg_throughput, s.sla_violations,
              s.intervals);
}

}  // namespace

int main() {
  ClusterHarness harness;
  harness.AddServers(3);

  Scheduler* tpcw = harness.AddApplication(MakeTpcw());
  RubisOptions rubis_options;
  rubis_options.app_id = 2;
  Scheduler* rubis = harness.AddApplication(MakeRubis(rubis_options));

  // One engine, one 128 MB pool, both applications.
  Replica* shared = harness.resources().CreateReplica(
      harness.resources().servers()[0].get(), 8192);
  tpcw->AddReplica(shared);
  rubis->AddReplica(shared);

  harness.AddConstantClients(tpcw, 120, /*seed=*/1001);
  harness.AddClients(rubis,
                     std::make_unique<StepLoad>(
                         std::vector<std::pair<SimTime, double>>{{600, 60}}),
                     /*seed=*/1002);

  std::printf("phase 1: TPC-W alone in the shared engine (0..600 s)\n");
  harness.Start();
  harness.RunFor(600);
  PrintWindow(harness, "TPC-W", tpcw->app().id, 300, 600);

  std::printf("\nphase 2: RUBiS consolidated into the same engine "
              "(600 s...)\n");
  harness.RunFor(1200);
  PrintWindow(harness, "TPC-W right after arrival", tpcw->app().id, 600,
              700);
  PrintWindow(harness, "TPC-W after retuning", tpcw->app().id, 1400, 1800);
  PrintWindow(harness, "RUBiS after retuning", rubis->app().id, 1400, 1800);

  std::printf("\nwhat the controller saw and did:\n");
  for (const auto& d : harness.retuner().diagnoses()) {
    std::printf("  t=%5.0f diagnosis for app %u on replica %d: %zu outlier "
                "metric(s), %zu new class(es), %zu MRC suspect(s), %zu "
                "cleared\n",
                d.time, d.app, d.replica_id, d.outliers.outliers.size(),
                d.outliers.new_classes.size(), d.memory.suspects.size(),
                d.memory.cleared.size());
    for (const auto& s : d.memory.suspects) {
      std::printf("        suspect  app=%u class=%u  %s\n", AppOf(s.key),
                  ClassOf(s.key), s.params.ToString().c_str());
    }
    for (const auto& c : d.memory.cleared) {
      std::printf("        cleared  app=%u class=%u  (MRC unchanged)\n",
                  AppOf(c.key), ClassOf(c.key));
    }
  }
  for (const auto& action : harness.retuner().actions()) {
    std::printf("  t=%5.0f ACTION [%s] %s\n", action.time,
                SelectiveRetuner::ActionKindName(action.kind),
                action.description.c_str());
  }

  std::printf("\nfinal placement:\n");
  for (const auto& server : harness.resources().servers()) {
    const auto replicas = harness.resources().ReplicasOn(server.get());
    if (replicas.empty()) continue;
    std::printf("  %s:\n", server->name().c_str());
    for (Replica* r : replicas) {
      std::printf("    %s (pool %llu pages)\n", r->name().c_str(),
                  static_cast<unsigned long long>(
                      r->engine().pool().capacity()));
    }
  }
  return 0;
}
