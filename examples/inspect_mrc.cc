// Per-query-class MRC inspection: prints, for every TPC-W and RUBiS
// query class, the miss-ratio-curve parameters the log analyzer would
// derive from a recent-access window — total memory needed, acceptable
// memory needed, and the corresponding miss ratios. This is the raw
// material of the paper's memory-interference diagnosis, and the tool
// used to calibrate the synthetic workloads in this repository.
//
//   ./build/examples/inspect_mrc

#include <cstdio>

#include "common/random.h"
#include "mrc/miss_ratio_curve.h"
#include "workload/access_generator.h"
#include "workload/rubis.h"
#include "workload/tpcw.h"

namespace {

using namespace fglb;

void InspectApp(const ApplicationSpec& app, const MrcConfig& config,
                size_t window_accesses) {
  std::printf("\n%s (%zu query classes)\n", app.name.c_str(),
              app.templates.size());
  std::printf("%4s  %-22s  %9s  %9s  %8s  %8s\n", "id", "name", "total_pg",
              "accept_pg", "ideal_mr", "accept_mr");
  uint64_t sum_total = 0, sum_acceptable = 0;
  for (const auto& tmpl : app.templates) {
    // Build a window of roughly `window_accesses` references.
    AccessGenerator gen;
    Rng rng(1000 + tmpl.id);
    std::vector<PageAccess> accesses;
    while (accesses.size() < window_accesses) {
      gen.Generate(tmpl, rng, &accesses);
    }
    std::vector<PageId> trace;
    trace.reserve(accesses.size());
    for (const auto& a : accesses) trace.push_back(a.page);

    const MissRatioCurve curve = MissRatioCurve::FromTrace(trace);
    const MrcParameters params = curve.ComputeParameters(config);
    sum_total += params.total_memory_pages;
    sum_acceptable += params.acceptable_memory_pages;
    std::printf("%4u  %-22s  %9llu  %9llu  %8.3f  %8.3f\n", tmpl.id,
                tmpl.name.c_str(),
                static_cast<unsigned long long>(params.total_memory_pages),
                static_cast<unsigned long long>(
                    params.acceptable_memory_pages),
                params.ideal_miss_ratio, params.acceptable_miss_ratio);
  }
  std::printf("%4s  %-22s  %9llu  %9llu\n", "", "SUM",
              static_cast<unsigned long long>(sum_total),
              static_cast<unsigned long long>(sum_acceptable));
}

}  // namespace

int main() {
  MrcConfig config;
  config.max_server_pages = 8192;
  const size_t kWindow = 30000;

  std::printf("MRC parameters per query class (window = %zu accesses, "
              "server cap = %llu pages, acceptable threshold = %.2f)\n",
              kWindow,
              static_cast<unsigned long long>(config.max_server_pages),
              config.acceptable_threshold);

  InspectApp(MakeTpcw(), config, kWindow);

  TpcwOptions no_index;
  no_index.o_date_index = false;
  ApplicationSpec degraded = MakeTpcw(no_index);
  degraded.name = "TPC-W (O_DATE index dropped)";
  InspectApp(degraded, config, kWindow);

  InspectApp(MakeRubis(), config, kWindow);
  return 0;
}
