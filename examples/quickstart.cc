// Quickstart: host TPC-W on a two-server pool, push a load burst at it,
// and watch the selective retuner keep the SLA by provisioning and
// releasing replicas. Prints the interval time series and the action
// log.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "scenarios/harness.h"
#include "workload/tpcw.h"

int main() {
  using namespace fglb;

  // 1. A cluster: five 4-core servers with 256 MB each, one controller.
  ClusterHarness harness;
  harness.AddServers(5);

  // 2. One hosted application with a 1-second average-latency SLA.
  Scheduler* tpcw = harness.AddApplication(MakeTpcw());

  // 3. An initial replica (128 MB buffer pool = 8192 x 16 KiB pages).
  Replica* first = harness.resources().CreateReplica(
      harness.resources().servers()[0].get(), 8192);
  tpcw->AddReplica(first);

  // 4. Closed-loop clients: 30 browsing shoppers, bursting to 250.
  harness.AddClients(
      tpcw,
      std::make_unique<StepLoad>(std::vector<std::pair<SimTime, double>>{
          {0, 30}, {300, 250}, {700, 30}}),
      /*seed=*/42);

  // 5. Run 20 simulated minutes.
  harness.Start();
  harness.RunFor(1200);

  // 6. Report.
  std::printf(
      "time_s   queries  avg_latency_s  throughput_qps  sla  servers\n");
  for (const auto& sample : harness.retuner().samples()) {
    for (const auto& app : sample.apps) {
      std::printf("%6.0f  %8llu  %13.3f  %14.1f  %3s  %7d\n", sample.time,
                  static_cast<unsigned long long>(app.queries),
                  app.avg_latency, app.throughput, app.sla_met ? "ok" : "VIO",
                  app.servers_used);
    }
  }
  std::printf("\nactions:\n");
  for (const auto& action : harness.retuner().actions()) {
    std::printf("  t=%6.0f  [%s] %s\n", action.time,
                SelectiveRetuner::ActionKindName(action.kind),
                action.description.c_str());
  }
  return 0;
}
