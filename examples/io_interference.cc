// I/O interference walk-through: the paper's §5.5 story, narrated.
//
// Two independent RUBiS instances run in two Xen domains on one
// physical machine. Each domain has its own engine and buffer pool —
// memory is isolated — but both share the dom0 I/O channel. Throughput
// halves. The controller observes: CPU low, MRCs unchanged (no memory
// interference), I/O channel saturated and heavily skewed toward one
// query class — and moves that class (SearchItemsByRegion) to another
// machine, restoring performance.
//
//   ./build/examples/io_interference

#include <cstdio>

#include "scenarios/harness.h"
#include "workload/rubis.h"

int main() {
  using namespace fglb;

  ClusterHarness harness;
  harness.AddServers(2);
  PhysicalServer* machine = harness.resources().servers()[0].get();

  RubisOptions first, second;
  first.app_id = 2;
  first.table_base = 11;
  second.app_id = 3;
  second.table_base = 21;  // separate data, as in the paper
  Scheduler* rubis1 = harness.AddApplication(MakeRubis(first));
  Scheduler* rubis2 = harness.AddApplication(MakeRubis(second));

  Replica* dom1 = harness.resources().CreateReplica(machine, 8192, 51);
  Replica* dom2 = harness.resources().CreateReplica(machine, 8192, 52);
  rubis1->AddReplica(dom1);
  rubis2->AddReplica(dom2);

  harness.AddConstantClients(rubis1, 45, /*seed=*/2101);
  // The second instance arrives later, creating the change.
  harness.AddClients(rubis2,
                     std::make_unique<StepLoad>(
                         std::vector<std::pair<SimTime, double>>{{400, 45}}),
                     /*seed=*/2102);

  harness.Start();
  harness.RunFor(1200);

  auto window = [&](const char* label, AppId app, SimTime from, SimTime to) {
    const auto s = harness.Summarize(app, from, to);
    std::printf("  %-40s latency %6.2f s  throughput %6.1f q/s\n", label,
                s.avg_latency, s.avg_throughput);
  };
  std::printf("RUBiS-1, domain 1 (4-core machine, shared dom0 I/O):\n");
  window("alone (100..400 s)", 2, 100, 400);
  window("with RUBiS-2 in domain 2 (410..500 s)", 2, 410, 500);
  window("after the controller acted (800..1200 s)", 2, 800, 1200);

  std::printf("\nper-server utilization at the height of the contention "
              "(t=450):\n");
  for (const auto& sample : harness.retuner().samples()) {
    if (sample.time != 450) continue;
    for (const auto& sv : sample.servers) {
      std::printf("  server-%d: cpu %4.0f%%  io %4.0f%%\n", sv.server_id,
                  sv.cpu_utilization * 100, sv.io_utilization * 100);
    }
  }

  std::printf("\ncontroller actions:\n");
  for (const auto& action : harness.retuner().actions()) {
    std::printf("  t=%5.0f [%s] %s\n", action.time,
                SelectiveRetuner::ActionKindName(action.kind),
                action.description.c_str());
  }
  return 0;
}
