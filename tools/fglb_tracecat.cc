// fglb_tracecat: inspector for the JSONL decision traces fglb_sim
// writes via --trace-out. Pretty-prints events, filters by phase /
// app / query class, validates trace well-formedness, and summarizes
// per-phase durations and action counts.
//
//   ./build/tools/fglb_tracecat trace.jsonl
//   ./build/tools/fglb_tracecat trace.jsonl --phase=action
//   ./build/tools/fglb_tracecat trace.jsonl --app=2 --phase=mrc
//   ./build/tools/fglb_tracecat trace.jsonl --summary
//   ./build/tools/fglb_tracecat trace.jsonl --check
//   ./build/tools/fglb_tracecat spans.json --spans
//
// `--phase=action` prints the action log in the exact format of the
// simulator's own table output ("t=... [kind] description"), so the
// trace can be diffed against it (demote actions included). `--check`
// exits non-zero on any malformed line or event missing the schema's
// required fields — including a partial or nonsensical tier-field set
// (tier2_pages/tier2_resident/tier2_read_us) on a phase=mrc event.
// `--spans` reads a --spans-out Chrome trace_event file instead of a
// JSONL decision trace and summarizes sampled query spans by segment
// kind; it exits non-zero if the file is not a well-formed trace array.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/trace_check.h"

namespace {

using fglb::JsonValue;

struct TracecatOptions {
  std::string path;
  std::string phase;       // empty = all
  bool has_app = false;
  uint32_t app = 0;
  bool has_class = false;
  uint32_t cls = 0;
  bool summary = false;
  bool check = false;
  bool spans = false;
  bool help = false;
};

// Every phase the cluster emits; --phase names outside this set are
// rejected (a typo would otherwise silently match nothing) and
// --summary prints a row per phase even at zero events.
const char* const kKnownPhases[] = {"sla",    "impact",    "iqr",
                                    "mrc",    "action",    "migration",
                                    "fault",  "admission", "recovery"};

const char kUsage[] =
    R"(fglb_tracecat -- inspector for fglb_sim --trace-out JSONL traces

usage: fglb_tracecat FILE [options]

  --phase=NAME   only events of this phase (sla|impact|iqr|mrc|action|
                 migration|fault|admission|recovery);
                 --phase=action prints the simulator's action-log format
  --app=N        only events of application N
  --class=N      only events mentioning query class N (any app)
  --summary      per-phase event counts, duration percentiles and
                 action-kind counts instead of the events themselves
  --check        validate every line (schema fields, JSON syntax);
                 exit 1 on the first malformed line
  --spans        input is a --spans-out Chrome trace_event file;
                 summarize sampled query spans by segment kind
                 (exit 1 on malformed span JSON)
  --help         this text
)";

bool ParseArgs(int argc, char** argv, TracecatOptions* options,
               std::string* error) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      options->help = true;
      return true;
    }
    if (arg.rfind("--", 0) != 0) {
      if (!options->path.empty()) {
        *error = "more than one input file: " + arg;
        return false;
      }
      options->path = arg;
      continue;
    }
    const size_t eq = arg.find('=');
    const std::string key = arg.substr(2, eq == std::string::npos
                                              ? std::string::npos
                                              : eq - 2);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);
    if (key == "phase") {
      bool known = false;
      for (const char* phase : kKnownPhases) known |= value == phase;
      if (!known) {
        *error = "unknown phase: " + value;
        return false;
      }
      options->phase = value;
    } else if (key == "app") {
      options->has_app = true;
      options->app = static_cast<uint32_t>(std::strtoul(value.c_str(),
                                                        nullptr, 10));
    } else if (key == "class") {
      options->has_class = true;
      options->cls = static_cast<uint32_t>(std::strtoul(value.c_str(),
                                                        nullptr, 10));
    } else if (key == "summary") {
      options->summary = true;
    } else if (key == "check") {
      options->check = true;
    } else if (key == "spans") {
      options->spans = true;
    } else {
      *error = "unknown option " + arg;
      return false;
    }
  }
  if (options->path.empty()) {
    *error = "no input file";
    return false;
  }
  return true;
}

// Does any object in the value tree carry "cls" == cls?
bool MentionsClass(const JsonValue& value, uint32_t cls) {
  if (value.is_object()) {
    const JsonValue* c = value.Find("cls");
    if (c != nullptr && c->kind == JsonValue::Kind::kNumber &&
        static_cast<uint32_t>(c->number) == cls) {
      return true;
    }
    for (const auto& [key, child] : value.object) {
      if (MentionsClass(child, cls)) return true;
    }
  } else if (value.is_array()) {
    for (const JsonValue& child : value.array) {
      if (MentionsClass(child, cls)) return true;
    }
  }
  return false;
}

bool Matches(const JsonValue& event, const TracecatOptions& options) {
  if (!options.phase.empty() &&
      event.StringOr("phase", "") != options.phase) {
    return false;
  }
  if (options.has_app &&
      static_cast<uint32_t>(event.NumberOr("app", -1)) != options.app) {
    return false;
  }
  if (options.has_class && !MentionsClass(event, options.cls)) return false;
  return true;
}

// One line per event: header columns then the remaining payload.
void PrintEvent(const JsonValue& event) {
  std::printf("#%-5.0f t=%8.1f  %-7s", event.NumberOr("seq", -1),
              event.NumberOr("t", 0), event.StringOr("phase", "?").c_str());
  JsonValue rest = event;
  rest.object.erase("v");
  rest.object.erase("seq");
  rest.object.erase("mono_us");
  rest.object.erase("phase");
  rest.object.erase("t");
  std::printf("  %s\n", rest.Dump().c_str());
}

// Parity with scenarios/report.cc FormatActions (shared renderer, so
// the in-process tests compare the same projection).
void PrintActionLine(const JsonValue& event) {
  const std::string line = fglb::FormatActionEventLine(event);
  if (!line.empty()) std::fputs(line.c_str(), stdout);
}

double PercentileOf(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const size_t index = static_cast<size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

struct PhaseStats {
  uint64_t events = 0;
  uint64_t skipped = 0;
  std::vector<double> durations_us;
};

// --spans: summarize a --spans-out Chrome trace_event file. The whole
// file is one JSON array; query slices carry cat "query" and the tiled
// attribution slices underneath them cat "segment" (named by segment
// kind). Anything that fails to parse as that shape exits 1 so CI can
// gate on span-file well-formedness.
int RunSpans(const TracecatOptions& options) {
  std::ifstream in(options.path);
  if (!in) {
    std::fprintf(stderr, "fglb_tracecat: cannot open %s\n",
                 options.path.c_str());
    return 1;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  JsonValue root;
  std::string error;
  if (!JsonValue::Parse(text, &root, &error)) {
    std::fprintf(stderr, "fglb_tracecat: %s: malformed span JSON: %s\n",
                 options.path.c_str(), error.c_str());
    return 1;
  }
  if (!root.is_array()) {
    std::fprintf(stderr,
                 "fglb_tracecat: %s: span file is not a trace_event array\n",
                 options.path.c_str());
    return 1;
  }

  uint64_t queries = 0;
  std::vector<double> end_to_end_us;
  std::map<std::string, std::vector<double>> segments;
  for (const JsonValue& event : root.array) {
    if (!event.is_object()) {
      std::fprintf(stderr,
                   "fglb_tracecat: %s: non-object trace event\n",
                   options.path.c_str());
      return 1;
    }
    if (event.StringOr("ph", "") != "X") continue;
    const std::string cat = event.StringOr("cat", "");
    const double dur_us = event.NumberOr("dur", 0);
    if (cat == "query") {
      ++queries;
      end_to_end_us.push_back(dur_us);
    } else if (cat == "segment") {
      segments[event.StringOr("name", "?")].push_back(dur_us);
    }
  }

  std::printf("%llu sampled query spans\n",
              static_cast<unsigned long long>(queries));
  std::printf("%-12s %8s %12s %12s %12s %12s\n", "segment", "count",
              "total_ms", "p50_us", "p95_us", "p99_us");
  auto print_row = [](const std::string& name,
                      const std::vector<double>& durations) {
    double total_us = 0;
    for (double d : durations) total_us += d;
    std::printf("%-12s %8llu %12.3f %12.1f %12.1f %12.1f\n", name.c_str(),
                static_cast<unsigned long long>(durations.size()),
                total_us / 1000.0, PercentileOf(durations, 0.50),
                PercentileOf(durations, 0.95),
                PercentileOf(durations, 0.99));
  };
  print_row("end_to_end", end_to_end_us);
  for (const auto& [name, durations] : segments) print_row(name, durations);
  return 0;
}

int Run(const TracecatOptions& options) {
  std::ifstream in(options.path);
  if (!in) {
    std::fprintf(stderr, "fglb_tracecat: cannot open %s\n",
                 options.path.c_str());
    return 1;
  }

  std::vector<std::string> lines;
  {
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  if (options.check) {
    // Shared with the in-process trace tests (common/trace_check.h).
    std::string check_error;
    if (!fglb::CheckTraceLines(lines, &check_error)) {
      std::fprintf(stderr, "fglb_tracecat: %s: %s\n", options.path.c_str(),
                   check_error.c_str());
      return 1;
    }
  }

  std::map<std::string, PhaseStats> phases;
  if (options.summary && options.phase.empty()) {
    // Every known phase gets a row, so "0 admission events" is visible
    // rather than indistinguishable from "phase unknown to this tool".
    for (const char* phase : kKnownPhases) phases[phase];
  }
  std::map<std::string, uint64_t> action_kinds;
  std::map<std::string, uint64_t> recovery_whys;
  uint64_t line_number = 0;
  uint64_t matched = 0;
  for (const std::string& line : lines) {
    ++line_number;
    if (line.empty()) continue;
    JsonValue event;
    std::string error;
    if (!JsonValue::Parse(line, &event, &error)) {
      std::fprintf(stderr, "fglb_tracecat: %s:%llu: %s\n",
                   options.path.c_str(),
                   static_cast<unsigned long long>(line_number),
                   error.c_str());
      return 1;
    }
    if (!Matches(event, options)) continue;
    ++matched;

    if (options.summary) {
      const std::string phase = event.StringOr("phase", "?");
      PhaseStats& stats = phases[phase];
      ++stats.events;
      if (event.BoolOr("skipped", false)) ++stats.skipped;
      if (const JsonValue* dur = event.Find("dur_us")) {
        stats.durations_us.push_back(dur->number);
      }
      if (phase == "action") {
        ++action_kinds[event.StringOr("kind", "?")];
      }
      if (phase == "recovery") {
        ++recovery_whys[event.StringOr("why", "?")];
      }
      continue;
    }
    if (options.check) continue;
    if (options.phase == "action") {
      PrintActionLine(event);
    } else {
      PrintEvent(event);
    }
  }

  if (options.check) {
    std::printf("ok: %llu lines, %llu matching events\n",
                static_cast<unsigned long long>(line_number),
                static_cast<unsigned long long>(matched));
    return 0;
  }
  if (options.summary) {
    std::printf("%-8s %8s %8s %12s %12s %12s %12s\n", "phase", "events",
                "skipped", "dur_p50_us", "dur_p95_us", "dur_p99_us",
                "dur_max_us");
    for (const auto& [phase, stats] : phases) {
      const double max_us =
          stats.durations_us.empty()
              ? 0
              : *std::max_element(stats.durations_us.begin(),
                                  stats.durations_us.end());
      std::printf("%-8s %8llu %8llu %12.1f %12.1f %12.1f %12.1f\n",
                  phase.c_str(),
                  static_cast<unsigned long long>(stats.events),
                  static_cast<unsigned long long>(stats.skipped),
                  PercentileOf(stats.durations_us, 0.50),
                  PercentileOf(stats.durations_us, 0.95),
                  PercentileOf(stats.durations_us, 0.99), max_us);
    }
    if (!action_kinds.empty()) {
      std::printf("\nactions by kind:\n");
      for (const auto& [kind, count] : action_kinds) {
        std::printf("  %-18s %8llu\n", kind.c_str(),
                    static_cast<unsigned long long>(count));
      }
    }
    if (!recovery_whys.empty()) {
      // report_lost counts the dropped/late interval reports the
      // controller rode out on last-known-good stats; the others are
      // resyncs and controller restore/cold-start outcomes.
      std::printf("\nrecovery events by why:\n");
      for (const auto& [why, count] : recovery_whys) {
        std::printf("  %-18s %8llu\n", why.c_str(),
                    static_cast<unsigned long long>(count));
      }
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  TracecatOptions options;
  std::string error;
  if (!ParseArgs(argc, argv, &options, &error)) {
    std::fprintf(stderr, "error: %s\n%s", error.c_str(), kUsage);
    return 2;
  }
  if (options.help) {
    std::printf("%s", kUsage);
    return 0;
  }
  if (options.spans) return RunSpans(options);
  return Run(options);
}
