// fglb_replay: offline consumer of workload captures recorded by
// fglb_sim --capture-out. Default mode re-drives the whole cluster
// deterministically from the capture and reports whether the replayed
// controller reproduced the recorded action log; other modes print a
// capture summary, evaluate what-if actions against a violation
// window, or convert the capture to the legacy per-class trace format.
//
//   ./build/tools/fglb_replay run.fglbcap --trace-out=replay.jsonl
//   ./build/tools/fglb_replay run.fglbcap --summary
//   ./build/tools/fglb_replay run.fglbcap --what-if --horizon=60
//   ./build/tools/fglb_replay run.fglbcap --to-legacy-trace=run.trc

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.h"
#include "replay/capture.h"
#include "replay/replayer.h"
#include "replay/what_if.h"
#include "workload/trace.h"

namespace {

using namespace fglb;

struct ReplayCliOptions {
  std::string capture_path;
  std::string trace_out;
  std::string spans_out;
  std::string to_legacy_trace;
  bool summary = false;
  bool what_if = false;
  bool lenient = false;
  int mrc_threads = 1;
  double window_start = -1;
  double horizon_seconds = 60;
  uint64_t quota_pages = 0;
  bool help = false;
};

const char kUsage[] =
    R"(fglb_replay -- deterministic replay & what-if evaluation of captures

usage: fglb_replay CAPTURE [options]

  --trace-out=FILE   write the replayed controller's JSONL decision
                     trace (compare its --phase=action projection with
                     the live run's via fglb_tracecat)
  --spans-out=FILE   write the replayed run's sampled span timelines
                     (Chrome trace_event JSON; requires a capture whose
                     live run had span tracing on — byte-identical to
                     the live --spans-out file)
  --summary          print the capture's metadata and stream counts
  --what-if          replay the first (or requested) violation window
                     against quota / migrate / no-op candidates and
                     rank them against the live controller's choice
  --window-start=SEC what-if window start; -1 = auto-detect   (default -1)
  --horizon=SEC      what-if evaluation horizon               (default 60)
  --quota-pages=N    what-if quota size; 0 = auto             (default 0)
  --to-legacy-trace=FILE  flatten page accesses to the v2 per-class
                     trace format (workload/trace.h)
  --lenient          tolerate replay divergence (engines regenerate
                     accesses when the recorded stream runs dry)
  --mrc-threads=N    controller MRC worker threads            (default 1)
  --help             this text
)";

bool ParseArgs(const std::vector<std::string>& args, ReplayCliOptions* out,
               std::string* error) {
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      out->help = true;
      continue;
    }
    if (arg == "--summary") {
      out->summary = true;
      continue;
    }
    if (arg == "--what-if") {
      out->what_if = true;
      continue;
    }
    if (arg == "--lenient") {
      out->lenient = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      if (!out->capture_path.empty()) {
        *error = "more than one capture file given";
        return false;
      }
      out->capture_path = arg;
      continue;
    }
    std::string key = arg.substr(2);
    std::string value;
    const size_t eq = key.find('=');
    if (eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
    } else {
      if (i + 1 >= args.size()) {
        *error = "missing value for --" + key;
        return false;
      }
      value = args[++i];
    }
    char* end = nullptr;
    bool ok = true;
    if (key == "trace-out") {
      ok = !value.empty();
      out->trace_out = value;
    } else if (key == "spans-out") {
      ok = !value.empty();
      out->spans_out = value;
    } else if (key == "to-legacy-trace") {
      ok = !value.empty();
      out->to_legacy_trace = value;
    } else if (key == "window-start") {
      out->window_start = std::strtod(value.c_str(), &end);
      ok = end != nullptr && *end == '\0' && !value.empty();
    } else if (key == "horizon") {
      out->horizon_seconds = std::strtod(value.c_str(), &end);
      ok = end != nullptr && *end == '\0' && out->horizon_seconds > 0;
    } else if (key == "quota-pages") {
      out->quota_pages = std::strtoull(value.c_str(), &end, 10);
      ok = end != nullptr && *end == '\0' && !value.empty();
    } else if (key == "mrc-threads") {
      out->mrc_threads = static_cast<int>(std::strtol(value.c_str(), &end, 10));
      ok = end != nullptr && *end == '\0' && out->mrc_threads >= 0;
    } else {
      *error = "unknown option --" + key;
      return false;
    }
    if (!ok) {
      *error = "invalid value for --" + key + ": " + value;
      return false;
    }
  }
  if (!out->help && out->capture_path.empty()) {
    *error = "no capture file given";
    return false;
  }
  return true;
}

void PrintSummary(const Capture& capture) {
  const CaptureInfo& info = capture.info;
  std::printf("capture of scenario '%s'\n", info.scenario.c_str());
  std::printf("  duration            %.1f s (interval %.1f s)\n",
              info.duration_seconds, info.interval_seconds);
  std::printf("  seeds               workload=%llu fault=%llu\n",
              static_cast<unsigned long long>(info.seed),
              static_cast<unsigned long long>(info.fault_seed));
  std::printf("  fault spec          %s\n",
              info.fault_spec.empty() ? "(none)" : info.fault_spec.c_str());
  std::printf("  controller          mrc-sample-rate=%g "
              "max-migrations/interval=%d\n",
              info.mrc_sample_rate, info.max_migrations_per_interval);
  if (!info.tier_spec.empty() || !info.replacement_spec.empty()) {
    std::printf("  buffer hierarchy    tier=%s replacement=%s\n",
                info.tier_spec.empty() ? "(none)" : info.tier_spec.c_str(),
                info.replacement_spec.empty() ? "lru"
                                              : info.replacement_spec.c_str());
  }
  std::printf("  topology            %zu servers, %zu apps, %zu replicas\n",
              capture.topology.servers.size(), capture.topology.apps.size(),
              capture.topology.replicas.size());
  for (const ApplicationSpec& app : capture.topology.apps) {
    std::printf("    app %u '%s': %zu classes, SLA %.2f s\n", app.id,
                app.name.c_str(), app.templates.size(),
                app.sla_latency_seconds);
  }
  std::printf("  streams             %zu arrivals, %zu executions, "
              "%zu page accesses\n",
              capture.arrivals.size(), capture.executions.size(),
              capture.accesses.size());
  std::printf("  controller log      %zu actions, %zu interval samples\n",
              capture.actions.size(), capture.samples.size());
  int violations = 0;
  for (const CaptureSample& s : capture.samples) {
    for (const auto& a : s.apps) {
      if (!a.sla_met) ++violations;
    }
  }
  std::printf("  SLA violations      %d app-intervals\n", violations);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  ReplayCliOptions options;
  std::string error;
  if (!ParseArgs(args, &options, &error)) {
    std::fprintf(stderr, "error: %s\n%s", error.c_str(), kUsage);
    return 2;
  }
  if (options.help) {
    std::printf("%s", kUsage);
    return 0;
  }

  Capture capture;
  if (!ReadCapture(options.capture_path, &capture, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }

  if (options.summary) {
    PrintSummary(capture);
    return 0;
  }

  if (!options.to_legacy_trace.empty()) {
    const std::vector<TraceRecord> records = ToLegacyTrace(capture);
    if (!WriteTrace(options.to_legacy_trace, records)) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   options.to_legacy_trace.c_str());
      return 1;
    }
    std::printf("wrote %zu trace records to %s\n", records.size(),
                options.to_legacy_trace.c_str());
    return 0;
  }

  if (options.what_if) {
    WhatIfOptions what_if;
    what_if.window_start = options.window_start;
    what_if.horizon_seconds = options.horizon_seconds;
    what_if.quota_pages = options.quota_pages;
    WhatIfRunner runner(&capture, what_if);
    WhatIfResult result;
    if (!runner.Run(&result, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::printf("%s", result.Format().c_str());
    return 0;
  }

  ReplayBuildOptions build;
  build.lenient = options.lenient;
  build.mrc_threads = options.mrc_threads;
  ReplayRunner runner(&capture, build);
  if (!runner.Build(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  if (!options.trace_out.empty() &&
      !runner.harness()->trace().OpenFile(options.trace_out, &error)) {
    std::fprintf(stderr, "error: cannot open --trace-out: %s\n",
                 error.c_str());
    return 1;
  }
  if (!options.spans_out.empty()) {
    SpanTracer* spans = runner.harness()->span_tracer();
    if (spans == nullptr) {
      // The capture carries no span spec — tracing with an arbitrary
      // sampling rate here could not be byte-compared to anything.
      std::fprintf(stderr,
                   "error: capture has no span spec (live run did not "
                   "enable span tracing); --spans-out unavailable\n");
      return 1;
    }
    if (!spans->OpenFile(options.spans_out, &error)) {
      std::fprintf(stderr, "error: cannot open --spans-out: %s\n",
                   error.c_str());
      return 1;
    }
  }
  if (!runner.Run(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  if (!options.trace_out.empty()) runner.harness()->trace().Close();
  if (runner.harness()->span_tracer() != nullptr) {
    runner.harness()->span_tracer()->Close();
  }

  const SelectiveRetuner& retuner = runner.harness()->retuner();
  std::printf("replayed %llu arrivals; controller: %zu actions over %zu "
              "intervals (live run: %zu actions)\n",
              static_cast<unsigned long long>(runner.arrivals_fed()),
              retuner.actions().size(), retuner.samples().size(),
              capture.actions.size());
  // Cheap in-process cross-check of the action logs (the byte-level
  // check compares trace projections via fglb_tracecat).
  size_t mismatches = 0;
  const size_t n = retuner.actions().size();
  if (n != capture.actions.size()) {
    ++mismatches;
  } else {
    for (size_t i = 0; i < n; ++i) {
      const auto& a = retuner.actions()[i];
      const auto& b = capture.actions[i];
      if (a.time != b.t || static_cast<uint8_t>(a.kind) != b.kind ||
          a.app != b.app || a.description != b.description) {
        ++mismatches;
      }
    }
  }
  if (mismatches == 0) {
    std::printf("action log matches the captured live run exactly\n");
  } else {
    std::printf("action log DIVERGES from the captured live run\n");
    return options.lenient ? 0 : 1;
  }
  return 0;
}
