#!/usr/bin/env bash
# Tier-1 CI: build + full test suite, then rebuild with ThreadSanitizer
# and rerun the concurrency-sensitive tests (the parallel-diagnosis
# pipeline is the only multithreaded code path, so a TSan pass over the
# pipeline/analyzer tests covers it).
#
# Usage: tools/ci.sh [build-dir-prefix]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

PREFIX="${1:-build}"
JOBS="$(nproc)"

echo "=== plain build + full tier-1 suite ==="
cmake -B "${PREFIX}" -S . >/dev/null
cmake --build "${PREFIX}" -j "${JOBS}"
ctest --test-dir "${PREFIX}" --output-on-failure -j "${JOBS}"

echo "=== observability smoke: fglb_sim trace -> fglb_tracecat ==="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "${SMOKE_DIR}"' EXIT
"./${PREFIX}/tools/fglb_sim" --scenario=consolidation --duration=600 \
  --log-level=quiet --trace-out="${SMOKE_DIR}/trace.jsonl" \
  --metrics-out="${SMOKE_DIR}/metrics.json" >/dev/null
# --check exits non-zero on any malformed line, schema violation or
# sequence gap; the other invocations must at least not crash.
"./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/trace.jsonl" --check
"./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/trace.jsonl" \
  --phase=action >/dev/null
"./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/trace.jsonl" --summary
test -s "${SMOKE_DIR}/metrics.json"

echo "=== chaos smoke: deterministic fault injection under trace ==="
# A chaos scenario run end to end: the injected crash/stats/migration
# faults must leave a trace that still passes the schema check, and the
# run itself must survive the churn.
"./${PREFIX}/tools/fglb_sim" --scenario=chaos-replica --duration=600 \
  --fault-seed=7 --log-level=quiet \
  --trace-out="${SMOKE_DIR}/chaos.jsonl" >/dev/null
"./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/chaos.jsonl" --check
"./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/chaos.jsonl" \
  --phase=action >/dev/null
"./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/chaos.jsonl" --summary

echo "=== replay smoke: capture -> deterministic replay -> diff ==="
# Capture a live consolidation run, replay it, and require the replayed
# controller's action trace to match the live one byte for byte (the
# --phase=action projection strips the wall-clock header fields).
"./${PREFIX}/tools/fglb_sim" --scenario=consolidation --duration=600 \
  --log-level=quiet --capture-out="${SMOKE_DIR}/live.fglbcap" \
  --trace-out="${SMOKE_DIR}/live.jsonl" >/dev/null
"./${PREFIX}/tools/fglb_replay" "${SMOKE_DIR}/live.fglbcap" \
  --trace-out="${SMOKE_DIR}/replay.jsonl"
diff <("./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/live.jsonl" \
         --phase=action) \
     <("./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/replay.jsonl" \
         --phase=action)
# Same byte-for-byte contract under an injected fault schedule.
"./${PREFIX}/tools/fglb_sim" --scenario=chaos-replica --duration=420 \
  --fault-seed=7 --log-level=quiet \
  --capture-out="${SMOKE_DIR}/chaos.fglbcap" \
  --trace-out="${SMOKE_DIR}/chaos-live.jsonl" >/dev/null
"./${PREFIX}/tools/fglb_replay" "${SMOKE_DIR}/chaos.fglbcap" \
  --trace-out="${SMOKE_DIR}/chaos-replay.jsonl"
diff <("./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/chaos-live.jsonl" \
         --phase=action) \
     <("./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/chaos-replay.jsonl" \
         --phase=action)
# The other consumers must at least run clean on a real capture.
"./${PREFIX}/tools/fglb_replay" "${SMOKE_DIR}/live.fglbcap" --summary
"./${PREFIX}/tools/fglb_replay" "${SMOKE_DIR}/live.fglbcap" --what-if
"./${PREFIX}/tools/fglb_replay" "${SMOKE_DIR}/live.fglbcap" \
  --to-legacy-trace="${SMOKE_DIR}/live.trc" >/dev/null
test -s "${SMOKE_DIR}/live.trc"

echo "=== overload smoke: admission control + capture/replay ==="
# The overload scenario turns admission on automatically; its trace must
# carry phase=admission events, pass the schema check, and replay byte
# for byte. An unknown --phase name must be rejected, not ignored.
"./${PREFIX}/tools/fglb_sim" --scenario=overload --duration=420 \
  --log-level=quiet --capture-out="${SMOKE_DIR}/overload.fglbcap" \
  --trace-out="${SMOKE_DIR}/overload.jsonl" >/dev/null
"./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/overload.jsonl" --check
test -n "$("./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/overload.jsonl" \
  --phase=admission)"
"./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/overload.jsonl" --summary \
  | grep -q '^admission'
if "./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/overload.jsonl" \
  --phase=bogus 2>/dev/null; then
  echo "fglb_tracecat accepted an unknown --phase name" >&2
  exit 1
fi
"./${PREFIX}/tools/fglb_replay" "${SMOKE_DIR}/overload.fglbcap" \
  --trace-out="${SMOKE_DIR}/overload-replay.jsonl"
diff <("./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/overload.jsonl" \
         --phase=action) \
     <("./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/overload-replay.jsonl" \
         --phase=action)

echo "=== streaming-MRC smoke: always-fresh curves + OPT regret ==="
# A streaming-mode run must emit phase=mrc events tagged
# mode=streaming whose class profiles carry regret_vs_opt, pass the
# schema check, and — because the mrc spec rides in the FGLBCAP1
# header — replay to identical curves and diagnoses. dur_us is wall
# clock, so it is stripped before the mrc-phase diff; the action
# projection must match byte for byte as usual. (consolidation, not
# overload: overload sheds its way past the mrc phase.)
"./${PREFIX}/tools/fglb_sim" --scenario=consolidation --duration=600 \
  --log-level=quiet --mrc-mode=streaming --mrc-opt-regret \
  --capture-out="${SMOKE_DIR}/mrc.fglbcap" \
  --trace-out="${SMOKE_DIR}/mrc.jsonl" >/dev/null
"./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/mrc.jsonl" --check
"./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/mrc.jsonl" --phase=mrc \
  | grep -q '"mode":"streaming"'
"./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/mrc.jsonl" --phase=mrc \
  | grep -q 'regret_vs_opt'
"./${PREFIX}/tools/fglb_replay" "${SMOKE_DIR}/mrc.fglbcap" \
  --trace-out="${SMOKE_DIR}/mrc-replay.jsonl"
diff <("./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/mrc.jsonl" \
         --phase=mrc | sed 's/"dur_us":[0-9.]*,//') \
     <("./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/mrc-replay.jsonl" \
         --phase=mrc | sed 's/"dur_us":[0-9.]*,//')
diff <("./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/mrc.jsonl" \
         --phase=action) \
     <("./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/mrc-replay.jsonl" \
         --phase=action)

echo "=== spans smoke: sampled query timelines + replay byte-identity ==="
# A span-traced overload run (admission + shed paths exercise every
# segment family) must export valid Chrome trace_event JSON that the
# --spans summarizer accepts, and the span spec captured in FGLBCAP1
# must make the replayed run reproduce the span file byte for byte.
"./${PREFIX}/tools/fglb_sim" --scenario=overload --duration=420 \
  --log-level=quiet --span-sample=16 \
  --spans-out="${SMOKE_DIR}/spans.json" \
  --capture-out="${SMOKE_DIR}/spans.fglbcap" >/dev/null
test -s "${SMOKE_DIR}/spans.json"
"./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/spans.json" --spans \
  | grep -q '^end_to_end'
"./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/spans.json" --spans \
  | grep -q 'sampled query spans'
# Malformed span JSON must be rejected with a non-zero exit.
echo '[{"ph":"X"' > "${SMOKE_DIR}/broken-spans.json"
if "./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/broken-spans.json" \
  --spans 2>/dev/null; then
  echo "fglb_tracecat accepted malformed span JSON" >&2
  exit 1
fi
"./${PREFIX}/tools/fglb_replay" "${SMOKE_DIR}/spans.fglbcap" \
  --spans-out="${SMOKE_DIR}/spans-replay.json"
cmp "${SMOKE_DIR}/spans.json" "${SMOKE_DIR}/spans-replay.json"

echo "=== tiered smoke: second tier, demote rung, replay byte-identity ==="
# A tier-thrash run must answer the squeeze with the demote rung
# instead of a migration, stamp tier fields on its phase=mrc events,
# count the demotes in the summary, and — because the tier spec rides
# in the FGLBCAP1 header — replay byte-identically (action projection
# exactly, mrc modulo the wall-clock dur_us field).
"./${PREFIX}/tools/fglb_sim" --scenario=tier-thrash --duration=450 \
  --log-level=quiet --capture-out="${SMOKE_DIR}/tier.fglbcap" \
  --trace-out="${SMOKE_DIR}/tier.jsonl" >/dev/null
"./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/tier.jsonl" --check
"./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/tier.jsonl" \
  --phase=action | grep -q '\[demote\]'
"./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/tier.jsonl" \
  --phase=mrc | grep -q '"tier2_pages"'
"./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/tier.jsonl" --summary \
  | grep -q 'demote'
"./${PREFIX}/tools/fglb_replay" "${SMOKE_DIR}/tier.fglbcap" \
  --trace-out="${SMOKE_DIR}/tier-replay.jsonl"
diff <("./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/tier.jsonl" \
         --phase=action) \
     <("./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/tier-replay.jsonl" \
         --phase=action)
diff <("./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/tier.jsonl" \
         --phase=mrc | sed 's/"dur_us":[0-9.]*,//') \
     <("./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/tier-replay.jsonl" \
         --phase=mrc | sed 's/"dur_us":[0-9.]*,//')
# Same contract with the tier itself failing and degrading mid-run.
"./${PREFIX}/tools/fglb_sim" --scenario=tier-fail --duration=450 \
  --fault-seed=7 --log-level=quiet \
  --capture-out="${SMOKE_DIR}/tier-fail.fglbcap" \
  --trace-out="${SMOKE_DIR}/tier-fail.jsonl" >/dev/null
"./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/tier-fail.jsonl" --check
"./${PREFIX}/tools/fglb_replay" "${SMOKE_DIR}/tier-fail.fglbcap" \
  --trace-out="${SMOKE_DIR}/tier-fail-replay.jsonl"
diff <("./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/tier-fail.jsonl" \
         --phase=action) \
     <("./${PREFIX}/tools/fglb_tracecat" \
         "${SMOKE_DIR}/tier-fail-replay.jsonl" --phase=action)
# A partial/nonsensical tier-field set on a phase=mrc event must be
# rejected by --check with a non-zero exit.
printf '%s\n' \
  '{"v":1,"seq":0,"mono_us":1,"phase":"mrc","t":0,"tier2_pages":64,"tier2_resident":128,"tier2_read_us":100}' \
  > "${SMOKE_DIR}/broken-tier.jsonl"
if "./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/broken-tier.jsonl" \
  --check 2>/dev/null; then
  echo "fglb_tracecat accepted a malformed tier spec" >&2
  exit 1
fi

echo "=== survivability smoke: lossy stats channel + controller crash ==="
# chaos-net: reports cross a lossy transport. The trace must pass
# --check (which validates per-replica report_seq / stale_intervals
# continuity on the recovery events), surface report_lost counts in the
# summary, and — because the stats-channel spec rides in the FGLBCAP1
# header — replay byte-identically: actions exactly, the full trace
# modulo the wall-clock mono_us/dur_us fields.
"./${PREFIX}/tools/fglb_sim" --scenario=chaos-net --duration=600 \
  --fault-seed=7 --log-level=quiet \
  --capture-out="${SMOKE_DIR}/net.fglbcap" \
  --trace-out="${SMOKE_DIR}/net.jsonl" >/dev/null
"./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/net.jsonl" --check
"./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/net.jsonl" --summary \
  | grep -q 'report_lost'
"./${PREFIX}/tools/fglb_replay" "${SMOKE_DIR}/net.fglbcap" \
  --trace-out="${SMOKE_DIR}/net-replay.jsonl"
diff <("./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/net.jsonl" \
         --phase=action) \
     <("./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/net-replay.jsonl" \
         --phase=action)
diff <(sed 's/"mono_us":[0-9]*,//; s/"dur_us":[0-9.]*,\?//' \
         "${SMOKE_DIR}/net.jsonl") \
     <(sed 's/"mono_us":[0-9]*,//; s/"dur_us":[0-9.]*,\?//' \
         "${SMOKE_DIR}/net-replay.jsonl")
# chaos-ctl: a controller crash + restart lands on top of the lossy
# window. The restart must restore from the FGLBCKPT1 blob — a
# why=restored recovery event, never bad_ckpt — and the whole run
# (crash, restore, everything after) must replay byte for byte.
"./${PREFIX}/tools/fglb_sim" --scenario=chaos-ctl --duration=600 \
  --fault-seed=7 --log-level=quiet \
  --capture-out="${SMOKE_DIR}/ctl.fglbcap" \
  --trace-out="${SMOKE_DIR}/ctl.jsonl" >/dev/null
"./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/ctl.jsonl" --check
"./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/ctl.jsonl" \
  --phase=recovery | grep -q '"why":"restored"'
if "./${PREFIX}/tools/fglb_tracecat" "${SMOKE_DIR}/ctl.jsonl" \
  --phase=recovery | grep -q '"why":"bad_ckpt"'; then
  echo "controller restored from a corrupt checkpoint" >&2
  exit 1
fi
"./${PREFIX}/tools/fglb_replay" "${SMOKE_DIR}/ctl.fglbcap" \
  --trace-out="${SMOKE_DIR}/ctl-replay.jsonl"
diff <(sed 's/"mono_us":[0-9]*,//; s/"dur_us":[0-9.]*,\?//' \
         "${SMOKE_DIR}/ctl.jsonl") \
     <(sed 's/"mono_us":[0-9]*,//; s/"dur_us":[0-9.]*,\?//' \
         "${SMOKE_DIR}/ctl-replay.jsonl")
# The recovery bench enforces its own shape: exits non-zero if guarded
# recovery drifts past 1.5x lossless or the unguarded arm stops
# flapping.
cmake --build "${PREFIX}" -j "${JOBS}" --target bench_recovery
"./${PREFIX}/bench/bench_recovery" "${SMOKE_DIR}/recovery.json" >/dev/null
grep -q '"flap_ratio_unguarded"' "${SMOKE_DIR}/recovery.json"

echo "=== DES kernel smoke: calendar queue vs legacy heap ==="
# Small event budgets, but the full old-vs-new comparison: the run
# exits non-zero if the calendar queue is slower than the heap on the
# hold model, and the JSON must carry the kernel's headline fields.
cmake --build "${PREFIX}" -j "${JOBS}" --target bench_des_kernel
"./${PREFIX}/bench/bench_des_kernel" "${SMOKE_DIR}/des.json" smoke
grep -q '"events_per_sec_calendar"' "${SMOKE_DIR}/des.json"
grep -q '"accesses_per_sec"' "${SMOKE_DIR}/des.json"
grep -q '"sim_wall_ratio_100x"' "${SMOKE_DIR}/des.json"

echo "=== ASan+UBSan build + admission/overload tests ==="
cmake -B "${PREFIX}-asan" -S . -DFGLB_SANITIZE=address-undefined >/dev/null
cmake --build "${PREFIX}-asan" -j "${JOBS}" \
  --target admission_test scheduler_consistency_test failure_injection_test \
  sim_determinism_test scale_replay_test span_tracer_test \
  streaming_mrc_test opt_oracle_test arc_buffer_pool_test \
  tiered_buffer_pool_test tiered_replay_test fglb_sim_cli \
  fglb_tracecat stats_channel_test controller_checkpoint_test \
  recovery_test
ctest --test-dir "${PREFIX}-asan" --output-on-failure -j "${JOBS}" \
  -R 'Admission|Scheduler|FailureInjection|SimDeterminism|ScaleReplay|SpanConfig|SpanTracer|Streaming|MrcSpec|OptOracle|OptForward|OptDominance|RegretVsOpt|ArcBufferPool|ReplacementPolicy|TierConfig|TieredBufferPool|TieredReplay|QuotaPlannerTiered|MissRatioCurveTier|StatsChannel|ControllerCheckpoint|RecoveryTest'
"./${PREFIX}-asan/tools/fglb_sim" --scenario=overload --duration=180 \
  --log-level=quiet --trace-out="${SMOKE_DIR}/overload-asan.jsonl" >/dev/null
"./${PREFIX}-asan/tools/fglb_tracecat" "${SMOKE_DIR}/overload-asan.jsonl" \
  --check

echo "=== TSan build + concurrency tests ==="
cmake -B "${PREFIX}-tsan" -S . -DFGLB_SANITIZE=thread >/dev/null
cmake --build "${PREFIX}-tsan" -j "${JOBS}" \
  --target mrc_pipeline_test log_analyzer_test selective_retuner_test \
  metrics_registry_test trace_log_test observability_integration_test \
  span_tracer_test fault_injector_test chaos_soak_test replay_codec_test \
  replay_test sim_determinism_test scale_replay_test \
  streaming_mrc_test opt_oracle_test tiered_replay_test \
  stats_channel_test controller_checkpoint_test recovery_test
ctest --test-dir "${PREFIX}-tsan" --output-on-failure -j "${JOBS}" \
  -R 'ThreadPool|ParallelDiagnosis|LogAnalyzer|SelectiveRetuner|MetricsRegistry|MaxGauge|LatencyHistogram|TraceLog|Observability|SpanConfig|SpanTracer|FaultSpec|FaultInjector|Chaos|ReplayCodec|ReplayTest|SimDeterminism|ScaleReplay|Streaming|MrcSpec|OptOracle|OptForward|OptDominance|RegretVsOpt|TieredReplay|StatsChannel|ControllerCheckpoint|RecoveryTest'

echo "CI OK"
