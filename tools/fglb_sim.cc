// fglb_sim: command-line scenario runner. Assembles one of the canned
// cluster scenarios, runs it for the requested simulated duration, and
// prints the interval series / action log as a table or CSV.
//
//   ./build/tools/fglb_sim --scenario=consolidation --duration=1800
//   ./build/tools/fglb_sim --scenario=burst --output=samples-csv > s.csv
//   ./build/tools/fglb_sim --scenario=chaos-replica --fault-seed=7
//       --trace-out=trace.jsonl

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "replay/capture.h"
#include "scenarios/cli_options.h"
#include "scenarios/harness.h"
#include "scenarios/report.h"
#include "storage/replacement_policy.h"
#include "storage/tiered_buffer_pool.h"
#include "workload/rubis.h"
#include "workload/tpcw.h"

namespace {

using namespace fglb;

// Per-app emulator options for a scenario whose (scaled) population is
// `clients`: batched cohorts kick in under --cohorts=auto once the app
// is large enough that per-client think events would dominate the
// event queue.
ClientEmulator::Options EmulatorOptions(const CliOptions& options,
                                        double clients) {
  constexpr double kAutoCohortClients = 10000;
  ClientEmulator::Options emu;
  emu.cohort = options.cohorts == "on" ||
               (options.cohorts == "auto" && clients >= kAutoCohortClients);
  return emu;
}

void Assemble(const CliOptions& options, ClusterHarness* harness) {
  harness->AddServers(options.servers);
  PhysicalServer* first = harness->resources().servers()[0].get();
  // --clients-scale multiplies every population below, including the
  // overload scenario's 7.5x default.
  const double tpcw_clients = options.tpcw_clients * options.clients_scale;
  const double rubis_clients = options.rubis_clients * options.clients_scale;

  switch (options.scenario) {
    case CliOptions::Scenario::kSteady: {
      Scheduler* tpcw = harness->AddApplication(MakeTpcw());
      tpcw->AddReplica(harness->resources().CreateReplica(first, 8192));
      harness->AddConstantClients(tpcw, tpcw_clients, options.seed,
                                  EmulatorOptions(options, tpcw_clients));
      break;
    }
    case CliOptions::Scenario::kBurst: {
      Scheduler* tpcw = harness->AddApplication(MakeTpcw());
      tpcw->AddReplica(harness->resources().CreateReplica(first, 8192));
      // Quarter load, then the full client count from one third in.
      harness->AddClients(
          tpcw,
          std::make_unique<StepLoad>(std::vector<std::pair<SimTime, double>>{
              {0, tpcw_clients / 4},
              {options.duration_seconds / 3, tpcw_clients}}),
          options.seed, EmulatorOptions(options, tpcw_clients));
      break;
    }
    case CliOptions::Scenario::kConsolidation: {
      Scheduler* tpcw = harness->AddApplication(MakeTpcw());
      RubisOptions rubis_options;
      rubis_options.app_id = 2;
      Scheduler* rubis = harness->AddApplication(MakeRubis(rubis_options));
      Replica* shared = harness->resources().CreateReplica(first, 8192);
      tpcw->AddReplica(shared);
      rubis->AddReplica(shared);
      harness->AddConstantClients(tpcw, tpcw_clients, options.seed,
                                  EmulatorOptions(options, tpcw_clients));
      harness->AddClients(
          rubis,
          std::make_unique<StepLoad>(std::vector<std::pair<SimTime, double>>{
              {options.duration_seconds / 3, rubis_clients}}),
          options.seed + 1, EmulatorOptions(options, rubis_clients));
      break;
    }
    case CliOptions::Scenario::kIoContention: {
      RubisOptions a, b;
      a.app_id = 2;
      a.table_base = 11;
      b.app_id = 3;
      b.table_base = 21;
      Scheduler* rubis1 = harness->AddApplication(MakeRubis(a));
      Scheduler* rubis2 = harness->AddApplication(MakeRubis(b));
      rubis1->AddReplica(harness->resources().CreateReplica(first, 8192, 51));
      rubis2->AddReplica(harness->resources().CreateReplica(first, 8192, 52));
      harness->AddConstantClients(rubis1, rubis_clients, options.seed,
                                  EmulatorOptions(options, rubis_clients));
      harness->AddClients(
          rubis2,
          std::make_unique<StepLoad>(std::vector<std::pair<SimTime, double>>{
              {options.duration_seconds / 3, rubis_clients}}),
          options.seed + 1, EmulatorOptions(options, rubis_clients));
      break;
    }
    case CliOptions::Scenario::kOverload: {
      // ~3x one replica's saturation point (~300 clients at TPC-W's 1s
      // think time): far past capacity, so without admission control
      // the queue (and every class's latency) collapses together.
      Scheduler* tpcw = harness->AddApplication(MakeTpcw());
      tpcw->AddReplica(harness->resources().CreateReplica(first, 8192));
      const double clients = 7.5 * tpcw_clients;
      harness->AddConstantClients(tpcw, clients, options.seed,
                                  EmulatorOptions(options, clients));
      break;
    }
    case CliOptions::Scenario::kTierThrash:
    case CliOptions::Scenario::kTierFail: {
      // The consolidation squeeze, but the engines carry a second
      // tier: where the tierless run reschedules the arriving heavy
      // RUBiS class to another replica, here the cheaper rung is to
      // cap its DRAM quota and demote the working-set overflow into
      // the tier.
      Scheduler* tpcw = harness->AddApplication(MakeTpcw());
      RubisOptions rubis_options;
      rubis_options.app_id = 2;
      Scheduler* rubis = harness->AddApplication(MakeRubis(rubis_options));
      Replica* shared = harness->resources().CreateReplica(first, 8192);
      tpcw->AddReplica(shared);
      rubis->AddReplica(shared);
      harness->AddConstantClients(tpcw, tpcw_clients, options.seed,
                                  EmulatorOptions(options, tpcw_clients));
      // A sharper arrival than consolidation's: the squeeze must break
      // SLA within a controller interval of the step, while the heavy
      // class is still a suspect rather than an adopted baseline (the
      // tier's own cushioning otherwise delays the violation past the
      // stability window and the diagnosis clears everyone).
      const double rubis_step = 4.0 / 3.0 * rubis_clients;
      harness->AddClients(
          rubis,
          std::make_unique<StepLoad>(std::vector<std::pair<SimTime, double>>{
              {options.duration_seconds / 3, rubis_step}}),
          options.seed + 1, EmulatorOptions(options, rubis_step));
      break;
    }
    case CliOptions::Scenario::kColdStart: {
      // Steady TPC-W on a half-size DRAM pool with everything cold at
      // t=0: the tier fills via demotions and then absorbs misses the
      // shrunken DRAM can no longer hold.
      Scheduler* tpcw = harness->AddApplication(MakeTpcw());
      tpcw->AddReplica(harness->resources().CreateReplica(first, 4096));
      harness->AddConstantClients(tpcw, tpcw_clients, options.seed,
                                  EmulatorOptions(options, tpcw_clients));
      break;
    }
    case CliOptions::Scenario::kChaosReplica:
    case CliOptions::Scenario::kChaosDisk:
    case CliOptions::Scenario::kChaosNet:
    case CliOptions::Scenario::kChaosCtl: {
      // Consolidation topology plus a second TPC-W replica so a crash
      // degrades capacity instead of zeroing it.
      Scheduler* tpcw = harness->AddApplication(MakeTpcw());
      RubisOptions rubis_options;
      rubis_options.app_id = 2;
      Scheduler* rubis = harness->AddApplication(MakeRubis(rubis_options));
      Replica* shared = harness->resources().CreateReplica(first, 8192);
      PhysicalServer* second =
          options.servers > 1 ? harness->resources().servers()[1].get()
                              : first;
      Replica* spare = harness->resources().CreateReplica(second, 8192, 2);
      tpcw->AddReplica(shared);
      tpcw->AddReplica(spare);
      rubis->AddReplica(shared);
      harness->AddConstantClients(tpcw, tpcw_clients, options.seed,
                                  EmulatorOptions(options, tpcw_clients));
      harness->AddConstantClients(rubis, rubis_clients, options.seed + 1,
                                  EmulatorOptions(options, rubis_clients));
      break;
    }
  }
}

const char* ScenarioName(CliOptions::Scenario scenario) {
  switch (scenario) {
    case CliOptions::Scenario::kSteady: return "steady";
    case CliOptions::Scenario::kBurst: return "burst";
    case CliOptions::Scenario::kConsolidation: return "consolidation";
    case CliOptions::Scenario::kIoContention: return "io";
    case CliOptions::Scenario::kChaosReplica: return "chaos-replica";
    case CliOptions::Scenario::kChaosDisk: return "chaos-disk";
    case CliOptions::Scenario::kChaosNet: return "chaos-net";
    case CliOptions::Scenario::kChaosCtl: return "chaos-ctl";
    case CliOptions::Scenario::kOverload: return "overload";
    case CliOptions::Scenario::kTierThrash: return "tier-thrash";
    case CliOptions::Scenario::kTierFail: return "tier-fail";
    case CliOptions::Scenario::kColdStart: return "cold-start";
  }
  return "unknown";
}

// The fault schedule a chaos scenario runs when --fault-spec is absent;
// times scale with --duration so short smoke runs still hit every
// fault. Non-chaos scenarios inject nothing by default.
std::string DefaultFaultSpec(const CliOptions& options) {
  const double d = options.duration_seconds;
  char buf[256];
  switch (options.scenario) {
    case CliOptions::Scenario::kChaosReplica:
      std::snprintf(buf, sizeof(buf),
                    "crash@%.0f:replica=1,restart=60;"
                    "stats@%.0f:replica=0,mode=partial,duration=60;"
                    "migration@%.0f:delay=2,fail=0.3,duration=%.0f",
                    d / 3, d / 2, d / 3, d / 3);
      return buf;
    case CliOptions::Scenario::kChaosDisk:
      std::snprintf(buf, sizeof(buf),
                    "disk@%.0f:server=0,factor=8,duration=%.0f;"
                    "slow@%.0f:replica=0,factor=3,duration=%.0f",
                    d / 3, d / 6, d / 2, d / 6);
      return buf;
    case CliOptions::Scenario::kChaosNet:
      // One long lossy window over the middle third of the run: the
      // controller rides last-known-good stats through it.
      std::snprintf(buf, sizeof(buf),
                    "net@%.0f:drop=0.08,dup=0.03,corrupt=0.02,reorder=0.05,"
                    "delay=1,duration=%.0f",
                    d / 3, d / 3);
      return buf;
    case CliOptions::Scenario::kChaosCtl:
      // A lossy window, then the controller itself crashes inside it
      // and restarts 30 s later from the FGLBCKPT1 checkpoint.
      std::snprintf(buf, sizeof(buf),
                    "net@%.0f:drop=0.08,duration=%.0f;"
                    "ctl@%.0f:restart=30",
                    d / 3, d / 3, d / 2);
      return buf;
    case CliOptions::Scenario::kTierFail:
      // The SSD tier dies cold mid-run, then recovers and later merely
      // degrades (hits land but cost 10x).
      std::snprintf(buf, sizeof(buf),
                    "tier@%.0f:replica=0,mode=fail,duration=%.0f;"
                    "tier@%.0f:replica=0,mode=degrade,factor=10,"
                    "duration=%.0f",
                    d / 3, d / 6, 2 * d / 3, d / 6);
      return buf;
    default:
      return "";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  CliOptions options;
  std::string error;
  if (!ParseCliOptions(args, &options, &error)) {
    std::fprintf(stderr, "error: %s\n%s", error.c_str(),
                 CliUsage().c_str());
    return 2;
  }
  if (options.help) {
    std::printf("%s", CliUsage().c_str());
    return 0;
  }

  LogLevel level = LogLevel::kInfo;
  ParseLogLevel(options.log_level, &level);  // validated by the parser
  SetGlobalLogLevel(level);

  const bool chaos =
      options.scenario == CliOptions::Scenario::kChaosReplica ||
      options.scenario == CliOptions::Scenario::kChaosDisk ||
      options.scenario == CliOptions::Scenario::kChaosNet ||
      options.scenario == CliOptions::Scenario::kChaosCtl;
  const bool tiered_scenario =
      options.scenario == CliOptions::Scenario::kTierThrash ||
      options.scenario == CliOptions::Scenario::kTierFail ||
      options.scenario == CliOptions::Scenario::kColdStart;

  // Buffer-hierarchy defaults for every engine the run creates. The
  // tier-* scenarios turn the second tier on even without an explicit
  // --tier2-pages; any scenario can opt in with the flag.
  TierConfig tier_config;
  tier_config.pages = options.tier2_pages;
  if (tiered_scenario && tier_config.pages == 0) tier_config.pages = 16384;
  tier_config.read_us = options.tier2_read_us;
  tier_config.demote = options.tier2_demote;
  ReplacementPolicy replacement = ReplacementPolicy::kLru;
  ParseReplacementPolicy(options.replacement, &replacement);  // CLI-validated

  SelectiveRetuner::Config retuner_config;
  retuner_config.mrc.analysis_threads = options.mrc_threads;
  retuner_config.mrc.sample_rate = options.mrc_sample_rate;
  ParseMrcMode(options.mrc_mode, &retuner_config.mrc.mode);  // CLI-validated
  retuner_config.mrc.opt_regret = options.mrc_opt_regret;
  if (chaos) {
    // Under injected churn, bound re-placement so flapping faults
    // cannot translate into unbounded migrations.
    retuner_config.max_migrations_per_interval = 2;
  }
  if (options.scenario == CliOptions::Scenario::kColdStart) {
    // Cold-start runs half-size DRAM pools; replicas the controller
    // provisions must match.
    retuner_config.replica_pool_pages = 4096;
  }
  ClusterHarness harness(retuner_config);
  harness.resources().set_engine_defaults(replacement, tier_config);
  if (tier_config.enabled()) {
    LogInfo("second tier on: %s", tier_config.ToString().c_str());
  }
  if (!options.trace_out.empty()) {
    std::string trace_error;
    if (!harness.trace().OpenFile(options.trace_out, &trace_error)) {
      LogError("cannot open --trace-out file: %s", trace_error.c_str());
      return 1;
    }
    LogDebug("decision trace -> %s", options.trace_out.c_str());
  }
  if (options.metrics_interval_seconds > 0) {
    harness.StartMetricsSampler(options.metrics_interval_seconds);
  }
  Assemble(options, &harness);
  std::string admission_spec_text;
  const bool admission_on =
      options.admission == "on" ||
      (options.admission == "auto" &&
       options.scenario == CliOptions::Scenario::kOverload);
  if (admission_on) {
    AdmissionConfig admission_config;
    if (options.admission_target > 0) {
      admission_config.target_delay = options.admission_target;
    }
    if (options.admission_interval > 0) {
      admission_config.codel_interval_seconds = options.admission_interval;
    }
    if (options.admission_max_queue > 0) {
      admission_config.max_queue_depth =
          static_cast<uint64_t>(options.admission_max_queue);
    }
    if (options.admission_retry_ratio >= 0) {
      admission_config.retry_budget_ratio = options.admission_retry_ratio;
    }
    if (options.admission_breaker_threshold > 0) {
      admission_config.breaker_failure_threshold =
          options.admission_breaker_threshold;
    }
    if (options.admission_breaker_open > 0) {
      admission_config.breaker_open_seconds = options.admission_breaker_open;
    }
    harness.EnableAdmission(admission_config);
    admission_spec_text = admission_config.ToString();
    LogInfo("overload protection on: %s", admission_spec_text.c_str());
  }
  std::string span_spec_text;
  if (!options.spans_out.empty() || options.span_sample > 0) {
    SpanConfig span_config;
    if (options.span_sample > 0) span_config.sample_every = options.span_sample;
    SpanTracer* spans = harness.EnableSpanTracing(span_config);
    span_spec_text = spans->config().ToString();
    if (!options.spans_out.empty()) {
      std::string spans_error;
      if (!spans->OpenFile(options.spans_out, &spans_error)) {
        LogError("cannot open --spans-out file: %s", spans_error.c_str());
        return 1;
      }
      LogDebug("span timelines -> %s", options.spans_out.c_str());
    }
    LogInfo("span tracing on: %s", span_spec_text.c_str());
  }
  std::string stats_spec_text;
  const bool stats_channel_on =
      options.stats_net == "channel" ||
      (options.stats_net == "auto" &&
       (options.scenario == CliOptions::Scenario::kChaosNet ||
        options.scenario == CliOptions::Scenario::kChaosCtl));
  if (stats_channel_on) {
    StatsChannelConfig channel_config;
    channel_config.guard = options.stats_guard != "off";
    harness.EnableStatsChannel(channel_config);
    stats_spec_text = channel_config.ToString();
    // An all-defaults config serializes to ""; captures use empty to
    // mean "no channel", so pin the guard key as the canonical form.
    if (stats_spec_text.empty()) stats_spec_text = "guard=on";
    LogInfo("stats channel on: %s", stats_spec_text.c_str());
  }
  double ckpt_interval = options.ckpt_interval;
  if (ckpt_interval < 0) {
    ckpt_interval = options.scenario == CliOptions::Scenario::kChaosCtl
                        ? harness.retuner().config().interval_seconds
                        : 0;
  }
  if (ckpt_interval > 0) {
    harness.EnableCheckpointing(ckpt_interval);
    LogInfo("controller checkpointing on: every %.0f s", ckpt_interval);
  }
  const std::string fault_spec_text =
      !options.fault_spec.empty() ? options.fault_spec
                                  : DefaultFaultSpec(options);
  if (!fault_spec_text.empty()) {
    FaultSpec spec;
    std::string fault_error;
    if (!FaultSpec::Parse(fault_spec_text, &spec, &fault_error)) {
      std::fprintf(stderr, "error: bad --fault-spec: %s\n",
                   fault_error.c_str());
      return 2;
    }
    harness.InjectFaults(std::move(spec), options.fault_seed);
    LogInfo("fault schedule armed: %s (seed %llu)",
            harness.fault_injector()->spec().ToString().c_str(),
            static_cast<unsigned long long>(options.fault_seed));
  }
  std::unique_ptr<CaptureWriter> capture_writer;
  if (!options.capture_out.empty()) {
    capture_writer = std::make_unique<CaptureWriter>(&harness.sim());
    CaptureInfo info;
    info.seed = options.seed;
    info.fault_seed = options.fault_seed;
    info.scenario = ScenarioName(options.scenario);
    info.fault_spec = fault_spec_text;
    info.duration_seconds = options.duration_seconds;
    info.interval_seconds = harness.retuner().config().interval_seconds;
    info.mrc_sample_rate = options.mrc_sample_rate;
    info.max_migrations_per_interval =
        retuner_config.max_migrations_per_interval;
    info.admission_spec = admission_spec_text;
    info.span_spec = span_spec_text;
    info.mrc_spec = MrcSpecString(retuner_config.mrc);
    info.tier_spec = tier_config.ToString();
    info.replacement_spec = replacement == ReplacementPolicy::kLru
                                ? ""
                                : ReplacementPolicyName(replacement);
    info.stats_spec = stats_spec_text;
    if (ckpt_interval > 0) {
      char ckpt_buf[64];
      std::snprintf(ckpt_buf, sizeof(ckpt_buf), "interval=%g", ckpt_interval);
      info.ckpt_spec = ckpt_buf;
    }
    std::string capture_error;
    if (!capture_writer->Open(options.capture_out, info,
                              SnapshotTopology(harness), &capture_error)) {
      LogError("cannot open --capture-out file: %s", capture_error.c_str());
      return 1;
    }
    harness.AttachRecorders(capture_writer.get(), capture_writer.get());
    LogDebug("workload capture -> %s", options.capture_out.c_str());
  }
  harness.Start();
  LogInfo("scenario assembled: %d servers, %.0f simulated seconds",
          options.servers, options.duration_seconds);
  harness.RunFor(options.duration_seconds);

  const auto& retuner = harness.retuner();
  LogInfo("run complete: %zu intervals, %zu actions, %zu diagnoses",
          retuner.samples().size(), retuner.actions().size(),
          retuner.diagnoses().size());
  if (harness.admission() != nullptr) {
    uint64_t completed = 0;
    uint64_t sla_ok = 0;
    uint64_t shed = 0;
    for (const auto& s : harness.schedulers()) {
      completed += s->total_completed();
      sla_ok += s->total_sla_ok();
      shed += s->total_shed();
    }
    LogInfo("admission: %llu admitted, %llu shed; %llu of %llu "
            "completions within SLA",
            static_cast<unsigned long long>(harness.admission()->admitted()),
            static_cast<unsigned long long>(shed),
            static_cast<unsigned long long>(sla_ok),
            static_cast<unsigned long long>(completed));
  }
  if (harness.fault_injector() != nullptr) {
    LogInfo("faults injected: %llu (%llu no-op)",
            static_cast<unsigned long long>(
                harness.fault_injector()->faults_injected()),
            static_cast<unsigned long long>(
                harness.fault_injector()->noop_faults()));
  }
  if (capture_writer != nullptr) {
    if (!capture_writer->Finalize(retuner.actions(), retuner.samples())) {
      LogError("write error finalizing --capture-out file");
      return 1;
    }
    LogInfo("capture: %llu arrivals, %llu executions, %llu accesses, "
            "%llu bytes",
            static_cast<unsigned long long>(
                capture_writer->arrivals_recorded()),
            static_cast<unsigned long long>(
                capture_writer->executions_recorded()),
            static_cast<unsigned long long>(
                capture_writer->accesses_recorded()),
            static_cast<unsigned long long>(capture_writer->bytes_written()));
  }
  if (!options.trace_out.empty()) {
    LogDebug("trace events emitted: %llu",
             static_cast<unsigned long long>(
                 harness.trace().events_emitted()));
    harness.trace().Close();
  }
  if (harness.span_tracer() != nullptr) {
    SpanTracer* spans = harness.span_tracer();
    spans->Close();
    LogInfo("spans: %llu of %llu queries sampled, %llu finished",
            static_cast<unsigned long long>(spans->sampled()),
            static_cast<unsigned long long>(spans->sequence()),
            static_cast<unsigned long long>(spans->finished()));
  }
  if (!options.metrics_out.empty()) {
    if (!harness.metrics().WriteJson(options.metrics_out)) {
      LogError("cannot write --metrics-out file: %s",
               options.metrics_out.c_str());
      return 1;
    }
    LogDebug("metrics snapshot -> %s", options.metrics_out.c_str());
  }
  switch (options.output) {
    case CliOptions::Output::kTable:
      std::printf("%s", FormatSamplesTable(retuner.samples()).c_str());
      std::printf("\nactions:\n%s", FormatActions(retuner.actions()).c_str());
      std::printf("\ndiagnoses:\n%s",
                  FormatDiagnoses(retuner.diagnoses()).c_str());
      break;
    case CliOptions::Output::kSamplesCsv:
      std::printf("%s", SamplesCsv(retuner.samples()).c_str());
      break;
    case CliOptions::Output::kActionsCsv:
      std::printf("%s", ActionsCsv(retuner.actions()).c_str());
      break;
    case CliOptions::Output::kServersCsv:
      std::printf("%s", ServerUtilizationCsv(retuner.samples()).c_str());
      break;
  }
  return 0;
}
