// Tiered buffer pool: (a) two-level (DRAM + SSD) placement vs a
// DRAM-only pool of equal hardware cost, replaying real per-class
// traces through real pools and scoring each arm with the blended
// latency model the quota planner optimizes; (b) the demote rung vs
// the migration rung on the tier-thrash scenario — both restore the
// squeezed TPC-W SLA, but the demote does it without taking a second
// machine. Emits BENCH_tiered.json.

#include <chrono>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "scenarios/harness.h"
#include "storage/partitioned_buffer_pool.h"
#include "storage/tiered_buffer_pool.h"
#include "workload/rubis.h"
#include "workload/tpcw.h"

namespace {

using namespace fglb;

// The blended latency model's three service times (us): DRAM hit, SSD
// tier hit (TierConfig default), disk random read (DiskModel default).
constexpr double kMemUs = 1.0;
constexpr double kSsdUs = 100.0;
constexpr double kDiskUs = 2000.0;

// Hardware cost ratio: one DRAM page buys this many SSD pages (the
// $/GB gap the second tier exists to exploit).
constexpr uint64_t kDramCostRatio = 10;

// --- part (a): equal-cost placement -----------------------------------

struct PlacementOutcome {
  double blended_us = 0;  // mean per-access latency under the model
  double dram_hit = 0;
  double tier2_hit = 0;
  double miss = 0;
  double wall_ms = 0;
};

// Replays `trace` through a DRAM pool of `dram_pages` backed (when
// `tier2_pages` > 0) by an exclusive second tier fed by the DRAM pool's
// evictions — the engine's wiring, minus the engine.
PlacementOutcome ReplayPlacement(const std::vector<PageId>& trace,
                                 uint64_t dram_pages, uint64_t tier2_pages) {
  const auto start = std::chrono::steady_clock::now();
  PartitionedBufferPool dram(dram_pages);
  std::unique_ptr<TieredBufferPool> tier;
  if (tier2_pages > 0) {
    TierConfig config;
    config.pages = tier2_pages;
    config.read_us = kSsdUs;
    tier = std::make_unique<TieredBufferPool>(config);
    dram.SetEvictionListener([&tier](PartitionKey key, PageId page) {
      tier->Demote(key, page);
    });
  }

  uint64_t dram_hits = 0, tier2_hits = 0, misses = 0;
  for (PageId page : trace) {
    if (dram.Access(kSharedPartition + 1, page)) {
      ++dram_hits;
    } else if (tier != nullptr &&
               tier->PromoteHit(kSharedPartition + 1, page)) {
      ++tier2_hits;  // Access already brought the page into DRAM
    } else {
      ++misses;
    }
  }

  PlacementOutcome out;
  const double n = static_cast<double>(trace.size());
  out.dram_hit = dram_hits / n;
  out.tier2_hit = tier2_hits / n;
  out.miss = misses / n;
  out.blended_us =
      out.dram_hit * kMemUs + out.tier2_hit * kSsdUs + out.miss * kDiskUs;
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return out;
}

// --- part (b): demote vs migrate on tier-thrash -----------------------

struct ArmOutcome {
  double tpcw_latency = 0;
  int tpcw_sla_violations = 0;
  double rubis_latency = 0;
  int machines = 0;
  int demotes = 0;
  int reschedules = 0;
  double wall_ms = 0;
};

// The tier-thrash squeeze (TPC-W steady, RUBiS stepping to 60 clients
// at t=150 on a shared 8192-page replica), with the controller free to
// act. `tiered` arms the engines with the default 16384-page second
// tier, making the demote the cheapest workable rung; tierless arms
// leave the controller its classic answer, rescheduling the intruder
// onto another machine.
ArmOutcome RunThrashArm(bool tiered, double duration) {
  const auto start = std::chrono::steady_clock::now();
  ClusterHarness harness;
  harness.AddServers(4);
  TierConfig tier;
  if (tiered) tier.pages = 16384;
  harness.resources().set_engine_defaults(ReplacementPolicy::kLru, tier);
  PhysicalServer* first = harness.resources().servers()[0].get();
  Scheduler* tpcw = harness.AddApplication(MakeTpcw());
  RubisOptions rubis_options;
  rubis_options.app_id = 2;
  Scheduler* rubis = harness.AddApplication(MakeRubis(rubis_options));
  Replica* shared = harness.resources().CreateReplica(first, 8192);
  tpcw->AddReplica(shared);
  rubis->AddReplica(shared);
  harness.AddConstantClients(tpcw, 120, /*seed=*/1);
  harness.AddClients(
      rubis,
      std::make_unique<StepLoad>(
          std::vector<std::pair<SimTime, double>>{{duration / 3, 60}}),
      /*seed=*/2);
  harness.Start();
  harness.RunFor(duration);

  ArmOutcome out;
  // The tail window: well after the step and the controller's answer.
  const auto ts = harness.Summarize(tpcw->app().id, 2 * duration / 3,
                                    duration);
  const auto rs = harness.Summarize(rubis->app().id, 2 * duration / 3,
                                    duration);
  out.tpcw_latency = ts.avg_latency;
  out.tpcw_sla_violations = ts.sla_violations;
  out.rubis_latency = rs.avg_latency;
  for (const auto& action : harness.retuner().actions()) {
    if (action.kind == SelectiveRetuner::ActionKind::kDemote) ++out.demotes;
    if (action.kind == SelectiveRetuner::ActionKind::kClassRescheduled) {
      ++out.reschedules;
    }
  }
  std::set<const PhysicalServer*> servers;
  for (Replica* r : tpcw->replicas()) servers.insert(&r->server());
  for (Replica* r : rubis->replicas()) servers.insert(&r->server());
  out.machines = static_cast<int>(servers.size());
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fglb::bench;
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_tiered.json";
  BenchJsonWriter json;

  PrintHeader("Tiered buffer pool: two-level placement and the demote rung");

  // ---- (a) two-level vs DRAM-only at equal hardware cost ----
  // Budget: 4096 DRAM-page-equivalents. The DRAM-only arm spends it
  // all on DRAM; the two-level arm converts half into 10x the SSD
  // pages. Workloads are the paper's per-class traces.
  PrintSection("equal-cost placement: blended mean latency (us/access)");
  const ApplicationSpec tpcw = MakeTpcw();
  const ApplicationSpec rubis = MakeRubis();
  struct Workload {
    const char* label;
    const char* slug;
    std::vector<PageId> trace;
  };
  const Workload workloads[] = {
      {"RUBiS SearchItemsByRegion (scan)", "sibr",
       WindowTrace(*rubis.FindTemplate(kRubisSearchItemsByRegion), 60000,
                   9001)},
      {"TPC-W BestSeller (indexed)", "bestseller",
       WindowTrace(*tpcw.FindTemplate(kTpcwBestSeller), 60000, 9002)},
      {"TPC-W ProductDetail", "productdetail",
       WindowTrace(*tpcw.FindTemplate(kTpcwProductDetail), 60000, 9003)},
  };
  constexpr uint64_t kBudget = 4096;  // DRAM-page-equivalents
  const uint64_t two_level_dram = kBudget / 2;
  const uint64_t two_level_tier = (kBudget - two_level_dram) * kDramCostRatio;

  std::printf("%-34s  %11s  %11s  %7s\n", "workload", "dram_only",
              "two_level", "win");
  int wins = 0;
  double sibr_ratio = 0;
  for (const Workload& w : workloads) {
    const PlacementOutcome dram_only = ReplayPlacement(w.trace, kBudget, 0);
    const PlacementOutcome two_level =
        ReplayPlacement(w.trace, two_level_dram, two_level_tier);
    const bool win = two_level.blended_us < dram_only.blended_us;
    wins += win ? 1 : 0;
    std::printf("%-34s  %11.2f  %11.2f  %7s\n", w.label,
                dram_only.blended_us, two_level.blended_us,
                win ? "yes" : "no");
    json.Add(std::string("dram_only_") + w.slug, dram_only.wall_ms,
             static_cast<double>(w.trace.size()));
    json.Add(std::string("two_level_") + w.slug, two_level.wall_ms,
             static_cast<double>(w.trace.size()));
    json.AddField(std::string("dram_only_blended_us_") + w.slug,
                  dram_only.blended_us);
    json.AddField(std::string("two_level_blended_us_") + w.slug,
                  two_level.blended_us);
    if (std::string(w.slug) == "sibr" && two_level.blended_us > 0) {
      sibr_ratio = dram_only.blended_us / two_level.blended_us;
    }
  }
  json.AddField("equal_cost_wins", wins);
  json.AddField("sibr_speedup", sibr_ratio);

  // ---- (b) demote vs migrate on tier-thrash ----
  PrintSection("tier-thrash: demote rung vs migration rung");
  const double duration = 450;
  const ArmOutcome demote = RunThrashArm(/*tiered=*/true, duration);
  const ArmOutcome migrate = RunThrashArm(/*tiered=*/false, duration);
  std::printf("%-26s  %10s  %8s  %11s  %8s  %7s  %11s\n", "arm",
              "tpcw_lat_s", "tpcw_sla", "rubis_lat_s", "machines", "demotes",
              "reschedules");
  auto row = [](const char* label, const ArmOutcome& o) {
    std::printf("%-26s  %10.3f  %8d  %11.3f  %8d  %7d  %11d\n", label,
                o.tpcw_latency, o.tpcw_sla_violations, o.rubis_latency,
                o.machines, o.demotes, o.reschedules);
  };
  row("demote (tiered)", demote);
  row("migrate (tierless)", migrate);
  json.Add("thrash_demote_arm", demote.wall_ms, 0);
  json.Add("thrash_migrate_arm", migrate.wall_ms, 0);
  json.AddField("demote_tail_sla_violations", demote.tpcw_sla_violations);
  json.AddField("demote_machines", demote.machines);
  json.AddField("migrate_machines", migrate.machines);
  json.AddField("demote_actions", demote.demotes);
  json.AddField("migrate_reschedules", migrate.reschedules);

  PrintSection("shape check");
  const bool equal_cost_wins = wins >= 1;
  const bool demote_fired = demote.demotes >= 1 && demote.reschedules == 0;
  const bool migrate_fired = migrate.reschedules >= 1;
  const bool demote_restores_sla = demote.tpcw_sla_violations == 0;
  const bool demote_cheaper = demote.machines < migrate.machines;
  std::printf("two-level beats DRAM-only at equal cost on >=1 workload: "
              "%s (%d of 3)\n",
              equal_cost_wins ? "yes" : "no", wins);
  std::printf("tiered arm answers the squeeze with the demote rung: %s\n",
              demote_fired ? "yes" : "no");
  std::printf("tierless arm answers it by rescheduling: %s\n",
              migrate_fired ? "yes" : "no");
  std::printf("demote restores the TPC-W SLA in the tail window: %s\n",
              demote_restores_sla ? "yes" : "no");
  std::printf("demote holds the cluster to fewer machines (%d vs %d): %s\n",
              demote.machines, migrate.machines,
              demote_cheaper ? "yes" : "no");
  const bool shape_holds = equal_cost_wins && demote_fired && migrate_fired &&
                           demote_restores_sla && demote_cheaper;
  std::printf("shape %s\n", shape_holds ? "HOLDS" : "DOES NOT HOLD");
  json.AddField("shape_holds", shape_holds ? 1 : 0);
  json.WriteTo(json_path);
  return shape_holds ? 0 : 1;
}
