// Ablation: the paper's headline claim — fine-grained retuning matches
// the performance of coarse-grained reactions while using fewer
// machines. We run the Table 2 consolidation scenario under (a) the
// full selective retuner and (b) a coarse-only controller (every
// persistent violation is answered with replica provisioning and
// application isolation, the "IBM Tivoli"-style baseline the paper
// argues against), and compare recovered latency and machines used.

#include <cstdio>
#include <set>

#include "bench/bench_util.h"
#include "scenarios/harness.h"
#include "workload/rubis.h"
#include "workload/tpcw.h"

namespace {

using namespace fglb;

constexpr double kTpcwClients = 120;
constexpr double kRubisClients = 60;

struct Outcome {
  double tpcw_latency = 0;
  double tpcw_tput = 0;
  int machines = 0;
  int fine_actions = 0;
  int coarse_actions = 0;
};

Outcome Run(bool fine_grained) {
  SelectiveRetuner::Config config;
  config.enable_fine_grained = fine_grained;
  ClusterHarness harness(config);
  harness.AddServers(4);
  Scheduler* tpcw = harness.AddApplication(MakeTpcw());
  RubisOptions rubis_options;
  rubis_options.app_id = 2;
  Scheduler* rubis = harness.AddApplication(MakeRubis(rubis_options));
  Replica* shared = harness.resources().CreateReplica(
      harness.resources().servers()[0].get(), 8192);
  tpcw->AddReplica(shared);
  rubis->AddReplica(shared);
  harness.AddConstantClients(tpcw, kTpcwClients, /*seed=*/61);
  harness.AddClients(rubis,
                     std::make_unique<StepLoad>(
                         std::vector<std::pair<SimTime, double>>{
                             {600, kRubisClients}}),
                     /*seed=*/63);
  harness.Start();
  harness.RunFor(1800);

  Outcome outcome;
  const auto ts = harness.Summarize(tpcw->app().id, 1400, 1800);
  outcome.tpcw_latency = ts.avg_latency;
  outcome.tpcw_tput = ts.avg_throughput;
  std::set<const PhysicalServer*> servers;
  for (Replica* r : tpcw->replicas()) servers.insert(&r->server());
  for (Replica* r : rubis->replicas()) servers.insert(&r->server());
  outcome.machines = static_cast<int>(servers.size());
  for (const auto& action : harness.retuner().actions()) {
    switch (action.kind) {
      case SelectiveRetuner::ActionKind::kQuotaEnforced:
      case SelectiveRetuner::ActionKind::kClassRescheduled:
      case SelectiveRetuner::ActionKind::kIoEviction:
        ++outcome.fine_actions;
        break;
      case SelectiveRetuner::ActionKind::kCoarseFallback:
        ++outcome.coarse_actions;
        break;
      default:
        break;
    }
  }
  return outcome;
}

}  // namespace

int main() {
  using namespace fglb::bench;

  PrintHeader("Ablation: fine-grained selective retuning vs coarse-only "
              "provisioning (Table 2 scenario)");

  const Outcome fine = Run(true);
  const Outcome coarse = Run(false);

  std::printf("%-24s  %10s  %9s  %9s  %13s  %15s\n", "controller",
              "tpcw_lat_s", "tpcw_qps", "machines", "fine_actions",
              "coarse_actions");
  std::printf("%-24s  %10.2f  %9.1f  %9d  %13d  %15d\n", "fine-grained",
              fine.tpcw_latency, fine.tpcw_tput, fine.machines,
              fine.fine_actions, fine.coarse_actions);
  std::printf("%-24s  %10.2f  %9.1f  %9d  %13d  %15d\n", "coarse-only",
              coarse.tpcw_latency, coarse.tpcw_tput, coarse.machines,
              coarse.fine_actions, coarse.coarse_actions);

  PrintSection("shape check (paper's thesis)");
  const bool both_recover =
      fine.tpcw_latency <= 1.0 && coarse.tpcw_latency <= 2.0;
  const bool fewer_or_equal_machines = fine.machines <= coarse.machines;
  const bool fine_used_fine = fine.fine_actions >= 1;
  const bool coarse_used_coarse = coarse.coarse_actions >= 1;
  std::printf("fine-grained recovers TPC-W's SLA: %s (%.2fs)\n",
              fine.tpcw_latency <= 1.0 ? "yes" : "no", fine.tpcw_latency);
  std::printf("fine-grained uses no more machines than coarse-only: %s "
              "(%d vs %d)\n",
              fewer_or_equal_machines ? "yes" : "no", fine.machines,
              coarse.machines);
  std::printf("mechanisms engaged as designed (fine: %d fine actions; "
              "coarse: %d fallbacks): %s\n",
              fine.fine_actions, coarse.coarse_actions,
              fine_used_fine && coarse_used_coarse ? "yes" : "no");
  const bool shape_holds = both_recover && fewer_or_equal_machines &&
                           fine_used_fine && coarse_used_coarse;
  std::printf("shape %s\n", shape_holds ? "HOLDS" : "DOES NOT HOLD");
  return shape_holds ? 0 : 1;
}
