// Reproduces Table 3 of the paper: I/O contention among VM domains.
// Two independent RUBiS instances (separate data) run in two Xen
// domains on one physical machine. Each domain has its own database
// engine and buffer pool, but both share the dom0 I/O channel — Xen
// isolates faults, not I/O performance. Co-location collapses
// throughput; removing the single query class responsible for the vast
// majority of the I/O (SearchItemsByRegion, ~87% in the paper) from
// one domain restores performance.
//
// Paper's Table 3 (RUBiS-1 latency / WIPS):
//   RUBiS alone (dom2 idle)      1.5 s    97
//   RUBiS + RUBiS                4.8 s    30
//   RUBiS + RUBiS w/o SIBR       1.5 s    95

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "engine/database_engine.h"
#include "scenarios/harness.h"
#include "workload/rubis.h"

namespace {

using namespace fglb;

// The paper runs 200 clients per instance against physical Dells; our
// simulated disk model saturates earlier, so the same *operating
// point* (just below one domain's capacity when alone) sits at a lower
// client count.
constexpr double kClients = 60;

SelectiveRetuner::Config PassiveConfig() {
  SelectiveRetuner::Config config;
  config.enable_actions = false;
  return config;
}

struct Row {
  double latency = 0;
  double throughput = 0;
};

// mode 0: RUBiS-1 alone. mode 1: both domains, no controller.
// mode 2: both domains, controller active (I/O interference path).
Row RunScenario(int mode, std::string* actions_out = nullptr) {
  ClusterHarness harness(mode == 2 ? SelectiveRetuner::Config{}
                                   : PassiveConfig());
  // One shared machine (two Xen domains) + a spare for re-placement.
  harness.AddServers(2);
  PhysicalServer* machine = harness.resources().servers()[0].get();

  RubisOptions first;
  first.app_id = 2;
  first.table_base = 11;
  Scheduler* rubis1 = harness.AddApplication(MakeRubis(first));
  Replica* dom1 = harness.resources().CreateReplica(machine, 8192, 51);
  rubis1->AddReplica(dom1);
  harness.AddConstantClients(rubis1, kClients, /*seed=*/31);

  if (mode >= 1) {
    RubisOptions second;
    second.app_id = 3;
    second.table_base = 21;
    Scheduler* rubis2 = harness.AddApplication(MakeRubis(second));
    Replica* dom2 = harness.resources().CreateReplica(machine, 8192, 52);
    rubis2->AddReplica(dom2);
    harness.AddConstantClients(rubis2, kClients, /*seed=*/33);
  }

  harness.Start();
  harness.RunFor(1200);

  if (actions_out != nullptr) {
    for (const auto& action : harness.retuner().actions()) {
      char buf[200];
      std::snprintf(buf, sizeof(buf), "  t=%6.0f  [%s] %s\n", action.time,
                    SelectiveRetuner::ActionKindName(action.kind),
                    action.description.c_str());
      *actions_out += buf;
    }
  }
  Row row;
  const auto summary = harness.Summarize(2, 800, 1200);
  row.latency = summary.avg_latency;
  row.throughput = summary.avg_throughput;
  return row;
}

// SearchItemsByRegion's share of the application's I/O block requests
// (workload-intrinsic; the paper reports ~87%).
double SibrIoShare() {
  DiskModel disk;
  DatabaseEngine::Options options;
  options.buffer_pool_pages = 8192;
  options.seed = 9;
  DatabaseEngine engine("share", options, &disk);
  const ApplicationSpec app = MakeRubis();
  Rng rng(17);
  std::map<QueryClassId, uint64_t> io;
  uint64_t total = 0;
  for (int i = 0; i < 4000; ++i) {
    QueryInstance q;
    q.app = app.id;
    q.tmpl = &app.templates[app.SampleTemplateIndex(rng)];
    const ExecutionCounters c = engine.Execute(q);
    if (i < 1000) continue;  // warm-up
    io[q.tmpl->id] += c.io_requests;
    total += c.io_requests;
  }
  return total > 0 ? static_cast<double>(io[kRubisSearchItemsByRegion]) /
                         static_cast<double>(total)
                   : 0.0;
}

}  // namespace

int main() {
  using namespace fglb::bench;

  PrintHeader("Table 3: Effect of I/O contention among VM domains");

  const double sibr_share = SibrIoShare();
  std::printf("SearchItemsByRegion share of RUBiS I/O requests: %.0f%% "
              "(paper: 87%%)\n\n",
              sibr_share * 100);

  const Row alone = RunScenario(0);
  const Row contended = RunScenario(1);
  std::string actions;
  const Row retuned = RunScenario(2, &actions);

  std::printf("%-34s  %12s  %12s\n", "placement (RUBiS-1 measured)",
              "latency_s", "tput_qps");
  std::printf("%-34s  %12.2f  %12.1f\n", "RUBiS alone (dom2 idle)",
              alone.latency, alone.throughput);
  std::printf("%-34s  %12.2f  %12.1f\n", "RUBiS + RUBiS (both domains)",
              contended.latency, contended.throughput);
  std::printf("%-34s  %12.2f  %12.1f\n", "RUBiS + RUBiS (controller acted)",
              retuned.latency, retuned.throughput);
  std::printf("\npaper:  alone 1.5s / 97 WIPS; contended 4.8s / 30 WIPS; "
              "after removing SIBR 1.5s / 95 WIPS\n");

  PrintSection("controller actions in the retuned run");
  std::printf("%s", actions.c_str());

  PrintSection("shape check vs paper");
  const bool collapse = contended.throughput < 0.6 * alone.throughput &&
                        contended.latency > 2.0 * alone.latency;
  const bool recovery = retuned.throughput > 0.8 * alone.throughput &&
                        retuned.latency < 0.6 * contended.latency;
  const bool io_action = actions.find("io_") != std::string::npos ||
                         actions.find("class=4") != std::string::npos;
  std::printf("co-location collapses RUBiS-1 (tput %.1f -> %.1f, latency "
              "%.2f -> %.2f): %s\n",
              alone.throughput, contended.throughput, alone.latency,
              contended.latency, collapse ? "yes" : "no");
  std::printf("I/O-rate-driven re-placement restores it (%.1f qps, %.2fs): "
              "%s\n",
              retuned.throughput, retuned.latency, recovery ? "yes" : "no");
  std::printf("the controller's action targeted the I/O-heavy context: %s\n",
              io_action ? "yes" : "no");
  const bool shape_holds =
      sibr_share > 0.5 && collapse && recovery && io_action;
  std::printf("shape %s\n", shape_holds ? "HOLDS" : "DOES NOT HOLD");
  return shape_holds ? 0 : 1;
}
