// DES kernel benchmark: the calendar-queue scheduler vs the legacy
// binary-heap queue, measured two ways. (1) A hold-model microbench —
// a fixed event population where every execution reschedules itself at
// now + U(0,1) — isolates raw queue throughput (events/sec) at small
// and million-entry populations. (2) The overload scenario end to end
// under both queue disciplines reports engine page accesses per wall
// second; BENCH_overload's JSON historically logged completions/sec
// (~170k at 3x) under that field name, and the acceptance target is
// >= 10x that figure in true accesses/sec. A third configuration runs
// overload at 100x clients (90k, batched cohorts) and must finish
// faster than real time (simulated seconds / wall seconds > 1).
// Emits BENCH_des_kernel.json.
//
//   ./build/bench/bench_des_kernel [output.json] [smoke]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "scenarios/harness.h"
#include "sim/simulator.h"
#include "workload/capture_hooks.h"
#include "workload/tpcw.h"

namespace {

using namespace fglb;

constexpr uint64_t kSeed = 31;
// Matches bench_overload: one replica saturates near 300 closed-loop
// TPC-W clients, so 3x is genuine overload.
constexpr double kBaselineClients = 300;
// BENCH_overload's historical 3.0x_admission_off "accesses_per_sec"
// (really completions per wall second) — the speedup denominator.
constexpr double kOverloadBaselinePerSec = 170000;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const char* QueueName(Simulator::QueueKind kind) {
  return kind == Simulator::QueueKind::kCalendar ? "calendar" : "heap";
}

// Hold model: `population` pending events at all times; each execution
// draws a uniform hold time and reschedules itself until the shared
// budget runs out. Returns executed events per wall second.
double HoldModelEventsPerSec(Simulator::QueueKind kind, uint64_t population,
                             uint64_t budget) {
  Simulator sim(kind);
  Rng rng(kSeed);
  struct Chain {
    Simulator* sim;
    Rng* rng;
    uint64_t* budget;
    void operator()() const {
      if (*budget == 0) return;
      --*budget;
      sim->ScheduleAfter(rng->NextDouble(), *this);
    }
  };
  for (uint64_t i = 0; i < population; ++i) {
    sim.ScheduleAfter(rng.NextDouble(), Chain{&sim, &rng, &budget});
  }
  const double start = Now();
  sim.RunToCompletion();
  const double wall = Now() - start;
  return wall > 0 ? static_cast<double>(sim.executed_events()) / wall : 0;
}

// Counts every engine page access (the work unit the end-to-end rate
// is measured in) through the capture hook the replay subsystem uses.
class AccessCounter : public ExecutionRecorder {
 public:
  void OnExecution(int, ClassKey,
                   const std::vector<PageAccess>& accesses) override {
    accesses_ += accesses.size();
  }
  uint64_t accesses() const { return accesses_; }

 private:
  uint64_t accesses_ = 0;
};

struct EndToEnd {
  double wall_ms = 0;
  uint64_t completions = 0;
  uint64_t accesses = 0;
  uint64_t events = 0;
  double sim_seconds = 0;
};

// The overload scenario (bench_overload's topology) under a chosen
// queue discipline, client scale, and emulation mode.
EndToEnd RunOverload(Simulator::QueueKind kind, double clients,
                     double duration_seconds, bool cohort,
                     bool admission_on) {
  SelectiveRetuner::Config config;
  config.enable_actions = false;  // frozen topology: measure the kernel
  ClusterHarness harness(config, /*observability=*/false, kind);
  harness.AddServers(1);
  Scheduler* tpcw = harness.AddApplication(MakeTpcw());
  tpcw->AddReplica(harness.resources().CreateReplica(
      harness.resources().servers()[0].get(), 8192));
  if (admission_on) harness.EnableAdmission();
  ClientEmulator::Options emu;
  emu.cohort = cohort;
  harness.AddConstantClients(tpcw, clients, kSeed, emu);
  AccessCounter counter;
  harness.AttachRecorders(nullptr, &counter);

  const double start = Now();
  harness.Start();
  harness.RunFor(duration_seconds);
  EndToEnd out;
  out.wall_ms = 1000 * (Now() - start);
  out.completions = tpcw->total_completed();
  out.accesses = counter.accesses();
  out.events = harness.sim().executed_events();
  out.sim_seconds = duration_seconds;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      argc > 1 ? argv[1] : "BENCH_des_kernel.json";
  const bool smoke = argc > 2 && std::strcmp(argv[2], "smoke") == 0;

  bench::PrintHeader("DES kernel: calendar queue vs legacy binary heap");
  bench::BenchJsonWriter json;

  // --- hold-model microbench -------------------------------------
  const uint64_t hold_budget = smoke ? 200000 : 4000000;
  const uint64_t small_pop = smoke ? 2048 : 8192;
  double events_heap = 0, events_calendar = 0;
  std::printf("\nhold model, %llu-event population, %llu events:\n",
              static_cast<unsigned long long>(small_pop),
              static_cast<unsigned long long>(hold_budget));
  for (const auto kind : {Simulator::QueueKind::kLegacyHeap,
                          Simulator::QueueKind::kCalendar}) {
    const double rate = HoldModelEventsPerSec(kind, small_pop, hold_budget);
    (kind == Simulator::QueueKind::kCalendar ? events_calendar
                                             : events_heap) = rate;
    char name[48];
    std::snprintf(name, sizeof(name), "hold_%s", QueueName(kind));
    json.Add(name, 1000 * static_cast<double>(hold_budget) / rate,
             static_cast<double>(hold_budget));
    std::printf("  %-10s %12.0f events/sec\n", QueueName(kind), rate);
  }
  if (!smoke) {
    // Million-entry queue: the population a 1M-client scenario keeps
    // pending. Heap pops cost O(log n) here; the calendar stays O(1).
    const uint64_t big_pop = 1000000;
    const uint64_t big_budget = 4000000;
    std::printf("hold model, %llu-event population, %llu events:\n",
                static_cast<unsigned long long>(big_pop),
                static_cast<unsigned long long>(big_budget));
    for (const auto kind : {Simulator::QueueKind::kLegacyHeap,
                            Simulator::QueueKind::kCalendar}) {
      const double rate = HoldModelEventsPerSec(kind, big_pop, big_budget);
      char name[48];
      std::snprintf(name, sizeof(name), "hold_1m_%s", QueueName(kind));
      json.Add(name, 1000 * static_cast<double>(big_budget) / rate,
               static_cast<double>(big_budget));
      std::printf("  %-10s %12.0f events/sec\n", QueueName(kind), rate);
    }
  }
  json.AddField("events_per_sec_heap", events_heap);
  json.AddField("events_per_sec_calendar", events_calendar);
  const bool calendar_not_slower = events_calendar >= events_heap;
  json.AddField("calendar_not_slower", calendar_not_slower ? 1 : 0);

  // --- end-to-end overload, old vs new queue ---------------------
  const double duration = smoke ? 30 : 300;
  const double clients = 3.0 * kBaselineClients;
  std::printf("\noverload 3x (%.0f clients, %.0f sim seconds, admission "
              "off):\n",
              clients, duration);
  double accesses_per_sec = 0, completions_per_sec = 0, heap_wall = 0,
         calendar_wall = 0;
  for (const auto kind : {Simulator::QueueKind::kLegacyHeap,
                          Simulator::QueueKind::kCalendar}) {
    const EndToEnd out = RunOverload(kind, clients, duration,
                                     /*cohort=*/false,
                                     /*admission_on=*/false);
    char name[48];
    std::snprintf(name, sizeof(name), "overload_3x_%s", QueueName(kind));
    json.Add(name, out.wall_ms, static_cast<double>(out.accesses));
    const double wall_sec = out.wall_ms / 1000.0;
    std::printf("  %-10s %8.1f ms  %12.0f accesses/sec  %10.0f "
                "completions/sec\n",
                QueueName(kind), out.wall_ms,
                static_cast<double>(out.accesses) / wall_sec,
                static_cast<double>(out.completions) / wall_sec);
    if (kind == Simulator::QueueKind::kCalendar) {
      calendar_wall = out.wall_ms;
      accesses_per_sec = static_cast<double>(out.accesses) / wall_sec;
      completions_per_sec =
          static_cast<double>(out.completions) / wall_sec;
    } else {
      heap_wall = out.wall_ms;
    }
  }
  json.AddField("accesses_per_sec", accesses_per_sec);
  json.AddField("completions_per_sec", completions_per_sec);
  json.AddField("end_to_end_queue_speedup",
                calendar_wall > 0 ? heap_wall / calendar_wall : 0);
  const double speedup = accesses_per_sec / kOverloadBaselinePerSec;
  json.AddField("speedup_vs_overload_baseline", speedup);

  // --- overload at 100x clients, batched cohorts -----------------
  const double scale = smoke ? 10 : 100;
  const double big_clients = scale * clients;
  const double big_duration = smoke ? 20 : 120;
  const EndToEnd big =
      RunOverload(Simulator::QueueKind::kCalendar, big_clients,
                  big_duration, /*cohort=*/true, /*admission_on=*/true);
  const double big_wall_sec = big.wall_ms / 1000.0;
  const double sim_wall_ratio =
      big_wall_sec > 0 ? big.sim_seconds / big_wall_sec : 0;
  json.Add("overload_100x", big.wall_ms, static_cast<double>(big.accesses));
  json.AddField("sim_wall_ratio_100x", sim_wall_ratio);
  std::printf("\noverload %.0fx (%.0f clients, cohorts, admission on): "
              "%.1f ms wall for %.0f sim seconds (%.1fx real time), "
              "%llu events\n",
              scale / 3.0 * 3, big_clients, big.wall_ms, big.sim_seconds,
              sim_wall_ratio, static_cast<unsigned long long>(big.events));

  json.WriteTo(json_path);

  std::printf("\ncalendar >= heap on hold model: %s\n",
              calendar_not_slower ? "yes" : "NO");
  std::printf("accesses/sec vs %.0fk baseline: %.2fx (target >= 10x)\n",
              kOverloadBaselinePerSec / 1000, speedup);
  std::printf("100x overload vs real time: %.1fx (target > 1x)\n",
              sim_wall_ratio);
  if (smoke) return calendar_not_slower ? 0 : 1;
  const bool holds =
      calendar_not_slower && speedup >= 10 && sim_wall_ratio > 1;
  std::printf("shape %s\n", holds ? "HOLDS" : "VIOLATED");
  return holds ? 0 : 1;
}
