// Ablation A1: outlier-detection design choices. The paper's detector
// weights each current/stable metric ratio by the class's share of the
// metric ("metric impact value") and fences at 1.5x/3x IQR. This bench
// re-runs the Fig. 4 (index drop) diagnosis snapshot under a sweep of
// fence multipliers, with and without weighting, and reports which
// classes each variant flags — precision/recall against the known root
// cause (BestSeller, class #8).

#include <cstdio>
#include <set>

#include "bench/bench_util.h"
#include "core/log_analyzer.h"
#include "engine/database_engine.h"
#include "workload/tpcw.h"

namespace {

using namespace fglb;

// Builds the diagnosis inputs the Fig. 4 scenario produces: a stable
// snapshot from the indexed workload, then a violating snapshot after
// the index drop, both measured on one engine.
struct Scenario {
  std::map<ClassKey, MetricVector> current;
  StableStateStore stable;
  ClassKey root_cause;
};

Scenario BuildIndexDropScenario() {
  DiskModel disk;
  DatabaseEngine::Options options;
  options.buffer_pool_pages = 8192;
  options.seed = 77;
  DatabaseEngine engine("ablation", options, &disk);

  const ApplicationSpec indexed = MakeTpcw();
  TpcwOptions no_index_options;
  no_index_options.o_date_index = false;
  const ApplicationSpec degraded = MakeTpcw(no_index_options);

  Rng rng(555);
  auto run_mix = [&engine, &rng](const ApplicationSpec& app, int queries) {
    for (int i = 0; i < queries; ++i) {
      QueryInstance q;
      q.app = app.id;
      q.tmpl = &app.templates[app.SampleTemplateIndex(rng)];
      const ExecutionCounters c = engine.Execute(q);
      engine.RecordCompletion(q.class_key(), c.cpu_seconds + c.io_seconds,
                              c);
    }
  };

  Scenario scenario;
  scenario.root_cause = MakeClassKey(indexed.id, kTpcwBestSeller);
  // Warm + stable interval.
  run_mix(indexed, 3000);
  engine.stats().EndInterval(10.0);
  run_mix(indexed, 2000);
  const auto stable_snapshot = engine.stats().EndInterval(10.0);
  for (const auto& [key, vec] : stable_snapshot) {
    scenario.stable.Update(key, vec, 0.0);
  }
  // Index dropped; violating interval.
  run_mix(degraded, 2000);
  scenario.current = engine.stats().EndInterval(10.0);
  return scenario;
}

}  // namespace

int main() {
  using namespace fglb::bench;

  PrintHeader("Ablation A1: outlier fences and metric-impact weighting "
              "(index-drop diagnosis)");

  const Scenario scenario = BuildIndexDropScenario();

  struct Variant {
    const char* label;
    double mild;
    double extreme;
    bool weights;
  };
  const Variant variants[] = {
      {"fence 1.0x, weighted", 1.0, 2.0, true},
      {"fence 1.5x, weighted (paper)", 1.5, 3.0, true},
      {"fence 3.0x, weighted", 3.0, 6.0, true},
      {"fence 6.0x, weighted", 6.0, 12.0, true},
      {"fence 1.5x, unweighted", 1.5, 3.0, false},
      {"fence 3.0x, unweighted", 3.0, 6.0, false},
  };

  std::printf("%-30s  %9s  %10s  %8s  %s\n", "variant", "contexts",
              "mem_ctxs", "root?", "flagged classes");
  bool paper_variant_ok = false;
  int paper_contexts = 0;
  for (const Variant& variant : variants) {
    OutlierConfig config;
    config.mild_fence = variant.mild;
    config.extreme_fence = variant.extreme;
    config.use_weights = variant.weights;
    OutlierDetector detector(config);
    const OutlierReport report =
        detector.Detect(scenario.current, scenario.stable);
    const auto contexts = report.OutlierContexts();
    const auto memory = report.MemoryProblemContexts();
    const bool hit = memory.contains(scenario.root_cause);
    std::string flagged;
    for (ClassKey key : contexts) {
      flagged += "#" + std::to_string(ClassOf(key)) + " ";
    }
    std::printf("%-30s  %9zu  %10zu  %8s  %s\n", variant.label,
                contexts.size(), memory.size(), hit ? "yes" : "NO",
                flagged.c_str());
    if (std::string(variant.label).find("paper") != std::string::npos) {
      paper_variant_ok = hit;
      paper_contexts = static_cast<int>(contexts.size());
    }
  }

  PrintSection("shape check");
  std::printf("the paper's setting (1.5x IQR, weighted) finds the root "
              "cause among a handful of contexts: %s (%d contexts)\n",
              paper_variant_ok && paper_contexts <= 8 ? "yes" : "no",
              paper_contexts);
  const bool shape_holds = paper_variant_ok && paper_contexts <= 8;
  std::printf("shape %s\n", shape_holds ? "HOLDS" : "DOES NOT HOLD");
  return shape_holds ? 0 : 1;
}
