// Reproduces Figure 4 of the paper: dropping the O_DATE index. TPC-W
// runs alone and stabilizes; the index is then dropped, turning
// BestSeller's order_line access into a large unindexed scan. The
// figure plots, per query class, the ratio of each measured metric to
// its stable-state average for (a) latency, (b) throughput, (c) buffer
// misses and (d) read-aheads. The paper's §5.3 then narrates the
// diagnosis: ~6 mild outliers on memory counters (incl. BestSeller #8
// and NewProducts #9), MRC recomputation narrowing to BestSeller only,
// and a memory quota enforced for it.

#include <cstdio>
#include <set>

#include "bench/bench_util.h"
#include "scenarios/harness.h"
#include "workload/tpcw.h"

int main() {
  using namespace fglb;
  using namespace fglb::bench;

  PrintHeader("Figure 4: Dropping the O_DATE index");

  SelectiveRetuner::Config config;
  config.interval_seconds = 10;
  ClusterHarness harness(config);
  harness.AddServers(3);
  Scheduler* tpcw = harness.AddApplication(MakeTpcw());
  Replica* replica = harness.resources().CreateReplica(
      harness.resources().servers()[0].get(), 8192);
  tpcw->AddReplica(replica);
  harness.AddConstantClients(tpcw, 150, /*seed=*/2025);
  harness.Start();

  // Phase 1: stable operation; signatures and MRC baselines form.
  harness.RunFor(600);
  const auto before = harness.Summarize(tpcw->app().id, 300, 600);
  std::printf("stable phase: avg latency %.3f s, throughput %.1f q/s\n",
              before.avg_latency, before.avg_throughput);

  // Phase 2: drop the index (swap BestSeller's plan in place).
  TpcwOptions no_index;
  no_index.o_date_index = false;
  const ApplicationSpec degraded = MakeTpcw(no_index);
  ApplicationSpec* live = harness.mutable_app(tpcw);
  for (auto& tmpl : live->templates) {
    if (tmpl.id == kTpcwBestSeller) {
      tmpl.components = degraded.FindTemplate(kTpcwBestSeller)->components;
    }
  }
  std::printf("t=600: O_DATE index dropped\n");
  harness.RunFor(300);
  const auto after = harness.Summarize(tpcw->app().id, 610, 900);
  std::printf("degraded phase: avg latency %.3f s, throughput %.1f q/s\n",
              after.avg_latency, after.avg_throughput);

  // First diagnosis after the drop carries the Fig. 4 ratios.
  const SelectiveRetuner::DiagnosisRecord* record = nullptr;
  for (const auto& d : harness.retuner().diagnoses()) {
    if (d.time > 600) {
      record = &d;
      break;
    }
  }
  if (record == nullptr) {
    std::printf("no diagnosis was recorded -- shape DOES NOT HOLD\n");
    return 1;
  }

  const Metric panels[] = {Metric::kLatency, Metric::kThroughput,
                           Metric::kBufferMisses, Metric::kReadAheads};
  const char* panel_names[] = {"(a) Latency", "(b) Throughput", "(c) Misses",
                               "(d) ReadAhead"};
  for (int p = 0; p < 4; ++p) {
    PrintSection(std::string("Fig 4") + panel_names[p] +
                 " -- current/stable ratio per query id");
    const auto it = record->outliers.ratios.find(panels[p]);
    if (it == record->outliers.ratios.end()) continue;
    std::printf("%8s  %10s\n", "query_id", "ratio");
    for (const auto& [key, ratio] : it->second) {
      std::printf("%8u  %10.3f\n", ClassOf(key), ratio);
    }
  }

  PrintSection("outlier contexts (memory counters)");
  const std::set<ClassKey> problems = record->outliers.MemoryProblemContexts();
  for (ClassKey key : problems) {
    std::printf("  query class %u%s\n", ClassOf(key),
                ClassOf(key) == kTpcwBestSeller  ? "  <- BestSeller (#8)"
                : ClassOf(key) == kTpcwNewProducts ? "  <- NewProducts (#9)"
                                                   : "");
  }

  PrintSection("MRC recomputation verdicts");
  for (const auto& s : record->memory.suspects) {
    std::printf("  suspect: class %u  %s\n", ClassOf(s.key),
                s.params.ToString().c_str());
  }
  for (const auto& c : record->memory.cleared) {
    std::printf("  cleared: class %u  %s\n", ClassOf(c.key),
                c.params.ToString().c_str());
  }

  PrintSection("actions taken");
  for (const auto& action : harness.retuner().actions()) {
    if (action.time <= 600) continue;
    std::printf("  t=%6.0f  [%s] %s\n", action.time,
                SelectiveRetuner::ActionKindName(action.kind),
                action.description.c_str());
  }

  PrintSection("shape check vs paper");
  const ClassKey bestseller = MakeClassKey(tpcw->app().id, kTpcwBestSeller);
  bool bestseller_flagged = problems.contains(bestseller);
  bool bestseller_suspect = false;
  for (const auto& s : record->memory.suspects) {
    bestseller_suspect |= s.key == bestseller;
  }
  int readahead_spikes = 0;
  if (record->outliers.ratios.contains(Metric::kReadAheads)) {
    for (const auto& [key, ratio] :
         record->outliers.ratios.at(Metric::kReadAheads)) {
      if (ratio > 10) ++readahead_spikes;
    }
  }
  bool fine_grained_action = false;
  for (const auto& action : harness.retuner().actions()) {
    if (action.time > 600 &&
        (action.kind == SelectiveRetuner::ActionKind::kQuotaEnforced ||
         action.kind == SelectiveRetuner::ActionKind::kClassRescheduled ||
         action.kind == SelectiveRetuner::ActionKind::kIoEviction)) {
      fine_grained_action = true;
    }
  }
  std::printf("paper: latency 600ms -> 2s; misses up broadly; read-aheads "
              "spike for few classes; ~6 mild outliers incl #8/#9; MRC "
              "narrows to BestSeller; quota enforced\n");
  std::printf("measured: latency %.2fs -> %.2fs (%.1fx), %d read-ahead "
              "spikes, %zu outlier contexts, BestSeller flagged: %s, "
              "BestSeller MRC-suspect: %s, fine-grained action: %s\n",
              before.avg_latency, after.avg_latency,
              after.avg_latency / std::max(before.avg_latency, 1e-9),
              readahead_spikes, problems.size(),
              bestseller_flagged ? "yes" : "no",
              bestseller_suspect ? "yes" : "no",
              fine_grained_action ? "yes" : "no");
  const bool shape_holds = after.avg_latency > 1.5 * before.avg_latency &&
                           bestseller_flagged && bestseller_suspect &&
                           readahead_spikes >= 1 && readahead_spikes <= 5 &&
                           fine_grained_action;
  std::printf("shape %s\n", shape_holds ? "HOLDS" : "DOES NOT HOLD");
  return shape_holds ? 0 : 1;
}
