// Capture & replay subsystem benchmark: what recording a full workload
// costs the live run, how fast the capture replays relative to living
// through the same simulated seconds, and how far the varint+delta
// capture encoding compresses below the legacy v1 fixed-width trace
// layout (24 bytes per page access). Emits BENCH_capture.json; the
// headline acceptance number is compression_ratio_vs_v1 >= 3.
//
//   ./build/bench/bench_capture [output.json]

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "replay/capture.h"
#include "replay/replayer.h"
#include "scenarios/harness.h"
#include "workload/rubis.h"
#include "workload/tpcw.h"

namespace {

using namespace fglb;

constexpr double kDurationSeconds = 300;
constexpr uint64_t kSeed = 1;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// The consolidation scenario (TPC-W steady + RUBiS stepping in at
// duration/3 on a shared replica): the densest access stream of the
// canned scenarios and the one the replay tests assert determinism on.
void Assemble(ClusterHarness* harness) {
  harness->AddServers(4);
  PhysicalServer* first = harness->resources().servers()[0].get();
  Scheduler* tpcw = harness->AddApplication(MakeTpcw());
  RubisOptions rubis_options;
  rubis_options.app_id = 2;
  Scheduler* rubis = harness->AddApplication(MakeRubis(rubis_options));
  Replica* shared = harness->resources().CreateReplica(first, 8192);
  tpcw->AddReplica(shared);
  rubis->AddReplica(shared);
  harness->AddConstantClients(tpcw, 120, kSeed);
  harness->AddClients(
      rubis,
      std::make_unique<StepLoad>(std::vector<std::pair<SimTime, double>>{
          {kDurationSeconds / 3, 45}}),
      kSeed + 1);
}

// One live run; when `capture_path` is non-empty the capture writer is
// attached and its stream counters are returned through *writer_out.
double RunLive(const std::string& capture_path,
               std::unique_ptr<CaptureWriter>* writer_out) {
  ClusterHarness harness;
  Assemble(&harness);
  std::unique_ptr<CaptureWriter> writer;
  if (!capture_path.empty()) {
    writer = std::make_unique<CaptureWriter>(&harness.sim());
    CaptureInfo info;
    info.seed = kSeed;
    info.fault_seed = 1;
    info.scenario = "consolidation";
    info.duration_seconds = kDurationSeconds;
    info.interval_seconds = harness.retuner().config().interval_seconds;
    info.mrc_sample_rate = harness.retuner().config().mrc.sample_rate;
    std::string error;
    if (!writer->Open(capture_path, info, SnapshotTopology(harness),
                      &error)) {
      std::fprintf(stderr, "bench: %s\n", error.c_str());
      std::exit(1);
    }
    harness.AttachRecorders(writer.get(), writer.get());
  }
  const auto start = std::chrono::steady_clock::now();
  harness.Start();
  harness.RunFor(kDurationSeconds);
  const double ms = MsSince(start);
  if (writer != nullptr &&
      !writer->Finalize(harness.retuner().actions(),
                        harness.retuner().samples())) {
    std::fprintf(stderr, "bench: finalize failed\n");
    std::exit(1);
  }
  if (writer_out != nullptr) *writer_out = std::move(writer);
  return ms;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_capture.json";
  bench::PrintHeader("Workload capture & deterministic replay");
  std::printf("consolidation scenario, %.0f simulated seconds\n",
              kDurationSeconds);

  const std::string capture_path =
      (std::filesystem::temp_directory_path() / "bench_capture.fglbcap")
          .string();
  bench::BenchJsonWriter json;

  // 1. Live baseline, no recording.
  const double live_ms = RunLive("", nullptr);
  std::printf("\nlive run, no capture:        %8.1f ms\n", live_ms);

  // 2. Live run with the capture writer attached.
  std::unique_ptr<CaptureWriter> writer;
  const double capture_ms = RunLive(capture_path, &writer);
  const double accesses = static_cast<double>(writer->accesses_recorded());
  const double capture_bytes = static_cast<double>(writer->bytes_written());
  json.Add("live_no_capture", live_ms, accesses);
  json.Add("live_with_capture", capture_ms, accesses);
  std::printf("live run, capture attached:  %8.1f ms  (%.1f%% overhead)\n",
              capture_ms, 100.0 * (capture_ms - live_ms) / live_ms);
  std::printf("  recorded %llu arrivals, %llu executions, %.0f accesses, "
              "%.0f bytes\n",
              static_cast<unsigned long long>(writer->arrivals_recorded()),
              static_cast<unsigned long long>(writer->executions_recorded()),
              accesses, capture_bytes);

  // 3. Deterministic replay of the capture.
  Capture capture;
  std::string error;
  if (!ReadCapture(capture_path, &capture, &error)) {
    std::fprintf(stderr, "bench: %s\n", error.c_str());
    return 1;
  }
  ReplayRunner runner(&capture, ReplayBuildOptions{});
  if (!runner.Build(&error)) {
    std::fprintf(stderr, "bench: %s\n", error.c_str());
    return 1;
  }
  const auto replay_start = std::chrono::steady_clock::now();
  if (!runner.Run(&error)) {
    std::fprintf(stderr, "bench: replay diverged: %s\n", error.c_str());
    return 1;
  }
  const double replay_ms = MsSince(replay_start);
  json.Add("replay", replay_ms, accesses);
  std::printf("deterministic replay:        %8.1f ms  (%.2fx live)\n",
              replay_ms, replay_ms / live_ms);

  // 4. Compression vs the v1 fixed-width layout: 8-byte magic + 8-byte
  // count + 24 bytes per access (u64 class_key, u64 page, u8 flags,
  // 7 pad), which is what WriteTrace v1 would have spent on the same
  // access stream.
  const double v1_bytes = 16.0 + 24.0 * accesses;
  const double ratio = v1_bytes / capture_bytes;
  const double bytes_per_access = capture_bytes / accesses;
  std::printf("\ncapture size:                %8.0f bytes "
              "(%.2f bytes/access)\n",
              capture_bytes, bytes_per_access);
  std::printf("v1 fixed-width equivalent:   %8.0f bytes\n", v1_bytes);
  std::printf("compression ratio vs v1:     %8.2fx\n", ratio);

  json.AddField("capture_bytes", capture_bytes);
  json.AddField("v1_equivalent_bytes", v1_bytes);
  json.AddField("compression_ratio_vs_v1", ratio);
  json.AddField("bytes_per_access", bytes_per_access);
  json.AddField("capture_overhead_pct",
                100.0 * (capture_ms - live_ms) / live_ms);
  json.AddField("replay_vs_live_ratio", replay_ms / live_ms);
  json.WriteTo(json_path);

  std::remove(capture_path.c_str());
  const bool compresses = ratio >= 3.0;
  std::printf("\ncompression >= 3x vs v1: %s\n", compresses ? "yes" : "NO");
  std::printf("shape %s\n", compresses ? "HOLDS" : "VIOLATED");
  return compresses ? 0 : 1;
}
