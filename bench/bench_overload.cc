// Overload-protection benchmark: goodput (completions inside the SLA
// per simulated second) with admission control on vs off, at 1.5x and
// 3x one replica's saturation client population. The paper's
// load balancer assumes the scheduler can always queue; this measures
// what the CoDel-style shedding layer buys back when it cannot. Emits
// BENCH_overload.json; the headline acceptance number is
// goodput_ratio_3x >= 1 (admission on must not lose goodput at 3x).
//
//   ./build/bench/bench_overload [output.json]

#include <chrono>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "scenarios/harness.h"
#include "workload/tpcw.h"

namespace {

using namespace fglb;

constexpr double kDurationSeconds = 300;
// One replica saturates near 300 closed-loop clients (~310
// completions/s at TPC-W's 1s think time), so the factors below are
// genuine overload multiples, not just bigger comfortable populations.
constexpr double kBaselineClients = 300;
constexpr uint64_t kSeed = 31;

struct Outcome {
  double goodput = 0;     // within-SLA completions per simulated second
  double throughput = 0;  // completions per simulated second
  double shed_share = 0;  // shed / (completed + shed)
  double wall_ms = 0;
};

Outcome Run(double load_factor, bool admission_on) {
  SelectiveRetuner::Config config;
  config.enable_actions = false;  // frozen topology: admission only
  ClusterHarness harness(config, /*observability=*/false);
  harness.AddServers(1);
  Scheduler* tpcw = harness.AddApplication(MakeTpcw());
  Replica* replica = harness.resources().CreateReplica(
      harness.resources().servers()[0].get(), 8192);
  tpcw->AddReplica(replica);
  if (admission_on) harness.EnableAdmission();
  harness.AddConstantClients(tpcw, load_factor * kBaselineClients, kSeed);

  const auto start = std::chrono::steady_clock::now();
  harness.Start();
  harness.RunFor(kDurationSeconds);
  Outcome out;
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  out.goodput =
      static_cast<double>(tpcw->total_sla_ok()) / kDurationSeconds;
  out.throughput =
      static_cast<double>(tpcw->total_completed()) / kDurationSeconds;
  const double offered = static_cast<double>(tpcw->total_completed()) +
                         static_cast<double>(tpcw->total_shed());
  out.shed_share =
      offered > 0 ? static_cast<double>(tpcw->total_shed()) / offered : 0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_overload.json";
  bench::PrintHeader("Overload protection: goodput with admission on vs off");
  std::printf("TPC-W, 1 replica, %.0f simulated seconds, baseline %.0f "
              "clients\n\n",
              kDurationSeconds, kBaselineClients);

  bench::BenchJsonWriter json;
  std::printf("%-22s %10s %10s %10s\n", "configuration", "goodput/s",
              "compl/s", "shed%");
  double ratio_3x = 0;
  double goodput_on_3x = 0, goodput_off_3x = 0;
  for (const double factor : {1.5, 3.0}) {
    const Outcome off = Run(factor, false);
    const Outcome on = Run(factor, true);
    char name[48];
    std::snprintf(name, sizeof(name), "%.1fx_admission_off", factor);
    json.Add(name, off.wall_ms, off.throughput * kDurationSeconds);
    std::printf("%-22s %10.1f %10.1f %9.1f%%\n", name, off.goodput,
                off.throughput, 100 * off.shed_share);
    std::snprintf(name, sizeof(name), "%.1fx_admission_on", factor);
    json.Add(name, on.wall_ms, on.throughput * kDurationSeconds);
    std::printf("%-22s %10.1f %10.1f %9.1f%%\n", name, on.goodput,
                on.throughput, 100 * on.shed_share);

    char field[48];
    std::snprintf(field, sizeof(field), "goodput_off_%.1fx", factor);
    json.AddField(field, off.goodput);
    std::snprintf(field, sizeof(field), "goodput_on_%.1fx", factor);
    json.AddField(field, on.goodput);
    if (factor == 3.0) {
      goodput_off_3x = off.goodput;
      goodput_on_3x = on.goodput;
      ratio_3x = off.goodput > 0 ? on.goodput / off.goodput : 0;
    }
  }
  json.AddField("goodput_ratio_3x", ratio_3x);
  json.WriteTo(json_path);

  std::printf("\ngoodput at 3x, admission on vs off: %.1f vs %.1f "
              "(%.2fx)\n",
              goodput_on_3x, goodput_off_3x, ratio_3x);
  const bool holds = goodput_on_3x >= goodput_off_3x;
  std::printf("admission >= unprotected goodput at 3x: %s\n",
              holds ? "yes" : "NO");
  std::printf("shape %s\n", holds ? "HOLDS" : "VIOLATED");
  return holds ? 0 : 1;
}
