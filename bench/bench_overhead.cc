// Overhead of the diagnosis pipeline itself. The paper claims the
// technique "is transparent to clients and has negligible overhead";
// this google-benchmark binary quantifies the controller-side costs:
// IQR outlier detection over an application's classes, the quota-plan
// fit test, and a full MRC recomputation from a per-class window (the
// only expensive step, which is why it runs on demand rather than every
// interval).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>

#include "bench_util.h"
#include "common/random.h"
#include "core/outlier_detector.h"
#include "core/quota_planner.h"
#include "mrc/miss_ratio_curve.h"
#include "scenarios/harness.h"
#include "workload/rubis.h"
#include "workload/tpcw.h"

namespace {

using namespace fglb;

std::map<ClassKey, MetricVector> MakeSnapshot(int classes, Rng& rng) {
  std::map<ClassKey, MetricVector> snapshot;
  for (int i = 1; i <= classes; ++i) {
    MetricVector v{};
    for (Metric m : kAllMetrics) {
      At(v, m) = rng.UniformDouble(1, 1000);
    }
    snapshot[MakeClassKey(1, static_cast<uint32_t>(i))] = v;
  }
  return snapshot;
}

void BM_OutlierDetect(benchmark::State& state) {
  const int classes = static_cast<int>(state.range(0));
  Rng rng(1);
  const auto current = MakeSnapshot(classes, rng);
  StableStateStore stable;
  for (const auto& [key, vec] : MakeSnapshot(classes, rng)) {
    stable.Update(key, vec, 0.0);
  }
  OutlierDetector detector;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.Detect(current, stable));
  }
}

void BM_QuotaPlan(benchmark::State& state) {
  Rng rng(2);
  std::vector<ClassMemoryProfile> problem, others;
  for (uint32_t i = 1; i <= 4; ++i) {
    ClassMemoryProfile p;
    p.key = MakeClassKey(1, i);
    p.params.acceptable_memory_pages = rng.NextUint64(4000);
    p.params.total_memory_pages = p.params.acceptable_memory_pages + 500;
    problem.push_back(p);
  }
  for (uint32_t i = 10; i <= 30; ++i) {
    ClassMemoryProfile p;
    p.key = MakeClassKey(1, i);
    p.params.acceptable_memory_pages = rng.NextUint64(800);
    p.params.total_memory_pages = p.params.acceptable_memory_pages + 100;
    others.push_back(p);
  }
  QuotaPlanner planner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.Plan(8192, problem, others));
  }
}

void BM_MrcRecompute(benchmark::State& state) {
  // Full per-class window, as DiagnoseMemory recomputes it.
  Rng rng(3);
  ZipfGenerator zipf(6000, 0.6);
  std::vector<PageId> window;
  for (int i = 0; i < 30000; ++i) {
    window.push_back(MakePageId(1, ScrambleToDomain(zipf.Sample(rng), 6000)));
  }
  MrcConfig config;
  for (auto _ : state) {
    const MissRatioCurve curve = MissRatioCurve::FromTrace(window);
    benchmark::DoNotOptimize(curve.ComputeParameters(config));
  }
}

BENCHMARK(BM_OutlierDetect)->Arg(14)->Arg(26)->Arg(100)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_QuotaPlan)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MrcRecompute)->Unit(benchmark::kMillisecond);

// Wall-clock of a full consolidation-style scenario with the metrics
// registry and null-check instrumentation either wired in or absent.
// Tracing stays off in both runs (a trace file is I/O-bound and opt-in)
// so the ratio isolates the always-on instrumentation cost.
double RunScenario(bool observability) {
  SelectiveRetuner::Config config;
  config.mrc.analysis_threads = 1;
  ClusterHarness harness(config, observability);
  harness.AddServers(2);
  PhysicalServer* first = harness.resources().servers()[0].get();
  Scheduler* tpcw = harness.AddApplication(MakeTpcw());
  RubisOptions rubis_options;
  rubis_options.app_id = 2;
  Scheduler* rubis = harness.AddApplication(MakeRubis(rubis_options));
  Replica* shared = harness.resources().CreateReplica(first, 8192);
  tpcw->AddReplica(shared);
  rubis->AddReplica(shared);
  harness.AddConstantClients(tpcw, 60, 1);
  harness.AddConstantClients(rubis, 30, 2);
  harness.Start();
  const auto start = std::chrono::steady_clock::now();
  harness.RunFor(300);
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Re-times the pipeline stages outside google-benchmark and writes
// BENCH_overhead.json so the perf trajectory of the diagnosis path is
// machine-readable across commits.
void WriteJsonSummary(const std::string& path) {
  bench::BenchJsonWriter json;
  const auto time_best = [](int reps, auto&& fn) {
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
      const auto start = std::chrono::steady_clock::now();
      fn();
      best = std::min(
          best, std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count());
    }
    return best;
  };

  {
    Rng rng(1);
    const auto current = MakeSnapshot(100, rng);
    StableStateStore stable;
    for (const auto& [key, vec] : MakeSnapshot(100, rng)) {
      stable.Update(key, vec, 0.0);
    }
    OutlierDetector detector;
    const double ms = time_best(20, [&] {
      benchmark::DoNotOptimize(detector.Detect(current, stable));
    });
    json.Add("outlier_detect_100_classes", ms, 100);
  }
  {
    Rng rng(3);
    ZipfGenerator zipf(6000, 0.6);
    std::vector<PageId> window;
    for (int i = 0; i < 30000; ++i) {
      window.push_back(
          MakePageId(1, ScrambleToDomain(zipf.Sample(rng), 6000)));
    }
    MrcConfig config;
    const double exact_ms = time_best(5, [&] {
      const MissRatioCurve curve = MissRatioCurve::FromTrace(window);
      benchmark::DoNotOptimize(curve.ComputeParameters(config));
    });
    json.Add("mrc_recompute_exact_30k", exact_ms, 30000);

    MrcConfig sampled_config;
    sampled_config.sample_rate = 1.0 / 8;
    const SpanPair<PageId> view{std::span<const PageId>(window)};
    const double sampled_ms = time_best(5, [&] {
      const MissRatioCurve curve =
          MissRatioCurve::FromTrace(view, sampled_config);
      benchmark::DoNotOptimize(curve.ComputeParameters(sampled_config));
    });
    json.Add("mrc_recompute_sampled_8x_30k", sampled_ms, 30000);
  }
  {
    // End-to-end instrumentation overhead: metrics on vs fully off,
    // tracing off in both. The ratio is the headline number
    // (ISSUE target: < 1.02).
    const auto time_best = [](int reps, auto&& fn) {
      double best = 1e300;
      for (int r = 0; r < reps; ++r) best = std::min(best, fn());
      return best;
    };
    const double off_ms = time_best(3, [] { return RunScenario(false); });
    const double on_ms = time_best(3, [] { return RunScenario(true); });
    json.Add("scenario_300s_observability_off", off_ms, 0);
    json.Add("scenario_300s_observability_on", on_ms, 0);
    json.AddField("observability_enabled_vs_disabled",
                  off_ms > 0 ? on_ms / off_ms : 0);
  }
  json.WriteTo(path);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  WriteJsonSummary("BENCH_overhead.json");
  return 0;
}
