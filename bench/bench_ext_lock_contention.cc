// Extension E8 (the paper's §7 future work): "outlier detection is a
// promising approach for narrowing down ... lock contention or deadlock
// situations". We build the scenario: an application whose update
// classes commit against the same hot stripes; one class (a buggy
// deployment) starts holding its commit locks two orders of magnitude
// longer. Throughput collapses for *other* writer classes too. The
// same outlier pipeline that diagnoses memory problems pinpoints the
// culprit through the lock-wait metric, while MRC recomputation shows
// no memory change (correctly refusing the memory explanation).

#include <cstdio>

#include "bench/bench_util.h"
#include "scenarios/harness.h"

#include "workload/oltp.h"

using namespace fglb;


int main() {
  using namespace fglb::bench;

  PrintHeader("Extension: lock-contention anomaly surfaced by outlier "
              "detection (paper §7 future work)");

  SelectiveRetuner::Config config;
  config.enable_actions = false;  // detection study, not actuation
  ClusterHarness harness(config);
  harness.AddServers(1);
  OltpOptions oltp_options;
  oltp_options.app_id = 1;
  Scheduler* oltp = harness.AddApplication(MakeOltp(oltp_options));
  Replica* replica = harness.resources().CreateReplica(
      harness.resources().servers()[0].get(), 8192);
  oltp->AddReplica(replica);
  harness.AddConstantClients(oltp, 80, /*seed=*/71);
  harness.Start();

  harness.RunFor(400);
  const auto before = harness.Summarize(oltp->app().id, 200, 400);

  // The anomaly: class 1 (Transfer) starts holding its commit locks
  // ~1000x longer (a long-transaction bug).
  ApplicationSpec* live = harness.mutable_app(oltp);
  for (auto& tmpl : live->templates) {
    if (tmpl.id == kOltpTransfer) tmpl.commit_hold_seconds = 0.5;
  }
  std::printf("t=400: Transfer (class 1) begins holding commit locks "
              "500 ms\n");
  harness.RunFor(300);
  const auto after = harness.Summarize(oltp->app().id, 420, 700);

  std::printf("\napp latency %.3f s -> %.3f s, throughput %.1f -> %.1f "
              "q/s\n",
              before.avg_latency, after.avg_latency, before.avg_throughput,
              after.avg_throughput);

  // First diagnosis after the anomaly.
  const SelectiveRetuner::DiagnosisRecord* record = nullptr;
  for (const auto& d : harness.retuner().diagnoses()) {
    if (d.time > 400) {
      record = &d;
      break;
    }
  }
  if (record == nullptr) {
    std::printf("no diagnosis recorded -- shape DOES NOT HOLD\n");
    return 1;
  }

  PrintSection("lock-wait ratios (current/stable) per class");
  bool have_lock_ratios =
      record->outliers.ratios.contains(Metric::kLockWaits);
  if (have_lock_ratios) {
    for (const auto& [key, ratio] :
         record->outliers.ratios.at(Metric::kLockWaits)) {
      std::printf("  class %u: %.1f\n", ClassOf(key), ratio);
    }
  }

  PrintSection("outlier contexts");
  bool culprit_flagged = false;
  bool victims_flagged = false;
  for (const auto& o : record->outliers.outliers) {
    std::printf("  %s\n", o.ToString().c_str());
    if (o.metric == Metric::kLockWaits && o.high_side) {
      if (ClassOf(o.key) == kOltpTransfer) culprit_flagged = true;
      if (ClassOf(o.key) == kOltpDeposit ||
          ClassOf(o.key) == kOltpWithdraw) {
        victims_flagged = true;
      }
    }
    if (o.metric == Metric::kLatency && o.high_side &&
        ClassOf(o.key) == kOltpTransfer) {
      culprit_flagged = true;
    }
  }
  const bool no_memory_suspects = record->memory.suspects.empty();
  std::printf("\nmemory diagnosis: %zu suspects, %zu cleared (a memory "
              "explanation is correctly rejected)\n",
              record->memory.suspects.size(), record->memory.cleared.size());

  PrintSection("shape check");
  const bool degraded = after.avg_latency > 2.0 * before.avg_latency;
  std::printf("long-held commit locks degrade the application: %s "
              "(%.3fs -> %.3fs)\n",
              degraded ? "yes" : "no", before.avg_latency,
              after.avg_latency);
  std::printf("outlier detection pinpoints contending write contexts "
              "(culprit and/or blocked victims): %s\n",
              (culprit_flagged || victims_flagged) ? "yes" : "no");
  std::printf("MRC recomputation does NOT blame memory: %s\n",
              no_memory_suspects ? "yes" : "no");
  const bool shape_holds =
      degraded && (culprit_flagged || victims_flagged) && no_memory_suspects;
  std::printf("shape %s\n", shape_holds ? "HOLDS" : "DOES NOT HOLD");
  return shape_holds ? 0 : 1;
}
