// Reproduces Table 1 of the paper: hit ratios of different buffer pool
// management policies after the O_DATE index drop, measured with a
// trace-driven buffer-pool simulation (exactly the paper's §5.3
// methodology). The pool is split into a dedicated partition for the
// (now scan-heavy) BestSeller class, sized by its recomputed MRC's
// acceptable memory, and a shared partition for every other TPC-W
// class.
//
// Paper's Table 1 (hit ratio %):
//                     Shared   Partitioned   Exclusive
//   BestSeller         95.5       95.7          96.1
//   Non-BestSeller     96.2       99.5          99.9

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "engine/database_engine.h"
#include "mrc/miss_ratio_curve.h"
#include "workload/tpcw.h"

namespace {

using namespace fglb;

struct GroupStats {
  uint64_t accesses = 0;
  uint64_t stalls = 0;  // random misses + read-ahead fetches

  double HitRatio() const {
    return accesses > 0
               ? 1.0 - static_cast<double>(stalls) / accesses
               : 0.0;
  }
};

// Runs `queries` instances of the mix through a fresh engine.
// `allowed` restricts the mix (empty = all classes); `bestseller_quota`
// carves a dedicated partition. Returns hit-ratio stats per group,
// measured after a warm-up prefix.
std::map<bool, GroupStats> Run(const ApplicationSpec& app,
                               const std::vector<QueryClassId>& allowed,
                               uint64_t bestseller_quota, int queries,
                               uint64_t seed) {
  DiskModel disk;
  DatabaseEngine::Options options;
  options.buffer_pool_pages = 8192;
  options.seed = seed;
  DatabaseEngine engine("table1", options, &disk);
  if (bestseller_quota > 0) {
    engine.SetQuota(MakeClassKey(app.id, kTpcwBestSeller), bestseller_quota);
  }

  Rng rng(seed * 31 + 7);
  const int warmup = queries / 4;
  std::map<bool, GroupStats> groups;  // key: is BestSeller
  for (int i = 0; i < queries; ++i) {
    const QueryTemplate* tmpl = nullptr;
    do {
      const size_t index = app.SampleTemplateIndex(rng);
      tmpl = &app.templates[index];
    } while (!allowed.empty() &&
             std::find(allowed.begin(), allowed.end(), tmpl->id) ==
                 allowed.end());
    QueryInstance q;
    q.app = app.id;
    q.tmpl = tmpl;
    const ExecutionCounters c = engine.Execute(q);
    if (i < warmup) continue;
    GroupStats& g = groups[tmpl->id == kTpcwBestSeller];
    g.accesses += c.page_accesses;
    g.stalls += c.random_misses + c.read_aheads;
  }
  return groups;
}

}  // namespace

int main() {
  using namespace fglb::bench;

  PrintHeader("Table 1: Hit Ratio of Different Buffer Pool Management "
              "Algorithms (BestSeller without O_DATE index)");

  TpcwOptions no_index;
  no_index.o_date_index = false;
  const ApplicationSpec app = MakeTpcw(no_index);
  const int kQueries = 8000;

  // The BestSeller quota the paper's algorithm would pick: acceptable
  // memory from its recomputed (no-index) MRC.
  MrcConfig mrc_config;
  mrc_config.max_server_pages = 8192;
  const std::vector<PageId> bs_trace =
      TraceOf(*app.FindTemplate(kTpcwBestSeller), 10, /*seed=*/404);
  const MrcParameters bs_params =
      MissRatioCurve::FromTrace(bs_trace).ComputeParameters(mrc_config);
  // Floored like the QuotaPlanner floors it: a flat (scan) MRC yields
  // acceptable ~0, but read-ahead needs extents in flight.
  uint64_t quota = std::max<uint64_t>(bs_params.acceptable_memory_pages, 256);
  if (quota >= 8192) quota = 8192 / 2;
  std::printf("BestSeller no-index MRC: %s\n", bs_params.ToString().c_str());
  std::printf("quota chosen for partitioned run: %llu pages\n\n",
              static_cast<unsigned long long>(quota));

  // Shared pool.
  const auto shared = Run(app, {}, 0, kQueries, 1);
  // Partitioned pool.
  const auto partitioned = Run(app, {}, quota, kQueries, 1);
  // Exclusive pools: each group alone with the full pool.
  const auto bs_only = Run(app, {kTpcwBestSeller}, 0, kQueries / 4, 2);
  std::vector<QueryClassId> others;
  for (const auto& t : app.templates) {
    if (t.id != kTpcwBestSeller) others.push_back(t.id);
  }
  const auto others_only = Run(app, others, 0, kQueries, 3);

  const double bs_shared = shared.at(true).HitRatio() * 100;
  const double bs_part = partitioned.at(true).HitRatio() * 100;
  const double bs_excl = bs_only.at(true).HitRatio() * 100;
  const double nb_shared = shared.at(false).HitRatio() * 100;
  const double nb_part = partitioned.at(false).HitRatio() * 100;
  const double nb_excl = others_only.at(false).HitRatio() * 100;

  std::printf("%-16s  %10s  %13s  %11s\n", "hit ratio (%)", "Shared",
              "Partitioned", "Exclusive");
  std::printf("%-16s  %10.1f  %13.1f  %11.1f\n", "BestSeller", bs_shared,
              bs_part, bs_excl);
  std::printf("%-16s  %10.1f  %13.1f  %11.1f\n", "Non-BestSeller", nb_shared,
              nb_part, nb_excl);
  std::printf("\npaper:            %10s  %13s  %11s\n", "95.5", "95.7",
              "96.1");
  std::printf("paper:            %10s  %13s  %11s\n", "96.2", "99.5", "99.9");

  PrintSection("shape check vs paper");
  // The partition must (a) leave BestSeller roughly unharmed and (b)
  // recover most of the other classes' gap to their exclusive ideal.
  const bool bestseller_unharmed = bs_part >= bs_shared - 2.0;
  const double gap_before = nb_excl - nb_shared;
  const double gap_after = nb_excl - nb_part;
  const bool others_improve =
      nb_part > nb_shared && gap_after < 0.5 * gap_before;
  std::printf("BestSeller unharmed by quota: %s (%.1f -> %.1f)\n",
              bestseller_unharmed ? "yes" : "no", bs_shared, bs_part);
  std::printf("Non-BestSeller recovers toward exclusive: %s "
              "(gap %.1f -> %.1f points)\n",
              others_improve ? "yes" : "no", gap_before, gap_after);
  const bool shape_holds = bestseller_unharmed && others_improve;
  std::printf("shape %s\n", shape_holds ? "HOLDS" : "DOES NOT HOLD");
  return shape_holds ? 0 : 1;
}
