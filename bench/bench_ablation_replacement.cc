// Ablation A5: sensitivity of MRC predictions to the LRU assumption.
// The paper's memory diagnosis trusts Mattson-stack miss-ratio curves,
// which are exact for LRU (inclusion property) but only approximate for
// the CLOCK/second-chance (and adaptive ARC) policies real engines
// often use. This bench replays the same per-class traces against
// (a) the MRC prediction, (b) a real LRU pool, (c) a CLOCK pool and
// (d) an ARC pool across cache sizes, and reports the prediction error
// for each.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "mrc/miss_ratio_curve.h"
#include "storage/arc_buffer_pool.h"
#include "storage/buffer_pool.h"
#include "storage/clock_buffer_pool.h"
#include "workload/rubis.h"
#include "workload/tpcw.h"

int main() {
  using namespace fglb;
  using namespace fglb::bench;

  PrintHeader("Ablation A5: MRC prediction vs real LRU vs CLOCK "
              "(inclusion-property sensitivity)");

  struct Subject {
    const char* label;
    std::vector<PageId> trace;
  };
  const ApplicationSpec tpcw = MakeTpcw();
  const ApplicationSpec rubis = MakeRubis();
  const Subject subjects[] = {
      {"TPC-W BestSeller (indexed)",
       WindowTrace(*tpcw.FindTemplate(kTpcwBestSeller), 30000, 5001)},
      {"TPC-W ProductDetail",
       WindowTrace(*tpcw.FindTemplate(kTpcwProductDetail), 30000, 5002)},
      {"RUBiS SearchItemsByRegion",
       WindowTrace(*rubis.FindTemplate(kRubisSearchItemsByRegion), 30000,
                   5003)},
  };

  double max_lru_error = 0;
  double max_clock_error = 0;
  double max_arc_error = 0;
  for (const Subject& subject : subjects) {
    PrintSection(subject.label);
    const MissRatioCurve curve = MissRatioCurve::FromTrace(subject.trace);
    std::printf("%10s  %12s  %10s  %10s  %10s  %11s\n", "cache_pg",
                "mrc_predict", "lru_real", "clock_real", "arc_real",
                "clock_error");
    for (uint64_t cache : {256ULL, 1024ULL, 2048ULL, 4096ULL, 8192ULL}) {
      BufferPool lru(cache);
      ClockBufferPool clock(cache);
      ArcBufferPool arc(cache);
      for (PageId p : subject.trace) {
        lru.Access(p);
        clock.Access(p);
        arc.Access(p);
      }
      const double predicted = curve.MissRatioAt(cache);
      const double lru_real = lru.stats().miss_ratio();
      const double clock_real = clock.stats().miss_ratio();
      const double arc_real = arc.stats().miss_ratio();
      max_lru_error = std::max(max_lru_error,
                               std::fabs(predicted - lru_real));
      max_clock_error = std::max(max_clock_error,
                                 std::fabs(predicted - clock_real));
      max_arc_error = std::max(max_arc_error,
                               std::fabs(predicted - arc_real));
      std::printf("%10llu  %12.4f  %10.4f  %10.4f  %10.4f  %11.4f\n",
                  static_cast<unsigned long long>(cache), predicted,
                  lru_real, clock_real, arc_real,
                  std::fabs(predicted - clock_real));
    }
  }

  PrintSection("shape check");
  std::printf("MRC is exact for LRU (max |error| %.2g) and only "
              "approximate for CLOCK (max |error| %.3f) and ARC "
              "(max |error| %.3f)\n",
              max_lru_error, max_clock_error, max_arc_error);
  // Exactness for LRU is the inclusion property; CLOCK and ARC should
  // deviate somewhere but stay usable approximations.
  const bool shape_holds =
      max_lru_error < 1e-9 && max_clock_error > 1e-4 &&
      max_clock_error < 0.25 && max_arc_error < 0.25;
  std::printf("shape %s\n", shape_holds ? "HOLDS" : "DOES NOT HOLD");
  return shape_holds ? 0 : 1;
}
