#ifndef FGLB_BENCH_BENCH_UTIL_H_
#define FGLB_BENCH_BENCH_UTIL_H_

// Shared helpers for the paper-reproduction benchmark binaries. Each
// binary regenerates one table or figure of the paper and prints (a)
// the series/rows we measure and (b) the paper's reference values for
// side-by-side comparison. Absolute values differ (the substrate is a
// calibrated simulator, not the authors' testbed); the *shape* is the
// reproduction target. See EXPERIMENTS.md.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "storage/page.h"
#include "workload/access_generator.h"
#include "workload/query_class.h"

namespace fglb::bench {

inline void PrintHeader(const std::string& title) {
  std::printf("==============================================================="
              "=\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================="
              "=\n");
}

inline void PrintSection(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

// Machine-readable benchmark output. Each measured configuration adds
// one record (name, wall_ms, accesses_per_sec); WriteTo emits a
// BENCH_<name>.json the perf trajectory can be tracked from across
// commits:
//   {"results": [{"name": "...", "wall_ms": 1.2,
//                 "accesses_per_sec": 3.4e6}, ...]}
class BenchJsonWriter {
 public:
  // `accesses` is the work the measured pass performed (page
  // references replayed, rows scored, ...); pass 0 when a rate makes
  // no sense for the stage.
  void Add(const std::string& name, double wall_ms, double accesses) {
    const double per_sec =
        wall_ms > 0 && accesses > 0 ? accesses / (wall_ms / 1000.0) : 0;
    rows_.emplace_back(Row{name, wall_ms, per_sec});
  }

  // Extra top-level scalar next to "results" (derived quantities such
  // as an enabled/disabled overhead ratio).
  void AddField(const std::string& name, double value) {
    fields_.emplace_back(name, value);
  }

  bool WriteTo(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\"results\": [");
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f,
                   "%s\n  {\"name\": \"%s\", \"wall_ms\": %.4f, "
                   "\"accesses_per_sec\": %.1f}",
                   i == 0 ? "" : ",", rows_[i].name.c_str(), rows_[i].wall_ms,
                   rows_[i].accesses_per_sec);
    }
    std::fprintf(f, "\n]");
    for (const auto& [name, value] : fields_) {
      std::fprintf(f, ",\n \"%s\": %.6g", name.c_str(), value);
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu results)\n", path.c_str(), rows_.size());
    return true;
  }

 private:
  struct Row {
    std::string name;
    double wall_ms = 0;
    double accesses_per_sec = 0;
  };
  std::vector<Row> rows_;
  std::vector<std::pair<std::string, double>> fields_;
};

// Generates a page-access trace by executing `queries` instances of a
// template back to back (what the paper's per-class logging would have
// recorded in its recent-access window).
inline std::vector<PageId> TraceOf(const QueryTemplate& tmpl, int queries,
                                   uint64_t seed) {
  AccessGenerator gen;
  Rng rng(seed);
  std::vector<PageAccess> accesses;
  for (int i = 0; i < queries; ++i) gen.Generate(tmpl, rng, &accesses);
  std::vector<PageId> trace;
  trace.reserve(accesses.size());
  for (const auto& a : accesses) trace.push_back(a.page);
  return trace;
}

// Generates exactly what the engine's per-class ring window would hold:
// the most recent `window` accesses of back-to-back executions.
inline std::vector<PageId> WindowTrace(const QueryTemplate& tmpl,
                                       size_t window, uint64_t seed) {
  AccessGenerator gen;
  Rng rng(seed);
  std::vector<PageAccess> accesses;
  while (accesses.size() < window) gen.Generate(tmpl, rng, &accesses);
  std::vector<PageId> trace;
  trace.reserve(window);
  for (size_t i = accesses.size() - window; i < accesses.size(); ++i) {
    trace.push_back(accesses[i].page);
  }
  return trace;
}

}  // namespace fglb::bench

#endif  // FGLB_BENCH_BENCH_UTIL_H_
