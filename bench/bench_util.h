#ifndef FGLB_BENCH_BENCH_UTIL_H_
#define FGLB_BENCH_BENCH_UTIL_H_

// Shared helpers for the paper-reproduction benchmark binaries. Each
// binary regenerates one table or figure of the paper and prints (a)
// the series/rows we measure and (b) the paper's reference values for
// side-by-side comparison. Absolute values differ (the substrate is a
// calibrated simulator, not the authors' testbed); the *shape* is the
// reproduction target. See EXPERIMENTS.md.

#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "storage/page.h"
#include "workload/access_generator.h"
#include "workload/query_class.h"

namespace fglb::bench {

inline void PrintHeader(const std::string& title) {
  std::printf("==============================================================="
              "=\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================="
              "=\n");
}

inline void PrintSection(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

// Generates a page-access trace by executing `queries` instances of a
// template back to back (what the paper's per-class logging would have
// recorded in its recent-access window).
inline std::vector<PageId> TraceOf(const QueryTemplate& tmpl, int queries,
                                   uint64_t seed) {
  AccessGenerator gen;
  Rng rng(seed);
  std::vector<PageAccess> accesses;
  for (int i = 0; i < queries; ++i) gen.Generate(tmpl, rng, &accesses);
  std::vector<PageId> trace;
  trace.reserve(accesses.size());
  for (const auto& a : accesses) trace.push_back(a.page);
  return trace;
}

// Generates exactly what the engine's per-class ring window would hold:
// the most recent `window` accesses of back-to-back executions.
inline std::vector<PageId> WindowTrace(const QueryTemplate& tmpl,
                                       size_t window, uint64_t seed) {
  AccessGenerator gen;
  Rng rng(seed);
  std::vector<PageAccess> accesses;
  while (accesses.size() < window) gen.Generate(tmpl, rng, &accesses);
  std::vector<PageId> trace;
  trace.reserve(window);
  for (size_t i = accesses.size() - window; i < accesses.size(); ++i) {
    trace.push_back(accesses[i].page);
  }
  return trace;
}

}  // namespace fglb::bench

#endif  // FGLB_BENCH_BENCH_UTIL_H_
