// Ablation A3: Mattson stack implementations. The paper's claim that
// per-query-class statistics collection is "lightweight" rests on MRC
// tracking being cheap. The reference list-based stack is O(stack
// depth) per access; the Fenwick-tree stack is O(log n). This
// google-benchmark binary measures both across working-set sizes,
// plus end-to-end MRC curve construction on a window-sized trace.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "common/random.h"
#include "mrc/mattson_stack.h"
#include "mrc/miss_ratio_curve.h"

namespace {

using namespace fglb;

std::vector<PageId> MakeTrace(uint64_t pages, double theta, size_t n,
                              uint64_t seed) {
  Rng rng(seed);
  ZipfGenerator zipf(pages, theta);
  std::vector<PageId> trace;
  trace.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    trace.push_back(MakePageId(1, ScrambleToDomain(zipf.Sample(rng), pages)));
  }
  return trace;
}

void BM_ListStack(benchmark::State& state) {
  const uint64_t pages = static_cast<uint64_t>(state.range(0));
  const auto trace = MakeTrace(pages, 0.6, 20000, 11);
  for (auto _ : state) {
    ListMattsonStack stack;
    for (PageId p : trace) benchmark::DoNotOptimize(stack.Access(p));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(trace.size()));
}

void BM_FenwickStack(benchmark::State& state) {
  const uint64_t pages = static_cast<uint64_t>(state.range(0));
  const auto trace = MakeTrace(pages, 0.6, 20000, 11);
  for (auto _ : state) {
    FenwickMattsonStack stack;
    for (PageId p : trace) benchmark::DoNotOptimize(stack.Access(p));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(trace.size()));
}

// Tree-growth cost: a window full of mostly-distinct pages forces the
// default-constructed Fenwick tree through its whole doubling
// schedule; the presized stack never rebuilds. The pair quantifies
// what the capacity hint (and the O(n) linear rebuild that replaced
// the old O(marks * log) re-insertion) is worth.
void BM_FenwickGrowthDefault(benchmark::State& state) {
  const auto trace = MakeTrace(100000, 0.1, 120000, 19);
  for (auto _ : state) {
    FenwickMattsonStack stack;
    for (PageId p : trace) benchmark::DoNotOptimize(stack.Access(p));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(trace.size()));
}

void BM_FenwickGrowthPresized(benchmark::State& state) {
  const auto trace = MakeTrace(100000, 0.1, 120000, 19);
  for (auto _ : state) {
    FenwickMattsonStack stack(trace.size());
    for (PageId p : trace) benchmark::DoNotOptimize(stack.Access(p));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(trace.size()));
}

// Regression assertion run before the benchmarks: growth rebuilds must
// not change results, and a stack presized for the trace must never
// rebuild. Aborts the binary on violation so a perf "fix" that breaks
// either property cannot slip through a bench run.
void VerifyGrowthRegression() {
  const auto trace = MakeTrace(50000, 0.1, 60000, 23);
  FenwickMattsonStack grown;
  FenwickMattsonStack presized(trace.size());
  for (PageId p : trace) {
    if (grown.Access(p) != presized.Access(p)) {
      std::fprintf(stderr,
                   "FAIL: grown vs presized Fenwick stacks diverged\n");
      std::abort();
    }
  }
  if (grown.hit_counts() != presized.hit_counts() ||
      grown.cold_misses() != presized.cold_misses()) {
    std::fprintf(stderr, "FAIL: growth rebuild changed hit counts\n");
    std::abort();
  }
  if (grown.capacity_rebuilds() == 0) {
    std::fprintf(stderr, "FAIL: growth trace did not exercise rebuilds\n");
    std::abort();
  }
  if (presized.capacity_rebuilds() != 0) {
    std::fprintf(stderr, "FAIL: presized Fenwick stack rebuilt anyway\n");
    std::abort();
  }
  std::printf("fenwick growth regression check: OK (%llu rebuilds avoided)\n",
              static_cast<unsigned long long>(grown.capacity_rebuilds()));
}

void BM_MrcFromWindow(benchmark::State& state) {
  // A full per-class window (30000 accesses) as the log analyzer
  // recomputes it during diagnosis.
  const auto trace = MakeTrace(8192, 0.5, 30000, 13);
  for (auto _ : state) {
    const MissRatioCurve curve = MissRatioCurve::FromTrace(trace);
    benchmark::DoNotOptimize(curve.MissRatioAt(4096));
  }
}

void BM_MrcParameters(benchmark::State& state) {
  const auto trace = MakeTrace(8192, 0.5, 30000, 13);
  const MissRatioCurve curve = MissRatioCurve::FromTrace(trace);
  MrcConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.ComputeParameters(config));
  }
}

BENCHMARK(BM_ListStack)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FenwickStack)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FenwickGrowthDefault)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FenwickGrowthPresized)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MrcFromWindow)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MrcParameters)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  VerifyGrowthRegression();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
