// Ablation A3: Mattson stack implementations. The paper's claim that
// per-query-class statistics collection is "lightweight" rests on MRC
// tracking being cheap. The reference list-based stack is O(stack
// depth) per access; the Fenwick-tree stack is O(log n). This
// google-benchmark binary measures both across working-set sizes,
// plus end-to-end MRC curve construction on a window-sized trace.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "mrc/mattson_stack.h"
#include "mrc/miss_ratio_curve.h"

namespace {

using namespace fglb;

std::vector<PageId> MakeTrace(uint64_t pages, double theta, size_t n,
                              uint64_t seed) {
  Rng rng(seed);
  ZipfGenerator zipf(pages, theta);
  std::vector<PageId> trace;
  trace.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    trace.push_back(MakePageId(1, ScrambleToDomain(zipf.Sample(rng), pages)));
  }
  return trace;
}

void BM_ListStack(benchmark::State& state) {
  const uint64_t pages = static_cast<uint64_t>(state.range(0));
  const auto trace = MakeTrace(pages, 0.6, 20000, 11);
  for (auto _ : state) {
    ListMattsonStack stack;
    for (PageId p : trace) benchmark::DoNotOptimize(stack.Access(p));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(trace.size()));
}

void BM_FenwickStack(benchmark::State& state) {
  const uint64_t pages = static_cast<uint64_t>(state.range(0));
  const auto trace = MakeTrace(pages, 0.6, 20000, 11);
  for (auto _ : state) {
    FenwickMattsonStack stack;
    for (PageId p : trace) benchmark::DoNotOptimize(stack.Access(p));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(trace.size()));
}

void BM_MrcFromWindow(benchmark::State& state) {
  // A full per-class window (30000 accesses) as the log analyzer
  // recomputes it during diagnosis.
  const auto trace = MakeTrace(8192, 0.5, 30000, 13);
  for (auto _ : state) {
    const MissRatioCurve curve = MissRatioCurve::FromTrace(trace);
    benchmark::DoNotOptimize(curve.MissRatioAt(4096));
  }
}

void BM_MrcParameters(benchmark::State& state) {
  const auto trace = MakeTrace(8192, 0.5, 30000, 13);
  const MissRatioCurve curve = MissRatioCurve::FromTrace(trace);
  MrcConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.ComputeParameters(config));
  }
}

BENCHMARK(BM_ListStack)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FenwickStack)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MrcFromWindow)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MrcParameters)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
