// Tentpole perf benchmark: streaming MRC vs on-demand recomputation.
// The recompute path (the paper's behaviour) replays a class's whole
// recent-access window through a Mattson stack every time the diagnosis
// cascade reaches phase mrc — O(window log window) at violation time.
// The streaming engine pays a small O(1)-amortized cost on every sampled
// access instead, so at violation time the curve is already fresh and
// diagnosis is just a histogram snapshot. This binary measures
//   (a) the per-access update cost of the streaming estimator,
//   (b) DiagnoseMemory latency in streaming vs recompute mode, and
//   (c) the divergence between the streaming curve and an exact
//       from-scratch recomputation at every cache size,
// and emits BENCH_streaming_mrc.json. Gates: streaming diagnosis at
// least 5x faster than recompute, max curve divergence <= 0.1 (2x the
// sampled-replay error bound the MRC pipeline tests assert).
//
//   ./build/bench/bench_streaming_mrc [output.json]

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/log_analyzer.h"
#include "engine/database_engine.h"
#include "mrc/mrc_tracker.h"
#include "mrc/streaming_mrc.h"
#include "storage/disk_model.h"

namespace {

using namespace fglb;

constexpr int kClasses = 6;
constexpr size_t kWindow = 30000;
// The trace is twice the window so the estimator's sliding-window
// expiry is exercised, not just the warm-up fill.
constexpr size_t kTraceLength = 2 * kWindow;
// Distinct pages well under the window, as in the repo's workload
// classes: the window-straddle error term of the streaming curve is
// bounded by distinct/window.
constexpr uint64_t kPagesPerClass = 1200;
constexpr double kSampleRate = 1.0 / 8;
constexpr int kRepetitions = 5;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::vector<PageId> MakeTrace(int cls) {
  Rng rng(7000 + cls);
  ZipfGenerator zipf(kPagesPerClass, 0.8);
  std::vector<PageId> trace;
  trace.reserve(kTraceLength);
  for (size_t i = 0; i < kTraceLength; ++i) {
    trace.push_back(MakePageId(static_cast<uint32_t>(cls + 1),
                               ScrambleToDomain(zipf.Sample(rng),
                                                kPagesPerClass)));
  }
  return trace;
}

double BestOf(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    best = std::min(best, MsSince(start));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      argc > 1 ? argv[1] : "BENCH_streaming_mrc.json";
  bench::PrintHeader("Streaming MRC engine vs on-demand recomputation");
  std::printf("%d classes, %zu-access windows, %zu-access traces, "
              "sample rate 1/%d\n",
              kClasses, kWindow, kTraceLength,
              static_cast<int>(std::lround(1.0 / kSampleRate)));

  bench::BenchJsonWriter json;

  // (a) Per-access update cost of the estimator itself, at the
  // diagnosis sample rate and unsampled.
  bench::PrintSection("per-access update cost");
  const std::vector<PageId> cost_trace = MakeTrace(0);
  for (const double rate : {kSampleRate, 1.0}) {
    StreamingMrcEstimator::Options options;
    options.sample_rate = rate;
    options.window_accesses = kWindow;
    StreamingMrcEstimator estimator(options);
    const double ms = BestOf(kRepetitions, [&] {
      estimator.Reset();
      for (PageId p : cost_trace) estimator.Record(p);
    });
    const double ns_per_access = 1e6 * ms / cost_trace.size();
    const char* label = rate < 1.0 ? "record_sampled" : "record_unsampled";
    json.Add(label, ms, static_cast<double>(cost_trace.size()));
    std::printf("%-18s %8.2f ms for %zu accesses (%6.1f ns/access)\n",
                label, ms, cost_trace.size(), ns_per_access);
  }

  // Shared engine: streaming estimators on, ring windows filled by the
  // same per-class traces the recompute path will replay.
  DiskModel disk;
  DatabaseEngine::Options engine_options;
  engine_options.access_window_capacity = kWindow;
  DatabaseEngine engine("bench", engine_options, &disk);
  StreamingMrcEstimator::Options streaming_options;
  streaming_options.sample_rate = kSampleRate;
  streaming_options.window_accesses = kWindow;
  engine.EnableStreamingMrc(streaming_options);
  std::set<ClassKey> candidates;
  for (int c = 0; c < kClasses; ++c) {
    const ClassKey key = MakeClassKey(1, static_cast<uint32_t>(c + 1));
    candidates.insert(key);
    StatsCollector::AccessRecorder recorder = engine.stats().RecorderFor(key);
    for (PageId p : MakeTrace(c)) recorder.Record(p);
  }

  // (b) Diagnosis latency: recompute (window replay at the same sample
  // rate, the paper's path) vs streaming (snapshot of the live
  // estimator). Both serial, so the comparison is per-diagnosis work,
  // not pool parallelism.
  bench::PrintSection("diagnosis latency");
  MrcConfig recompute_config;
  recompute_config.analysis_threads = 1;
  recompute_config.sample_rate = kSampleRate;
  LogAnalyzer recompute_analyzer(&engine, OutlierConfig{}, recompute_config);
  recompute_analyzer.DiagnoseMemory(candidates);  // warm scratch stacks
  const double recompute_ms = BestOf(kRepetitions, [&] {
    recompute_analyzer.DiagnoseMemory(candidates);
  });
  json.Add("diagnose_recompute", recompute_ms,
           static_cast<double>(kClasses) * kWindow);
  std::printf("recompute-mode DiagnoseMemory:   %8.3f ms\n", recompute_ms);

  MrcConfig streaming_config;
  streaming_config.analysis_threads = 1;
  streaming_config.mode = MrcMode::kStreaming;
  LogAnalyzer streaming_analyzer(&engine, OutlierConfig{}, streaming_config);
  streaming_analyzer.DiagnoseMemory(candidates);
  const double streaming_ms = BestOf(kRepetitions, [&] {
    streaming_analyzer.DiagnoseMemory(candidates);
  });
  json.Add("diagnose_streaming", streaming_ms,
           static_cast<double>(kClasses) * kWindow);
  std::printf("streaming-mode DiagnoseMemory:   %8.3f ms\n", streaming_ms);
  const double speedup = recompute_ms / streaming_ms;
  std::printf("diagnosis-latency reduction:     %8.2fx\n", speedup);

  // (c) Curve divergence: live streaming curve vs a from-scratch
  // recomputation of the same ring window at the same sample rate (the
  // two modes share the page hash, so this isolates the streaming
  // machinery — window straddle — from sampling noise). The gap to the
  // fully exact curve is reported alongside as sampling-error context;
  // it is a property of the sample rate, identical in both modes.
  bench::PrintSection("curve divergence (streaming vs recompute)");
  double max_divergence = 0;
  double max_sampling_error = 0;
  for (int c = 0; c < kClasses; ++c) {
    const ClassKey key = MakeClassKey(1, static_cast<uint32_t>(c + 1));
    const std::vector<PageId> window = engine.stats().AccessWindow(key);
    const MissRatioCurve streaming = engine.stats().StreamingFor(key)->Curve();
    MrcTracker reference(recompute_config);
    const MissRatioCurve recompute = reference.Recompute(window).curve;
    const MissRatioCurve exact = MissRatioCurve::FromTrace(window);
    const uint64_t max_pages =
        std::max(streaming.max_pages(), recompute.max_pages());
    double class_divergence = 0;
    double class_sampling_error = 0;
    for (uint64_t cache = 0; cache <= max_pages; ++cache) {
      class_divergence = std::max(
          class_divergence, std::fabs(streaming.MissRatioAt(cache) -
                                      recompute.MissRatioAt(cache)));
      class_sampling_error = std::max(
          class_sampling_error, std::fabs(recompute.MissRatioAt(cache) -
                                          exact.MissRatioAt(cache)));
    }
    max_divergence = std::max(max_divergence, class_divergence);
    max_sampling_error = std::max(max_sampling_error, class_sampling_error);
    std::printf("class %d: max |streaming - recompute| = %.4f   "
                "(|recompute - exact| = %.4f)\n",
                c + 1, class_divergence, class_sampling_error);
  }

  json.WriteTo(json_path);

  const bool fast_enough = speedup >= 5.0;
  const bool close_enough = max_divergence <= 0.10;
  std::printf("\nspeedup >= 5x: %s   max divergence %.4f <= 0.10: %s\n",
              fast_enough ? "yes" : "NO", max_divergence,
              close_enough ? "yes" : "NO");
  std::printf("shape %s\n",
              fast_enough && close_enough ? "HOLDS" : "VIOLATED");
  return fast_enough && close_enough ? 0 : 1;
}
