// Reproduces Figure 3 of the paper: alleviation of CPU saturation.
// A TPC-W client emulator drives a sinusoid load function with random
// noise (Fig. 3a); reactive provisioning allocates and releases
// machines (Fig. 3b); the average query latency returns below the
// 1-second SLA after each provisioning step (Fig. 3c).

#include <algorithm>
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "scenarios/harness.h"
#include "workload/tpcw.h"

int main() {
  using namespace fglb;
  using namespace fglb::bench;

  PrintHeader("Figure 3: Alleviation of CPU Contention (sine load)");

  SelectiveRetuner::Config config;
  config.interval_seconds = 10;
  ClusterHarness harness(config);
  harness.AddServers(8);

  Scheduler* tpcw = harness.AddApplication(MakeTpcw());
  Replica* first = harness.resources().CreateReplica(
      harness.resources().servers()[0].get(), 8192);
  tpcw->AddReplica(first);

  // Sine load: 20-minute period, 50..650 clients, plus 5% noise from
  // the emulator itself. One 4-core server serves ~300 q/s, so the
  // peak needs 2-3 machines.
  auto load = std::make_unique<SineLoad>(350.0, 300.0, 1200.0);
  const LoadFunction* load_view = load.get();
  harness.AddClients(tpcw, std::move(load), /*seed=*/101);

  harness.Start();
  harness.RunFor(2400);  // two full periods

  std::printf("\n%8s  %8s  %9s  %13s  %11s  %4s\n", "time_s", "clients",
              "machines", "avg_latency_s", "tput_qps", "sla");
  int peak_machines = 0;
  int min_machines_after_peak = 99;
  bool latency_recovers = false;
  double worst_latency = 0;
  for (const auto& sample : harness.retuner().samples()) {
    for (const auto& app : sample.apps) {
      std::printf("%8.0f  %8.0f  %9d  %13.3f  %11.1f  %4s\n", sample.time,
                  load_view->TargetClients(sample.time), app.servers_used,
                  app.avg_latency, app.throughput,
                  app.sla_met ? "ok" : "VIO");
      peak_machines = std::max(peak_machines, app.servers_used);
      worst_latency = std::max(worst_latency, app.avg_latency);
      // Recovery: after the first period's peak, SLA is met again.
      if (sample.time > 400 && app.sla_met && app.queries > 0) {
        latency_recovers = true;
      }
      if (sample.time > 1700 && sample.time < 2000) {
        min_machines_after_peak =
            std::min(min_machines_after_peak, app.servers_used);
      }
    }
  }

  PrintSection("actions");
  for (const auto& action : harness.retuner().actions()) {
    std::printf("  t=%6.0f  [%s] %s\n", action.time,
                SelectiveRetuner::ActionKindName(action.kind),
                action.description.c_str());
  }

  PrintSection("shape check vs paper");
  std::printf("paper: machine allocation follows the sine; latency exceeds "
              "the SLA on ramps and drops back below it after provisioning\n");
  std::printf("measured: peak machines %d, machines near trough %d, worst "
              "interval latency %.2f s, SLA recovered: %s\n",
              peak_machines, min_machines_after_peak, worst_latency,
              latency_recovers ? "yes" : "no");
  const bool shape_holds = peak_machines >= 2 &&
                           min_machines_after_peak < peak_machines &&
                           latency_recovers;
  std::printf("shape %s\n", shape_holds ? "HOLDS" : "DOES NOT HOLD");
  return shape_holds ? 0 : 1;
}
