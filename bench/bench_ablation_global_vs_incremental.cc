// Ablation A6: global placement (periodic maintenance) vs incremental
// selective retuning. The paper's §3.2 argues that near-optimal global
// reshuffling is too heavy for on-line reaction and belongs at initial
// deployment or periodic maintenance; the runtime loop should make
// small targeted changes. We compute the optimizer's from-scratch
// placement for the Table 2 workload population and compare it with
// where the incremental controller ends up: both should isolate
// SearchItemsByRegion and land on the same machine count.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/placement_optimizer.h"
#include "mrc/miss_ratio_curve.h"
#include "scenarios/harness.h"
#include "workload/rubis.h"
#include "workload/tpcw.h"

namespace {

using namespace fglb;
using namespace fglb::bench;

// Builds each class's global footprint: acceptable memory from its MRC
// (window-capped trace), cpu/io rates from its per-query demands times
// its arrival rate under the scenario's client load.
std::vector<ClassLoad> ProfileApp(const ApplicationSpec& app,
                                  double queries_per_second) {
  MrcConfig mrc_config;
  mrc_config.max_server_pages = 8192;
  DiskModel disk;

  std::vector<ClassLoad> loads;
  for (size_t i = 0; i < app.templates.size(); ++i) {
    const QueryTemplate& tmpl = app.templates[i];
    const double rate = queries_per_second * app.mix_weights[i];

    const std::vector<PageId> trace = WindowTrace(tmpl, 30000, 77 + tmpl.id);
    const MrcParameters params =
        MissRatioCurve::FromTrace(trace).ComputeParameters(mrc_config);

    // Per-query demands, measured warm on a private engine.
    DatabaseEngine::Options options;
    options.buffer_pool_pages = 8192;
    options.seed = 4000 + tmpl.id;
    DatabaseEngine engine("profiler", options, &disk);
    QueryInstance q;
    q.app = app.id;
    q.tmpl = &tmpl;
    double cpu = 0, io = 0;
    const int kWarm = 120, kMeasure = 120;
    for (int r = 0; r < kWarm + kMeasure; ++r) {
      const ExecutionCounters c = engine.Execute(q);
      if (r < kWarm) continue;
      cpu += c.cpu_seconds;
      io += c.io_seconds;
    }
    ClassLoad load;
    load.key = MakeClassKey(app.id, tmpl.id);
    load.acceptable_pages = params.acceptable_memory_pages;
    load.cpu_rate = rate * cpu / kMeasure;
    load.io_rate = rate * io / kMeasure;
    loads.push_back(load);
  }
  return loads;
}

}  // namespace

int main() {
  PrintHeader("Ablation A6: global placement optimizer vs incremental "
              "selective retuning (Table 2 workload)");

  // --- Global: compute a from-scratch placement. ---
  const ApplicationSpec tpcw = MakeTpcw();
  RubisOptions rubis_options;
  rubis_options.app_id = 2;
  const ApplicationSpec rubis = MakeRubis(rubis_options);
  std::vector<ClassLoad> classes = ProfileApp(tpcw, 110);
  // RUBiS profiled at its sustainable post-isolation rate (~20 q/s:
  // SearchItemsByRegion alone nearly saturates one disk).
  for (const ClassLoad& l : ProfileApp(rubis, 20)) classes.push_back(l);

  PlacementConfig config;
  config.server_pool_pages = 8192;
  config.cpu_capacity = 4.0;
  config.io_capacity = 1.0;
  config.target_fill = 0.75;
  const PlacementPlan plan = ComputePlacement(classes, config);
  std::printf("optimizer plan: %s\n\n", plan.ToString().c_str());

  const ClassKey sibr = MakeClassKey(rubis.id, kRubisSearchItemsByRegion);
  const int sibr_server = plan.ServerOf(sibr);
  int sibr_neighbours = 0;
  if (sibr_server >= 0) {
    sibr_neighbours =
        static_cast<int>(plan.servers[sibr_server].size()) - 1;
  }

  // --- Incremental: let the controller converge on the same workload.
  ClusterHarness harness;
  harness.AddServers(4);
  Scheduler* tpcw_sched = harness.AddApplication(MakeTpcw());
  Scheduler* rubis_sched = harness.AddApplication(MakeRubis(rubis_options));
  Replica* shared = harness.resources().CreateReplica(
      harness.resources().servers()[0].get(), 8192);
  tpcw_sched->AddReplica(shared);
  rubis_sched->AddReplica(shared);
  harness.AddConstantClients(tpcw_sched, 120, 61);
  harness.AddClients(rubis_sched,
                     std::make_unique<StepLoad>(
                         std::vector<std::pair<SimTime, double>>{{600, 60}}),
                     63);
  harness.Start();
  harness.RunFor(1800);
  std::set<const PhysicalServer*> used;
  for (Replica* r : tpcw_sched->replicas()) used.insert(&r->server());
  for (Replica* r : rubis_sched->replicas()) used.insert(&r->server());
  const int incremental_servers = static_cast<int>(used.size());
  bool sibr_isolated_incrementally = false;
  for (const auto& action : harness.retuner().actions()) {
    if (action.kind == SelectiveRetuner::ActionKind::kClassRescheduled &&
        action.description.find("app=2/class=4") != std::string::npos) {
      sibr_isolated_incrementally = true;
    }
  }

  std::printf("%-36s  %8s  %26s\n", "approach", "servers",
              "SearchItemsByRegion placed");
  std::printf("%-36s  %8d  %26s\n", "global optimizer (maintenance)",
              plan.servers_used(),
              sibr_server >= 0
                  ? (sibr_neighbours <= 3 ? "isolated (few neighbours)"
                                          : "co-located")
                  : "unplaced");
  std::printf("%-36s  %8d  %26s\n", "incremental controller (runtime)",
              incremental_servers,
              sibr_isolated_incrementally ? "moved to its own replica"
                                          : "left in place");

  PrintSection("shape check");
  const bool agree_on_count =
      plan.feasible && plan.servers_used() == incremental_servers;
  const bool both_isolate =
      sibr_server >= 0 && sibr_neighbours <= 3 && sibr_isolated_incrementally;
  std::printf("both approaches use the same machine count: %s (%d vs %d)\n",
              agree_on_count ? "yes" : "no", plan.servers_used(),
              incremental_servers);
  std::printf("both isolate the heavyweight class: %s\n",
              both_isolate ? "yes" : "no");
  const bool shape_holds = plan.feasible && both_isolate &&
                           plan.servers_used() <= incremental_servers + 1 &&
                           incremental_servers <= plan.servers_used() + 1;
  std::printf("shape %s\n", shape_holds ? "HOLDS" : "DOES NOT HOLD");
  return shape_holds ? 0 : 1;
}
