// Tentpole perf benchmark: the MRC analysis pipeline. The reaction
// path's most expensive step is LogAnalyzer::DiagnoseMemory — one
// Mattson replay per suspect class over that class's recent-access
// window. The seed implementation copied every window into a fresh
// vector and replayed each class serially through a freshly allocated
// exact Fenwick stack. This binary measures that legacy path against
// the pipeline (zero-copy ring snapshots + reusable scratch stacks +
// hash-sampled replay + worker-pool fan-out) on 8 classes x 64k-entry
// windows, checks the sampled MRC parameters stay within 10% of the
// exact result, and emits BENCH_mrc_pipeline.json.
//
//   ./build/bench/bench_mrc_pipeline [output.json]

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/log_analyzer.h"
#include "engine/database_engine.h"
#include "mrc/mrc_tracker.h"
#include "storage/disk_model.h"

namespace {

using namespace fglb;

constexpr int kClasses = 8;
constexpr size_t kWindow = 65536;
constexpr uint64_t kPagesPerClass = 6000;
constexpr double kSampleRate = 1.0 / 8;
constexpr int kRepetitions = 5;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Fills each class's ring window exactly as back-to-back execution
// would: kWindow zipf-skewed references over a per-class page domain.
void FillWindows(DatabaseEngine* engine) {
  for (int c = 0; c < kClasses; ++c) {
    const ClassKey key = MakeClassKey(1, static_cast<uint32_t>(c + 1));
    Rng rng(100 + c);
    ZipfGenerator zipf(kPagesPerClass, 0.7);
    for (size_t i = 0; i < kWindow; ++i) {
      engine->stats().RecordPageAccess(
          key, MakePageId(static_cast<uint32_t>(c + 1),
                          ScrambleToDomain(zipf.Sample(rng), kPagesPerClass)));
    }
  }
}

// The seed's DiagnoseMemory inner loop, verbatim in shape: per-call
// window copy, fresh tracker (= fresh exact Fenwick stack per replay),
// serial over classes.
std::vector<MrcParameters> LegacyDiagnose(const StatsCollector& stats,
                                          const std::vector<ClassKey>& keys,
                                          const MrcConfig& config) {
  std::vector<MrcParameters> params;
  params.reserve(keys.size());
  for (ClassKey key : keys) {
    const std::vector<PageId> window = stats.AccessWindow(key);
    MrcTracker tracker(config);
    params.push_back(tracker.Recompute(window).params);
  }
  return params;
}

double BestOf(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    best = std::min(best, MsSince(start));
  }
  return best;
}

double RelativeError(uint64_t exact, uint64_t approx) {
  if (exact == 0) return approx == 0 ? 0.0 : 1.0;
  const double d = std::abs(static_cast<double>(approx) -
                            static_cast<double>(exact));
  return d / static_cast<double>(exact);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path =
      argc > 1 ? argv[1] : "BENCH_mrc_pipeline.json";
  bench::PrintHeader(
      "MRC analysis pipeline: parallel + sampled + copy-free diagnosis");
  std::printf("%d classes, %zu-entry windows, sample rate 1/%d\n", kClasses,
              kWindow, static_cast<int>(std::lround(1.0 / kSampleRate)));

  DiskModel disk;
  DatabaseEngine::Options engine_options;
  engine_options.access_window_capacity = kWindow;
  DatabaseEngine engine("bench", engine_options, &disk);
  FillWindows(&engine);

  std::vector<ClassKey> keys;
  std::set<ClassKey> candidates;
  for (int c = 0; c < kClasses; ++c) {
    keys.push_back(MakeClassKey(1, static_cast<uint32_t>(c + 1)));
    candidates.insert(keys.back());
  }

  const double total_accesses =
      static_cast<double>(kClasses) * static_cast<double>(kWindow);
  bench::BenchJsonWriter json;

  // 1. Legacy serial path (seed behaviour): copy + fresh exact stack.
  MrcConfig exact_config;
  std::vector<MrcParameters> exact_params;
  const double legacy_ms = BestOf(kRepetitions, [&] {
    exact_params = LegacyDiagnose(engine.stats(), keys, exact_config);
  });
  json.Add("legacy_serial_exact_copy", legacy_ms, total_accesses);
  std::printf("\nlegacy serial exact (copy per call):   %8.2f ms\n",
              legacy_ms);

  // 2. Serial exact pipeline: copy-free windows + scratch-stack reuse.
  MrcConfig serial_config;
  serial_config.analysis_threads = 1;
  LogAnalyzer serial_analyzer(&engine, OutlierConfig{}, serial_config);
  serial_analyzer.DiagnoseMemory(candidates);  // warm trackers/scratch
  LogAnalyzer::MemoryDiagnosis serial_diag;
  const double serial_ms = BestOf(kRepetitions, [&] {
    serial_diag = serial_analyzer.DiagnoseMemory(candidates);
  });
  json.Add("serial_exact_nocopy", serial_ms, total_accesses);
  std::printf("serial exact, copy-free + scratch:     %8.2f ms\n", serial_ms);

  // 3. The pipeline: parallel fan-out + sampled replay + copy-free.
  MrcConfig pipeline_config;
  pipeline_config.analysis_threads = 0;  // all cores
  pipeline_config.sample_rate = kSampleRate;
  LogAnalyzer pipeline_analyzer(&engine, OutlierConfig{}, pipeline_config);
  pipeline_analyzer.DiagnoseMemory(candidates);  // warm pool/trackers
  LogAnalyzer::MemoryDiagnosis pipeline_diag;
  const double pipeline_ms = BestOf(kRepetitions, [&] {
    pipeline_diag = pipeline_analyzer.DiagnoseMemory(candidates);
  });
  json.Add("parallel_sampled_nocopy", pipeline_ms, total_accesses);
  std::printf("parallel + sampled, copy-free:         %8.2f ms\n",
              pipeline_ms);

  const double speedup = legacy_ms / pipeline_ms;
  std::printf("\nspeedup over seed serial path:         %8.2fx\n", speedup);

  // Accuracy: sampled parameters vs the exact Fenwick result.
  bench::PrintSection("sampled vs exact MRC parameters");
  std::vector<ClassMemoryProfile> profiles = pipeline_diag.suspects;
  profiles.insert(profiles.end(), pipeline_diag.cleared.begin(),
                  pipeline_diag.cleared.end());
  std::sort(profiles.begin(), profiles.end(),
            [](const ClassMemoryProfile& a, const ClassMemoryProfile& b) {
              return a.key < b.key;
            });
  double max_err = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    const MrcParameters& exact = exact_params[i];
    const MrcParameters& sampled = profiles[i].params;
    const double err_total =
        RelativeError(exact.total_memory_pages, sampled.total_memory_pages);
    const double err_acceptable = RelativeError(
        exact.acceptable_memory_pages, sampled.acceptable_memory_pages);
    max_err = std::max({max_err, err_total, err_acceptable});
    std::printf("class %zu: total %6" PRIu64 " vs %6" PRIu64
                " (%.1f%%), acceptable %6" PRIu64 " vs %6" PRIu64 " (%.1f%%)\n",
                i + 1, exact.total_memory_pages, sampled.total_memory_pages,
                100 * err_total, exact.acceptable_memory_pages,
                sampled.acceptable_memory_pages, 100 * err_acceptable);
  }

  json.WriteTo(json_path);

  const bool fast_enough = speedup >= 3.0;
  const bool accurate_enough = max_err <= 0.10;
  std::printf("\nspeedup >= 3x: %s   max parameter error %.1f%% <= 10%%: %s\n",
              fast_enough ? "yes" : "NO", 100 * max_err,
              accurate_enough ? "yes" : "NO");
  std::printf("shape %s\n",
              fast_enough && accurate_enough ? "HOLDS" : "VIOLATED");
  return fast_enough && accurate_enough ? 0 : 1;
}
