// Reproduces Table 2 of the paper: memory contention in a shared
// buffer pool. TPC-W runs inside one database engine with a 128 MB
// (8192-page) pool; then RUBiS is started inside the *same* engine.
// TPC-W's throughput collapses and its latency rises roughly ten-fold.
// The paper's diagnosis finds TPC-W's own outlier classes unchanged by
// MRC recomputation, computes MRCs for the newly arrived RUBiS classes,
// identifies SearchItemsByRegion (acceptable memory ~7906 pages) as
// impossible to co-locate, and re-places it on a different replica,
// restoring most of TPC-W's performance.
//
// Paper's Table 2 (TPC-W latency / WIPS):
//   TPC-W alone            ~0.54 s   ~8.8
//   TPC-W + RUBiS shared    5.42 s    4.29
//   TPC-W + RUBiS*          1.27 s    6.44   (* SIBR on another machine)

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "scenarios/harness.h"
#include "workload/rubis.h"
#include "workload/tpcw.h"

namespace {

using namespace fglb;

constexpr double kTpcwClients = 120;
constexpr double kRubisClients = 60;

struct Row {
  double latency = 0;
  double throughput = 0;
};

SelectiveRetuner::Config PassiveConfig() {
  SelectiveRetuner::Config config;
  config.enable_actions = false;
  return config;
}

// Measures TPC-W with the given RUBiS co-location mode.
// mode 0: TPC-W alone. mode 1: RUBiS shares the engine (no controller).
// mode 2: like 1, but the full selective-retuning controller is active.
Row RunScenario(int mode, std::string* actions_out = nullptr,
                Row* rubis_out = nullptr) {
  ClusterHarness harness(mode == 2 ? SelectiveRetuner::Config{}
                                   : PassiveConfig());
  harness.AddServers(3);
  Scheduler* tpcw = harness.AddApplication(MakeTpcw());
  Replica* shared = harness.resources().CreateReplica(
      harness.resources().servers()[0].get(), 8192);
  tpcw->AddReplica(shared);
  harness.AddConstantClients(tpcw, kTpcwClients, /*seed=*/21);

  Scheduler* rubis = nullptr;
  if (mode >= 1) {
    RubisOptions options;
    options.app_id = 2;
    rubis = harness.AddApplication(MakeRubis(options));
    rubis->AddReplica(shared);
    // RUBiS arrives after TPC-W has stabilized.
    harness.AddClients(rubis,
                       std::make_unique<StepLoad>(
                           std::vector<std::pair<SimTime, double>>{
                               {600, kRubisClients}}),
                       /*seed=*/23);
  }
  harness.Start();
  harness.RunFor(1800);

  Row row;
  // Measure the final stretch (mode 2 has acted by then; modes 0/1 are
  // steady anyway).
  const auto summary = harness.Summarize(tpcw->app().id, 1400, 1800);
  row.latency = summary.avg_latency;
  row.throughput = summary.avg_throughput;
  if (rubis_out != nullptr && rubis != nullptr) {
    const auto rs = harness.Summarize(rubis->app().id, 1400, 1800);
    rubis_out->latency = rs.avg_latency;
    rubis_out->throughput = rs.avg_throughput;
  }
  if (actions_out != nullptr) {
    for (const auto& action : harness.retuner().actions()) {
      char buf[200];
      std::snprintf(buf, sizeof(buf), "  t=%6.0f  [%s] %s\n", action.time,
                    SelectiveRetuner::ActionKindName(action.kind),
                    action.description.c_str());
      *actions_out += buf;
    }
  }
  return row;
}

}  // namespace

int main() {
  using namespace fglb::bench;

  PrintHeader("Table 2: Effect of memory contention in a shared buffer pool");

  const Row alone = RunScenario(0);
  const Row shared = RunScenario(1);
  std::string actions;
  Row rubis_after;
  const Row retuned = RunScenario(2, &actions, &rubis_after);

  std::printf("%-28s  %12s  %12s\n", "placement (TPC-W measured)",
              "latency_s", "tput_qps");
  std::printf("%-28s  %12.2f  %12.1f\n", "TPC-W alone", alone.latency,
              alone.throughput);
  std::printf("%-28s  %12.2f  %12.1f\n", "TPC-W + RUBiS (shared)",
              shared.latency, shared.throughput);
  std::printf("%-28s  %12.2f  %12.1f\n", "TPC-W + RUBiS (retuned)",
              retuned.latency, retuned.throughput);
  std::printf("\npaper:  alone 0.54s / 8.8 WIPS; shared 5.42s / 4.29 WIPS "
              "(~10x latency); retuned 1.27s / 6.44 WIPS\n");

  PrintSection("controller actions in the retuned run");
  std::printf("%s", actions.c_str());

  PrintSection("shape check vs paper");
  const bool collapse = shared.latency > 3.0 * alone.latency &&
                        shared.throughput < 0.8 * alone.throughput;
  const bool recovery = retuned.latency < 0.5 * shared.latency &&
                        retuned.throughput > shared.throughput;
  const bool sibr_moved =
      actions.find("class=4") != std::string::npos &&
      actions.find("resched") != std::string::npos;
  std::printf("shared pool collapses TPC-W (>3x latency, lower tput): %s "
              "(%.2fs -> %.2fs, %.1f -> %.1f qps)\n",
              collapse ? "yes" : "no", alone.latency, shared.latency,
              alone.throughput, shared.throughput);
  std::printf("fine-grained re-placement restores most of it: %s "
              "(%.2fs, %.1f qps)\n",
              recovery ? "yes" : "no", retuned.latency, retuned.throughput);
  std::printf("SearchItemsByRegion (class 4) was re-placed: %s\n",
              sibr_moved ? "yes" : "no");
  const bool shape_holds = collapse && recovery && sibr_moved;
  std::printf("shape %s\n", shape_holds ? "HOLDS" : "DOES NOT HOLD");
  return shape_holds ? 0 : 1;
}
