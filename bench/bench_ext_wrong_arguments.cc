// Extension E9 (the paper's §7 future work): "invoking a query with
// the wrong arguments". A deployed application starts calling one query
// class with pathological arguments — each invocation suddenly touches
// ~25x more pages across a much larger range (think: a missing
// predicate). Unlike the index-drop scenario, nothing changed in the
// schema; the *workload itself* changed. The pipeline must (a) flag the
// class through memory-counter outliers, (b) confirm it through MRC
// recomputation (its working set genuinely grew), and (c) act
// fine-grained.

#include <cstdio>

#include "bench/bench_util.h"
#include "scenarios/harness.h"
#include "workload/tpcw.h"

int main() {
  using namespace fglb;
  using namespace fglb::bench;

  PrintHeader("Extension: wrong-arguments anomaly (paper §7 future work)");

  SelectiveRetuner::Config config;
  ClusterHarness harness(config);
  harness.AddServers(3);
  Scheduler* tpcw = harness.AddApplication(MakeTpcw());
  Replica* replica = harness.resources().CreateReplica(
      harness.resources().servers()[0].get(), 8192);
  tpcw->AddReplica(replica);
  harness.AddConstantClients(tpcw, 150, /*seed=*/404);
  harness.Start();
  harness.RunFor(600);
  const auto before = harness.Summarize(tpcw->app().id, 300, 600);

  // The bug ships: SearchByTitle (class 4) loses its predicate and
  // sprays reads over a 25x larger range, 25x more pages per call.
  ApplicationSpec* live = harness.mutable_app(tpcw);
  for (auto& tmpl : live->templates) {
    if (tmpl.id != kTpcwSearchByTitle) continue;
    for (auto& component : tmpl.components) {
      component.mean_pages *= 25;
      component.region_pages *= 25;
      component.zipf_theta = 0.2;
    }
  }
  std::printf("t=600: SearchByTitle (class %u) starts running with wrong "
              "arguments\n",
              kTpcwSearchByTitle);
  harness.RunFor(400);
  const auto after = harness.Summarize(tpcw->app().id, 620, 1000);

  std::printf("\napp latency %.3f s -> %.3f s\n", before.avg_latency,
              after.avg_latency);

  const SelectiveRetuner::DiagnosisRecord* record = nullptr;
  for (const auto& d : harness.retuner().diagnoses()) {
    if (d.time > 600) {
      record = &d;
      break;
    }
  }
  if (record == nullptr) {
    std::printf("no diagnosis recorded -- shape DOES NOT HOLD\n");
    return 1;
  }

  PrintSection("diagnosis");
  const ClassKey culprit = MakeClassKey(tpcw->app().id, kTpcwSearchByTitle);
  const bool flagged =
      record->outliers.MemoryProblemContexts().contains(culprit);
  bool suspect = false;
  for (const auto& s : record->memory.suspects) {
    std::printf("  suspect: class %u  %s\n", ClassOf(s.key),
                s.params.ToString().c_str());
    suspect |= s.key == culprit;
  }
  bool acted = false;
  for (const auto& action : harness.retuner().actions()) {
    if (action.time <= 600) continue;
    std::printf("  t=%6.0f  [%s] %s\n", action.time,
                SelectiveRetuner::ActionKindName(action.kind),
                action.description.c_str());
    if (action.description.find("class=4") != std::string::npos &&
        (action.kind == SelectiveRetuner::ActionKind::kQuotaEnforced ||
         action.kind == SelectiveRetuner::ActionKind::kClassRescheduled ||
         action.kind == SelectiveRetuner::ActionKind::kIoEviction)) {
      acted = true;
    }
  }

  PrintSection("shape check");
  const bool degraded = after.avg_latency > 2.0 * before.avg_latency;
  std::printf("wrong arguments degrade the application: %s (%.3fs -> "
              "%.3fs)\n",
              degraded ? "yes" : "no", before.avg_latency,
              after.avg_latency);
  std::printf("outlier detection flags the class on memory counters: %s\n",
              flagged ? "yes" : "no");
  std::printf("MRC recomputation confirms the grown working set: %s\n",
              suspect ? "yes" : "no");
  std::printf("a fine-grained action targeted the class: %s\n",
              acted ? "yes" : "no");
  const bool shape_holds = degraded && flagged && suspect && acted;
  std::printf("shape %s\n", shape_holds ? "HOLDS" : "DOES NOT HOLD");
  return shape_holds ? 0 : 1;
}
