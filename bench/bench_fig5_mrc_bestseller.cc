// Reproduces Figure 5 of the paper: the miss-ratio curve of the TPC-W
// BestSeller query class under the normal (indexed) configuration —
// and, as the §5.3 diagnosis sees it, the curve after the O_DATE index
// is dropped. The paper reports acceptable memory of 6982 pages with
// the index and 3695 pages without it, with the no-index curve flatter
// and longer-tailed.

#include <cstdio>

#include "bench/bench_util.h"
#include "mrc/miss_ratio_curve.h"
#include "workload/tpcw.h"

int main() {
  using namespace fglb;
  using namespace fglb::bench;

  PrintHeader("Figure 5: Miss Ratio Curve of BestSeller (and the no-index "
              "variant, Fig. 5.3 discussion)");

  MrcConfig config;
  config.max_server_pages = 8192;

  struct Variant {
    const char* label;
    bool indexed;
  };
  const Variant variants[] = {{"BestSeller (O_DATE index present)", true},
                              {"BestSeller (O_DATE index dropped)", false}};

  MrcParameters params[2];
  int vi = 0;
  for (const Variant& variant : variants) {
    TpcwOptions options;
    options.o_date_index = variant.indexed;
    const ApplicationSpec app = MakeTpcw(options);
    const QueryTemplate* bestseller = app.FindTemplate(kTpcwBestSeller);
    // What the log analyzer would see: the most recent accesses up to
    // the per-class window capacity (30000).
    std::vector<PageId> trace =
        TraceOf(*bestseller, variant.indexed ? 600 : 12, /*seed=*/2024);
    constexpr size_t kWindow = 30000;
    if (trace.size() > kWindow) {
      trace.erase(trace.begin(),
                  trace.begin() + static_cast<ptrdiff_t>(trace.size() -
                                                         kWindow));
    }

    const MissRatioCurve curve = MissRatioCurve::FromTrace(trace);
    params[vi] = curve.ComputeParameters(config);

    PrintSection(variant.label);
    std::printf("trace length: %llu accesses\n",
                static_cast<unsigned long long>(curve.total_accesses()));
    std::printf("%12s  %10s\n", "memory_pages", "miss_ratio");
    for (uint64_t m = 0; m <= config.max_server_pages; m += 512) {
      std::printf("%12llu  %10.4f\n", static_cast<unsigned long long>(m),
                  curve.MissRatioAt(m));
    }
    std::printf("parameters: %s\n", params[vi].ToString().c_str());
    ++vi;
  }

  PrintSection("shape check vs paper");
  std::printf("paper: acceptable memory 6982 pages (indexed) -> 3695 pages "
              "(no index); no-index curve flatter with higher floor\n");
  std::printf("measured: acceptable %llu -> %llu pages; ideal miss ratio "
              "%.3f -> %.3f\n",
              static_cast<unsigned long long>(
                  params[0].acceptable_memory_pages),
              static_cast<unsigned long long>(
                  params[1].acceptable_memory_pages),
              params[0].ideal_miss_ratio, params[1].ideal_miss_ratio);
  const bool shape_holds =
      params[1].acceptable_memory_pages < params[0].acceptable_memory_pages &&
      params[1].ideal_miss_ratio > params[0].ideal_miss_ratio;
  std::printf("shape %s\n", shape_holds ? "HOLDS" : "DOES NOT HOLD");
  return shape_holds ? 0 : 1;
}
