// Reproduces Figure 6 of the paper: the miss-ratio curve of the RUBiS
// SearchItemsByRegion query class, plus the co-location fit test built
// on it. The paper measures an acceptable memory need of ~7906 pages
// and concludes the class "cannot be co-located with the TPC-W
// application in a shared 8192-page buffer pool, since only the
// BestSeller of TPC-W needs at least 6982 pages". We rerun exactly the
// decision the system makes: QuotaPlanner::FitsOn(SearchItemsByRegion,
// {all TPC-W stable profiles}).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/quota_planner.h"
#include "mrc/miss_ratio_curve.h"
#include "workload/rubis.h"
#include "workload/tpcw.h"

namespace {

constexpr size_t kWindow = 30000;

fglb::MrcParameters ParamsOf(const fglb::QueryTemplate& tmpl,
                             const fglb::MrcConfig& config, uint64_t seed,
                             fglb::MissRatioCurve* curve_out = nullptr) {
  using namespace fglb;
  using namespace fglb::bench;
  const std::vector<PageId> trace = WindowTrace(tmpl, kWindow, seed);
  MissRatioCurve curve = MissRatioCurve::FromTrace(trace);
  const MrcParameters params = curve.ComputeParameters(config);
  if (curve_out != nullptr) *curve_out = std::move(curve);
  return params;
}

}  // namespace

int main() {
  using namespace fglb;
  using namespace fglb::bench;

  PrintHeader("Figure 6: Miss Ratio Curve of RUBiS SearchItemsByRegion");

  MrcConfig config;
  config.max_server_pages = 8192;

  const ApplicationSpec rubis = MakeRubis();
  MissRatioCurve curve;
  const MrcParameters sibr_params =
      ParamsOf(*rubis.FindTemplate(kRubisSearchItemsByRegion), config,
               /*seed=*/777, &curve);

  std::printf("%12s  %10s\n", "memory_pages", "miss_ratio");
  for (uint64_t m = 0; m <= config.max_server_pages; m += 512) {
    std::printf("%12llu  %10.4f\n", static_cast<unsigned long long>(m),
                curve.MissRatioAt(m));
  }
  std::printf("parameters: %s  (paper: acceptable ~7906)\n",
              sibr_params.ToString().c_str());

  // TPC-W's stable profiles on the shared engine.
  const ApplicationSpec tpcw = MakeTpcw();
  std::vector<ClassMemoryProfile> tpcw_profiles;
  uint64_t largest_acceptable = 0;
  QueryClassId largest_class = 0;
  uint64_t sum_acceptable = 0;
  for (const auto& tmpl : tpcw.templates) {
    ClassMemoryProfile profile;
    profile.key = MakeClassKey(tpcw.id, tmpl.id);
    profile.params = ParamsOf(tmpl, config, /*seed=*/900 + tmpl.id);
    sum_acceptable += profile.params.acceptable_memory_pages;
    if (profile.params.acceptable_memory_pages > largest_acceptable) {
      largest_acceptable = profile.params.acceptable_memory_pages;
      largest_class = tmpl.id;
    }
    tpcw_profiles.push_back(profile);
  }

  PrintSection("co-location fit test (the system's actual decision)");
  ClassMemoryProfile incoming;
  incoming.key = MakeClassKey(rubis.id, kRubisSearchItemsByRegion);
  incoming.params = sibr_params;
  const bool fits = QuotaPlanner::FitsOn(8192, incoming, tpcw_profiles);
  std::printf("SearchItemsByRegion acceptable:       %llu pages "
              "(paper 7906)\n",
              static_cast<unsigned long long>(
                  sibr_params.acceptable_memory_pages));
  std::printf("TPC-W sum of acceptable:              %llu pages\n",
              static_cast<unsigned long long>(sum_acceptable));
  std::printf("TPC-W largest class: #%u (BestSeller=%u) needs %llu pages "
              "(paper 6982)\n",
              largest_class, kTpcwBestSeller,
              static_cast<unsigned long long>(largest_acceptable));
  std::printf("FitsOn(8192, SIBR, TPC-W) = %s\n", fits ? "true" : "false");

  PrintSection("shape check vs paper");
  const bool dominant =
      sibr_params.acceptable_memory_pages > 8192 / 2 &&
      sibr_params.acceptable_memory_pages > largest_acceptable;
  const bool bestseller_largest = largest_class == kTpcwBestSeller;
  std::printf("SearchItemsByRegion needs most of a pool and tops TPC-W's "
              "heaviest class: %s\n",
              dominant ? "yes" : "no");
  std::printf("TPC-W's heaviest memory class is BestSeller: %s\n",
              bestseller_largest ? "yes" : "no");
  std::printf("co-location rejected by the fit test: %s\n",
              !fits ? "yes" : "no");
  const bool shape_holds = dominant && bestseller_largest && !fits;
  std::printf("shape %s\n", shape_holds ? "HOLDS" : "DOES NOT HOLD");
  return shape_holds ? 0 : 1;
}
