// Ablation A2: the two fine-grained actions the paper chooses between
// for a memory-interference suspect (§3.3.2) — enforce a buffer-pool
// quota in place, or re-place the class on a different replica. The
// paper discusses the tradeoff qualitatively (quota: no extra machine,
// possible underutilization and a throttled class; migration: extra
// machine + warm-up, full isolation). We measure it on the Table 2
// scenario (TPC-W + RUBiS sharing one engine, SearchItemsByRegion the
// culprit).

#include <cstdio>

#include "bench/bench_util.h"
#include "scenarios/harness.h"
#include "workload/rubis.h"
#include "workload/tpcw.h"

namespace {

using namespace fglb;

constexpr double kTpcwClients = 120;
constexpr double kRubisClients = 60;

struct Outcome {
  double tpcw_latency = 0;
  double tpcw_tput = 0;
  double rubis_latency = 0;
  double rubis_tput = 0;
  int machines = 0;
};

// arm 0: no action; arm 1: quota on SearchItemsByRegion in place;
// arm 2: migrate SearchItemsByRegion to its own replica.
Outcome RunArm(int arm, uint64_t quota_pages) {
  SelectiveRetuner::Config config;
  config.enable_actions = false;  // the arm is applied manually
  ClusterHarness harness(config);
  harness.AddServers(2);
  Scheduler* tpcw = harness.AddApplication(MakeTpcw());
  RubisOptions rubis_options;
  rubis_options.app_id = 2;
  Scheduler* rubis = harness.AddApplication(MakeRubis(rubis_options));
  Replica* shared = harness.resources().CreateReplica(
      harness.resources().servers()[0].get(), 8192);
  tpcw->AddReplica(shared);
  rubis->AddReplica(shared);
  harness.AddConstantClients(tpcw, kTpcwClients, /*seed=*/41);
  harness.AddConstantClients(rubis, kRubisClients, /*seed=*/43);

  if (arm == 1) {
    shared->engine().SetQuota(
        MakeClassKey(rubis->app().id, kRubisSearchItemsByRegion),
        quota_pages);
  } else if (arm == 2) {
    Replica* dedicated = harness.resources().CreateReplica(
        harness.resources().servers()[1].get(), 8192);
    rubis->DedicateReplica(kRubisSearchItemsByRegion, dedicated);
  }

  harness.Start();
  harness.RunFor(1200);

  Outcome outcome;
  const auto ts = harness.Summarize(tpcw->app().id, 600, 1200);
  const auto rs = harness.Summarize(rubis->app().id, 600, 1200);
  outcome.tpcw_latency = ts.avg_latency;
  outcome.tpcw_tput = ts.avg_throughput;
  outcome.rubis_latency = rs.avg_latency;
  outcome.rubis_tput = rs.avg_throughput;
  int machines = harness.resources().ServersUsedBy(*tpcw);
  machines = std::max(machines, harness.resources().ServersUsedBy(*rubis));
  // Count distinct servers across both apps.
  std::set<const PhysicalServer*> servers;
  for (Replica* r : tpcw->replicas()) servers.insert(&r->server());
  for (Replica* r : rubis->replicas()) servers.insert(&r->server());
  outcome.machines = static_cast<int>(servers.size());
  return outcome;
}

}  // namespace

int main() {
  using namespace fglb::bench;

  PrintHeader("Ablation A2: memory quota vs. replica re-placement "
              "(Table 2 scenario, SearchItemsByRegion)");

  const Outcome none = RunArm(0, 0);
  const Outcome quota = RunArm(1, 1024);
  const Outcome migrate = RunArm(2, 0);

  std::printf("%-26s  %10s  %9s  %11s  %10s  %8s\n", "action",
              "tpcw_lat_s", "tpcw_qps", "rubis_lat_s", "rubis_qps",
              "machines");
  auto row = [](const char* label, const Outcome& o) {
    std::printf("%-26s  %10.2f  %9.1f  %11.2f  %10.1f  %8d\n", label,
                o.tpcw_latency, o.tpcw_tput, o.rubis_latency, o.rubis_tput,
                o.machines);
  };
  row("none (shared, broken)", none);
  row("quota 1024 pages in place", quota);
  row("re-place on 2nd replica", migrate);

  PrintSection("shape check (the paper's qualitative tradeoff)");
  // The quota removes the *memory* interference but SIBR still shares
  // the disk, so the rescue is partial — which is itself part of the
  // tradeoff the paper describes.
  const bool quota_helps =
      quota.tpcw_latency < 0.75 * none.tpcw_latency && quota.machines == 1;
  const bool migrate_best = migrate.tpcw_latency <= quota.tpcw_latency &&
                            migrate.machines == 2;
  const bool quota_throttles = quota.rubis_latency >= migrate.rubis_latency;
  std::printf("quota rescues TPC-W without a second machine: %s\n",
              quota_helps ? "yes" : "no");
  std::printf("migration rescues TPC-W at least as well, using one more "
              "machine: %s\n",
              migrate_best ? "yes" : "no");
  std::printf("quota keeps the culprit class slower than migration does: "
              "%s\n",
              quota_throttles ? "yes" : "no");
  const bool shape_holds = quota_helps && migrate_best && quota_throttles;
  std::printf("shape %s\n", shape_holds ? "HOLDS" : "DOES NOT HOLD");
  return shape_holds ? 0 : 1;
}
