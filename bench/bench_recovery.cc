// Controller survivability benchmark: SLA recovery under a lossy
// stats-report transport, with the stale-telemetry guard on vs off.
//
// Three arms run the consolidation cluster (TPC-W + RUBiS sharing a
// replica — RUBiS violates its SLA until the controller untangles the
// interference) with the stats channel enabled:
//
//   lossless   guard on,  clean transport        (the reference)
//   guarded    guard on,  ~5-10% report loss     (confidence decay,
//                                                 fence widening,
//                                                 action suppression)
//   unguarded  guard off, the same lossy window  (the ablation: trusts
//                                                 last-known-good stats
//                                                 at full confidence)
//
// Emits BENCH_recovery.json. Headline acceptance numbers:
//   recovery_ratio_guarded <= 1.5   (lossy-but-guarded recovery within
//                                    1.5x the lossless run)
//   flap_ratio_unguarded   >  1     (the unguarded arm re-places
//                                    strictly more often — it flaps)
//
//   ./build/bench/bench_recovery [output.json]

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "bench_util.h"
#include "scenarios/harness.h"
#include "sim/fault_injector.h"
#include "workload/load_function.h"
#include "workload/rubis.h"
#include "workload/tpcw.h"

namespace {

using namespace fglb;

constexpr double kDurationSeconds = 600;
constexpr uint64_t kSeed = 31;
// The lossy window covers the whole recovery phase: ~8% outright drops
// plus duplicate/corrupt/reordered reports, the chaos-net profile.
constexpr char kLossyWindow[] =
    "net@5:drop=0.08,dup=0.03,corrupt=0.02,reorder=0.05,delay=1,"
    "duration=590";

struct Outcome {
  double recovery_seconds = 0;  // last RUBiS SLA violation timestamp
  int violations = 0;
  uint64_t placement_actions = 0;  // migrate/evict/demote count
  uint64_t reports_lost = 0;       // stale controller collects
  double wall_ms = 0;
};

Outcome Run(bool guard, bool lossy) {
  SelectiveRetuner::Config config;
  config.max_migrations_per_interval = 2;
  ClusterHarness harness(config);
  StatsChannelConfig channel_config;
  channel_config.guard = guard;
  harness.EnableStatsChannel(channel_config);
  harness.AddServers(3);
  Scheduler* tpcw = harness.AddApplication(MakeTpcw());
  RubisOptions rubis_options;
  rubis_options.app_id = 2;
  Scheduler* rubis = harness.AddApplication(MakeRubis(rubis_options));
  Replica* shared = harness.resources().CreateReplica(
      harness.resources().servers()[0].get(), 8192);
  Replica* spare = harness.resources().CreateReplica(
      harness.resources().servers()[1].get(), 8192, /*engine_seed=*/2);
  tpcw->AddReplica(shared);
  tpcw->AddReplica(spare);
  rubis->AddReplica(shared);
  harness.AddConstantClients(tpcw, 120, kSeed);
  // RUBiS load swings 15..65 clients every 150 s: each crest re-creates
  // the interference, so the controller keeps diagnosing and acting all
  // the way through the lossy window instead of settling once at t=60.
  harness.AddClients(rubis, std::make_unique<SineLoad>(40, 25, 150),
                     kSeed + 1);
  if (lossy) {
    FaultSpec spec;
    std::string error;
    if (!FaultSpec::Parse(kLossyWindow, &spec, &error)) {
      std::fprintf(stderr, "bad lossy window spec: %s\n", error.c_str());
      std::exit(2);
    }
    harness.InjectFaults(std::move(spec), kSeed);
  }

  const auto start = std::chrono::steady_clock::now();
  harness.Start();
  harness.RunFor(kDurationSeconds);
  Outcome out;
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  for (const auto& sample : harness.retuner().samples()) {
    for (const auto& app : sample.apps) {
      if (app.app != rubis->app().id || app.sla_met) continue;
      ++out.violations;
      out.recovery_seconds = sample.time;
    }
  }
  for (const auto& action : harness.retuner().actions()) {
    switch (action.kind) {
      case SelectiveRetuner::ActionKind::kClassRescheduled:
      case SelectiveRetuner::ActionKind::kIoEviction:
      case SelectiveRetuner::ActionKind::kDemote:
        ++out.placement_actions;
        break;
      default:
        break;
    }
  }
  out.reports_lost =
      harness.metrics().counter("stats_channel.stale_collects")->value();
  return out;
}

void PrintRow(const char* name, const Outcome& o) {
  std::printf("%-12s %12.0f %12d %12llu %12llu\n", name, o.recovery_seconds,
              o.violations, static_cast<unsigned long long>(o.placement_actions),
              static_cast<unsigned long long>(o.reports_lost));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_recovery.json";
  bench::PrintHeader(
      "Controller survivability: SLA recovery under lossy stats transport");
  std::printf("consolidation (TPC-W + RUBiS), %.0f simulated seconds, "
              "window: %s\n\n",
              kDurationSeconds, kLossyWindow);

  const Outcome lossless = Run(/*guard=*/true, /*lossy=*/false);
  const Outcome guarded = Run(/*guard=*/true, /*lossy=*/true);
  const Outcome unguarded = Run(/*guard=*/false, /*lossy=*/true);

  std::printf("%-12s %12s %12s %12s %12s\n", "arm", "recovery_s",
              "violations", "placements", "lost_rpts");
  PrintRow("lossless", lossless);
  PrintRow("guarded", guarded);
  PrintRow("unguarded", unguarded);

  const double recovery_ratio =
      lossless.recovery_seconds > 0
          ? guarded.recovery_seconds / lossless.recovery_seconds
          : 0;
  const double flap_ratio =
      guarded.placement_actions > 0
          ? static_cast<double>(unguarded.placement_actions) /
                static_cast<double>(guarded.placement_actions)
          : static_cast<double>(unguarded.placement_actions);

  bench::BenchJsonWriter json;
  json.Add("lossless", lossless.wall_ms, 0);
  json.Add("guarded", guarded.wall_ms, 0);
  json.Add("unguarded", unguarded.wall_ms, 0);
  json.AddField("recovery_lossless_s", lossless.recovery_seconds);
  json.AddField("recovery_guarded_s", guarded.recovery_seconds);
  json.AddField("recovery_unguarded_s", unguarded.recovery_seconds);
  json.AddField("recovery_ratio_guarded", recovery_ratio);
  json.AddField("placements_guarded",
                static_cast<double>(guarded.placement_actions));
  json.AddField("placements_unguarded",
                static_cast<double>(unguarded.placement_actions));
  json.AddField("flap_ratio_unguarded", flap_ratio);
  json.AddField("reports_lost_guarded",
                static_cast<double>(guarded.reports_lost));
  json.WriteTo(json_path);

  std::printf("\nguarded recovery vs lossless: %.0f s vs %.0f s (%.2fx, "
              "gate 1.5x)\n",
              guarded.recovery_seconds, lossless.recovery_seconds,
              recovery_ratio);
  std::printf("placement actions, unguarded vs guarded: %llu vs %llu\n",
              static_cast<unsigned long long>(unguarded.placement_actions),
              static_cast<unsigned long long>(guarded.placement_actions));
  const bool recovery_holds =
      guarded.recovery_seconds <= 1.5 * lossless.recovery_seconds;
  const bool flap_holds =
      unguarded.placement_actions > guarded.placement_actions;
  std::printf("guarded recovery within 1.5x lossless: %s\n",
              recovery_holds ? "yes" : "NO");
  std::printf("unguarded arm flaps (strictly more placements): %s\n",
              flap_holds ? "yes" : "NO");
  const bool holds = recovery_holds && flap_holds && guarded.reports_lost > 0;
  std::printf("shape %s\n", holds ? "HOLDS" : "VIOLATED");
  return holds ? 0 : 1;
}
