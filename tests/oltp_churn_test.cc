#include <gtest/gtest.h>

#include "cluster/resource_manager.h"
#include "cluster/scheduler.h"
#include "workload/client_emulator.h"
#include "workload/oltp.h"
#include "workload/tpcw.h"

namespace fglb {
namespace {

TEST(OltpSpecTest, WellFormed) {
  const ApplicationSpec app = MakeOltp();
  EXPECT_EQ(app.templates.size(),
            static_cast<size_t>(3 + kOltpReaderCount));
  double total = 0;
  for (double w : app.mix_weights) total += w;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_NEAR(app.WriteFraction(), 0.30, 0.02);
  EXPECT_TRUE(app.FindTemplate(kOltpTransfer)->is_update);
  EXPECT_FALSE(app.FindTemplate(kOltpFirstReader)->is_update);
}

TEST(OltpSpecTest, WritersShareOneLockStripe) {
  const ApplicationSpec app = MakeOltp();
  // All three writers touch offsets below one lock stripe (512 pages):
  // their commits contend by construction.
  for (QueryClassId id : {kOltpTransfer, kOltpDeposit, kOltpWithdraw}) {
    const QueryTemplate* t = app.FindTemplate(id);
    ASSERT_NE(t, nullptr);
    for (const auto& c : t->components) {
      EXPECT_LT(c.region_offset + c.region_pages, kLockStripePages + 1);
    }
  }
}

TEST(OltpSpecTest, CommitHoldConfigurable) {
  OltpOptions options;
  options.commit_hold_seconds = 0.25;
  const ApplicationSpec app = MakeOltp(options);
  EXPECT_DOUBLE_EQ(app.FindTemplate(kOltpTransfer)->commit_hold_seconds,
                   0.25);
}

// A sink that completes instantly.
class NullSink : public QuerySink {
 public:
  explicit NullSink(Simulator* sim) : sim_(sim) {}
  void Submit(const QueryInstance&, CompletionCallback on_complete) override {
    sim_->ScheduleAfter(0.01, [on_complete = std::move(on_complete)]() mutable {
      if (on_complete) on_complete(0.01);
    });
  }

 private:
  Simulator* sim_;
};

TEST(SessionChurnTest, DisabledByDefaultNoChurn) {
  Simulator sim;
  ApplicationSpec app = MakeTpcw();
  NullSink sink(&sim);
  ConstantLoad load(20);
  ClientEmulator::Options options;
  options.noise_fraction = 0;
  ClientEmulator emulator(&sim, &app, &sink, &load, 3, options);
  emulator.Start();
  sim.RunUntil(300);
  EXPECT_EQ(emulator.total_clients_spawned(), 20u);
  EXPECT_EQ(emulator.active_clients(), 20u);
}

TEST(SessionChurnTest, SessionsExpireAndAreReplaced) {
  Simulator sim;
  ApplicationSpec app = MakeTpcw();
  NullSink sink(&sim);
  ConstantLoad load(20);
  ClientEmulator::Options options;
  options.noise_fraction = 0;
  options.session_time_seconds = 30;
  ClientEmulator emulator(&sim, &app, &sink, &load, 5, options);
  emulator.Start();
  sim.RunUntil(300);
  // ~10 session generations: far more distinct clients than the target.
  EXPECT_GT(emulator.total_clients_spawned(), 100u);
  // Population still tracks the target (within churn slack).
  EXPECT_GE(emulator.active_clients(), 15u);
  EXPECT_LE(emulator.active_clients(), 21u);
}

TEST(SessionChurnTest, ChurnKeepsThroughputComparable) {
  auto run = [](double session) {
    Simulator sim;
    ApplicationSpec app = MakeTpcw();
    NullSink sink(&sim);
    ConstantLoad load(30);
    ClientEmulator::Options options;
    options.noise_fraction = 0;
    options.session_time_seconds = session;
    ClientEmulator emulator(&sim, &app, &sink, &load, 7, options);
    emulator.Start();
    sim.RunUntil(300);
    return emulator.completed_queries();
  };
  const uint64_t steady = run(0);
  const uint64_t churning = run(60);
  EXPECT_NEAR(static_cast<double>(churning), static_cast<double>(steady),
              0.15 * static_cast<double>(steady));
}

}  // namespace
}  // namespace fglb
