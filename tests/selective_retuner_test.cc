#include "core/selective_retuner.h"

#include <gtest/gtest.h>

#include "scenarios/harness.h"
#include "workload/rubis.h"
#include "workload/tpcw.h"

namespace fglb {
namespace {

using ActionKind = SelectiveRetuner::ActionKind;

int CountActions(const SelectiveRetuner& retuner, ActionKind kind) {
  int count = 0;
  for (const auto& a : retuner.actions()) count += (a.kind == kind);
  return count;
}

int TotalActions(const SelectiveRetuner& retuner) {
  return static_cast<int>(retuner.actions().size());
}

TEST(SelectiveRetunerTest, ActionKindNamesAreDistinct) {
  const ActionKind kinds[] = {
      ActionKind::kCpuProvision,     ActionKind::kIoProvision,
      ActionKind::kCpuRelease,       ActionKind::kQuotaEnforced,
      ActionKind::kClassRescheduled, ActionKind::kIoEviction,
      ActionKind::kCoarseFallback,
  };
  std::set<std::string> names;
  for (ActionKind k : kinds) {
    names.insert(SelectiveRetuner::ActionKindName(k));
  }
  EXPECT_EQ(names.size(), std::size(kinds));
}

TEST(SelectiveRetunerTest, AnalyzerPerEngineIsStable) {
  ClusterHarness h;
  h.AddServers(1);
  Replica* r = h.resources().CreateReplica(h.resources().servers()[0].get(),
                                           1024);
  LogAnalyzer& a = h.retuner().AnalyzerFor(&r->engine());
  LogAnalyzer& b = h.retuner().AnalyzerFor(&r->engine());
  EXPECT_EQ(&a, &b);
}

TEST(SelectiveRetunerTest, SamplesAccumulateEachInterval) {
  ClusterHarness h;
  h.AddServers(1);
  Scheduler* tpcw = h.AddApplication(MakeTpcw());
  Replica* r = h.resources().CreateReplica(h.resources().servers()[0].get(),
                                           8192);
  tpcw->AddReplica(r);
  h.AddConstantClients(tpcw, 5, 1);
  h.Start();
  h.RunFor(105);
  // interval = 10s -> 10 full ticks in 105s.
  EXPECT_EQ(h.retuner().samples().size(), 10u);
  for (const auto& sample : h.retuner().samples()) {
    ASSERT_EQ(sample.apps.size(), 1u);
    ASSERT_EQ(sample.servers.size(), 1u);
  }
}

TEST(SelectiveRetunerTest, MonitoringModeTakesNoActions) {
  SelectiveRetuner::Config config;
  config.enable_actions = false;
  ClusterHarness h(config);
  h.AddServers(3);
  Scheduler* tpcw = h.AddApplication(MakeTpcw());
  Replica* r = h.resources().CreateReplica(h.resources().servers()[0].get(),
                                           8192);
  tpcw->AddReplica(r);
  // Grossly overloaded: plenty of violations to react to.
  h.AddConstantClients(tpcw, 900, 2);
  h.Start();
  h.RunFor(400);
  EXPECT_EQ(TotalActions(h.retuner()), 0);
  EXPECT_FALSE(h.retuner().samples().empty());
}

TEST(SelectiveRetunerTest, CoarseOnlyModeUsesOnlyFallback) {
  SelectiveRetuner::Config config;
  config.enable_fine_grained = false;
  ClusterHarness h(config);
  h.AddServers(3);
  Scheduler* tpcw = h.AddApplication(MakeTpcw());
  Replica* r = h.resources().CreateReplica(h.resources().servers()[0].get(),
                                           8192);
  tpcw->AddReplica(r);
  h.AddConstantClients(tpcw, 900, 3);
  h.Start();
  h.RunFor(600);
  EXPECT_GE(CountActions(h.retuner(), ActionKind::kCoarseFallback), 1);
  EXPECT_EQ(CountActions(h.retuner(), ActionKind::kQuotaEnforced), 0);
  EXPECT_EQ(CountActions(h.retuner(), ActionKind::kClassRescheduled), 0);
  EXPECT_EQ(CountActions(h.retuner(), ActionKind::kIoEviction), 0);
}

TEST(SelectiveRetunerTest, CoarseFallbackRateLimited) {
  // An unattainable SLA keeps the app in chronic violation; the coarse
  // fallback must not fire every few intervals.
  SelectiveRetuner::Config config;
  config.enable_fine_grained = false;
  ClusterHarness h(config);
  h.AddServers(6);
  ApplicationSpec app = MakeTpcw();
  app.sla_latency_seconds = 1e-6;  // impossible
  Scheduler* tpcw = h.AddApplication(std::move(app));
  Replica* r = h.resources().CreateReplica(h.resources().servers()[0].get(),
                                           8192);
  tpcw->AddReplica(r);
  h.AddConstantClients(tpcw, 20, 4);
  h.Start();
  h.RunFor(2000);  // 200 intervals
  // Cooldown is 3 * coarse_fallback_after (= 12) intervals; with the
  // initial streak ramp the bound is ~200/12 + 1.
  EXPECT_GE(CountActions(h.retuner(), ActionKind::kCoarseFallback), 1);
  EXPECT_LE(CountActions(h.retuner(), ActionKind::kCoarseFallback), 18);
}

TEST(SelectiveRetunerTest, WarmupSuppressesEarlyDiagnosis) {
  // A cold pool floods the disk in the first intervals; the controller
  // must not fire fine-grained memory/IO actions during warm-up.
  ClusterHarness h;
  h.AddServers(3);
  Scheduler* tpcw = h.AddApplication(MakeTpcw());
  Replica* r = h.resources().CreateReplica(h.resources().servers()[0].get(),
                                           8192);
  tpcw->AddReplica(r);
  h.AddConstantClients(tpcw, 150, 5);
  h.Start();
  h.RunFor(30);  // warmup_intervals = 3
  for (const auto& action : h.retuner().actions()) {
    EXPECT_NE(action.kind, ActionKind::kQuotaEnforced);
    EXPECT_NE(action.kind, ActionKind::kClassRescheduled);
    EXPECT_NE(action.kind, ActionKind::kIoEviction);
    EXPECT_NE(action.kind, ActionKind::kCoarseFallback);
  }
}

TEST(SelectiveRetunerTest, BootstrapWorksEvenDuringWarmup) {
  ClusterHarness h;
  h.AddServers(1);
  Scheduler* tpcw = h.AddApplication(MakeTpcw());
  h.AddConstantClients(tpcw, 5, 6);
  h.Start();
  h.RunFor(25);
  EXPECT_GE(CountActions(h.retuner(), ActionKind::kCpuProvision), 1);
  EXPECT_EQ(tpcw->replicas().size(), 1u);
}

TEST(SelectiveRetunerTest, NoActionsWhenHealthy) {
  ClusterHarness h;
  h.AddServers(2);
  Scheduler* tpcw = h.AddApplication(MakeTpcw());
  Replica* r = h.resources().CreateReplica(h.resources().servers()[0].get(),
                                           8192);
  tpcw->AddReplica(r);
  h.AddConstantClients(tpcw, 20, 7);
  h.Start();
  h.RunFor(500);
  EXPECT_EQ(TotalActions(h.retuner()), 0);
}

TEST(SelectiveRetunerTest, ServersUsedTrackedInSamples) {
  ClusterHarness h;
  h.AddServers(3);
  Scheduler* tpcw = h.AddApplication(MakeTpcw());
  Replica* r = h.resources().CreateReplica(h.resources().servers()[0].get(),
                                           8192);
  tpcw->AddReplica(r);
  h.AddConstantClients(tpcw, 20, 8);
  h.Start();
  h.RunFor(100);
  for (const auto& sample : h.retuner().samples()) {
    for (const auto& as : sample.apps) {
      EXPECT_EQ(as.servers_used, 1);
    }
  }
}

TEST(SelectiveRetunerTest, DiagnosesRecordedOnViolation) {
  // Force a violation after history exists; a diagnosis record with the
  // outlier report must appear even if no action results.
  SelectiveRetuner::Config config;
  config.enable_actions = false;
  ClusterHarness h(config);
  h.AddServers(2);
  Scheduler* tpcw = h.AddApplication(MakeTpcw());
  Replica* r = h.resources().CreateReplica(h.resources().servers()[0].get(),
                                           8192);
  tpcw->AddReplica(r);
  h.AddClients(tpcw,
               std::make_unique<StepLoad>(
                   std::vector<std::pair<SimTime, double>>{{0, 30},
                                                           {300, 900}}),
               /*seed=*/9);
  h.Start();
  h.RunFor(600);
  EXPECT_FALSE(h.retuner().diagnoses().empty());
  for (const auto& d : h.retuner().diagnoses()) {
    EXPECT_GT(d.time, 300);
    EXPECT_EQ(d.app, tpcw->app().id);
  }
}

}  // namespace
}  // namespace fglb
