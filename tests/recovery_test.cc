#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/trace_check.h"
#include "scenarios/harness.h"
#include "sim/fault_injector.h"
#include "workload/rubis.h"
#include "workload/tpcw.h"

namespace fglb {
namespace {

// End-to-end controller survivability: a consolidation cluster running
// the stats channel and checkpoint cadence, crashed and restarted
// mid-run — the controller must resume within one diagnosis interval
// from the FGLBCKPT1 blob with no duplicate migrations, and the whole
// run must stay deterministic.

std::unique_ptr<ClusterHarness> MakeCluster(bool guard = true) {
  SelectiveRetuner::Config config;
  config.max_migrations_per_interval = 2;
  auto h = std::make_unique<ClusterHarness>(config);
  h->trace().EnableBuffering();
  StatsChannelConfig channel_config;
  channel_config.guard = guard;
  h->EnableStatsChannel(channel_config);
  h->EnableCheckpointing();
  h->AddServers(3);
  Scheduler* tpcw = h->AddApplication(MakeTpcw());
  RubisOptions rubis_options;
  rubis_options.app_id = 2;
  Scheduler* rubis = h->AddApplication(MakeRubis(rubis_options));
  Replica* shared =
      h->resources().CreateReplica(h->resources().servers()[0].get(), 8192);
  Replica* spare = h->resources().CreateReplica(
      h->resources().servers()[1].get(), 8192, /*engine_seed=*/2);
  tpcw->AddReplica(shared);
  tpcw->AddReplica(spare);
  rubis->AddReplica(shared);
  h->AddConstantClients(tpcw, 120, /*seed=*/7);
  h->AddConstantClients(rubis, 40, /*seed=*/8);
  return h;
}

std::vector<JsonValue> ParsedTrace(ClusterHarness& h) {
  std::vector<JsonValue> events;
  for (const std::string& line : h.trace().BufferedLines()) {
    JsonValue event;
    std::string error;
    EXPECT_TRUE(JsonValue::Parse(line, &event, &error)) << error;
    events.push_back(std::move(event));
  }
  return events;
}

TEST(RecoveryTest, RestartResumesWithinOneIntervalFromCheckpoint) {
  auto h = MakeCluster();
  h->Start();
  h->RunFor(200);
  const double interval = h->retuner().config().interval_seconds;

  ASSERT_TRUE(h->CrashController());
  EXPECT_TRUE(h->controller_down());
  EXPECT_FALSE(h->CrashController());  // already down
  const size_t samples_at_crash = h->retuner().samples().size();
  h->RunFor(35);
  // Down means down: no diagnosis intervals while crashed.
  EXPECT_EQ(h->retuner().samples().size(), samples_at_crash);

  ASSERT_TRUE(h->RestartController());
  EXPECT_FALSE(h->controller_down());
  EXPECT_FALSE(h->RestartController());  // already up
  const double restart_time = h->sim().Now();
  h->RunFor(185);

  // Back within one diagnosis interval of the restart.
  double first_tick_after = 0;
  for (const auto& sample : h->retuner().samples()) {
    if (sample.time > restart_time) {
      first_tick_after = sample.time;
      break;
    }
  }
  ASSERT_GT(first_tick_after, 0.0);
  EXPECT_LE(first_tick_after, restart_time + interval + 1e-9);

  // The restore came from the checkpoint blob, not a cold start.
  std::string check_error;
  const auto events = ParsedTrace(*h);
  EXPECT_TRUE(CheckTraceLines(h->trace().BufferedLines(), &check_error))
      << check_error;
  bool restored = false;
  for (const auto& event : events) {
    if (event.StringOr("phase", "") != "recovery") continue;
    if (event.StringOr("why", "") == "restored") {
      restored = true;
      EXPECT_GT(event.NumberOr("ckpt_t", 0), 0.0);
    }
    EXPECT_NE(event.StringOr("why", ""), "no_ckpt");
    EXPECT_NE(event.StringOr("why", ""), "bad_ckpt");
  }
  EXPECT_TRUE(restored);
  EXPECT_EQ(h->metrics().counter("controller.recovery.restored")->value(),
            1u);

  // Zero duplicate migrations: restored placement cooldowns keep any
  // class from being re-migrated within the cooldown window, crash or
  // no crash.
  const double cooldown =
      h->retuner().config().placement_cooldown_intervals * interval;
  std::map<std::string, double> last_move;
  for (const auto& event : events) {
    if (event.StringOr("phase", "") != "action") continue;
    const std::string kind = event.StringOr("kind", "");
    if (kind != "class_rescheduled" && kind != "io_eviction") continue;
    const std::string desc = event.StringOr("desc", "");
    const double t = event.NumberOr("t", 0);
    auto it = last_move.find(desc);
    if (it != last_move.end()) {
      EXPECT_GE(t - it->second, cooldown) << desc << " re-applied at " << t;
    }
    last_move[desc] = t;
  }
}

TEST(RecoveryTest, CtlFaultRoundTripsDeterministically) {
  // The same crash/restart driven by the fault injector's ctl kind,
  // twice: byte-identical action logs, and the controller demonstrably
  // went down and came back.
  auto run = [] {
    auto h = MakeCluster();
    FaultSpec spec;
    std::string error;
    EXPECT_TRUE(FaultSpec::Parse(
        "net@100:drop=0.1,duration=150;ctl@150:restart=30", &spec, &error))
        << error;
    h->InjectFaults(std::move(spec), /*seed=*/5);
    h->Start();
    h->RunFor(420);
    EXPECT_FALSE(h->controller_down());
    std::vector<std::string> actions;
    std::string check_error;
    EXPECT_TRUE(
        ActionLines(h->trace().BufferedLines(), &actions, &check_error))
        << check_error;
    EXPECT_TRUE(CheckTraceLines(h->trace().BufferedLines(), &check_error))
        << check_error;
    return actions;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
}

TEST(RecoveryTest, GuardSuppressesPlacementActionsDuringOutage) {
  // A total report blackout: with the guard on, confidence collapses
  // after the first missed interval, so no placement/demote action may
  // fire anywhere inside the outage window (shed/provisioning remain
  // allowed — they act on app-level latency, not per-replica stats).
  auto h = MakeCluster(/*guard=*/true);
  FaultSpec spec;
  std::string error;
  ASSERT_TRUE(FaultSpec::Parse("net@100:drop=1,duration=120", &spec, &error))
      << error;
  h->InjectFaults(std::move(spec), /*seed=*/3);
  h->Start();
  h->RunFor(420);

  bool saw_losses = false;
  for (const auto& event : ParsedTrace(*h)) {
    const std::string phase = event.StringOr("phase", "");
    if (phase == "recovery" &&
        event.StringOr("why", "") == "report_lost") {
      saw_losses = true;
    }
    if (phase != "action") continue;
    const double t = event.NumberOr("t", 0);
    if (t <= 110 || t >= 220) continue;  // first loss lands by t=110
    const std::string kind = event.StringOr("kind", "");
    EXPECT_NE(kind, "class_rescheduled") << "at t=" << t;
    EXPECT_NE(kind, "io_eviction") << "at t=" << t;
    EXPECT_NE(kind, "demote") << "at t=" << t;
  }
  EXPECT_TRUE(saw_losses);
}

TEST(RecoveryTest, RestartWithoutCheckpointColdStarts) {
  // No EnableCheckpointing: a restart has no blob and must cold-start,
  // saying so in the trace.
  SelectiveRetuner::Config config;
  config.max_migrations_per_interval = 2;
  ClusterHarness h(config);
  h.trace().EnableBuffering();
  h.EnableStatsChannel();
  h.AddServers(2);
  Scheduler* tpcw = h.AddApplication(MakeTpcw());
  tpcw->AddReplica(
      h.resources().CreateReplica(h.resources().servers()[0].get(), 8192));
  h.AddConstantClients(tpcw, 80, /*seed=*/3);
  h.Start();
  h.RunFor(100);
  ASSERT_TRUE(h.CrashController());
  h.RunFor(20);
  ASSERT_TRUE(h.RestartController());
  h.RunFor(60);
  bool cold = false;
  for (const auto& event : ParsedTrace(h)) {
    if (event.StringOr("phase", "") == "recovery" &&
        event.StringOr("why", "") == "no_ckpt") {
      cold = true;
    }
  }
  EXPECT_TRUE(cold);
  EXPECT_EQ(h.metrics().counter("controller.recovery.no_ckpt")->value(), 1u);
}

}  // namespace
}  // namespace fglb
