#include <gtest/gtest.h>

#include "cluster/lock_manager.h"
#include "common/random.h"

namespace fglb {
namespace {

// Randomized stress over the lock manager: many requesters with random
// (sorted, deduplicated) stripe sets, random hold times. Invariants:
// every request is eventually granted exactly once, mutual exclusion
// holds for every stripe at every instant, and everything is released
// by the end.
class LockManagerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LockManagerPropertyTest, MutualExclusionAndLiveness) {
  Simulator sim;
  LockManager locks(&sim);
  Rng rng(GetParam());

  const int kRequests = 400;
  const uint64_t kStripes = 12;  // few stripes -> heavy contention
  int granted = 0;
  // stripe -> currently-inside count (checked for mutual exclusion).
  std::map<PageId, int> inside;

  for (int i = 0; i < kRequests; ++i) {
    // Random sorted stripe set of size 1..4.
    std::set<PageId> set;
    const int size = 1 + static_cast<int>(rng.NextUint64(4));
    while (static_cast<int>(set.size()) < size) {
      set.insert(MakePageId(1, rng.NextUint64(kStripes)));
    }
    const std::vector<PageId> stripes(set.begin(), set.end());
    const double start_at = rng.UniformDouble(0, 50);
    const double hold = rng.UniformDouble(0.01, 0.5);

    sim.ScheduleAfter(start_at, [&, stripes, hold] {
      auto ticket = std::make_shared<uint64_t>(0);
      *ticket = locks.AcquireAll(stripes, [&, stripes, hold,
                                           ticket](double wait) {
        EXPECT_GE(wait, 0.0);
        ++granted;
        // Enter the critical sections.
        for (PageId s : stripes) {
          ++inside[s];
          EXPECT_EQ(inside[s], 1) << "two holders inside stripe "
                                  << OffsetOf(s);
        }
        sim.ScheduleAfter(hold, [&, stripes, ticket] {
          for (PageId s : stripes) {
            --inside[s];
            EXPECT_GE(inside[s], 0);
          }
          locks.Release(*ticket);
        });
      });
    });
  }

  sim.RunToCompletion();
  EXPECT_EQ(granted, kRequests);
  EXPECT_EQ(locks.granted_total(), static_cast<uint64_t>(kRequests));
  EXPECT_EQ(locks.held_stripes(), 0u);
  for (const auto& [stripe, count] : inside) {
    EXPECT_EQ(count, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LockManagerPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace fglb
